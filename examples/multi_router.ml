(* Multi-router quickstart: an 8-router ring (two of them supercharged)
   sharing one logically-centralized controller, three external peers,
   and a failure of the best egress. Shows the declarative Topo.Spec,
   bring-up to detected quiescence, the ground-truth forwarding walk,
   and the controller's fast re-point of the supercharged routers. *)

let () =
  let engine = Sim.Engine.create ~seed:42L () in
  let spec =
    Topo.Spec.ring ~routers:8
      ~externs:[ (0, 200); (4, 150); (2, 100) ]
      ~supercharged:[ 0; 3 ] ()
  in
  let fabric = Topo.Fabric.build engine spec in
  Topo.Fabric.start fabric;
  let prefixes =
    List.init 4 (fun i -> Net.Prefix.make (Net.Ipv4.of_octets 203 0 i 0) 24)
  in
  for k = 0 to Topo.Spec.n_externs spec - 1 do
    Topo.Fabric.announce_extern fabric ~extern:k prefixes
  done;
  let ok = Topo.Fabric.settle fabric () in
  Fmt.pr "bring-up: settled=%b at %a (activity %d)@." ok Sim.Time.pp
    (Sim.Engine.now engine)
    (Topo.Fabric.activity fabric);
  let ctl = Topo.Fabric.control fabric in
  Fmt.pr "controller: %d reflections, %d fast re-points, %d entry pushes@."
    (Topo.Control.reflects_sent ctl) (Topo.Control.fast_repoints ctl)
    (Topo.Control.rebind_pushes ctl);
  let p0 = List.hd prefixes in
  let show label =
    Fmt.pr "%s (prefix %a):@." label Net.Prefix.pp p0;
    for r = 0 to Topo.Spec.n_routers spec - 1 do
      let router = Topo.Fabric.router fabric r in
      Fmt.pr "  router %d%s: egress %a, walk %a (%d FIB writes)@." r
        (if Topo.Router.supercharged router then "*" else " ")
        Fmt.(option ~none:(any "-") int)
        (Topo.Router.choice router p0)
        Topo.Fabric.pp_outcome
        (Topo.Fabric.outcome fabric ~ingress:r p0)
        (Topo.Router.fib_ops_applied router)
    done
  in
  show "at quiescence";
  Fmt.pr "@.failing extern 0 (the best egress, LOCAL_PREF 200)...@.";
  Topo.Fabric.fail_extern fabric ~extern:0;
  let ok = Topo.Fabric.settle fabric () in
  Fmt.pr "re-converged: settled=%b at %a@." ok Sim.Time.pp (Sim.Engine.now engine);
  show "after the failure"
