(* Backup-group anatomy (§2 of the paper).

   The number of backup-groups is bounded by n·(n−1) for n peers —
   "considering a router with 10 neighbors, the number of backup-groups
   is only 90" — which is why rerouting is O(#peers), not O(#prefixes).
   This example feeds a many-peer table through the Listing 1 algorithm
   and prints the group census, then repeats it with groups of size 3
   (the paper's "backup-groups of any size" generalisation), which can
   survive two successive failures without recomputation.

   Run with: dune exec examples/backup_groups.exe *)

let ip = Net.Ipv4.of_string_exn

let peer_ip i = ip (Fmt.str "10.0.0.%d" (2 + i))

(* Feeds [n_prefixes] prefixes, each announced by a random subset of the
   peers with random preferences, and returns the group registry. *)
let census ~n_peers ~n_prefixes ~group_size =
  let rng = Sim.Rng.create ~seed:11L in
  let allocator = Supercharger.Vnh.create () in
  let groups = Supercharger.Backup_group.create ~group_size allocator in
  let algo = Supercharger.Algorithm.create groups in
  let rib = Bgp.Rib.create () in
  let entries = Workloads.Rib_gen.generate ~seed:11L ~count:n_prefixes in
  Array.iter
    (fun (e : Workloads.Rib_gen.entry) ->
      for peer_id = 0 to n_peers - 1 do
        if Sim.Rng.int rng 100 < 60 then begin
          let attrs =
            Bgp.Attributes.make
              ~as_path:[Bgp.Attributes.Seq (List.map Bgp.Asn.of_int [65002 + peer_id; 3000])]
              ~local_pref:(100 + Sim.Rng.int rng 100)
              ~next_hop:(peer_ip peer_id) ()
          in
          Option.iter
            (fun change ->
              ignore (Supercharger.Algorithm.process_change algo change))
            (Bgp.Rib.announce rib e.prefix
               (Bgp.Route.make ~peer_id ~peer_router_id:(peer_ip peer_id) attrs))
        end
      done)
    entries;
  (groups, Supercharger.Algorithm.emissions_total algo)

let () =
  let n_peers = 10 and n_prefixes = 5_000 in
  Fmt.pr "Backup-group census: %d peers, %d prefixes@.@." n_peers n_prefixes;
  List.iter
    (fun group_size ->
      let groups, emissions = census ~n_peers ~n_prefixes ~group_size in
      let bound = Supercharger.Backup_group.theoretical_max ~n_peers ~group_size in
      Fmt.pr "group size %d: %d groups allocated (theoretical max %d), %d emissions@."
        group_size
        (Supercharger.Backup_group.count groups)
        bound emissions;
      if group_size = 2 then begin
        Fmt.pr "  busiest primaries:@.";
        List.iteri
          (fun i peer ->
            if i < 3 then
              Fmt.pr "    %a is primary of %d groups@." Net.Ipv4.pp peer
                (List.length (Supercharger.Backup_group.with_primary groups peer)))
          (List.init n_peers peer_ip);
        match Supercharger.Backup_group.all groups with
        | b :: _ ->
          Fmt.pr "  example binding: %a@." Supercharger.Backup_group.pp_binding b
        | [] -> ()
      end;
      Fmt.pr "@.")
    [2; 3]
