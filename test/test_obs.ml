(* Tests for the observability library: JSON printer, ring buffer,
   histograms, metrics registry. *)

let json_tests =
  let str j = Obs.Json.to_string j in
  [
    Alcotest.test_case "scalars" `Quick (fun () ->
        Alcotest.(check string) "null" "null" (str Obs.Json.Null);
        Alcotest.(check string) "bool" "true" (str (Obs.Json.Bool true));
        Alcotest.(check string) "int" "-42" (str (Obs.Json.Int (-42)));
        Alcotest.(check string) "float keeps a point" "2.0"
          (str (Obs.Json.Float 2.0));
        Alcotest.(check string) "float short form" "0.027"
          (str (Obs.Json.Float 0.027));
        Alcotest.(check string) "nan is null" "null"
          (str (Obs.Json.Float Float.nan));
        Alcotest.(check string) "inf is null" "null"
          (str (Obs.Json.Float Float.infinity)));
    Alcotest.test_case "string escaping" `Quick (fun () ->
        Alcotest.(check string) "quotes and backslash" {|"a\"b\\c"|}
          (str (Obs.Json.String {|a"b\c|}));
        Alcotest.(check string) "control chars" {|"x\ny\tz\u0001"|}
          (str (Obs.Json.String "x\ny\tz\001")));
    Alcotest.test_case "containers" `Quick (fun () ->
        Alcotest.(check string) "list" "[1,2,3]"
          (str (Obs.Json.List [Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Int 3]));
        Alcotest.(check string) "object order preserved" {|{"b":1,"a":2}|}
          (str (Obs.Json.Obj [("b", Obs.Json.Int 1); ("a", Obs.Json.Int 2)]));
        Alcotest.(check string) "empty" "{}" (str (Obs.Json.Obj [])));
  ]

let ring_tests =
  [
    Alcotest.test_case "unbounded ring grows and keeps order" `Quick (fun () ->
        let r = Obs.Ring.create () in
        for i = 0 to 99 do
          Obs.Ring.push r i
        done;
        Alcotest.(check int) "length" 100 (Obs.Ring.length r);
        Alcotest.(check int) "total" 100 (Obs.Ring.total r);
        Alcotest.(check int) "dropped" 0 (Obs.Ring.dropped r);
        Alcotest.(check (list int)) "order" (List.init 100 Fun.id)
          (Obs.Ring.to_list r));
    Alcotest.test_case "capped ring overwrites the oldest" `Quick (fun () ->
        let r = Obs.Ring.create ~capacity:3 () in
        List.iter (Obs.Ring.push r) [1; 2; 3; 4; 5];
        Alcotest.(check int) "length" 3 (Obs.Ring.length r);
        Alcotest.(check int) "total" 5 (Obs.Ring.total r);
        Alcotest.(check int) "dropped" 2 (Obs.Ring.dropped r);
        Alcotest.(check (list int)) "newest three" [3; 4; 5] (Obs.Ring.to_list r));
    Alcotest.test_case "clear resets counters" `Quick (fun () ->
        let r = Obs.Ring.create ~capacity:2 () in
        List.iter (Obs.Ring.push r) [1; 2; 3];
        Obs.Ring.clear r;
        Alcotest.(check int) "empty" 0 (Obs.Ring.length r);
        Alcotest.(check int) "total reset" 0 (Obs.Ring.total r);
        Obs.Ring.push r 9;
        Alcotest.(check (list int)) "usable after clear" [9] (Obs.Ring.to_list r));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"capped ring = last [cap] pushes" ~count:300
         QCheck.(pair (1 -- 10) (list small_int))
         (fun (cap, xs) ->
           let r = Obs.Ring.create ~capacity:cap () in
           List.iter (Obs.Ring.push r) xs;
           let n = List.length xs in
           let expected = List.filteri (fun i _ -> i >= n - cap) xs in
           Obs.Ring.to_list r = expected
           && Obs.Ring.total r = n
           && Obs.Ring.dropped r = Stdlib.max 0 (n - cap)));
  ]

let histogram_tests =
  [
    Alcotest.test_case "percentiles on a known uniform distribution" `Quick
      (fun () ->
        let h = Obs.Histogram.create () in
        (* 1ms .. 1000ms in 1ms steps: p50 ~ 0.5s, p95 ~ 0.95s. *)
        for i = 1 to 1000 do
          Obs.Histogram.observe h (float_of_int i /. 1000.0)
        done;
        Alcotest.(check int) "count" 1000 (Obs.Histogram.count h);
        Alcotest.(check (float 1e-9)) "exact min" 0.001 (Obs.Histogram.min h);
        Alcotest.(check (float 1e-9)) "exact max" 1.0 (Obs.Histogram.max h);
        Alcotest.(check (float 1e-9)) "p0 = min" 0.001
          (Obs.Histogram.percentile h 0.0);
        Alcotest.(check (float 1e-9)) "p100 = max" 1.0
          (Obs.Histogram.percentile h 100.0);
        (* Log buckets at 20/decade have ~12% relative error. *)
        let p50 = Obs.Histogram.percentile h 50.0 in
        Alcotest.(check bool) "p50 within bucket error" true
          (p50 > 0.44 && p50 < 0.56);
        let p95 = Obs.Histogram.percentile h 95.0 in
        Alcotest.(check bool) "p95 within bucket error" true
          (p95 > 0.84 && p95 < 1.0 +. 1e-9));
    Alcotest.test_case "single sample: every percentile is that sample" `Quick
      (fun () ->
        let h = Obs.Histogram.create () in
        Obs.Histogram.observe h 0.027;
        List.iter
          (fun p ->
            Alcotest.(check (float 1e-9)) (Fmt.str "p%g" p) 0.027
              (Obs.Histogram.percentile h p))
          [0.0; 50.0; 90.0; 99.0; 100.0]);
    Alcotest.test_case "mean and sum are exact" `Quick (fun () ->
        let h = Obs.Histogram.create () in
        List.iter (Obs.Histogram.observe h) [1.0; 2.0; 3.0; 4.0];
        Alcotest.(check (float 1e-9)) "sum" 10.0 (Obs.Histogram.sum h);
        Alcotest.(check (float 1e-9)) "mean" 2.5 (Obs.Histogram.mean h));
    Alcotest.test_case "non-finite samples dropped, negatives clamp" `Quick
      (fun () ->
        let h = Obs.Histogram.create () in
        Obs.Histogram.observe h Float.nan;
        Obs.Histogram.observe h Float.infinity;
        Alcotest.(check int) "dropped" 0 (Obs.Histogram.count h);
        Obs.Histogram.observe h (-1.0);
        Alcotest.(check int) "negative kept" 1 (Obs.Histogram.count h));
    Alcotest.test_case "merge accumulates both histograms" `Quick (fun () ->
        let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
        List.iter (Obs.Histogram.observe a) [0.010; 0.020];
        List.iter (Obs.Histogram.observe b) [0.030; 0.040];
        Obs.Histogram.merge_into ~into:a b;
        Alcotest.(check int) "count" 4 (Obs.Histogram.count a);
        Alcotest.(check (float 1e-9)) "min" 0.010 (Obs.Histogram.min a);
        Alcotest.(check (float 1e-9)) "max" 0.040 (Obs.Histogram.max a);
        Alcotest.(check (float 1e-9)) "sum" 0.1 (Obs.Histogram.sum a));
    Alcotest.test_case "merge rejects mismatched specs" `Quick (fun () ->
        let a = Obs.Histogram.create () in
        let b = Obs.Histogram.create ~buckets_per_decade:10 () in
        Alcotest.(check bool) "raises" true
          (try
             Obs.Histogram.merge_into ~into:a b;
             false
           with Invalid_argument _ -> true));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"percentiles are monotone and bounded" ~count:200
         QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
         (fun xs ->
           let xs = List.map (fun x -> x +. 1e-5) xs in
           let h = Obs.Histogram.create () in
           List.iter (Obs.Histogram.observe h) xs;
           let ps = List.map (Obs.Histogram.percentile h) [0.; 25.; 50.; 75.; 100.] in
           let lo = Obs.Histogram.min h and hi = Obs.Histogram.max h in
           List.for_all (fun p -> p >= lo && p <= hi) ps
           && List.sort Float.compare ps = ps));
  ]

let metrics_tests =
  [
    Alcotest.test_case "counters are get-or-create" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let c = Obs.Metrics.counter m "x.count" in
        Obs.Metrics.incr c;
        Obs.Metrics.incr c ~by:4;
        let c' = Obs.Metrics.counter m "x.count" in
        Obs.Metrics.incr c';
        Alcotest.(check int) "shared" 6 (Obs.Metrics.counter_value c);
        Alcotest.(check (option int)) "find" (Some 6)
          (Obs.Metrics.find_counter m "x.count");
        Alcotest.(check (option int)) "absent" None
          (Obs.Metrics.find_counter m "nope"));
    Alcotest.test_case "gauges set and add" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let g = Obs.Metrics.gauge m "x.level" in
        Obs.Metrics.set g 3.0;
        Obs.Metrics.add g 1.5;
        Alcotest.(check (option (float 1e-9))) "value" (Some 4.5)
          (Obs.Metrics.find_gauge m "x.level"));
    Alcotest.test_case "registries are isolated" `Quick (fun () ->
        let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
        Obs.Metrics.incr (Obs.Metrics.counter a "n");
        Alcotest.(check (option int)) "other registry empty" None
          (Obs.Metrics.find_counter b "n"));
    Alcotest.test_case "scope prefixes names" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let s = Obs.Metrics.Scope.v m "switch.e3800" in
        Obs.Metrics.incr (Obs.Metrics.Scope.counter s "flow_mods");
        Alcotest.(check (option int)) "prefixed" (Some 1)
          (Obs.Metrics.find_counter m "switch.e3800.flow_mods"));
    Alcotest.test_case "to_json snapshots with sorted names" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr (Obs.Metrics.counter m "b") ~by:2;
        Obs.Metrics.incr (Obs.Metrics.counter m "a");
        Obs.Metrics.set (Obs.Metrics.gauge m "g") 1.0;
        Obs.Histogram.observe (Obs.Metrics.histogram m "h") 0.5;
        match Obs.Metrics.to_json m with
        | Obs.Json.Obj
            [
              ("counters", Obs.Json.Obj counters);
              ("gauges", Obs.Json.Obj [("g", _)]);
              ("histograms", Obs.Json.Obj [("h", _)]);
            ] ->
          Alcotest.(check (list string)) "sorted" ["a"; "b"] (List.map fst counters)
        | _ -> Alcotest.fail "unexpected snapshot shape");
  ]

let suite =
  [
    ("obs.json", json_tests);
    ("obs.ring", ring_tests);
    ("obs.histogram", histogram_tests);
    ("obs.metrics", metrics_tests);
  ]
