(* The internet-scale RIB work, tested from three sides: a qcheck
   property driving the sharded/incremental Bgp.Rib against the naive
   Check.Oracle across every prefix length (including /0, /32 and
   covering chains); complexity regressions pinning the peer-down path
   to the failed peer's own routes and backup-group churn to the
   peer-pair bound; and unit tests for the Check.Ribscale differential
   harness itself, its planted-bug canary included. *)

let peer_ip peer = Net.Ipv4.of_octets 10 0 0 (peer + 2)

let attrs ~lp peer =
  Bgp.Attributes.make ~local_pref:lp
    ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int (65000 + peer)]]
    ~next_hop:(peer_ip peer) ()

let route ~peer a = Bgp.Route.make ~peer_id:peer ~peer_router_id:(peer_ip peer) a

(* --- property: Rib vs Oracle at every prefix length ------------------- *)

(* The prefix universe: one nested chain 10.0.0.0/0 .. /32 — every mask
   length, every shard, each covering all longer ones — plus disjoint
   /24s so inter-shard independence is exercised too. *)
let universe =
  Array.append
    (Array.init 33 (fun len -> Net.Prefix.make (Net.Ipv4.of_octets 10 0 0 0) len))
    (Array.init 3 (fun i -> Net.Prefix.make (Net.Ipv4.of_octets 172 16 i 0) 24))

let n_peers = 4

type op =
  | Op_announce of int * int * int  (* peer, prefix index, local pref *)
  | Op_withdraw of int * int
  | Op_peer_down of int
  | Op_peer_up of int

let gen_op =
  QCheck.map
    (fun (kind, peer, prefix, lp) ->
      if kind < 5 then Op_announce (peer, prefix, 100 + (10 * lp))
      else if kind < 8 then Op_withdraw (peer, prefix)
      else if kind < 9 then Op_peer_down peer
      else Op_peer_up peer)
    QCheck.(
      quad (0 -- 9) (0 -- (n_peers - 1)) (0 -- (Array.length universe - 1)) (0 -- 3))

let property_tests =
  [
    Test_seed.to_alcotest
      (QCheck.Test.make
         ~name:"sharded rib ranks like the oracle at every prefix length" ~count:300
         QCheck.(small_list gen_op)
         (fun ops ->
           let rib = Bgp.Rib.create () in
           let oracle = Check.Oracle.create () in
           for i = 0 to n_peers - 1 do
             Check.Oracle.declare_peer oracle ~id:i ~ip:(peer_ip i)
               ~mac:(Net.Mac.of_int64 (Int64.of_int (0xAA_0000_0000 + i)))
               ~port:(1 + i)
           done;
           (* A down session is silent: its announce/withdraw ops are
              dropped on both sides, exactly as the Ribscale interpreter
              treats them. *)
           let down = Array.make n_peers false in
           let apply = function
             | Op_announce (peer, idx, lp) ->
               if not down.(peer) then begin
                 let p = universe.(idx) in
                 let a = attrs ~lp peer in
                 Check.Oracle.announce oracle ~peer p a;
                 ignore (Bgp.Rib.announce rib p (route ~peer a))
               end
             | Op_withdraw (peer, idx) ->
               if not down.(peer) then begin
                 let p = universe.(idx) in
                 Check.Oracle.withdraw oracle ~peer p;
                 ignore (Bgp.Rib.withdraw rib p ~peer_id:peer)
               end
             | Op_peer_down peer ->
               down.(peer) <- true;
               Check.Oracle.peer_down oracle peer;
               ignore (Bgp.Rib.withdraw_peer rib ~peer_id:peer)
             | Op_peer_up peer ->
               (* The recovery protocol: the oracle unmasks, the RIB side
                  re-announces the session's ground truth. *)
               down.(peer) <- false;
               Check.Oracle.peer_up oracle peer;
               List.iter
                 (fun (p, a) -> ignore (Bgp.Rib.announce rib p (route ~peer a)))
                 (Check.Oracle.peer_routes oracle ~peer)
           in
           let equivalent () =
             Bgp.Rib.cardinal rib = Check.Oracle.covered oracle
             && Array.for_all
                  (fun p ->
                    List.equal Bgp.Route.equal (Bgp.Rib.ordered rib p)
                      (Bgp.Decision.rank (Check.Oracle.candidates oracle p)))
                  universe
           in
           List.for_all
             (fun op ->
               apply op;
               equivalent ())
             ops));
  ]

(* --- complexity regressions ------------------------------------------- *)

let load_views rib ~entries ~peers =
  for peer = 0 to peers - 1 do
    let share = Workloads.Rib_gen.view_share ~peers peer in
    let attrs_of =
      Workloads.Churn.route_attrs ~asn:(Bgp.Asn.of_int (64000 + peer))
        ~next_hop:(peer_ip peer)
    in
    Array.iteri
      (fun i (e : Workloads.Rib_gen.entry) ->
        if Workloads.Rib_gen.in_view ~peer ~share_pct:share i then
          ignore (Bgp.Rib.announce rib e.prefix (route ~peer (attrs_of e))))
      entries
  done

let regression_tests =
  [
    Alcotest.test_case "peer-down visits only the failed peer's prefixes" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate_internet ~seed:11L ~count:100_000 in
        let rib = Bgp.Rib.create () in
        load_views rib ~entries ~peers:100;
        let table = Bgp.Rib.cardinal rib in
        Alcotest.(check int) "full table" 100_000 table;
        (* Peer 7 holds the floor share: 1 % of the table. *)
        let victim = 7 in
        let k = Bgp.Rib.peer_prefix_count rib ~peer_id:victim in
        Alcotest.(check bool) (Fmt.str "victim holds a minority (%d)" k) true
          (k > 0 && k < table / 50);
        let v0 = Bgp.Rib.candidate_visits rib in
        let changes = Bgp.Rib.withdraw_peer rib ~peer_id:victim in
        let visits = Bgp.Rib.candidate_visits rib - v0 in
        (* Every indexed prefix produces exactly one change record... *)
        Alcotest.(check int) "one change per held prefix" k (List.length changes);
        (* ... and the candidate-list walks stay proportional to the
           victim's own routes — never to the 100k-prefix table. The
           constant is the average candidate count seen on the walk
           (~5 with this view skew); 16x leaves slack without ever
           letting an O(table) scan back in. *)
        Alcotest.(check bool)
          (Fmt.str "visits %d bounded by 16 x %d routes" visits k)
          true
          (visits <= 16 * k);
        Alcotest.(check bool) "visits well below table size" true
          (visits < table / 2));
    Alcotest.test_case "shard histogram tracks the table's length mix" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate_internet ~seed:11L ~count:20_000 in
        let rib = Bgp.Rib.create () in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            ignore
              (Bgp.Rib.announce rib e.prefix
                 (route ~peer:0
                    (Workloads.Churn.route_attrs ~asn:(Bgp.Asn.of_int 64000)
                       ~next_hop:(peer_ip 0) e))))
          entries;
        let hist = Bgp.Rib.length_histogram rib in
        Alcotest.(check int) "33 shards" 33 (Array.length hist);
        Alcotest.(check int) "histogram sums to the table"
          (Bgp.Rib.cardinal rib)
          (Array.fold_left ( + ) 0 hist);
        Alcotest.(check bool) "/24 shard dominates" true
          (hist.(24) > 10_000 && hist.(24) > hist.(23)));
    Alcotest.test_case "storm backup-group churn is bounded and reused" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate_internet ~seed:13L ~count:5_000 in
        let peers = 10 in
        let next_hops = Array.init peers peer_ip in
        let asns = Array.init peers (fun i -> Bgp.Asn.of_int (64000 + i)) in
        let rib = Bgp.Rib.create () in
        let groups = Supercharger.Backup_group.create (Supercharger.Vnh.create ()) in
        let created = ref 0 in
        Supercharger.Backup_group.on_create groups (fun _ -> incr created);
        let algo = Supercharger.Algorithm.create groups in
        let apply_events evs =
          List.iter
            (fun (ev : Workloads.Churn.event) ->
              ignore
                (Supercharger.Algorithm.process_changes algo
                   (Bgp.Rib.apply_update rib ~peer_id:ev.peer
                      ~peer_router_id:next_hops.(ev.peer) ev.update)))
            evs
        in
        load_views rib ~entries ~peers;
        (* Announce through the algorithm once so last_sent/groups exist. *)
        Bgp.Rib.iter rib (fun prefix routes ->
            ignore
              (Supercharger.Algorithm.process_change algo
                 { Bgp.Rib.prefix; before = []; after = routes }));
        let storm peer seed =
          Workloads.Churn.storm ~seed ~entries ~share_pct:60
            ~next_hop:next_hops.(peer) ~asn:asns.(peer) ~peer
        in
        let before = !created in
        apply_events (storm 0 17L);
        let first = !created - before in
        (* Groups are keyed by next-hop pairs: with 10 peers there are at
           most 10 x 9 ordered pairs, however many prefixes the storm
           touches. *)
        Alcotest.(check bool)
          (Fmt.str "first storm allocates at most n(n-1) groups (%d)" first)
          true
          (first <= peers * (peers - 1));
        let before = !created in
        apply_events (storm 0 17L);
        Alcotest.(check int) "identical second storm allocates none" 0
          (!created - before));
  ]

(* --- the Check.Ribscale harness itself -------------------------------- *)

let harness_entries = lazy (Workloads.Rib_gen.generate_internet ~seed:21L ~count:2_000)

let harness_tests =
  [
    Alcotest.test_case "generated schedules always carry a storm" `Quick (fun () ->
        for s = 0 to 19 do
          let t = Check.Ribscale.generate ~seed:(Int64.of_int s) () in
          Alcotest.(check bool)
            (Fmt.str "seed %d has a storm" s)
            true
            (List.exists
               (function Check.Ribscale.Storm _ -> true | _ -> false)
               t.Check.Ribscale.steps)
        done;
        let a = Check.Ribscale.generate ~seed:5L () in
        let b = Check.Ribscale.generate ~seed:5L () in
        Alcotest.(check bool) "deterministic" true (a = b));
    Alcotest.test_case "clean schedules pass, deterministically" `Quick (fun () ->
        let entries = Lazy.force harness_entries in
        let t = Check.Ribscale.generate ~seed:3L ~n_peers:8 ~length:8 () in
        let first = Check.Ribscale.execute ~entries t in
        Alcotest.(check (list string)) "clean pass" [] first;
        Alcotest.(check (list string))
          "same run, same verdict" first
          (Check.Ribscale.execute ~entries t));
    Alcotest.test_case "the interpreter is total on redundant events" `Quick
      (fun () ->
        let entries = Lazy.force harness_entries in
        let t =
          {
            Check.Ribscale.seed = 0L;
            n_peers = 4;
            steps =
              [
                Check.Ribscale.Peer_down 0;
                Check.Ribscale.Storm { peer = 0; share_pct = 100 };
                Check.Ribscale.Readvertise { peer = 0 };
                Check.Ribscale.Peer_down 0;
                Check.Ribscale.Peer_up 0;
                Check.Ribscale.Peer_up 0;
              ];
          }
        in
        Alcotest.(check (list string))
          "down peers are silent, re-ups absorbed" []
          (Check.Ribscale.execute ~entries t));
    Alcotest.test_case "the planted stale-route bug is caught and shrunk" `Quick
      (fun () ->
        (* The same table run_matrix builds internally (seed 3, 2k), so
           the returned counterexample replays against it. *)
        let entries = Workloads.Rib_gen.generate_internet ~seed:3L ~count:2_000 in
        match
          Check.Ribscale.run_matrix ~n_peers:8 ~length:8 ~entries:2_000 ~mutate:true
            ~seed:3L ~schedules:2 ()
        with
        | None -> Alcotest.fail "the armed bug survived undetected"
        | Some f ->
          Alcotest.(check bool) "violations reported" true
            (f.Check.Ribscale.violations <> []);
          Alcotest.(check bool) "shrunk no longer than the original" true
            (Check.Ribscale.length f.Check.Ribscale.shrunk
            <= Check.Ribscale.length f.Check.Ribscale.schedule);
          Alcotest.(check bool) "shrunk still fails" true
            (Check.Ribscale.execute ~mutate:true ~entries f.Check.Ribscale.shrunk
            <> []));
  ]

let suite =
  [
    ("ribscale.rib_vs_oracle", property_tests);
    ("ribscale.regressions", regression_tests);
    ("ribscale.harness", harness_tests);
  ]
