(* Tests for addresses, prefixes, the LPM trie, frames, the wire codec
   and the link model. *)

open Net

let ipv4 = Alcotest.testable Ipv4.pp Ipv4.equal
let mac = Alcotest.testable Mac.pp Mac.equal
let prefix = Alcotest.testable Prefix.pp Prefix.equal
let frame = Alcotest.testable Ethernet.pp Ethernet.equal

let arbitrary_ipv4 =
  QCheck.map ~rev:Ipv4.to_int32 Ipv4.of_int32 QCheck.(map Int32.of_int int)

let arbitrary_prefix =
  QCheck.map
    (fun (addr, len) -> Prefix.make (Ipv4.of_int32 addr) (len mod 33))
    QCheck.(pair (map Int32.of_int int) (0 -- 32))

let ipv4_tests =
  [
    Alcotest.test_case "octets round-trip" `Quick (fun () ->
        let a = Ipv4.of_octets 203 0 113 1 in
        let w, x, y, z = Ipv4.to_octets a in
        Alcotest.(check (list int)) "octets" [203; 0; 113; 1] [w; x; y; z]);
    Alcotest.test_case "string parse and print" `Quick (fun () ->
        Alcotest.check ipv4 "parse" (Ipv4.of_octets 10 0 0 1)
          (Ipv4.of_string_exn "10.0.0.1");
        Alcotest.(check string) "print" "255.255.255.255" (Ipv4.to_string Ipv4.broadcast));
    Alcotest.test_case "rejects malformed strings" `Quick (fun () ->
        List.iter
          (fun s ->
            match Ipv4.of_string s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          ["1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "01.2.3.4"; ""; "1..2.3"; "-1.2.3.4"]);
    Alcotest.test_case "unsigned comparison" `Quick (fun () ->
        let low = Ipv4.of_octets 1 0 0 0 and high = Ipv4.of_octets 200 0 0 0 in
        Alcotest.(check bool) "1.0.0.0 < 200.0.0.0" true (Ipv4.compare low high < 0);
        Alcotest.(check bool) "broadcast greatest" true
          (Ipv4.compare high Ipv4.broadcast < 0));
    Alcotest.test_case "succ / add / diff wrap" `Quick (fun () ->
        Alcotest.check ipv4 "succ" (Ipv4.of_octets 1 0 1 0)
          (Ipv4.succ (Ipv4.of_octets 1 0 0 255));
        Alcotest.check ipv4 "add 256" (Ipv4.of_octets 1 0 1 0)
          (Ipv4.add (Ipv4.of_octets 1 0 0 0) 256);
        Alcotest.(check int) "diff" 256
          (Ipv4.diff (Ipv4.of_octets 1 0 1 0) (Ipv4.of_octets 1 0 0 0));
        Alcotest.check ipv4 "wrap" Ipv4.any (Ipv4.succ Ipv4.broadcast));
    Alcotest.test_case "bit indexing is MSB-first" `Quick (fun () ->
        let a = Ipv4.of_octets 128 0 0 1 in
        Alcotest.(check bool) "bit 0" true (Ipv4.bit a 0);
        Alcotest.(check bool) "bit 1" false (Ipv4.bit a 1);
        Alcotest.(check bool) "bit 31" true (Ipv4.bit a 31));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"ipv4 string round-trip" ~count:500 arbitrary_ipv4
         (fun a ->
           match Ipv4.of_string (Ipv4.to_string a) with
           | Ok b -> Ipv4.equal a b
           | Error _ -> false));
  ]

let validation_tests =
  [
    Alcotest.test_case "of_octets rejects out-of-range bytes" `Quick (fun () ->
        List.iter
          (fun (a, b, c, d) ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Ipv4.of_octets a b c d);
                 false
               with Invalid_argument _ -> true))
          [(256, 0, 0, 0); (-1, 0, 0, 0); (0, 0, 0, 999)]);
    Alcotest.test_case "Prefix.nth rejects out-of-range indices" `Quick (fun () ->
        let p = Prefix.v "10.0.0.0/30" in
        List.iter
          (fun i ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Prefix.nth p i);
                 false
               with Invalid_argument _ -> true))
          [-1; 4; 100]);
    Alcotest.test_case "Prefix.make rejects bad lengths" `Quick (fun () ->
        List.iter
          (fun len ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Prefix.make Ipv4.any len);
                 false
               with Invalid_argument _ -> true))
          [-1; 33]);
    Alcotest.test_case "Mac.of_bytes validates shape" `Quick (fun () ->
        List.iter
          (fun bytes ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Mac.of_bytes bytes);
                 false
               with Invalid_argument _ -> true))
          [[|1; 2; 3|]; [|1; 2; 3; 4; 5; 256|]; [||]]);
    Alcotest.test_case "Udp.make validates ports" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Udp.make ~src_port:(-1) ~dst_port:0 ~payload:"");
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "raises high" true
          (try
             ignore (Udp.make ~src_port:0 ~dst_port:65536 ~payload:"");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "Ipv4_packet.make validates ttl; decrement floors" `Quick
      (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Ipv4_packet.make ~ttl:300 ~src:Ipv4.any ~dst:Ipv4.any
                  (Ipv4_packet.Raw { protocol = 1; body = "" }));
             false
           with Invalid_argument _ -> true);
        let p =
          Ipv4_packet.make ~ttl:1 ~src:Ipv4.any ~dst:Ipv4.any
            (Ipv4_packet.Raw { protocol = 1; body = "" })
        in
        Alcotest.(check bool) "ttl 1 dies" true (Ipv4_packet.decrement_ttl p = None));
  ]

let mac_tests =
  [
    Alcotest.test_case "string parse and print" `Quick (fun () ->
        let m = Mac.of_string_exn "00:ff:00:00:00:01" in
        Alcotest.(check string) "print" "00:ff:00:00:00:01" (Mac.to_string m));
    Alcotest.test_case "rejects malformed strings" `Quick (fun () ->
        List.iter
          (fun s ->
            match Mac.of_string s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          ["00:ff:00:00:00"; "00:ff:00:00:00:01:02"; "zz:ff:00:00:00:01"; ""; "0:0:0:0:0:1x"]);
    Alcotest.test_case "of_int64 masks to 48 bits" `Quick (fun () ->
        Alcotest.check mac "masked" (Mac.of_int64 1L)
          (Mac.of_int64 0x1_0000_0000_0001L));
    Alcotest.test_case "broadcast" `Quick (fun () ->
        Alcotest.(check bool) "is" true (Mac.is_broadcast Mac.broadcast);
        Alcotest.(check bool) "is not" false (Mac.is_broadcast Mac.zero));
    Alcotest.test_case "bytes round-trip" `Quick (fun () ->
        let m = Mac.of_bytes [|1; 2; 3; 4; 5; 6|] in
        Alcotest.(check (array int)) "bytes" [|1; 2; 3; 4; 5; 6|] (Mac.to_bytes m));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"mac string round-trip" ~count:300
         QCheck.(map (fun i -> Mac.of_int64 (Int64.of_int (abs i))) int)
         (fun m ->
           match Mac.of_string (Mac.to_string m) with
           | Ok m' -> Mac.equal m m'
           | Error _ -> false));
  ]

let prefix_tests =
  [
    Alcotest.test_case "canonicalises host bits" `Quick (fun () ->
        let p = Prefix.make (Ipv4.of_octets 10 1 2 3) 16 in
        Alcotest.check ipv4 "network" (Ipv4.of_octets 10 1 0 0) (Prefix.network p);
        Alcotest.check prefix "equal to canonical" (Prefix.v "10.1.0.0/16") p);
    Alcotest.test_case "parse / print" `Quick (fun () ->
        Alcotest.(check string) "print" "1.0.0.0/24" (Prefix.to_string (Prefix.v "1.0.0.0/24"));
        List.iter
          (fun s ->
            match Prefix.of_string s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          ["1.0.0.0"; "1.0.0.0/33"; "1.0.0.0/-1"; "x/24"; "1.0.0.0/"]);
    Alcotest.test_case "membership" `Quick (fun () ->
        let p = Prefix.v "192.168.4.0/22" in
        Alcotest.(check bool) "first" true (Prefix.mem (Ipv4.of_octets 192 168 4 0) p);
        Alcotest.(check bool) "last" true (Prefix.mem (Ipv4.of_octets 192 168 7 255) p);
        Alcotest.(check bool) "below" false (Prefix.mem (Ipv4.of_octets 192 168 3 255) p);
        Alcotest.(check bool) "above" false (Prefix.mem (Ipv4.of_octets 192 168 8 0) p);
        Alcotest.(check bool) "default route holds all" true
          (Prefix.mem Ipv4.broadcast Prefix.default_route));
    Alcotest.test_case "subset" `Quick (fun () ->
        Alcotest.(check bool) "strict" true
          (Prefix.subset (Prefix.v "10.0.1.0/24") (Prefix.v "10.0.0.0/16"));
        Alcotest.(check bool) "self" true
          (Prefix.subset (Prefix.v "10.0.0.0/16") (Prefix.v "10.0.0.0/16"));
        Alcotest.(check bool) "reverse" false
          (Prefix.subset (Prefix.v "10.0.0.0/16") (Prefix.v "10.0.1.0/24")));
    Alcotest.test_case "first / last / size / nth" `Quick (fun () ->
        let p = Prefix.v "10.0.0.0/30" in
        Alcotest.check ipv4 "first" (Ipv4.of_octets 10 0 0 0) (Prefix.first p);
        Alcotest.check ipv4 "last" (Ipv4.of_octets 10 0 0 3) (Prefix.last p);
        Alcotest.(check int) "size" 4 (Prefix.size p);
        Alcotest.check ipv4 "nth" (Ipv4.of_octets 10 0 0 2) (Prefix.nth p 2);
        Alcotest.(check int) "host size" 1 (Prefix.size (Prefix.v "10.0.0.1/32")));
    Alcotest.test_case "ordering: address then length" `Quick (fun () ->
        Alcotest.(check bool) "shorter first" true
          (Prefix.compare (Prefix.v "10.0.0.0/8") (Prefix.v "10.0.0.0/16") < 0);
        Alcotest.(check bool) "by address" true
          (Prefix.compare (Prefix.v "9.0.0.0/8") (Prefix.v "10.0.0.0/8") < 0));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"prefix string round-trip" ~count:500 arbitrary_prefix
         (fun p ->
           match Prefix.of_string (Prefix.to_string p) with
           | Ok p' -> Prefix.equal p p'
           | Error _ -> false));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"network address is member" ~count:500 arbitrary_prefix
         (fun p -> Prefix.mem (Prefix.network p) p));
  ]

let lpm_tests =
  let naive_lookup bindings addr =
    List.fold_left
      (fun best (p, v) ->
        if Prefix.mem addr p then
          match best with
          | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
          | _ -> Some (p, v)
        else best)
      None bindings
  in
  [
    Alcotest.test_case "longest match wins" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.insert t (Prefix.v "10.0.0.0/8") "eight";
        Lpm.insert t (Prefix.v "10.1.0.0/16") "sixteen";
        Lpm.insert t (Prefix.v "10.1.2.0/24") "twentyfour";
        let look a = Option.map snd (Lpm.lookup t (Ipv4.of_string_exn a)) in
        Alcotest.(check (option string)) "most specific" (Some "twentyfour") (look "10.1.2.3");
        Alcotest.(check (option string)) "mid" (Some "sixteen") (look "10.1.3.1");
        Alcotest.(check (option string)) "least" (Some "eight") (look "10.2.0.1");
        Alcotest.(check (option string)) "miss" None (look "11.0.0.1"));
    Alcotest.test_case "default route catches everything" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.insert t Prefix.default_route "default";
        Alcotest.(check (option string)) "any" (Some "default")
          (Option.map snd (Lpm.lookup t (Ipv4.of_octets 8 8 8 8))));
    Alcotest.test_case "insert replaces; remove deletes exactly" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.insert t (Prefix.v "10.0.0.0/24") 1;
        Lpm.insert t (Prefix.v "10.0.0.0/24") 2;
        Alcotest.(check int) "cardinal" 1 (Lpm.cardinal t);
        Alcotest.(check (option int)) "replaced" (Some 2)
          (Lpm.find_exact t (Prefix.v "10.0.0.0/24"));
        Lpm.remove t (Prefix.v "10.0.0.0/25");
        Alcotest.(check int) "noop remove" 1 (Lpm.cardinal t);
        Lpm.remove t (Prefix.v "10.0.0.0/24");
        Alcotest.(check int) "gone" 0 (Lpm.cardinal t);
        Alcotest.(check bool) "empty" true (Lpm.is_empty t));
    Alcotest.test_case "remove keeps covering prefix reachable" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.insert t (Prefix.v "10.0.0.0/8") "outer";
        Lpm.insert t (Prefix.v "10.1.0.0/16") "inner";
        Lpm.remove t (Prefix.v "10.1.0.0/16");
        Alcotest.(check (option string)) "falls back" (Some "outer")
          (Option.map snd (Lpm.lookup t (Ipv4.of_octets 10 1 0 1))));
    Alcotest.test_case "iter visits in trie order" `Quick (fun () ->
        let t = Lpm.create () in
        List.iter (fun s -> Lpm.insert t (Prefix.v s) s)
          ["10.0.0.0/8"; "1.0.0.0/8"; "10.1.0.0/16"];
        Alcotest.(check (list string)) "order" ["1.0.0.0/8"; "10.0.0.0/8"; "10.1.0.0/16"]
          (List.map (fun (p, _) -> Prefix.to_string p) (Lpm.to_list t)));
    Alcotest.test_case "zero-length prefix bound at root" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.insert t Prefix.default_route 0;
        Lpm.insert t (Prefix.v "128.0.0.0/1") 1;
        Alcotest.(check (option int)) "specific" (Some 1)
          (Option.map snd (Lpm.lookup t (Ipv4.of_octets 200 0 0 1)));
        Alcotest.(check (option int)) "default" (Some 0)
          (Option.map snd (Lpm.lookup t (Ipv4.of_octets 1 0 0 1))));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"lpm agrees with naive scan" ~count:200
         QCheck.(pair (small_list (pair arbitrary_prefix small_int)) (small_list arbitrary_ipv4))
         (fun (bindings, addrs) ->
           let t = Lpm.create () in
           (* Later bindings replace earlier ones for equal prefixes, so
              normalise the reference the same way. *)
           List.iter (fun (p, v) -> Lpm.insert t p v) bindings;
           let dedup =
             List.fold_left
               (fun acc (p, v) ->
                 (p, v) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) acc)
               [] bindings
           in
           List.for_all
             (fun a ->
               let expected = naive_lookup dedup a in
               let got = Lpm.lookup t a in
               match expected, got with
               | None, None -> true
               | Some (p, v), Some (p', v') -> Prefix.equal p p' && v = v'
               | _ -> false)
             addrs));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"insert then remove restores emptiness" ~count:200
         QCheck.(small_list arbitrary_prefix)
         (fun ps ->
           let t = Lpm.create () in
           List.iter (fun p -> Lpm.insert t p ()) ps;
           List.iter (fun p -> Lpm.remove t p) ps;
           Lpm.is_empty t));
  ]

let flat_fib_tests =
  let pfx = Prefix.v in
  let ip = Ipv4.of_string_exn in
  let look t a = Flat_fib.lookup_value t (ip a) in
  (* A pool spanning every level of the 16/8/8 layout, plus the churn
     pathologies named in the issue: a default route, boundary lengths
     on both sides of each stride, and adjacent /32s. *)
  let pool =
    [|
      "0.0.0.0/0"; "10.0.0.0/8"; "10.0.0.0/15"; "10.0.0.0/16"; "10.0.0.0/17";
      "10.0.0.0/20"; "10.0.0.0/24"; "10.0.0.0/25"; "10.0.0.0/28";
      "10.0.0.0/31"; "10.0.0.4/32"; "10.0.0.5/32"; "10.0.1.0/24";
      "10.128.0.0/9"; "172.16.0.0/12"; "192.168.0.0/16"; "192.168.1.0/24";
      "192.168.1.128/25"; "255.255.255.255/32";
    |]
  in
  let probe_addrs =
    [
      "0.0.0.1"; "9.255.255.255"; "10.0.0.0"; "10.0.0.1"; "10.0.0.4";
      "10.0.0.5"; "10.0.0.6"; "10.0.0.15"; "10.0.0.127"; "10.0.0.128";
      "10.0.0.255"; "10.0.1.1"; "10.0.2.1"; "10.1.255.255"; "10.128.0.1";
      "10.200.3.4"; "172.16.9.9"; "172.32.0.1"; "192.168.0.7";
      "192.168.1.5"; "192.168.1.200"; "192.168.2.1"; "255.255.255.255";
    ]
  in
  let agree msg oracle t =
    List.iter
      (fun a ->
        let addr = ip a in
        let expect = Option.map snd (Lpm.lookup oracle addr) in
        Alcotest.(check (option int))
          (Printf.sprintf "%s: lookup_value %s" msg a)
          expect
          (Flat_fib.lookup_value t addr);
        Alcotest.(check (option int))
          (Printf.sprintf "%s: lookup %s" msg a)
          expect
          (Option.map snd (Flat_fib.lookup t addr)))
      probe_addrs
  in
  [
    Alcotest.test_case "longest match across all three levels" `Quick (fun () ->
        let t = Flat_fib.create () in
        Flat_fib.insert t (pfx "10.0.0.0/8") 8;
        Flat_fib.insert t (pfx "10.1.0.0/16") 16;
        Flat_fib.insert t (pfx "10.1.2.0/24") 24;
        Flat_fib.insert t (pfx "10.1.2.128/25") 25;
        Flat_fib.insert t (pfx "10.1.2.130/32") 32;
        Alcotest.(check (option int)) "host" (Some 32) (look t "10.1.2.130");
        Alcotest.(check (option int)) "/25" (Some 25) (look t "10.1.2.131");
        Alcotest.(check (option int)) "/24" (Some 24) (look t "10.1.2.1");
        Alcotest.(check (option int)) "/16" (Some 16) (look t "10.1.3.1");
        Alcotest.(check (option int)) "/8" (Some 8) (look t "10.2.0.1");
        Alcotest.(check (option int)) "miss" None (look t "11.0.0.1");
        (* lookup reconstructs the winning prefix from the stored length *)
        Alcotest.(check (option (pair prefix int)))
          "winning prefix"
          (Some (pfx "10.1.2.128/25", 25))
          (Flat_fib.lookup t (ip "10.1.2.131")));
    Alcotest.test_case "default route is the backstop" `Quick (fun () ->
        let t = Flat_fib.create () in
        Flat_fib.insert t Prefix.default_route 0;
        Flat_fib.insert t (pfx "10.0.0.0/8") 8;
        Alcotest.(check (option int)) "covered" (Some 8) (look t "10.9.9.9");
        Alcotest.(check (option int)) "everything else" (Some 0) (look t "8.8.8.8");
        Flat_fib.remove t Prefix.default_route;
        Alcotest.(check (option int)) "backstop gone" None (look t "8.8.8.8");
        Alcotest.(check (option int)) "specific survives" (Some 8) (look t "10.9.9.9"));
    Alcotest.test_case "stride boundaries /16|/17 and /24|/25" `Quick (fun () ->
        let t = Flat_fib.create () in
        Flat_fib.insert t (pfx "10.1.0.0/16") 16;
        Flat_fib.insert t (pfx "10.1.0.0/17") 17;
        Flat_fib.insert t (pfx "10.1.0.0/24") 24;
        Flat_fib.insert t (pfx "10.1.0.0/25") 25;
        Alcotest.(check (option int)) "deepest" (Some 25) (look t "10.1.0.1");
        Alcotest.(check (option int)) "upper half of /24" (Some 24) (look t "10.1.0.200");
        Alcotest.(check (option int)) "rest of /17" (Some 17) (look t "10.1.1.1");
        Alcotest.(check (option int)) "upper half of /16" (Some 16) (look t "10.1.200.1");
        Flat_fib.remove t (pfx "10.1.0.0/25");
        Alcotest.(check (option int)) "falls to /24" (Some 24) (look t "10.1.0.1");
        Flat_fib.remove t (pfx "10.1.0.0/24");
        Alcotest.(check (option int)) "falls to /17" (Some 17) (look t "10.1.0.1"));
    Alcotest.test_case "adjacent /32s stay distinct through churn" `Quick
      (fun () ->
        let t = Flat_fib.create () in
        Flat_fib.insert t (pfx "10.0.0.4/32") 4;
        Flat_fib.insert t (pfx "10.0.0.5/32") 5;
        Alcotest.(check (option int)) "four" (Some 4) (look t "10.0.0.4");
        Alcotest.(check (option int)) "five" (Some 5) (look t "10.0.0.5");
        Flat_fib.remove t (pfx "10.0.0.4/32");
        Alcotest.(check (option int)) "four gone" None (look t "10.0.0.4");
        Alcotest.(check (option int)) "five unharmed" (Some 5) (look t "10.0.0.5");
        (* remove-then-reinsert lands in a recycled slot *)
        Flat_fib.insert t (pfx "10.0.0.4/32") 44;
        Alcotest.(check (option int)) "reinserted" (Some 44) (look t "10.0.0.4");
        Alcotest.(check int) "cardinal" 2 (Flat_fib.cardinal t));
    Alcotest.test_case "removal recycles interior nodes" `Quick (fun () ->
        let t = Flat_fib.create () in
        let ps =
          List.init 8 (fun i -> Prefix.make (Ipv4.of_octets 10 i 0 0) 24)
        in
        List.iter (fun p -> Flat_fib.insert t p 1) ps;
        Alcotest.(check bool) "nodes allocated" true (Flat_fib.nodes t > 0);
        List.iter (fun p -> Flat_fib.remove t p) ps;
        Alcotest.(check int) "all recycled" 0 (Flat_fib.nodes t);
        Alcotest.(check bool) "empty" true (Flat_fib.is_empty t);
        (* the freed pool is reused, not leaked *)
        List.iter (fun p -> Flat_fib.insert t p 2) ps;
        Alcotest.(check int) "cardinal back" 8 (Flat_fib.cardinal t);
        Alcotest.(check (option int)) "reused nodes serve lookups" (Some 2)
          (look t "10.3.0.9"));
    Alcotest.test_case "to_list and find_exact mirror the trie" `Quick
      (fun () ->
        let t = Flat_fib.create () and oracle = Lpm.create () in
        Array.iteri
          (fun i s ->
            Flat_fib.insert t (pfx s) i;
            Lpm.insert oracle (pfx s) i)
          pool;
        Alcotest.(check int) "cardinal" (Lpm.cardinal oracle) (Flat_fib.cardinal t);
        Alcotest.(check bool) "same bindings" true
          (List.equal
             (fun (p, v) (q, w) -> Prefix.equal p q && Int.equal v w)
             (Lpm.to_list oracle) (Flat_fib.to_list t));
        Alcotest.(check (option int)) "find_exact hit" (Some 10)
          (Flat_fib.find_exact t (pfx "10.0.0.4/32"));
        Alcotest.(check (option int)) "find_exact miss" None
          (Flat_fib.find_exact t (pfx "10.0.0.6/32"));
        agree "full pool" oracle t);
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"flat fib agrees with the trie under churn"
         ~count:150
         QCheck.(
           small_list (pair (int_bound (Array.length pool - 1)) (option small_int)))
         (fun ops ->
           let t = Flat_fib.create () and oracle = Lpm.create () in
           List.iter
             (fun (i, op) ->
               let p = pfx pool.(i) in
               match op with
               | Some v ->
                 Flat_fib.insert t p v;
                 Lpm.insert oracle p v
               | None ->
                 Flat_fib.remove t p;
                 Lpm.remove oracle p)
             ops;
           Flat_fib.cardinal t = Lpm.cardinal oracle
           && List.equal
                (fun (p, v) (q, w) -> Prefix.equal p q && Int.equal v w)
                (Flat_fib.to_list t) (Lpm.to_list oracle)
           && List.for_all
                (fun a ->
                  let addr = ip a in
                  let expect = Option.map snd (Lpm.lookup oracle addr) in
                  Option.equal Int.equal expect (Flat_fib.lookup_value t addr)
                  && Option.equal Int.equal expect
                       (Option.map snd (Flat_fib.lookup t addr)))
                probe_addrs));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"lookup_batch agrees with lookup_value" ~count:150
         QCheck.(
           pair
             (small_list (pair (int_bound (Array.length pool - 1)) small_int))
             (list_of_size Gen.(0 -- 40) arbitrary_ipv4))
         (fun (bindings, addrs) ->
           let t = Flat_fib.create () in
           List.iter (fun (i, v) -> Flat_fib.insert t (pfx pool.(i)) v) bindings;
           let addrs = Array.of_list addrs in
           let out = Array.make (Array.length addrs) None in
           Flat_fib.lookup_batch t addrs out;
           Array.for_all2
             (fun a got ->
               Option.equal Int.equal (Flat_fib.lookup_value t a) got)
             addrs out));
    Alcotest.test_case "lookup_batch checks output capacity" `Quick (fun () ->
        let t = Flat_fib.create () in
        Alcotest.check_raises "short out"
          (Invalid_argument "Flat_fib.lookup_batch: output array shorter than input")
          (fun () ->
            Flat_fib.lookup_batch t [| ip "10.0.0.1"; ip "10.0.0.2" |]
              (Array.make 1 None)));
  ]

let sample_udp_frame =
  Ethernet.make
    ~src:(Mac.of_string_exn "00:aa:00:00:00:01")
    ~dst:(Mac.of_string_exn "00:bb:00:00:00:02")
    (Ethernet.Ipv4
       (Ipv4_packet.udp ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 1 2 3 4)
          ~src_port:5001 ~dst_port:9000 "hello world"))

let sample_arp_frame =
  Ethernet.make
    ~src:(Mac.of_string_exn "00:aa:00:00:00:01")
    ~dst:Mac.broadcast
    (Ethernet.Arp
       (Arp.request
          ~sender_mac:(Mac.of_string_exn "00:aa:00:00:00:01")
          ~sender_ip:(Ipv4.of_octets 10 0 0 1)
          ~target_ip:(Ipv4.of_octets 10 0 0 2)))

let arbitrary_frame =
  let open QCheck in
  let gen_mac = map (fun i -> Mac.of_int64 (Int64.of_int (abs i))) int in
  let gen_payload =
    oneof
      [
        map
          (fun ((src, dst), (sp, dp), body) ->
            Ethernet.Ipv4
              (Ipv4_packet.udp ~src ~dst ~src_port:(abs sp mod 65536)
                 ~dst_port:(abs dp mod 65536) body))
          (triple (pair arbitrary_ipv4 arbitrary_ipv4) (pair int int) small_printable_string);
        map
          (fun ((src, dst), proto, body) ->
            Ethernet.Ipv4
              (Ipv4_packet.make ~src ~dst
                 (Ipv4_packet.Raw { protocol = 1 + (abs proto mod 16); body })))
          (triple (pair arbitrary_ipv4 arbitrary_ipv4) int small_printable_string);
        map
          (fun (sm, (si, ti)) ->
            Ethernet.Arp (Arp.request ~sender_mac:sm ~sender_ip:si ~target_ip:ti))
          (pair gen_mac (pair arbitrary_ipv4 arbitrary_ipv4));
      ]
  in
  QCheck.map
    (fun ((src, dst), payload) -> Ethernet.make ~src ~dst payload)
    (pair (pair gen_mac gen_mac) gen_payload)

let wire_tests =
  [
    Alcotest.test_case "udp frame round-trips" `Quick (fun () ->
        match Wire.decode_frame (Wire.encode_frame sample_udp_frame) with
        | Ok f -> Alcotest.check frame "same" sample_udp_frame f
        | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e);
    Alcotest.test_case "arp frame round-trips" `Quick (fun () ->
        match Wire.decode_frame (Wire.encode_frame sample_arp_frame) with
        | Ok f -> Alcotest.check frame "same" sample_arp_frame f
        | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e);
    Alcotest.test_case "encoded length matches model" `Quick (fun () ->
        Alcotest.(check int) "udp" (Ethernet.length sample_udp_frame)
          (String.length (Wire.encode_frame sample_udp_frame));
        Alcotest.(check int) "arp" (Ethernet.length sample_arp_frame)
          (String.length (Wire.encode_frame sample_arp_frame)));
    Alcotest.test_case "ipv4 checksum is validated" `Quick (fun () ->
        let raw = Bytes.of_string (Wire.encode_frame sample_udp_frame) in
        (* Corrupt the TTL byte inside the IP header. *)
        Bytes.set raw 22 '\x01';
        match Wire.decode_frame (Bytes.to_string raw) with
        | Error (Wire.Bad_checksum "ipv4") -> ()
        | Ok _ -> Alcotest.fail "accepted corrupted header"
        | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e);
    Alcotest.test_case "udp checksum is validated" `Quick (fun () ->
        let raw = Bytes.of_string (Wire.encode_frame sample_udp_frame) in
        (* Corrupt the first payload byte (beyond the IP header). *)
        Bytes.set raw (14 + 20 + 8) 'X';
        match Wire.decode_frame (Bytes.to_string raw) with
        | Error (Wire.Bad_checksum "udp") -> ()
        | Ok _ -> Alcotest.fail "accepted corrupted payload"
        | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e);
    Alcotest.test_case "truncation reports an error" `Quick (fun () ->
        let raw = Wire.encode_frame sample_udp_frame in
        for cut = 0 to String.length raw - 1 do
          match Wire.decode_frame (String.sub raw 0 cut) with
          | Ok _ -> Alcotest.failf "accepted truncation at %d" cut
          | Error _ -> ()
        done);
    Alcotest.test_case "internet checksum known vector" `Quick (fun () ->
        (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d. *)
        let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
        Alcotest.(check int) "sum" 0x220d (Wire.internet_checksum data));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"frame codec round-trip" ~count:300 arbitrary_frame
         (fun f ->
           match Wire.decode_frame (Wire.encode_frame f) with
           | Ok f' -> Ethernet.equal f f'
           | Error _ -> false));
  ]

let link_tests =
  [
    Alcotest.test_case "delivers after delay" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e ~delay:(Sim.Time.of_us 7) () in
        let got = ref None in
        Link.attach link Link.B (fun f -> got := Some (f, Sim.Engine.now e));
        Link.send link Link.A sample_udp_frame;
        Sim.Engine.run e;
        match !got with
        | Some (f, at) ->
          Alcotest.check frame "frame" sample_udp_frame f;
          Alcotest.(check int64) "delay" 7_000L (Sim.Time.to_ns at)
        | None -> Alcotest.fail "not delivered");
    Alcotest.test_case "both directions" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e () in
        let a = ref 0 and b = ref 0 in
        Link.attach link Link.A (fun _ -> incr a);
        Link.attach link Link.B (fun _ -> incr b);
        Link.send link Link.A sample_udp_frame;
        Link.send link Link.B sample_udp_frame;
        Sim.Engine.run e;
        Alcotest.(check (pair int int)) "one each" (1, 1) (!a, !b));
    Alcotest.test_case "down link drops sends" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e () in
        let got = ref 0 in
        Link.attach link Link.B (fun _ -> incr got);
        Link.set_up link false;
        Link.send link Link.A sample_udp_frame;
        Sim.Engine.run e;
        Alcotest.(check int) "dropped" 0 !got;
        Alcotest.(check int) "counted" 1 (Link.frames_dropped link));
    Alcotest.test_case "in-flight frames die when the cable is pulled" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e ~delay:(Sim.Time.of_ms 1) () in
        let got = ref 0 in
        Link.attach link Link.B (fun _ -> incr got);
        Link.send link Link.A sample_udp_frame;
        ignore
          (Sim.Engine.schedule_after e (Sim.Time.of_us 500) (fun () ->
               Link.set_up link false));
        Sim.Engine.run e;
        Alcotest.(check int) "lost" 0 !got);
    Alcotest.test_case "frames sent before recovery stay lost" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e ~delay:(Sim.Time.of_ms 1) () in
        let got = ref 0 in
        Link.attach link Link.B (fun _ -> incr got);
        Link.set_up link false;
        Link.send link Link.A sample_udp_frame;
        Link.set_up link true;
        Link.send link Link.A sample_udp_frame;
        Sim.Engine.run e;
        Alcotest.(check int) "only post-recovery frame" 1 !got);
  ]


let pcap_tests =
  [
    Alcotest.test_case "write then read back round-trips" `Quick (fun () ->
        let path = Filename.temp_file "sc_pcap" ".pcap" in
        let w = Pcap.create_file path in
        Pcap.write_frame w (Sim.Time.of_us 100) sample_udp_frame;
        Pcap.write_frame w (Sim.Time.of_sec 2.5) sample_arp_frame;
        Alcotest.(check int) "count" 2 (Pcap.frames_written w);
        Pcap.close w;
        (match Pcap.read_file path with
        | Ok [(t1, f1); (t2, f2)] ->
          Alcotest.(check int64) "t1" (Sim.Time.to_ns (Sim.Time.of_us 100))
            (Sim.Time.to_ns t1);
          Alcotest.(check int64) "t2" (Sim.Time.to_ns (Sim.Time.of_sec 2.5))
            (Sim.Time.to_ns t2);
          Alcotest.check frame "f1" sample_udp_frame f1;
          Alcotest.check frame "f2" sample_arp_frame f2
        | Ok _ -> Alcotest.fail "expected two records"
        | Error e -> Alcotest.failf "read failed: %a" Wire.pp_error e);
        Sys.remove path);
    Alcotest.test_case "global header is nanosecond pcap + ethernet" `Quick
      (fun () ->
        let path = Filename.temp_file "sc_pcap" ".pcap" in
        let w = Pcap.create_file path in
        Pcap.close w;
        let ic = open_in_bin path in
        let header = really_input_string ic 24 in
        close_in ic;
        Sys.remove path;
        Alcotest.(check string) "magic" "\xa1\xb2\x3c\x4d" (String.sub header 0 4);
        Alcotest.(check int) "linktype" 1 (Char.code header.[23]));
    Alcotest.test_case "link tap captures both directions and lost frames" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let link = Link.create e () in
        Link.attach link Link.A (fun _ -> ());
        Link.attach link Link.B (fun _ -> ());
        let path = Filename.temp_file "sc_pcap" ".pcap" in
        let w = Pcap.create_file path in
        Pcap.tap_link w link;
        Link.send link Link.A sample_udp_frame;
        Link.send link Link.B sample_arp_frame;
        Link.set_up link false;
        Link.send link Link.A sample_udp_frame (* lost, still on the tap *);
        Sim.Engine.run e;
        Pcap.close w;
        (match Pcap.read_file path with
        | Ok records -> Alcotest.(check int) "three frames" 3 (List.length records)
        | Error err -> Alcotest.failf "read failed: %a" Wire.pp_error err);
        Sys.remove path);
  ]

let suite =
  [
    ("net.ipv4", ipv4_tests);
    ("net.validation", validation_tests);
    ("net.mac", mac_tests);
    ("net.prefix", prefix_tests);
    ("net.lpm", lpm_tests);
    ("net.flat_fib", flat_fib_tests);
    ("net.wire", wire_tests);
    ("net.link", link_tests);
    ("net.pcap", pcap_tests);
  ]
