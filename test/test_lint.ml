(* Tests for sc_lint: every rule fires on a minimal fixture, a clean
   fixture fires nothing, [@lint.allow] suppresses, and the real tree
   at HEAD lints clean (the meta-test CI relies on). Fixtures only
   need to parse, not typecheck, so they stay tiny. *)

let lint ?(file = "lib/fake/fixture.ml") src = Lint.Engine.lint_source ~file src

let rules ds = List.map (fun d -> d.Lint.Diagnostic.rule) ds

let check_rules msg expected ds =
  Alcotest.(check (list string)) msg expected (rules ds)

let rule_tests =
  [
    Alcotest.test_case "no-ambient-nondeterminism: Sys.time" `Quick (fun () ->
        check_rules "flagged" ["no-ambient-nondeterminism"]
          (lint "let t = Sys.time ()"));
    Alcotest.test_case "no-ambient-nondeterminism: Random nested" `Quick
      (fun () ->
        (* Two findings since lint v2: the ambient RNG itself, and the
           module-level Random.State it creates is shared mutable
           state. *)
        check_rules "Random.State too"
          ["no-shared-mutable-global"; "no-ambient-nondeterminism"]
          (lint "let s = Random.State.make [| 3 |]"));
    Alcotest.test_case "no-ambient-nondeterminism: only inside lib/" `Quick
      (fun () ->
        check_rules "bin/ may read the clock" []
          (lint ~file:"bin/sc_lab.ml" "let t = Sys.time ()");
        check_rules "Sim.Time itself is exempt" []
          (lint ~file:"lib/sim/time.ml" "let t = Sys.time ()"));
    Alcotest.test_case "no-polymorphic-compare: net-ish (=)" `Quick (fun () ->
        check_rules "prefix = q" ["no-polymorphic-compare"]
          (lint "let f prefix q = prefix = q"));
    Alcotest.test_case "no-polymorphic-compare: bare compare" `Quick (fun () ->
        check_rules "List.sort compare" ["no-polymorphic-compare"]
          (lint "let f l = List.sort compare l"));
    Alcotest.test_case "no-polymorphic-compare: local compare is fine" `Quick
      (fun () ->
        check_rules "file defines its own compare" []
          (lint "let compare a b = Int.compare a b\nlet f l = List.sort compare l"));
    Alcotest.test_case "no-polymorphic-compare: List.mem on net value" `Quick
      (fun () ->
        check_rules "List.mem prefix" ["no-polymorphic-compare"]
          (lint "let f prefix l = List.mem prefix l"));
    Alcotest.test_case "no-polymorphic-compare: (=) against None" `Quick
      (fun () ->
        (* The lib/net trie pattern this rule extension exists for:
           comparing a plain-looking option field still recurses into
           the payload structurally. *)
        check_rules "node.value = None" ["no-polymorphic-compare"]
          (lint "let f node = node.value = None"));
    Alcotest.test_case "no-polymorphic-compare: (<>) against None" `Quick
      (fun () ->
        check_rules "task <> None" ["no-polymorphic-compare"]
          (lint "let f t = t.task <> None"));
    Alcotest.test_case "no-polymorphic-compare: Option.is_none is the fix" `Quick
      (fun () ->
        check_rules "Option.is_none node.value" []
          (lint "let f node = Option.is_none node.value"));
    Alcotest.test_case "no-polymorphic-compare: None in a record literal is fine"
      `Quick (fun () ->
        check_rules "field initialised to None" []
          (lint "type r = { v : int option }\nlet f () = { v = None }"));
    Alcotest.test_case "ordered-hashtbl-escape: fold into JSON" `Quick
      (fun () ->
        check_rules "unsorted fold feeds Json" ["ordered-hashtbl-escape"]
          (lint
             "let to_json t = Json.Obj (Hashtbl.fold (fun k v a -> (k, v) :: \
              a) t [])"));
    Alcotest.test_case "ordered-hashtbl-escape: sort launders the fold" `Quick
      (fun () ->
        check_rules "sorted fold is fine" []
          (lint
             "let to_json t = Json.List (List.sort String.compare \
              (Hashtbl.fold (fun k _ a -> k :: a) t []))"));
    Alcotest.test_case "no-catch-all-on-events: wildcard on OF messages"
      `Quick (fun () ->
        check_rules "wildcard swallows new events" ["no-catch-all-on-events"]
          (lint "let f = function Packet_in p -> p | Hello -> 0 | _ -> 1"));
    Alcotest.test_case "no-catch-all-on-events: open variants untouched"
      `Quick (fun () ->
        check_rules "Some/None matches keep their wildcard" []
          (lint "let f = function Some _ -> 0 | _ -> 1"));
    Alcotest.test_case "fast-path-purity: failwith in controller" `Quick
      (fun () ->
        check_rules "controller must degrade"
          ["fast-path-purity"]
          (lint ~file:"lib/core/controller.ml" "let g () = failwith \"boom\"");
        check_rules "assert false too" ["fast-path-purity"]
          (lint ~file:"lib/openflow/switch.ml" "let g () = assert false");
        check_rules "other modules may raise" []
          (lint "let g () = failwith \"boom\""));
    Alcotest.test_case "clean fixture triggers nothing" `Quick (fun () ->
        check_rules "disciplined code" []
          (lint
             "let f a b = Prefix.equal a b\n\
              let keys t = List.sort String.compare (Hashtbl.fold (fun k _ a \
              -> k :: a) t [])\n\
              let g = function Packet_in p -> Some p | Hello -> None\n"));
    Alcotest.test_case "parse error becomes a diagnostic" `Quick (fun () ->
        check_rules "no exception" ["parse-error"] (lint "let let let"));
  ]

let suppression_tests =
  [
    Alcotest.test_case "expression-level allow" `Quick (fun () ->
        check_rules "suppressed" []
          (lint "let t = (Sys.time () [@lint.allow \"no-ambient-nondeterminism\"])"));
    Alcotest.test_case "allow of the wrong rule does not suppress" `Quick
      (fun () ->
        check_rules "still flagged" ["no-ambient-nondeterminism"]
          (lint "let t = (Sys.time () [@lint.allow \"fast-path-purity\"])"));
    Alcotest.test_case "floating allow covers the rest of the file" `Quick
      (fun () ->
        check_rules "whole file suppressed" []
          (lint
             "[@@@lint.allow \"no-ambient-nondeterminism\"]\n\
              let a = Sys.time ()\nlet b = Random.bits ()"));
    Alcotest.test_case "malformed allow payload is itself flagged" `Quick
      (fun () ->
        check_rules "bad payload" ["no-ambient-nondeterminism"; "lint-allow"]
          (lint "let t = (Sys.time () [@lint.allow 42])"));
  ]

(* ---- lint v2: whole-program passes ------------------------------- *)

let lint_many ?only ?except sources =
  (Lint.Engine.lint_sources ?only ?except sources).Lint.Engine.diagnostics

let shared_tests =
  [
    Alcotest.test_case "no-shared-mutable-global: bare Hashtbl" `Quick
      (fun () ->
        check_rules "flagged" ["no-shared-mutable-global"]
          (lint "let table = Hashtbl.create 16"));
    Alcotest.test_case "no-shared-mutable-global: bare ref" `Quick (fun () ->
        check_rules "flagged" ["no-shared-mutable-global"]
          (lint "let hits = ref 0"));
    Alcotest.test_case "no-shared-mutable-global: Atomic is the fix" `Quick
      (fun () ->
        check_rules "atomic is fine" [] (lint "let hits = Atomic.make 0"));
    Alcotest.test_case "no-shared-mutable-global: guarded_by a real mutex"
      `Quick (fun () ->
        check_rules "guarded is fine" []
          (lint
             "let m = Mutex.create ()\n\
              let reg = Hashtbl.create 8 [@@lint.guarded_by \"m\"]"));
    Alcotest.test_case "no-shared-mutable-global: guarded_by a ghost" `Quick
      (fun () ->
        (* The guard must exist and be a Mutex.create sibling. *)
        check_rules "missing guard" ["no-shared-mutable-global"]
          (lint "let reg = Hashtbl.create 8 [@@lint.guarded_by \"m\"]");
        check_rules "guard is not a mutex" ["no-shared-mutable-global"]
          (lint
             "let m = ref 0 [@@lint.domain_local \"test fixture\"]\n\
              let reg = Hashtbl.create 8 [@@lint.guarded_by \"m\"]"));
    Alcotest.test_case "no-shared-mutable-global: domain_local rationale"
      `Quick (fun () ->
        check_rules "justified" []
          (lint "let t = Hashtbl.create 4 [@@lint.domain_local \"test only\"]");
        (* A malformed annotation grants nothing: the global stays
           unguarded AND the annotation itself is flagged. *)
        check_rules "rationale is mandatory"
          ["no-shared-mutable-global"; "lint-annotation"]
          (lint "let t = Hashtbl.create 4 [@@lint.domain_local]"));
    Alcotest.test_case "no-shared-mutable-global: allow suppresses" `Quick
      (fun () ->
        check_rules "suppressed" []
          (lint
             "let t = Hashtbl.create 16 [@@lint.allow \
              \"no-shared-mutable-global\"]"));
    Alcotest.test_case "no-shared-mutable-global: functions are not globals"
      `Quick (fun () ->
        check_rules "constructor function is fine" []
          (lint "let make () = Hashtbl.create 16"));
    Alcotest.test_case "no-shared-mutable-global: bin/ is exempt" `Quick
      (fun () ->
        check_rules "CLI state is single-domain" []
          (lint ~file:"bin/sc_lab.ml" "let t = Hashtbl.create 16"));
    Alcotest.test_case "no-shared-mutable-global: through a local constructor"
      `Quick (fun () ->
        (* One-step transitivity: the global is mutable because the
           local function it calls returns fresh mutable state. *)
        check_rules "constructed global still flagged"
          ["no-shared-mutable-global"]
          (lint "let create () = Hashtbl.create 4\nlet default = create ()"));
    Alcotest.test_case "unknown lint attribute is flagged" `Quick (fun () ->
        check_rules "typo'd annotation" ["lint-annotation"]
          (lint "let f x = x [@@lint.zeroalloc]"));
  ]

let cross_tests =
  [
    Alcotest.test_case "cross-domain-unsafe: entry reaches a ref" `Quick
      (fun () ->
        let ds =
          lint_many
            [
              ("lib/fake/a.ml",
               "let global = ref 0 [@@lint.allow \
                \"no-shared-mutable-global\"]\n\
                let bump () = incr global");
              ("lib/fake/b.ml",
               "let[@lint.domain_entry \"worker fixture\"] run () = A.bump ()");
            ]
        in
        check_rules "reachable through two modules" ["cross-domain-unsafe"] ds;
        (* The finding lands on the entry binding, not the global. *)
        Alcotest.(check (list string)) "at the entry" ["lib/fake/b.ml"]
          (List.map (fun d -> d.Lint.Diagnostic.file) ds);
        Alcotest.(check bool) "chain in message" true
          (List.for_all
             (fun d ->
               let m = d.Lint.Diagnostic.message in
               let has sub =
                 let n = String.length sub and l = String.length m in
                 let rec go i =
                   i + n <= l && (String.sub m i n = sub || go (i + 1))
                 in
                 go 0
               in
               has "Fake.B.run" && has "Fake.A.global")
             ds));
    Alcotest.test_case "cross-domain-unsafe: Atomic breaks the chain" `Quick
      (fun () ->
        check_rules "atomic state is domain-safe" []
          (lint_many
             [
               ("lib/fake/a.ml",
                "let global = Atomic.make 0\n\
                 let bump () = Atomic.incr global");
               ("lib/fake/b.ml",
                "let[@lint.domain_entry \"worker fixture\"] run () = A.bump ()");
             ]));
    Alcotest.test_case "cross-domain-unsafe: reachable nondeterminism" `Quick
      (fun () ->
        check_rules "allowed clock still poisons a domain entry"
          ["cross-domain-unsafe"]
          (lint_many
             [
               ("lib/fake/a.ml",
                "let now () = (Sys.time () [@lint.allow \
                 \"no-ambient-nondeterminism\"])");
               ("lib/fake/b.ml",
                "let[@lint.domain_entry \"worker fixture\"] run () = A.now ()");
             ]));
    Alcotest.test_case "cross-domain-unsafe: allow at the entry" `Quick
      (fun () ->
        check_rules "entry owns its suppression" []
          (lint_many
             [
               ("lib/fake/a.ml",
                "let global = ref 0 [@@lint.allow \
                 \"no-shared-mutable-global\"]\n\
                 let bump () = incr global");
               ("lib/fake/b.ml",
                "let[@lint.domain_entry \"worker fixture\"] run () = A.bump \
                 () [@@lint.allow \"cross-domain-unsafe\"]");
             ]));
    Alcotest.test_case "domain_entry rationale is mandatory" `Quick (fun () ->
        check_rules "bare entry annotation" ["lint-annotation"]
          (lint "let[@lint.domain_entry] run () = ()"));
  ]

let alloc_tests =
  [
    Alcotest.test_case "hot-path-alloc: closure capture" `Quick (fun () ->
        (* Leading [fun]s are the function's own parameters; a closure
           is a [fun] built inside the body. *)
        check_rules "inner closure" ["hot-path-alloc"]
          (lint "let[@lint.zero_alloc] f x = let g y = x + y in g x");
        check_rules "curried parameters are not closures" []
          (lint "let[@lint.zero_alloc] f x = fun y -> x + y"));
    Alcotest.test_case "hot-path-alloc: tuple construction" `Quick (fun () ->
        check_rules "tuple" ["hot-path-alloc"]
          (lint "let[@lint.zero_alloc] f x = (x, x)"));
    Alcotest.test_case "hot-path-alloc: List combinator" `Quick (fun () ->
        check_rules "List.map" ["hot-path-alloc"]
          (lint "let[@lint.zero_alloc] f l = List.map succ l"));
    Alcotest.test_case "hot-path-alloc: sprintf" `Quick (fun () ->
        check_rules "Printf.sprintf" ["hot-path-alloc"]
          (lint "let[@lint.zero_alloc] f x = Printf.sprintf \"%d\" x"));
    Alcotest.test_case "hot-path-alloc: Some construction" `Quick (fun () ->
        check_rules "fresh Some" ["hot-path-alloc"]
          (lint "let[@lint.zero_alloc] f x = Some x"));
    Alcotest.test_case "hot-path-alloc: shared-cell idiom is the fix" `Quick
      (fun () ->
        check_rules "returning the stored option" []
          (lint
             "let[@lint.zero_alloc] f t = match t.cell with None -> None | \
              some -> some"));
    Alcotest.test_case "hot-path-alloc: cold paths may raise" `Quick
      (fun () ->
        check_rules "invalid_arg guard" []
          (lint
             "let[@lint.zero_alloc] f x = if x < 0 then invalid_arg \"f\" \
              else x + 1"));
    Alcotest.test_case "hot-path-alloc: allow suppresses" `Quick (fun () ->
        check_rules "suppressed scratch allocation" []
          (lint
             "let[@lint.zero_alloc] f x = ((x, x) [@lint.allow \
              \"hot-path-alloc\"])"));
    Alcotest.test_case "hot-path-alloc: cross-module partial application"
      `Quick (fun () ->
        check_rules "closure from under-application" ["hot-path-alloc"]
          (lint_many
             [
               ("lib/fake/a.ml", "let add3 a b c = a + b + c");
               ("lib/fake/b.ml", "let[@lint.zero_alloc] g x = A.add3 x 1");
             ]);
        check_rules "full application is fine" []
          (lint_many
             [
               ("lib/fake/a.ml", "let add3 a b c = a + b + c");
               ("lib/fake/b.ml", "let[@lint.zero_alloc] g x = A.add3 x 1 2");
             ]));
  ]

let selection_tests =
  [
    Alcotest.test_case "--only selects one rule" `Quick (fun () ->
        let src =
          "let table = Hashtbl.create 16\nlet t = Sys.time ()"
        in
        check_rules "only shared" ["no-shared-mutable-global"]
          (lint_many ~only:["no-shared-mutable-global"]
             [("lib/fake/fixture.ml", src)]);
        check_rules "except shared"
          ["no-ambient-nondeterminism"]
          (lint_many ~except:["no-shared-mutable-global"]
             [("lib/fake/fixture.ml", src)]));
    Alcotest.test_case "parse-error pierces --only" `Quick (fun () ->
        check_rules "unreadable file always surfaces" ["parse-error"]
          (lint_many ~only:["no-polymorphic-compare"]
             [("lib/fake/fixture.ml", "let let let")]));
  ]

let state_tests =
  [
    Alcotest.test_case "lint/state-v1 golden render" `Quick (fun () ->
        let report =
          Lint.Engine.lint_sources
            [
              ("lib/fake/a.ml",
               "let m = Mutex.create ()\n\
                let reg = Hashtbl.create 8 [@@lint.guarded_by \"m\"]\n\
                let count = Atomic.make 0");
            ]
        in
        let golden =
          "{\"schema\":\"lint/state-v1\",\"globals\":3,\"unguarded\":0,\
           \"inventory\":[\
           {\"qname\":\"Fake.A.count\",\"file\":\"lib/fake/a.ml\",\
           \"kind\":\"atomic\",\"class\":\"atomic\"},\
           {\"qname\":\"Fake.A.m\",\"file\":\"lib/fake/a.ml\",\
           \"kind\":\"mutex\",\"class\":\"mutex-guard\"},\
           {\"qname\":\"Fake.A.reg\",\"file\":\"lib/fake/a.ml\",\
           \"kind\":\"hashtbl\",\"class\":\"mutex-guarded\",\
           \"guard\":\"m\"}]}\n"
        in
        Alcotest.(check string) "byte-stable inventory" golden
          (Lint.State.render report.Lint.Engine.index));
    Alcotest.test_case "unguarded counting" `Quick (fun () ->
        let report =
          Lint.Engine.lint_sources
            [("lib/fake/a.ml", "let leak = ref 0")]
        in
        let es = Lint.State.entries report.Lint.Engine.index in
        Alcotest.(check int) "one global" 1 (List.length es);
        Alcotest.(check int) "counted unguarded" 1 (Lint.State.unguarded es));
    Alcotest.test_case "drift detection is byte comparison" `Quick (fun () ->
        let report =
          Lint.Engine.lint_sources
            [("lib/fake/a.ml", "let count = Atomic.make 0")]
        in
        let index = report.Lint.Engine.index in
        let path = Filename.temp_file "sc_lint_state" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sys.remove path;
            Alcotest.(check bool) "missing" true
              (Lint.State.check ~committed_path:path index
               = Lint.State.Missing_committed);
            Lint.State.write ~path index;
            Alcotest.(check bool) "fresh matches" true
              (Lint.State.check ~committed_path:path index
               = Lint.State.Fresh_matches);
            let oc = open_out_gen [Open_append] 0o644 path in
            output_string oc "x";
            close_out oc;
            Alcotest.(check bool) "diverged" true
              (Lint.State.check ~committed_path:path index
               = Lint.State.Diverged)));
  ]

(* A throwaway tree on disk, for the cache round-trip. *)
let with_temp_tree f =
  let dir = Filename.temp_file "sc_lint_tree" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  Sys.mkdir (Filename.concat dir "lib/fake") 0o755;
  let write path src =
    let oc = open_out (Filename.concat dir path) in
    output_string oc src;
    close_out oc
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir write)

let cache_tests =
  [
    Alcotest.test_case "warm re-run parses nothing" `Quick (fun () ->
        with_temp_tree (fun root write ->
            write "lib/fake/a.ml" "let f x = x + 1\n";
            write "lib/fake/b.ml" "let g x = x * 2\n";
            let cache = Filename.concat root "facts.cache" in
            let cold = Lint.Engine.scan_tree ~dirs:["lib"] ~cache root in
            Alcotest.(check int) "cold run parses" 0
              cold.Lint.Engine.cache_hits;
            Alcotest.(check int) "two files" 2 cold.Lint.Engine.files;
            let warm = Lint.Engine.scan_tree ~dirs:["lib"] ~cache root in
            Alcotest.(check int) "warm run hits every file" 2
              warm.Lint.Engine.cache_hits;
            Alcotest.(check bool) "same diagnostics" true
              (List.equal Lint.Diagnostic.equal cold.Lint.Engine.diagnostics
                 warm.Lint.Engine.diagnostics)));
    Alcotest.test_case "an edit invalidates only that file" `Quick (fun () ->
        with_temp_tree (fun root write ->
            write "lib/fake/a.ml" "let f x = x + 1\n";
            write "lib/fake/b.ml" "let g x = x * 2\n";
            let cache = Filename.concat root "facts.cache" in
            ignore (Lint.Engine.scan_tree ~dirs:["lib"] ~cache root);
            write "lib/fake/a.ml" "let f x = x + 2\n";
            let partial = Lint.Engine.scan_tree ~dirs:["lib"] ~cache root in
            Alcotest.(check int) "one hit, one re-parse" 1
              partial.Lint.Engine.cache_hits));
    Alcotest.test_case "a stale cache version degrades to a cold run" `Quick
      (fun () ->
        with_temp_tree (fun root write ->
            write "lib/fake/a.ml" "let f x = x + 1\n";
            let cache = Filename.concat root "facts.cache" in
            let oc = open_out_bin cache in
            Marshal.to_channel oc "sc_lint-cache-v0" [];
            close_out oc;
            let report = Lint.Engine.scan_tree ~dirs:["lib"] ~cache root in
            Alcotest.(check int) "no hits from a foreign cache" 0
              report.Lint.Engine.cache_hits));
  ]

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Walk up from the dune sandbox to the checkout: the first ancestor
   holding dune-project and lib/ that is not inside _build. *)
let find_repo_root () =
  let rec up dir n =
    if n = 0 then None
    else
      let ok =
        Sys.file_exists (Filename.concat dir "dune-project")
        && Sys.file_exists (Filename.concat dir "lib")
        && not (contains_sub ~sub:"_build" dir)
      in
      if ok then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 8

let meta_tests =
  [
    Alcotest.test_case "the real tree lints clean" `Quick (fun () ->
        match find_repo_root () with
        | None -> Printf.printf "repo root not reachable from cwd; skipping\n"
        | Some root ->
          let report = Lint.Engine.scan_tree root in
          List.iter
            (fun d -> Fmt.epr "%a@." Lint.Diagnostic.pp d)
            report.Lint.Engine.diagnostics;
          Alcotest.(check bool) "scanned a real tree" true
            (report.Lint.Engine.files > 50);
          Alcotest.(check int) "errors" 0 (Lint.Engine.errors report);
          Alcotest.(check int) "warnings (missing-mli)" 0
            (Lint.Engine.warnings report));
    Alcotest.test_case "the real tree has no unguarded shared state" `Quick
      (fun () ->
        match find_repo_root () with
        | None -> Printf.printf "repo root not reachable from cwd; skipping\n"
        | Some root ->
          let report = Lint.Engine.scan_tree root in
          let es = Lint.State.entries report.Lint.Engine.index in
          Alcotest.(check bool) "inventory is non-empty" true
            (List.length es > 0);
          Alcotest.(check int) "unguarded globals" 0 (Lint.State.unguarded es);
          (* The committed LINT_STATE.json must be current — the same
             byte comparison the CI drift gate runs. *)
          let committed_path = Filename.concat root "LINT_STATE.json" in
          Alcotest.(check bool) "committed inventory is current" true
            (Lint.State.check ~committed_path report.Lint.Engine.index
             = Lint.State.Fresh_matches));
    Alcotest.test_case "the named hot paths carry zero_alloc" `Quick
      (fun () ->
        match find_repo_root () with
        | None -> Printf.printf "repo root not reachable from cwd; skipping\n"
        | Some root ->
          let report = Lint.Engine.scan_tree root in
          let index = report.Lint.Engine.index in
          List.iter
            (fun qname ->
              match Lint.Index.find index qname with
              | Some b ->
                Alcotest.(check bool) (qname ^ " is zero_alloc") true
                  b.Lint.Index.b_zero_alloc
              | None -> Alcotest.failf "%s not indexed" qname)
            [
              "Net.Flat_fib.lookup_value";
              "Net.Flat_fib.lookup_batch";
              "Openflow.Flow_table.lookup_batch";
              "Openflow.Switch.resolve_batch";
              "Supercharger.Fib_cache.resolve_batch";
            ]);
    Alcotest.test_case "report is deterministic and ordered" `Quick (fun () ->
        let src = "let a = Sys.time ()\nlet b = Random.bits ()" in
        let once = lint src and twice = lint src in
        Alcotest.(check bool) "same diagnostics" true
          (List.equal Lint.Diagnostic.equal once twice);
        let sorted = List.sort Lint.Diagnostic.compare once in
        Alcotest.(check bool) "already sorted" true
          (List.equal Lint.Diagnostic.equal once sorted));
    Alcotest.test_case "json report shape" `Quick (fun () ->
        let report =
          Lint.Engine.lint_sources
            [("lib/fake/fixture.ml", "let t = Sys.time ()")]
        in
        let s = Obs.Json.to_string (Lint.Engine.to_json report) in
        Alcotest.(check bool) "schema tag" true (contains_sub ~sub:"lint/v2" s);
        Alcotest.(check bool) "cache hits reported" true
          (contains_sub ~sub:"cache_hits" s);
        Alcotest.(check bool) "rule listed" true
          (contains_sub ~sub:"no-ambient-nondeterminism" s));
  ]

let suite =
  [
    ("lint rules", rule_tests);
    ("lint suppression", suppression_tests);
    ("lint shared-mutable", shared_tests);
    ("lint cross-domain", cross_tests);
    ("lint hot-path-alloc", alloc_tests);
    ("lint rule selection", selection_tests);
    ("lint inventory", state_tests);
    ("lint cache", cache_tests);
    ("lint meta", meta_tests);
  ]
