(* Tests for sc_lint: every rule fires on a minimal fixture, a clean
   fixture fires nothing, [@lint.allow] suppresses, and the real tree
   at HEAD lints clean (the meta-test CI relies on). Fixtures only
   need to parse, not typecheck, so they stay tiny. *)

let lint ?(file = "lib/fake/fixture.ml") src = Lint.Engine.lint_source ~file src

let rules ds = List.map (fun d -> d.Lint.Diagnostic.rule) ds

let check_rules msg expected ds =
  Alcotest.(check (list string)) msg expected (rules ds)

let rule_tests =
  [
    Alcotest.test_case "no-ambient-nondeterminism: Sys.time" `Quick (fun () ->
        check_rules "flagged" ["no-ambient-nondeterminism"]
          (lint "let t = Sys.time ()"));
    Alcotest.test_case "no-ambient-nondeterminism: Random nested" `Quick
      (fun () ->
        check_rules "Random.State too" ["no-ambient-nondeterminism"]
          (lint "let s = Random.State.make [| 3 |]"));
    Alcotest.test_case "no-ambient-nondeterminism: only inside lib/" `Quick
      (fun () ->
        check_rules "bin/ may read the clock" []
          (lint ~file:"bin/sc_lab.ml" "let t = Sys.time ()");
        check_rules "Sim.Time itself is exempt" []
          (lint ~file:"lib/sim/time.ml" "let t = Sys.time ()"));
    Alcotest.test_case "no-polymorphic-compare: net-ish (=)" `Quick (fun () ->
        check_rules "prefix = q" ["no-polymorphic-compare"]
          (lint "let f prefix q = prefix = q"));
    Alcotest.test_case "no-polymorphic-compare: bare compare" `Quick (fun () ->
        check_rules "List.sort compare" ["no-polymorphic-compare"]
          (lint "let f l = List.sort compare l"));
    Alcotest.test_case "no-polymorphic-compare: local compare is fine" `Quick
      (fun () ->
        check_rules "file defines its own compare" []
          (lint "let compare a b = Int.compare a b\nlet f l = List.sort compare l"));
    Alcotest.test_case "no-polymorphic-compare: List.mem on net value" `Quick
      (fun () ->
        check_rules "List.mem prefix" ["no-polymorphic-compare"]
          (lint "let f prefix l = List.mem prefix l"));
    Alcotest.test_case "no-polymorphic-compare: (=) against None" `Quick
      (fun () ->
        (* The lib/net trie pattern this rule extension exists for:
           comparing a plain-looking option field still recurses into
           the payload structurally. *)
        check_rules "node.value = None" ["no-polymorphic-compare"]
          (lint "let f node = node.value = None"));
    Alcotest.test_case "no-polymorphic-compare: (<>) against None" `Quick
      (fun () ->
        check_rules "task <> None" ["no-polymorphic-compare"]
          (lint "let f t = t.task <> None"));
    Alcotest.test_case "no-polymorphic-compare: Option.is_none is the fix" `Quick
      (fun () ->
        check_rules "Option.is_none node.value" []
          (lint "let f node = Option.is_none node.value"));
    Alcotest.test_case "no-polymorphic-compare: None in a record literal is fine"
      `Quick (fun () ->
        check_rules "field initialised to None" []
          (lint "type r = { v : int option }\nlet f () = { v = None }"));
    Alcotest.test_case "ordered-hashtbl-escape: fold into JSON" `Quick
      (fun () ->
        check_rules "unsorted fold feeds Json" ["ordered-hashtbl-escape"]
          (lint
             "let to_json t = Json.Obj (Hashtbl.fold (fun k v a -> (k, v) :: \
              a) t [])"));
    Alcotest.test_case "ordered-hashtbl-escape: sort launders the fold" `Quick
      (fun () ->
        check_rules "sorted fold is fine" []
          (lint
             "let to_json t = Json.List (List.sort String.compare \
              (Hashtbl.fold (fun k _ a -> k :: a) t []))"));
    Alcotest.test_case "no-catch-all-on-events: wildcard on OF messages"
      `Quick (fun () ->
        check_rules "wildcard swallows new events" ["no-catch-all-on-events"]
          (lint "let f = function Packet_in p -> p | Hello -> 0 | _ -> 1"));
    Alcotest.test_case "no-catch-all-on-events: open variants untouched"
      `Quick (fun () ->
        check_rules "Some/None matches keep their wildcard" []
          (lint "let f = function Some _ -> 0 | _ -> 1"));
    Alcotest.test_case "fast-path-purity: failwith in controller" `Quick
      (fun () ->
        check_rules "controller must degrade"
          ["fast-path-purity"]
          (lint ~file:"lib/core/controller.ml" "let g () = failwith \"boom\"");
        check_rules "assert false too" ["fast-path-purity"]
          (lint ~file:"lib/openflow/switch.ml" "let g () = assert false");
        check_rules "other modules may raise" []
          (lint "let g () = failwith \"boom\""));
    Alcotest.test_case "clean fixture triggers nothing" `Quick (fun () ->
        check_rules "disciplined code" []
          (lint
             "let f a b = Prefix.equal a b\n\
              let keys t = List.sort String.compare (Hashtbl.fold (fun k _ a \
              -> k :: a) t [])\n\
              let g = function Packet_in p -> Some p | Hello -> None\n"));
    Alcotest.test_case "parse error becomes a diagnostic" `Quick (fun () ->
        check_rules "no exception" ["parse-error"] (lint "let let let"));
  ]

let suppression_tests =
  [
    Alcotest.test_case "expression-level allow" `Quick (fun () ->
        check_rules "suppressed" []
          (lint "let t = (Sys.time () [@lint.allow \"no-ambient-nondeterminism\"])"));
    Alcotest.test_case "allow of the wrong rule does not suppress" `Quick
      (fun () ->
        check_rules "still flagged" ["no-ambient-nondeterminism"]
          (lint "let t = (Sys.time () [@lint.allow \"fast-path-purity\"])"));
    Alcotest.test_case "floating allow covers the rest of the file" `Quick
      (fun () ->
        check_rules "whole file suppressed" []
          (lint
             "[@@@lint.allow \"no-ambient-nondeterminism\"]\n\
              let a = Sys.time ()\nlet b = Random.bits ()"));
    Alcotest.test_case "malformed allow payload is itself flagged" `Quick
      (fun () ->
        check_rules "bad payload" ["no-ambient-nondeterminism"; "lint-allow"]
          (lint "let t = (Sys.time () [@lint.allow 42])"));
  ]

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Walk up from the dune sandbox to the checkout: the first ancestor
   holding dune-project and lib/ that is not inside _build. *)
let find_repo_root () =
  let rec up dir n =
    if n = 0 then None
    else
      let ok =
        Sys.file_exists (Filename.concat dir "dune-project")
        && Sys.file_exists (Filename.concat dir "lib")
        && not (contains_sub ~sub:"_build" dir)
      in
      if ok then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 8

let meta_tests =
  [
    Alcotest.test_case "the real tree lints clean" `Quick (fun () ->
        match find_repo_root () with
        | None -> Printf.printf "repo root not reachable from cwd; skipping\n"
        | Some root ->
          let report = Lint.Engine.scan_tree root in
          List.iter
            (fun d -> Fmt.epr "%a@." Lint.Diagnostic.pp d)
            report.Lint.Engine.diagnostics;
          Alcotest.(check bool) "scanned a real tree" true
            (report.Lint.Engine.files > 50);
          Alcotest.(check int) "errors" 0 (Lint.Engine.errors report);
          Alcotest.(check int) "warnings (missing-mli)" 0
            (Lint.Engine.warnings report));
    Alcotest.test_case "report is deterministic and ordered" `Quick (fun () ->
        let src = "let a = Sys.time ()\nlet b = Random.bits ()" in
        let once = lint src and twice = lint src in
        Alcotest.(check bool) "same diagnostics" true
          (List.equal Lint.Diagnostic.equal once twice);
        let sorted = List.sort Lint.Diagnostic.compare once in
        Alcotest.(check bool) "already sorted" true
          (List.equal Lint.Diagnostic.equal once sorted));
    Alcotest.test_case "json report shape" `Quick (fun () ->
        let report = Lint.Engine.{ files = 1; diagnostics = lint "let t = Sys.time ()" } in
        let s = Obs.Json.to_string (Lint.Engine.to_json report) in
        Alcotest.(check bool) "schema tag" true (contains_sub ~sub:"lint/v1" s);
        Alcotest.(check bool) "rule listed" true
          (contains_sub ~sub:"no-ambient-nondeterminism" s));
  ]

let suite =
  [
    ("lint rules", rule_tests);
    ("lint suppression", suppression_tests);
    ("lint meta", meta_tests);
  ]
