(* Tests for the BGP substrate: attributes, decision process, messages,
   RFC 4271 codec, RIB, channel, session FSM, speaker. *)

open Bgp

let ip = Net.Ipv4.of_string_exn
let pfx = Net.Prefix.v
let asn = Asn.of_int

let attrs ?(path = [65000]) ?med ?local_pref ?(communities = []) nh =
  Attributes.make
    ~as_path:[Attributes.Seq (List.map asn path)]
    ?med ?local_pref ~communities ~next_hop:(ip nh) ()

let route ?(peer_id = 0) ?(router_id = "10.0.0.2") ?ebgp ?igp_cost a =
  Route.make ?ebgp ?igp_cost ~peer_id ~peer_router_id:(ip router_id) a

let message = Alcotest.testable Message.pp Message.equal
let attributes = Alcotest.testable Attributes.pp Attributes.equal

let attributes_tests =
  [
    Alcotest.test_case "as_path length counts sets as one" `Quick (fun () ->
        let a =
          Attributes.make
            ~as_path:[Attributes.Seq [asn 1; asn 2]; Attributes.Set [asn 3; asn 4; asn 5]]
            ~next_hop:(ip "10.0.0.1") ()
        in
        Alcotest.(check int) "length" 3 (Attributes.as_path_length a));
    Alcotest.test_case "prepend_as extends the leading sequence" `Quick (fun () ->
        let a = attrs ~path:[65002; 3000] "10.0.0.2" in
        let a' = Attributes.prepend_as (asn 65001) a in
        Alcotest.(check int) "length" 3 (Attributes.as_path_length a');
        Alcotest.(check (option int)) "first" (Some 65001)
          (Option.map Asn.to_int (Attributes.first_as a')));
    Alcotest.test_case "prepend_as onto a set starts a new sequence" `Quick (fun () ->
        let a =
          Attributes.make ~as_path:[Attributes.Set [asn 1]] ~next_hop:(ip "10.0.0.1") ()
        in
        let a' = Attributes.prepend_as (asn 2) a in
        Alcotest.(check int) "length" 2 (Attributes.as_path_length a'));
    Alcotest.test_case "default local pref is 100" `Quick (fun () ->
        Alcotest.(check int) "default" 100
          (Attributes.effective_local_pref (attrs "10.0.0.1"));
        Alcotest.(check int) "explicit" 200
          (Attributes.effective_local_pref (attrs ~local_pref:200 "10.0.0.1")));
    Alcotest.test_case "origin preference order" `Quick (fun () ->
        Alcotest.(check (list int)) "igp<egp<incomplete" [0; 1; 2]
          (List.map Attributes.origin_preference
             [Attributes.Igp; Attributes.Egp; Attributes.Incomplete]));
    Alcotest.test_case "with_next_hop rewrites only the next hop" `Quick (fun () ->
        let a = attrs ~med:5 "10.0.0.2" in
        let a' = Attributes.with_next_hop a (ip "10.199.0.1") in
        Alcotest.(check bool) "nh" true
          (Net.Ipv4.equal a'.Attributes.next_hop (ip "10.199.0.1"));
        Alcotest.(check (option int)) "med kept" (Some 5) a'.Attributes.med);
  ]

let decision_tests =
  [
    Alcotest.test_case "higher local-pref wins" `Quick (fun () ->
        let a = route ~peer_id:0 (attrs ~local_pref:200 ~path:[1; 2; 3] "10.0.0.2") in
        let b = route ~peer_id:1 (attrs ~local_pref:100 ~path:[1] "10.0.0.3") in
        Alcotest.(check bool) "a preferred" true (Decision.compare a b < 0));
    Alcotest.test_case "shorter as-path wins" `Quick (fun () ->
        let a = route ~peer_id:0 (attrs ~path:[1; 2] "10.0.0.2") in
        let b = route ~peer_id:1 (attrs ~path:[1; 2; 3] "10.0.0.3") in
        Alcotest.(check bool) "a preferred" true (Decision.compare a b < 0));
    Alcotest.test_case "lower origin wins" `Quick (fun () ->
        let mk origin peer_id =
          route ~peer_id
            (Attributes.make ~origin ~as_path:[Attributes.Seq [asn 1]]
               ~next_hop:(ip "10.0.0.2") ())
        in
        Alcotest.(check bool) "igp over egp" true
          (Decision.compare (mk Attributes.Igp 0) (mk Attributes.Egp 1) < 0));
    Alcotest.test_case "MED compared only within the same neighbour AS" `Quick
      (fun () ->
        let a = route ~peer_id:0 (attrs ~path:[7; 9] ~med:10 "10.0.0.2") in
        let b = route ~peer_id:1 ~router_id:"10.0.0.3" (attrs ~path:[7; 8] ~med:5 "10.0.0.3") in
        Alcotest.(check bool) "same AS: lower med wins" true (Decision.compare b a < 0);
        let c = route ~peer_id:1 ~router_id:"10.0.0.3" (attrs ~path:[6; 8] ~med:5 "10.0.0.3") in
        (* Different neighbour AS: med ignored, falls to router-id. *)
        Alcotest.(check bool) "diff AS: med skipped" true (Decision.compare a c < 0));
    Alcotest.test_case "missing MED treated as zero" `Quick (fun () ->
        let a = route ~peer_id:0 (attrs ~path:[7] "10.0.0.2") in
        let b = route ~peer_id:1 ~router_id:"10.0.0.3" (attrs ~path:[7] ~med:5 "10.0.0.3") in
        Alcotest.(check bool) "absent beats 5" true (Decision.compare a b < 0));
    Alcotest.test_case "eBGP beats iBGP" `Quick (fun () ->
        let a = route ~peer_id:0 ~ebgp:false (attrs "10.0.0.2") in
        let b = route ~peer_id:1 ~router_id:"10.0.0.3" ~ebgp:true (attrs "10.0.0.3") in
        Alcotest.(check bool) "ebgp wins" true (Decision.compare b a < 0));
    Alcotest.test_case "lower IGP cost wins" `Quick (fun () ->
        let a = route ~peer_id:0 ~igp_cost:10 (attrs "10.0.0.2") in
        let b = route ~peer_id:1 ~router_id:"10.0.0.3" ~igp_cost:5 (attrs "10.0.0.3") in
        Alcotest.(check bool) "cheaper wins" true (Decision.compare b a < 0));
    Alcotest.test_case "router-id tiebreak" `Quick (fun () ->
        let a = route ~peer_id:0 ~router_id:"10.0.0.9" (attrs "10.0.0.2") in
        let b = route ~peer_id:1 ~router_id:"10.0.0.3" (attrs "10.0.0.3") in
        Alcotest.(check bool) "lower id wins" true (Decision.compare b a < 0));
    Alcotest.test_case "rank returns best-first and best agrees" `Quick (fun () ->
        let best = route ~peer_id:0 (attrs ~local_pref:300 "10.0.0.2") in
        let mid = route ~peer_id:1 ~router_id:"10.0.0.3" (attrs ~local_pref:200 "10.0.0.3") in
        let worst = route ~peer_id:2 ~router_id:"10.0.0.4" (attrs ~local_pref:100 "10.0.0.4") in
        let ranked = Decision.rank [mid; worst; best] in
        Alcotest.(check (list int)) "order" [0; 1; 2]
          (List.map (fun (r : Route.t) -> r.peer_id) ranked);
        match Decision.best [mid; worst; best] with
        | Some r -> Alcotest.(check int) "best" 0 r.Route.peer_id
        | None -> Alcotest.fail "no best");
    Alcotest.test_case "total order: never equal for distinct peers" `Quick (fun () ->
        let a = route ~peer_id:0 (attrs "10.0.0.2") in
        let b = route ~peer_id:1 (attrs "10.0.0.2") in
        Alcotest.(check bool) "strict" true (Decision.compare a b <> 0));
  ]

let message_tests =
  [
    Alcotest.test_case "update constructor validates" `Quick (fun () ->
        Alcotest.check_raises "nlri without attrs"
          (Invalid_argument "Message.update: NLRI without attributes") (fun () ->
            ignore (Message.update ~nlri:[pfx "1.0.0.0/24"] ()));
        Alcotest.check_raises "empty"
          (Invalid_argument "Message.update: empty update") (fun () ->
            ignore (Message.update ())));
    Alcotest.test_case "announce / withdraw shapes" `Quick (fun () ->
        (match Message.announce (attrs "10.0.0.2") [pfx "1.0.0.0/24"] with
        | Message.Update { nlri = [_]; withdrawn = []; attrs = Some _ } -> ()
        | _ -> Alcotest.fail "announce shape");
        match Message.withdraw [pfx "1.0.0.0/24"] with
        | Message.Update { nlri = []; withdrawn = [_]; attrs = None } -> ()
        | _ -> Alcotest.fail "withdraw shape");
  ]

let codec_roundtrip msg =
  match Codec.decode_exact (Codec.encode msg) with
  | Ok msg' -> Alcotest.check message "round-trip" msg msg'
  | Error e -> Alcotest.failf "decode failed: %a" Net.Wire.pp_error e

let arbitrary_update =
  let open QCheck in
  let gen_prefix =
    map
      (fun (a, len) ->
        Net.Prefix.make (Net.Ipv4.of_int32 (Int32.of_int a)) (8 + (abs len mod 25)))
      (pair int (0 -- 24))
  in
  let gen_attrs =
    map
      (fun ((nh, path), (med, lp)) ->
        Attributes.make
          ~as_path:[Attributes.Seq (List.map (fun a -> asn (abs a mod 65536)) path)]
          ?med:(Option.map (fun m -> abs m mod 1000) med)
          ?local_pref:(Option.map (fun l -> abs l mod 1000) lp)
          ~next_hop:nh ())
      (pair
         (pair (map (fun i -> Net.Ipv4.of_int32 (Int32.of_int i)) int) (small_list int))
         (pair (option int) (option int)))
  in
  QCheck.map
    (fun ((withdrawn, nlri), attrs) ->
      if nlri = [] then
        if withdrawn = [] then Message.withdraw [pfx "1.0.0.0/24"]
        else Message.withdraw withdrawn
      else Message.Update { withdrawn; attrs = Some attrs; nlri })
    (pair (pair (small_list gen_prefix) (small_list gen_prefix)) gen_attrs)

let codec_tests =
  [
    Alcotest.test_case "open round-trips" `Quick (fun () ->
        codec_roundtrip
          (Message.Open
             { version = 4; asn = asn 65001; hold_time = 90; router_id = ip "10.0.0.1" }));
    Alcotest.test_case "keepalive round-trips" `Quick (fun () ->
        codec_roundtrip Message.Keepalive);
    Alcotest.test_case "notification round-trips" `Quick (fun () ->
        codec_roundtrip (Message.Notification { code = 6; subcode = 2; data = "bye" }));
    Alcotest.test_case "announce with all attributes round-trips" `Quick (fun () ->
        codec_roundtrip
          (Message.announce
             (Attributes.make ~origin:Attributes.Egp
                ~as_path:[Attributes.Seq [asn 65002; asn 3000]; Attributes.Set [asn 1; asn 2]]
                ~med:50 ~local_pref:200
                ~communities:[(65000, 1); (65000, 2)]
                ~next_hop:(ip "10.0.0.2") ())
             [pfx "1.0.0.0/24"; pfx "2.0.0.0/8"; pfx "3.3.3.3/32"; pfx "0.0.0.0/0"]));
    Alcotest.test_case "withdraw-only round-trips" `Quick (fun () ->
        codec_roundtrip (Message.withdraw [pfx "1.0.0.0/24"; pfx "10.0.0.0/8"]));
    Alcotest.test_case "decode_all cuts a byte stream" `Quick (fun () ->
        let msgs =
          [
            Message.Keepalive;
            Message.announce (attrs "10.0.0.2") [pfx "1.0.0.0/24"];
            Message.Keepalive;
          ]
        in
        let stream = String.concat "" (List.map Codec.encode msgs) in
        match Codec.decode_all stream with
        | Ok decoded ->
          Alcotest.(check int) "count" 3 (List.length decoded);
          List.iter2 (fun a b -> Alcotest.check message "msg" a b) msgs decoded
        | Error e -> Alcotest.failf "decode_all: %a" Net.Wire.pp_error e);
    Alcotest.test_case "bad marker rejected" `Quick (fun () ->
        let raw = Bytes.of_string (Codec.encode Message.Keepalive) in
        Bytes.set raw 0 '\x00';
        match Codec.decode (Bytes.to_string raw) with
        | Error (Net.Wire.Malformed "header marker") -> ()
        | Ok _ -> Alcotest.fail "accepted bad marker"
        | Error e -> Alcotest.failf "wrong error: %a" Net.Wire.pp_error e);
    Alcotest.test_case "oversized update refuses to encode" `Quick (fun () ->
        let many =
          List.init 1500 (fun i ->
              Net.Prefix.make
                (Net.Ipv4.of_octets 1 (i / 256 mod 256) (i mod 256) 0)
                24)
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Codec.encode (Message.announce (attrs "10.0.0.2") many));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "truncated message rejected" `Quick (fun () ->
        let raw = Codec.encode (Message.announce (attrs "10.0.0.2") [pfx "1.0.0.0/24"]) in
        match Codec.decode (String.sub raw 0 (String.length raw - 3)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncation");
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"update codec round-trip" ~count:300 arbitrary_update
         (fun msg ->
           match Codec.decode_exact (Codec.encode msg) with
           | Ok msg' -> Message.equal msg msg'
           | Error _ -> false
           | exception Invalid_argument _ -> QCheck.assume_fail ()));
  ]

let stream_tests =
  let sample_messages =
    [
      Message.Open { version = 4; asn = asn 65002; hold_time = 90; router_id = ip "10.0.0.2" };
      Message.Keepalive;
      Message.announce (attrs ~med:3 "10.0.0.2") [pfx "1.0.0.0/24"; pfx "2.0.0.0/16"];
      Message.withdraw [pfx "1.0.0.0/24"];
      Message.Notification { code = 6; subcode = 0; data = "" };
    ]
  in
  let wire = String.concat "" (List.map Codec.encode sample_messages) in
  [
    Alcotest.test_case "whole stream in one chunk" `Quick (fun () ->
        let s = Stream.create () in
        match Stream.feed s wire with
        | Ok msgs ->
          Alcotest.(check int) "count" 5 (List.length msgs);
          List.iter2 (Alcotest.check message "msg") sample_messages msgs;
          Alcotest.(check int) "drained" 0 (Stream.buffered s)
        | Error e -> Alcotest.failf "feed: %a" Net.Wire.pp_error e);
    Alcotest.test_case "byte-at-a-time reassembly" `Quick (fun () ->
        let s = Stream.create () in
        let out = ref [] in
        String.iter
          (fun c ->
            match Stream.feed s (String.make 1 c) with
            | Ok msgs -> out := List.rev_append msgs !out
            | Error e -> Alcotest.failf "feed: %a" Net.Wire.pp_error e)
          wire;
        let msgs = List.rev !out in
        Alcotest.(check int) "count" 5 (List.length msgs);
        List.iter2 (Alcotest.check message "msg") sample_messages msgs);
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"any chunking yields the same messages" ~count:100
         QCheck.(small_list (1 -- 37))
         (fun cut_sizes ->
           let s = Stream.create () in
           let out = ref [] in
           let rec go offset cuts =
             if offset >= String.length wire then true
             else begin
               let step =
                 match cuts with [] -> String.length wire - offset | c :: _ -> c
               in
               let step = min step (String.length wire - offset) in
               match Stream.feed s (String.sub wire offset step) with
               | Ok msgs ->
                 out := List.rev_append msgs !out;
                 go (offset + step)
                   (match cuts with [] -> [] | _ :: rest -> rest)
               | Error _ -> false
             end
           in
           go 0 cut_sizes
           && List.equal Message.equal sample_messages (List.rev !out)));
    Alcotest.test_case "garbage poisons the stream permanently" `Quick (fun () ->
        let s = Stream.create () in
        (match Stream.feed s (String.make 19 '\x00') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted garbage");
        Alcotest.(check bool) "poisoned" true (Stream.is_poisoned s);
        match Stream.feed s (Codec.encode Message.Keepalive) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "recovered from poison");
  ]

let rib_tests =
  [
    Alcotest.test_case "announce then best" `Quick (fun () ->
        let rib = Rib.create () in
        let r = route ~peer_id:0 (attrs "10.0.0.2") in
        let change =
          match Rib.announce rib (pfx "1.0.0.0/24") r with
          | Some c -> c
          | None -> Alcotest.fail "expected a change"
        in
        Alcotest.(check int) "before empty" 0 (List.length change.Rib.before);
        Alcotest.(check int) "after one" 1 (List.length change.Rib.after);
        match Rib.best rib (pfx "1.0.0.0/24") with
        | Some best -> Alcotest.(check int) "peer" 0 best.Route.peer_id
        | None -> Alcotest.fail "no best");
    Alcotest.test_case "ranked candidates from two peers" `Quick (fun () ->
        let rib = Rib.create () in
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:1 ~router_id:"10.0.0.3" (attrs ~local_pref:100 "10.0.0.3")));
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs ~local_pref:200 "10.0.0.2")));
        Alcotest.(check (list int)) "ranked" [0; 1]
          (List.map (fun (r : Route.t) -> r.peer_id) (Rib.ordered rib (pfx "1.0.0.0/24"))));
    Alcotest.test_case "re-announcement replaces implicitly" `Quick (fun () ->
        let rib = Rib.create () in
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs ~med:1 "10.0.0.2")));
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs ~med:2 "10.0.0.2")));
        Alcotest.(check int) "one candidate" 1
          (List.length (Rib.ordered rib (pfx "1.0.0.0/24"))));
    Alcotest.test_case "withdraw removes only that peer" `Quick (fun () ->
        let rib = Rib.create () in
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs "10.0.0.2")));
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:1 ~router_id:"10.0.0.3" (attrs "10.0.0.3")));
        (match Rib.withdraw rib (pfx "1.0.0.0/24") ~peer_id:0 with
        | Some change -> Alcotest.(check int) "one left" 1 (List.length change.Rib.after)
        | None -> Alcotest.fail "expected change");
        Alcotest.(check (option unit)) "absent peer is None" None
          (Option.map (fun _ -> ()) (Rib.withdraw rib (pfx "1.0.0.0/24") ~peer_id:5)));
    Alcotest.test_case "withdraw_peer clears a session's routes" `Quick (fun () ->
        let rib = Rib.create () in
        List.iter
          (fun s -> ignore (Rib.announce rib (pfx s) (route ~peer_id:0 (attrs "10.0.0.2"))))
          ["1.0.0.0/24"; "2.0.0.0/24"; "3.0.0.0/24"];
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:1 ~router_id:"10.0.0.3" (attrs "10.0.0.3")));
        let changes = Rib.withdraw_peer rib ~peer_id:0 in
        Alcotest.(check int) "three changes" 3 (List.length changes);
        Alcotest.(check int) "one prefix survives" 1 (Rib.cardinal rib));
    Alcotest.test_case "withdraw_peer of an unknown peer is a no-op" `Quick
      (fun () ->
        (* A flap can race the slow path into withdrawing the same
           session twice; the duplicate (and a never-seen peer) must
           return [] without disturbing the table. *)
        let rib = Rib.create () in
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs "10.0.0.2")));
        Alcotest.(check int) "never-seen peer yields no changes" 0
          (List.length (Rib.withdraw_peer rib ~peer_id:42));
        Alcotest.(check int) "table untouched" 1 (Rib.cardinal rib);
        Alcotest.(check int) "first withdrawal reports the route" 1
          (List.length (Rib.withdraw_peer rib ~peer_id:0));
        Alcotest.(check int) "repeat withdrawal is empty" 0
          (List.length (Rib.withdraw_peer rib ~peer_id:0));
        Alcotest.(check int) "index holds no phantom prefixes" 0
          (Rib.peer_prefix_count rib ~peer_id:0));
    Alcotest.test_case "apply_update handles withdrawals then announcements" `Quick
      (fun () ->
        let rib = Rib.create () in
        ignore (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs "10.0.0.2")));
        let u =
          {
            Message.withdrawn = [pfx "1.0.0.0/24"];
            attrs = Some (attrs "10.0.0.2");
            nlri = [pfx "2.0.0.0/24"];
          }
        in
        let changes =
          Rib.apply_update rib ~peer_id:0 ~peer_router_id:(ip "10.0.0.2") u
        in
        Alcotest.(check int) "two changes" 2 (List.length changes);
        Alcotest.(check bool) "1/24 gone" true (Rib.best rib (pfx "1.0.0.0/24") = None);
        Alcotest.(check bool) "2/24 there" true (Rib.best rib (pfx "2.0.0.0/24") <> None));
    Alcotest.test_case "identical re-announcement is suppressed as a no-op" `Quick
      (fun () ->
        let rib = Rib.create () in
        let r = route ~peer_id:0 (attrs ~med:7 "10.0.0.2") in
        Alcotest.(check bool) "first announce is a change" true
          (Rib.announce rib (pfx "1.0.0.0/24") r <> None);
        Alcotest.(check bool) "identical re-announce is None" true
          (Rib.announce rib (pfx "1.0.0.0/24") r = None);
        Alcotest.(check int) "still one candidate" 1
          (List.length (Rib.ordered rib (pfx "1.0.0.0/24")));
        (* A changed attribute is a real change again. *)
        Alcotest.(check bool) "different med is a change" true
          (Rib.announce rib (pfx "1.0.0.0/24") (route ~peer_id:0 (attrs ~med:8 "10.0.0.2"))
          <> None);
        (* The same suppression through apply_update: a repeat of the
           identical UPDATE yields an empty change list. *)
        let u =
          { Message.withdrawn = []; attrs = Some (attrs ~med:8 "10.0.0.2");
            nlri = [pfx "1.0.0.0/24"] }
        in
        Alcotest.(check int) "repeated identical update: no changes" 0
          (List.length (Rib.apply_update rib ~peer_id:0 ~peer_router_id:(ip "10.0.0.2") u)));
    Alcotest.test_case "per-peer index tracks announce/withdraw" `Quick (fun () ->
        let rib = Rib.create () in
        List.iter
          (fun s -> ignore (Rib.announce rib (pfx s) (route ~peer_id:3 (attrs "10.0.0.2"))))
          ["1.0.0.0/24"; "2.0.0.0/24"; "3.0.0.0/24"];
        Alcotest.(check int) "three indexed" 3 (Rib.peer_prefix_count rib ~peer_id:3);
        Alcotest.(check int) "other peer empty" 0 (Rib.peer_prefix_count rib ~peer_id:0);
        ignore (Rib.withdraw rib (pfx "2.0.0.0/24") ~peer_id:3);
        Alcotest.(check int) "two after withdraw" 2 (Rib.peer_prefix_count rib ~peer_id:3);
        ignore (Rib.withdraw_peer rib ~peer_id:3);
        Alcotest.(check int) "empty after peer-down" 0 (Rib.peer_prefix_count rib ~peer_id:3);
        Alcotest.(check int) "table empty too" 0 (Rib.cardinal rib));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"rib stays ranked under random ops" ~count:200
         QCheck.(small_list (pair (0 -- 4) (option (100 -- 300))))
         (fun ops ->
           let rib = Rib.create () in
           let p = pfx "9.9.0.0/16" in
           List.iter
             (fun (peer_id, lp) ->
               match lp with
               | Some local_pref ->
                 ignore
                   (Rib.announce rib p
                      (route ~peer_id
                         ~router_id:(Fmt.str "10.0.0.%d" (peer_id + 2))
                         (attrs ~local_pref "10.0.0.2")))
               | None -> ignore (Rib.withdraw rib p ~peer_id))
             ops;
           let ranked = Rib.ordered rib p in
           (* The stored list must equal a fresh sort of itself. *)
           List.equal Route.equal ranked (Decision.rank ranked)));
  ]

(* --- indexed RIB vs naive full-table reference ------------------------ *)

(* The reference model: ranked lists in a plain hashtable, with
   [withdraw_peer] implemented as the pre-index full-table fold. The
   property below drives both implementations through random
   interleavings of announce / withdraw / peer-down and demands
   identical change sets (same prefixes, same before/after ordering)
   at every step. *)
module Naive = struct
  type t = (Net.Prefix.t, Route.t list) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let ordered t p = Option.value ~default:[] (Hashtbl.find_opt t p)

  let store t p = function
    | [] -> Hashtbl.remove t p
    | routes -> Hashtbl.replace t p routes

  let announce t p (route : Route.t) =
    let before = ordered t p in
    let without = List.filter (fun (r : Route.t) -> r.peer_id <> route.peer_id) before in
    let after = Decision.rank (route :: without) in
    if List.equal Route.equal before after then None
    else begin
      store t p after;
      Some (p, before, after)
    end

  let withdraw t p ~peer_id =
    let before = ordered t p in
    if List.exists (fun (r : Route.t) -> r.peer_id = peer_id) before then begin
      let after = List.filter (fun (r : Route.t) -> r.peer_id <> peer_id) before in
      store t p after;
      Some (p, before, after)
    end
    else None

  let withdraw_peer t ~peer_id =
    let affected =
      Hashtbl.fold
        (fun p routes acc ->
          if List.exists (fun (r : Route.t) -> r.peer_id = peer_id) routes then p :: acc
          else acc)
        t []
    in
    List.filter_map
      (fun p -> withdraw t p ~peer_id)
      (List.sort Net.Prefix.compare affected)

  let dump t =
    List.sort
      (fun (p, _) (q, _) -> Net.Prefix.compare p q)
      (Hashtbl.fold (fun p routes acc -> (p, routes) :: acc) t [])
end

type rib_op =
  | Op_announce of int * int * int (* peer, prefix index, local pref *)
  | Op_withdraw of int * int
  | Op_peer_down of int

let equiv_prefixes = [|"1.0.0.0/24"; "2.0.0.0/24"; "3.0.0.0/16"; "4.4.0.0/20"|]

let gen_rib_op =
  QCheck.map
    (fun (kind, peer, prefix, lp) ->
      if kind < 6 then Op_announce (peer, prefix, 100 + (10 * lp))
      else if kind < 9 then Op_withdraw (peer, prefix)
      else Op_peer_down peer)
    QCheck.(quad (0 -- 9) (0 -- 2) (0 -- 3) (0 -- 3))

let change_matches (c : Rib.change) (p, before, after) =
  Net.Prefix.equal c.Rib.prefix p
  && List.equal Route.equal c.Rib.before before
  && List.equal Route.equal c.Rib.after after

let indexed_equivalence_tests =
  [
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"indexed rib == naive reference on random interleavings"
         ~count:300
         QCheck.(small_list gen_rib_op)
         (fun ops ->
           let rib = Rib.create () in
           let naive = Naive.create () in
           let route_for peer lp =
             route ~peer_id:peer
               ~router_id:(Fmt.str "10.0.0.%d" (peer + 2))
               (attrs ~local_pref:lp (Fmt.str "10.0.0.%d" (peer + 2)))
           in
           let step_ok = function
             | Op_announce (peer, prefix_idx, lp) ->
               let p = pfx equiv_prefixes.(prefix_idx) in
               let r = route_for peer lp in
               (match Rib.announce rib p r, Naive.announce naive p r with
               | None, None -> true
               | Some c, Some reference -> change_matches c reference
               | Some _, None | None, Some _ -> false)
             | Op_withdraw (peer, prefix_idx) ->
               let p = pfx equiv_prefixes.(prefix_idx) in
               (match Rib.withdraw rib p ~peer_id:peer, Naive.withdraw naive p ~peer_id:peer with
               | None, None -> true
               | Some c, Some reference -> change_matches c reference
               | Some _, None | None, Some _ -> false)
             | Op_peer_down peer ->
               let changes = Rib.withdraw_peer rib ~peer_id:peer in
               let reference = Naive.withdraw_peer naive ~peer_id:peer in
               List.length changes = List.length reference
               && List.for_all2 change_matches changes reference
               && Rib.peer_prefix_count rib ~peer_id:peer = 0
           in
           List.for_all step_ok ops
           &&
           (* Final tables agree entry for entry. *)
           let dump =
             List.sort (fun (p, _) (q, _) -> Net.Prefix.compare p q)
               (Rib.fold rib ~init:[] ~f:(fun acc p routes -> (p, routes) :: acc))
           in
           List.equal
             (fun (p, rs) (q, qs) -> Net.Prefix.equal p q && List.equal Route.equal rs qs)
             dump (Naive.dump naive)));
  ]

let channel_tests =
  [
    Alcotest.test_case "delivers in order with delay" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let ch = Channel.create e ~delay:(Sim.Time.of_us 100) () in
        let got = ref [] in
        Channel.attach ch Channel.B (fun m -> got := m :: !got);
        Channel.send ch Channel.A Message.Keepalive;
        Channel.send ch Channel.A (Message.withdraw [pfx "1.0.0.0/24"]);
        Sim.Engine.run e;
        Alcotest.(check int) "two" 2 (List.length !got);
        (match List.rev !got with
        | [Message.Keepalive; Message.Update _] -> ()
        | _ -> Alcotest.fail "order"));
    Alcotest.test_case "break loses in-flight and notifies both sides" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let ch = Channel.create e ~delay:(Sim.Time.of_ms 1) () in
        let got = ref 0 and breaks = ref 0 in
        Channel.attach ch Channel.B (fun _ -> incr got);
        Channel.on_break ch Channel.A (fun () -> incr breaks);
        Channel.on_break ch Channel.B (fun () -> incr breaks);
        Channel.send ch Channel.A Message.Keepalive;
        Channel.break ch;
        Channel.send ch Channel.A Message.Keepalive;
        Sim.Engine.run e;
        Alcotest.(check int) "no delivery" 0 !got;
        Alcotest.(check int) "both notified" 2 !breaks;
        Alcotest.(check bool) "flag" true (Channel.is_broken ch));
    Alcotest.test_case "codec mode round-trips messages in transit" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let ch = Channel.create e ~use_codec:true () in
        let got = ref None in
        Channel.attach ch Channel.B (fun m -> got := Some m);
        let msg = Message.announce (attrs ~med:9 "10.0.0.2") [pfx "5.0.0.0/24"] in
        Channel.send ch Channel.A msg;
        Sim.Engine.run e;
        match !got with
        | Some m -> Alcotest.check message "same through codec" msg m
        | None -> Alcotest.fail "not delivered");
  ]

let make_session_pair ?(hold_a = 90) ?(hold_b = 90) ?fragment () =
  let e = Sim.Engine.create () in
  let ch = Channel.create e ~use_codec:true ?fragment () in
  let a =
    Session.create e ~channel:ch ~side:Channel.A ~asn:(asn 65001)
      ~router_id:(ip "10.0.0.1") ~hold_time:hold_a ~name:"a" ()
  in
  let b =
    Session.create e ~channel:ch ~side:Channel.B ~asn:(asn 65002)
      ~router_id:(ip "10.0.0.2") ~hold_time:hold_b ~name:"b" ()
  in
  (e, ch, a, b)

let session_tests =
  [
    Alcotest.test_case "handshake when one side starts" `Quick (fun () ->
        let e, _, a, b = make_session_pair () in
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check bool) "a up" true (Session.state a = Session.Established);
        Alcotest.(check bool) "b up" true (Session.state b = Session.Established));
    Alcotest.test_case "handshake when both sides start" `Quick (fun () ->
        let e, _, a, b = make_session_pair () in
        Session.start a;
        Session.start b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check bool) "both up" true
          (Session.state a = Session.Established && Session.state b = Session.Established));
    Alcotest.test_case "start is idempotent" `Quick (fun () ->
        let e, ch, a, b = make_session_pair () in
        Session.start a;
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check bool) "established" true (Session.state a = Session.Established);
        ignore ch;
        ignore b);
    Alcotest.test_case "hold time negotiation takes the minimum" `Quick (fun () ->
        let e, _, a, b = make_session_pair ~hold_a:90 ~hold_b:30 () in
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check (option int)) "a" (Some 30) (Session.negotiated_hold_time a);
        Alcotest.(check (option int)) "b" (Some 30) (Session.negotiated_hold_time b));
    Alcotest.test_case "updates flow after establishment" `Quick (fun () ->
        let e, _, a, b = make_session_pair () in
        let got = ref [] in
        Session.on_update b (fun u -> got := u :: !got);
        Session.on_established a (fun _ ->
            Session.send_update a
              { Message.withdrawn = []; attrs = Some (attrs "10.0.0.2"); nlri = [pfx "1.0.0.0/24"] });
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check int) "received" 1 (List.length !got);
        Alcotest.(check int) "counted rx" 1 (Session.updates_received b);
        Alcotest.(check int) "counted tx" 1 (Session.updates_sent a));
    Alcotest.test_case "send_update outside Established raises" `Quick (fun () ->
        let _, _, a, _ = make_session_pair () in
        Alcotest.(check bool) "raises" true
          (try
             Session.send_update a
               { Message.withdrawn = [pfx "1.0.0.0/24"]; attrs = None; nlri = [] };
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "keepalives keep the session alive" `Quick (fun () ->
        let e, _, a, b = make_session_pair ~hold_a:3 ~hold_b:3 () in
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 30.0) e;
        Alcotest.(check bool) "still up" true
          (Session.state a = Session.Established && Session.state b = Session.Established));
    Alcotest.test_case "silent peer trips the hold timer" `Quick (fun () ->
        (* Hand-drive side B so it completes the handshake and then goes
           silent (a dead host whose TCP stays open). *)
        let e = Sim.Engine.create () in
        let ch = Channel.create e () in
        let a =
          Session.create e ~channel:ch ~side:Channel.A ~asn:(asn 65001)
            ~router_id:(ip "10.0.0.1") ~hold_time:3 ~name:"a" ()
        in
        Channel.attach ch Channel.B (fun msg ->
            match msg with
            | Message.Open _ ->
              Channel.send ch Channel.B
                (Message.Open
                   { version = 4; asn = asn 65002; hold_time = 3; router_id = ip "10.0.0.2" });
              Channel.send ch Channel.B Message.Keepalive
            | _ -> ());
        let down_reason = ref None in
        Session.on_down a (fun r -> down_reason := Some r);
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check bool) "established first" true
          (Session.state a = Session.Established);
        Sim.Engine.run ~until:(Sim.Time.of_sec 10.0) e;
        (match !down_reason with
        | Some Session.Hold_timer_expired -> ()
        | _ -> Alcotest.fail "expected hold expiry");
        Alcotest.(check bool) "closed" true (Session.state a = Session.Closed));
    Alcotest.test_case "notification closes both ends" `Quick (fun () ->
        let e, _, a, b = make_session_pair () in
        let reason = ref None in
        Session.on_down b (fun r -> reason := Some r);
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Session.stop a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check bool) "a closed" true (Session.state a = Session.Closed);
        Alcotest.(check bool) "b closed" true (Session.state b = Session.Closed);
        match !reason with
        | Some (Session.Notification_received n) ->
          Alcotest.(check int) "cease" 6 n.Message.code
        | _ -> Alcotest.fail "expected notification");
    Alcotest.test_case "channel break brings the session down" `Quick (fun () ->
        let e, ch, a, _ = make_session_pair () in
        let reason = ref None in
        Session.on_down a (fun r -> reason := Some r);
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Channel.break ch;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        match !reason with
        | Some Session.Channel_broken -> ()
        | _ -> Alcotest.fail "expected channel break");
  ]

let fragmented_session_tests =
  [
    Alcotest.test_case "sessions work over a 7-byte-chunk byte stream" `Quick
      (fun () ->
        let e, _, a, b = make_session_pair ~fragment:7 () in
        let got = ref [] in
        Session.on_update b (fun u -> got := u :: !got);
        Session.on_established a (fun _ ->
            Session.send_update a
              { Message.withdrawn = [];
                attrs = Some (attrs ~med:5 "10.0.0.2");
                nlri = [pfx "1.0.0.0/24"; pfx "2.0.0.0/16"] });
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check bool) "established through fragments" true
          (Session.state a = Session.Established
          && Session.state b = Session.Established);
        match !got with
        | [u] ->
          Alcotest.(check int) "nlri intact" 2 (List.length u.Message.nlri)
        | _ -> Alcotest.fail "expected exactly one update");
    Alcotest.test_case "1-byte chunks still converge" `Quick (fun () ->
        let e, _, a, b = make_session_pair ~fragment:1 () in
        Session.start a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check bool) "up" true
          (Session.state a = Session.Established
          && Session.state b = Session.Established));
    Alcotest.test_case "fragment without codec is rejected" `Quick (fun () ->
        let e = Sim.Engine.create () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Channel.create e ~fragment:7 ());
             false
           with Invalid_argument _ -> true));
  ]

let speaker_tests =
  [
    Alcotest.test_case "multi-peer speaker routes callbacks by peer" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let hub = Speaker.create e ~name:"hub" ~asn:(asn 65001) ~router_id:(ip "10.0.0.1") () in
        let mk_leaf name id =
          let ch = Channel.create e () in
          let peer = Speaker.add_peer hub ~name ~channel:ch ~side:Channel.A () in
          let leaf =
            Speaker.create e ~name ~asn:(asn (65002 + id)) ~router_id:(ip (Fmt.str "10.0.0.%d" (2 + id))) ()
          in
          ignore (Speaker.add_peer leaf ~name:"hub" ~channel:ch ~side:Channel.B ());
          (peer, leaf)
        in
        let peer_a, leaf_a = mk_leaf "a" 0 in
        let _peer_b, leaf_b = mk_leaf "b" 1 in
        let seen = ref [] in
        Speaker.on_update hub (fun peer _ -> seen := peer.Speaker.id :: !seen);
        Speaker.start hub;
        Speaker.start leaf_a;
        Speaker.start leaf_b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check int) "both established" 2 (Speaker.established_count hub);
        Speaker.send_update leaf_a ~peer_id:0
          { Message.withdrawn = [pfx "1.0.0.0/24"]; attrs = None; nlri = [] };
        Speaker.send_update leaf_b ~peer_id:0
          { Message.withdrawn = [pfx "2.0.0.0/24"]; attrs = None; nlri = [] };
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check (list int)) "peer ids" [peer_a.Speaker.id; 1] (List.rev !seen));
  ]

let suite =
  [
    ("bgp.attributes", attributes_tests);
    ("bgp.decision", decision_tests);
    ("bgp.message", message_tests);
    ("bgp.codec", codec_tests);
    ("bgp.stream", stream_tests);
    ("bgp.rib", rib_tests);
    ("bgp.rib_indexed", indexed_equivalence_tests);
    ("bgp.channel", channel_tests);
    ("bgp.session", session_tests);
    ("bgp.session_over_bytes", fragmented_session_tests);
    ("bgp.speaker", speaker_tests);
  ]
