(* Tests for the differential checker itself: the flat-FIB oracle's
   decision process, schedule determinism and shrinking, the
   side-effect-free switch probe, and the end-to-end harness — including
   the guarded Listing 2 mutation it exists to catch. *)

let ip = Net.Ipv4.of_string_exn
let mac = Net.Mac.of_string_exn
let pfx = Net.Prefix.v

(* --- oracle ------------------------------------------------------------ *)

let make_oracle () =
  let o = Check.Oracle.create () in
  Check.Oracle.declare_peer o ~id:0 ~ip:(ip "10.0.0.2")
    ~mac:(mac "00:bb:00:00:00:02") ~port:1;
  Check.Oracle.declare_peer o ~id:1 ~ip:(ip "10.0.0.3")
    ~mac:(mac "00:bb:00:00:00:03") ~port:2;
  o

let attrs ?(pref = 100) ?(path_len = 1) nh =
  Bgp.Attributes.make ~local_pref:pref
    ~as_path:[Bgp.Attributes.Seq (List.init path_len (fun _ -> Bgp.Asn.of_int 65002))]
    ~next_hop:(ip nh) ()

let hop_nh o p =
  Option.map (fun h -> h.Check.Oracle.nh) (Check.Oracle.lookup o p)

let nh_opt = Alcotest.(option (testable Net.Ipv4.pp Net.Ipv4.equal))

let oracle_tests =
  [
    Alcotest.test_case "higher LOCAL_PREF wins" `Quick (fun () ->
        let o = make_oracle () in
        let p = pfx "1.0.0.0/24" in
        Check.Oracle.announce o ~peer:0 p (attrs ~pref:100 "10.0.0.2");
        Check.Oracle.announce o ~peer:1 p (attrs ~pref:200 "10.0.0.3");
        Alcotest.check nh_opt "peer 1" (Some (ip "10.0.0.3")) (hop_nh o p));
    Alcotest.test_case "shorter AS path breaks the tie" `Quick (fun () ->
        let o = make_oracle () in
        let p = pfx "1.0.0.0/24" in
        Check.Oracle.announce o ~peer:0 p (attrs ~path_len:3 "10.0.0.2");
        Check.Oracle.announce o ~peer:1 p (attrs ~path_len:1 "10.0.0.3");
        Alcotest.check nh_opt "peer 1" (Some (ip "10.0.0.3")) (hop_nh o p));
    Alcotest.test_case "a dead peer's routes are masked, not deleted" `Quick
      (fun () ->
        let o = make_oracle () in
        let p = pfx "1.0.0.0/24" in
        Check.Oracle.announce o ~peer:0 p (attrs ~pref:300 "10.0.0.2");
        Check.Oracle.announce o ~peer:1 p (attrs ~pref:100 "10.0.0.3");
        Check.Oracle.peer_down o 0;
        Alcotest.check nh_opt "fails over" (Some (ip "10.0.0.3")) (hop_nh o p);
        Check.Oracle.peer_down o 1;
        Alcotest.check nh_opt "uncovered" None (hop_nh o p);
        Alcotest.(check int) "no covered prefixes" 0 (Check.Oracle.cardinal o);
        Check.Oracle.peer_up o 0;
        Alcotest.check nh_opt "recovers the better route" (Some (ip "10.0.0.2"))
          (hop_nh o p));
    Alcotest.test_case "withdraw removes the candidate" `Quick (fun () ->
        let o = make_oracle () in
        let p = pfx "1.0.0.0/24" in
        Check.Oracle.announce o ~peer:0 p (attrs "10.0.0.2");
        Check.Oracle.withdraw o ~peer:0 p;
        Check.Oracle.withdraw o ~peer:0 p (* no-op on absent route *);
        Alcotest.check nh_opt "gone" None (hop_nh o p));
    Alcotest.test_case "lookup carries the declared data-plane coordinates"
      `Quick (fun () ->
        let o = make_oracle () in
        let p = pfx "2.0.0.0/24" in
        Check.Oracle.announce o ~peer:1 p (attrs "10.0.0.3");
        match Check.Oracle.lookup o p with
        | Some h ->
          Alcotest.(check bool) "mac" true
            (Net.Mac.equal h.Check.Oracle.mac (mac "00:bb:00:00:00:03"));
          Alcotest.(check int) "port" 2 h.Check.Oracle.port
        | None -> Alcotest.fail "no hop");
    Alcotest.test_case "prefixes come back sorted" `Quick (fun () ->
        let o = make_oracle () in
        List.iter
          (fun s -> Check.Oracle.announce o ~peer:0 (pfx s) (attrs "10.0.0.2"))
          ["9.0.0.0/24"; "1.0.0.0/24"; "5.0.0.0/16"];
        let got = Check.Oracle.prefixes o in
        Alcotest.(check (list string)) "ascending"
          ["1.0.0.0/24"; "5.0.0.0/16"; "9.0.0.0/24"]
          (List.map Net.Prefix.to_string got));
  ]

(* --- schedules and shrinking ------------------------------------------- *)

let step ev = { Check.Schedule.ev; dwell_ms = 40 }

let schedule_tests =
  [
    Alcotest.test_case "generation is a pure function of the seed" `Quick
      (fun () ->
        let a = Check.Schedule.generate ~seed:99L () in
        let b = Check.Schedule.generate ~seed:99L () in
        let c = Check.Schedule.generate ~seed:100L () in
        Alcotest.(check string) "identical"
          (Fmt.str "%a" Check.Schedule.pp a)
          (Fmt.str "%a" Check.Schedule.pp b);
        Alcotest.(check bool) "seed matters" false
          (Fmt.str "%a" Check.Schedule.pp a = Fmt.str "%a" Check.Schedule.pp c));
    Alcotest.test_case "requested length is honoured" `Quick (fun () ->
        let s = Check.Schedule.generate ~seed:5L ~length:17 () in
        Alcotest.(check int) "17 events" 17 (Check.Schedule.length s));
    Alcotest.test_case "chaos:false draws no fault windows" `Quick (fun () ->
        (* BFD flaps stay in: they are ordinary control-plane events, not
           channel-fault windows. *)
        let s = Check.Schedule.generate ~seed:12L ~length:200 ~chaos:false () in
        List.iter
          (fun { Check.Schedule.ev; _ } ->
            match ev with
            | Check.Schedule.Of_blackout _ | Router_faults _ | Channel_dup _ ->
              Alcotest.failf "fault window in a clean schedule: %a"
                Check.Schedule.pp_event ev
            | Announce _ | Withdraw _ | Peer_down _ | Peer_up _ | Bfd_flap _ -> ())
          s.Check.Schedule.steps);
    Alcotest.test_case "shrinking keeps only what the failure needs" `Quick
      (fun () ->
        (* Synthetic failure: the predicate needs the peer-0 cut AND the
           peer-1 announcement; the other eight events are noise the
           shrinker must strip. *)
        let key_down = Check.Schedule.Peer_down 0 in
        let key_ann =
          Check.Schedule.Announce { peer = 1; prefix = 0; pref = 100; prepend = 0 }
        in
        let noise =
          [ Check.Schedule.Peer_up 1;
            Check.Schedule.Withdraw { peer = 0; prefix = 1 };
            Check.Schedule.Bfd_flap 1;
            Check.Schedule.Announce { peer = 0; prefix = 2; pref = 50; prepend = 1 };
            Check.Schedule.Of_blackout { span_ms = 10 };
            Check.Schedule.Peer_up 0;
            Check.Schedule.Withdraw { peer = 1; prefix = 3 };
            Check.Schedule.Channel_dup { peer = 0; span_ms = 10 } ]
        in
        let sched =
          { Check.Schedule.seed = 7L; n_peers = 2; n_prefixes = 4;
            steps =
              List.map step
                (List.concat
                   [ List.filteri (fun i _ -> i < 4) noise; [key_down];
                     List.filteri (fun i _ -> i >= 4) noise; [key_ann] ]) }
        in
        let fails (s : Check.Schedule.t) =
          let has e = List.exists (fun st -> st.Check.Schedule.ev = e) s.steps in
          has key_down && has key_ann
        in
        let shrunk = Check.Schedule.shrink ~fails sched in
        Alcotest.(check int) "two events survive" 2 (Check.Schedule.length shrunk);
        Alcotest.(check bool) "and they still fail" true (fails shrunk));
    Alcotest.test_case "shrink is the identity on passing schedules" `Quick
      (fun () ->
        let sched = Check.Schedule.generate ~seed:3L ~length:10 () in
        let shrunk = Check.Schedule.shrink ~fails:(fun _ -> false) sched in
        Alcotest.(check int) "untouched" 10 (Check.Schedule.length shrunk);
        Alcotest.(check string) "same schedule"
          (Fmt.str "%a" Check.Schedule.pp sched)
          (Fmt.str "%a" Check.Schedule.pp shrunk));
  ]

(* --- the side-effect-free switch probe --------------------------------- *)

let probe_frame dst =
  Net.Ethernet.make ~src:(mac "00:cc:00:00:00:01") ~dst
    (Net.Ethernet.Ipv4
       (Net.Ipv4_packet.make ~src:(ip "10.0.0.100") ~dst:(ip "1.0.0.1")
          (Net.Ipv4_packet.Raw { protocol = 6; body = "" })))

let resolve_tests =
  [
    Alcotest.test_case "resolve walks the rewrite pipeline" `Quick (fun () ->
        let e = Sim.Engine.create ~seed:1L () in
        let sw = Openflow.Switch.create e ~n_ports:4 () in
        let vmac = mac "00:ff:00:00:00:01" in
        let peer_mac = mac "00:bb:00:00:00:02" in
        Openflow.Flow_table.apply (Openflow.Switch.table sw)
          (Openflow.Flow_table.flow_mod ~priority:100 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst vmac)
             [Openflow.Action.Set_dl_dst peer_mac; Openflow.Action.Output 2]);
        (match Openflow.Switch.resolve sw ~port:3 (probe_frame vmac) with
        | Openflow.Switch.Forward (f, [2]) ->
          Alcotest.(check bool) "rewritten" true
            (Net.Mac.equal f.Net.Ethernet.dst peer_mac)
        | _ -> Alcotest.fail "expected Forward to port 2");
        Alcotest.(check int) "no counter side effects" 0
          (Openflow.Switch.packets_forwarded sw));
    Alcotest.test_case "miss, blackhole and punt are distinguished" `Quick
      (fun () ->
        let e = Sim.Engine.create ~seed:1L () in
        let sw = Openflow.Switch.create e ~n_ports:4 () in
        let dead = mac "00:ff:00:00:00:02" in
        let punted = mac "00:ff:00:00:00:03" in
        Openflow.Flow_table.apply (Openflow.Switch.table sw)
          (Openflow.Flow_table.flow_mod ~priority:100 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst dead) []);
        Openflow.Flow_table.apply (Openflow.Switch.table sw)
          (Openflow.Flow_table.flow_mod ~priority:100 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst punted)
             [Openflow.Action.To_controller]);
        let kind m =
          match Openflow.Switch.resolve sw ~port:3 (probe_frame m) with
          | Openflow.Switch.Forward _ -> "forward"
          | Openflow.Switch.Punt -> "punt"
          | Openflow.Switch.Miss -> "miss"
          | Openflow.Switch.Blackhole -> "blackhole"
        in
        Alcotest.(check string) "empty actions" "blackhole" (kind dead);
        Alcotest.(check string) "to-controller" "punt" (kind punted);
        Alcotest.(check string) "no rule" "miss" (kind (mac "00:ff:00:00:00:04")));
  ]

(* --- the harness end to end -------------------------------------------- *)

let run_tests =
  [
    Alcotest.test_case "a hand-written failover schedule passes" `Quick (fun () ->
        let sched =
          { Check.Schedule.seed = 21L; n_peers = 2; n_prefixes = 4;
            steps =
              List.map step
                [ Check.Schedule.Announce { peer = 0; prefix = 0; pref = 200; prepend = 0 };
                  Check.Schedule.Announce { peer = 1; prefix = 0; pref = 100; prepend = 0 };
                  Check.Schedule.Announce { peer = 1; prefix = 1; pref = 100; prepend = 0 };
                  Check.Schedule.Peer_down 0;
                  Check.Schedule.Peer_up 0;
                  Check.Schedule.Withdraw { peer = 1; prefix = 1 } ] }
        in
        Alcotest.(check (list string)) "no violations" [] (Check.Run.execute sched));
    Alcotest.test_case "generated chaos schedules pass" `Quick (fun () ->
        match
          Check.Run.run_matrix ~n_peers:2 ~n_prefixes:6 ~events:15 ~seed:1L
            ~schedules:5 ()
        with
        | None -> ()
        | Some f -> Alcotest.failf "checker found: %a" Check.Run.pp_failure f);
    Alcotest.test_case "the skipped-rewrite mutation is caught and shrunk" `Quick
      (fun () ->
        match Check.Run.run_matrix ~mutate:true ~seed:7L ~schedules:25 () with
        | None -> Alcotest.fail "mutation survived the checker"
        | Some f ->
          Alcotest.(check bool) "violations recorded" true (f.violations <> []);
          Alcotest.(check bool)
            (Fmt.str "counterexample has %d events, want <= 6"
               (Check.Schedule.length f.shrunk))
            true
            (Check.Schedule.length f.shrunk <= 6));
  ]

let suite =
  [
    ("check.oracle", oracle_tests);
    ("check.schedule", schedule_tests);
    ("check.resolve", resolve_tests);
    ("check.run", run_tests);
  ]
