(* Tests for the legacy-router substrate: ARP cache, the serialized FIB,
   the router node, end hosts and provider peers. *)

let ip = Net.Ipv4.of_string_exn
let mac = Net.Mac.of_string_exn
let pfx = Net.Prefix.v

let arp_cache_tests =
  [
    Alcotest.test_case "miss sends one request, hit is synchronous" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let requests = ref [] in
        let cache =
          Router.Arp_cache.create e
            ~send_request:(fun ~interface ~target -> requests := (interface, target) :: !requests)
            ()
        in
        let resolved = ref [] in
        Router.Arp_cache.resolve cache ~interface:0 (ip "10.0.0.2") (fun m ->
            resolved := m :: !resolved);
        Alcotest.(check int) "one request" 1 (List.length !requests);
        Router.Arp_cache.learn cache (ip "10.0.0.2") (mac "00:bb:00:00:00:02");
        Alcotest.(check int) "callback fired" 1 (List.length !resolved);
        (* Second resolve answers from cache with no new request. *)
        Router.Arp_cache.resolve cache ~interface:0 (ip "10.0.0.2") (fun m ->
            resolved := m :: !resolved);
        Alcotest.(check int) "still one request" 1 (List.length !requests);
        Alcotest.(check int) "second callback" 2 (List.length !resolved));
    Alcotest.test_case "pending waiters fire in FIFO order" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let cache = Router.Arp_cache.create e ~send_request:(fun ~interface:_ ~target:_ -> ()) () in
        let order = ref [] in
        for i = 1 to 5 do
          Router.Arp_cache.resolve cache ~interface:0 (ip "10.0.0.2") (fun _ ->
              order := i :: !order)
        done;
        Alcotest.(check int) "pending" 1 (Router.Arp_cache.pending_count cache);
        Router.Arp_cache.learn cache (ip "10.0.0.2") (mac "00:bb:00:00:00:02");
        Alcotest.(check (list int)) "fifo" [1; 2; 3; 4; 5] (List.rev !order));
    Alcotest.test_case "retries then gives up" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let requests = ref 0 in
        let cache =
          Router.Arp_cache.create e ~retry_interval:(Sim.Time.of_ms 100) ~max_retries:3
            ~send_request:(fun ~interface:_ ~target:_ -> incr requests)
            ()
        in
        Router.Arp_cache.resolve cache ~interface:0 (ip "10.0.0.9") (fun _ -> ());
        Sim.Engine.run ~until:(Sim.Time.of_sec 5.0) e;
        Alcotest.(check int) "three tries" 3 !requests;
        Alcotest.(check int) "abandoned" 0 (Router.Arp_cache.pending_count cache));
    Alcotest.test_case "changed binding overwrites" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let cache = Router.Arp_cache.create e ~send_request:(fun ~interface:_ ~target:_ -> ()) () in
        Router.Arp_cache.learn cache (ip "10.0.0.2") (mac "00:bb:00:00:00:02");
        Router.Arp_cache.learn cache (ip "10.0.0.2") (mac "00:bb:00:00:00:99");
        Alcotest.(check (option string)) "new mac" (Some "00:bb:00:00:00:99")
          (Option.map Net.Mac.to_string (Router.Arp_cache.lookup cache (ip "10.0.0.2"))));
  ]

let adjacency a = Router.Adjacency.make ~interface:0 ~mac:(mac a)

let fib_tests =
  [
    Alcotest.test_case "first write lands after batch start + per entry" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let fib =
          Router.Fib.create e ~batch_start_latency:(Sim.Time.of_ms 280)
            ~per_entry_latency:(Sim.Time.of_us 281) ()
        in
        let applied_at = ref [] in
        Router.Fib.on_applied fib (fun _ ->
            applied_at := Sim.Time.to_us (Sim.Engine.now e) :: !applied_at);
        Router.Fib.enqueue fib (Router.Fib.Set (pfx "1.0.0.0/24", adjacency "00:bb:00:00:00:02"));
        Sim.Engine.run e;
        Alcotest.(check (list (float 0.5))) "280ms + 281us" [280_281.0] !applied_at);
    Alcotest.test_case "entries apply one by one" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fib =
          Router.Fib.create e ~batch_start_latency:Sim.Time.zero
            ~per_entry_latency:(Sim.Time.of_ms 1) ()
        in
        let times = ref [] in
        Router.Fib.on_applied fib (fun _ ->
            times := Sim.Time.to_ms (Sim.Engine.now e) :: !times);
        for i = 1 to 4 do
          Router.Fib.enqueue fib
            (Router.Fib.Set (pfx (Fmt.str "%d.0.0.0/24" i), adjacency "00:bb:00:00:00:02"))
        done;
        Sim.Engine.run e;
        Alcotest.(check (list (float 0.001))) "1,2,3,4 ms" [1.0; 2.0; 3.0; 4.0]
          (List.rev !times));
    Alcotest.test_case "data plane sees only applied entries" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fib =
          Router.Fib.create e ~batch_start_latency:(Sim.Time.of_ms 10)
            ~per_entry_latency:(Sim.Time.of_ms 1) ()
        in
        Router.Fib.enqueue fib (Router.Fib.Set (pfx "1.0.0.0/24", adjacency "00:bb:00:00:00:02"));
        Alcotest.(check (option unit)) "invisible while queued" None
          (Option.map (fun _ -> ()) (Router.Fib.lookup fib (ip "1.0.0.1")));
        Alcotest.(check int) "pending" 1 (Router.Fib.pending fib);
        Sim.Engine.run e;
        Alcotest.(check bool) "visible after" true
          (Router.Fib.lookup fib (ip "1.0.0.1") <> None);
        Alcotest.(check int) "size" 1 (Router.Fib.size fib));
    Alcotest.test_case "a drained engine restarts with batch latency" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fib =
          Router.Fib.create e ~batch_start_latency:(Sim.Time.of_ms 100)
            ~per_entry_latency:(Sim.Time.of_ms 1) ()
        in
        let times = ref [] in
        Router.Fib.on_applied fib (fun _ ->
            times := Sim.Time.to_ms (Sim.Engine.now e) :: !times);
        Router.Fib.enqueue fib (Router.Fib.Set (pfx "1.0.0.0/24", adjacency "00:bb:00:00:00:02"));
        Sim.Engine.run e;
        Router.Fib.enqueue fib (Router.Fib.Set (pfx "2.0.0.0/24", adjacency "00:bb:00:00:00:02"));
        Sim.Engine.run e;
        Alcotest.(check (list (float 0.001))) "two batches" [101.0; 202.0] (List.rev !times));
    Alcotest.test_case "remove deletes from the table" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fib = Router.Fib.create e ~batch_start_latency:Sim.Time.zero () in
        Router.Fib.enqueue fib (Router.Fib.Set (pfx "1.0.0.0/24", adjacency "00:bb:00:00:00:02"));
        Router.Fib.enqueue fib (Router.Fib.Remove (pfx "1.0.0.0/24"));
        Sim.Engine.run e;
        Alcotest.(check bool) "gone" true (Router.Fib.lookup fib (ip "1.0.0.1") = None);
        Alcotest.(check int) "applied count" 2 (Router.Fib.applied_count fib));
  ]

(* A small two-node rig: R1 with one data interface wired by a link to a
   provider peer, plus a BGP channel between them. *)
let make_rig ?(fib_batch = Sim.Time.of_ms 1) ?(fib_entry = Sim.Time.of_us 10) () =
  let e = Sim.Engine.create () in
  let r1 =
    Router.Legacy.create e ~name:"r1" ~asn:(Bgp.Asn.of_int 65001)
      ~router_id:(ip "10.0.0.1")
      ~interfaces:
        [
          {
            Router.Legacy.if_mac = mac "00:aa:00:00:00:01";
            if_ip = ip "10.0.0.1";
            if_connected = pfx "10.0.0.0/24";
          };
        ]
      ~fib_batch_start_latency:fib_batch ~fib_per_entry_latency:fib_entry ()
  in
  let r2 =
    Router.Peer.create e ~name:"r2" ~asn:(Bgp.Asn.of_int 65002)
      ~mac:(mac "00:bb:00:00:00:02") ~ip:(ip "10.0.0.2") ()
  in
  let link = Net.Link.create e () in
  Router.Legacy.connect_interface r1 0 link Net.Link.A;
  Router.Peer.connect r2 link Net.Link.B;
  let ch = Bgp.Channel.create e ~use_codec:true () in
  let peer = Router.Legacy.add_bgp_peer r1 ~name:"r2" ~channel:ch ~side:Bgp.Channel.A () in
  ignore (Router.Peer.add_bgp_peer r2 ~name:"r1" ~channel:ch ~side:Bgp.Channel.B ());
  Bgp.Speaker.start (Router.Legacy.speaker r1);
  Bgp.Speaker.start (Router.Peer.speaker r2);
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
  (e, r1, r2, link, peer)

let announce peer_node prefixes nh =
  let attrs =
    Bgp.Attributes.make
      ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
      ~next_hop:(ip nh) ()
  in
  Router.Peer.announce_to_all peer_node
    { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = List.map pfx prefixes }

let legacy_tests =
  [
    Alcotest.test_case "BGP route becomes a FIB entry via ARP" `Quick (fun () ->
        let e, r1, r2, _, _ = make_rig () in
        announce r2 ["1.0.0.0/24"] "10.0.0.2";
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        match Router.Fib.lookup (Router.Legacy.fib r1) (ip "1.0.0.1") with
        | Some adj ->
          Alcotest.(check string) "resolved mac" "00:bb:00:00:00:02"
            (Net.Mac.to_string adj.Router.Adjacency.mac)
        | None -> Alcotest.fail "no FIB entry");
    Alcotest.test_case "forwards data with TTL decrement and L2 rewrite" `Quick
      (fun () ->
        let e, r1, r2, _, _ = make_rig () in
        announce r2 ["1.0.0.0/24"] "10.0.0.2";
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        let delivered = ref [] in
        Router.Peer.on_delivery r2 (fun p -> delivered := p :: !delivered);
        let packet =
          Net.Ipv4_packet.udp ~ttl:64 ~src:(ip "192.168.0.100") ~dst:(ip "1.0.0.1")
            ~src_port:1 ~dst_port:2 "x"
        in
        Router.Legacy.receive r1 ~interface:0
          (Net.Ethernet.make ~src:(mac "00:dd:00:00:00:01") ~dst:(mac "00:aa:00:00:00:01")
             (Net.Ethernet.Ipv4 packet));
        Sim.Engine.run ~until:(Sim.Time.of_sec 4.0) e;
        match !delivered with
        | [p] ->
          Alcotest.(check int) "ttl decremented" 63 p.Net.Ipv4_packet.ttl;
          Alcotest.(check int) "forwarded counter" 1 (Router.Legacy.packets_forwarded r1)
        | _ -> Alcotest.fail "expected one delivery");
    Alcotest.test_case "no route drops and counts" `Quick (fun () ->
        let e, r1, _, _, _ = make_rig () in
        let packet =
          Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst:(ip "9.9.9.9") ~src_port:1
            ~dst_port:2 "x"
        in
        Router.Legacy.receive r1 ~interface:0
          (Net.Ethernet.make ~src:(mac "00:dd:00:00:00:01") ~dst:(mac "00:aa:00:00:00:01")
             (Net.Ethernet.Ipv4 packet));
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check int) "no_route" 1 (Router.Legacy.packets_no_route r1));
    Alcotest.test_case "ttl exhaustion drops" `Quick (fun () ->
        let e, r1, r2, _, _ = make_rig () in
        announce r2 ["1.0.0.0/24"] "10.0.0.2";
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        let packet =
          Net.Ipv4_packet.udp ~ttl:1 ~src:(ip "192.168.0.100") ~dst:(ip "1.0.0.1")
            ~src_port:1 ~dst_port:2 "x"
        in
        Router.Legacy.receive r1 ~interface:0
          (Net.Ethernet.make ~src:(mac "00:dd:00:00:00:01") ~dst:(mac "00:aa:00:00:00:01")
             (Net.Ethernet.Ipv4 packet));
        Sim.Engine.run ~until:(Sim.Time.of_sec 4.0) e;
        Alcotest.(check int) "ttl_expired" 1 (Router.Legacy.packets_ttl_expired r1));
    Alcotest.test_case "answers ARP for its interface address" `Quick (fun () ->
        let e, r1, _, _, _ = make_rig () in
        let got = ref None in
        let req =
          Net.Arp.request ~sender_mac:(mac "00:dd:00:00:00:01")
            ~sender_ip:(ip "10.0.0.99") ~target_ip:(ip "10.0.0.1")
        in
        (* Temporarily watch the rig link by re-receiving on a raw router:
           instead attach a fresh interface-less probe via the link is
           complex; simply check the reply through a direct call path. *)
        let r1_probe =
          Net.Ethernet.make ~src:(mac "00:dd:00:00:00:01") ~dst:Net.Mac.broadcast
            (Net.Ethernet.Arp req)
        in
        ignore got;
        Router.Legacy.receive r1 ~interface:0 r1_probe;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        (* The reply went out the interface towards the link; the peer
           learned our mac, which we can observe indirectly: no assert
           failure means the path executed. Stronger check below via
           Endhost. *)
        ());
    Alcotest.test_case "withdraw removes the FIB entry" `Quick (fun () ->
        let e, r1, r2, _, _ = make_rig () in
        announce r2 ["1.0.0.0/24"] "10.0.0.2";
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        Router.Peer.announce_to_all r2
          { Bgp.Message.withdrawn = [pfx "1.0.0.0/24"]; attrs = None; nlri = [] };
        Sim.Engine.run ~until:(Sim.Time.of_sec 5.0) e;
        Alcotest.(check bool) "gone" true
          (Router.Fib.lookup (Router.Legacy.fib r1) (ip "1.0.0.1") = None));
    Alcotest.test_case "BFD down withdraws all routes of the peer" `Quick (fun () ->
        let e, r1, r2, link, peer = make_rig () in
        announce r2 ["1.0.0.0/24"; "2.0.0.0/24"] "10.0.0.2";
        ignore
          (Router.Legacy.enable_bfd r1 ~peer ~remote_ip:(ip "10.0.0.2") ~interface:0
             ~detect_mult:3 ~tx_interval:(Sim.Time.of_ms 40) ());
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        Alcotest.(check int) "fib loaded" 2 (Router.Fib.size (Router.Legacy.fib r1));
        let failures = ref [] in
        Router.Legacy.on_peer_failure r1 (fun p -> failures := p.Bgp.Speaker.peer_name :: !failures);
        let t_cut = Sim.Engine.now e in
        Net.Link.set_up link false;
        Sim.Engine.run ~until:(Sim.Time.add t_cut (Sim.Time.of_sec 5.0)) e;
        Alcotest.(check (list string)) "failure callback" ["r2"] !failures;
        Alcotest.(check int) "fib drained" 0 (Router.Fib.size (Router.Legacy.fib r1)));
    Alcotest.test_case "stale ARP resolution cannot overwrite newer route" `Quick
      (fun () ->
        (* Regression for the bug found during bring-up: a slow ARP
           resolution for an old next hop must not clobber the entry of
           a route announced later. *)
        let e = Sim.Engine.create () in
        let r1 =
          Router.Legacy.create e ~name:"r1" ~asn:(Bgp.Asn.of_int 65001)
            ~router_id:(ip "10.0.0.1")
            ~interfaces:
              [
                {
                  Router.Legacy.if_mac = mac "00:aa:00:00:00:01";
                  if_ip = ip "10.0.0.1";
                  if_connected = pfx "10.0.0.0/24";
                };
              ]
            ~fib_batch_start_latency:Sim.Time.zero
            ~fib_per_entry_latency:(Sim.Time.of_us 1) ()
        in
        let ch = Bgp.Channel.create e () in
        ignore (Router.Legacy.add_bgp_peer r1 ~name:"up" ~channel:ch ~side:Bgp.Channel.A ());
        (* Hand-drive the upstream side of the channel. *)
        Bgp.Channel.attach ch Bgp.Channel.B (fun msg ->
            match msg with
            | Bgp.Message.Open _ ->
              Bgp.Channel.send ch Bgp.Channel.B
                (Bgp.Message.Open
                   { version = 4; asn = Bgp.Asn.of_int 65002; hold_time = 90; router_id = ip "10.0.0.2" });
              Bgp.Channel.send ch Bgp.Channel.B Bgp.Message.Keepalive
            | _ -> ());
        Bgp.Speaker.start (Router.Legacy.speaker r1);
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        let announce nh =
          let attrs =
            Bgp.Attributes.make ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
              ~next_hop:(ip nh) ()
          in
          Bgp.Channel.send ch Bgp.Channel.B
            (Bgp.Message.Update
               { withdrawn = []; attrs = Some attrs; nlri = [pfx "1.0.0.0/24"] })
        in
        announce "10.0.0.7";
        announce "10.0.0.8";
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        (* Answer ARP in reverse order: newer next hop resolves first. *)
        Router.Legacy.receive r1 ~interface:0
          (Net.Ethernet.make ~src:(mac "00:bb:00:00:00:08") ~dst:(mac "00:aa:00:00:00:01")
             (Net.Ethernet.Arp
                (Net.Arp.reply
                   (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
                      ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.0.0.8"))
                   ~sender_mac:(mac "00:bb:00:00:00:08"))));
        Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
        Router.Legacy.receive r1 ~interface:0
          (Net.Ethernet.make ~src:(mac "00:bb:00:00:00:07") ~dst:(mac "00:aa:00:00:00:01")
             (Net.Ethernet.Arp
                (Net.Arp.reply
                   (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
                      ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.0.0.7"))
                   ~sender_mac:(mac "00:bb:00:00:00:07"))));
        Sim.Engine.run ~until:(Sim.Time.of_sec 5.0) e;
        match Router.Fib.lookup (Router.Legacy.fib r1) (ip "1.0.0.1") with
        | Some adj ->
          Alcotest.(check string) "newest route wins" "00:bb:00:00:00:08"
            (Net.Mac.to_string adj.Router.Adjacency.mac)
        | None -> Alcotest.fail "no FIB entry");
  ]

let endhost_tests =
  [
    Alcotest.test_case "two hosts talk UDP over a link (ARP included)" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let h1 =
          Router.Endhost.create e ~name:"h1" ~mac:(mac "00:dd:00:00:00:01")
            ~ip:(ip "10.0.0.11") ()
        in
        let h2 =
          Router.Endhost.create e ~name:"h2" ~mac:(mac "00:dd:00:00:00:02")
            ~ip:(ip "10.0.0.12") ()
        in
        let link = Net.Link.create e () in
        Router.Endhost.connect h1 link Net.Link.A;
        Router.Endhost.connect h2 link Net.Link.B;
        let got = ref [] in
        Router.Endhost.on_udp h2 (fun ~src u -> got := (src, u) :: !got);
        Router.Endhost.send_udp h1 ~dst:(ip "10.0.0.12") ~src_port:1000 ~dst_port:2000
          "ping";
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        match !got with
        | [(src, u)] ->
          Alcotest.(check string) "src" "10.0.0.11" (Net.Ipv4.to_string src);
          Alcotest.(check string) "payload" "ping" u.Net.Udp.payload
        | _ -> Alcotest.fail "expected one datagram");
    Alcotest.test_case "ignores frames for other macs" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let h =
          Router.Endhost.create e ~name:"h" ~mac:(mac "00:dd:00:00:00:01")
            ~ip:(ip "10.0.0.11") ()
        in
        let got = ref 0 in
        Router.Endhost.on_udp h (fun ~src:_ _ -> incr got);
        Router.Endhost.receive h
          (Net.Ethernet.make ~src:(mac "00:dd:00:00:00:02") ~dst:(mac "00:dd:00:00:00:99")
             (Net.Ethernet.Ipv4
                (Net.Ipv4_packet.udp ~src:(ip "10.0.0.12") ~dst:(ip "10.0.0.11")
                   ~src_port:1 ~dst_port:2 "x")));
        Alcotest.(check int) "ignored" 0 !got);
  ]

let peer_tests =
  [
    Alcotest.test_case "peer answers BFD as a responder" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let r2 =
          Router.Peer.create e ~name:"r2" ~asn:(Bgp.Asn.of_int 65002)
            ~mac:(mac "00:bb:00:00:00:02") ~ip:(ip "10.0.0.2") ()
        in
        let host =
          Router.Endhost.create e ~name:"h" ~mac:(mac "00:dd:00:00:00:01")
            ~ip:(ip "10.0.0.11") ()
        in
        let link = Net.Link.create e () in
        Router.Endhost.connect host link Net.Link.A;
        Router.Peer.connect r2 link Net.Link.B;
        let session_state = ref Bfd.Packet.Down in
        let session =
          Bfd.Session.create e ~name:"host-bfd" ~local_discriminator:42l
            ~tx_interval:(Sim.Time.of_ms 40)
            ~send:(fun pkt ->
              Router.Endhost.send_udp host ~dst:(ip "10.0.0.2") ~src_port:49152
                ~dst_port:Bfd.Packet.udp_port (Bfd.Packet.encode pkt))
            ()
        in
        Router.Endhost.on_udp host (fun ~src:_ u ->
            if u.Net.Udp.dst_port = Bfd.Packet.udp_port then
              match Bfd.Packet.decode u.Net.Udp.payload with
              | Ok pkt -> Bfd.Session.receive session pkt
              | Error _ -> ());
        Bfd.Session.on_state_change session (fun s _ -> session_state := s);
        Bfd.Session.enable session;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check bool) "came up" true (!session_state = Bfd.Packet.Up));
    Alcotest.test_case "transit packets go to the delivery callback" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let r2 =
          Router.Peer.create e ~name:"r2" ~asn:(Bgp.Asn.of_int 65002)
            ~mac:(mac "00:bb:00:00:00:02") ~ip:(ip "10.0.0.2") ()
        in
        let got = ref 0 in
        Router.Peer.on_delivery r2 (fun _ -> incr got);
        Router.Peer.receive r2
          (Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01") ~dst:(mac "00:bb:00:00:00:02")
             (Net.Ethernet.Ipv4
                (Net.Ipv4_packet.udp ~src:(ip "192.168.0.1") ~dst:(ip "1.0.0.1")
                   ~src_port:1 ~dst_port:2 "x")));
        Alcotest.(check int) "delivered" 1 !got;
        Alcotest.(check int) "counter" 1 (Router.Peer.packets_delivered r2));
  ]

(* The batched receive path promises the per-frame semantics of the
   sequential one — same deliveries in the same order, same counters —
   with one transmit event per burst. Drive two identical rigs with the
   same traffic, one per path, and compare. *)
let batch_tests =
  [
    Alcotest.test_case "fib lookup_batch = pointwise lookup" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fib = Router.Fib.create e ~batch_start_latency:Sim.Time.zero () in
        Router.Fib.enqueue_batch fib
          [
            Router.Fib.Set (pfx "1.0.0.0/24", adjacency "00:bb:00:00:00:02");
            Router.Fib.Set (pfx "1.0.0.128/25", adjacency "00:bb:00:00:00:03");
            Router.Fib.Set (pfx "0.0.0.0/0", adjacency "00:bb:00:00:00:04");
          ];
        Sim.Engine.run e;
        let addrs =
          Array.map ip [| "1.0.0.1"; "1.0.0.200"; "9.9.9.9"; "1.0.1.1" |]
        in
        let out = Array.make (Array.length addrs) None in
        Router.Fib.lookup_batch fib addrs out;
        Array.iteri
          (fun i a ->
            Alcotest.(check bool)
              (Printf.sprintf "addr %d" i)
              true
              (Option.equal Router.Adjacency.equal (Router.Fib.lookup fib a)
                 out.(i)))
          addrs);
    Alcotest.test_case "receive_batch behaves like sequential receive" `Quick
      (fun () ->
        let frames () =
          let transit ?ttl dst =
            Net.Ethernet.make ~src:(mac "00:dd:00:00:00:01")
              ~dst:(mac "00:aa:00:00:00:01")
              (Net.Ethernet.Ipv4
                 (Net.Ipv4_packet.udp ?ttl ~src:(ip "192.168.0.100") ~dst:(ip dst)
                    ~src_port:1 ~dst_port:2 "x"))
          in
          [|
            transit "1.0.0.1";
            transit "9.9.9.9" (* no route *);
            transit ~ttl:1 "1.0.0.2" (* ttl expiry *);
            transit "1.0.0.3";
            transit "1.0.0.4";
          |]
        in
        let run batched =
          let e, r1, r2, _, _ = make_rig () in
          announce r2 ["1.0.0.0/24"] "10.0.0.2";
          Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
          let delivered = ref [] in
          Router.Peer.on_delivery r2 (fun p -> delivered := p :: !delivered);
          if batched then Router.Legacy.receive_batch r1 ~interface:0 (frames ())
          else Array.iter (Router.Legacy.receive r1 ~interface:0) (frames ());
          Sim.Engine.run ~until:(Sim.Time.of_sec 4.0) e;
          ( List.rev !delivered,
            Router.Legacy.packets_forwarded r1,
            Router.Legacy.packets_no_route r1,
            Router.Legacy.packets_ttl_expired r1 )
        in
        let seq_del, sf, sn, st = run false in
        let bat_del, bf, bn, bt = run true in
        Alcotest.(check int) "deliveries" (List.length seq_del) (List.length bat_del);
        Alcotest.(check bool) "same packets in order" true
          (List.equal Net.Ipv4_packet.equal seq_del bat_del);
        Alcotest.(check (list int)) "counters" [sf; sn; st] [bf; bn; bt];
        Alcotest.(check int) "three forwarded" 3 bf;
        Alcotest.(check int) "one no-route" 1 bn;
        Alcotest.(check int) "one ttl drop" 1 bt);
  ]

let suite =
  [
    ("router.arp_cache", arp_cache_tests);
    ("router.fib", fib_tests);
    ("router.batch", batch_tests);
    ("router.legacy", legacy_tests);
    ("router.endhost", endhost_tests);
    ("router.peer", peer_tests);
  ]
