(* Focused controller tests: the ARP punt/reply path through a real
   switch, the reactive VMAC fallback, and the §2 bound that a failover
   rewrites at most #peers rules. *)

let ip = Net.Ipv4.of_string_exn
let mac = Net.Mac.of_string_exn

(* A minimal supercharged rig: switch + controller + NIC + [n] provider
   peers with BGP channels, and a hand-driven "router" side: we attach a
   raw channel endpoint so tests can inspect exactly what the controller
   announces. *)
type rig = {
  engine : Sim.Engine.t;
  switch : Openflow.Switch.t;
  controller : Supercharger.Controller.t;
  peers : Router.Peer.t array;
  peer_links : Net.Link.t array;
  router_rx : Bgp.Message.update list ref;  (** newest first *)
}

let run_for rig s =
  Sim.Engine.run
    ~until:(Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_sec s))
    rig.engine

(* Quiescence-driven settling, replacing the old fixed sleeps: advance
   in 50 ms slices until the public predicate (controller quiescent +
   switch table-update engine idle) holds and the activity snapshot has
   been still for six consecutive slices. The 300 ms of enforced
   stillness covers the windows the predicate alone cannot see — BFD
   detection (3 x 40 ms) after a link cut, during which the controller
   has no work in flight yet. Time-based waits remain only where a
   timer must actually expire (the 5 s group linger). *)
let settle ?(timeout = 30.0) rig =
  let snapshot () =
    ( Supercharger.Provisioner.flow_mods_sent
        (Supercharger.Controller.provisioner rig.controller),
      Openflow.Switch.flow_mods_applied rig.switch,
      Supercharger.Algorithm.announced_count
        (Supercharger.Controller.algorithm rig.controller),
      Supercharger.Controller.failovers_handled rig.controller,
      List.length !(rig.router_rx),
      Array.to_list
        (Array.map
           (fun p ->
             match
               Supercharger.Controller.bfd_session rig.controller
                 (Router.Peer.ip p)
             with
             | Some s -> Bfd.Session.state s = Bfd.Packet.Up
             | None -> true)
           rig.peers) )
  in
  let deadline =
    Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_sec timeout)
  in
  let rec loop stable last =
    if Sim.Time.( >= ) (Sim.Engine.now rig.engine) deadline then
      Alcotest.fail "no quiescence before the settle deadline"
    else begin
      run_for rig 0.05;
      let snap = snapshot () in
      if
        Supercharger.Controller.quiescent rig.controller
        && Openflow.Switch.idle rig.switch
        && last = Some snap
      then (if stable + 1 < 6 then loop (stable + 1) last)
      else loop 0 (Some snap)
    end
  in
  loop 0 None

let make_rig ?(n_peers = 2) () =
  let engine = Sim.Engine.create ~seed:9L () in
  let switch = Openflow.Switch.create engine ~n_ports:(2 + n_peers) () in
  let controller =
    Supercharger.Controller.create engine ~name:"c1" ~asn:(Bgp.Asn.of_int 65001)
      ~router_id:(ip "10.0.0.100") ()
  in
  (* The whole control channel runs through the OF 1.0 binary codec. *)
  Supercharger.Controller.connect_switch ~use_codec:true controller switch;
  let nic =
    Router.Endhost.create engine ~name:"c1-nic" ~mac:(mac "00:cc:00:00:00:01")
      ~ip:(ip "10.0.0.100") ()
  in
  let link_c = Net.Link.create engine () in
  Router.Endhost.connect nic link_c Net.Link.A;
  Openflow.Switch.attach_link switch ~port:(1 + n_peers) link_c Net.Link.B;
  Openflow.Flow_table.apply (Openflow.Switch.table switch)
    (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
       (Openflow.Ofmatch.dl_dst (mac "00:cc:00:00:00:01"))
       [Openflow.Action.Output (1 + n_peers)]);
  Supercharger.Controller.attach_dataplane controller nic;
  let peers =
    Array.init n_peers (fun i ->
        Router.Peer.create engine
          ~name:(Fmt.str "r%d" (2 + i))
          ~asn:(Bgp.Asn.of_int (65002 + i))
          ~mac:(Net.Mac.of_int64 (Int64.of_int (0xBB_0000_0000 + 2 + i)))
          ~ip:(ip (Fmt.str "10.0.0.%d" (2 + i)))
          ())
  in
  let peer_links =
    Array.mapi
      (fun i peer ->
        let link = Net.Link.create engine () in
        Router.Peer.connect peer link Net.Link.A;
        Openflow.Switch.attach_link switch ~port:(1 + i) link Net.Link.B;
        Openflow.Flow_table.apply (Openflow.Switch.table switch)
          (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst (Router.Peer.mac peer))
             [Openflow.Action.Output (1 + i)]);
        let ch = Bgp.Channel.create engine () in
        ignore
          (Supercharger.Controller.add_upstream_peer controller
             ~name:(Router.Peer.name peer)
             ~ip:(Router.Peer.ip peer) ~mac:(Router.Peer.mac peer) ~switch_port:(1 + i)
             ~channel:ch ~side:Bgp.Channel.A
             ~import_local_pref:(200 - (10 * i))
             ());
        ignore
          (Router.Peer.add_bgp_peer peer ~name:"c1" ~channel:ch ~side:Bgp.Channel.B ());
        link)
      peers
  in
  (* Hand-driven router side. *)
  let router_rx = ref [] in
  let ch_r1 = Bgp.Channel.create engine () in
  ignore
    (Supercharger.Controller.add_router controller ~name:"r1" ~channel:ch_r1
       ~side:Bgp.Channel.A ());
  Bgp.Channel.attach ch_r1 Bgp.Channel.B (fun msg ->
      match msg with
      | Bgp.Message.Open _ ->
        Bgp.Channel.send ch_r1 Bgp.Channel.B
          (Bgp.Message.Open
             { version = 4; asn = Bgp.Asn.of_int 65001; hold_time = 90;
               router_id = ip "10.0.0.1" });
        Bgp.Channel.send ch_r1 Bgp.Channel.B Bgp.Message.Keepalive
      | Bgp.Message.Update u -> router_rx := u :: !router_rx
      | Bgp.Message.Keepalive | Bgp.Message.Notification _ -> ());
  Supercharger.Controller.start controller;
  Array.iter (fun p -> Bgp.Speaker.start (Router.Peer.speaker p)) peers;
  let rig = { engine; switch; controller; peers; peer_links; router_rx } in
  settle rig;
  rig

let announce rig peer_idx prefixes =
  let peer = rig.peers.(peer_idx) in
  let attrs =
    Bgp.Attributes.make
      ~as_path:[Bgp.Attributes.Seq [Router.Peer.asn peer]]
      ~next_hop:(Router.Peer.ip peer) ()
  in
  Router.Peer.announce_to_all peer
    { Bgp.Message.withdrawn = []; attrs = Some attrs;
      nlri = List.map Net.Prefix.v prefixes };
  settle rig

let vnh_of_last_announce rig =
  match !(rig.router_rx) with
  | { Bgp.Message.attrs = Some attrs; _ } :: _ -> attrs.Bgp.Attributes.next_hop
  | _ -> Alcotest.fail "no announcement reached the router"

let controller_tests =
  [
    Alcotest.test_case "ARP for a VNH is answered with the VMAC" `Quick (fun () ->
        let rig = make_rig () in
        announce rig 0 ["1.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"];
        let vnh = vnh_of_last_announce rig in
        (* Inject the router's ARP request at the switch as port 0 would. *)
        let learned = ref None in
        let rx_link = Net.Link.create rig.engine () in
        Net.Link.attach rx_link Net.Link.A (fun frame ->
            match frame.Net.Ethernet.payload with
            | Net.Ethernet.Arp { op = Net.Arp.Reply; sender_ip; sender_mac; _ } ->
              learned := Some (sender_ip, sender_mac)
            | _ -> ());
        Openflow.Switch.attach_link rig.switch ~port:0 rx_link Net.Link.B;
        Net.Link.send rx_link Net.Link.A
          (Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01") ~dst:Net.Mac.broadcast
             (Net.Ethernet.Arp
                (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
                   ~sender_ip:(ip "10.0.0.1") ~target_ip:vnh)));
        settle rig;
        match !learned with
        | Some (sender_ip, sender_mac) ->
          Alcotest.(check bool) "vnh claimed" true (Net.Ipv4.equal sender_ip vnh);
          let groups = Supercharger.Controller.groups rig.controller in
          (match Supercharger.Backup_group.find_by_vnh groups vnh with
          | Some binding ->
            Alcotest.(check string) "vmac" (Net.Mac.to_string binding.vmac)
              (Net.Mac.to_string sender_mac)
          | None -> Alcotest.fail "vnh unknown to the registry")
        | None -> Alcotest.fail "no ARP reply received");
    Alcotest.test_case "ARP for a real host is re-flooded, owner answers" `Quick
      (fun () ->
        let rig = make_rig () in
        let got_reply = ref false in
        let rx_link = Net.Link.create rig.engine () in
        Net.Link.attach rx_link Net.Link.A (fun frame ->
            match frame.Net.Ethernet.payload with
            | Net.Ethernet.Arp { op = Net.Arp.Reply; sender_ip; _ }
              when Net.Ipv4.equal sender_ip (ip "10.0.0.2") ->
              got_reply := true
            | _ -> ());
        Openflow.Switch.attach_link rig.switch ~port:0 rx_link Net.Link.B;
        Openflow.Flow_table.apply (Openflow.Switch.table rig.switch)
          (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst (mac "00:aa:00:00:00:01"))
             [Openflow.Action.Output 0]);
        Net.Link.send rx_link Net.Link.A
          (Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01") ~dst:Net.Mac.broadcast
             (Net.Ethernet.Arp
                (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
                   ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.0.0.2"))));
        settle rig;
        Alcotest.(check bool) "peer replied" true !got_reply);
    Alcotest.test_case "reactive fallback forwards a racing VMAC packet" `Quick
      (fun () ->
        (* A tagged packet arriving before its rule is installed must be
           punted and forwarded by the controller itself. *)
        let rig = make_rig () in
        announce rig 0 ["1.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"];
        let groups = Supercharger.Controller.groups rig.controller in
        let binding =
          match Supercharger.Backup_group.all groups with
          | [b] -> b
          | _ -> Alcotest.fail "expected one group"
        in
        (* Remove the installed rule to simulate the race. *)
        Openflow.Flow_table.apply (Openflow.Switch.table rig.switch)
          (Openflow.Flow_table.flow_mod ~priority:100 Openflow.Flow_table.Delete_strict
             (Openflow.Ofmatch.dl_dst binding.vmac)
             []);
        let delivered = ref 0 in
        Router.Peer.on_delivery rig.peers.(0) (fun _ -> incr delivered);
        Openflow.Switch.receive rig.switch ~port:0
          (Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01") ~dst:binding.vmac
             (Net.Ethernet.Ipv4
                (Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst:(ip "1.0.0.1")
                   ~src_port:1 ~dst_port:2 "x")));
        settle rig;
        Alcotest.(check int) "delivered via packet-out" 1 !delivered);
    Alcotest.test_case "failover rewrites at most #peers rules (S2 bound)" `Quick
      (fun () ->
        let rig = make_rig ~n_peers:4 () in
        (* Four peers, staggered preference; every prefix shares the
           (p0, p1) group, but build some extra groups by withdrawing
           from subsets. *)
        announce rig 0 ["1.0.0.0/24"; "2.0.0.0/24"; "3.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"; "2.0.0.0/24"];
        announce rig 2 ["2.0.0.0/24"; "3.0.0.0/24"];
        announce rig 3 ["3.0.0.0/24"];
        let rewrites = ref None in
        Supercharger.Controller.on_failover rig.controller (fun ~failed:_ ~flow_mods ->
            rewrites := Some flow_mods);
        Net.Link.set_up rig.peer_links.(0) false;
        settle rig;
        match !rewrites with
        | Some n ->
          Alcotest.(check bool) (Fmt.str "%d <= 4 peers" n) true (n <= 4);
          Alcotest.(check bool) "rewrote something" true (n >= 1)
        | None -> Alcotest.fail "failover did not run");
    Alcotest.test_case "peer recovery re-points the groups back" `Quick (fun () ->
        let rig = make_rig () in
        announce rig 0 ["1.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"];
        let groups = Supercharger.Controller.groups rig.controller in
        let prov = Supercharger.Controller.provisioner rig.controller in
        let binding =
          match Supercharger.Backup_group.all groups with
          | [b] -> b
          | _ -> Alcotest.fail "expected one group"
        in
        (* Fail the primary; the group must point at the backup. *)
        Net.Link.set_up rig.peer_links.(0) false;
        settle rig;
        Alcotest.(check (option string)) "on backup" (Some "10.0.0.3")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected prov binding));
        (* Plug the cable back: BFD comes up, the group returns to the
           primary, and the controller restores the peer's routes from
           its Adj-RIB-In — the session never reset, so the peer itself
           stays silent (soft reconfiguration inbound). *)
        Net.Link.set_up rig.peer_links.(0) true;
        settle rig;
        Alcotest.(check (option string)) "back on primary" (Some "10.0.0.2")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected prov binding));
        let algo = Supercharger.Controller.algorithm rig.controller in
        (match Supercharger.Algorithm.last_announced algo (Net.Prefix.v "1.0.0.0/24") with
        | Some attrs ->
          Alcotest.(check bool) "restored announcement carries the VNH" true
            (Supercharger.Backup_group.find_by_vnh groups attrs.Bgp.Attributes.next_hop
            <> None)
        | None -> Alcotest.fail "route not restored from the Adj-RIB-In");
        (* A peer re-sending the identical route after recovery must not
           cause churn towards the router. *)
        let before = List.length !(rig.router_rx) in
        announce rig 0 ["1.0.0.0/24"];
        settle rig;
        Alcotest.(check int) "identical re-announcement is phantom churn" before
          (List.length !(rig.router_rx)));
    Alcotest.test_case "withdraw storm converges to consistent state" `Quick
      (fun () ->
        let rig = make_rig () in
        let prefixes = List.init 30 (fun i -> Fmt.str "1.0.%d.0/24" i) in
        announce rig 0 prefixes;
        announce rig 1 prefixes;
        (* Backup withdraws everything: the controller must re-announce
           every prefix with the primary's real next hop. *)
        Router.Peer.announce_to_all rig.peers.(1)
          { Bgp.Message.withdrawn = List.map Net.Prefix.v prefixes;
            attrs = None; nlri = [] };
        settle rig;
        let algo = Supercharger.Controller.algorithm rig.controller in
        List.iter
          (fun p ->
            match Supercharger.Algorithm.last_announced algo (Net.Prefix.v p) with
            | Some attrs ->
              Alcotest.(check string) "real primary NH" "10.0.0.2"
                (Net.Ipv4.to_string attrs.Bgp.Attributes.next_hop)
            | None -> Alcotest.failf "%s lost" p)
          prefixes;
        (* Primary withdraws too: everything must be withdrawn. *)
        Router.Peer.announce_to_all rig.peers.(0)
          { Bgp.Message.withdrawn = List.map Net.Prefix.v prefixes;
            attrs = None; nlri = [] };
        settle rig;
        Alcotest.(check int) "nothing announced" 0
          (Supercharger.Algorithm.announced_count algo));
    Alcotest.test_case "flap churn keeps online state = offline recomputation" `Quick
      (fun () ->
        let rig = make_rig () in
        let entries = Workloads.Rib_gen.generate ~seed:21L ~count:40 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            announce rig 0 [Net.Prefix.to_string e.prefix];
            announce rig 1 [Net.Prefix.to_string e.prefix])
          entries;
        (* Random withdraw/re-announce churn from the backup peer. *)
        let events =
          Workloads.Churn.flap ~seed:22L ~entries ~rounds:60
            ~next_hop:(Router.Peer.ip rig.peers.(1))
            ~asn:(Router.Peer.asn rig.peers.(1))
            ~peer:1
        in
        List.iter
          (fun (ev : Workloads.Churn.event) ->
            Router.Peer.announce_to_all rig.peers.(1) ev.update)
          events;
        settle rig;
        let rib = Supercharger.Controller.rib rig.controller in
        let algo = Supercharger.Controller.algorithm rig.controller in
        let groups = Supercharger.Controller.groups rig.controller in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let ranked = Bgp.Rib.ordered rib e.prefix in
            let expected_nh =
              match ranked with
              | [] -> None
              | [only] -> Some (Bgp.Route.next_hop only)
              | routes -> (
                match
                  Supercharger.Backup_group.find groups
                    (List.map Bgp.Route.next_hop routes)
                with
                | Some b -> Some b.vnh
                | None -> None)
            in
            let got =
              Option.map
                (fun (a : Bgp.Attributes.t) -> a.Bgp.Attributes.next_hop)
                (Supercharger.Algorithm.last_announced algo e.prefix)
            in
            Alcotest.(check bool)
              (Fmt.str "%a consistent" Net.Prefix.pp e.prefix)
              true
              (Option.equal Net.Ipv4.equal expected_nh got))
          entries);
    Alcotest.test_case "an IGP cost oracle reorders the backup group" `Quick
      (fun () ->
        (* Make the lower-LOCAL-PREF... rather, equalise preferences and
           let the IGP decide: with peer 1 closer than peer 0, the group
           must be (peer1, peer0). *)
        let rig = make_rig () in
        Supercharger.Controller.set_igp_cost_fn rig.controller (fun nh ->
            if Net.Ipv4.equal nh (ip "10.0.0.2") then 10 else 1);
        (* Same LOCAL_PREF for both: announce with explicit equal pref
           through the import policy by using identical updates. The rig
           sets import_local_pref 200/190, so override by announcing from
           both and checking that IGP only breaks remaining ties. *)
        let attrs peer =
          Bgp.Attributes.make
            ~as_path:[Bgp.Attributes.Seq [Router.Peer.asn rig.peers.(peer)]]
            ~next_hop:(Router.Peer.ip rig.peers.(peer)) ()
        in
        ignore attrs;
        (* Directly exercise the RIB ordering the controller built. *)
        announce rig 0 ["5.0.0.0/24"];
        announce rig 1 ["5.0.0.0/24"];
        let rib = Supercharger.Controller.rib rig.controller in
        (match Bgp.Rib.ordered rib (Net.Prefix.v "5.0.0.0/24") with
        | [first; second] ->
          (* LOCAL_PREF (200 vs 190) still dominates, but the stored
             routes must carry the oracle's costs. *)
          Alcotest.(check int) "first cost" 10 first.Bgp.Route.igp_cost;
          Alcotest.(check int) "second cost" 1 second.Bgp.Route.igp_cost
        | _ -> Alcotest.fail "expected two candidates");
        (* Now remove the preference difference: a fresh rig with equal
           import policies shows the IGP deciding the order. *)
        let engine = Sim.Engine.create () in
        let rib = Bgp.Rib.create () in
        let groups =
          Supercharger.Backup_group.create (Supercharger.Vnh.create ())
        in
        let algo = Supercharger.Algorithm.create groups in
        ignore engine;
        let route peer_id nh cost =
          Bgp.Route.make ~peer_id ~peer_router_id:(ip nh) ~igp_cost:cost
            (Bgp.Attributes.make
               ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
               ~next_hop:(ip nh) ())
        in
        let feed change =
          Option.iter
            (fun c -> ignore (Supercharger.Algorithm.process_change algo c))
            change
        in
        feed (Bgp.Rib.announce rib (Net.Prefix.v "6.0.0.0/24") (route 0 "10.0.0.2" 10));
        feed (Bgp.Rib.announce rib (Net.Prefix.v "6.0.0.0/24") (route 1 "10.0.0.3" 1));
        match Supercharger.Backup_group.all groups with
        | [b] ->
          Alcotest.(check (list string)) "igp-near peer is primary"
            ["10.0.0.3"; "10.0.0.2"]
            (List.map Net.Ipv4.to_string b.next_hops)
        | _ -> Alcotest.fail "expected one group");
    Alcotest.test_case "repeated identical announce drives no phantom churn" `Quick
      (fun () ->
        (* The no-op suppression in Bgp.Rib.announce: a peer re-sending
           the exact same route must not produce change records, so
           neither Listing 1 nor the metrics layer sees any churn. *)
        let rig = make_rig () in
        let emissions () =
          Option.value ~default:0
            (Obs.Metrics.find_counter
               (Sim.Engine.metrics rig.engine) "controller.emissions")
        in
        announce rig 0 ["7.7.0.0/24"];
        let after_first = emissions () in
        Alcotest.(check bool) "first announce emitted" true (after_first >= 1);
        let updates_before =
          Supercharger.Controller.updates_processed rig.controller
        in
        announce rig 0 ["7.7.0.0/24"];
        Alcotest.(check bool) "update was processed" true
          (Supercharger.Controller.updates_processed rig.controller > updates_before);
        Alcotest.(check int) "emissions unchanged" after_first (emissions ());
        Alcotest.(check int) "algorithm saw no churn" after_first
          (Supercharger.Algorithm.emissions_total
             (Supercharger.Controller.algorithm rig.controller)));
    Alcotest.test_case "updates processed counter advances" `Quick (fun () ->
        let rig = make_rig () in
        announce rig 0 ["1.0.0.0/24"; "2.0.0.0/24"];
        Alcotest.(check bool) "counted" true
          (Supercharger.Controller.updates_processed rig.controller >= 1));
    Alcotest.test_case "consecutive withdrawals pack into one UPDATE" `Quick
      (fun () ->
        let p s = Net.Prefix.v s in
        let attrs nh =
          Bgp.Attributes.make
            ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
            ~next_hop:(ip nh) ()
        in
        let a = attrs "10.0.0.2" in
        let emissions =
          [
            Supercharger.Algorithm.Announce (p "1.0.0.0/24", a);
            Supercharger.Algorithm.Announce (p "2.0.0.0/24", a);
            Supercharger.Algorithm.Withdraw (p "3.0.0.0/24");
            Supercharger.Algorithm.Withdraw (p "4.0.0.0/24");
            Supercharger.Algorithm.Withdraw (p "5.0.0.0/24");
            Supercharger.Algorithm.Announce (p "6.0.0.0/24", attrs "10.0.0.3");
          ]
        in
        match Supercharger.Controller.updates_of_emissions emissions with
        | [u1; u2; u3] ->
          Alcotest.(check (list string)) "shared-attrs announcements packed"
            ["1.0.0.0/24"; "2.0.0.0/24"]
            (List.map Net.Prefix.to_string u1.Bgp.Message.nlri);
          Alcotest.(check (list string)) "withdrawal run packed"
            ["3.0.0.0/24"; "4.0.0.0/24"; "5.0.0.0/24"]
            (List.map Net.Prefix.to_string u2.Bgp.Message.withdrawn);
          Alcotest.(check bool) "withdrawal update has no attrs" true
            (u2.Bgp.Message.attrs = None && u2.Bgp.Message.nlri = []);
          Alcotest.(check (list string)) "different attrs break the run"
            ["6.0.0.0/24"]
            (List.map Net.Prefix.to_string u3.Bgp.Message.nlri)
        | us -> Alcotest.failf "expected 3 updates, got %d" (List.length us));
    Alcotest.test_case "a withdrawal storm reaches the router as one UPDATE" `Quick
      (fun () ->
        let rig = make_rig () in
        let prefixes = List.init 10 (fun i -> Fmt.str "7.0.%d.0/24" i) in
        announce rig 0 prefixes;
        announce rig 1 prefixes;
        (* Backup withdrawing first leaves each prefix single-homed; the
           primary's withdrawal then emits ten withdrawals in one batch,
           which must ride in a single UPDATE's withdrawn list. *)
        Router.Peer.announce_to_all rig.peers.(1)
          { Bgp.Message.withdrawn = List.map Net.Prefix.v prefixes;
            attrs = None; nlri = [] };
        settle rig;
        Router.Peer.announce_to_all rig.peers.(0)
          { Bgp.Message.withdrawn = List.map Net.Prefix.v prefixes;
            attrs = None; nlri = [] };
        settle rig;
        match !(rig.router_rx) with
        | { Bgp.Message.withdrawn; attrs = None; nlri = [] } :: _ ->
          Alcotest.(check int) "all ten in one message" 10 (List.length withdrawn)
        | _ -> Alcotest.fail "head of router_rx is not a pure withdrawal");
    Alcotest.test_case "group churn returns groups, rules and VNHs to baseline"
      `Quick (fun () ->
        let rig = make_rig ~n_peers:3 () in
        let groups = Supercharger.Controller.groups rig.controller in
        announce rig 0 ["1.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"];
        let baseline_groups = Supercharger.Backup_group.count groups in
        let baseline_rules =
          Openflow.Flow_table.size (Openflow.Switch.table rig.switch)
        in
        (* A prefix served by peers 0 and 2 creates a second group and
           installs its rule. *)
        announce rig 0 ["2.0.0.0/24"];
        announce rig 2 ["2.0.0.0/24"];
        Alcotest.(check int) "one more group"
          (baseline_groups + 1)
          (Supercharger.Backup_group.count groups);
        Alcotest.(check int) "one more rule" (baseline_rules + 1)
          (Openflow.Flow_table.size (Openflow.Switch.table rig.switch));
        let churn_vnh =
          match
            List.filter
              (fun (b : Supercharger.Backup_group.binding) ->
                Supercharger.Backup_group.refs b = 0
                || List.exists (Net.Ipv4.equal (ip "10.0.0.4")) b.next_hops)
              (Supercharger.Backup_group.all groups)
          with
          | [b] -> b.vnh
          | _ -> Alcotest.fail "expected exactly one (p0, p2) group"
        in
        (* Withdrawing peer 2's route leaves the prefix single-homed: the
           group goes idle and, after the linger, is destroyed, its rule
           uninstalled and its VNH/VMAC recycled. *)
        Router.Peer.announce_to_all rig.peers.(2)
          { Bgp.Message.withdrawn = [Net.Prefix.v "2.0.0.0/24"];
            attrs = None; nlri = [] };
        settle rig;
        Alcotest.(check int) "idle group still registered"
          (baseline_groups + 1)
          (Supercharger.Backup_group.count groups);
        run_for rig 6.0 (* > the 5s group_linger *);
        Alcotest.(check int) "group count back to baseline" baseline_groups
          (Supercharger.Backup_group.count groups);
        Alcotest.(check int) "rule count back to baseline" baseline_rules
          (Openflow.Flow_table.size (Openflow.Switch.table rig.switch));
        Alcotest.(check (option (float 1e-9))) "groups_live gauge agrees"
          (Some (float_of_int baseline_groups))
          (Obs.Metrics.find_gauge (Sim.Engine.metrics rig.engine)
             "controller.groups_live");
        (* Re-creating the same shape of group recycles the freed pair. *)
        announce rig 0 ["3.0.0.0/24"];
        announce rig 2 ["3.0.0.0/24"];
        let recreated =
          List.filter
            (fun (b : Supercharger.Backup_group.binding) ->
              List.exists (Net.Ipv4.equal (ip "10.0.0.4")) b.next_hops)
            (Supercharger.Backup_group.all groups)
        in
        match recreated with
        | [b] ->
          Alcotest.(check string) "vnh recycled" (Net.Ipv4.to_string churn_vnh)
            (Net.Ipv4.to_string b.vnh)
        | _ -> Alcotest.fail "expected the (p0, p2) group to be recreated");
    Alcotest.test_case "quiescent tracks in-flight convergence work" `Quick
      (fun () ->
        let rig = make_rig () in
        announce rig 0 ["1.0.0.0/24"];
        announce rig 1 ["1.0.0.0/24"];
        Alcotest.(check bool) "quiet at rest" true
          (Supercharger.Controller.quiescent rig.controller);
        (* Cut the primary: between BFD detection and the last barrier
           ack (and through the debounced slow-path withdrawal) the
           predicate must report work in flight. The busy window is
           wider than the 10 ms polling grid, so polling cannot miss
           it. *)
        Net.Link.set_up rig.peer_links.(0) false;
        let saw_busy = ref false in
        for _ = 1 to 100 do
          run_for rig 0.01;
          if not (Supercharger.Controller.quiescent rig.controller) then
            saw_busy := true
        done;
        Alcotest.(check bool) "busy during failover" true !saw_busy;
        settle rig;
        Alcotest.(check bool) "quiet again" true
          (Supercharger.Controller.quiescent rig.controller));
  ]

let suite = [("supercharger.controller", controller_tests)]
