(* Scenario harness for the fault-injection layer: seeded chaos on the
   BGP channels, the OpenFlow control path and BFD, with convergence
   invariants checked after every storm. Every scenario derives its
   fault schedule from [scenario_seed] (the FAULT_SEED environment
   variable when set), which is printed below so a failing run can be
   replayed bit-for-bit. *)

let ip = Net.Ipv4.of_string_exn

let scenario_seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

let () =
  Fmt.epr "[test_faults] FAULT_SEED=%Ld (export FAULT_SEED to replay)@."
    scenario_seed

(* --- injector unit tests ----------------------------------------------- *)

let plans n injector = List.init n (fun _ -> Sim.Faults.plan injector)

let verdict_fingerprint verdicts =
  Fmt.str "%a"
    Fmt.(
      list ~sep:(any ";") (fun ppf -> function
        | Sim.Faults.Drop -> Fmt.string ppf "D"
        | Sim.Faults.Deliver extras ->
          Fmt.pf ppf "d%a" (list ~sep:(any ",") (fun ppf e -> Fmt.pf ppf "%Ld" (Sim.Time.to_ns e))) extras))
    verdicts

let injector_tests =
  [
    Alcotest.test_case "same seed draws the same fault schedule" `Quick (fun () ->
        let mk () =
          Sim.Faults.create (Sim.Engine.create ()) ~seed:7L Sim.Faults.chaos
        in
        let a = mk () and b = mk () in
        Alcotest.(check string) "verdicts identical"
          (verdict_fingerprint (plans 300 a))
          (verdict_fingerprint (plans 300 b));
        Alcotest.(check (list int)) "counters identical"
          [ Sim.Faults.decisions a; Sim.Faults.dropped a; Sim.Faults.delayed a;
            Sim.Faults.duplicated a ]
          [ Sim.Faults.decisions b; Sim.Faults.dropped b; Sim.Faults.delayed b;
            Sim.Faults.duplicated b ];
        Alcotest.(check bool) "chaos actually dropped something" true
          (Sim.Faults.dropped a > 0));
    Alcotest.test_case "named profiles resolve, junk does not" `Quick (fun () ->
        List.iter
          (fun name ->
            match Sim.Faults.of_name name with
            | Some p -> Alcotest.(check string) "label" name p.Sim.Faults.label
            | None -> Alcotest.failf "profile %s not found" name)
          ["none"; "lossy"; "chaos"; "blackout"];
        Alcotest.(check bool) "unknown name" true
          (Sim.Faults.of_name "cosmic-rays" = None));
    Alcotest.test_case "invalid probabilities are rejected" `Quick (fun () ->
        let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "drop > 1" true
          (invalid (fun () -> Sim.Faults.profile ~drop:1.5 "bad"));
        Alcotest.(check bool) "negative duplicate" true
          (invalid (fun () -> Sim.Faults.profile ~duplicate:(-0.1) "bad"));
        Alcotest.(check bool) "inverted delay bounds" true
          (invalid (fun () ->
               Sim.Faults.profile ~delay_min:(Sim.Time.of_ms 2)
                 ~delay_max:(Sim.Time.of_ms 1) "bad")));
    Alcotest.test_case "during opens a window and restores the profile" `Quick
      (fun () ->
        let engine = Sim.Engine.create () in
        let injector = Sim.Faults.create engine ~seed:1L Sim.Faults.none in
        Sim.Faults.during injector ~from:(Sim.Time.of_ms 10)
          ~until:(Sim.Time.of_ms 20) Sim.Faults.blackout;
        Sim.Engine.run ~until:(Sim.Time.of_ms 5) engine;
        Alcotest.(check string) "before" "none"
          (Sim.Faults.active injector).Sim.Faults.label;
        Alcotest.(check bool) "delivers before" true
          (Sim.Faults.plan injector <> Sim.Faults.Drop);
        Sim.Engine.run ~until:(Sim.Time.of_ms 12) engine;
        Alcotest.(check string) "inside" "blackout"
          (Sim.Faults.active injector).Sim.Faults.label;
        Alcotest.(check bool) "drops inside" true
          (Sim.Faults.plan injector = Sim.Faults.Drop);
        Sim.Engine.run ~until:(Sim.Time.of_ms 25) engine;
        Alcotest.(check string) "restored" "none"
          (Sim.Faults.active injector).Sim.Faults.label;
        Alcotest.(check bool) "delivers after" true
          (Sim.Faults.plan injector <> Sim.Faults.Drop));
    Alcotest.test_case "a blacked-out channel delivers nothing" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let ch = Bgp.Channel.create engine () in
        let got = ref 0 in
        Bgp.Channel.attach ch Bgp.Channel.B (fun _ -> incr got);
        let injector = Sim.Faults.create engine ~seed:3L Sim.Faults.blackout in
        Bgp.Channel.set_faults ch injector;
        for _ = 1 to 10 do Bgp.Channel.send ch Bgp.Channel.A Bgp.Message.Keepalive done;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;
        Alcotest.(check int) "all dropped" 0 !got;
        Alcotest.(check int) "all counted" 10 (Sim.Faults.dropped injector);
        Sim.Faults.set_profile injector Sim.Faults.none;
        Bgp.Channel.send ch Bgp.Channel.A Bgp.Message.Keepalive;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) engine;
        Alcotest.(check int) "healthy again" 1 !got);
    Alcotest.test_case "duplicates deliver two copies" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let ch = Bgp.Channel.create engine () in
        let got = ref 0 in
        Bgp.Channel.attach ch Bgp.Channel.B (fun _ -> incr got);
        let injector =
          Sim.Faults.create engine ~seed:4L
            (Sim.Faults.profile ~duplicate:1.0 "dup-everything")
        in
        Bgp.Channel.set_faults ch injector;
        Bgp.Channel.send ch Bgp.Channel.A Bgp.Message.Keepalive;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;
        Alcotest.(check int) "two copies" 2 !got;
        Alcotest.(check int) "counted" 1 (Sim.Faults.duplicated injector));
    Alcotest.test_case "an extra delay reorders messages" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let ch = Bgp.Channel.create engine () in
        let order = ref [] in
        Bgp.Channel.attach ch Bgp.Channel.B (fun msg ->
            match msg with
            | Bgp.Message.Update { nlri = [p]; _ } ->
              order := Net.Prefix.to_string p :: !order
            | _ -> ());
        let slow =
          Sim.Faults.profile ~delay_prob:1.0 ~delay_min:(Sim.Time.of_ms 5)
            ~delay_max:(Sim.Time.of_ms 5) "slow"
        in
        let injector = Sim.Faults.create engine ~seed:5L slow in
        Bgp.Channel.set_faults ch injector;
        let update p =
          Bgp.Message.Update
            { withdrawn = []; attrs = None; nlri = [Net.Prefix.v p] }
        in
        Bgp.Channel.send ch Bgp.Channel.A (update "1.0.0.0/24");
        Sim.Faults.set_profile injector Sim.Faults.none;
        Bgp.Channel.send ch Bgp.Channel.A (update "2.0.0.0/24");
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;
        Alcotest.(check (list string)) "undelayed message overtook"
          ["1.0.0.0/24"; "2.0.0.0/24"] (* newest first *)
          !order);
  ]

(* --- the scenario rig --------------------------------------------------- *)

(* A supercharged rig like test_controller's, but with a fault injector
   on every message path: one per upstream BGP channel, one on the
   controller->router channel and one on the OpenFlow control path. All
   injectors start on the [none] profile; scenarios open windows with
   [Sim.Faults.during]. *)
type rig = {
  engine : Sim.Engine.t;
  switch : Openflow.Switch.t;
  controller : Supercharger.Controller.t;
  peers : Router.Peer.t array;
  peer_links : Net.Link.t array;
  channel_faults : Sim.Faults.t array;
  router_faults : Sim.Faults.t;
  of_faults : Sim.Faults.t;
  router_rx : Bgp.Message.update list ref;  (** newest first *)
}

let make_rig ?(seed = 9L) ?(n_peers = 2) ?(bfd_debounce = Sim.Time.of_ms 100)
    ?(ack_timeout = Sim.Time.of_ms 100) ?(ack_max_retries = 3)
    ?(probe_interval = Sim.Time.of_ms 250) () =
  let engine = Sim.Engine.create ~seed () in
  let injector name salt profile =
    Sim.Faults.create engine ~name ~seed:(Int64.add seed (Int64.of_int salt))
      profile
  in
  let switch = Openflow.Switch.create engine ~n_ports:(2 + n_peers) () in
  let controller =
    Supercharger.Controller.create engine ~name:"c1" ~asn:(Bgp.Asn.of_int 65001)
      ~router_id:(ip "10.0.0.100") ~bfd_debounce ~ack_timeout ~ack_max_retries
      ~probe_interval ()
  in
  let of_faults = injector "of" 7777 Sim.Faults.none in
  Supercharger.Controller.connect_switch ~use_codec:true ~faults:of_faults
    controller switch;
  let nic =
    Router.Endhost.create engine ~name:"c1-nic"
      ~mac:(Net.Mac.of_string_exn "00:cc:00:00:00:01") ~ip:(ip "10.0.0.100") ()
  in
  let link_c = Net.Link.create engine () in
  Router.Endhost.connect nic link_c Net.Link.A;
  Openflow.Switch.attach_link switch ~port:(1 + n_peers) link_c Net.Link.B;
  Openflow.Flow_table.apply (Openflow.Switch.table switch)
    (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
       (Openflow.Ofmatch.dl_dst (Net.Mac.of_string_exn "00:cc:00:00:00:01"))
       [Openflow.Action.Output (1 + n_peers)]);
  Supercharger.Controller.attach_dataplane controller nic;
  let peers =
    Array.init n_peers (fun i ->
        Router.Peer.create engine
          ~name:(Fmt.str "r%d" (2 + i))
          ~asn:(Bgp.Asn.of_int (65002 + i))
          ~mac:(Net.Mac.of_int64 (Int64.of_int (0xBB_0000_0000 + 2 + i)))
          ~ip:(ip (Fmt.str "10.0.0.%d" (2 + i)))
          ())
  in
  let channel_faults = Array.make n_peers (injector "ch-unused" 0 Sim.Faults.none) in
  let peer_links =
    Array.mapi
      (fun i peer ->
        let link = Net.Link.create engine () in
        Router.Peer.connect peer link Net.Link.A;
        Openflow.Switch.attach_link switch ~port:(1 + i) link Net.Link.B;
        Openflow.Flow_table.apply (Openflow.Switch.table switch)
          (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst (Router.Peer.mac peer))
             [Openflow.Action.Output (1 + i)]);
        let ch = Bgp.Channel.create engine () in
        let inj = injector (Fmt.str "ch%d" i) (1000 * (i + 1)) Sim.Faults.none in
        Bgp.Channel.set_faults ch inj;
        channel_faults.(i) <- inj;
        ignore
          (Supercharger.Controller.add_upstream_peer controller
             ~name:(Router.Peer.name peer)
             ~ip:(Router.Peer.ip peer) ~mac:(Router.Peer.mac peer)
             ~switch_port:(1 + i) ~channel:ch ~side:Bgp.Channel.A
             ~import_local_pref:(200 - (10 * i))
             ());
        ignore
          (Router.Peer.add_bgp_peer peer ~name:"c1" ~channel:ch ~side:Bgp.Channel.B ());
        link)
      peers
  in
  let router_rx = ref [] in
  let ch_r1 = Bgp.Channel.create engine () in
  let router_faults = injector "router-ch" 8888 Sim.Faults.none in
  Bgp.Channel.set_faults ch_r1 router_faults;
  ignore
    (Supercharger.Controller.add_router controller ~name:"r1" ~channel:ch_r1
       ~side:Bgp.Channel.A ());
  Bgp.Channel.attach ch_r1 Bgp.Channel.B (fun msg ->
      match msg with
      | Bgp.Message.Open _ ->
        Bgp.Channel.send ch_r1 Bgp.Channel.B
          (Bgp.Message.Open
             { version = 4; asn = Bgp.Asn.of_int 65001; hold_time = 90;
               router_id = ip "10.0.0.1" });
        Bgp.Channel.send ch_r1 Bgp.Channel.B Bgp.Message.Keepalive
      | Bgp.Message.Update u -> router_rx := u :: !router_rx
      | Bgp.Message.Keepalive | Bgp.Message.Notification _ -> ());
  Supercharger.Controller.start controller;
  Array.iter (fun p -> Bgp.Speaker.start (Router.Peer.speaker p)) peers;
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;
  { engine; switch; controller; peers; peer_links; channel_faults;
    router_faults; of_faults; router_rx }

let announce rig peer_idx prefixes =
  let peer = rig.peers.(peer_idx) in
  let attrs =
    Bgp.Attributes.make
      ~as_path:[Bgp.Attributes.Seq [Router.Peer.asn peer]]
      ~next_hop:(Router.Peer.ip peer) ()
  in
  Router.Peer.announce_to_all peer
    { Bgp.Message.withdrawn = []; attrs = Some attrs;
      nlri = List.map Net.Prefix.v prefixes };
  Sim.Engine.run
    ~until:(Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_ms 100))
    rig.engine

let run_until rig s = Sim.Engine.run ~until:(Sim.Time.of_sec s) rig.engine

let at rig s f = ignore (Sim.Engine.schedule_at rig.engine (Sim.Time.of_sec s) f)

let inject_flap rig peer_idx =
  match
    Supercharger.Controller.bfd_session rig.controller
      (Router.Peer.ip rig.peers.(peer_idx))
  with
  | Some session -> Bfd.Session.inject_state session Bfd.Packet.Down
  | None -> Alcotest.fail "no BFD session towards the peer"

let counter rig name =
  Option.value ~default:0
    (Obs.Metrics.find_counter (Sim.Engine.metrics rig.engine) name)

(* --- convergence invariants -------------------------------------------- *)

let distinct_nhs routes =
  List.fold_left
    (fun acc r ->
      let nh = Bgp.Route.next_hop r in
      if List.exists (Net.Ipv4.equal nh) acc then acc else acc @ [nh])
    [] routes

(* Invariant: no lost prefixes. Every prefix with candidates in the
   controller's RIB is announced downstream with exactly the next hop
   Listing 1 (or the degraded passthrough) would pick — nothing dropped,
   nothing stale, regardless of what the fault schedule ate. *)
let check_no_lost_prefixes rig =
  let rib = Supercharger.Controller.rib rig.controller in
  let algo = Supercharger.Controller.algorithm rig.controller in
  let groups = Supercharger.Controller.groups rig.controller in
  let live_prefixes =
    Bgp.Rib.fold rib ~init:[] ~f:(fun acc prefix routes ->
        if routes = [] then acc else prefix :: acc)
  in
  List.iter
    (fun prefix ->
      let routes = Bgp.Rib.ordered rib prefix in
      let expected =
        match routes with
        | [] -> None
        | best :: _ -> (
          match distinct_nhs routes with
          | [] | [_] -> Some (Bgp.Route.next_hop best)
          | nhs ->
            if Supercharger.Algorithm.passthrough algo then
              Some (Bgp.Route.next_hop best)
            else (
              match Supercharger.Backup_group.find groups nhs with
              | Some b -> Some b.Supercharger.Backup_group.vnh
              | None -> None))
      in
      let got =
        Option.map
          (fun (a : Bgp.Attributes.t) -> a.Bgp.Attributes.next_hop)
          (Supercharger.Algorithm.last_announced algo prefix)
      in
      Alcotest.(check bool)
        (Fmt.str "%a announced with %a (got %a)" Net.Prefix.pp prefix
           Fmt.(option ~none:(any "-") Net.Ipv4.pp)
           expected
           Fmt.(option ~none:(any "-") Net.Ipv4.pp)
           got)
        true
        (Option.equal Net.Ipv4.equal expected got))
    live_prefixes;
  Alcotest.(check int) "every live prefix is announced"
    (List.length live_prefixes)
    (Supercharger.Algorithm.announced_count algo)

(* Invariant: no stale VMAC rules. Every group still referenced by an
   announced prefix has a switch rule on its VMAC pointing at the first
   alive member (or a drop rule when nothing is alive). *)
let check_no_stale_rules rig =
  let groups = Supercharger.Controller.groups rig.controller in
  let prov = Supercharger.Controller.provisioner rig.controller in
  let table = Openflow.Switch.table rig.switch in
  List.iter
    (fun (b : Supercharger.Backup_group.binding) ->
      if Supercharger.Backup_group.refs b > 0 then begin
        let entry =
          List.find_opt
            (fun (e : Openflow.Flow_table.entry) ->
              Option.equal Net.Mac.equal e.ofmatch.Openflow.Ofmatch.dl_dst
                (Some b.vmac))
            (Openflow.Flow_table.entries table)
        in
        match entry with
        | None ->
          Alcotest.failf "live group %a has no switch rule"
            Supercharger.Backup_group.pp_binding b
        | Some e -> (
          match List.find_opt (Supercharger.Provisioner.is_alive prov) b.next_hops with
          | None ->
            Alcotest.(check bool)
              (Fmt.str "group %a (all members dead) has a drop rule"
                 Supercharger.Backup_group.pp_binding b)
              true (e.actions = [])
          | Some alive -> (
            match Supercharger.Provisioner.peer prov alive, e.actions with
            | Some info, [Openflow.Action.Set_dl_dst m; Openflow.Action.Output p] ->
              Alcotest.(check bool)
                (Fmt.str "rule of %a points at live member %a"
                   Supercharger.Backup_group.pp_binding b Net.Ipv4.pp alive)
                true
                (Net.Mac.equal m info.Supercharger.Provisioner.pi_mac
                && p = info.Supercharger.Provisioner.pi_port)
            | _, actions ->
              Alcotest.failf "unexpected actions (%d) on rule of %a"
                (List.length actions) Supercharger.Backup_group.pp_binding b))
      end)
    (Supercharger.Backup_group.all groups)

(* --- scenario: 10% message loss + a BFD flap storm ---------------------- *)

(* Four peers, ten prefixes per peer pair: six backup-groups. Kill peer
   0 for real inside a lossy window while peer 3's BFD flaps three
   times. The debounce must absorb every flap (no RIB churn), and the
   final state must satisfy both invariants with at most twice the
   fault-free flow-mod count. *)
let pair_prefixes i j = List.init 10 (fun k -> Fmt.str "%d.%d.%d.0/24" (100 + i) j k)

let lossy_scenario ~seed ~faulty () =
  let rig =
    make_rig ~seed ~n_peers:4 ~bfd_debounce:(Sim.Time.of_ms 400) ()
  in
  (* Each peer announces the batches of every pair it belongs to; the
     import LOCAL_PREF ladder (200, 190, 180, 170) fixes the group
     tuples to (p_i, p_j) with i < j. *)
  for i = 0 to 3 do
    let mine =
      List.concat
        (List.filter_map
           (fun (a, b) ->
             if a = i || b = i then Some (pair_prefixes a b) else None)
           [(0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3)])
    in
    announce rig i mine
  done;
  (* Background churn: peer 1 flaps a single-homed prefix through the
     whole scenario, so the lossy window has a steady message stream to
     chew on (keepalives alone are 30 s apart). The prefix never forms a
     group, so the churn adds no flow-mods to either run. *)
  let churn_attrs =
    Bgp.Attributes.make
      ~as_path:[Bgp.Attributes.Seq [Router.Peer.asn rig.peers.(1)]]
      ~next_hop:(Router.Peer.ip rig.peers.(1)) ()
  in
  for k = 0 to 43 do
    at rig (1.8 +. (0.05 *. float_of_int k)) (fun () ->
        let u =
          if k mod 2 = 0 then
            { Bgp.Message.withdrawn = []; attrs = Some churn_attrs;
              nlri = [Net.Prefix.v "77.7.7.0/24"] }
          else
            { Bgp.Message.withdrawn = [Net.Prefix.v "77.7.7.0/24"];
              attrs = None; nlri = [] }
        in
        Router.Peer.announce_to_all rig.peers.(1) u)
  done;
  if faulty then begin
    (* Loss starts only after the topology is announced: BGP has no
       retransmission, so a dropped announcement would change the
       scenario rather than stress it. *)
    Array.iter
      (fun inj ->
        Sim.Faults.during inj ~from:(Sim.Time.of_sec 1.5)
          ~until:(Sim.Time.of_sec 4.5) Sim.Faults.lossy)
      rig.channel_faults;
    Sim.Faults.during rig.router_faults ~from:(Sim.Time.of_sec 1.5)
      ~until:(Sim.Time.of_sec 4.5) Sim.Faults.lossy;
    at rig 2.3 (fun () -> inject_flap rig 3);
    at rig 2.7 (fun () -> inject_flap rig 3);
    at rig 3.1 (fun () -> inject_flap rig 3)
  end;
  run_until rig 1.6;
  Net.Link.set_up rig.peer_links.(0) false;
  run_until rig 6.0;
  rig

let scenario_fingerprint rig =
  let injector inj =
    Fmt.str "%d/%d/%d/%d" (Sim.Faults.decisions inj) (Sim.Faults.dropped inj)
      (Sim.Faults.delayed inj) (Sim.Faults.duplicated inj)
  in
  Fmt.str "ch=[%s] router=%s of=%s flow_mods=%d failovers=%d announced=%d \
           ack_timeouts=%d retries=%d suppressed=%d degradations=%d recoveries=%d"
    (String.concat ";" (Array.to_list (Array.map injector rig.channel_faults)))
    (injector rig.router_faults) (injector rig.of_faults)
    (Supercharger.Provisioner.flow_mods_sent
       (Supercharger.Controller.provisioner rig.controller))
    (Supercharger.Controller.failovers_handled rig.controller)
    (Supercharger.Algorithm.announced_count
       (Supercharger.Controller.algorithm rig.controller))
    (counter rig "controller.ack_timeouts")
    (counter rig "controller.rule_retries")
    (counter rig "controller.bfd_flaps_suppressed")
    (counter rig "controller.degradations")
    (counter rig "controller.recoveries")

let scenario_tests =
  [
    Alcotest.test_case "lossy window + flap storm: invariants hold" `Quick
      (fun () ->
        Fmt.epr "[test_faults] lossy scenario seed %Ld@." scenario_seed;
        let baseline = lossy_scenario ~seed:scenario_seed ~faulty:false () in
        let rig = lossy_scenario ~seed:scenario_seed ~faulty:true () in
        check_no_lost_prefixes rig;
        check_no_stale_rules rig;
        (* The debounce absorbed every spurious flap: peer 3's routes
           never left the RIB and no degradation was triggered. *)
        Alcotest.(check int) "three flaps suppressed" 3
          (counter rig "controller.bfd_flaps_suppressed");
        Alcotest.(check int) "no degradation" 0
          (counter rig "controller.degradations");
        Alcotest.(check bool) "supercharged mode" false
          (Supercharger.Controller.degraded rig.controller);
        (match
           Bgp.Rib.ordered
             (Supercharger.Controller.rib rig.controller)
             (Net.Prefix.v (List.hd (pair_prefixes 1 3)))
         with
        | [_; _] -> ()
        | routes ->
          Alcotest.failf "flapped peer lost routes: %d left" (List.length routes));
        (* Bounded churn: the storm may at most double the rule updates
           of the fault-free failover. *)
        let mods r =
          Supercharger.Provisioner.flow_mods_sent
            (Supercharger.Controller.provisioner r.controller)
        in
        Alcotest.(check bool)
          (Fmt.str "%d faulty <= 2 x %d fault-free" (mods rig) (mods baseline))
          true
          (mods rig <= 2 * mods baseline);
        (* The window saw real traffic and the injectors chewed on it:
           44 churn messages at 10% drop / 20% delay leave the odds of a
           completely clean pass below 1e-6 for any seed. *)
        Alcotest.(check bool) "churn crossed the lossy channel" true
          (Sim.Faults.decisions rig.channel_faults.(1) >= 40);
        let injected =
          Array.fold_left
            (fun acc inj -> acc + Sim.Faults.dropped inj + Sim.Faults.delayed inj)
            (Sim.Faults.dropped rig.router_faults
            + Sim.Faults.delayed rig.router_faults)
            rig.channel_faults
        in
        Alcotest.(check bool) "faults actually fired" true (injected > 0));
    Alcotest.test_case "same seed replays the identical scenario" `Quick
      (fun () ->
        let a = lossy_scenario ~seed:scenario_seed ~faulty:true () in
        let b = lossy_scenario ~seed:scenario_seed ~faulty:true () in
        Alcotest.(check string) "fingerprints equal" (scenario_fingerprint a)
          (scenario_fingerprint b));
    Alcotest.test_case "switch blackout degrades, recovery re-supercharges"
      `Quick (fun () ->
        Fmt.epr "[test_faults] blackout scenario seed %Ld@." scenario_seed;
        (* A long debounce keeps the RIB multi-homed through the whole
           blackout, so the degradation's passthrough announcements are
           observable as real-next-hop re-announcements. *)
        let rig =
          make_rig ~seed:scenario_seed ~ack_timeout:(Sim.Time.of_ms 50)
            ~probe_interval:(Sim.Time.of_ms 100)
            ~bfd_debounce:(Sim.Time.of_sec 2.0) ()
        in
        let prefixes = List.init 20 (fun i -> Fmt.str "9.9.%d.0/24" i) in
        announce rig 0 prefixes;
        announce rig 1 prefixes;
        Sim.Faults.during rig.of_faults ~from:(Sim.Time.of_sec 1.3)
          ~until:(Sim.Time.of_sec 2.5) Sim.Faults.blackout;
        run_until rig 1.4;
        Net.Link.set_up rig.peer_links.(0) false;
        (* BFD detects ~1.55s; the ladder burns its three attempts
           against the black hole and degrades around 1.9s. *)
        run_until rig 2.2;
        Alcotest.(check bool) "degraded during blackout" true
          (Supercharger.Controller.degraded rig.controller);
        Alcotest.(check int) "one degradation" 1
          (counter rig "controller.degradations");
        Alcotest.(check bool) "ladder retried before giving up" true
          (counter rig "controller.rule_retries" >= 2);
        (* Passthrough: the router now sees real next hops, not VNHs. *)
        (match !(rig.router_rx) with
        | { Bgp.Message.attrs = Some attrs; _ } :: _ ->
          Alcotest.(check bool) "legacy-path announcement" true
            (Supercharger.Backup_group.find_by_vnh
               (Supercharger.Controller.groups rig.controller)
               attrs.Bgp.Attributes.next_hop
            = None)
        | _ -> Alcotest.fail "no passthrough announcement reached the router");
        (* The window closes at 2.5s: the next probe is answered, rules
           are re-installed and the VNHs re-announced. *)
        run_until rig 3.0;
        Alcotest.(check bool) "recovered" false
          (Supercharger.Controller.degraded rig.controller);
        Alcotest.(check int) "one recovery" 1
          (counter rig "controller.recoveries");
        (match !(rig.router_rx) with
        | { Bgp.Message.attrs = Some attrs; _ } :: _ ->
          Alcotest.(check bool) "supercharged announcement is back" true
            (Supercharger.Backup_group.find_by_vnh
               (Supercharger.Controller.groups rig.controller)
               attrs.Bgp.Attributes.next_hop
            <> None)
        | _ -> Alcotest.fail "no recovery announcement reached the router");
        check_no_stale_rules rig;
        (* Let the debounced slow path run and settle everything. *)
        run_until rig 4.5;
        check_no_lost_prefixes rig;
        check_no_stale_rules rig);
  ]

(* --- e2e paper replication: Listing 2 at 10k prefixes ------------------- *)

let e2e_tests =
  [
    Alcotest.test_case "10k prefixes: failover cost is #groups, not #prefixes"
      `Slow (fun () ->
        let rig = make_rig ~seed:scenario_seed ~n_peers:3 () in
        (* 10,000 prefixes: 9,000 homed on (p0, p1), 1,000 on (p0, p2) —
           two backup-groups in total. *)
        let prefix i = Fmt.str "%d.%d.%d.0/24" (30 + (i / 65536)) (i / 256 mod 256) (i mod 256) in
        let all = List.init 10_000 prefix in
        let first_9000 = List.filteri (fun i _ -> i < 9_000) all in
        let last_1000 = List.filteri (fun i _ -> i >= 9_000) all in
        announce rig 0 all;
        announce rig 1 first_9000;
        announce rig 2 last_1000;
        let algo = Supercharger.Controller.algorithm rig.controller in
        Alcotest.(check int) "all 10k announced" 10_000
          (Supercharger.Algorithm.announced_count algo);
        Alcotest.(check int) "only two backup-groups" 2
          (List.length
             (Supercharger.Backup_group.all
                (Supercharger.Controller.groups rig.controller)));
        let table_before =
          Openflow.Flow_table.size (Openflow.Switch.table rig.switch)
        in
        let applied_before = Openflow.Switch.flow_mods_applied rig.switch in
        let failover_mods = ref None in
        Supercharger.Controller.on_failover rig.controller
          (fun ~failed:_ ~flow_mods -> failover_mods := Some flow_mods);
        Net.Link.set_up rig.peer_links.(0) false;
        Sim.Engine.run
          ~until:(Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_sec 2.0))
          rig.engine;
        (* Listing 2's invariant: the data-plane repair re-points exactly
           the groups whose selected member failed — independent of the
           10,000 prefixes riding on them. *)
        (match !failover_mods with
        | Some n -> Alcotest.(check int) "flow-mods == #groups of the peer" 2 n
        | None -> Alcotest.fail "failover did not run");
        Alcotest.(check int) "switch applied exactly the group rewrites"
          (applied_before + 2)
          (Openflow.Switch.flow_mods_applied rig.switch);
        Alcotest.(check int) "zero per-prefix churn in the flow table"
          table_before
          (Openflow.Flow_table.size (Openflow.Switch.table rig.switch));
        (* The slow path withdrew peer 0's routes; every prefix survives
           on its remaining provider. *)
        Alcotest.(check int) "no lost prefixes at 10k" 10_000
          (Supercharger.Algorithm.announced_count algo);
        Alcotest.(check int) "one failover handled" 1
          (Supercharger.Controller.failovers_handled rig.controller);
        check_no_lost_prefixes rig;
        check_no_stale_rules rig);
  ]

let suite =
  [
    ("faults.injector", injector_tests);
    ("faults.scenarios", scenario_tests);
    ("faults.e2e", e2e_tests);
  ]
