(* Integration tests: statistics, the full Fig. 4 lab in both modes,
   dense/event-driven equivalence, and controller replication. *)

let stats_tests =
  [
    Alcotest.test_case "percentiles of a known distribution" `Quick (fun () ->
        let xs = [|1.0; 2.0; 3.0; 4.0; 5.0|] in
        Alcotest.(check (float 1e-9)) "p0" 1.0 (Experiments.Stats.percentile xs 0.0);
        Alcotest.(check (float 1e-9)) "p50" 3.0 (Experiments.Stats.percentile xs 50.0);
        Alcotest.(check (float 1e-9)) "p100" 5.0 (Experiments.Stats.percentile xs 100.0);
        Alcotest.(check (float 1e-9)) "p25" 2.0 (Experiments.Stats.percentile xs 25.0);
        Alcotest.(check (float 1e-9)) "p10 interpolates" 1.4
          (Experiments.Stats.percentile xs 10.0));
    Alcotest.test_case "does not sort the input in place" `Quick (fun () ->
        let xs = [|3.0; 1.0; 2.0|] in
        ignore (Experiments.Stats.percentile xs 50.0);
        Alcotest.(check (array (float 0.0))) "untouched" [|3.0; 1.0; 2.0|] xs);
    Alcotest.test_case "summary fields are consistent" `Quick (fun () ->
        let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
        let s = Experiments.Stats.summarize xs in
        Alcotest.(check int) "n" 100 s.Experiments.Stats.n;
        Alcotest.(check (float 1e-9)) "min" 1.0 s.Experiments.Stats.min;
        Alcotest.(check (float 1e-9)) "max" 100.0 s.Experiments.Stats.max;
        Alcotest.(check (float 1e-9)) "mean" 50.5 s.Experiments.Stats.mean;
        Alcotest.(check bool) "ordered" true
          (s.Experiments.Stats.min <= s.Experiments.Stats.p5
          && s.Experiments.Stats.p5 <= s.Experiments.Stats.q1
          && s.Experiments.Stats.q1 <= s.Experiments.Stats.median
          && s.Experiments.Stats.median <= s.Experiments.Stats.q3
          && s.Experiments.Stats.q3 <= s.Experiments.Stats.p95
          && s.Experiments.Stats.p95 <= s.Experiments.Stats.max));
    Alcotest.test_case "empty input rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Experiments.Stats.summarize [||]);
             false
           with Invalid_argument _ -> true));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"percentile stays within [min,max]" ~count:200
         QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0)) (0 -- 100))
         (fun (xs, p) ->
           let arr = Array.of_list xs in
           let v = Experiments.Stats.percentile arr (float_of_int p) in
           let mn = Array.fold_left min arr.(0) arr in
           let mx = Array.fold_left max arr.(0) arr in
           v >= mn -. 1e-9 && v <= mx +. 1e-9));
  ]

(* Small-scale lab runs keep the suite fast; the invariants do not
   depend on table size. *)
let small_params ?(mode = Experiments.Topology.Plain) ?(traffic = Experiments.Topology.Event_driven)
    ?(n_prefixes = 60) ?(flows = 8) ?(seed = 42L) () =
  let p = Experiments.Topology.default_params ~mode ~n_prefixes () in
  {
    p with
    Experiments.Topology.monitored_flows = flows;
    traffic;
    seed;
    (* A coarser grid keeps dense mode cheap. *)
    grid = Sim.Time.of_us 500;
  }

let convergence_list result =
  Array.to_list (Experiments.Topology.convergence_seconds result)

let lab_tests =
  [
    Alcotest.test_case "plain mode: all flows recover, linear tail" `Slow (fun () ->
        let result = Experiments.Topology.run (small_params ()) in
        let samples = convergence_list result in
        Alcotest.(check int) "all flows" 8 (List.length samples);
        List.iter
          (fun c ->
            (* Detection (>=80ms) + batch start (280ms) at least; and
               bounded by detection + batch + n x per-entry + slack. *)
            Alcotest.(check bool) (Fmt.str "lower bound (%.3f)" c) true (c > 0.30);
            Alcotest.(check bool) (Fmt.str "upper bound (%.3f)" c) true (c < 0.60))
          samples;
        Alcotest.(check int) "no backup groups in plain mode" 0
          result.Experiments.Topology.backup_groups);
    Alcotest.test_case "supercharged mode: constant fast convergence" `Slow (fun () ->
        let result =
          Experiments.Topology.run
            (small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 }) ())
        in
        let samples = convergence_list result in
        List.iter
          (fun c ->
            Alcotest.(check bool) (Fmt.str "fast (%.3f)" c) true (c < 0.16);
            Alcotest.(check bool) (Fmt.str "not instant (%.3f)" c) true (c > 0.05))
          samples;
        Alcotest.(check int) "single backup group" 1
          result.Experiments.Topology.backup_groups;
        (* Listing 2 rewrote exactly one rule at failover: total rule
           installs = 1 initial + 1 failover. *)
        Alcotest.(check int) "two flow mods total" 2
          result.Experiments.Topology.flow_mods_at_failover);
    Alcotest.test_case "supercharged beats plain at every size tested" `Slow
      (fun () ->
        let plain = Experiments.Topology.run (small_params ~n_prefixes:120 ()) in
        let super =
          Experiments.Topology.run
            (small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 })
               ~n_prefixes:120 ())
        in
        let max_of r = List.fold_left max 0.0 (convergence_list r) in
        Alcotest.(check bool) "super max < plain min" true
          (max_of super < List.fold_left min infinity (convergence_list plain)));
    Alcotest.test_case "supercharged convergence is size-independent" `Slow (fun () ->
        let at n =
          let r =
            Experiments.Topology.run
              (small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 })
                 ~n_prefixes:n ())
          in
          List.fold_left max 0.0 (convergence_list r)
        in
        let small = at 30 and large = at 300 in
        Alcotest.(check bool)
          (Fmt.str "within 15%% (%.3f vs %.3f)" small large)
          true
          (Float.abs (small -. large) /. large < 0.15));
    Alcotest.test_case "plain convergence grows with the table" `Slow (fun () ->
        let at n =
          let r = Experiments.Topology.run (small_params ~n_prefixes:n ()) in
          List.fold_left max 0.0 (convergence_list r)
        in
        let small = at 50 and large = at 400 in
        Alcotest.(check bool) (Fmt.str "monotone (%.3f < %.3f)" small large) true
          (small < large));
    Alcotest.test_case "dense and event-driven traffic agree" `Slow (fun () ->
        let run traffic =
          Experiments.Topology.run (small_params ~traffic ~n_prefixes:40 ~flows:5 ())
        in
        let dense = run Experiments.Topology.Dense in
        let event = run Experiments.Topology.Event_driven in
        List.iter2
          (fun d e ->
            (* Within one grid slot plus the path delay. *)
            Alcotest.(check bool) (Fmt.str "close (%.4f vs %.4f)" d e) true
              (Float.abs (d -. e) < 0.003))
          (convergence_list dense) (convergence_list event));
    Alcotest.test_case "two replicas compute identical state" `Slow (fun () ->
        let result =
          Experiments.Topology.run
            (small_params ~mode:(Experiments.Topology.Supercharged { replicas = 2 }) ())
        in
        (match result.Experiments.Topology.replica_digests with
        | [a; b] ->
          Alcotest.(check bool) "digests non-empty" true (String.length a > 0);
          Alcotest.(check string) "identical" a b
        | _ -> Alcotest.fail "expected two digests");
        (* Convergence unharmed by replication. *)
        List.iter
          (fun c -> Alcotest.(check bool) "fast" true (c < 0.16))
          (convergence_list result));
    Alcotest.test_case "backup failure leaves traffic unaffected" `Slow (fun () ->
        List.iter
          (fun mode ->
            let params = small_params ~mode ~n_prefixes:60 () in
            let params =
              { params with Experiments.Topology.failure = Experiments.Topology.Fail_backup }
            in
            let result = Experiments.Topology.run params in
            Array.iter
              (fun gaps ->
                Alcotest.(check int)
                  (Fmt.str "no outage (%a)" Experiments.Topology.pp_mode mode)
                  0 (List.length gaps))
              result.Experiments.Topology.outages)
          [Experiments.Topology.Plain; Experiments.Topology.Supercharged { replicas = 1 }]);
    Alcotest.test_case "five peers: still one fast failover" `Slow (fun () ->
        let params =
          small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 })
            ~n_prefixes:80 ()
        in
        let params = { params with Experiments.Topology.n_peers = 5 } in
        let result = Experiments.Topology.run params in
        List.iter
          (fun c -> Alcotest.(check bool) (Fmt.str "fast (%.3f)" c) true (c < 0.16))
          (convergence_list result);
        (* (p0, p1) before the failure, plus (p1, p2) once the slow path
           reconverges afterwards - never anything like n x (n-1). *)
        Alcotest.(check int) "two groups" 2 result.Experiments.Topology.backup_groups);
    Alcotest.test_case "double failure: group size 3 keeps both failovers fast" `Slow
      (fun () ->
        let run k =
          let params =
            small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 })
              ~n_prefixes:300 ()
          in
          let params =
            {
              params with
              Experiments.Topology.n_peers = 3;
              group_size = k;
              failure = Experiments.Topology.Fail_two (Sim.Time.of_ms 200);
            }
          in
          Experiments.Topology.run params
        in
        let second_worst result =
          Array.fold_left
            (fun acc gaps ->
              match gaps with [_; g] -> max acc (Sim.Time.to_sec g) | _ -> acc)
            0.0 result.Experiments.Topology.outages
        in
        let r2 = run 2 and r3 = run 3 in
        Array.iter
          (fun gaps -> Alcotest.(check int) "two outages" 2 (List.length gaps))
          r3.Experiments.Topology.outages;
        (* With groups of three the second failover is a single rule
           rewrite; with pairs it waits for the router's slow path. *)
        Alcotest.(check bool)
          (Fmt.str "k=3 fast (%.3f)" (second_worst r3))
          true
          (second_worst r3 < 0.20);
        Alcotest.(check bool)
          (Fmt.str "k=2 slow-path (%.3f > %.3f)" (second_worst r2) (second_worst r3))
          true
          (second_worst r2 > second_worst r3 +. 0.05));
    Alcotest.test_case "runs are bit-for-bit deterministic in the seed" `Slow
      (fun () ->
        (* The replication argument (S3) rests on determinism; assert it
           end-to-end: two separate engines, same params, identical
           measurements to the nanosecond. *)
        let params =
          small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 }) ()
        in
        let a = Experiments.Topology.run params in
        let b = Experiments.Topology.run params in
        Alcotest.(check (list (option int64))) "same convergence (ns)"
          (Array.to_list
             (Array.map (Option.map Sim.Time.to_ns) a.Experiments.Topology.convergence))
          (Array.to_list
             (Array.map (Option.map Sim.Time.to_ns) b.Experiments.Topology.convergence));
        Alcotest.(check int) "same events" a.Experiments.Topology.events
          b.Experiments.Topology.events;
        Alcotest.(check int) "same probes" a.Experiments.Topology.probes
          b.Experiments.Topology.probes;
        (* And a different seed gives a different detection phase. *)
        let c =
          Experiments.Topology.run { params with Experiments.Topology.seed = 43L }
        in
        Alcotest.(check bool) "different seed differs" true
          (a.Experiments.Topology.convergence <> c.Experiments.Topology.convergence));
    Alcotest.test_case "the lab's pcap capture is a readable trace" `Slow (fun () ->
        let path = Filename.temp_file "sc_lab" ".pcap" in
        let params = small_params ~n_prefixes:30 ~flows:4 () in
        let params = { params with Experiments.Topology.pcap = Some path } in
        ignore (Experiments.Topology.run params);
        (match Net.Pcap.read_file path with
        | Ok records ->
          Alcotest.(check bool)
            (Fmt.str "captured %d frames" (List.length records))
            true
            (List.length records > 100);
          (* Timestamps are monotone non-decreasing, as captured. *)
          let rec monotone = function
            | (t1, _) :: ((t2, _) :: _ as rest) ->
              Sim.Time.(t1 <= t2) && monotone rest
            | _ -> true
          in
          Alcotest.(check bool) "monotone timestamps" true (monotone records)
        | Error e -> Alcotest.failf "unreadable capture: %a" Net.Wire.pp_error e);
        Sys.remove path);
    Alcotest.test_case "full wire encoding changes nothing" `Slow (fun () ->
        (* The same supercharged run with every BGP byte going through
           the RFC 4271 codec in 512-byte TCP-like fragments must
           produce identical measurements. *)
        let base = small_params ~mode:(Experiments.Topology.Supercharged { replicas = 1 }) () in
        let plain_run = Experiments.Topology.run base in
        let wire_run =
          Experiments.Topology.run { base with Experiments.Topology.bgp_wire = true }
        in
        List.iter2
          (fun a b ->
            Alcotest.(check (float 0.002)) "same convergence" a b)
          (convergence_list plain_run) (convergence_list wire_run);
        Alcotest.(check int) "same groups"
          plain_run.Experiments.Topology.backup_groups
          wire_run.Experiments.Topology.backup_groups);
    Alcotest.test_case "probe volume stays tiny in event-driven mode" `Slow (fun () ->
        let result = Experiments.Topology.run (small_params ~n_prefixes:200 ()) in
        (* Brute force would need millions of packets; the monitor needs
           a few thousand at most. *)
        Alcotest.(check bool)
          (Fmt.str "probes=%d" result.Experiments.Topology.probes)
          true
          (result.Experiments.Topology.probes < 20_000));
  ]

let micro_tests =
  [
    Alcotest.test_case "micro benchmark processes the double feed" `Slow (fun () ->
        let r = Experiments.Micro.run ~count:2_000 () in
        Alcotest.(check int) "updates" 4_000 r.Experiments.Micro.updates;
        Alcotest.(check int) "one backup group" 1 r.Experiments.Micro.backup_groups;
        Alcotest.(check bool) "emissions cover the table" true
          (r.Experiments.Micro.emissions >= 2_000);
        Alcotest.(check bool) "p99 sane" true
          (r.Experiments.Micro.p99_us >= 0.0
          && r.Experiments.Micro.p99_us <= r.Experiments.Micro.max_us));
  ]

let fig5_tests =
  [
    Alcotest.test_case "tiny sweep has both modes per size" `Slow (fun () ->
        let rows =
          Experiments.Fig5.run ~sizes:[40; 80] ~repetitions:1 ~monitored_flows:5 ()
        in
        Alcotest.(check int) "four rows" 4 (List.length rows);
        List.iter
          (fun (row : Experiments.Fig5.row) ->
            Alcotest.(check int) "no losses" 0 row.unrecovered;
            Alcotest.(check bool) "positive" true (row.summary.Experiments.Stats.max > 0.0))
          rows;
        (* Supercharged max below plain min at each size. *)
        List.iter
          (fun size ->
            let find mode =
              List.find
                (fun (r : Experiments.Fig5.row) -> r.n_prefixes = size && r.mode = mode)
                rows
            in
            let plain = find Experiments.Topology.Plain in
            let super = find (Experiments.Topology.Supercharged { replicas = 1 }) in
            Alcotest.(check bool) "ordering" true
              (super.summary.Experiments.Stats.max < plain.summary.Experiments.Stats.min))
          [40; 80]);
  ]

let suite =
  [
    ("experiments.stats", stats_tests);
    ("experiments.lab", lab_tests);
    ("experiments.micro", micro_tests);
    ("experiments.fig5", fig5_tests);
  ]
