(* Tests for the simulation substrate: time, heap, engine, rng, trace. *)

let time_tests =
  let open Sim.Time in
  [
    Alcotest.test_case "unit conversions" `Quick (fun () ->
        Alcotest.(check int64) "us" 1_000L (to_ns (of_us 1));
        Alcotest.(check int64) "ms" 1_000_000L (to_ns (of_ms 1));
        Alcotest.(check int64) "sec" 1_500_000_000L (to_ns (of_sec 1.5));
        Alcotest.(check (float 1e-9)) "to_sec" 0.25 (to_sec (of_ms 250));
        Alcotest.(check (float 1e-9)) "to_ms" 2.5 (to_ms (of_us 2500)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        Alcotest.(check int64) "add" 3L (to_ns (add (of_ns 1L) (of_ns 2L)));
        Alcotest.(check int64) "sub negative" (-1L) (to_ns (sub (of_ns 1L) (of_ns 2L)));
        Alcotest.(check bool) "is_negative" true (is_negative (of_ns (-5L)));
        Alcotest.(check int64) "mul" 120L (to_ns (mul (of_ns 40L) 3));
        Alcotest.(check int64) "div" 40L (to_ns (div (of_ns 120L) 3)));
    Alcotest.test_case "comparisons and min/max" `Quick (fun () ->
        Alcotest.(check bool) "<" true (of_ns 1L < of_ns 2L);
        Alcotest.(check bool) ">=" true (of_ns 2L >= of_ns 2L);
        Alcotest.(check int64) "min" 1L (to_ns (min (of_ns 1L) (of_ns 2L)));
        Alcotest.(check int64) "max" 2L (to_ns (max (of_ns 1L) (of_ns 2L))));
    Alcotest.test_case "grid alignment" `Quick (fun () ->
        let grid = of_us 70 in
        Alcotest.(check int64) "next on multiple" 70_000L
          (to_ns (next_multiple ~grid (of_us 70)));
        Alcotest.(check int64) "next above" 140_000L
          (to_ns (next_multiple ~grid (of_ns 70_001L)));
        Alcotest.(check int64) "next from zero" 0L (to_ns (next_multiple ~grid zero));
        Alcotest.(check int64) "prev below" 70_000L
          (to_ns (prev_multiple ~grid (of_ns 139_999L)));
        Alcotest.(check int64) "prev on multiple" 140_000L
          (to_ns (prev_multiple ~grid (of_us 140))));
    Alcotest.test_case "pretty printing picks units" `Quick (fun () ->
        Alcotest.(check string) "ns" "999ns" (to_string (of_ns 999L));
        Alcotest.(check string) "us" "70.000us" (to_string (of_us 70));
        Alcotest.(check string) "ms" "2.000ms" (to_string (of_ms 2));
        Alcotest.(check string) "s" "1.500000s" (to_string (of_sec 1.5)));
  ]

let heap_tests =
  [
    Alcotest.test_case "pop order is sorted" `Quick (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare () in
        List.iter (Sim.Heap.push h) [5; 1; 4; 1; 3; 9; 2];
        let rec drain acc =
          match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        Alcotest.(check (list int)) "sorted" [1; 1; 2; 3; 4; 5; 9] (drain []));
    Alcotest.test_case "equal keys pop FIFO" `Quick (fun () ->
        let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) () in
        List.iter (Sim.Heap.push h) [(1, "a"); (0, "x"); (1, "b"); (1, "c")];
        let labels = ref [] in
        let rec drain () =
          match Sim.Heap.pop h with
          | Some (_, l) ->
            labels := l :: !labels;
            drain ()
          | None -> ()
        in
        drain ();
        Alcotest.(check (list string)) "fifo" ["x"; "a"; "b"; "c"] (List.rev !labels));
    Alcotest.test_case "size / peek / clear" `Quick (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare () in
        Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
        Sim.Heap.push h 3;
        Sim.Heap.push h 1;
        Alcotest.(check int) "size" 2 (Sim.Heap.size h);
        Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek h);
        Alcotest.(check int) "peek keeps" 2 (Sim.Heap.size h);
        Sim.Heap.clear h;
        Alcotest.(check (option int)) "cleared" None (Sim.Heap.pop h));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"heap drains like List.sort" ~count:200
         QCheck.(list int)
         (fun xs ->
           let h = Sim.Heap.create ~cmp:Int.compare () in
           List.iter (Sim.Heap.push h) xs;
           let rec drain acc =
             match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
           in
           drain [] = List.sort Int.compare xs));
    Alcotest.test_case "pop does not retain the popped element" `Quick (fun () ->
        (* Regression: pop used to leave the vacated cell at
           cells.(size) holding the element (and everything its closure
           captured) until some later push overwrote the slot. *)
        let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) () in
        let weak = Weak.create 2 in
        let populate =
          Sys.opaque_identity (fun () ->
              let first = Bytes.make 64 'x' and second = Bytes.make 64 'y' in
              Weak.set weak 0 (Some first);
              Weak.set weak 1 (Some second);
              Sim.Heap.push h (1, first);
              Sim.Heap.push h (2, second))
        in
        populate ();
        ignore (Sim.Heap.pop h);
        Gc.full_major ();
        Alcotest.(check bool) "popped value collected" false (Weak.check weak 0);
        Alcotest.(check bool) "remaining value alive" true (Weak.check weak 1);
        ignore (Sim.Heap.pop h);
        Gc.full_major ();
        Alcotest.(check bool) "drained heap pins nothing" false (Weak.check weak 1));
    Alcotest.test_case "array shrinks once occupancy drops below a quarter" `Quick
      (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare () in
        for i = 0 to 4095 do
          Sim.Heap.push h i
        done;
        let peak = Sim.Heap.capacity h in
        Alcotest.(check bool) "grew to hold the burst" true (peak >= 4096);
        for _ = 1 to 4090 do
          ignore (Sim.Heap.pop h)
        done;
        Alcotest.(check bool) "capacity released" true (Sim.Heap.capacity h < peak / 4);
        Alcotest.(check (option int)) "order survives shrinking" (Some 4090)
          (Sim.Heap.peek h);
        Alcotest.(check int) "six left" 6 (Sim.Heap.size h));
  ]

let engine_tests =
  [
    Alcotest.test_case "events run in time order" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        let at ms tag =
          ignore
            (Sim.Engine.schedule_at e (Sim.Time.of_ms ms) (fun () -> log := tag :: !log))
        in
        at 30 "c";
        at 10 "a";
        at 20 "b";
        Sim.Engine.run e;
        Alcotest.(check (list string)) "order" ["a"; "b"; "c"] (List.rev !log);
        Alcotest.(check int64) "clock at last event" 30_000_000L
          (Sim.Time.to_ns (Sim.Engine.now e)));
    Alcotest.test_case "same-instant events run FIFO" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        for i = 0 to 9 do
          ignore
            (Sim.Engine.schedule_at e (Sim.Time.of_ms 5) (fun () -> log := i :: !log))
        done;
        Sim.Engine.run e;
        Alcotest.(check (list int)) "fifo" [0; 1; 2; 3; 4; 5; 6; 7; 8; 9] (List.rev !log));
    Alcotest.test_case "cancel prevents execution" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref false in
        let h = Sim.Engine.schedule_after e (Sim.Time.of_ms 1) (fun () -> fired := true) in
        Sim.Engine.cancel h;
        Sim.Engine.run e;
        Alcotest.(check bool) "not fired" false !fired);
    Alcotest.test_case "schedule_after rejects negative delay" `Quick (fun () ->
        let e = Sim.Engine.create () in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
            ignore (Sim.Engine.schedule_after e (Sim.Time.of_ns (-1L)) (fun () -> ()))));
    Alcotest.test_case "run ~until stops at horizon and advances clock" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref 0 in
        ignore (Sim.Engine.schedule_at e (Sim.Time.of_ms 10) (fun () -> incr fired));
        ignore (Sim.Engine.schedule_at e (Sim.Time.of_ms 30) (fun () -> incr fired));
        Sim.Engine.run ~until:(Sim.Time.of_ms 20) e;
        Alcotest.(check int) "only first" 1 !fired;
        Alcotest.(check int64) "clock at horizon" 20_000_000L
          (Sim.Time.to_ns (Sim.Engine.now e));
        Sim.Engine.run e;
        Alcotest.(check int) "rest runs" 2 !fired);
    Alcotest.test_case "event at exactly the horizon runs" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref false in
        ignore (Sim.Engine.schedule_at e (Sim.Time.of_ms 20) (fun () -> fired := true));
        Sim.Engine.run ~until:(Sim.Time.of_ms 20) e;
        Alcotest.(check bool) "fired" true !fired);
    Alcotest.test_case "every ticks at interval until cancelled" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let ticks = ref 0 in
        let h = Sim.Engine.every e ~interval:(Sim.Time.of_ms 10) (fun () -> incr ticks) in
        Sim.Engine.run ~until:(Sim.Time.of_ms 55) e;
        Alcotest.(check int) "5 ticks" 5 !ticks;
        Sim.Engine.cancel h;
        Sim.Engine.run ~until:(Sim.Time.of_ms 200) e;
        Alcotest.(check int) "no more" 5 !ticks);
    Alcotest.test_case "cancelling a periodic task from inside its callback" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let ticks = ref 0 in
        let handle = ref None in
        let h =
          Sim.Engine.every e ~interval:(Sim.Time.of_ms 10) (fun () ->
              incr ticks;
              if !ticks = 3 then
                match !handle with Some h -> Sim.Engine.cancel h | None -> ())
        in
        handle := Some h;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check int) "stopped at 3" 3 !ticks);
    Alcotest.test_case "every with explicit start" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let times = ref [] in
        ignore
          (Sim.Engine.every e ~start:Sim.Time.zero ~interval:(Sim.Time.of_ms 40)
             (fun () -> times := Sim.Time.to_ns (Sim.Engine.now e) :: !times));
        Sim.Engine.run ~until:(Sim.Time.of_ms 100) e;
        Alcotest.(check (list int64)) "ticks at 0,40,80" [0L; 40_000_000L; 80_000_000L]
          (List.rev !times));
    Alcotest.test_case "max_events bounds work" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref 0 in
        for _ = 1 to 10 do
          ignore (Sim.Engine.schedule_after e (Sim.Time.of_ms 1) (fun () -> incr fired))
        done;
        Sim.Engine.run ~max_events:4 e;
        Alcotest.(check int) "budget" 4 !fired);
    Alcotest.test_case "scheduling from within events" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        ignore
          (Sim.Engine.schedule_at e (Sim.Time.of_ms 1) (fun () ->
               log := "outer" :: !log;
               ignore
                 (Sim.Engine.schedule_after e (Sim.Time.of_ms 1) (fun () ->
                      log := "inner" :: !log))));
        Sim.Engine.run e;
        Alcotest.(check (list string)) "nested" ["outer"; "inner"] (List.rev !log);
        Alcotest.(check int) "processed" 2 (Sim.Engine.events_processed e));
    Alcotest.test_case "pending counts live events" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let h = Sim.Engine.schedule_after e (Sim.Time.of_ms 1) (fun () -> ()) in
        ignore (Sim.Engine.schedule_after e (Sim.Time.of_ms 2) (fun () -> ()));
        Alcotest.(check int) "two pending" 2 (Sim.Engine.pending e);
        Sim.Engine.cancel h;
        Sim.Engine.run e;
        Alcotest.(check int) "drained" 0 (Sim.Engine.pending e));
  ]

let alignment_properties =
  [
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"next_multiple is the least multiple >= t" ~count:300
         QCheck.(pair (1 -- 100_000) (0 -- 10_000_000))
         (fun (grid_us, t_ns) ->
           let grid = Sim.Time.of_us grid_us in
           let t = Sim.Time.of_ns (Int64.of_int t_ns) in
           let m = Sim.Time.next_multiple ~grid t in
           let g = Sim.Time.to_ns grid and m_ns = Sim.Time.to_ns m in
           Sim.Time.(m >= t)
           && Int64.rem m_ns g = 0L
           && Sim.Time.(Sim.Time.sub m t < grid)));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"prev_multiple is the greatest multiple <= t" ~count:300
         QCheck.(pair (1 -- 100_000) (0 -- 10_000_000))
         (fun (grid_us, t_ns) ->
           let grid = Sim.Time.of_us grid_us in
           let t = Sim.Time.of_ns (Int64.of_int t_ns) in
           let m = Sim.Time.prev_multiple ~grid t in
           let g = Sim.Time.to_ns grid and m_ns = Sim.Time.to_ns m in
           Sim.Time.(m <= t)
           && Int64.rem m_ns g = 0L
           && Sim.Time.(Sim.Time.sub t m < grid)));
  ]

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:7L and b = Sim.Rng.create ~seed:7L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:1L and b = Sim.Rng.create ~seed:2L in
        Alcotest.(check bool) "differ" true (Sim.Rng.int64 a <> Sim.Rng.int64 b));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:3L in
        for _ = 1 to 1000 do
          let v = Sim.Rng.int r 10 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
        done);
    Alcotest.test_case "float respects bound" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:3L in
        for _ = 1 to 1000 do
          let v = Sim.Rng.float r 2.5 in
          Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
        done);
    Alcotest.test_case "split decouples streams" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:5L in
        let b = Sim.Rng.split a in
        (* Drawing from b must not perturb a's own continuation. *)
        let a' = Sim.Rng.copy a in
        let _ = Sim.Rng.int64 b in
        Alcotest.(check int64) "a unchanged" (Sim.Rng.int64 a') (Sim.Rng.int64 a));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:11L in
        let arr = Array.init 50 Fun.id in
        Sim.Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort Int.compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
  ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let trace_tests =
  [
    Alcotest.test_case "emission order and filtering" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.emit tr Sim.Time.zero ~category:"a" "one";
        Sim.Trace.emit tr (Sim.Time.of_ms 1) ~category:"b" "two";
        Sim.Trace.emit tr (Sim.Time.of_ms 2) ~category:"a" "three";
        Alcotest.(check int) "length" 3 (Sim.Trace.length tr);
        let cats = List.map (fun e -> e.Sim.Trace.message) (Sim.Trace.find tr ~category:"a") in
        Alcotest.(check (list string)) "find" ["one"; "three"] cats);
    Alcotest.test_case "disabled trace drops entries" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.set_enabled tr false;
        Sim.Trace.emit tr Sim.Time.zero ~category:"x" "dropped";
        Sim.Trace.emitf tr Sim.Time.zero ~category:"x" "also %d" 1;
        Alcotest.(check int) "empty" 0 (Sim.Trace.length tr));
    Alcotest.test_case "clear" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.emit tr Sim.Time.zero ~category:"x" "m";
        Sim.Trace.clear tr;
        Alcotest.(check int) "cleared" 0 (Sim.Trace.length tr));
    Alcotest.test_case "capacity_hint caps the ring, oldest entries drop" `Quick
      (fun () ->
        let tr = Sim.Trace.create ~capacity_hint:4 () in
        for i = 0 to 9 do
          Sim.Trace.emitf tr (Sim.Time.of_ms i) ~category:"x" "entry %d" i
        done;
        Alcotest.(check int) "retained" 4 (Sim.Trace.length tr);
        Alcotest.(check int) "total emitted" 10 (Sim.Trace.total tr);
        Alcotest.(check int) "dropped" 6 (Sim.Trace.dropped tr);
        Alcotest.(check (option int)) "capacity" (Some 4) (Sim.Trace.capacity tr);
        Alcotest.(check (list string)) "newest 4, insertion order"
          ["entry 6"; "entry 7"; "entry 8"; "entry 9"]
          (List.map (fun e -> e.Sim.Trace.message) (Sim.Trace.entries tr)));
    Alcotest.test_case "unbounded trace keeps everything in order" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        for i = 0 to 99 do
          Sim.Trace.emitf tr (Sim.Time.of_ms i) ~category:"x" "e%d" i
        done;
        Alcotest.(check int) "all kept" 100 (Sim.Trace.length tr);
        Alcotest.(check int) "no drops" 0 (Sim.Trace.dropped tr);
        Alcotest.(check string) "first" "e0"
          (List.hd (Sim.Trace.entries tr)).Sim.Trace.message);
    Alcotest.test_case "structured events carry typed fields" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.event tr Sim.Time.zero ~category:"bfd" "peer down"
          [Obs.Field.string "peer" "10.0.0.2"; Obs.Field.int "detect_ms" 120];
        let e = List.hd (Sim.Trace.entries tr) in
        Alcotest.(check int) "two fields" 2 (List.length e.Sim.Trace.fields);
        (match Obs.Field.find "detect_ms" e.Sim.Trace.fields with
        | Some (Obs.Field.Int 120) -> ()
        | _ -> Alcotest.fail "detect_ms field missing or wrong");
        let rendered = Fmt.str "%a" Sim.Trace.pp_entry e in
        Alcotest.(check bool) "fields rendered" true
          (contains_sub rendered "peer=10.0.0.2"));
    Alcotest.test_case "disabled emitf leaves str_formatter untouched" `Quick
      (fun () ->
        (* The old implementation routed the disabled branch through the
           shared [Format.str_formatter], corrupting any string being
           built there concurrently. *)
        let tr = Sim.Trace.create () in
        Sim.Trace.set_enabled tr false;
        Format.fprintf Format.str_formatter "untouched-";
        Sim.Trace.emitf tr Sim.Time.zero ~category:"x" "noise %d %s" 42 "z";
        Format.fprintf Format.str_formatter "suffix";
        Alcotest.(check string) "str_formatter intact" "untouched-suffix"
          (Format.flush_str_formatter ()));
  ]

let suite =
  [
    ("sim.time", time_tests);
    ("sim.heap", heap_tests);
    ("sim.engine", engine_tests);
    ("sim.alignment", alignment_properties);
    ("sim.rng", rng_tests);
    ("sim.trace", trace_tests);
  ]
