(* Aggregates every library's suite into one alcotest run. *)

let () =
  Alcotest.run "supercharged_router"
    (List.concat
       [
         Test_obs.suite;
         Test_sim.suite;
         Test_net.suite;
         Test_bgp.suite;
         Test_bfd.suite;
         Test_openflow.suite;
         Test_router.suite;
         Test_igp.suite;
         Test_topo.suite;
         Test_supercharger.suite;
         Test_controller.suite;
         Test_faults.suite;
         Test_trafficgen.suite;
         Test_workloads.suite;
         Test_experiments.suite;
         Test_core_units.suite;
         Test_codecs.suite;
         Test_check.suite;
         Test_ribscale.suite;
         Test_lint.suite;
       ])
