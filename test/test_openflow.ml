(* Tests for the OpenFlow substrate: match semantics, actions, flow
   table flow-mod semantics, and the switch model. *)

open Openflow

let mac = Net.Mac.of_string_exn
let ip = Net.Ipv4.of_string_exn
let pfx = Net.Prefix.v

let udp_frame ?(src = mac "00:aa:00:00:00:01") ?(dst = mac "00:bb:00:00:00:02")
    ?(nw_src = "10.0.0.1") ?(nw_dst = "1.2.3.4") ?(sport = 5001) ?(dport = 9000) () =
  Net.Ethernet.make ~src ~dst
    (Net.Ethernet.Ipv4
       (Net.Ipv4_packet.udp ~src:(ip nw_src) ~dst:(ip nw_dst) ~src_port:sport
          ~dst_port:dport "payload"))

let arp_request_frame =
  Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01") ~dst:Net.Mac.broadcast
    (Net.Ethernet.Arp
       (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01") ~sender_ip:(ip "10.0.0.1")
          ~target_ip:(ip "10.0.0.2")))

let ctx ?(port = 0) frame = { Ofmatch.arrival_port = port; frame }

let match_tests =
  [
    Alcotest.test_case "wildcard matches everything" `Quick (fun () ->
        Alcotest.(check bool) "udp" true (Ofmatch.matches Ofmatch.any (ctx (udp_frame ())));
        Alcotest.(check bool) "arp" true (Ofmatch.matches Ofmatch.any (ctx arp_request_frame)));
    Alcotest.test_case "dl_dst matches exactly" `Quick (fun () ->
        let m = Ofmatch.dl_dst (mac "00:bb:00:00:00:02") in
        Alcotest.(check bool) "hit" true (Ofmatch.matches m (ctx (udp_frame ())));
        Alcotest.(check bool) "miss" false
          (Ofmatch.matches m (ctx (udp_frame ~dst:(mac "00:bb:00:00:00:03") ()))));
    Alcotest.test_case "in_port constrains" `Quick (fun () ->
        let m = Ofmatch.make ~in_port:2 () in
        Alcotest.(check bool) "hit" true (Ofmatch.matches m (ctx ~port:2 (udp_frame ())));
        Alcotest.(check bool) "miss" false (Ofmatch.matches m (ctx ~port:1 (udp_frame ()))));
    Alcotest.test_case "nw_dst uses prefixes" `Quick (fun () ->
        let m = Ofmatch.make ~nw_dst:(pfx "1.2.0.0/16") () in
        Alcotest.(check bool) "hit" true (Ofmatch.matches m (ctx (udp_frame ())));
        Alcotest.(check bool) "miss" false
          (Ofmatch.matches m (ctx (udp_frame ~nw_dst:"1.3.0.1" ()))));
    Alcotest.test_case "transport ports" `Quick (fun () ->
        let m = Ofmatch.make ~nw_proto:17 ~tp_dst:9000 () in
        Alcotest.(check bool) "hit" true (Ofmatch.matches m (ctx (udp_frame ())));
        Alcotest.(check bool) "miss" false
          (Ofmatch.matches m (ctx (udp_frame ~dport:9001 ()))));
    Alcotest.test_case "ARP overlay: nw_proto is the opcode" `Quick (fun () ->
        let request_rule = Ofmatch.make ~dl_type:0x0806 ~nw_proto:1 () in
        Alcotest.(check bool) "request hits" true
          (Ofmatch.matches request_rule (ctx arp_request_frame));
        let reply =
          Net.Ethernet.make ~src:(mac "00:bb:00:00:00:02") ~dst:(mac "00:aa:00:00:00:01")
            (Net.Ethernet.Arp
               (Net.Arp.reply
                  (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
                     ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.0.0.2"))
                  ~sender_mac:(mac "00:bb:00:00:00:02")))
        in
        Alcotest.(check bool) "reply misses" false (Ofmatch.matches request_rule (ctx reply)));
    Alcotest.test_case "ARP overlay: nw_dst is the target address" `Quick (fun () ->
        let m = Ofmatch.make ~dl_type:0x0806 ~nw_dst:(pfx "10.0.0.2/32") () in
        Alcotest.(check bool) "hit" true (Ofmatch.matches m (ctx arp_request_frame)));
    Alcotest.test_case "nw fields on ARP-incompatible rule miss" `Quick (fun () ->
        let m = Ofmatch.make ~tp_dst:9000 () in
        Alcotest.(check bool) "arp misses tp rule" false
          (Ofmatch.matches m (ctx arp_request_frame)));
    Alcotest.test_case "dl_type discriminates" `Quick (fun () ->
        let m = Ofmatch.make ~dl_type:0x0800 () in
        Alcotest.(check bool) "ip hits" true (Ofmatch.matches m (ctx (udp_frame ())));
        Alcotest.(check bool) "arp misses" false (Ofmatch.matches m (ctx arp_request_frame)));
  ]

let action_tests =
  [
    Alcotest.test_case "rewrite then output" `Quick (fun () ->
        let result =
          Action.apply
            [Action.Set_dl_dst (mac "00:bb:00:00:00:03"); Action.Output 2]
            (udp_frame ())
        in
        Alcotest.(check bool) "rewritten" true
          (Net.Mac.equal result.Action.frame.Net.Ethernet.dst (mac "00:bb:00:00:00:03"));
        Alcotest.(check (list int)) "ports" [2] result.Action.ports);
    Alcotest.test_case "empty action list drops" `Quick (fun () ->
        let result = Action.apply [] (udp_frame ()) in
        Alcotest.(check (list int)) "no ports" [] result.Action.ports;
        Alcotest.(check bool) "no flood" false result.Action.flood;
        Alcotest.(check bool) "no punt" false result.Action.to_controller);
    Alcotest.test_case "multiple outputs preserve order" `Quick (fun () ->
        let result = Action.apply [Action.Output 3; Action.Output 1] (udp_frame ()) in
        Alcotest.(check (list int)) "ports" [3; 1] result.Action.ports);
    Alcotest.test_case "nw rewrites only touch IP packets" `Quick (fun () ->
        let result = Action.apply [Action.Set_nw_dst (ip "9.9.9.9")] arp_request_frame in
        Alcotest.(check bool) "arp untouched" true
          (Net.Ethernet.equal result.Action.frame arp_request_frame);
        let result' = Action.apply [Action.Set_nw_dst (ip "9.9.9.9")] (udp_frame ()) in
        match result'.Action.frame.Net.Ethernet.payload with
        | Net.Ethernet.Ipv4 p ->
          Alcotest.(check bool) "ip rewritten" true (Net.Ipv4.equal p.dst (ip "9.9.9.9"))
        | Net.Ethernet.Arp _ -> Alcotest.fail "payload type changed");
    Alcotest.test_case "flood and controller flags" `Quick (fun () ->
        let result = Action.apply [Action.Flood; Action.To_controller] (udp_frame ()) in
        Alcotest.(check bool) "flood" true result.Action.flood;
        Alcotest.(check bool) "punt" true result.Action.to_controller);
  ]

let subsumes_tests =
  [
    Alcotest.test_case "wildcard subsumes everything" `Quick (fun () ->
        Alcotest.(check bool) "any > dl_dst" true
          (Ofmatch.subsumes Ofmatch.any (Ofmatch.dl_dst (mac "00:bb:00:00:00:02")));
        Alcotest.(check bool) "dl_dst !> any" false
          (Ofmatch.subsumes (Ofmatch.dl_dst (mac "00:bb:00:00:00:02")) Ofmatch.any));
    Alcotest.test_case "prefix fields use coverage" `Quick (fun () ->
        let wide = Ofmatch.make ~nw_dst:(pfx "1.0.0.0/8") () in
        let narrow = Ofmatch.make ~nw_dst:(pfx "1.2.0.0/16") () in
        Alcotest.(check bool) "/8 > /16" true (Ofmatch.subsumes wide narrow);
        Alcotest.(check bool) "/16 !> /8" false (Ofmatch.subsumes narrow wide);
        Alcotest.(check bool) "reflexive" true (Ofmatch.subsumes wide wide));
    Alcotest.test_case "non-strict delete removes subsumed entries" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t
          (Flow_table.flow_mod ~priority:10 Flow_table.Add
             (Ofmatch.make ~nw_dst:(pfx "1.2.0.0/16") ())
             []);
        Flow_table.apply t
          (Flow_table.flow_mod ~priority:20 Flow_table.Add
             (Ofmatch.make ~nw_dst:(pfx "2.0.0.0/8") ())
             []);
        Flow_table.apply t
          (Flow_table.flow_mod Flow_table.Delete (Ofmatch.make ~nw_dst:(pfx "1.0.0.0/8") ()) []);
        Alcotest.(check int) "only the covered entry went" 1 (Flow_table.size t));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"subsumption implies matching containment" ~count:300
         QCheck.(pair (pair (0 -- 4) (0 -- 4)) (0 -- 4))
         (fun ((a_idx, b_idx), f_idx) ->
           let pool =
             [|
               Ofmatch.any;
               Ofmatch.dl_dst (mac "00:bb:00:00:00:02");
               Ofmatch.make ~dl_type:0x0800 ();
               Ofmatch.make ~dl_type:0x0800 ~nw_dst:(pfx "1.0.0.0/8") ();
               Ofmatch.make ~dl_type:0x0800 ~nw_dst:(pfx "1.2.0.0/16") ~nw_proto:17 ();
             |]
           in
           let frames =
             [|
               ctx (udp_frame ());
               ctx (udp_frame ~dst:(mac "00:bb:00:00:00:02") ());
               ctx arp_request_frame;
               ctx (udp_frame ~nw_dst:"1.2.3.4" ());
               ctx (udp_frame ~nw_dst:"1.9.0.1" ());
             |]
           in
           let a = pool.(a_idx) and b = pool.(b_idx) and f = frames.(f_idx) in
           (* If a subsumes b, then b matching f implies a matches f. *)
           (not (Ofmatch.subsumes a b))
           || (not (Ofmatch.matches b f))
           || Ofmatch.matches a f));
  ]

let fm ?(priority = 100) command m actions =
  Flow_table.flow_mod ~priority command m actions

let flow_table_tests =
  [
    Alcotest.test_case "higher priority wins" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t (fm ~priority:10 Flow_table.Add Ofmatch.any [Action.Output 1]);
        Flow_table.apply t
          (fm ~priority:100 Flow_table.Add
             (Ofmatch.dl_dst (mac "00:bb:00:00:00:02"))
             [Action.Output 2]);
        match Flow_table.lookup t (ctx (udp_frame ())) with
        | Some e -> Alcotest.(check int) "prio" 100 e.Flow_table.priority
        | None -> Alcotest.fail "no match");
    Alcotest.test_case "equal priority: first installed wins" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t (fm Flow_table.Add (Ofmatch.make ~dl_type:0x0800 ()) [Action.Output 1]);
        Flow_table.apply t (fm Flow_table.Add (Ofmatch.make ~nw_proto:17 ()) [Action.Output 2]);
        match Flow_table.lookup t (ctx (udp_frame ())) with
        | Some e -> Alcotest.(check (list int)) "first" [1]
            (List.filter_map (function Action.Output p -> Some p | _ -> None) e.Flow_table.actions)
        | None -> Alcotest.fail "no match");
    Alcotest.test_case "add replaces identical match+priority" `Quick (fun () ->
        let t = Flow_table.create () in
        let m = Ofmatch.dl_dst (mac "00:ff:00:00:00:01") in
        Flow_table.apply t (fm Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm Flow_table.Add m [Action.Output 2]);
        Alcotest.(check int) "one entry" 1 (Flow_table.size t);
        match Flow_table.lookup t (ctx (udp_frame ~dst:(mac "00:ff:00:00:00:01") ())) with
        | Some e ->
          Alcotest.(check bool) "new actions" true
            (List.exists (Action.equal (Action.Output 2)) e.Flow_table.actions)
        | None -> Alcotest.fail "no match");
    Alcotest.test_case "add with different priority coexists" `Quick (fun () ->
        let t = Flow_table.create () in
        let m = Ofmatch.dl_dst (mac "00:ff:00:00:00:01") in
        Flow_table.apply t (fm ~priority:10 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:20 Flow_table.Add m [Action.Output 2]);
        Alcotest.(check int) "two entries" 2 (Flow_table.size t));
    Alcotest.test_case "modify updates all matching entries" `Quick (fun () ->
        let t = Flow_table.create () in
        let m = Ofmatch.dl_dst (mac "00:ff:00:00:00:01") in
        Flow_table.apply t (fm ~priority:10 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:20 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:99 Flow_table.Modify m [Action.Output 5]);
        List.iter
          (fun e ->
            Alcotest.(check bool) "updated" true
              (List.exists (Action.equal (Action.Output 5)) e.Flow_table.actions))
          (Flow_table.entries t);
        Alcotest.(check int) "still two" 2 (Flow_table.size t));
    Alcotest.test_case "modify_strict updates only exact priority" `Quick (fun () ->
        let t = Flow_table.create () in
        let m = Ofmatch.dl_dst (mac "00:ff:00:00:00:01") in
        Flow_table.apply t (fm ~priority:10 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:20 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:20 Flow_table.Modify_strict m [Action.Output 5]);
        let actions_at prio =
          List.find_map
            (fun e -> if e.Flow_table.priority = prio then Some e.Flow_table.actions else None)
            (Flow_table.entries t)
        in
        Alcotest.(check bool) "20 updated" true
          (actions_at 20 = Some [Action.Output 5]);
        Alcotest.(check bool) "10 untouched" true (actions_at 10 = Some [Action.Output 1]));
    Alcotest.test_case "modify on absent flow behaves like add" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t
          (fm Flow_table.Modify (Ofmatch.dl_dst (mac "00:ff:00:00:00:01")) [Action.Output 1]);
        Alcotest.(check int) "added" 1 (Flow_table.size t));
    Alcotest.test_case "delete removes all matching; strict needs priority" `Quick
      (fun () ->
        let t = Flow_table.create () in
        let m = Ofmatch.dl_dst (mac "00:ff:00:00:00:01") in
        Flow_table.apply t (fm ~priority:10 Flow_table.Add m [Action.Output 1]);
        Flow_table.apply t (fm ~priority:20 Flow_table.Add m [Action.Output 2]);
        Flow_table.apply t (fm ~priority:99 Flow_table.Delete_strict m []);
        Alcotest.(check int) "strict mismatch keeps" 2 (Flow_table.size t);
        Flow_table.apply t (fm ~priority:20 Flow_table.Delete_strict m []);
        Alcotest.(check int) "strict removes one" 1 (Flow_table.size t);
        Flow_table.apply t (fm Flow_table.Delete m []);
        Alcotest.(check int) "loose removes rest" 0 (Flow_table.size t));
    Alcotest.test_case "delete with any match empties the table" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t (fm Flow_table.Add (Ofmatch.make ~in_port:1 ()) []);
        Flow_table.apply t (fm Flow_table.Add (Ofmatch.make ~in_port:2 ()) []);
        Flow_table.apply t (fm Flow_table.Delete Ofmatch.any []);
        Alcotest.(check int) "empty" 0 (Flow_table.size t));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"bucketed table behaves like a naive reference" ~count:300
         (* Random flow-mod programs over a small universe of matches and
            priorities, then compare lookups against a straightforward
            sorted-list interpreter. *)
         QCheck.(
           pair
             (small_list (pair (pair (0 -- 4) (0 -- 2)) (pair (0 -- 3) (0 -- 4))))
             (small_list (0 -- 4)))
         (fun (program, probes) ->
           let matches =
             [|
               Ofmatch.any;
               Ofmatch.dl_dst (mac "00:bb:00:00:00:02");
               Ofmatch.make ~dl_type:0x0800 ();
               Ofmatch.make ~nw_proto:17 ();
               Ofmatch.make ~in_port:1 ();
             |]
           in
           let frames =
             [|
               ctx (udp_frame ());
               ctx ~port:1 (udp_frame ~dst:(mac "00:bb:00:00:00:03") ());
               ctx arp_request_frame;
               ctx (udp_frame ~dst:(mac "00:bb:00:00:00:02") ());
               ctx ~port:1 (udp_frame ());
             |]
           in
           (* Reference: insertion-ordered list, stable sort by priority. *)
           let reference = ref [] (* (priority, match idx, seq, actions) newest last *) in
           let seq = ref 0 in
           let table = Flow_table.create () in
           List.iter
             (fun (((cmd_idx, m_idx), (prio_idx, act))) ->
               let command =
                 [| Flow_table.Add; Flow_table.Modify_strict; Flow_table.Delete;
                    Flow_table.Delete_strict; Flow_table.Modify |].(cmd_idx)
               in
               let priority = 10 * (prio_idx + 1) in
               let m = matches.(m_idx) in
               let actions = [Action.Output act] in
               Flow_table.apply table (fm ~priority command m actions);
               incr seq;
               let strict (p, mi, _, _) = p = priority && mi = m_idx in
               (* Non-strict commands use OF 1.0 subsumption. *)
               let loose (_, mi, _, _) = Ofmatch.subsumes m matches.(mi) in
               (match command with
               | Flow_table.Add ->
                 reference :=
                   List.filter (fun e -> not (strict e)) !reference
                   @ [(priority, m_idx, !seq, actions)]
               | Flow_table.Modify | Flow_table.Modify_strict ->
                 let pred = if command = Flow_table.Modify then loose else strict in
                 if List.exists pred !reference then
                   reference :=
                     List.map
                       (fun ((p, mi, sq, _) as e) ->
                         if pred e then (p, mi, sq, actions) else e)
                       !reference
                 else
                   reference :=
                     List.filter (fun e -> not (strict e)) !reference
                     @ [(priority, m_idx, !seq, actions)]
               | Flow_table.Delete ->
                 if Ofmatch.is_any m then reference := []
                 else reference := List.filter (fun e -> not (loose e)) !reference
               | Flow_table.Delete_strict ->
                 reference := List.filter (fun e -> not (strict e)) !reference))
             program;
           let reference_lookup c =
             let best =
               List.fold_left
                 (fun acc ((p, mi, sq, actions) as _e) ->
                   if Ofmatch.matches matches.(mi) c then
                     match acc with
                     | Some (bp, bsq, _) when bp > p || (bp = p && bsq < sq) -> acc
                     | _ -> Some (p, sq, actions)
                   else acc)
                 None !reference
             in
             Option.map (fun (p, _, actions) -> (p, actions)) best
           in
           (* Modify re-adds move entries to the end of their bucket, so
              equal-priority tie order may differ from the reference after
              a Modify; compare priority and actions only when priorities
              are unambiguous, else just priorities. *)
           List.for_all
             (fun f_idx ->
               let c = frames.(f_idx) in
               match reference_lookup c, Flow_table.lookup table c with
               | None, None -> true
               | Some (p, _), Some e -> e.Flow_table.priority = p
               | Some _, None | None, Some _ -> false)
             probes
           && Flow_table.size table = List.length !reference));
    Alcotest.test_case "lookup counts packets" `Quick (fun () ->
        let t = Flow_table.create () in
        Flow_table.apply t (fm Flow_table.Add Ofmatch.any [Action.Output 1]);
        ignore (Flow_table.lookup t (ctx (udp_frame ())));
        ignore (Flow_table.lookup t (ctx (udp_frame ())));
        match Flow_table.entries t with
        | [e] -> Alcotest.(check int) "count" 2 e.Flow_table.packets
        | _ -> Alcotest.fail "one entry expected");
  ]

let make_switch ?(n_ports = 4) ?flow_mod_latency () =
  let e = Sim.Engine.create () in
  let sw = Switch.create e ?flow_mod_latency ~n_ports () in
  let received = Array.make n_ports [] in
  for p = 0 to n_ports - 1 do
    Switch.set_port_tx sw ~port:p (fun f -> received.(p) <- f :: received.(p))
  done;
  (e, sw, received)

let switch_tests =
  [
    Alcotest.test_case "forwards per flow table" `Quick (fun () ->
        let e, sw, received = make_switch () in
        Flow_table.apply (Switch.table sw)
          (fm Flow_table.Add (Ofmatch.dl_dst (mac "00:bb:00:00:00:02")) [Action.Output 1]);
        Switch.receive sw ~port:0 (udp_frame ());
        Sim.Engine.run e;
        Alcotest.(check int) "port 1 got it" 1 (List.length received.(1));
        Alcotest.(check int) "forwarded stat" 1 (Switch.packets_forwarded sw));
    Alcotest.test_case "rewrite applies before output" `Quick (fun () ->
        let e, sw, received = make_switch () in
        Flow_table.apply (Switch.table sw)
          (fm Flow_table.Add
             (Ofmatch.dl_dst (mac "00:ff:00:00:00:01"))
             [Action.Set_dl_dst (mac "00:bb:00:00:00:03"); Action.Output 2]);
        Switch.receive sw ~port:0 (udp_frame ~dst:(mac "00:ff:00:00:00:01") ());
        Sim.Engine.run e;
        match received.(2) with
        | [f] ->
          Alcotest.(check bool) "rewritten" true
            (Net.Mac.equal f.Net.Ethernet.dst (mac "00:bb:00:00:00:03"))
        | _ -> Alcotest.fail "expected one frame");
    Alcotest.test_case "flood goes everywhere except ingress" `Quick (fun () ->
        let e, sw, received = make_switch () in
        Flow_table.apply (Switch.table sw) (fm Flow_table.Add Ofmatch.any [Action.Flood]);
        Switch.receive sw ~port:1 (udp_frame ());
        Sim.Engine.run e;
        Alcotest.(check (list int)) "copies" [1; 0; 1; 1]
          (Array.to_list (Array.map List.length received)));
    Alcotest.test_case "miss without controller drops" `Quick (fun () ->
        let e, sw, received = make_switch () in
        Switch.receive sw ~port:0 (udp_frame ());
        Sim.Engine.run e;
        Alcotest.(check int) "dropped" 1 (Switch.packets_dropped sw);
        Alcotest.(check int) "nothing out" 0
          (Array.fold_left (fun acc l -> acc + List.length l) 0 received));
    Alcotest.test_case "miss with controller punts" `Quick (fun () ->
        let e, sw, _ = make_switch () in
        let punted = ref [] in
        let _send = Switch.connect_controller sw (fun m -> punted := m :: !punted) in
        Switch.receive sw ~port:3 (udp_frame ());
        Sim.Engine.run e;
        match !punted with
        | [Message.Packet_in { in_port = 3; _ }] -> ()
        | _ -> Alcotest.fail "expected one packet-in");
    Alcotest.test_case "flow mods are serialized with latency" `Quick (fun () ->
        let e, sw, _ = make_switch ~flow_mod_latency:(Sim.Time.of_ms 2) () in
        let send = Switch.connect_controller sw (fun _ -> ()) in
        let applied = ref [] in
        Switch.on_flow_mod_applied sw (fun _ ->
            applied := Sim.Time.to_ms (Sim.Engine.now e) :: !applied);
        for i = 1 to 3 do
          send
            (Message.Flow_mod
               (fm Flow_table.Add (Ofmatch.make ~in_port:i ()) [Action.Output 0]))
        done;
        Sim.Engine.run e;
        Alcotest.(check (list (float 0.001))) "2,4,6 ms" [2.0; 4.0; 6.0] (List.rev !applied));
    Alcotest.test_case "barrier replies after earlier flow mods" `Quick (fun () ->
        let e, sw, _ = make_switch ~flow_mod_latency:(Sim.Time.of_ms 2) () in
        let events = ref [] in
        let send =
          Switch.connect_controller sw (fun m ->
              match m with
              | Message.Barrier_reply xid -> events := `Barrier xid :: !events
              | _ -> ())
        in
        Switch.on_flow_mod_applied sw (fun _ -> events := `Mod :: !events);
        send (Message.Flow_mod (fm Flow_table.Add (Ofmatch.make ~in_port:1 ()) []));
        send (Message.Barrier_request 42);
        send (Message.Flow_mod (fm Flow_table.Add (Ofmatch.make ~in_port:2 ()) []));
        Sim.Engine.run e;
        Alcotest.(check bool) "order" true (List.rev !events = [`Mod; `Barrier 42; `Mod]));
    Alcotest.test_case "echo and features answered" `Quick (fun () ->
        let e, sw, _ = make_switch () in
        let got = ref [] in
        let send = Switch.connect_controller sw (fun m -> got := m :: !got) in
        send (Message.Echo_request 7);
        send Message.Features_request;
        Sim.Engine.run e;
        let has f = List.exists f !got in
        Alcotest.(check bool) "echo" true
          (has (function Message.Echo_reply 7 -> true | _ -> false));
        Alcotest.(check bool) "features" true
          (has (function Message.Features_reply { n_ports = 4; _ } -> true | _ -> false)));
    Alcotest.test_case "packet_out transmits" `Quick (fun () ->
        let e, sw, received = make_switch () in
        let send = Switch.connect_controller sw (fun _ -> ()) in
        send (Message.Packet_out { actions = [Action.Output 2]; frame = udp_frame () });
        Sim.Engine.run e;
        Alcotest.(check int) "port 2" 1 (List.length received.(2)));
    Alcotest.test_case "two controllers both get packet-ins" `Quick (fun () ->
        let e, sw, _ = make_switch () in
        let a = ref 0 and b = ref 0 in
        let (_ : Message.t -> unit) = Switch.connect_controller sw (fun _ -> incr a) in
        let (_ : Message.t -> unit) = Switch.connect_controller sw (fun _ -> incr b) in
        Switch.receive sw ~port:0 (udp_frame ());
        Sim.Engine.run e;
        Alcotest.(check (list int)) "both" [1; 1] [!a; !b]);
    Alcotest.test_case "barrier reply goes only to the asker" `Quick (fun () ->
        let e, sw, _ = make_switch () in
        let a = ref 0 and b = ref 0 in
        let send_a =
          Switch.connect_controller sw (function Message.Barrier_reply _ -> incr a | _ -> ())
        in
        let _send_b =
          Switch.connect_controller sw (function Message.Barrier_reply _ -> incr b | _ -> ())
        in
        send_a (Message.Barrier_request 1);
        Sim.Engine.run e;
        Alcotest.(check (list int)) "only a" [1; 0] [!a; !b]);
  ]

(* --- batched forwarding ------------------------------------------------- *)

(* The batch paths promise the exact per-frame semantics of their
   sequential twins — same matches, same rewrites, same counters, same
   output order — with only the scheduling amortized. Every test here
   drives a batched instance and a sequential instance with identical
   programs and compares them field by field. *)

let resolution_equal a b =
  match a, b with
  | Switch.Forward (f, ps), Switch.Forward (g, qs) ->
    Net.Ethernet.equal f g && List.equal Int.equal ps qs
  | Switch.Punt, Switch.Punt
  | Switch.Miss, Switch.Miss
  | Switch.Blackhole, Switch.Blackhole -> true
  | Switch.Forward _, _ | Switch.Punt, _ | Switch.Miss, _ | Switch.Blackhole, _
    -> false

let resolution =
  Alcotest.testable
    (fun ppf -> function
      | Switch.Forward (_, ps) ->
        Fmt.pf ppf "Forward[%a]" Fmt.(list ~sep:comma int) ps
      | Switch.Punt -> Fmt.string ppf "Punt"
      | Switch.Miss -> Fmt.string ppf "Miss"
      | Switch.Blackhole -> Fmt.string ppf "Blackhole")
    resolution_equal

(* A little rule zoo exercising every resolution outcome plus a rewrite. *)
let program_batch_rules table =
  List.iter
    (Flow_table.apply table)
    [
      fm ~priority:300 Flow_table.Add
        (Ofmatch.dl_dst (mac "00:bb:00:00:00:02"))
        [Action.Output 1];
      fm ~priority:300 Flow_table.Add
        (Ofmatch.dl_dst (mac "00:ff:00:00:00:01"))
        [Action.Set_dl_dst (mac "00:bb:00:00:00:03"); Action.Output 2];
      fm ~priority:300 Flow_table.Add
        (Ofmatch.dl_dst (mac "00:bb:00:00:00:04"))
        [Action.To_controller];
      fm ~priority:300 Flow_table.Add
        (Ofmatch.dl_dst (mac "00:bb:00:00:00:05"))
        [] (* blackhole *);
      fm ~priority:100 Flow_table.Add (Ofmatch.make ~dl_type:0x0806 ())
        [Action.Flood];
    ]

let batch_frame_pool =
  [|
    udp_frame () (* forward to port 1 *);
    udp_frame ~dst:(mac "00:ff:00:00:00:01") () (* rewrite, port 2 *);
    udp_frame ~dst:(mac "00:bb:00:00:00:04") () (* punt *);
    udp_frame ~dst:(mac "00:bb:00:00:00:05") () (* blackhole *);
    udp_frame ~dst:(mac "00:dd:00:00:00:09") () (* miss *);
    arp_request_frame (* flood *);
  |]

let batch_tests =
  [
    Alcotest.test_case "flow_table lookup_batch = sequential lookups" `Quick
      (fun () ->
        let seq = Flow_table.create () and bat = Flow_table.create () in
        program_batch_rules seq;
        program_batch_rules bat;
        let ctxs =
          Array.map (fun f -> ctx ~port:3 f)
            (Array.concat [batch_frame_pool; batch_frame_pool])
        in
        let expect = Array.map (fun c -> Flow_table.lookup seq c) ctxs in
        let got = Array.make (Array.length ctxs) None in
        Flow_table.lookup_batch bat ctxs got;
        Array.iteri
          (fun i e ->
            match e, got.(i) with
            | None, None -> ()
            | Some a, Some b ->
              Alcotest.(check int) "priority" a.Flow_table.priority
                b.Flow_table.priority;
              Alcotest.(check int) "per-entry packets" a.Flow_table.packets
                b.Flow_table.packets
            | Some _, None | None, Some _ ->
              Alcotest.failf "probe %d: hit/miss disagreement" i)
          expect;
        Alcotest.(check int) "table lookup counters" (Flow_table.lookups seq)
          (Flow_table.lookups bat));
    Alcotest.test_case "peek_batch touches no counters" `Quick (fun () ->
        let t = Flow_table.create () in
        program_batch_rules t;
        let ctxs = Array.map (fun f -> ctx f) batch_frame_pool in
        let got = Array.make (Array.length ctxs) None in
        Flow_table.peek_batch t ctxs got;
        Array.iteri
          (fun i c ->
            match Flow_table.peek t c, got.(i) with
            | None, None -> ()
            | Some a, Some b ->
              Alcotest.(check int) "same entry" a.Flow_table.priority
                b.Flow_table.priority
            | Some _, None | None, Some _ ->
              Alcotest.failf "probe %d: hit/miss disagreement" i)
          ctxs;
        Alcotest.(check int) "lookups untouched" 0 (Flow_table.lookups t);
        List.iter
          (fun e -> Alcotest.(check int) "packets untouched" 0 e.Flow_table.packets)
          (Flow_table.entries t));
    Alcotest.test_case "switch resolve_batch = pointwise resolve" `Quick
      (fun () ->
        let _, sw, _ = make_switch () in
        program_batch_rules (Switch.table sw);
        let got = Array.make (Array.length batch_frame_pool) Switch.Miss in
        Switch.resolve_batch sw ~port:0 batch_frame_pool got;
        Array.iteri
          (fun i f ->
            Alcotest.check resolution
              (Printf.sprintf "frame %d" i)
              (Switch.resolve sw ~port:0 f)
              got.(i))
          batch_frame_pool;
        (* resolve stays side-effect-free in batch form too *)
        Alcotest.(check int) "no lookups recorded" 0
          (Flow_table.lookups (Switch.table sw));
        Alcotest.(check int) "nothing forwarded" 0 (Switch.packets_forwarded sw));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"receive_batch behaves like sequential receive"
         ~count:100
         QCheck.(
           list_of_size Gen.(1 -- 24)
             (int_bound (Array.length batch_frame_pool - 1)))
         (fun picks ->
           let run batched =
             let e, sw, received = make_switch () in
             program_batch_rules (Switch.table sw);
             let punts = ref 0 in
             let (_ : Message.t -> unit) =
               Switch.connect_controller sw (function
                 | Message.Packet_in _ -> incr punts
                 | _ -> ())
             in
             let frames =
               Array.of_list (List.map (fun i -> batch_frame_pool.(i)) picks)
             in
             if batched then Switch.receive_batch sw ~port:3 frames
             else Array.iter (fun f -> Switch.receive sw ~port:3 f) frames;
             Sim.Engine.run e;
             ( Array.map List.rev received,
               !punts,
               Switch.packets_forwarded sw,
               Switch.packets_dropped sw,
               Switch.packet_ins_sent sw,
               Flow_table.lookups (Switch.table sw) )
           in
           let seq_out, sp, sf, sd, si, sl = run false in
           let bat_out, bp, bf, bd, bi, bl = run true in
           Array.for_all2 (List.equal Net.Ethernet.equal) seq_out bat_out
           && sp = bp && sf = bf && sd = bd && si = bi && sl = bl));
  ]

(* --- OF 1.0 wire codec -------------------------------------------------- *)

let message_roundtrip msg =
  match Codec.decode_exact (Codec.encode msg) with
  | Ok msg' ->
    Alcotest.(check string) "round-trip"
      (Fmt.str "%a" Message.pp msg)
      (Fmt.str "%a" Message.pp msg')
  | Error e -> Alcotest.failf "decode failed: %a" Net.Wire.pp_error e

let codec_tests =
  [
    Alcotest.test_case "hello/echo/barrier round-trip" `Quick (fun () ->
        List.iter message_roundtrip
          [
            Message.Hello;
            Message.Echo_request 7;
            Message.Echo_reply 7;
            Message.Features_request;
            Message.Barrier_request 42;
            Message.Barrier_reply 42;
          ]);
    Alcotest.test_case "features reply round-trips ports" `Quick (fun () ->
        message_roundtrip
          (Message.Features_reply { datapath_id = 0x0102030405060708L; n_ports = 5 }));
    Alcotest.test_case "the paper's flow mod round-trips" `Quick (fun () ->
        message_roundtrip
          (Message.Flow_mod
             (Flow_table.flow_mod ~priority:100 ~cookie:99L Flow_table.Add
                (Ofmatch.dl_dst (mac "00:ff:00:00:00:01"))
                [Action.Set_dl_dst (mac "00:bb:00:00:00:03"); Action.Output 2])));
    Alcotest.test_case "flow mod with every field round-trips" `Quick (fun () ->
        message_roundtrip
          (Message.Flow_mod
             (Flow_table.flow_mod ~priority:2 Flow_table.Delete_strict
                (Ofmatch.make ~in_port:3
                   ~dl_src:(mac "00:aa:00:00:00:01")
                   ~dl_dst:(mac "00:bb:00:00:00:02")
                   ~dl_type:0x0800
                   ~nw_src:(pfx "10.0.0.0/8")
                   ~nw_dst:(pfx "1.2.3.4/32")
                   ~nw_proto:17 ~tp_src:5001 ~tp_dst:9000 ())
                [
                  Action.Flood; Action.To_controller;
                  Action.Set_nw_src (ip "9.9.9.9"); Action.Set_nw_dst (ip "8.8.8.8");
                  Action.Set_dl_src (mac "00:cc:00:00:00:01");
                ])));
    Alcotest.test_case "packet-in carries the real frame" `Quick (fun () ->
        message_roundtrip (Message.Packet_in { in_port = 3; frame = udp_frame () }));
    Alcotest.test_case "packet-out carries actions and frame" `Quick (fun () ->
        message_roundtrip
          (Message.Packet_out
             { actions = [Action.Output 1; Action.Flood]; frame = arp_request_frame }));
    Alcotest.test_case "wrong version rejected" `Quick (fun () ->
        let raw = Bytes.of_string (Codec.encode Message.Hello) in
        Bytes.set raw 0 '\x04';
        match Codec.decode (Bytes.to_string raw) with
        | Error (Net.Wire.Unsupported _) -> ()
        | Ok _ -> Alcotest.fail "accepted wrong version"
        | Error e -> Alcotest.failf "wrong error: %a" Net.Wire.pp_error e);
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let raw =
          Codec.encode (Message.Packet_in { in_port = 1; frame = udp_frame () })
        in
        match Codec.decode (String.sub raw 0 (String.length raw - 4)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncation");
    Alcotest.test_case "ofp_match is 40 bytes on the wire" `Quick (fun () ->
        (* flow_mod body = 40 (match) + 24 (fixed) + actions; header 8. *)
        let raw =
          Codec.encode
            (Message.Flow_mod (Flow_table.flow_mod Flow_table.Add Ofmatch.any []))
        in
        Alcotest.(check int) "length" (8 + 40 + 24) (String.length raw));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"flow mod codec round-trip" ~count:200
         QCheck.(
           pair
             (pair (0 -- 4) (0 -- 65535))
             (pair (option (0 -- 32)) (option (0 -- 32))))
         (fun ((cmd_idx, priority), (src_len, dst_len)) ->
           let command =
             List.nth
               [
                 Flow_table.Add; Flow_table.Modify; Flow_table.Modify_strict;
                 Flow_table.Delete; Flow_table.Delete_strict;
               ]
               cmd_idx
           in
           let m =
             Ofmatch.make
               ?nw_src:(Option.map (fun l -> Net.Prefix.make (ip "10.1.2.3") l) src_len)
               ?nw_dst:(Option.map (fun l -> Net.Prefix.make (ip "4.5.6.7") l) dst_len)
               ()
           in
           let msg =
             Message.Flow_mod
               (Flow_table.flow_mod ~priority command m [Action.Output 1])
           in
           match Codec.decode_exact (Codec.encode msg) with
           | Ok (Message.Flow_mod fm') ->
             fm'.Flow_table.fm_priority = priority
             && fm'.Flow_table.command = command
             && Ofmatch.equal fm'.Flow_table.fm_match m
           | Ok _ | Error _ -> false));
  ]

let suite =
  [
    ("openflow.match", match_tests);
    ("openflow.action", action_tests);
    ("openflow.subsumes", subsumes_tests);
    ("openflow.flow_table", flow_table_tests);
    ("openflow.codec", codec_tests);
    ("openflow.switch", switch_tests);
    ("openflow.batch", batch_tests);
  ]
