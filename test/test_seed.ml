(* One seed for every property-based suite.

   QCheck_alcotest would otherwise draw an implicit seed on first use;
   routing every suite through this wrapper pins them all to
   QCHECK_SEED (or to one drawn from system entropy) and prints it up
   front, so any property-test failure in CI replays locally with
   `QCHECK_SEED=<printed> dune exec test/test_main.exe`. *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg (Fmt.str "QCHECK_SEED=%S is not an integer" s))
  | None ->
    Random.self_init ();
    Random.int 1_000_000_000

let () = Fmt.epr "[qcheck] QCHECK_SEED=%d (export QCHECK_SEED to replay)@." seed

(* Every property test draws from its own state seeded identically, so
   adding or reordering suites never shifts another suite's stream. *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
