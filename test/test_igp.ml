(* Tests for the link-state IGP substrate: LSAs, SPF (incl. the two-way
   check), the database, flooding/convergence, and the hook into the
   BGP decision process. *)

let ip = Net.Ipv4.of_string_exn

let lsa origin seq links =
  Igp.Lsa.make ~origin:(ip origin) ~seq
    ~links:(List.map (fun (n, c) -> (ip n, c)) links)

let lsa_tests =
  [
    Alcotest.test_case "newer compares same-origin sequence numbers" `Quick (fun () ->
        let a1 = lsa "10.0.0.1" 1 [] and a2 = lsa "10.0.0.1" 2 [] in
        let b2 = lsa "10.0.0.2" 2 [] in
        Alcotest.(check bool) "2 newer than 1" true (Igp.Lsa.newer a2 ~than:a1);
        Alcotest.(check bool) "1 not newer than 2" false (Igp.Lsa.newer a1 ~than:a2);
        Alcotest.(check bool) "different origin never newer" false
          (Igp.Lsa.newer b2 ~than:a1));
    Alcotest.test_case "non-positive costs rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (lsa "10.0.0.1" 1 [("10.0.0.2", 0)]);
             false
           with Invalid_argument _ -> true));
  ]

let database_tests =
  [
    Alcotest.test_case "install verdicts" `Quick (fun () ->
        let db = Igp.Database.create () in
        Alcotest.(check bool) "fresh installs" true
          (Igp.Database.install db (lsa "10.0.0.1" 5 []) = Igp.Database.Installed);
        Alcotest.(check bool) "duplicate" true
          (Igp.Database.install db (lsa "10.0.0.1" 5 []) = Igp.Database.Duplicate);
        Alcotest.(check bool) "stale" true
          (Igp.Database.install db (lsa "10.0.0.1" 3 []) = Igp.Database.Stale);
        Alcotest.(check bool) "newer installs" true
          (Igp.Database.install db (lsa "10.0.0.1" 9 []) = Igp.Database.Installed);
        Alcotest.(check int) "one origin" 1 (Igp.Database.cardinal db);
        match Igp.Database.find db (ip "10.0.0.1") with
        | Some held -> Alcotest.(check int) "freshest kept" 9 held.Igp.Lsa.seq
        | None -> Alcotest.fail "missing");
    Alcotest.test_case "same-seq different-links is news, not a duplicate" `Quick
      (fun () ->
        (* Regression: an LSA re-issued under an unchanged sequence number
           but with different links is a topology change. It used to be
           classified [Duplicate] and silently dropped — never installed,
           never flooded. *)
        let db = Igp.Database.create () in
        let original = lsa "10.0.0.1" 5 [("10.0.0.2", 1)] in
        let divergent = lsa "10.0.0.1" 5 [("10.0.0.2", 3)] in
        Alcotest.(check bool) "original installs" true
          (Igp.Database.install db original = Igp.Database.Installed);
        Alcotest.(check bool) "divergent same-seq installs" true
          (Igp.Database.install db divergent = Igp.Database.Installed);
        Alcotest.(check bool) "exact re-send is the duplicate" true
          (Igp.Database.install db divergent = Igp.Database.Duplicate);
        Alcotest.(check bool) "older still stale" true
          (Igp.Database.install db (lsa "10.0.0.1" 4 [("10.0.0.2", 9)])
          = Igp.Database.Stale);
        match Igp.Database.find db (ip "10.0.0.1") with
        | Some held ->
          Alcotest.(check bool) "divergent copy held" true
            (Igp.Lsa.equal held divergent)
        | None -> Alcotest.fail "missing");
  ]

(* A small reference topology:
     r1 --1-- r2 --1-- r3
      \---5------------/     (direct r1-r3 link, cost 5)            *)
let triangle =
  [
    lsa "10.0.0.1" 1 [("10.0.0.2", 1); ("10.0.0.3", 5)];
    lsa "10.0.0.2" 1 [("10.0.0.1", 1); ("10.0.0.3", 1)];
    lsa "10.0.0.3" 1 [("10.0.0.1", 5); ("10.0.0.2", 1)];
  ]

let spf_tests =
  [
    Alcotest.test_case "prefers the two-hop path over the heavy link" `Quick
      (fun () ->
        Alcotest.(check (option int)) "r1->r3 via r2" (Some 2)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas:triangle (ip "10.0.0.3"));
        Alcotest.(check (option int)) "r1->r2" (Some 1)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas:triangle (ip "10.0.0.2"));
        Alcotest.(check (option int)) "self" (Some 0)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas:triangle (ip "10.0.0.1")));
    Alcotest.test_case "one-way links are ignored (two-way check)" `Quick (fun () ->
        let lsas =
          [
            lsa "10.0.0.1" 1 [("10.0.0.2", 1)];
            (* r2 does not advertise r1 back *)
            lsa "10.0.0.2" 1 [];
          ]
        in
        Alcotest.(check (option int)) "unreachable" None
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas (ip "10.0.0.2")));
    Alcotest.test_case "asymmetric costs are honoured per direction" `Quick (fun () ->
        let lsas =
          [
            lsa "10.0.0.1" 1 [("10.0.0.2", 10)];
            lsa "10.0.0.2" 1 [("10.0.0.1", 3)];
          ]
        in
        Alcotest.(check (option int)) "forward" (Some 10)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas (ip "10.0.0.2"));
        Alcotest.(check (option int)) "reverse" (Some 3)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.2") ~lsas (ip "10.0.0.1")));
    Alcotest.test_case "partitions yield absent entries" `Quick (fun () ->
        let lsas =
          triangle
          @ [lsa "10.0.0.9" 1 [("10.0.0.8", 1)]; lsa "10.0.0.8" 1 [("10.0.0.9", 1)]]
        in
        Alcotest.(check (option int)) "island unreachable" None
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas (ip "10.0.0.9"));
        Alcotest.(check int) "three reachable" 3
          (List.length (Igp.Spf.distances ~source:(ip "10.0.0.1") ~lsas)));
    Alcotest.test_case "only the freshest LSA per origin counts" `Quick (fun () ->
        let lsas =
          triangle
          @ [(* r2 loses its r3 link in a newer LSA *)
             lsa "10.0.0.2" 2 [("10.0.0.1", 1)]]
        in
        Alcotest.(check (option int)) "now via heavy direct link" (Some 5)
          (Igp.Spf.distance_to ~source:(ip "10.0.0.1") ~lsas (ip "10.0.0.3")));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"SPF agrees with Bellman-Ford" ~count:150
         QCheck.(small_list (pair (pair (0 -- 5) (0 -- 5)) (1 -- 9)))
         (fun raw_edges ->
           let node i = Net.Ipv4.of_octets 10 0 0 (1 + i) in
           (* Build symmetric LSAs (same cost both ways) so the two-way
              check keeps every generated edge. Later duplicates win. *)
           let cost = Hashtbl.create 16 in
           List.iter
             (fun ((a, b), c) -> if a <> b then Hashtbl.replace cost (min a b, max a b) c)
             raw_edges;
           let links_of i =
             Hashtbl.fold
               (fun (a, b) c acc ->
                 if a = i then (node b, c) :: acc
                 else if b = i then (node a, c) :: acc
                 else acc)
               cost []
           in
           let lsas =
             List.init 6 (fun i ->
                 Igp.Lsa.make ~origin:(node i) ~seq:1 ~links:(links_of i))
           in
           (* Bellman-Ford reference from node 0. *)
           let inf = max_int / 4 in
           let dist = Array.make 6 inf in
           dist.(0) <- 0;
           for _ = 1 to 6 do
             Hashtbl.iter
               (fun (a, b) c ->
                 if dist.(a) + c < dist.(b) then dist.(b) <- dist.(a) + c;
                 if dist.(b) + c < dist.(a) then dist.(a) <- dist.(b) + c)
               cost
           done;
           let spf = Igp.Spf.distances ~source:(node 0) ~lsas in
           List.for_all
             (fun i ->
               let expected = if dist.(i) >= inf then None else Some dist.(i) in
               let got =
                 List.find_map
                   (fun (n, d) -> if Net.Ipv4.equal n (node i) then Some d else None)
                   spf
               in
               got = expected)
             [0; 1; 2; 3; 4; 5]));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"reachability is the two-way edge intersection"
         ~count:150
         QCheck.(small_list (pair (pair (0 -- 5) (0 -- 5)) (1 -- 9)))
         (fun raw_edges ->
           (* Arbitrary DIRECTED adverts: node a claiming a link to b only
              counts when b claims a back (the two-way connectivity
              check), so reachability from node 0 must match a BFS over
              the intersection graph. *)
           let node i = Net.Ipv4.of_octets 10 0 0 (1 + i) in
           let out = Hashtbl.create 16 in
           List.iter
             (fun ((a, b), c) -> if a <> b then Hashtbl.replace out (a, b) c)
             raw_edges;
           let links_of i =
             Hashtbl.fold
               (fun (a, b) c acc -> if a = i then (node b, c) :: acc else acc)
               out []
           in
           let lsas =
             List.init 6 (fun i ->
                 Igp.Lsa.make ~origin:(node i) ~seq:1 ~links:(links_of i))
           in
           let two_way a b = Hashtbl.mem out (a, b) && Hashtbl.mem out (b, a) in
           let seen = Array.make 6 false in
           seen.(0) <- true;
           let rec bfs = function
             | [] -> ()
             | x :: rest ->
               let fresh =
                 List.filter (fun y -> (not seen.(y)) && two_way x y)
                   [0; 1; 2; 3; 4; 5]
               in
               List.iter (fun y -> seen.(y) <- true) fresh;
               bfs (rest @ fresh)
           in
           bfs [0];
           let table = Igp.Spf.compute ~source:(node 0) ~lsas in
           List.for_all
             (fun i -> Igp.Spf.reachable table (node i) = seen.(i))
             [0; 1; 2; 3; 4; 5]));
  ]

(* Four nodes in a line with a shortcut, driven through the engine. *)
let make_network () =
  let e = Sim.Engine.create () in
  let node i = Igp.Node.create e ~router_id:(ip (Fmt.str "10.0.0.%d" i)) () in
  let r1 = node 1 and r2 = node 2 and r3 = node 3 and r4 = node 4 in
  Igp.Node.connect ~a:r1 ~b:r2 ~cost:1;
  Igp.Node.connect ~a:r2 ~b:r3 ~cost:1;
  Igp.Node.connect ~a:r3 ~b:r4 ~cost:1;
  Igp.Node.connect ~a:r1 ~b:r4 ~cost:10;
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
  (e, r1, r2, r3, r4)

let node_tests =
  [
    Alcotest.test_case "flooding converges all databases" `Quick (fun () ->
        let _, r1, r2, r3, r4 = make_network () in
        List.iter
          (fun n ->
            Alcotest.(check int) "four origins" 4
              (Igp.Database.cardinal (Igp.Node.database n)))
          [r1; r2; r3; r4]);
    Alcotest.test_case "distances across the line" `Quick (fun () ->
        let _, r1, _, _, r4 = make_network () in
        Alcotest.(check (option int)) "r1->r4 via line" (Some 3)
          (Igp.Node.distance_to r1 (ip "10.0.0.4"));
        Alcotest.(check (option int)) "r4->r1" (Some 3)
          (Igp.Node.distance_to r4 (ip "10.0.0.1")));
    Alcotest.test_case "link failure reroutes over the shortcut" `Quick (fun () ->
        let e, r1, r2, r3, _r4 = make_network () in
        let changes = ref 0 in
        Igp.Node.on_change r1 (fun _ -> incr changes);
        Igp.Node.disconnect ~a:r2 ~b:r3;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check (option int)) "via the heavy shortcut" (Some 10)
          (Igp.Node.distance_to r1 (ip "10.0.0.4"));
        Alcotest.(check (option int)) "r3 via r4 now" (Some 11)
          (Igp.Node.distance_to r1 (ip "10.0.0.3"));
        Alcotest.(check bool) "change callback fired" true (!changes > 0);
        ignore r3);
    Alcotest.test_case "cost change propagates" `Quick (fun () ->
        let e, r1, _, _, r4 = make_network () in
        Igp.Node.set_cost ~a:r1 ~b:r4 ~cost:2;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check (option int)) "shortcut now preferred" (Some 2)
          (Igp.Node.distance_to r1 (ip "10.0.0.4")));
    Alcotest.test_case "IGP cost feeds the BGP decision process" `Quick (fun () ->
        (* Two eBGP routes, identical attributes; the next hop that is
           IGP-closer must win (decision step 6). *)
        let e, r1, _, _, r4 = make_network () in
        ignore e;
        let igp_cost_of nh =
          Option.value (Igp.Node.distance_to r1 nh) ~default:max_int
        in
        let route peer_id nh_str =
          let nh = ip nh_str in
          Bgp.Route.make ~peer_id ~peer_router_id:nh ~igp_cost:(igp_cost_of nh)
            (Bgp.Attributes.make
               ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
               ~next_hop:nh ())
        in
        ignore r4;
        let via_r2 = route 0 "10.0.0.2" (* cost 1 *) in
        let via_r4 = route 1 "10.0.0.4" (* cost 3 *) in
        match Bgp.Decision.best [via_r4; via_r2] with
        | Some best -> Alcotest.(check int) "nearer NH wins" 0 best.Bgp.Route.peer_id
        | None -> Alcotest.fail "no best");
    Alcotest.test_case "queries between database changes run zero SPFs" `Quick
      (fun () ->
        (* Regression: [distance_to]/[next_hop_to] used to run a full
           Dijkstra per query. They must share one memoized table,
           recomputed only when the database changes. *)
        let e, r1, r2, r3, r4 = make_network () in
        let all = [r1; r2; r3; r4] in
        let targets = List.map (fun i -> ip (Fmt.str "10.0.0.%d" i)) [1; 2; 3; 4] in
        let query_everything () =
          List.iter
            (fun n ->
              ignore (Igp.Node.distances n);
              List.iter
                (fun target ->
                  ignore (Igp.Node.distance_to n target);
                  ignore (Igp.Node.next_hop_to n target))
                targets)
            all
        in
        query_everything () (* warm each node's table *);
        let warm = Igp.Spf.computations () in
        query_everything ();
        query_everything ();
        Alcotest.(check int) "32 queries, zero SPFs" warm (Igp.Spf.computations ());
        (* A database change invalidates: re-warming costs exactly one
           SPF per node, and queries are free again afterwards. *)
        Igp.Node.disconnect ~a:r2 ~b:r3;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        let before_rewarm = Igp.Spf.computations () in
        query_everything ();
        Alcotest.(check int) "one SPF per node to re-warm" (before_rewarm + 4)
          (Igp.Spf.computations ());
        query_everything ();
        Alcotest.(check int) "free again" (before_rewarm + 4)
          (Igp.Spf.computations ()));
    Alcotest.test_case "same-seq divergent LSA is installed and re-flooded" `Quick
      (fun () ->
        (* Regression at the flooding layer: r2 holds r1's LSA; a copy
           with the SAME sequence number but different links arrives. It
           used to be judged a duplicate and dropped, so downstream nodes
           (r3, r4) never learned the change. *)
        let e, r1, r2, r3, r4 = make_network () in
        ignore r1;
        let held =
          match Igp.Database.find (Igp.Node.database r2) (ip "10.0.0.1") with
          | Some l -> l
          | None -> Alcotest.fail "r2 never learned r1's LSA"
        in
        let divergent =
          Igp.Lsa.make ~origin:held.Igp.Lsa.origin ~seq:held.Igp.Lsa.seq
            ~links:(List.map (fun (n, c) -> (n, c + 7)) held.Igp.Lsa.links)
        in
        Igp.Node.receive r2 ~from:(ip "10.0.0.1") divergent;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        List.iteri
          (fun i n ->
            match Igp.Database.find (Igp.Node.database n) (ip "10.0.0.1") with
            | Some l ->
              Alcotest.(check bool)
                (Fmt.str "node %d holds the re-flooded copy" (i + 2))
                true (Igp.Lsa.equal l divergent)
            | None -> Alcotest.fail "origin vanished")
          [r2; r3; r4]);
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"flooding converges under randomized delays"
         ~count:40
         QCheck.(pair (0 -- 9999) (4 -- 7))
         (fun (seed, n) ->
           (* Random connected topology, every node flooding with its own
              randomized per-hop delay: after the dust settles all
              databases must be equal and (costs being symmetric)
              distances symmetric. *)
           let e = Sim.Engine.create ~seed:(Int64.of_int (1 + seed)) () in
           let rng = Sim.Rng.create ~seed:(Int64.of_int (77 + seed)) in
           let nodes =
             Array.init n (fun i ->
                 Igp.Node.create e
                   ~router_id:(Net.Ipv4.of_octets 10 0 0 (1 + i))
                   ~flood_delay:(Sim.Time.of_us (200 + Sim.Rng.int rng 1800))
                   ())
           in
           for i = 1 to n - 1 do
             (* spanning tree keeps it connected... *)
             Igp.Node.connect ~a:nodes.(i)
               ~b:nodes.(Sim.Rng.int rng i)
               ~cost:(1 + Sim.Rng.int rng 9)
           done;
           for _ = 1 to n do
             (* ...plus a sprinkle of extra links *)
             let a = Sim.Rng.int rng n and b = Sim.Rng.int rng n in
             if a <> b then
               Igp.Node.connect ~a:nodes.(a) ~b:nodes.(b)
                 ~cost:(1 + Sim.Rng.int rng 9)
           done;
           Sim.Engine.run ~until:(Sim.Time.of_sec 5.0) e;
           let db0 = Igp.Node.database nodes.(0) in
           Array.for_all
             (fun nd -> Igp.Database.equal db0 (Igp.Node.database nd))
             nodes
           && Array.for_all
                (fun nd ->
                  Igp.Node.distance_to nodes.(0) (Igp.Node.router_id nd)
                  = Igp.Node.distance_to nd (Net.Ipv4.of_octets 10 0 0 1))
                nodes));
  ]

let suite =
  [
    ("igp.lsa", lsa_tests);
    ("igp.database", database_tests);
    ("igp.spf", spf_tests);
    ("igp.node", node_tests);
  ]
