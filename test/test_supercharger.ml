(* Tests for the paper's contribution: VNH allocation, backup groups,
   the Listing 1 algorithm, the ARP responder, the Listing 2
   provisioner, and controller replication determinism. *)

let ip = Net.Ipv4.of_string_exn
let mac = Net.Mac.of_string_exn
let pfx = Net.Prefix.v
let asn = Bgp.Asn.of_int

let attrs ?(path = [65002]) ?local_pref nh =
  Bgp.Attributes.make
    ~as_path:[Bgp.Attributes.Seq (List.map asn path)]
    ?local_pref ~next_hop:(ip nh) ()

let route ?(peer_id = 0) ?(router_id = "10.0.0.2") a =
  Bgp.Route.make ~peer_id ~peer_router_id:(ip router_id) a

let vnh_tests =
  [
    Alcotest.test_case "fresh allocations are sequential and in pool" `Quick (fun () ->
        let v = Supercharger.Vnh.create () in
        let vnh1, vmac1 = Supercharger.Vnh.fresh v in
        let vnh2, vmac2 = Supercharger.Vnh.fresh v in
        Alcotest.(check string) "first vnh" "10.199.0.1" (Net.Ipv4.to_string vnh1);
        Alcotest.(check string) "second vnh" "10.199.0.2" (Net.Ipv4.to_string vnh2);
        Alcotest.(check string) "first vmac" "00:ff:00:00:00:01" (Net.Mac.to_string vmac1);
        Alcotest.(check string) "second vmac" "00:ff:00:00:00:02" (Net.Mac.to_string vmac2);
        Alcotest.(check bool) "in pool" true (Supercharger.Vnh.in_pool v vnh1);
        Alcotest.(check int) "count" 2 (Supercharger.Vnh.allocated v));
    Alcotest.test_case "is_virtual_mac tracks allocations" `Quick (fun () ->
        let v = Supercharger.Vnh.create () in
        let _, vmac = Supercharger.Vnh.fresh v in
        Alcotest.(check bool) "allocated" true (Supercharger.Vnh.is_virtual_mac v vmac);
        Alcotest.(check bool) "not yet allocated" false
          (Supercharger.Vnh.is_virtual_mac v (mac "00:ff:00:00:00:02")));
    Alcotest.test_case "pool exhaustion raises" `Quick (fun () ->
        let v = Supercharger.Vnh.create ~pool:(pfx "10.199.0.0/24") () in
        for _ = 1 to 254 do
          ignore (Supercharger.Vnh.fresh v)
        done;
        Alcotest.(check bool) "raises" true
          (try
             ignore (Supercharger.Vnh.fresh v);
             false
           with Failure _ -> true));
    Alcotest.test_case "custom pool respected" `Quick (fun () ->
        let v = Supercharger.Vnh.create ~pool:(pfx "172.16.0.0/16") () in
        let vnh, _ = Supercharger.Vnh.fresh v in
        Alcotest.(check string) "vnh" "172.16.0.1" (Net.Ipv4.to_string vnh));
  ]

let make_groups ?group_size () =
  Supercharger.Backup_group.create ?group_size (Supercharger.Vnh.create ())

let backup_group_tests =
  [
    Alcotest.test_case "same tuple returns the same binding" `Quick (fun () ->
        let g = make_groups () in
        let b1 = Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"] in
        let b2 = Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"] in
        Alcotest.(check bool) "same vnh" true (Net.Ipv4.equal b1.vnh b2.vnh);
        Alcotest.(check int) "one group" 1 (Supercharger.Backup_group.count g));
    Alcotest.test_case "order matters: (a,b) <> (b,a)" `Quick (fun () ->
        let g = make_groups () in
        let b1 = Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"] in
        let b2 = Supercharger.Backup_group.find_or_create g [ip "10.0.0.3"; ip "10.0.0.2"] in
        Alcotest.(check bool) "distinct" false (Net.Ipv4.equal b1.vnh b2.vnh);
        Alcotest.(check int) "two groups" 2 (Supercharger.Backup_group.count g));
    Alcotest.test_case "tuples are truncated to group size" `Quick (fun () ->
        let g = make_groups ~group_size:2 () in
        let b1 =
          Supercharger.Backup_group.find_or_create g
            [ip "10.0.0.2"; ip "10.0.0.3"; ip "10.0.0.4"]
        in
        let b2 = Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"] in
        Alcotest.(check bool) "same group" true (Net.Ipv4.equal b1.vnh b2.vnh));
    Alcotest.test_case "group size three distinguishes deeper backups" `Quick (fun () ->
        let g = make_groups ~group_size:3 () in
        let b1 =
          Supercharger.Backup_group.find_or_create g
            [ip "10.0.0.2"; ip "10.0.0.3"; ip "10.0.0.4"]
        in
        let b2 =
          Supercharger.Backup_group.find_or_create g
            [ip "10.0.0.2"; ip "10.0.0.3"; ip "10.0.0.5"]
        in
        Alcotest.(check bool) "distinct" false (Net.Ipv4.equal b1.vnh b2.vnh));
    Alcotest.test_case "lookups by vnh and vmac" `Quick (fun () ->
        let g = make_groups () in
        let b = Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"] in
        Alcotest.(check bool) "by vnh" true
          (Supercharger.Backup_group.find_by_vnh g b.vnh <> None);
        Alcotest.(check bool) "by vmac" true
          (Supercharger.Backup_group.find_by_vmac g b.vmac <> None);
        Alcotest.(check bool) "unknown vnh" true
          (Supercharger.Backup_group.find_by_vnh g (ip "10.199.0.99") = None));
    Alcotest.test_case "with_primary / with_member" `Quick (fun () ->
        let g = make_groups () in
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"]);
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.3"; ip "10.0.0.2"]);
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.4"; ip "10.0.0.3"]);
        Alcotest.(check int) "primary .2" 1
          (List.length (Supercharger.Backup_group.with_primary g (ip "10.0.0.2")));
        Alcotest.(check int) "member .3" 3
          (List.length (Supercharger.Backup_group.with_member g (ip "10.0.0.3"))));
    Alcotest.test_case "on_create fires once per new group" `Quick (fun () ->
        let g = make_groups () in
        let created = ref 0 in
        Supercharger.Backup_group.on_create g (fun _ -> incr created);
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"]);
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.2"; ip "10.0.0.3"]);
        ignore (Supercharger.Backup_group.find_or_create g [ip "10.0.0.3"; ip "10.0.0.2"]);
        Alcotest.(check int) "two creations" 2 !created);
    Alcotest.test_case "theoretical max matches the paper" `Quick (fun () ->
        (* §2: "considering a router with 10 neighbors ... the number of
           backup-groups is only 90" *)
        Alcotest.(check int) "n=10,k=2" 90
          (Supercharger.Backup_group.theoretical_max ~n_peers:10 ~group_size:2);
        Alcotest.(check int) "n=2,k=2" 2
          (Supercharger.Backup_group.theoretical_max ~n_peers:2 ~group_size:2);
        Alcotest.(check int) "k>n" 0
          (Supercharger.Backup_group.theoretical_max ~n_peers:1 ~group_size:2));
  ]

(* Drives the algorithm through RIB changes like the controller does. *)
let make_algo () =
  let groups = make_groups () in
  let rib = Bgp.Rib.create () in
  let algo = Supercharger.Algorithm.create groups in
  let feed ?(peer_id = 0) ?(router_id = "10.0.0.2") ?local_pref prefix nh =
    match
      Bgp.Rib.announce rib (pfx prefix) (route ~peer_id ~router_id (attrs ?local_pref nh))
    with
    | Some change -> Supercharger.Algorithm.process_change algo change
    | None -> None
  in
  let withdraw ~peer_id prefix =
    match Bgp.Rib.withdraw rib (pfx prefix) ~peer_id with
    | Some change -> Supercharger.Algorithm.process_change algo change
    | None -> None
  in
  (groups, rib, algo, feed, withdraw)

let algorithm_tests =
  [
    Alcotest.test_case "single candidate announces the real next hop" `Quick
      (fun () ->
        let _, _, _, feed, _ = make_algo () in
        match feed "1.0.0.0/24" "10.0.0.2" with
        | Some (Supercharger.Algorithm.Announce (_, a)) ->
          Alcotest.(check string) "real nh" "10.0.0.2"
            (Net.Ipv4.to_string a.Bgp.Attributes.next_hop)
        | _ -> Alcotest.fail "expected announce");
    Alcotest.test_case "second candidate rewrites to a VNH" `Quick (fun () ->
        let groups, _, _, feed, _ = make_algo () in
        ignore (feed ~peer_id:0 ~local_pref:200 "1.0.0.0/24" "10.0.0.2");
        match feed ~peer_id:1 ~router_id:"10.0.0.3" ~local_pref:100 "1.0.0.0/24" "10.0.0.3" with
        | Some (Supercharger.Algorithm.Announce (_, a)) ->
          Alcotest.(check bool) "vnh used" true
            (Supercharger.Backup_group.find_by_vnh groups a.Bgp.Attributes.next_hop <> None);
          (match Supercharger.Backup_group.find_by_vnh groups a.Bgp.Attributes.next_hop with
          | Some b ->
            Alcotest.(check (list string)) "group order" ["10.0.0.2"; "10.0.0.3"]
              (List.map Net.Ipv4.to_string b.next_hops)
          | None -> Alcotest.fail "no binding")
        | _ -> Alcotest.fail "expected announce");
    Alcotest.test_case "prefixes sharing the backup-group share the VNH" `Quick
      (fun () ->
        let _, _, _, feed, _ = make_algo () in
        ignore (feed ~peer_id:0 ~local_pref:200 "1.0.0.0/24" "10.0.0.2");
        let first = feed ~peer_id:1 ~router_id:"10.0.0.3" ~local_pref:100 "1.0.0.0/24" "10.0.0.3" in
        ignore (feed ~peer_id:0 ~local_pref:200 "2.0.0.0/24" "10.0.0.2");
        let second = feed ~peer_id:1 ~router_id:"10.0.0.3" ~local_pref:100 "2.0.0.0/24" "10.0.0.3" in
        match first, second with
        | Some (Supercharger.Algorithm.Announce (_, a1)), Some (Supercharger.Algorithm.Announce (_, a2)) ->
          Alcotest.(check string) "same vnh"
            (Net.Ipv4.to_string a1.Bgp.Attributes.next_hop)
            (Net.Ipv4.to_string a2.Bgp.Attributes.next_hop)
        | _ -> Alcotest.fail "expected two announces");
    Alcotest.test_case "losing the backup reverts to the real next hop" `Quick
      (fun () ->
        let _, _, _, feed, withdraw = make_algo () in
        ignore (feed ~peer_id:0 ~local_pref:200 "1.0.0.0/24" "10.0.0.2");
        ignore (feed ~peer_id:1 ~router_id:"10.0.0.3" ~local_pref:100 "1.0.0.0/24" "10.0.0.3");
        match withdraw ~peer_id:1 "1.0.0.0/24" with
        | Some (Supercharger.Algorithm.Announce (_, a)) ->
          Alcotest.(check string) "back to real" "10.0.0.2"
            (Net.Ipv4.to_string a.Bgp.Attributes.next_hop)
        | _ -> Alcotest.fail "expected announce");
    Alcotest.test_case "losing everything withdraws" `Quick (fun () ->
        let _, _, _, feed, withdraw = make_algo () in
        ignore (feed "1.0.0.0/24" "10.0.0.2");
        match withdraw ~peer_id:0 "1.0.0.0/24" with
        | Some (Supercharger.Algorithm.Withdraw p) ->
          Alcotest.(check string) "prefix" "1.0.0.0/24" (Net.Prefix.to_string p)
        | _ -> Alcotest.fail "expected withdraw");
    Alcotest.test_case "withdraw of an unannounced prefix emits nothing" `Quick
      (fun () ->
        let _, rib, algo, _, _ = make_algo () in
        (* A change that leaves the candidate list empty on both sides. *)
        let change = { Bgp.Rib.prefix = pfx "9.0.0.0/24"; before = []; after = [] } in
        ignore rib;
        Alcotest.(check bool) "silent" true
          (Supercharger.Algorithm.process_change algo change = None));
    Alcotest.test_case "identical re-announcement is suppressed" `Quick (fun () ->
        let _, _, _, feed, _ = make_algo () in
        ignore (feed "1.0.0.0/24" "10.0.0.2");
        Alcotest.(check bool) "suppressed" true (feed "1.0.0.0/24" "10.0.0.2" = None));
    Alcotest.test_case "backup change allocates a new VNH" `Quick (fun () ->
        let groups, _, _, feed, withdraw = make_algo () in
        ignore (feed ~peer_id:0 ~local_pref:200 "1.0.0.0/24" "10.0.0.2");
        ignore (feed ~peer_id:1 ~router_id:"10.0.0.3" ~local_pref:100 "1.0.0.0/24" "10.0.0.3");
        ignore (feed ~peer_id:2 ~router_id:"10.0.0.4" ~local_pref:50 "1.0.0.0/24" "10.0.0.4");
        (* Backup is .3; when .3 disappears the group becomes (.2,.4). *)
        match withdraw ~peer_id:1 "1.0.0.0/24" with
        | Some (Supercharger.Algorithm.Announce (_, a)) ->
          (match Supercharger.Backup_group.find_by_vnh groups a.Bgp.Attributes.next_hop with
          | Some b ->
            Alcotest.(check (list string)) "new tuple" ["10.0.0.2"; "10.0.0.4"]
              (List.map Net.Ipv4.to_string b.next_hops);
            Alcotest.(check int) "two groups exist" 2 (Supercharger.Backup_group.count groups)
          | None -> Alcotest.fail "not a vnh")
        | _ -> Alcotest.fail "expected announce");
    Alcotest.test_case "announced_count tracks state" `Quick (fun () ->
        let _, _, algo, feed, withdraw = make_algo () in
        ignore (feed "1.0.0.0/24" "10.0.0.2");
        ignore (feed "2.0.0.0/24" "10.0.0.2");
        Alcotest.(check int) "two" 2 (Supercharger.Algorithm.announced_count algo);
        ignore (withdraw ~peer_id:0 "1.0.0.0/24");
        Alcotest.(check int) "one" 1 (Supercharger.Algorithm.announced_count algo));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"online algorithm agrees with offline recomputation"
         ~count:100
         QCheck.(small_list (pair (0 -- 2) (option (0 -- 2))))
         (fun ops ->
           (* Random announce/withdraw streams over three peers and three
              prefixes; afterwards the algorithm's last-announced state
              must equal what a from-scratch pass over the final RIB
              would produce. *)
           let groups = make_groups () in
           let rib = Bgp.Rib.create () in
           let algo = Supercharger.Algorithm.create groups in
           let prefixes = [|"1.0.0.0/24"; "2.0.0.0/24"; "3.0.0.0/24"|] in
           List.iteri
             (fun i (peer_id, action) ->
               let prefix = pfx prefixes.(i mod 3) in
               let change =
                 match action with
                 | Some lp_idx ->
                   Bgp.Rib.announce rib prefix
                     (route ~peer_id
                        ~router_id:(Fmt.str "10.0.0.%d" (peer_id + 2))
                        (attrs ~local_pref:((lp_idx * 50) + 100)
                           (Fmt.str "10.0.0.%d" (peer_id + 2))))
                 | None -> Bgp.Rib.withdraw rib prefix ~peer_id
               in
               match change with
               | Some c -> ignore (Supercharger.Algorithm.process_change algo c)
               | None -> ())
             ops;
           Array.for_all
             (fun p ->
               let prefix = pfx p in
               let expected =
                 match Bgp.Rib.ordered rib prefix with
                 | [] -> None
                 | (best : Bgp.Route.t) :: _ as ranked ->
                   let nhs =
                     List.sort_uniq Net.Ipv4.compare
                       (List.map Bgp.Route.next_hop ranked)
                   in
                   if List.length nhs <= 1 then Some best.attrs.Bgp.Attributes.next_hop
                   else
                     (* The VNH the algorithm must have used. *)
                     Option.map
                       (fun (b : Supercharger.Backup_group.binding) -> b.vnh)
                       (Supercharger.Backup_group.find groups
                          (List.map Bgp.Route.next_hop ranked))
               in
               let got =
                 Option.map
                   (fun (a : Bgp.Attributes.t) -> a.Bgp.Attributes.next_hop)
                   (Supercharger.Algorithm.last_announced algo prefix)
               in
               Option.equal Net.Ipv4.equal expected got)
             prefixes));
  ]

let arp_responder_tests =
  [
    Alcotest.test_case "replies for a VNH with the VMAC" `Quick (fun () ->
        let groups = make_groups () in
        let b = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.3"] in
        let req =
          Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01") ~sender_ip:(ip "10.0.0.1")
            ~target_ip:b.vnh
        in
        match Supercharger.Arp_responder.handle groups req with
        | Supercharger.Arp_responder.Reply r ->
          Alcotest.(check string) "vmac" (Net.Mac.to_string b.vmac)
            (Net.Mac.to_string r.Net.Arp.sender_mac);
          Alcotest.(check string) "addressed back" "00:aa:00:00:00:01"
            (Net.Mac.to_string r.Net.Arp.target_mac)
        | _ -> Alcotest.fail "expected reply");
    Alcotest.test_case "floods requests for unknown targets" `Quick (fun () ->
        let groups = make_groups () in
        let req =
          Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01") ~sender_ip:(ip "10.0.0.1")
            ~target_ip:(ip "10.0.0.2")
        in
        Alcotest.(check bool) "flood" true
          (Supercharger.Arp_responder.handle groups req = Supercharger.Arp_responder.Flood));
    Alcotest.test_case "ignores replies" `Quick (fun () ->
        let groups = make_groups () in
        let reply =
          Net.Arp.reply
            (Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
               ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.0.0.2"))
            ~sender_mac:(mac "00:bb:00:00:00:02")
        in
        Alcotest.(check bool) "ignore" true
          (Supercharger.Arp_responder.handle groups reply = Supercharger.Arp_responder.Ignore));
    Alcotest.test_case "floods for an unallocated address of the VNH pool" `Quick
      (fun () ->
        (* In-pool but never handed out: the responder must not claim
           it, or the router would blackhole traffic on a ghost MAC. *)
        let groups = make_groups () in
        ignore
          (Supercharger.Backup_group.find_or_create groups
             [ip "10.0.0.2"; ip "10.0.0.3"]);
        let req =
          Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
            ~sender_ip:(ip "10.0.0.1") ~target_ip:(ip "10.199.0.250")
        in
        Alcotest.(check bool) "flood" true
          (Supercharger.Arp_responder.handle groups req
          = Supercharger.Arp_responder.Flood));
    Alcotest.test_case "re-query after GC floods instead of replying stale" `Quick
      (fun () ->
        (* The controller destroys an idle group once its linger expires;
           a router re-querying the dead VNH afterwards must get a flood
           (nobody owns it), never the recycled VMAC. *)
        let groups = make_groups () in
        let b =
          Supercharger.Backup_group.find_or_create groups
            [ip "10.0.0.2"; ip "10.0.0.3"]
        in
        Supercharger.Backup_group.acquire groups b;
        Supercharger.Backup_group.release groups b;
        Alcotest.(check bool) "destroyed" true
          (Supercharger.Backup_group.destroy groups b);
        let req =
          Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
            ~sender_ip:(ip "10.0.0.1") ~target_ip:b.vnh
        in
        Alcotest.(check bool) "flood after GC" true
          (Supercharger.Arp_responder.handle groups req
          = Supercharger.Arp_responder.Flood));
    Alcotest.test_case "duplicate ARP for a recycled VNH binds the new group"
      `Quick (fun () ->
        (* Destroy a group, let a different next-hop set recycle its
           (VNH, VMAC) pair, then ask twice: both replies must carry the
           recycled VMAC and the registry must resolve the VNH to the
           NEW membership — a stale binding here would send traffic to
           the dead group's peers. *)
        let groups = make_groups () in
        let old =
          Supercharger.Backup_group.find_or_create groups
            [ip "10.0.0.2"; ip "10.0.0.3"]
        in
        Supercharger.Backup_group.acquire groups old;
        Supercharger.Backup_group.release groups old;
        Alcotest.(check bool) "destroyed" true
          (Supercharger.Backup_group.destroy groups old);
        let fresh =
          Supercharger.Backup_group.find_or_create groups
            [ip "10.0.0.4"; ip "10.0.0.5"]
        in
        Alcotest.(check string) "vnh recycled (FIFO)"
          (Net.Ipv4.to_string old.vnh) (Net.Ipv4.to_string fresh.vnh);
        Alcotest.(check string) "vmac recycled with it"
          (Net.Mac.to_string old.vmac) (Net.Mac.to_string fresh.vmac);
        let req =
          Net.Arp.request ~sender_mac:(mac "00:aa:00:00:00:01")
            ~sender_ip:(ip "10.0.0.1") ~target_ip:fresh.vnh
        in
        let answer () =
          match Supercharger.Arp_responder.handle groups req with
          | Supercharger.Arp_responder.Reply r ->
            Net.Mac.to_string r.Net.Arp.sender_mac
          | _ -> Alcotest.fail "expected a reply for the recycled VNH"
        in
        Alcotest.(check string) "first query" (Net.Mac.to_string fresh.vmac)
          (answer ());
        Alcotest.(check string) "duplicate query agrees"
          (Net.Mac.to_string fresh.vmac) (answer ());
        match Supercharger.Backup_group.find_by_vnh groups fresh.vnh with
        | Some b ->
          Alcotest.(check (list string)) "vnh resolves to the new members"
            ["10.0.0.4"; "10.0.0.5"]
            (List.map Net.Ipv4.to_string b.next_hops)
        | None -> Alcotest.fail "recycled vnh unknown to the registry");
  ]

let peer_info name port =
  {
    Supercharger.Provisioner.pi_ip = ip name;
    pi_mac = mac (Fmt.str "00:bb:00:00:00:0%d" port);
    pi_port = port;
  }

let provisioner_tests =
  [
    Alcotest.test_case "install points at the first alive member" `Quick (fun () ->
        let sent = ref [] in
        let p = Supercharger.Provisioner.create ~send:(fun m -> sent := m :: !sent) () in
        Supercharger.Provisioner.declare_peer p (peer_info "10.0.0.2" 2);
        Supercharger.Provisioner.declare_peer p (peer_info "10.0.0.3" 3);
        let groups = make_groups () in
        let b = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.3"] in
        Supercharger.Provisioner.install_group p b;
        Alcotest.(check (option string)) "selected primary" (Some "10.0.0.2")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected p b));
        match !sent with
        | [Openflow.Message.Flow_mod fm] ->
          Alcotest.(check bool) "matches vmac" true
            (Openflow.Ofmatch.equal fm.Openflow.Flow_table.fm_match
               (Openflow.Ofmatch.dl_dst b.vmac));
          Alcotest.(check bool) "rewrites to primary" true
            (List.exists
               (Openflow.Action.equal (Openflow.Action.Set_dl_dst (mac "00:bb:00:00:00:02")))
               fm.Openflow.Flow_table.fm_actions)
        | _ -> Alcotest.fail "expected one flow mod");
    Alcotest.test_case "Listing 2: fail_peer rewrites affected groups once" `Quick
      (fun () ->
        let sent = ref 0 in
        let p = Supercharger.Provisioner.create ~send:(fun _ -> incr sent) () in
        List.iter
          (fun (name, port) -> Supercharger.Provisioner.declare_peer p (peer_info name port))
          [("10.0.0.2", 2); ("10.0.0.3", 3); ("10.0.0.4", 4)];
        let groups = make_groups () in
        let b1 = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.3"] in
        let b2 = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.4"] in
        let b3 = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.3"; ip "10.0.0.2"] in
        List.iter (Supercharger.Provisioner.install_group p) [b1; b2; b3];
        sent := 0;
        let rewritten =
          Supercharger.Provisioner.fail_peer p (ip "10.0.0.2")
            (Supercharger.Backup_group.with_member groups (ip "10.0.0.2"))
        in
        (* b1 and b2 pointed at .2 and must be rewritten; b3 pointed at
           .3 and must not. *)
        Alcotest.(check int) "two rewrites" 2 rewritten;
        Alcotest.(check int) "two messages" 2 !sent;
        Alcotest.(check (option string)) "b1 now backup" (Some "10.0.0.3")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected p b1));
        Alcotest.(check (option string)) "b2 now backup" (Some "10.0.0.4")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected p b2));
        Alcotest.(check (option string)) "b3 untouched" (Some "10.0.0.3")
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected p b3)));
    Alcotest.test_case "all members dead installs a drop rule" `Quick (fun () ->
        let last = ref None in
        let p = Supercharger.Provisioner.create ~send:(fun m -> last := Some m) () in
        Supercharger.Provisioner.declare_peer p (peer_info "10.0.0.2" 2);
        Supercharger.Provisioner.declare_peer p (peer_info "10.0.0.3" 3);
        let groups = make_groups () in
        let b = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.3"] in
        Supercharger.Provisioner.install_group p b;
        ignore (Supercharger.Provisioner.fail_peer p (ip "10.0.0.2") [b]);
        ignore (Supercharger.Provisioner.fail_peer p (ip "10.0.0.3") [b]);
        (match !last with
        | Some (Openflow.Message.Flow_mod fm) ->
          Alcotest.(check (list int)) "drop" []
            (List.filter_map
               (function Openflow.Action.Output p -> Some p | _ -> None)
               fm.Openflow.Flow_table.fm_actions)
        | _ -> Alcotest.fail "expected flow mod");
        Alcotest.(check (option string)) "nothing selected" None
          (Option.map Net.Ipv4.to_string (Supercharger.Provisioner.selected p b)));
    Alcotest.test_case "revive_peer makes it eligible again" `Quick (fun () ->
        let p = Supercharger.Provisioner.create ~send:(fun _ -> ()) () in
        Supercharger.Provisioner.declare_peer p (peer_info "10.0.0.2" 2);
        ignore (Supercharger.Provisioner.fail_peer p (ip "10.0.0.2") []);
        Alcotest.(check bool) "dead" false (Supercharger.Provisioner.is_alive p (ip "10.0.0.2"));
        Supercharger.Provisioner.revive_peer p (ip "10.0.0.2");
        Alcotest.(check bool) "alive" true (Supercharger.Provisioner.is_alive p (ip "10.0.0.2")));
    Alcotest.test_case "undeclared peer is rejected" `Quick (fun () ->
        let p = Supercharger.Provisioner.create ~send:(fun _ -> ()) () in
        let groups = make_groups () in
        let b = Supercharger.Backup_group.find_or_create groups [ip "10.0.0.2"; ip "10.0.0.3"] in
        Alcotest.(check bool) "raises" true
          (try
             Supercharger.Provisioner.install_group p b;
             false
           with Invalid_argument _ -> true));
  ]


(* --- FIB cache (S1: switch as a table extension) ------------------------ *)

let cache_peer octet port =
  {
    Supercharger.Provisioner.pi_ip = ip (Fmt.str "10.0.0.%d" octet);
    pi_mac = mac (Fmt.str "00:bb:00:00:00:0%d" octet);
    pi_port = port;
  }

let make_cache ?aggregate_len () =
  let table = Openflow.Flow_table.create () in
  let cache =
    Supercharger.Fib_cache.create ?aggregate_len
      ~allocator:(Supercharger.Vnh.create ())
      ~send:(function
        | Openflow.Message.Flow_mod fm -> Openflow.Flow_table.apply table fm
        | _ -> ())
      ()
  in
  Supercharger.Fib_cache.declare_peer cache (cache_peer 2 2);
  Supercharger.Fib_cache.declare_peer cache (cache_peer 3 3);
  (cache, table)

let switch_port_for table cache dst =
  let frame =
    Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01")
      ~dst:(Supercharger.Fib_cache.vmac cache)
      (Net.Ethernet.Ipv4
         (Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst ~src_port:1 ~dst_port:2 "x"))
  in
  match Openflow.Flow_table.lookup table { Openflow.Ofmatch.arrival_port = 0; frame } with
  | Some entry ->
    List.find_map
      (function Openflow.Action.Output p -> Some p | _ -> None)
      entry.Openflow.Flow_table.actions
  | None -> None

let fib_cache_tests =
  [
    Alcotest.test_case "first specific announces its aggregate" `Quick (fun () ->
        let cache, _ = make_cache () in
        (match Supercharger.Fib_cache.route cache (pfx "1.2.3.0/24") (Some (ip "10.0.0.2")) with
        | [Supercharger.Fib_cache.Announce_aggregate agg] ->
          Alcotest.(check string) "cover" "1.0.0.0/8" (Net.Prefix.to_string agg)
        | _ -> Alcotest.fail "expected one announce");
        (* Second specific under the same cover is silent. *)
        Alcotest.(check int) "silent" 0
          (List.length
             (Supercharger.Fib_cache.route cache (pfx "1.9.0.0/16") (Some (ip "10.0.0.3")))));
    Alcotest.test_case "last removal withdraws the aggregate" `Quick (fun () ->
        let cache, _ = make_cache () in
        ignore (Supercharger.Fib_cache.route cache (pfx "1.2.3.0/24") (Some (ip "10.0.0.2")));
        ignore (Supercharger.Fib_cache.route cache (pfx "1.9.0.0/16") (Some (ip "10.0.0.3")));
        Alcotest.(check int) "still held" 0
          (List.length (Supercharger.Fib_cache.route cache (pfx "1.2.3.0/24") None));
        match Supercharger.Fib_cache.route cache (pfx "1.9.0.0/16") None with
        | [Supercharger.Fib_cache.Withdraw_aggregate agg] ->
          Alcotest.(check string) "cover" "1.0.0.0/8" (Net.Prefix.to_string agg)
        | _ -> Alcotest.fail "expected one withdraw");
    Alcotest.test_case "switch rules implement longest-prefix match" `Quick (fun () ->
        let cache, table = make_cache () in
        ignore (Supercharger.Fib_cache.route cache (pfx "1.0.0.0/8") (Some (ip "10.0.0.2")));
        ignore (Supercharger.Fib_cache.route cache (pfx "1.2.0.0/16") (Some (ip "10.0.0.3")));
        Alcotest.(check (option int)) "specific wins" (Some 3)
          (switch_port_for table cache (ip "1.2.9.9"));
        Alcotest.(check (option int)) "covering entry" (Some 2)
          (switch_port_for table cache (ip "1.3.0.1"));
        Alcotest.(check (option int)) "outside" None
          (switch_port_for table cache (ip "2.0.0.1"));
        Alcotest.(check (option string)) "resolve agrees" (Some "10.0.0.3")
          (Option.map Net.Ipv4.to_string (Supercharger.Fib_cache.resolve cache (ip "1.2.9.9"))));
    Alcotest.test_case "re-routing a specific keeps the refcounts right" `Quick
      (fun () ->
        let cache, table = make_cache () in
        ignore (Supercharger.Fib_cache.route cache (pfx "1.2.0.0/16") (Some (ip "10.0.0.2")));
        Alcotest.(check int) "silent re-route" 0
          (List.length
             (Supercharger.Fib_cache.route cache (pfx "1.2.0.0/16") (Some (ip "10.0.0.3"))));
        Alcotest.(check (option int)) "rule updated" (Some 3)
          (switch_port_for table cache (ip "1.2.0.1"));
        Alcotest.(check int) "one aggregate" 1 (Supercharger.Fib_cache.aggregates cache));
    Alcotest.test_case "re-route reaches a live switch as a rule update" `Quick
      (fun () ->
        (* End to end through the real control channel: the cache's
           flow mods ride a connected controller into a Switch, and a
           re-route must leave one rule behind, now forwarding to the
           new peer's MAC and port. The stale-rule bug this guards
           against sent a second Add instead of a Modify_strict. *)
        let e = Sim.Engine.create () in
        let sw = Openflow.Switch.create e ~n_ports:4 () in
        let send = Openflow.Switch.connect_controller sw (fun _ -> ()) in
        let cache =
          Supercharger.Fib_cache.create
            ~allocator:(Supercharger.Vnh.create ())
            ~send ()
        in
        Supercharger.Fib_cache.declare_peer cache (cache_peer 2 2);
        Supercharger.Fib_cache.declare_peer cache (cache_peer 3 3);
        ignore (Supercharger.Fib_cache.route cache (pfx "1.2.0.0/16") (Some (ip "10.0.0.2")));
        Sim.Engine.run e;
        let size_after_first = Openflow.Flow_table.size (Openflow.Switch.table sw) in
        ignore (Supercharger.Fib_cache.route cache (pfx "1.2.0.0/16") (Some (ip "10.0.0.3")));
        Sim.Engine.run e;
        Alcotest.(check int) "table cardinality unchanged" size_after_first
          (Openflow.Flow_table.size (Openflow.Switch.table sw));
        let frame =
          Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01")
            ~dst:(Supercharger.Fib_cache.vmac cache)
            (Net.Ethernet.Ipv4
               (Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst:(ip "1.2.0.1")
                  ~src_port:1 ~dst_port:2 "x"))
        in
        match Openflow.Switch.resolve sw ~port:0 frame with
        | Openflow.Switch.Forward (rewritten, ports) ->
          Alcotest.(check (list int)) "new peer's port" [3] ports;
          Alcotest.(check string) "new peer's mac" "00:bb:00:00:00:03"
            (Net.Mac.to_string rewritten.Net.Ethernet.dst)
        | Openflow.Switch.Punt | Openflow.Switch.Miss
        | Openflow.Switch.Blackhole ->
          Alcotest.fail "expected the packet to forward");
    Alcotest.test_case "compression factor on an internet-shaped table" `Quick
      (fun () ->
        let cache, _ = make_cache () in
        let entries = Workloads.Rib_gen.generate ~seed:5L ~count:3_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            ignore (Supercharger.Fib_cache.route cache e.prefix (Some (ip "10.0.0.2"))))
          entries;
        Alcotest.(check int) "specifics" 3_000 (Supercharger.Fib_cache.specifics cache);
        Alcotest.(check bool)
          (Fmt.str "compression > 50x (%.0f)" (Supercharger.Fib_cache.compression_factor cache))
          true
          (Supercharger.Fib_cache.compression_factor cache > 50.0));
    Alcotest.test_case "short prefixes are their own aggregate" `Quick (fun () ->
        let cache, _ = make_cache () in
        match Supercharger.Fib_cache.route cache (pfx "9.0.0.0/6") (Some (ip "10.0.0.2")) with
        | [Supercharger.Fib_cache.Announce_aggregate agg] ->
          Alcotest.(check string) "itself" "8.0.0.0/6" (Net.Prefix.to_string agg)
        | _ -> Alcotest.fail "expected announce");
    Alcotest.test_case "undeclared peer rejected" `Quick (fun () ->
        let cache, _ = make_cache () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Supercharger.Fib_cache.route cache (pfx "1.0.0.0/24") (Some (ip "10.0.0.9")));
             false
           with Invalid_argument _ -> true));
  ]

(* --- load balancer (S1: overriding the router's weak hash) -------------- *)

let make_lb () =
  let table = Openflow.Flow_table.create () in
  let lb =
    Supercharger.Load_balancer.create
      ~allocator:(Supercharger.Vnh.create ())
      ~send:(function
        | Openflow.Message.Flow_mod fm -> Openflow.Flow_table.apply table fm
        | _ -> ())
      ()
  in
  List.iter (Supercharger.Load_balancer.add_target lb) [cache_peer 2 2; cache_peer 3 3];
  (lb, table)

let lb_key i =
  {
    Supercharger.Load_balancer.fk_src = ip "192.168.0.100";
    fk_dst = ip (Fmt.str "1.0.%d.16" i);
    (* all destinations share low byte 16: the static hash collapses *)
    fk_src_port = 5001;
    fk_dst_port = 9000 + i;
  }

let lb_tests =
  [
    Alcotest.test_case "least-loaded assignment balances perfectly" `Quick (fun () ->
        let lb, _ = make_lb () in
        for i = 0 to 9 do
          ignore (Supercharger.Load_balancer.assign lb (lb_key i))
        done;
        Alcotest.(check int) "five each" 5 (Supercharger.Load_balancer.load lb (ip "10.0.0.2"));
        Alcotest.(check int) "five each" 5 (Supercharger.Load_balancer.load lb (ip "10.0.0.3"));
        Alcotest.(check (float 0.001)) "imbalance 1.0" 1.0
          (Supercharger.Load_balancer.imbalance lb));
    Alcotest.test_case "assignment is sticky" `Quick (fun () ->
        let lb, _ = make_lb () in
        let first = Supercharger.Load_balancer.assign lb (lb_key 0) in
        let again = Supercharger.Load_balancer.assign lb (lb_key 0) in
        Alcotest.(check string) "same" (Net.Ipv4.to_string first) (Net.Ipv4.to_string again);
        Alcotest.(check int) "counted once" 1
          (Supercharger.Load_balancer.load lb first));
    Alcotest.test_case "the static hash collapses skewed traffic" `Quick (fun () ->
        (* Same low destination byte -> every flow lands in one bucket. *)
        let buckets =
          List.init 10 (fun i ->
              Supercharger.Load_balancer.static_hash ~n_targets:2 (lb_key i))
        in
        Alcotest.(check (list int)) "all same bucket" (List.init 10 (fun _ -> 0)) buckets);
    Alcotest.test_case "per-flow rule matches only its flow" `Quick (fun () ->
        let lb, table = make_lb () in
        let target = Supercharger.Load_balancer.assign lb (lb_key 0) in
        let frame dst_port =
          Net.Ethernet.make ~src:(mac "00:aa:00:00:00:01")
            ~dst:(Supercharger.Load_balancer.vmac lb)
            (Net.Ethernet.Ipv4
               (Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst:(ip "1.0.0.16")
                  ~src_port:5001 ~dst_port "x"))
        in
        let port_for f =
          match
            Openflow.Flow_table.lookup table { Openflow.Ofmatch.arrival_port = 0; frame = f }
          with
          | Some e -> e.Openflow.Flow_table.priority
          | None -> -1
        in
        Alcotest.(check int) "pinned flow hits the exact rule" 300 (port_for (frame 9000));
        (* A different flow falls to the default rule. *)
        Alcotest.(check int) "other flow hits default" 299 (port_for (frame 9999));
        Alcotest.(check bool) "assign returned a target" true
          (List.mem (Net.Ipv4.to_string target) ["10.0.0.2"; "10.0.0.3"]));
    Alcotest.test_case "no targets rejected" `Quick (fun () ->
        let lb =
          Supercharger.Load_balancer.create
            ~allocator:(Supercharger.Vnh.create ())
            ~send:(fun _ -> ())
            ()
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Supercharger.Load_balancer.assign lb (lb_key 0));
             false
           with Invalid_argument _ -> true));
  ]

let suite =
  [
    ("supercharger.vnh", vnh_tests);
    ("supercharger.backup_group", backup_group_tests);
    ("supercharger.algorithm", algorithm_tests);
    ("supercharger.arp_responder", arp_responder_tests);
    ("supercharger.provisioner", provisioner_tests);
    ("supercharger.fib_cache", fib_cache_tests);
    ("supercharger.load_balancer", lb_tests);
  ]
