(* Unit and property tests for the two other §1 supercharging
   applications that ride the VNH/VMAC machinery: the FIB cache
   (aggregates towards the router, specifics in the switch) and the
   per-flow load balancer. Both are exercised standalone against a
   captured flow-mod sink — no switch, no clock. *)

open Supercharger

let ip = Net.Ipv4.of_string_exn
let pfx = Net.Prefix.v

let peer i =
  {
    Provisioner.pi_ip = ip (Fmt.str "10.0.0.%d" (2 + i));
    pi_mac = Net.Mac.of_int64 (Int64.of_int (0xBB_0000_0000 + 2 + i));
    pi_port = 1 + i;
  }

let peer_ip i = (peer i).Provisioner.pi_ip

(* --- FIB cache --------------------------------------------------------- *)

let make_fib ?(n_peers = 3) () =
  let sent = ref [] in
  let fib =
    Fib_cache.create ~allocator:(Vnh.create ()) ~send:(fun m -> sent := m :: !sent) ()
  in
  for i = 0 to n_peers - 1 do
    Fib_cache.declare_peer fib (peer i)
  done;
  (fib, sent)

let emissions =
  let pp ppf = function
    | Fib_cache.Announce_aggregate p -> Fmt.pf ppf "announce %a" Net.Prefix.pp p
    | Fib_cache.Withdraw_aggregate p -> Fmt.pf ppf "withdraw %a" Net.Prefix.pp p
  in
  Alcotest.testable (Fmt.list pp) ( = )

let fib_tests =
  [
    Alcotest.test_case "first specific announces the cover, last one retracts it"
      `Quick (fun () ->
        let fib, _ = make_fib () in
        Alcotest.check emissions "first specific"
          [Fib_cache.Announce_aggregate (pfx "1.0.0.0/8")]
          (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 0)));
        Alcotest.check emissions "second specific under the same cover" []
          (Fib_cache.route fib (pfx "1.9.0.0/16") (Some (peer_ip 1)));
        Alcotest.(check int) "two specifics" 2 (Fib_cache.specifics fib);
        Alcotest.(check int) "one aggregate" 1 (Fib_cache.aggregates fib);
        Alcotest.check emissions "removing one keeps the cover" []
          (Fib_cache.route fib (pfx "1.2.3.0/24") None);
        Alcotest.check emissions "removing the last withdraws the cover"
          [Fib_cache.Withdraw_aggregate (pfx "1.0.0.0/8")]
          (Fib_cache.route fib (pfx "1.9.0.0/16") None);
        Alcotest.(check int) "empty" 0 (Fib_cache.specifics fib));
    Alcotest.test_case "resolution is longest-prefix match over the specifics"
      `Quick (fun () ->
        let fib, _ = make_fib () in
        ignore (Fib_cache.route fib (pfx "10.0.0.0/8") (Some (peer_ip 0)));
        ignore (Fib_cache.route fib (pfx "10.1.0.0/16") (Some (peer_ip 1)));
        ignore (Fib_cache.route fib (pfx "10.1.2.0/24") (Some (peer_ip 2)));
        let resolve a = Fib_cache.resolve fib (ip a) in
        Alcotest.(check (option (testable Net.Ipv4.pp Net.Ipv4.equal)))
          "/24 wins" (Some (peer_ip 2)) (resolve "10.1.2.5");
        Alcotest.(check (option (testable Net.Ipv4.pp Net.Ipv4.equal)))
          "/16 next" (Some (peer_ip 1)) (resolve "10.1.9.9");
        Alcotest.(check (option (testable Net.Ipv4.pp Net.Ipv4.equal)))
          "/8 backstop" (Some (peer_ip 0)) (resolve "10.9.9.9");
        Alcotest.(check (option (testable Net.Ipv4.pp Net.Ipv4.equal)))
          "outside all covers" None (resolve "11.0.0.1"));
    Alcotest.test_case "re-pointing a specific replaces, never duplicates" `Quick
      (fun () ->
        let fib, _ = make_fib () in
        ignore (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 0)));
        Alcotest.check emissions "re-point emits nothing for the router" []
          (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 1)));
        Alcotest.(check int) "still one specific" 1 (Fib_cache.specifics fib);
        Alcotest.(check (option (testable Net.Ipv4.pp Net.Ipv4.equal)))
          "new owner" (Some (peer_ip 1))
          (Fib_cache.resolve fib (ip "1.2.3.4")));
    Alcotest.test_case "re-route is a Modify_strict, same next hop is silent"
      `Quick (fun () ->
        let fib, sent = make_fib () in
        let commands () =
          (* oldest first *)
          List.rev_map
            (function
              | Openflow.Message.Flow_mod fm -> fm.Openflow.Flow_table.command
              | _ -> Alcotest.fail "expected only flow mods")
            !sent
        in
        ignore (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 0)));
        Alcotest.(check int) "fresh route is one Add" 1 (List.length !sent);
        (* Re-announcing the same next hop must not disturb the switch:
           the rule already forwards correctly. *)
        ignore (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 0)));
        Alcotest.(check int) "same next hop sends nothing" 1 (List.length !sent);
        Alcotest.(check int) "and is not counted" 1 (Fib_cache.rules_sent fib);
        (* A genuine re-route updates the installed rule in place. *)
        ignore (Fib_cache.route fib (pfx "1.2.3.0/24") (Some (peer_ip 1)));
        (match commands () with
        | [Openflow.Flow_table.Add; Openflow.Flow_table.Modify_strict] -> ()
        | _ -> Alcotest.fail "expected Add then Modify_strict");
        Alcotest.(check int) "two rules really sent" 2 (Fib_cache.rules_sent fib);
        match List.hd !sent with
        | Openflow.Message.Flow_mod fm ->
          let out =
            List.find_map
              (function Openflow.Action.Output p -> Some p | _ -> None)
              fm.Openflow.Flow_table.fm_actions
          in
          Alcotest.(check (option int)) "modify points at the new peer"
            (Some (peer 1).Provisioner.pi_port) out
        | _ -> Alcotest.fail "expected a flow mod");
    Alcotest.test_case "undeclared peer is rejected" `Quick (fun () ->
        let fib, _ = make_fib ~n_peers:1 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Fib_cache.route fib (pfx "1.0.0.0/24") (Some (ip "9.9.9.9")));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "compression factor is #specifics / #aggregates" `Quick
      (fun () ->
        let fib, sent = make_fib () in
        for i = 0 to 15 do
          ignore
            (Fib_cache.route fib
               (pfx (Fmt.str "7.%d.0.0/16" i))
               (Some (peer_ip (i mod 3))))
        done;
        Alcotest.(check int) "one router entry" 1 (Fib_cache.aggregates fib);
        Alcotest.(check (float 1e-9)) "16x compression" 16.0
          (Fib_cache.compression_factor fib);
        (* rules_sent must equal the flow mods the switch really had to
           process: exactly one per specific, no double counting. *)
        Alcotest.(check int) "one rule per specific" 16 (Fib_cache.rules_sent fib);
        Alcotest.(check int) "counter matches the wire" (List.length !sent)
          (Fib_cache.rules_sent fib);
        (* Refreshing every route with its current next hop is free... *)
        for i = 0 to 15 do
          ignore
            (Fib_cache.route fib
               (pfx (Fmt.str "7.%d.0.0/16" i))
               (Some (peer_ip (i mod 3))))
        done;
        Alcotest.(check int) "refresh sends nothing" 16 (Fib_cache.rules_sent fib);
        (* ...while one genuine re-route costs exactly one flow mod. *)
        ignore (Fib_cache.route fib (pfx "7.0.0.0/16") (Some (peer_ip 1)));
        Alcotest.(check int) "re-route costs one" 17 (Fib_cache.rules_sent fib);
        Alcotest.(check int) "still matches the wire" (List.length !sent)
          (Fib_cache.rules_sent fib));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"fib cache == naive LPM reference" ~count:200
         QCheck.(small_list (pair (pair (0 -- 7) (0 -- 2)) (option (0 -- 2))))
         (fun ops ->
           let fib, _ = make_fib () in
           (* Model: assoc list prefix -> peer, longest match on lookup. *)
           let model = Hashtbl.create 8 in
           let prefixes =
             [| pfx "20.0.0.0/8"; pfx "20.1.0.0/16"; pfx "20.1.2.0/24";
                pfx "20.128.0.0/16"; pfx "21.0.0.0/8"; pfx "21.5.0.0/16";
                pfx "22.1.0.0/16"; pfx "22.1.99.0/24" |]
           in
           List.iter
             (fun ((pi, _), owner) ->
               let p = prefixes.(pi) in
               (match owner with
               | Some o -> Hashtbl.replace model p (peer_ip o)
               | None -> Hashtbl.remove model p);
               ignore (Fib_cache.route fib p (Option.map peer_ip owner)))
             ops;
           let naive a =
             Hashtbl.fold
               (fun p o best ->
                 if Net.Prefix.mem a p then
                   match best with
                   | Some (bp, _) when Net.Prefix.length bp >= Net.Prefix.length p ->
                     best
                   | _ -> Some (p, o)
                 else best)
               model None
             |> Option.map snd
           in
           let probes =
             [ "20.1.2.3"; "20.1.9.9"; "20.200.0.1"; "21.5.5.5"; "21.9.9.9";
               "22.1.99.1"; "22.1.1.1"; "23.0.0.1" ]
           in
           Hashtbl.length model = Fib_cache.specifics fib
           && List.for_all
                (fun a ->
                  Option.equal Net.Ipv4.equal (naive (ip a))
                    (Fib_cache.resolve fib (ip a)))
                probes));
  ]

(* --- load balancer ----------------------------------------------------- *)

let make_lb ?(n_targets = 3) () =
  let sent = ref [] in
  let lb =
    Load_balancer.create ~allocator:(Vnh.create ())
      ~send:(fun m -> sent := m :: !sent)
      ()
  in
  for i = 0 to n_targets - 1 do
    Load_balancer.add_target lb (peer i)
  done;
  (lb, sent)

let key i =
  {
    Load_balancer.fk_src = ip (Fmt.str "172.16.%d.%d" (i / 256) (i mod 256));
    fk_dst = ip "1.2.3.4";
    fk_src_port = 10000 + i;
    fk_dst_port = 53;
  }

let nh_opt = Alcotest.(option (testable Net.Ipv4.pp Net.Ipv4.equal))

let lb_tests =
  [
    Alcotest.test_case "flows spread least-loaded first" `Quick (fun () ->
        let lb, _ = make_lb ~n_targets:3 () in
        for i = 0 to 8 do
          ignore (Load_balancer.assign lb (key i))
        done;
        for t = 0 to 2 do
          Alcotest.(check int)
            (Fmt.str "target %d load" t)
            3
            (Load_balancer.load lb (peer_ip t))
        done;
        Alcotest.(check (float 1e-9)) "perfect spread" 1.0
          (Load_balancer.imbalance lb));
    Alcotest.test_case "assign is idempotent per flow" `Quick (fun () ->
        let lb, _ = make_lb () in
        let first = Load_balancer.assign lb (key 0) in
        let again = Load_balancer.assign lb (key 0) in
        Alcotest.(check bool) "same target" true (Net.Ipv4.equal first again);
        Alcotest.(check int) "counted once" 1
          (Load_balancer.load lb first);
        Alcotest.check nh_opt "recorded" (Some first)
          (Load_balancer.assignment lb (key 0)));
    Alcotest.test_case "losing a target rebalances its flows onto survivors"
      `Quick (fun () ->
        let lb, _ = make_lb ~n_targets:3 () in
        for i = 0 to 8 do
          ignore (Load_balancer.assign lb (key i))
        done;
        Load_balancer.remove_target lb (peer_ip 1);
        Alcotest.(check int) "lost target holds nothing" 0
          (Load_balancer.load lb (peer_ip 1));
        Alcotest.(check int) "every flow still pinned" 9
          (Load_balancer.load lb (peer_ip 0) + Load_balancer.load lb (peer_ip 2));
        Alcotest.(check bool) "least-loaded-first keeps the spread tight" true
          (abs (Load_balancer.load lb (peer_ip 0) - Load_balancer.load lb (peer_ip 2))
          <= 1);
        for i = 0 to 8 do
          match Load_balancer.assignment lb (key i) with
          | Some nh ->
            Alcotest.(check bool) "pinned to a survivor" true
              (not (Net.Ipv4.equal nh (peer_ip 1)))
          | None -> Alcotest.fail "flow lost its assignment"
        done);
    Alcotest.test_case "no survivors deletes every balanced flow" `Quick (fun () ->
        let lb, _ = make_lb ~n_targets:2 () in
        for i = 0 to 3 do
          ignore (Load_balancer.assign lb (key i))
        done;
        Load_balancer.remove_target lb (peer_ip 0);
        Load_balancer.remove_target lb (peer_ip 1);
        for i = 0 to 3 do
          Alcotest.check nh_opt "unpinned" None (Load_balancer.assignment lb (key i))
        done);
    Alcotest.test_case "the static hash piles skewed traffic, assign does not"
      `Quick (fun () ->
        (* Flows whose destinations share low bits — the paper's
           complaint about stateless hashes. *)
        let skewed =
          List.init 8 (fun i ->
              { Load_balancer.fk_src = ip (Fmt.str "172.16.0.%d" i);
                fk_dst = ip (Fmt.str "5.%d.0.16" i);
                fk_src_port = 1000 + i; fk_dst_port = 53 })
        in
        let buckets =
          List.sort_uniq compare
            (List.map (Load_balancer.static_hash ~n_targets:4) skewed)
        in
        Alcotest.(check int) "all eight flows hash to one bucket" 1
          (List.length buckets);
        let lb, _ = make_lb ~n_targets:4 () in
        List.iter (fun k -> ignore (Load_balancer.assign lb k)) skewed;
        Alcotest.(check (float 1e-9)) "exact rules spread them evenly" 1.0
          (Load_balancer.imbalance lb));
    Alcotest.test_case "flow keys come from UDP packets only" `Quick (fun () ->
        let udp =
          Net.Ipv4_packet.udp ~src:(ip "172.16.0.1") ~dst:(ip "1.2.3.4")
            ~src_port:1234 ~dst_port:53 "x"
        in
        (match Load_balancer.flow_key_of_packet udp with
        | Some k ->
          Alcotest.(check int) "src port" 1234 k.Load_balancer.fk_src_port;
          Alcotest.(check int) "dst port" 53 k.Load_balancer.fk_dst_port
        | None -> Alcotest.fail "UDP packet yields no flow key");
        let raw =
          Net.Ipv4_packet.make ~src:(ip "172.16.0.1") ~dst:(ip "1.2.3.4")
            (Net.Ipv4_packet.Raw { protocol = 6; body = "" })
        in
        Alcotest.(check bool) "non-UDP has no key" true
          (Load_balancer.flow_key_of_packet raw = None));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"imbalance stays within one flow of perfect"
         ~count:100
         QCheck.(pair (1 -- 4) (small_list small_nat))
         (fun (n_targets, flows) ->
           let lb, _ = make_lb ~n_targets () in
           let distinct = List.sort_uniq compare flows in
           List.iter (fun i -> ignore (Load_balancer.assign lb (key i))) distinct;
           let loads =
             List.init n_targets (fun t -> Load_balancer.load lb (peer_ip t))
           in
           let lo = List.fold_left min max_int loads
           and hi = List.fold_left max 0 loads in
           List.fold_left ( + ) 0 loads = List.length distinct
           && (distinct = [] || hi - lo <= 1)));
  ]

let suite = [("core.fib_cache", fib_tests); ("core.load_balancer", lb_tests)]
