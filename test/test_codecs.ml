(* Systematic wire-codec properties, over the whole message space of
   both binary codecs: every generated message must round-trip
   faithfully, every strict prefix of an encoding must be rejected as
   truncated, and corrupted bytes must never escape as an exception.
   (Message-specific decode tests live in test_bgp.ml /
   test_openflow.ml; these are the blanket properties.) *)

let ip = Net.Ipv4.of_string_exn
let asn = Bgp.Asn.of_int

(* --- generators -------------------------------------------------------- *)

let gen_ipv4 = QCheck.map (fun i -> Net.Ipv4.of_int32 (Int32.of_int i)) QCheck.int

let gen_prefix =
  QCheck.map
    (fun (a, len) -> Net.Prefix.make (Net.Ipv4.of_int32 (Int32.of_int a)) len)
    QCheck.(pair int (0 -- 32))

let gen_mac =
  QCheck.map
    (fun i -> Net.Mac.of_int64 (Int64.of_int (abs i land 0xFFFF_FFFF_FFFF)))
    QCheck.int

let gen_attrs =
  QCheck.map
    (fun (((nh, origin), (seq, set)), ((med, lp), comms)) ->
      Bgp.Attributes.make
        ~origin:(List.nth [Bgp.Attributes.Igp; Bgp.Attributes.Egp; Bgp.Attributes.Incomplete] origin)
        ~as_path:
          ((if seq = [] then [] else [Bgp.Attributes.Seq (List.map (fun a -> asn (abs a mod 65536)) seq)])
          @ if set = [] then [] else [Bgp.Attributes.Set (List.map (fun a -> asn (abs a mod 65536)) set)])
        ?med:(Option.map (fun m -> abs m mod 10000) med)
        ?local_pref:(Option.map (fun l -> abs l mod 10000) lp)
        ~communities:(List.map (fun (a, b) -> (abs a mod 65536, abs b mod 65536)) comms)
        ~next_hop:nh ())
    QCheck.(
      pair
        (pair (pair gen_ipv4 (0 -- 2)) (pair (small_list int) (small_list int)))
        (pair (pair (option int) (option int)) (small_list (pair int int))))

(* All four BGP message kinds, weighted towards updates. *)
let gen_bgp =
  QCheck.map
    (fun (kind, ((withdrawn, nlri), attrs), (a, b)) ->
      match kind mod 6 with
      | 0 ->
        Bgp.Message.Open
          { version = 4; asn = asn (abs a mod 65536); hold_time = abs b mod 65536;
            router_id = Net.Ipv4.of_int32 (Int32.of_int (a * 31)) }
      | 1 -> Bgp.Message.Keepalive
      | 2 ->
        Bgp.Message.Notification
          { code = 1 + (abs a mod 6); subcode = abs b mod 256;
            data = String.init (abs a mod 16) (fun i -> Char.chr (i * 17 mod 256)) }
      | _ ->
        if nlri = [] && withdrawn = [] then Bgp.Message.Keepalive
        else if nlri = [] then Bgp.Message.withdraw withdrawn
        else Bgp.Message.Update { withdrawn; attrs = Some attrs; nlri })
    QCheck.(
      triple (0 -- 5)
        (pair (pair (small_list gen_prefix) (small_list gen_prefix)) gen_attrs)
        (pair int int))

let gen_frame =
  QCheck.map
    (fun ((src, dst), ((nw_src, nw_dst), (sport, dport))) ->
      Net.Ethernet.make ~src ~dst
        (Net.Ethernet.Ipv4
           (Net.Ipv4_packet.udp ~src:nw_src ~dst:nw_dst
              ~src_port:(abs sport mod 65536) ~dst_port:(abs dport mod 65536)
              "payload")))
    QCheck.(pair (pair gen_mac gen_mac) (pair (pair gen_ipv4 gen_ipv4) (pair int int)))

let gen_ofmatch =
  QCheck.map
    (fun ((in_port, dl_dst), ((nw_dst, nw_proto), (tp_src, tp_dst))) ->
      Openflow.Ofmatch.make ?in_port ?dl_dst
        ?nw_dst:(Option.map (fun (a, l) -> Net.Prefix.make a l) nw_dst)
        ?nw_proto ?tp_src ?tp_dst
        ?dl_type:(if nw_dst <> None || nw_proto <> None then Some 0x0800 else None)
        ())
    QCheck.(
      pair
        (pair (option (0 -- 15)) (option gen_mac))
        (pair
           (pair (option (pair gen_ipv4 (0 -- 32))) (option (0 -- 255)))
           (pair (option (0 -- 65535)) (option (0 -- 65535)))))

let gen_actions =
  QCheck.map
    (fun picks ->
      List.map
        (function
          | (0, p) -> Openflow.Action.Output (abs p mod 16)
          | (1, _) -> Openflow.Action.Flood
          | (2, _) -> Openflow.Action.To_controller
          | (3, m) -> Openflow.Action.Set_dl_dst (Net.Mac.of_int64 (Int64.of_int (abs m land 0xFFFF_FFFF_FFFF)))
          | (4, m) -> Openflow.Action.Set_dl_src (Net.Mac.of_int64 (Int64.of_int (abs m land 0xFFFF_FFFF_FFFF)))
          | (5, a) -> Openflow.Action.Set_nw_dst (Net.Ipv4.of_int32 (Int32.of_int a))
          | (_, a) -> Openflow.Action.Set_nw_src (Net.Ipv4.of_int32 (Int32.of_int a)))
        picks)
    QCheck.(small_list (pair (0 -- 6) int))

let gen_of =
  QCheck.map
    (fun ((kind, xid), ((m, actions), frame)) ->
      let xid = abs xid mod 0x10000 in
      match kind mod 9 with
      | 0 -> Openflow.Message.Hello
      | 1 -> Openflow.Message.Echo_request xid
      | 2 -> Openflow.Message.Echo_reply xid
      | 3 -> Openflow.Message.Features_request
      | 4 ->
        Openflow.Message.Features_reply
          { datapath_id = Int64.of_int xid; n_ports = 1 + (xid mod 48) }
      | 5 ->
        Openflow.Message.Flow_mod
          (Openflow.Flow_table.flow_mod ~priority:(xid mod 65536)
             ~cookie:(Int64.of_int xid)
             (List.nth
                [ Openflow.Flow_table.Add; Openflow.Flow_table.Modify;
                  Openflow.Flow_table.Modify_strict; Openflow.Flow_table.Delete;
                  Openflow.Flow_table.Delete_strict ]
                (xid mod 5))
             m actions)
      | 6 -> Openflow.Message.Packet_in { in_port = xid mod 16; frame }
      | 7 -> Openflow.Message.Packet_out { actions; frame }
      | _ ->
        if xid mod 2 = 0 then Openflow.Message.Barrier_request xid
        else Openflow.Message.Barrier_reply xid)
    QCheck.(pair (pair (0 -- 8) int) (pair (pair gen_ofmatch gen_actions) gen_frame))

(* --- properties -------------------------------------------------------- *)

(* Every strict prefix of a single encoded message must come back as an
   error: the only Ok-compatible cut is the full length. *)
let all_prefixes_rejected decode raw =
  let ok = ref true in
  for k = 0 to String.length raw - 1 do
    match decode (String.sub raw 0 k) with
    | Ok _ -> ok := false
    | Error _ -> ()
  done;
  !ok

(* Corruption must surface as [Error] (or decode to something), never as
   an exception escaping the codec. *)
let corruption_is_contained decode raw pos delta =
  let b = Bytes.of_string raw in
  let pos = pos mod Bytes.length b in
  Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + 1 + (delta mod 255)) mod 256));
  match decode (Bytes.to_string b) with Ok _ | Error _ -> true

let bgp_encode msg =
  try Some (Bgp.Codec.encode msg) with Invalid_argument _ -> None

let bgp_tests =
  [
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"bgp: any message round-trips" ~count:500 gen_bgp
         (fun msg ->
           match bgp_encode msg with
           | None -> QCheck.assume_fail () (* oversized update *)
           | Some raw -> (
             match Bgp.Codec.decode_exact raw with
             | Ok msg' -> Bgp.Message.equal msg msg'
             | Error _ -> false)));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"bgp: every truncation is rejected" ~count:100
         gen_bgp (fun msg ->
           match bgp_encode msg with
           | None -> QCheck.assume_fail ()
           | Some raw -> all_prefixes_rejected Bgp.Codec.decode raw));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"bgp: corruption never raises" ~count:200
         QCheck.(triple gen_bgp small_nat small_nat)
         (fun (msg, pos, delta) ->
           match bgp_encode msg with
           | None -> QCheck.assume_fail ()
           | Some raw -> corruption_is_contained Bgp.Codec.decode raw pos delta));
    Alcotest.test_case "bgp: a chopped stream decodes up to the cut" `Quick
      (fun () ->
        let msgs =
          [ Bgp.Message.Keepalive;
            Bgp.Message.announce
              (Bgp.Attributes.make ~as_path:[Bgp.Attributes.Seq [asn 65002]]
                 ~next_hop:(ip "10.0.0.2") ())
              [Net.Prefix.v "1.0.0.0/24"];
            Bgp.Message.Keepalive ]
        in
        let stream = String.concat "" (List.map Bgp.Codec.encode msgs) in
        (* Cut inside the last keepalive: decode_all must reject the
           whole buffer rather than silently dropping the tail. *)
        match Bgp.Codec.decode_all (String.sub stream 0 (String.length stream - 5)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a chopped stream");
  ]

let of_pp_equal a b =
  String.equal
    (Fmt.str "%a" Openflow.Message.pp a)
    (Fmt.str "%a" Openflow.Message.pp b)

let of_tests =
  [
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"openflow: any message round-trips" ~count:500
         gen_of (fun msg ->
           let raw = Openflow.Codec.encode msg in
           match Openflow.Codec.decode_exact raw with
           | Ok msg' -> of_pp_equal msg msg'
           | Error _ -> false));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"openflow: every truncation is rejected" ~count:100
         gen_of (fun msg ->
           all_prefixes_rejected Openflow.Codec.decode (Openflow.Codec.encode msg)));
    Test_seed.to_alcotest
      (QCheck.Test.make ~name:"openflow: corruption never raises" ~count:200
         QCheck.(triple gen_of small_nat small_nat)
         (fun (msg, pos, delta) ->
           corruption_is_contained Openflow.Codec.decode (Openflow.Codec.encode msg)
             pos delta));
    Alcotest.test_case "openflow: decode reports bytes consumed" `Quick (fun () ->
        let raw =
          Openflow.Codec.encode Openflow.Message.Hello
          ^ Openflow.Codec.encode (Openflow.Message.Echo_request 9)
        in
        match Openflow.Codec.decode raw with
        | Ok (Openflow.Message.Hello, used) ->
          (match Openflow.Codec.decode (String.sub raw used (String.length raw - used)) with
          | Ok (Openflow.Message.Echo_request 9, _) -> ()
          | _ -> Alcotest.fail "second message lost")
        | _ -> Alcotest.fail "first message lost");
  ]

let suite = [("codec.bgp", bgp_tests); ("codec.openflow", of_tests)]
