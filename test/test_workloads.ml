(* Tests for the synthetic workload generators. *)

let rib_gen_tests =
  [
    Alcotest.test_case "prefixes are unique" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:20_000 in
        let tbl = Hashtbl.create 40_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let key = Net.Prefix.to_string e.prefix in
            if Hashtbl.mem tbl key then Alcotest.failf "duplicate %s" key;
            Hashtbl.replace tbl key ())
          entries;
        Alcotest.(check int) "count" 20_000 (Array.length entries));
    Alcotest.test_case "deterministic in the seed" `Quick (fun () ->
        let a = Workloads.Rib_gen.generate ~seed:7L ~count:1_000 in
        let b = Workloads.Rib_gen.generate ~seed:7L ~count:1_000 in
        let c = Workloads.Rib_gen.generate ~seed:8L ~count:1_000 in
        Alcotest.(check bool) "same" true (a = b);
        Alcotest.(check bool) "different" false (a = c));
    Alcotest.test_case "length mix is /24-heavy and bounded" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:20_000 in
        let count24 = ref 0 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let len = Net.Prefix.length e.prefix in
            Alcotest.(check bool) "within 16..24" true (len >= 16 && len <= 24);
            if len = 24 then incr count24)
          entries;
        let share = float_of_int !count24 /. 20_000.0 in
        Alcotest.(check bool) (Fmt.str "about half are /24 (%.2f)" share) true
          (share > 0.50 && share < 0.60));
    Alcotest.test_case "paths are non-empty and well-formed" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:1_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            Alcotest.(check bool) "path" true
              (List.length e.as_path >= 1 && List.length e.as_path <= 5))
          entries);
    Alcotest.test_case "to_updates prepends the speaker and sets the NH" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:10 in
        let updates =
          Workloads.Rib_gen.to_updates entries ~speaker_asn:(Bgp.Asn.of_int 65002)
            ~next_hop:(Net.Ipv4.of_octets 10 0 0 2)
        in
        Alcotest.(check int) "one per entry" 10 (List.length updates);
        List.iteri
          (fun i (u : Bgp.Message.update) ->
            match u.attrs with
            | Some attrs ->
              Alcotest.(check (option int)) "first as" (Some 65002)
                (Option.map Bgp.Asn.to_int (Bgp.Attributes.first_as attrs));
              Alcotest.(check string) "nh" "10.0.0.2"
                (Net.Ipv4.to_string attrs.Bgp.Attributes.next_hop);
              Alcotest.(check int) "path grew by one"
                (List.length entries.(i).Workloads.Rib_gen.as_path + 1)
                (Bgp.Attributes.as_path_length attrs)
            | None -> Alcotest.fail "no attrs")
          updates);
    Alcotest.test_case "count limit enforced" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Workloads.Rib_gen.generate ~seed:1L ~count:700_000);
             false
           with Invalid_argument _ -> true));
  ]

let feed_tests =
  [
    Alcotest.test_case "replay paces batches on the interval" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let updates =
          List.init 25 (fun i ->
              { Bgp.Message.withdrawn = [Net.Prefix.make (Net.Ipv4.of_octets 1 0 i 0) 24];
                attrs = None; nlri = [] })
        in
        let arrivals = ref [] in
        let done_at = ref None in
        Workloads.Feed.replay e ~updates ~batch:10 ~interval:(Sim.Time.of_ms 5)
          ~on_done:(fun () -> done_at := Some (Sim.Time.to_ms (Sim.Engine.now e)))
          ~send:(fun _ -> arrivals := Sim.Time.to_ms (Sim.Engine.now e) :: !arrivals)
          ();
        Sim.Engine.run e;
        Alcotest.(check int) "all sent" 25 (List.length !arrivals);
        let batches =
          List.sort_uniq Float.compare !arrivals
        in
        Alcotest.(check (list (float 0.001))) "batch times" [0.0; 5.0; 10.0] batches;
        Alcotest.(check (option (float 0.001))) "done with last batch" (Some 10.0) !done_at);
    Alcotest.test_case "replay handles an exact batch multiple" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let updates =
          List.init 20 (fun i ->
              { Bgp.Message.withdrawn = [Net.Prefix.make (Net.Ipv4.of_octets 1 0 i 0) 24];
                attrs = None; nlri = [] })
        in
        let sent = ref 0 and finished = ref false in
        Workloads.Feed.replay e ~updates ~batch:10 ~interval:(Sim.Time.of_ms 1)
          ~on_done:(fun () -> finished := true)
          ~send:(fun _ -> incr sent)
          ();
        Sim.Engine.run e;
        Alcotest.(check int) "all" 20 !sent;
        Alcotest.(check bool) "done fired once" true !finished);
    Alcotest.test_case "replay of an empty feed fires on_done" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let finished = ref false in
        Workloads.Feed.replay e ~updates:[] ~send:(fun _ -> ())
          ~on_done:(fun () -> finished := true)
          ();
        Sim.Engine.run e;
        Alcotest.(check bool) "fired" true !finished);
    Alcotest.test_case "interleave alternates and keeps tails" `Quick (fun () ->
        Alcotest.(check (list int)) "even" [1; 10; 2; 20]
          (Workloads.Feed.interleave [1; 2] [10; 20]);
        Alcotest.(check (list int)) "uneven" [1; 10; 2; 20; 30; 40]
          (Workloads.Feed.interleave [1; 2] [10; 20; 30; 40]));
  ]

let churn_tests =
  [
    Alcotest.test_case "full_table_race has every peer's full feed" `Quick (fun () ->
        let events =
          Workloads.Churn.full_table_race ~seed:1L ~count:100
            ~next_hops:[| Net.Ipv4.of_octets 10 0 0 2; Net.Ipv4.of_octets 10 0 0 3 |]
            ~asns:[| Bgp.Asn.of_int 65002; Bgp.Asn.of_int 65003 |]
        in
        Alcotest.(check int) "2 x 100" 200 (List.length events);
        let per_peer p =
          List.length (List.filter (fun (e : Workloads.Churn.event) -> e.peer = p) events)
        in
        Alcotest.(check int) "peer 0" 100 (per_peer 0);
        Alcotest.(check int) "peer 1" 100 (per_peer 1));
    Alcotest.test_case "flap alternates withdraw and re-announce" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:50 in
        let events =
          Workloads.Churn.flap ~seed:2L ~entries ~rounds:10
            ~next_hop:(Net.Ipv4.of_octets 10 0 0 2) ~asn:(Bgp.Asn.of_int 65002) ~peer:0
        in
        Alcotest.(check int) "two per round" 20 (List.length events);
        List.iteri
          (fun i (e : Workloads.Churn.event) ->
            let is_withdraw = e.update.Bgp.Message.withdrawn <> [] in
            Alcotest.(check bool) "alternates" (i mod 2 = 0) is_withdraw)
          events);
  ]

(* Statistical shape of the internet-scale generators: distributions
   within tolerance of the published IPv4 table, and bit-identical
   seed replay for the churn storms. *)
let internet_tests =
  let sample = lazy (Workloads.Rib_gen.generate_internet ~seed:3L ~count:50_000) in
  [
    Alcotest.test_case "generate_internet is unique and deterministic" `Quick
      (fun () ->
        let entries = Lazy.force sample in
        let tbl = Hashtbl.create 100_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let key = Net.Prefix.to_string e.prefix in
            if Hashtbl.mem tbl key then Alcotest.failf "duplicate %s" key;
            Hashtbl.replace tbl key ())
          entries;
        let again = Workloads.Rib_gen.generate_internet ~seed:3L ~count:1_000 in
        Array.iteri
          (fun i (e : Workloads.Rib_gen.entry) ->
            Alcotest.(check bool) "same prefix" true
              (Net.Prefix.equal e.prefix entries.(i).Workloads.Rib_gen.prefix))
          again);
    Alcotest.test_case "prefix-length histogram matches the published mix" `Quick
      (fun () ->
        let entries = Lazy.force sample in
        let n = float_of_int (Array.length entries) in
        let hist = Array.make 33 0 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let len = Net.Prefix.length e.prefix in
            Alcotest.(check bool) "within /8../24" true (len >= 8 && len <= 24);
            hist.(len) <- hist.(len) + 1)
          entries;
        let share len = float_of_int hist.(len) /. n in
        let s24 = share 24 in
        Alcotest.(check bool) (Fmt.str "/24 share %.3f in [0.57,0.62]" s24) true
          (s24 > 0.57 && s24 < 0.62);
        let band = share 22 +. share 23 in
        Alcotest.(check bool)
          (Fmt.str "/22-/23 deaggregation band %.3f in [0.20,0.26]" band)
          true
          (band > 0.20 && band < 0.26);
        let tail = ref 0.0 in
        for len = 8 to 15 do
          tail := !tail +. share len
        done;
        Alcotest.(check bool) (Fmt.str "aggregate tail %.4f < 0.01" !tail) true
          (!tail < 0.01))
    ;
    Alcotest.test_case "AS-path lengths match the collector distribution" `Quick
      (fun () ->
        let entries = Lazy.force sample in
        let n = float_of_int (Array.length entries) in
        let total = ref 0 and len4 = ref 0 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let l = List.length e.as_path in
            Alcotest.(check bool) "within 1..10" true (l >= 1 && l <= 10);
            total := !total + l;
            if l = 4 then incr len4)
          entries;
        let mean = float_of_int !total /. n in
        Alcotest.(check bool) (Fmt.str "mean %.2f in [4.0,4.8]" mean) true
          (mean > 4.0 && mean < 4.8);
        let mode_share = float_of_int !len4 /. n in
        Alcotest.(check bool)
          (Fmt.str "len-4 mode share %.3f in [0.25,0.37]" mode_share)
          true
          (mode_share > 0.25 && mode_share < 0.37));
    Alcotest.test_case "aggregates cover more-specific leaves" `Quick (fun () ->
        let entries = Lazy.force sample in
        let aggregates =
          Array.to_list entries
          |> List.filter_map (fun (e : Workloads.Rib_gen.entry) ->
                 if Net.Prefix.length e.prefix <= 16 then Some e.prefix else None)
        in
        Alcotest.(check bool) "some aggregates" true (List.length aggregates > 50);
        let covered =
          Array.fold_left
            (fun acc (e : Workloads.Rib_gen.entry) ->
              if
                Net.Prefix.length e.prefix >= 17
                && List.exists (Net.Prefix.subset e.prefix) aggregates
              then acc + 1
              else acc)
            0
            (Array.sub entries 0 5_000)
        in
        Alcotest.(check bool)
          (Fmt.str "covering pairs exist (%d in first 5k leaves)" covered)
          true (covered > 10));
    Alcotest.test_case "view_share is a skewed, floored tail" `Quick (fun () ->
        Alcotest.(check int) "peer 0 full feed" 100
          (Workloads.Rib_gen.view_share ~peers:100 0);
        let prev = ref 100 in
        for peer = 1 to 99 do
          let s = Workloads.Rib_gen.view_share ~peers:100 peer in
          Alcotest.(check bool) "monotone nonincreasing" true (s <= !prev);
          Alcotest.(check bool) "floored at 1" true (s >= 1);
          prev := s
        done;
        Alcotest.(check int) "tail floor" 1 (Workloads.Rib_gen.view_share ~peers:100 99));
    Alcotest.test_case "in_view hits its share within tolerance" `Quick (fun () ->
        let share = Workloads.Rib_gen.view_share ~peers:100 3 in
        let hits = ref 0 in
        for i = 0 to 19_999 do
          if Workloads.Rib_gen.in_view ~peer:3 ~share_pct:share i then incr hits
        done;
        let got = float_of_int !hits /. 200.0 in
        Alcotest.(check bool)
          (Fmt.str "peer 3 share %.1f%% near %d%%" got share)
          true
          (got > float_of_int share -. 1.5 && got < float_of_int share +. 1.5));
    Alcotest.test_case "storm replays bit-identically from its seed" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate_internet ~seed:5L ~count:2_000 in
        let mk seed =
          Workloads.Churn.storm ~seed ~entries ~share_pct:30
            ~next_hop:(Net.Ipv4.of_octets 10 0 0 2) ~asn:(Bgp.Asn.of_int 65002)
            ~peer:0
        in
        Alcotest.(check bool) "same seed, same storm" true (mk 11L = mk 11L);
        Alcotest.(check bool) "different seed, different storm" false
          (mk 11L = mk 12L);
        let withdraws, announces =
          List.partition
            (fun (e : Workloads.Churn.event) -> e.update.Bgp.Message.withdrawn <> [])
            (mk 11L)
        in
        Alcotest.(check int) "withdraw run then re-announce run"
          (List.length withdraws) (List.length announces));
    Alcotest.test_case "update_train is bursty, 80/20, deterministic" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate_internet ~seed:5L ~count:2_000 in
        let next_hops = Array.init 8 (fun i -> Net.Ipv4.of_octets 10 0 0 (2 + i)) in
        let asns = Array.init 8 (fun i -> Bgp.Asn.of_int (65002 + i)) in
        let mk seed =
          Workloads.Churn.update_train ~seed ~entries ~next_hops ~asns ~events:5_000
        in
        let train = mk 13L in
        Alcotest.(check int) "exact event count" 5_000 (List.length train);
        Alcotest.(check bool) "deterministic" true (train = mk 13L);
        let withdraws =
          List.length
            (List.filter
               (fun (e : Workloads.Churn.event) ->
                 e.update.Bgp.Message.withdrawn <> [])
               train)
        in
        let share = float_of_int withdraws /. 5_000.0 in
        Alcotest.(check bool) (Fmt.str "withdraw share %.2f near 0.20" share) true
          (share > 0.15 && share < 0.25));
  ]

let suite =
  [
    ("workloads.rib_gen", rib_gen_tests);
    ("workloads.internet", internet_tests);
    ("workloads.feed", feed_tests);
    ("workloads.churn", churn_tests);
  ]
