(* Tests for the multi-router topology layer: spec validation and the
   ring builder, fabric bring-up and failover over one shared
   controller, the multi-node differential checker on the acceptance
   seeds (schedules mixing extern/link faults, correlated srlg cuts and
   controller partitions), and a partial-deployment sweep smoke. *)

let prefix i = Net.Prefix.make (Net.Ipv4.of_octets 203 0 i 0) 24
let node name = { Topo.Spec.name; supercharged = false }
let link ?srlg a b cost = { Topo.Spec.ends = (a, b); cost; srlg }
let extern at asn pref = { Topo.Spec.at; asn; pref }

let rejects f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let spec_tests =
  [
    Alcotest.test_case "validation rejects bad descriptions" `Quick (fun () ->
        let nodes = Array.init 3 (fun i -> node (Fmt.str "r%d" i)) in
        let check name bad =
          Alcotest.(check bool) name true (rejects bad)
        in
        check "endpoint out of range" (fun () ->
            Topo.Spec.make ~nodes ~links:[| link 0 3 10 |] ~externs:[||]);
        check "self link" (fun () ->
            Topo.Spec.make ~nodes ~links:[| link 1 1 10 |] ~externs:[||]);
        check "duplicate link (reversed)" (fun () ->
            Topo.Spec.make ~nodes
              ~links:[| link 0 1 10; link 1 0 5 |]
              ~externs:[||]);
        check "non-positive cost" (fun () ->
            Topo.Spec.make ~nodes ~links:[| link 0 1 0 |] ~externs:[||]);
        check "extern off the map" (fun () ->
            Topo.Spec.make ~nodes ~links:[| link 0 1 10 |]
              ~externs:[| extern 9 64600 100 |]);
        check "no routers" (fun () ->
            Topo.Spec.make ~nodes:[||] ~links:[||] ~externs:[||]));
    Alcotest.test_case "ring builder shape" `Quick (fun () ->
        let s =
          Topo.Spec.ring ~routers:8
            ~externs:[ (0, 200); (4, 150); (2, 100) ]
            ~supercharged:[ 0; 3 ] ()
        in
        Alcotest.(check int) "routers" 8 (Topo.Spec.n_routers s);
        Alcotest.(check int) "externs" 3 (Topo.Spec.n_externs s);
        Alcotest.(check int) "8 ring links + 4 chords" 12
          (Array.length s.Topo.Spec.links);
        Alcotest.(check int) "srlg 0: the two conduit links at router 0" 2
          (List.length (Topo.Spec.srlg_members s 0));
        List.iter
          (fun l ->
            let a, b = s.Topo.Spec.links.(l).Topo.Spec.ends in
            Alcotest.(check bool) "conduit touches router 0" true (a = 0 || b = 0))
          (Topo.Spec.srlg_members s 0);
        Alcotest.(check int) "srlg 1: the chords" 4
          (List.length (Topo.Spec.srlg_members s 1));
        Alcotest.(check bool) "ring neighbors adjacent" true
          (Option.is_some (Topo.Spec.link_between s 0 1));
        Alcotest.(check bool) "antipodes chorded" true
          (Option.is_some (Topo.Spec.link_between s 0 4));
        Alcotest.(check bool) "no skip link" true
          (Option.is_none (Topo.Spec.link_between s 0 2));
        Alcotest.(check bool) "supercharged as listed" true
          (Topo.Spec.supercharged_indices s = [ 0; 3 ]);
        let s' = Topo.Spec.with_supercharged s [ 1; 5 ] in
        Alcotest.(check bool) "re-deployed" true
          (Topo.Spec.supercharged_indices s' = [ 1; 5 ]));
  ]

(* An 8-router ring with the quickstart's externs, settled with four
   prefixes announced by all three peers. *)
let build_fabric ?(seed = 42L) ?(supercharged = [ 0; 3 ]) () =
  let engine = Sim.Engine.create ~seed () in
  let spec =
    Topo.Spec.ring ~routers:8
      ~externs:[ (0, 200); (4, 150); (2, 100) ]
      ~supercharged ()
  in
  let fabric = Topo.Fabric.build engine spec in
  Topo.Fabric.start fabric;
  let prefixes = List.init 4 prefix in
  for k = 0 to Topo.Spec.n_externs spec - 1 do
    Topo.Fabric.announce_extern fabric ~extern:k prefixes
  done;
  Alcotest.(check bool) "bring-up settles" true (Topo.Fabric.settle fabric ());
  (fabric, prefixes)

let every_ingress fabric p expected =
  for r = 0 to Topo.Spec.n_routers (Topo.Fabric.spec fabric) - 1 do
    Alcotest.(check bool)
      (Fmt.str "ingress %d walk" r)
      true
      (Topo.Fabric.outcome_equal expected
         (Topo.Fabric.outcome fabric ~ingress:r p))
  done

let fabric_tests =
  [
    Alcotest.test_case "bring-up: everyone exits via the best egress" `Quick
      (fun () ->
        let fabric, prefixes = build_fabric () in
        let p0 = List.hd prefixes in
        for r = 0 to 7 do
          Alcotest.(check (option int))
            (Fmt.str "router %d choice" r)
            (Some 0)
            (Topo.Router.choice (Topo.Fabric.router fabric r) p0)
        done;
        every_ingress fabric p0 (Topo.Fabric.Delivered 0));
    Alcotest.test_case "best-egress death fails every router over" `Quick
      (fun () ->
        let fabric, prefixes = build_fabric () in
        let p0 = List.hd prefixes in
        Topo.Fabric.fail_extern fabric ~extern:0;
        Alcotest.(check bool) "re-settles" true (Topo.Fabric.settle fabric ());
        for r = 0 to 7 do
          Alcotest.(check (option int))
            (Fmt.str "router %d re-chose" r)
            (Some 1)
            (Topo.Router.choice (Topo.Fabric.router fabric r) p0)
        done;
        every_ingress fabric p0 (Topo.Fabric.Delivered 1);
        Alcotest.(check bool) "controller fast-repointed the supercharged" true
          (Topo.Control.fast_repoints (Topo.Fabric.control fabric) > 0);
        Topo.Fabric.recover_extern fabric ~extern:0;
        Alcotest.(check bool) "recovery settles" true
          (Topo.Fabric.settle fabric ());
        every_ingress fabric p0 (Topo.Fabric.Delivered 0));
    Alcotest.test_case "correlated conduit cut reroutes over the chords" `Quick
      (fun () ->
        let fabric, prefixes = build_fabric () in
        let p0 = List.hd prefixes in
        Topo.Fabric.fail_srlg fabric ~srlg:0;
        Alcotest.(check bool) "re-settles" true (Topo.Fabric.settle fabric ());
        (* Router 0 lost both ring links but keeps its chord: the best
           egress (hanging off router 0) must stay reachable from every
           ingress. *)
        every_ingress fabric p0 (Topo.Fabric.Delivered 0);
        Topo.Fabric.recover_srlg fabric ~srlg:0;
        Alcotest.(check bool) "recovery settles" true
          (Topo.Fabric.settle fabric ()));
    Alcotest.test_case "partition overlapping a failure heals consistently"
      `Quick (fun () ->
        let fabric, prefixes = build_fabric () in
        let p0 = List.hd prefixes in
        let engine = Topo.Fabric.engine fabric in
        let now = Sim.Engine.now engine in
        (* Black out router 0's control plane, then kill its extern
           inside the window: the repair is gated on the heal resync. *)
        Topo.Fabric.partition fabric ~routers:[ 0 ] ~from:now
          ~until:(Sim.Time.add now (Sim.Time.of_ms 200));
        ignore
          (Sim.Engine.schedule_after engine (Sim.Time.of_ms 50) (fun () ->
               Topo.Fabric.fail_extern fabric ~extern:0));
        Topo.Fabric.run_until fabric (Sim.Time.add now (Sim.Time.of_ms 260));
        Alcotest.(check bool) "heals and settles" true
          (Topo.Fabric.settle fabric ());
        for r = 0 to 7 do
          Alcotest.(check (option int))
            (Fmt.str "router %d post-heal choice" r)
            (Some 1)
            (Topo.Router.choice (Topo.Fabric.router fabric r) p0)
        done;
        every_ingress fabric p0 (Topo.Fabric.Delivered 1));
  ]

let checker_tests =
  [
    Alcotest.test_case "deterministic srlg + partition schedule passes" `Quick
      (fun () ->
        (* A hand-built schedule covering the whole fault vocabulary:
           correlated conduit cut, controller partition overlapping an
           egress failure, a lone link flap — all against the oracle. *)
        let step ev dwell_ms = { Check.Topo_run.ev; dwell_ms } in
        let sched =
          {
            Check.Topo_run.seed = 5L;
            routers = 8;
            supercharged = [ 0; 2; 3 ];
            n_prefixes = 5;
            steps =
              [
                step (Check.Topo_run.Srlg_fail 0) 60;
                step
                  (Check.Topo_run.Partition { routers = [ 0; 1 ]; span_ms = 80 })
                  40;
                step (Check.Topo_run.Extern_fail 0) 50;
                step (Check.Topo_run.Link_down 2) 45;
                step (Check.Topo_run.Srlg_recover 0) 60;
                step (Check.Topo_run.Extern_recover 0) 40;
                step (Check.Topo_run.Link_up 2) 50;
              ];
          }
        in
        Alcotest.(check (list string)) "no violations" []
          (Check.Topo_run.execute sched));
    Alcotest.test_case "generated schedules pass on the acceptance seeds"
      `Quick (fun () ->
        match
          Check.Topo_run.run_matrix ~seeds:[ 101L; 102L; 103L ] ()
        with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Check.Topo_run.pp_failure f);
  ]

let deployment_tests =
  [
    Alcotest.test_case "sweep smoke: full deployment beats none" `Quick
      (fun () ->
        let rows =
          Experiments.Deployment.run ~routers:8 ~n_prefixes:40 ~probes:4
            ~coverage:[ 0; 8 ] ~seeds:[ 11L ]
            ~scenarios:[ Experiments.Deployment.Extern_fail ]
            ~window:(Sim.Time.of_ms 900) ()
        in
        match rows with
        | [ row ] -> (
          Alcotest.(check int) "two coverage points" 2 (List.length row.points);
          match row.Experiments.Deployment.points with
          | [ plain; full ] ->
            Alcotest.(check int) "plain point" 0 plain.n_supercharged;
            Alcotest.(check int) "full point" 8 full.n_supercharged;
            Alcotest.(check bool) "full no worse than plain" true
              (full.mean_outage_ms <= plain.mean_outage_ms);
            (match full.win_pct with
            | Some w ->
              Alcotest.(check bool) "full realises ~all of the win" true
                (w > 99.0)
            | None -> () (* indistinguishable run: nothing to win *));
            (match Experiments.Deployment.to_json rows with
            | Obs.Json.List cells ->
              Alcotest.(check int) "one JSON cell per point" 2
                (List.length cells)
            | _ -> Alcotest.fail "expected a JSON list");
            let csv = Experiments.Deployment.to_csv rows in
            Alcotest.(check int) "csv: header + points" 3
              (List.length
                 (List.filter
                    (fun l -> String.trim l <> "")
                    (String.split_on_char '\n' csv)))
          | _ -> Alcotest.fail "expected exactly two points")
        | _ -> Alcotest.fail "expected exactly one row");
  ]

let suite =
  [
    ("topo.spec", spec_tests);
    ("topo.fabric", fabric_tests);
    ("topo.checker", checker_tests);
    ("topo.deployment", deployment_tests);
  ]
