type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4_packet.t

type frame = {
  src : Mac.t;
  dst : Mac.t;
  payload : payload;
}

let make ~src ~dst payload = { src; dst; payload }

let ethertype frame =
  match frame.payload with Arp _ -> 0x0806 | Ipv4 _ -> 0x0800

let length frame =
  14
  +
  match frame.payload with
  | Arp _ -> 28
  | Ipv4 p -> Ipv4_packet.length p

let equal a b =
  Mac.equal a.src b.src && Mac.equal a.dst b.dst
  &&
  match a.payload, b.payload with
  | Arp x, Arp y -> Arp.equal x y
  | Ipv4 x, Ipv4 y -> Ipv4_packet.equal x y
  | Arp _, Ipv4 _ | Ipv4 _, Arp _ -> false

let pp ppf t =
  let pp_payload ppf = function
    | Arp a -> Arp.pp ppf a
    | Ipv4 p -> Ipv4_packet.pp ppf p
  in
  Fmt.pf ppf "eth %a -> %a [%a]" Mac.pp t.src Mac.pp t.dst pp_payload t.payload
