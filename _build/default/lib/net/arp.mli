(** ARP requests and replies (RFC 826, Ethernet/IPv4 only).

    ARP is the provisioning trick at the heart of the supercharged
    router: the router resolves each virtual next-hop (VNH) address with
    an ARP request, and the controller answers with the backup-group's
    virtual MAC (VMAC). *)

type operation = Request | Reply

type t = {
  op : operation;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  (** [Mac.zero] in requests. *)
  target_ip : Ipv4.t;
}

val request : sender_mac:Mac.t -> sender_ip:Ipv4.t -> target_ip:Ipv4.t -> t
(** A who-has request for [target_ip]. *)

val reply : t -> sender_mac:Mac.t -> t
(** [reply req ~sender_mac] answers [req]: the replier claims
    [req.target_ip] at [sender_mac], addressed back to the requester. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
