(** Pcap capture of simulated traffic.

    Frames crossing a {!Link} (or any other capture point) can be dumped
    to standard nanosecond-precision pcap files — built on the real
    {!Wire} encodings, so the captures open in Wireshark/tcpdump with
    correct checksums. Useful for debugging a simulation the way one
    would debug the paper's hardware lab. *)

type writer

val create_file : string -> writer
(** Opens the file and writes the pcap global header (nanosecond magic,
    LINKTYPE_ETHERNET). *)

val write_frame : writer -> Sim.Time.t -> Ethernet.frame -> unit
(** Appends one record; the simulated instant becomes the capture
    timestamp. *)

val frames_written : writer -> int

val close : writer -> unit

val tap_link : writer -> Link.t -> unit
(** Captures every frame offered to the link (in both directions), at
    transmission time — including frames the link later drops, like a
    physical-layer tap would see them. *)

val read_file : string -> ((Sim.Time.t * Ethernet.frame) list, Wire.error) result
(** Reads a capture back (only files produced by this module's writer:
    nanosecond magic, Ethernet link type, big-endian). Frames that fail
    to parse abort the read with the decode error. *)
