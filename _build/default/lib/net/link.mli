(** Point-to-point links.

    A link joins two devices (sides [A] and [B]), delivers frames after a
    propagation delay, and can be administratively taken down — the
    simulated equivalent of "we then disconnected R2 from the switch"
    (§4). Frames in flight when the link goes down are lost, like on a
    pulled cable. *)

type side = A | B

val other : side -> side

type t

val create :
  Sim.Engine.t -> ?name:string -> ?delay:Sim.Time.t -> unit -> t
(** Default [delay] is 5 µs (a few metres of lab cabling plus store-and-
    forward of a small frame at 1 GbE). *)

val name : t -> string

val attach : t -> side -> (Ethernet.frame -> unit) -> unit
(** Sets the receive callback of the device plugged into [side].
    Frames sent from the other side are delivered to it. *)

val send : t -> side -> Ethernet.frame -> unit
(** [send t side frame] transmits from [side] towards the other side.
    Silently dropped when the link is down or the far side is
    unattached. *)

val set_up : t -> bool -> unit
(** Administrative up/down. Taking the link down drops all frames
    currently in flight and future sends until brought back up. *)

val is_up : t -> bool

val set_tap : t -> (Sim.Time.t -> Ethernet.frame -> unit) -> unit
(** Physical-layer tap: observes every frame offered to the link (both
    directions, including frames later lost), at transmission time.
    One tap per link; a later call replaces the earlier one. *)

val frames_delivered : t -> int
val frames_dropped : t -> int
