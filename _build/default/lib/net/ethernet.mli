(** Ethernet II frames.

    The destination MAC is the pivot of the whole design: the router tags
    traffic with a backup-group VMAC there, and the SDN switch matches on
    it to steer traffic to the live next-hop. *)

type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4_packet.t

type frame = {
  src : Mac.t;
  dst : Mac.t;
  payload : payload;
}

val make : src:Mac.t -> dst:Mac.t -> payload -> frame

val ethertype : frame -> int
(** 0x0806 for ARP, 0x0800 for IPv4. *)

val length : frame -> int
(** On-wire length: 14-byte header + payload (no FCS). *)

val equal : frame -> frame -> bool
val pp : Format.formatter -> frame -> unit
