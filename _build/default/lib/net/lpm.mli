(** Longest-prefix-match table.

    A mutable binary trie from IPv4 prefixes to values — the data
    structure behind both the router FIB and the monitored-flow lookup in
    the traffic sink. Inserting or removing is O(prefix length); lookup
    is O(32). *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Prefix.t -> 'a -> unit
(** Binds the prefix, replacing any previous binding. *)

val remove : 'a t -> Prefix.t -> unit
(** Removes the exact prefix; no-op if absent. *)

val find_exact : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup (not longest-match). *)

val lookup : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** Longest-prefix match for an address. *)

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val is_empty : 'a t -> bool

val iter : 'a t -> (Prefix.t -> 'a -> unit) -> unit
(** Visits bindings in trie (lexicographic bit-string) order. *)

val fold : 'a t -> init:'b -> f:('b -> Prefix.t -> 'a -> 'b) -> 'b

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in trie order. *)

val clear : 'a t -> unit
