type operation = Request | Reply

type t = {
  op : operation;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = Mac.zero; target_ip }

let reply req ~sender_mac =
  {
    op = Reply;
    sender_mac;
    sender_ip = req.target_ip;
    target_mac = req.sender_mac;
    target_ip = req.sender_ip;
  }

let equal a b =
  a.op = b.op
  && Mac.equal a.sender_mac b.sender_mac
  && Ipv4.equal a.sender_ip b.sender_ip
  && Mac.equal a.target_mac b.target_mac
  && Ipv4.equal a.target_ip b.target_ip

let pp ppf t =
  match t.op with
  | Request ->
    Fmt.pf ppf "arp who-has %a tell %a(%a)" Ipv4.pp t.target_ip Ipv4.pp
      t.sender_ip Mac.pp t.sender_mac
  | Reply ->
    Fmt.pf ppf "arp %a is-at %a" Ipv4.pp t.sender_ip Mac.pp t.sender_mac
