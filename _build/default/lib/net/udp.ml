type t = {
  src_port : int;
  dst_port : int;
  payload : string;
}

let valid_port p = p >= 0 && p <= 0xFFFF

let make ~src_port ~dst_port ~payload =
  if not (valid_port src_port && valid_port dst_port) then
    invalid_arg "Udp.make: port out of range";
  { src_port; dst_port; payload }

let length t = 8 + String.length t.payload

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && String.equal a.payload b.payload

let pp ppf t =
  Fmt.pf ppf "udp %d->%d (%d bytes)" t.src_port t.dst_port (String.length t.payload)
