(** IPv4 packets.

    Only the fields the system acts on are modelled structurally; other
    transport protocols ride as raw bytes. *)

type payload =
  | Udp of Udp.t
  | Raw of { protocol : int; body : string }
      (** Any non-UDP protocol; [protocol] is the IP protocol number. *)

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  payload : payload;
}

val make : ?ttl:int -> src:Ipv4.t -> dst:Ipv4.t -> payload -> t
(** Default [ttl] is 64. *)

val udp : ?ttl:int -> src:Ipv4.t -> dst:Ipv4.t -> src_port:int -> dst_port:int ->
  string -> t
(** Convenience constructor for a UDP packet. *)

val decrement_ttl : t -> t option
(** [None] when the TTL reaches zero (packet must be dropped). *)

val protocol_number : t -> int
(** The IP protocol field: 17 for UDP, the carried number for [Raw]. *)

val length : t -> int
(** On-wire length: 20-byte header + payload. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
