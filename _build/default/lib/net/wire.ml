type error =
  | Truncated of string
  | Bad_checksum of string
  | Unsupported of string
  | Malformed of string

let pp_error ppf = function
  | Truncated what -> Fmt.pf ppf "truncated %s" what
  | Bad_checksum layer -> Fmt.pf ppf "bad %s checksum" layer
  | Unsupported what -> Fmt.pf ppf "unsupported %s" what
  | Malformed what -> Fmt.pf ppf "malformed %s" what

module Buf = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    let byte n = Int32.to_int (Int32.logand (Int32.shift_right_logical v n) 0xFFl) in
    u8 t (byte 24);
    u8 t (byte 16);
    u8 t (byte 8);
    u8 t (byte 0)

  let bytes t s = Buffer.add_string t s
  let length = Buffer.length
  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let pos t = t.pos
  let remaining t = String.length t.data - t.pos

  let u8 t =
    if remaining t < 1 then Error (Truncated "u8")
    else begin
      let v = Char.code t.data.[t.pos] in
      t.pos <- t.pos + 1;
      Ok v
    end

  let u16 t =
    if remaining t < 2 then Error (Truncated "u16")
    else begin
      let hi = Char.code t.data.[t.pos] and lo = Char.code t.data.[t.pos + 1] in
      t.pos <- t.pos + 2;
      Ok ((hi lsl 8) lor lo)
    end

  let u32 t =
    if remaining t < 4 then Error (Truncated "u32")
    else begin
      let byte i = Int32.of_int (Char.code t.data.[t.pos + i]) in
      let v =
        Int32.logor
          (Int32.shift_left (byte 0) 24)
          (Int32.logor
             (Int32.shift_left (byte 1) 16)
             (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))
      in
      t.pos <- t.pos + 4;
      Ok v
    end

  let take t n =
    if n < 0 then Error (Malformed "negative length")
    else if remaining t < n then Error (Truncated "bytes")
    else begin
      let s = String.sub t.data t.pos n in
      t.pos <- t.pos + n;
      Ok s
    end

  let rest t =
    let s = String.sub t.data t.pos (remaining t) in
    t.pos <- String.length t.data;
    s
end

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let internet_checksum s =
  let len = String.length s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (Char.code s.[len - 1] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let write_mac buf mac =
  Array.iter (fun b -> Buf.u8 buf b) (Mac.to_bytes mac)

let read_mac r =
  let* s = Reader.take r 6 in
  Ok (Mac.of_bytes (Array.init 6 (fun i -> Char.code s.[i])))

let write_ip buf ip = Buf.u32 buf (Ipv4.to_int32 ip)

let read_ip r =
  let* v = Reader.u32 r in
  Ok (Ipv4.of_int32 v)

(* --- ARP (RFC 826, Ethernet/IPv4) ------------------------------------ *)

let encode_arp buf (a : Arp.t) =
  Buf.u16 buf 1 (* htype: Ethernet *);
  Buf.u16 buf 0x0800 (* ptype: IPv4 *);
  Buf.u8 buf 6;
  Buf.u8 buf 4;
  Buf.u16 buf (match a.op with Arp.Request -> 1 | Arp.Reply -> 2);
  write_mac buf a.sender_mac;
  write_ip buf a.sender_ip;
  write_mac buf a.target_mac;
  write_ip buf a.target_ip

let decode_arp r =
  let* htype = Reader.u16 r in
  let* ptype = Reader.u16 r in
  let* hlen = Reader.u8 r in
  let* plen = Reader.u8 r in
  if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then
    Error (Unsupported "arp hardware/protocol type")
  else
    let* oper = Reader.u16 r in
    let* op =
      match oper with
      | 1 -> Ok Arp.Request
      | 2 -> Ok Arp.Reply
      | _ -> Error (Malformed "arp operation")
    in
    let* sender_mac = read_mac r in
    let* sender_ip = read_ip r in
    let* target_mac = read_mac r in
    let* target_ip = read_ip r in
    Ok { Arp.op; sender_mac; sender_ip; target_mac; target_ip }

(* --- UDP -------------------------------------------------------------- *)

let udp_pseudo_header ~src ~dst ~udp_len =
  let buf = Buf.create () in
  write_ip buf src;
  write_ip buf dst;
  Buf.u8 buf 0;
  Buf.u8 buf 17;
  Buf.u16 buf udp_len;
  Buf.contents buf

let encode_udp_raw (u : Udp.t) ~src ~dst =
  let udp_len = Udp.length u in
  let header_no_ck = Buf.create () in
  Buf.u16 header_no_ck u.src_port;
  Buf.u16 header_no_ck u.dst_port;
  Buf.u16 header_no_ck udp_len;
  Buf.u16 header_no_ck 0;
  let pseudo = udp_pseudo_header ~src ~dst ~udp_len in
  let ck =
    internet_checksum (pseudo ^ Buf.contents header_no_ck ^ u.payload)
  in
  (* RFC 768: a computed zero checksum is transmitted as all-ones. *)
  let ck = if ck = 0 then 0xFFFF else ck in
  let buf = Buf.create () in
  Buf.u16 buf u.src_port;
  Buf.u16 buf u.dst_port;
  Buf.u16 buf udp_len;
  Buf.u16 buf ck;
  Buf.bytes buf u.payload;
  Buf.contents buf

let decode_udp body ~src ~dst =
  let r = Reader.of_string body in
  let* src_port = Reader.u16 r in
  let* dst_port = Reader.u16 r in
  let* udp_len = Reader.u16 r in
  let* ck = Reader.u16 r in
  if udp_len < 8 || udp_len > String.length body then Error (Malformed "udp length")
  else
    let payload = String.sub body 8 (udp_len - 8) in
    let valid =
      ck = 0
      ||
      let pseudo = udp_pseudo_header ~src ~dst ~udp_len in
      let segment = String.sub body 0 udp_len in
      internet_checksum (pseudo ^ segment) = 0
    in
    if not valid then Error (Bad_checksum "udp")
    else Ok (Udp.make ~src_port ~dst_port ~payload)

(* --- IPv4 ------------------------------------------------------------- *)

let encode_ipv4 buf (p : Ipv4_packet.t) =
  let body =
    match p.payload with
    | Ipv4_packet.Udp u -> encode_udp_raw u ~src:p.src ~dst:p.dst
    | Ipv4_packet.Raw { body; _ } -> body
  in
  let total_len = 20 + String.length body in
  let header_no_ck = Buf.create () in
  Buf.u8 header_no_ck 0x45 (* version 4, IHL 5 *);
  Buf.u8 header_no_ck 0 (* DSCP/ECN *);
  Buf.u16 header_no_ck total_len;
  Buf.u16 header_no_ck 0 (* identification *);
  Buf.u16 header_no_ck 0x4000 (* DF, no fragment *);
  Buf.u8 header_no_ck p.ttl;
  Buf.u8 header_no_ck (Ipv4_packet.protocol_number p);
  Buf.u16 header_no_ck 0 (* checksum placeholder *);
  write_ip header_no_ck p.src;
  write_ip header_no_ck p.dst;
  let raw_header = Buf.contents header_no_ck in
  let ck = internet_checksum raw_header in
  let patched = Bytes.of_string raw_header in
  Bytes.set patched 10 (Char.chr (ck lsr 8));
  Bytes.set patched 11 (Char.chr (ck land 0xFF));
  Buf.bytes buf (Bytes.to_string patched);
  Buf.bytes buf body

let decode_ipv4 body =
  let r = Reader.of_string body in
  let* version_ihl = Reader.u8 r in
  if version_ihl lsr 4 <> 4 then Error (Malformed "ip version")
  else if version_ihl land 0xF <> 5 then Error (Unsupported "ipv4 options")
  else
    let* _dscp = Reader.u8 r in
    let* total_len = Reader.u16 r in
    let* _ident = Reader.u16 r in
    let* _flags = Reader.u16 r in
    let* ttl = Reader.u8 r in
    let* protocol = Reader.u8 r in
    let* _ck = Reader.u16 r in
    let* src = read_ip r in
    let* dst = read_ip r in
    if total_len < 20 || total_len > String.length body then
      Error (Malformed "ip total length")
    else if internet_checksum (String.sub body 0 20) <> 0 then
      Error (Bad_checksum "ipv4")
    else
      let payload_bytes = String.sub body 20 (total_len - 20) in
      let* payload =
        if protocol = 17 then
          let* u = decode_udp payload_bytes ~src ~dst in
          Ok (Ipv4_packet.Udp u)
        else Ok (Ipv4_packet.Raw { protocol; body = payload_bytes })
      in
      Ok (Ipv4_packet.make ~ttl ~src ~dst payload)

(* --- Ethernet --------------------------------------------------------- *)

let encode_frame (f : Ethernet.frame) =
  let buf = Buf.create () in
  write_mac buf f.dst;
  write_mac buf f.src;
  Buf.u16 buf (Ethernet.ethertype f);
  (match f.payload with
  | Ethernet.Arp a -> encode_arp buf a
  | Ethernet.Ipv4 p -> encode_ipv4 buf p);
  Buf.contents buf

let decode_frame s =
  let r = Reader.of_string s in
  let* dst = read_mac r in
  let* src = read_mac r in
  let* ethertype = Reader.u16 r in
  let body = Reader.rest r in
  let* payload =
    match ethertype with
    | 0x0806 ->
      let* a = decode_arp (Reader.of_string body) in
      Ok (Ethernet.Arp a)
    | 0x0800 ->
      let* p = decode_ipv4 body in
      Ok (Ethernet.Ipv4 p)
    | _ -> Error (Unsupported "ethertype")
  in
  Ok (Ethernet.make ~src ~dst payload)
