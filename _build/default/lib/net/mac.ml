type t = int64

let mask48 = 0xFFFF_FFFF_FFFFL

let of_int64 x = Int64.logand x mask48
let to_int64 x = x

let of_bytes bytes =
  if Array.length bytes <> 6 then invalid_arg "Mac.of_bytes: need 6 bytes";
  Array.fold_left
    (fun acc b ->
      if b < 0 || b > 255 then invalid_arg "Mac.of_bytes: byte out of range";
      Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
    0L bytes

let to_bytes t =
  Array.init 6 (fun i ->
      Int64.to_int (Int64.logand (Int64.shift_right_logical t ((5 - i) * 8)) 0xFFL))

let of_string s =
  let fail () = Error (Printf.sprintf "invalid MAC address %S" s) in
  match String.split_on_char ':' s with
  | [_; _; _; _; _; _] as parts ->
    let parse_byte p =
      if String.length p = 0 || String.length p > 2 then None
      else
        match int_of_string_opt ("0x" ^ p) with
        | Some v when v >= 0 && v <= 255 -> Some v
        | Some _ | None -> None
    in
    let rec build acc = function
      | [] -> Some acc
      | p :: rest ->
        (match parse_byte p with
        | Some b -> build (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b)) rest
        | None -> None)
    in
    (match build 0L parts with Some v -> Ok v | None -> fail ())
  | _ -> fail ()

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let to_string t =
  let b = to_bytes t in
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" b.(0) b.(1) b.(2) b.(3) b.(4) b.(5)

let broadcast = mask48
let zero = 0L

let is_broadcast t = Int64.equal t broadcast

let compare = Int64.compare
let equal = Int64.equal
let hash t = Int64.to_int t land max_int

let pp ppf t = Format.pp_print_string ppf (to_string t)
