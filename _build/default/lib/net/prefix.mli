(** IPv4 prefixes in CIDR notation.

    Prefixes are kept in canonical form: host bits below the mask are
    always zero, so structural equality coincides with semantic
    equality. *)

type t

val make : Ipv4.t -> int -> t
(** [make addr len] is [addr/len] with host bits cleared.
    Requires [0 <= len <= 32]. *)

val v : string -> t
(** [v "1.0.0.0/24"] — parsing shorthand for literals in tests and
    examples. @raise Invalid_argument on malformed input. *)

val of_string : string -> (t, string) result
val to_string : t -> string

val network : t -> Ipv4.t
(** The (canonicalised) network address. *)

val length : t -> int
(** The mask length. *)

val mem : Ipv4.t -> t -> bool
(** [mem a p] iff address [a] lies inside [p]. *)

val subset : t -> t -> bool
(** [subset inner outer] iff every address of [inner] is in [outer]. *)

val first : t -> Ipv4.t
(** Lowest address of the prefix (= [network]). *)

val last : t -> Ipv4.t
(** Highest address of the prefix. *)

val size : t -> int
(** Number of addresses covered. [size (v "0.0.0.0/0")] does not fit in
    32 bits and saturates to [max_int]. *)

val nth : t -> int -> Ipv4.t
(** [nth p i] is the [i]-th address of [p]. Requires [0 <= i < size p]. *)

val default_route : t
(** [0.0.0.0/0] *)

val compare : t -> t -> int
(** Total order: by network address (unsigned), then by length —
    shorter (less specific) first. *)

val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
