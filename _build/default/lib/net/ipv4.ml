type t = int32

let of_int32 x = x
let to_int32 x = x

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Ipv4.of_octets";
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let to_octets t =
  let byte n = Int32.to_int (Int32.logand (Int32.shift_right_logical t n) 0xFFl) in
  (byte 24, byte 16, byte 8, byte 0)

let of_string s =
  let fail () = Error (Printf.sprintf "invalid IPv4 address %S" s) in
  match String.split_on_char '.' s with
  | [a; b; c; d] ->
    let parse_octet o =
      (* Reject empty, signs, and leading-zero ambiguity beyond "0". *)
      if String.length o = 0 || String.length o > 3 then None
      else if String.length o > 1 && o.[0] = '0' then None
      else
        match int_of_string_opt o with
        | Some v when v >= 0 && v <= 255 -> Some v
        | Some _ | None -> None
    in
    (match parse_octet a, parse_octet b, parse_octet c, parse_octet d with
    | Some a, Some b, Some c, Some d -> Ok (of_octets a b c d)
    | _ -> fail ())
  | _ -> fail ()

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let any = 0l
let broadcast = 0xFFFFFFFFl

let succ t = Int32.add t 1l
let add t n = Int32.add t (Int32.of_int n)

let unsigned x = Int32.to_int x land 0xFFFFFFFF

let diff a b = (unsigned a - unsigned b) land 0xFFFFFFFF

let compare a b = Int32.unsigned_compare a b
let equal a b = Int32.equal a b
let hash t = Int32.to_int t land max_int

let bit t i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit";
  Int32.logand (Int32.shift_right_logical t (31 - i)) 1l = 1l

let pp ppf t = Format.pp_print_string ppf (to_string t)
