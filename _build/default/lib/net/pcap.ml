(* Nanosecond pcap (magic 0xA1B23C4D), written big-endian so the file is
   self-describing; link type 1 = Ethernet. *)

type writer = {
  channel : out_channel;
  mutable count : int;
  mutable closed : bool;
}

let u32 ch v =
  output_byte ch (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF);
  output_byte ch (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF);
  output_byte ch (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF);
  output_byte ch (Int32.to_int v land 0xFF)

let u16 ch v =
  output_byte ch ((v lsr 8) land 0xFF);
  output_byte ch (v land 0xFF)

let create_file path =
  let channel = open_out_bin path in
  u32 channel 0xA1B23C4Dl (* nanosecond magic *);
  u16 channel 2 (* version major *);
  u16 channel 4 (* version minor *);
  u32 channel 0l (* thiszone *);
  u32 channel 0l (* sigfigs *);
  u32 channel 65535l (* snaplen *);
  u32 channel 1l (* LINKTYPE_ETHERNET *);
  { channel; count = 0; closed = false }

let write_frame w time frame =
  if w.closed then invalid_arg "Pcap.write_frame: writer closed";
  let ns = Sim.Time.to_ns time in
  let sec = Int64.div ns 1_000_000_000L in
  let nsec = Int64.rem ns 1_000_000_000L in
  let data = Wire.encode_frame frame in
  u32 w.channel (Int64.to_int32 sec);
  u32 w.channel (Int64.to_int32 nsec);
  u32 w.channel (Int32.of_int (String.length data));
  u32 w.channel (Int32.of_int (String.length data));
  output_string w.channel data;
  w.count <- w.count + 1

let frames_written w = w.count

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.channel
  end

let tap_link w link =
  Link.set_tap link (fun time frame ->
      if not w.closed then write_frame w time frame)

(* --- reading ------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let r = Wire.Reader.of_string raw in
  let* magic = Wire.Reader.u32 r in
  if not (Int32.equal magic 0xA1B23C4Dl) then Error (Wire.Unsupported "pcap magic")
  else
    let* _versions = Wire.Reader.u32 r in
    let* _thiszone = Wire.Reader.u32 r in
    let* _sigfigs = Wire.Reader.u32 r in
    let* _snaplen = Wire.Reader.u32 r in
    let* linktype = Wire.Reader.u32 r in
    if not (Int32.equal linktype 1l) then Error (Wire.Unsupported "pcap link type")
    else begin
      let rec records acc =
        if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
        else
          let* sec = Wire.Reader.u32 r in
          let* nsec = Wire.Reader.u32 r in
          let* caplen = Wire.Reader.u32 r in
          let* _origlen = Wire.Reader.u32 r in
          let* data = Wire.Reader.take r (Int32.to_int caplen) in
          let* frame = Wire.decode_frame data in
          let time =
            Sim.Time.of_ns
              (Int64.add
                 (Int64.mul (Int64.logand (Int64.of_int32 sec) 0xFFFFFFFFL) 1_000_000_000L)
                 (Int64.logand (Int64.of_int32 nsec) 0xFFFFFFFFL))
          in
          records ((time, frame) :: acc)
      in
      records []
    end
