type side = A | B

let other = function A -> B | B -> A

type t = {
  engine : Sim.Engine.t;
  name : string;
  delay : Sim.Time.t;
  mutable up : bool;
  mutable recv_a : (Ethernet.frame -> unit) option;
  mutable recv_b : (Ethernet.frame -> unit) option;
  mutable epoch : int;
      (* Bumped when the link goes down; deliveries scheduled under an
         older epoch are dropped, modelling loss of in-flight frames. *)
  mutable delivered : int;
  mutable dropped : int;
  mutable tap : (Sim.Time.t -> Ethernet.frame -> unit) option;
}

let create engine ?(name = "link") ?(delay = Sim.Time.of_us 5) () =
  {
    engine;
    name;
    delay;
    up = true;
    recv_a = None;
    recv_b = None;
    epoch = 0;
    delivered = 0;
    dropped = 0;
    tap = None;
  }

let name t = t.name

let attach t side f =
  match side with
  | A -> t.recv_a <- Some f
  | B -> t.recv_b <- Some f

let receiver t side =
  match side with A -> t.recv_a | B -> t.recv_b

let set_tap t f = t.tap <- Some f

let send t from frame =
  (match t.tap with
  | Some f -> f (Sim.Engine.now t.engine) frame
  | None -> ());
  if not t.up then t.dropped <- t.dropped + 1
  else begin
    let epoch_at_send = t.epoch in
    let deliver () =
      if t.up && t.epoch = epoch_at_send then
        match receiver t (other from) with
        | Some f ->
          t.delivered <- t.delivered + 1;
          f frame
        | None -> t.dropped <- t.dropped + 1
      else t.dropped <- t.dropped + 1
    in
    ignore (Sim.Engine.schedule_after t.engine t.delay deliver)
  end

let set_up t up =
  if t.up && not up then begin
    t.epoch <- t.epoch + 1;
    Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
      ~category:"link" "%s: down" t.name
  end
  else if (not t.up) && up then
    Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
      ~category:"link" "%s: up" t.name;
  t.up <- up

let is_up t = t.up

let frames_delivered t = t.delivered
let frames_dropped t = t.dropped
