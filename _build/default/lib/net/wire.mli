(** Binary wire format for frames.

    Real Ethernet II / ARP / IPv4 / UDP encodings, including the IPv4
    header checksum and the UDP checksum over the pseudo-header. The
    simulation moves structured {!Ethernet.frame}s for speed, but every
    frame type is round-trippable through this codec, and the
    property-based tests assert it — keeping the models honest enough
    that a future port to a real wire is a drop-in. *)

type error =
  | Truncated of string  (** buffer too short; carries the field name *)
  | Bad_checksum of string  (** carries the layer name *)
  | Unsupported of string  (** e.g. unknown ethertype, IPv4 options *)
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val encode_frame : Ethernet.frame -> string
(** Serialises a frame (without FCS / preamble). *)

val decode_frame : string -> (Ethernet.frame, error) result
(** Parses a frame produced by {!encode_frame} (or any conforming
    encoder). Validates IPv4 and UDP checksums. *)

(** Low-level helpers, exposed for the protocol codecs in other
    libraries (BGP, BFD, OpenFlow messages). *)
module Buf : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val bytes : t -> string -> unit
  val length : t -> int
  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> (int, error) result
  val u16 : t -> (int, error) result
  val u32 : t -> (int32, error) result
  val take : t -> int -> (string, error) result
  val rest : t -> string
end

val internet_checksum : string -> int
(** RFC 1071 ones'-complement checksum of a byte string (padded with a
    zero byte if of odd length). *)
