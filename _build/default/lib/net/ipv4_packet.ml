type payload =
  | Udp of Udp.t
  | Raw of { protocol : int; body : string }

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  payload : payload;
}

let make ?(ttl = 64) ~src ~dst payload =
  if ttl < 0 || ttl > 255 then invalid_arg "Ipv4_packet.make: ttl out of range";
  { src; dst; ttl; payload }

let udp ?ttl ~src ~dst ~src_port ~dst_port body =
  make ?ttl ~src ~dst (Udp (Udp.make ~src_port ~dst_port ~payload:body))

let decrement_ttl t =
  if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let protocol_number t =
  match t.payload with Udp _ -> 17 | Raw { protocol; _ } -> protocol

let payload_length = function
  | Udp u -> Udp.length u
  | Raw { body; _ } -> String.length body

let length t = 20 + payload_length t.payload

let equal a b =
  Ipv4.equal a.src b.src && Ipv4.equal a.dst b.dst && a.ttl = b.ttl
  &&
  match a.payload, b.payload with
  | Udp ua, Udp ub -> Udp.equal ua ub
  | Raw ra, Raw rb -> ra.protocol = rb.protocol && String.equal ra.body rb.body
  | Udp _, Raw _ | Raw _, Udp _ -> false

let pp ppf t =
  let pp_payload ppf = function
    | Udp u -> Udp.pp ppf u
    | Raw { protocol; body } -> Fmt.pf ppf "proto=%d (%d bytes)" protocol (String.length body)
  in
  Fmt.pf ppf "ip %a -> %a ttl=%d %a" Ipv4.pp t.src Ipv4.pp t.dst t.ttl
    pp_payload t.payload
