(** 48-bit Ethernet MAC addresses, stored in the low 48 bits of an
    [int64]. *)

type t

val of_int64 : int64 -> t
(** Keeps only the low 48 bits. *)

val to_int64 : t -> int64

val of_bytes : int array -> t
(** [of_bytes [|b0; ...; b5|]] with [b0] the most significant byte.
    Requires exactly 6 values in [0, 255]. *)

val to_bytes : t -> int array

val of_string : string -> (t, string) result
(** Parses colon-separated hex, e.g. ["00:ff:00:00:00:01"]. *)

val of_string_exn : string -> t

val to_string : t -> string

val broadcast : t
(** [ff:ff:ff:ff:ff:ff] *)

val zero : t

val is_broadcast : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
