lib/net/ipv4_packet.mli: Format Ipv4 Udp
