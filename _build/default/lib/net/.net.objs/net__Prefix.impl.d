lib/net/prefix.ml: Format Int Int32 Ipv4 Printf String
