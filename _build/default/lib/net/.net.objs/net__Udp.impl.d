lib/net/udp.ml: Fmt String
