lib/net/ethernet.mli: Arp Format Ipv4_packet Mac
