lib/net/link.ml: Ethernet Sim
