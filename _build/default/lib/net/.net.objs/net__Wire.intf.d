lib/net/wire.mli: Ethernet Format
