lib/net/udp.mli: Format
