lib/net/wire.ml: Arp Array Buffer Bytes Char Ethernet Fmt Int32 Ipv4 Ipv4_packet Mac String Udp
