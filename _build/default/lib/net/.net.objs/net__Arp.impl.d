lib/net/arp.ml: Fmt Ipv4 Mac
