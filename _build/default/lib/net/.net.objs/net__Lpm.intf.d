lib/net/lpm.mli: Ipv4 Prefix
