lib/net/lpm.ml: Int32 Ipv4 List Prefix
