lib/net/arp.mli: Format Ipv4 Mac
