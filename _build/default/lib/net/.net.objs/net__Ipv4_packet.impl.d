lib/net/ipv4_packet.ml: Fmt Ipv4 String Udp
