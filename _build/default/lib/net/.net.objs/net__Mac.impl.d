lib/net/mac.ml: Array Format Int64 Printf String
