lib/net/pcap.ml: Int32 Int64 Link List Sim String Wire
