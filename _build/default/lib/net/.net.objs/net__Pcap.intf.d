lib/net/pcap.mli: Ethernet Link Sim Wire
