lib/net/ethernet.ml: Arp Fmt Ipv4_packet Mac
