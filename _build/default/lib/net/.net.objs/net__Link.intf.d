lib/net/link.mli: Ethernet Sim
