(** IPv4 addresses.

    Stored as a host-order [int32]; all arithmetic treats the address as
    an unsigned 32-bit integer. *)

type t

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Each octet must be in [0, 255]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> (t, string) result
(** Parses dotted-quad notation. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val any : t
(** [0.0.0.0] *)

val broadcast : t
(** [255.255.255.255] *)

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add a n] is the address [n] after [a] (unsigned, wrapping). *)

val diff : t -> t -> int
(** [diff a b] is the unsigned distance [a - b] interpreted in [int]. *)

val compare : t -> t -> int
(** Unsigned comparison: [0.0.0.1 < 128.0.0.0 < 255.255.255.255]. *)

val equal : t -> t -> bool
val hash : t -> int

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant.
    Requires [0 <= i < 32]. *)

val pp : Format.formatter -> t -> unit
