(** UDP datagrams (header + opaque payload). *)

type t = {
  src_port : int;
  dst_port : int;
  payload : string;
}

val make : src_port:int -> dst_port:int -> payload:string -> t
(** Requires ports in [0, 65535]. *)

val length : t -> int
(** On-wire length: 8-byte header + payload. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
