(* Splitmix64 (Steele, Lea, Flood 2014): tiny state, passes BigCrush for
   the purposes of workload generation, trivially reproducible. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

let next_raw t =
  let z = Int64.add t.state gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t = create ~seed:(next_raw t)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next_raw t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  (* 53 high-quality bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
