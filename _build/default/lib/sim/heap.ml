(* Array-backed binary min-heap. Each element carries the sequence number
   of its push so that equal-priority elements pop in FIFO order. *)

type 'a cell = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable cells : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp () = { cmp; cells = [||]; size = 0; next_seq = 0 }

let cell_lt h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c < 0 else a.seq < b.seq

(* [fill] seeds fresh slots so no dummy value is ever fabricated; slots
   beyond [size] are never read. *)
let grow h fill =
  let cap = Array.length h.cells in
  if h.size >= cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let fresh = Array.make new_cap fill in
    Array.blit h.cells 0 fresh 0 h.size;
    h.cells <- fresh
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt h h.cells.(i) h.cells.(parent) then begin
      let tmp = h.cells.(i) in
      h.cells.(i) <- h.cells.(parent);
      h.cells.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && cell_lt h h.cells.(left) h.cells.(!smallest) then
    smallest := left;
  if right < h.size && cell_lt h h.cells.(right) h.cells.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.cells.(i) in
    h.cells.(i) <- h.cells.(!smallest);
    h.cells.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h value =
  let cell = { value; seq = h.next_seq } in
  grow h cell;
  h.cells.(h.size) <- cell;
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.cells.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.cells.(0) <- h.cells.(h.size);
      sift_down h 0
    end;
    Some top.value
  end

let peek h = if h.size = 0 then None else Some h.cells.(0).value

let size h = h.size
let is_empty h = h.size = 0

let clear h =
  h.size <- 0;
  h.cells <- [||]

let to_list h =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (h.cells.(i).value :: acc)
  in
  collect (h.size - 1) []
