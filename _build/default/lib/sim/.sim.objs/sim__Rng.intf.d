lib/sim/rng.mli:
