lib/sim/time.ml: Float Fmt Int64 Stdlib
