lib/sim/engine.mli: Obs Rng Time Trace
