lib/sim/heap.mli:
