lib/sim/engine.ml: Heap Obs Rng Time Trace
