lib/sim/trace.ml: Fmt Format List Obs String Time
