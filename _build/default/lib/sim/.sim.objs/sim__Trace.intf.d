lib/sim/trace.mli: Format Obs Time
