type event = {
  at : Time.t;
  run : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  root_rng : Rng.t;
  trace : Trace.t;
  metrics : Obs.Metrics.t;
  mutable processed : int;
  mutable live : int; (* queued, not cancelled *)
}

let create ?(seed = 1L) ?trace ?metrics () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    clock = Time.zero;
    queue = Heap.create ~cmp:(fun a b -> Time.compare a.at b.at) ();
    root_rng = Rng.create ~seed;
    trace;
    metrics;
    processed = 0;
    live = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let trace t = t.trace
let metrics t = t.metrics

let schedule_at t instant f =
  let at = Time.max instant t.clock in
  let ev = { at; run = f; cancelled = false } in
  Heap.push t.queue ev;
  t.live <- t.live + 1;
  ev

let schedule_after t delay f =
  if Time.is_negative delay then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (Time.add t.clock delay) f

let cancel ev =
  ev.cancelled <- true

let every t ?start ~interval f =
  if Time.(interval <= Time.zero) then invalid_arg "Engine.every: interval must be positive";
  (* The outer handle stays valid across ticks: each tick checks it and
     re-arms by scheduling the next one. A single mutable cell carries the
     "cancelled" flag for the whole periodic task. *)
  let first = match start with Some s -> s | None -> Time.add t.clock interval in
  let task = { at = first; run = (fun () -> ()); cancelled = false } in
  let rec tick at () =
    if not task.cancelled then begin
      f ();
      if not task.cancelled then
        let next = Time.add at interval in
        ignore (schedule_at t next (tick next))
    end
  in
  ignore (schedule_at t first (tick first));
  task

let run_event t ev =
  t.live <- t.live - 1;
  if not ev.cancelled then begin
    t.clock <- Time.max t.clock ev.at;
    t.processed <- t.processed + 1;
    ev.run ()
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    run_event t ev;
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let stopped_by_budget = ref false in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then begin
      stopped_by_budget := true;
      continue := false
    end
    else
      match Heap.peek t.queue with
      | None -> continue := false
      | Some ev ->
        let past_horizon =
          match until with Some horizon -> Time.(ev.at > horizon) | None -> false
        in
        if past_horizon then continue := false
        else begin
          match Heap.pop t.queue with
          | Some popped ->
            if not popped.cancelled then decr budget;
            run_event t popped
          | None -> continue := false
        end
  done;
  (* When stopped by the horizon (not the event budget), advance the clock
     to it so that repeated bounded runs observe monotonically increasing
     time. *)
  match until with
  | Some horizon when not !stopped_by_budget -> t.clock <- Time.max t.clock horizon
  | Some _ | None -> ()

let pending t = t.live
let events_processed t = t.processed
