(** Deterministic pseudo-random number generator (splitmix64).

    The engine and all workload generators draw from instances of this
    generator so that an experiment is fully determined by its seed. The
    standard library's [Random] is deliberately not used: its state is
    global and its sequence is not guaranteed stable across OCaml
    releases. *)

type t

val create : seed:int64 -> t

val copy : t -> t
(** Independent generator starting from the same state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. Used to give
    each simulation component its own stream so that adding draws in one
    component does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
