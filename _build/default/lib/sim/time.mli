(** Simulated time.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation. Durations use the same representation; the
    arithmetic functions below are shared by both readings. Nanosecond
    integer arithmetic keeps every experiment bit-for-bit deterministic,
    which the paper's replica-redundancy argument (§3) relies on. *)

type t
(** An instant (or duration) in nanoseconds. *)

val zero : t

val of_ns : int64 -> t
val to_ns : t -> int64

val of_us : int -> t
(** [of_us n] is [n] microseconds. *)

val of_ms : int -> t
(** [of_ms n] is [n] milliseconds. *)

val of_sec : float -> t
(** [of_sec s] is [s] seconds, rounded to the nearest nanosecond. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]. Negative results are allowed (durations). *)

val mul : t -> int -> t
val div : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_negative : t -> bool

val next_multiple : grid:t -> t -> t
(** [next_multiple ~grid t] is the smallest multiple of [grid] that is
    [>= t]. Used to align probe deliveries to the traffic source's send
    grid (the FPGA's 70 µs inter-packet interval). Requires [grid > zero]
    and [t >= zero]. *)

val prev_multiple : grid:t -> t -> t
(** [prev_multiple ~grid t] is the largest multiple of [grid] that is
    [<= t]. Requires [grid > zero] and [t >= zero]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
