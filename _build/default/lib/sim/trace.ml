type entry = {
  time : Time.t;
  category : string;
  message : string;
  fields : Obs.Field.t list;
}

type t = {
  ring : entry Obs.Ring.t;
  mutable on : bool;
}

let create ?capacity_hint () =
  { ring = Obs.Ring.create ?capacity:capacity_hint (); on = true }

let enabled t = t.on
let set_enabled t on = t.on <- on

let event t time ~category message fields =
  if t.on then Obs.Ring.push t.ring { time; category; message; fields }

let emit t time ~category message = event t time ~category message []

(* A formatter that discards everything: the disabled branch must not
   touch shared state (the old code leaked partial output into
   [Format.str_formatter]), and [ikfprintf] still wants a formatter to
   thread through. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let emitf t time ~category fmt =
  if t.on then
    Format.kasprintf (fun message -> emit t time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let entries t = Obs.Ring.to_list t.ring

let find t ~category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let length t = Obs.Ring.length t.ring
let total t = Obs.Ring.total t.ring
let dropped t = Obs.Ring.dropped t.ring
let capacity t = Obs.Ring.capacity t.ring
let clear t = Obs.Ring.clear t.ring

let pp_entry ppf e =
  Fmt.pf ppf "[%a] %-10s %s" Time.pp e.time e.category e.message;
  if e.fields <> [] then Fmt.pf ppf " %a" Obs.Field.pp_list e.fields

let pp ppf t = Obs.Ring.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) t.ring
