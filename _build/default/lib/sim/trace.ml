type entry = {
  time : Time.t;
  category : string;
  message : string;
}

type t = {
  mutable events : entry list; (* reversed *)
  mutable count : int;
  mutable on : bool;
}

let create ?capacity_hint:_ () = { events = []; count = 0; on = true }

let enabled t = t.on
let set_enabled t on = t.on <- on

let emit t time ~category message =
  if t.on then begin
    t.events <- { time; category; message } :: t.events;
    t.count <- t.count + 1
  end

let emitf t time ~category fmt =
  if t.on then
    Format.kasprintf (fun message -> emit t time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.events

let find t ~category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let length t = t.count

let clear t =
  t.events <- [];
  t.count <- 0

let pp_entry ppf e =
  Fmt.pf ppf "[%a] %-10s %s" Time.pp e.time e.category e.message

let pp ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
