type t = int64

let zero = 0L

let of_ns ns = ns
let to_ns t = t

let of_us n = Int64.mul (Int64.of_int n) 1_000L
let of_ms n = Int64.mul (Int64.of_int n) 1_000_000L

let of_sec s = Int64.of_float (Float.round (s *. 1e9))
let to_sec t = Int64.to_float t /. 1e9
let to_ms t = Int64.to_float t /. 1e6
let to_us t = Int64.to_float t /. 1e3

let add = Int64.add
let sub = Int64.sub
let mul t k = Int64.mul t (Int64.of_int k)
let div t k = Int64.div t (Int64.of_int k)

let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let is_negative t = t < zero

let next_multiple ~grid t =
  assert (grid > zero && t >= zero);
  let q = Int64.div t grid in
  let m = Int64.mul q grid in
  if equal m t then m else Int64.mul (Int64.succ q) grid

let prev_multiple ~grid t =
  assert (grid > zero && t >= zero);
  Int64.mul (Int64.div t grid) grid

let pp ppf t =
  let abs = Int64.abs t in
  let lt a b = Stdlib.( < ) (Int64.compare a b) 0 in
  if lt abs 1_000L then Fmt.pf ppf "%Ldns" t
  else if lt abs 1_000_000L then Fmt.pf ppf "%.3fus" (to_us t)
  else if lt abs 1_000_000_000L then Fmt.pf ppf "%.3fms" (to_ms t)
  else Fmt.pf ppf "%.6fs" (to_sec t)

let to_string t = Fmt.str "%a" pp t
