(** Simulation event trace.

    A lightweight log of what happened and when, stored in a growable
    circular buffer ([Obs.Ring]). With a [capacity_hint] the trace
    retains only the newest entries — large experiments can keep
    tracing on without accumulating millions of entries — while
    [total] still counts every emission. Components emit one-line
    events tagged with a category ("bgp", "bfd", "fib", "openflow",
    ...) and, optionally, structured [Obs.Field] key/value pairs;
    experiments and tests inspect the trace to assert ordering
    properties, and the examples print it. *)

type entry = {
  time : Time.t;
  category : string;
  message : string;
  fields : Obs.Field.t list;
}

type t

val create : ?capacity_hint:int -> unit -> t
(** [capacity_hint] caps retention: once full, the oldest entries are
    overwritten. Without it the trace grows unboundedly. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Disabling makes [emit] a no-op; large experiments run with tracing
    off to avoid accumulating millions of entries. *)

val emit : t -> Time.t -> category:string -> string -> unit

val event : t -> Time.t -> category:string -> string -> Obs.Field.t list -> unit
(** [event t now ~category name fields] records a structured entry:
    [name] becomes the message, [fields] are kept typed for consumers
    that match on values rather than text. *)

val emitf :
  t -> Time.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted emission. The format arguments are only evaluated when the
    trace is enabled. *)

val entries : t -> entry list
(** Retained entries in emission order (oldest first). *)

val find : t -> category:string -> entry list
(** Retained entries of one category, in emission order. *)

val length : t -> int
(** Retained entries. *)

val total : t -> int
(** Entries ever emitted, including any the ring has dropped. *)

val dropped : t -> int
(** Entries lost to the capacity cap. *)

val capacity : t -> int option

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
