(** Simulation event trace.

    A lightweight, allocation-conscious log of what happened and when.
    Components emit one-line events tagged with a category ("bgp",
    "bfd", "fib", "openflow", ...); experiments and tests inspect the
    trace to assert ordering properties, and the examples print it. *)

type entry = {
  time : Time.t;
  category : string;
  message : string;
}

type t

val create : ?capacity_hint:int -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Disabling makes [emit] a no-op; large experiments run with tracing
    off to avoid accumulating millions of entries. *)

val emit : t -> Time.t -> category:string -> string -> unit

val emitf :
  t -> Time.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted emission. The format arguments are only evaluated when the
    trace is enabled. *)

val entries : t -> entry list
(** All entries in emission order. *)

val find : t -> category:string -> entry list
(** Entries of one category, in emission order. *)

val length : t -> int
val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
