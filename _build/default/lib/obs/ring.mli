(** Growable circular buffer.

    Unbounded rings grow geometrically like a vector; capped rings
    ([capacity]) grow up to the cap and then overwrite the oldest
    element. Push is O(1) amortised; [to_list] is O(retained). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the number of retained elements; omitted means
    unbounded. A non-positive capacity is treated as [1]. *)

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Elements currently retained. *)

val total : 'a t -> int
(** Elements ever pushed (retained + dropped). *)

val dropped : 'a t -> int
(** Elements overwritten because the ring was at capacity. *)

val capacity : 'a t -> int option

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit
(** Drops every element and resets [total]/[dropped]. *)
