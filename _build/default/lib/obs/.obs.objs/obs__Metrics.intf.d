lib/obs/metrics.mli: Format Histogram Json
