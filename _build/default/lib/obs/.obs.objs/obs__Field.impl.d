lib/obs/field.ml: Fmt Json List
