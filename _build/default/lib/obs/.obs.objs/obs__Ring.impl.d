lib/obs/ring.ml: Array List Option
