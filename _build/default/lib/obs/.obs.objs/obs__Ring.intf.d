lib/obs/ring.mli:
