lib/obs/field.mli: Format Json
