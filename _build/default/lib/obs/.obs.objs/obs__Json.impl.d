lib/obs/json.ml: Buffer Char Float Format Fun List Printf String
