lib/obs/metrics.ml: Fmt Hashtbl Histogram Json List Option String
