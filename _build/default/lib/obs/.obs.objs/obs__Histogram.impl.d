lib/obs/histogram.ml: Array Float Fmt Json Stdlib
