lib/obs/histogram.mli: Format Json
