(** Typed key/value fields for structured trace events.

    A field is a name plus a primitive value; events carry a small list
    of them instead of a preformatted string, so consumers (tests, JSON
    export) can match on values without re-parsing text. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type t = string * value

val bool : string -> bool -> t
val int : string -> int -> t
val float : string -> float -> t
val string : string -> string -> t

val name : t -> string
val find : string -> t list -> value option

val to_json : t list -> Json.t
(** Fields as one JSON object, in list order. *)

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
(** [key=value]. *)

val pp_list : Format.formatter -> t list -> unit
(** Space-separated [key=value] pairs. *)
