type t = {
  index : int;
  dst : Net.Ipv4.t;
}

let grid_default = Sim.Time.of_us 70

(* 64-byte frame = 14 eth + 20 ip + 8 udp + payload. *)
let payload_size_default = 64 - 14 - 20 - 8

let pp ppf t = Fmt.pf ppf "flow#%d->%a" t.index Net.Ipv4.pp t.dst
