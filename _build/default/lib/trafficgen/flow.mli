(** A monitored flow: one of the 100 destination addresses the paper's
    FPGA source streams 64-byte UDP packets to. *)

type t = {
  index : int;  (** dense flow id, 0-based *)
  dst : Net.Ipv4.t;
}

val grid_default : Sim.Time.t
(** 70 µs — the paper's per-flow inter-packet interval (14 k pkt/s),
    which is also its measurement precision. *)

val payload_size_default : int
(** The UDP payload that makes the frame 64 bytes on the wire. *)

val pp : Format.formatter -> t -> unit
