module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type slot = {
  flow : Flow.t;
  mutable count : int;
  mutable last : Sim.Time.t option;
  mutable max_gap : Sim.Time.t;
}

type t = {
  engine : Sim.Engine.t;
  cam : slot Ip_table.t;
  slots : slot array;
  mutable strays : int;
  mutable total : int;
  mutable delivery_cb : (Flow.t -> unit) option;
}

let create engine ~flows =
  let slots =
    Array.map (fun flow -> { flow; count = 0; last = None; max_gap = Sim.Time.zero }) flows
  in
  let cam = Ip_table.create (Array.length flows * 2) in
  Array.iter (fun slot -> Ip_table.replace cam slot.flow.Flow.dst slot) slots;
  { engine; cam; slots; strays = 0; total = 0; delivery_cb = None }

let deliver t dst =
  t.total <- t.total + 1;
  match Ip_table.find_opt t.cam dst with
  | None -> t.strays <- t.strays + 1
  | Some slot ->
    let now = Sim.Engine.now t.engine in
    (match slot.last with
    | Some last ->
      let gap = Sim.Time.sub now last in
      if Sim.Time.(gap > slot.max_gap) then slot.max_gap <- gap
    | None -> ());
    slot.last <- Some now;
    slot.count <- slot.count + 1;
    Sim.Trace.emitf (Sim.Engine.trace t.engine) now ~category:"sink"
      "arrival flow#%d" slot.flow.Flow.index;
    match t.delivery_cb with Some f -> f slot.flow | None -> ()

let deliver_packet t (p : Net.Ipv4_packet.t) = deliver t p.dst

let on_delivery t f = t.delivery_cb <- Some f

let arrivals t index = t.slots.(index).count
let last_arrival t index = t.slots.(index).last
let max_gap t index = t.slots.(index).max_gap

let strays t = t.strays
let total t = t.total

let reset_gaps t =
  Array.iter (fun slot -> slot.max_gap <- Sim.Time.zero) t.slots
