(** Event-driven traffic measurement.

    Brute-force simulation of the paper's load (1.4 M pkt/s for minutes
    of virtual time) would cost ~10⁹ events. This monitor exploits that
    the data plane is piecewise-static: between forwarding-state changes
    a flow either delivers every packet or none, so the max
    inter-arrival gap is fully determined by the deliveries just before
    the outage and just after the repair.

    It therefore sends {e probe} packets through the {e real} data plane
    - densely on the send grid inside a window around the failure
      instant (capturing the exact last pre-outage delivery, like the
      FPGA would), and
    - once per relevant state-change event afterwards (FIB entry
      applied, switch rule applied), aligned to the next grid point —
      capturing the first post-repair delivery at grid precision.

    The per-flow max inter-arrival gap recorded by the {!Sink} is then
    the same value (±1 grid slot, i.e. ±70 µs — the paper's own
    measurement precision) dense mode would produce; a property test
    checks the two modes agree. *)

type t

val create :
  Sim.Engine.t ->
  ?grid:Sim.Time.t ->
  sink:Sink.t ->
  send:(Flow.t -> unit) ->
  flows:Flow.t array ->
  unit ->
  t
(** [send] injects one packet for the flow into the data plane.
    [grid] defaults to {!Flow.grid_default}. *)

val inject : t -> int -> unit
(** Send one probe for the flow immediately, with the monitor's
    bookkeeping. Dense-mode sources must send through this (or
    {!probe_flow}) so lost packets are recognised as outages. *)

val probe_flow : t -> int -> unit
(** Schedule a probe for one flow at the next grid point (deduplicated:
    at most one pending probe per flow per slot). *)

val probe_prefix : t -> Net.Prefix.t -> unit
(** Probe every flow whose destination lies in the prefix — hook this to
    [Fib.on_applied]. *)

val probe_all : t -> unit
(** Probe every flow — hook this to switch rule application, failovers,
    and use it as the final reachability sweep. *)

val window : t -> from_:Sim.Time.t -> until:Sim.Time.t -> unit
(** Dense probing: every flow sends at every grid point in the range —
    used around the scheduled failure instant. *)

val all_alive_since : t -> Sim.Time.t -> bool
(** Every flow has a delivery strictly later than the given instant —
    the experiment's termination condition. *)

val arm_failure : t -> at:Sim.Time.t -> unit
(** Tells the monitor when the failure will be injected. From then on it
    watches each flow for the {e straddling gap}: the first
    inter-arrival gap larger than twice the grid whose closing arrival
    is after [at]. That gap is the flow's outage — identical to the max
    inter-packet delay a continuous stream would record across the
    failure, and immune to the artificial gaps between event-driven
    probes after recovery. *)

type verdict =
  | Recovered of Sim.Time.t
      (** the straddling gap: the flow's convergence time *)
  | Unaffected  (** arrivals after the failure, but never a large gap *)
  | Black_holed  (** no arrival after the failure *)

val verdict : t -> int -> verdict
(** Requires {!arm_failure}. With several outages (e.g. a double-failure
    experiment) the verdict reports the first; see {!outages}. *)

val outages : t -> int -> Sim.Time.t list
(** Every straddling gap recorded for the flow, in order — one entry per
    outage the flow suffered since {!arm_failure}. *)

val convergence : t -> failed_at:Sim.Time.t -> int -> Sim.Time.t option
(** [Some gap] for [Recovered], [Some grid] for [Unaffected] (a
    continuous stream would have measured one send interval), [None]
    for [Black_holed]. [failed_at] must match {!arm_failure}. *)

val probes_sent : t -> int
