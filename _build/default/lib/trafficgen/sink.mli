(** The sink FPGA: per-flow arrival bookkeeping.

    Matches arriving packets against a CAM of expected destination
    addresses and tracks, per flow, the arrival count, the last arrival
    time, and the maximum inter-arrival gap — the quantity Fig. 5 is
    built from (in dense traffic mode the max gap {e is} the measured
    convergence time plus one send interval). *)

type t

val create : Sim.Engine.t -> flows:Flow.t array -> t

val deliver : t -> Net.Ipv4.t -> unit
(** Feed an arriving packet's destination address; non-matching
    addresses count as strays. Timestamps come from the engine clock. *)

val deliver_packet : t -> Net.Ipv4_packet.t -> unit

val on_delivery : t -> (Flow.t -> unit) -> unit
(** Observer fired for each matched arrival (the event-driven monitor
    hooks this). *)

val arrivals : t -> int -> int
(** Packets received for flow [index]. *)

val last_arrival : t -> int -> Sim.Time.t option
val max_gap : t -> int -> Sim.Time.t
(** Zero until at least two packets arrived. *)

val strays : t -> int
val total : t -> int

val reset_gaps : t -> unit
(** Clears gap statistics (not counts) — called when the measured phase
    starts so warm-up gaps don't pollute the result. *)
