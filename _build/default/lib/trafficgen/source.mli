(** The source FPGA in dense mode: a continuous 64-byte UDP stream to
    every flow, one packet per flow per grid interval.

    Dense mode simulates every packet through the full data plane; it is
    exact but costs one event per packet, so it is used by the tests,
    the examples, and the equivalence check against the event-driven
    {!Monitor}. The big Fig. 5 sweeps use the monitor instead. *)

type t

val create :
  Sim.Engine.t ->
  ?grid:Sim.Time.t ->
  flows:Flow.t array ->
  send:(Flow.t -> unit) ->
  unit ->
  t
(** [send] injects one packet for the flow into the data plane (the lab
    binds it to the source host's link). [grid] defaults to
    {!Flow.grid_default}. *)

val start : t -> unit
(** Begins streaming: each flow sends at every multiple of the grid
    (all flows share grid phase, like the FPGA's round-robin DMA). *)

val stop : t -> unit

val packets_sent : t -> int
