lib/trafficgen/flow.ml: Fmt Net Sim
