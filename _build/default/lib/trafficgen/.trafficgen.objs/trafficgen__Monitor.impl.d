lib/trafficgen/monitor.ml: Array Flow List Net Sim Sink
