lib/trafficgen/monitor.ml: Array Flow List Net Obs Sim Sink
