lib/trafficgen/source.ml: Array Flow Sim
