lib/trafficgen/source.mli: Flow Sim
