lib/trafficgen/sink.ml: Array Flow Hashtbl Net Sim
