lib/trafficgen/flow.mli: Format Net Sim
