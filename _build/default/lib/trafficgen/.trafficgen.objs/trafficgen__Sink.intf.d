lib/trafficgen/sink.mli: Flow Net Sim
