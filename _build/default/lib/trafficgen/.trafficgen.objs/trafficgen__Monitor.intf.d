lib/trafficgen/monitor.mli: Flow Net Sim Sink
