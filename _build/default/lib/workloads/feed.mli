(** Paced replay of a BGP feed.

    Real peers do not deliver half a million updates in one instant;
    the replayer sends them in batches on a timer, modelling the
    sustained update rate of a full-table transfer. *)

val replay :
  Sim.Engine.t ->
  updates:Bgp.Message.update list ->
  ?batch:int ->
  ?interval:Sim.Time.t ->
  ?on_done:(unit -> unit) ->
  send:(Bgp.Message.update -> unit) ->
  unit ->
  unit
(** Defaults: [batch] 500 updates every [interval] 1 ms (≈500 k
    updates/s — a fast full-table dump). [on_done] fires after the last
    batch is handed to [send]. *)

val interleave : 'a list -> 'a list -> 'a list
(** Alternates elements of two lists (tail appended when lengths
    differ) — the arrival pattern of two peers feeding concurrently. *)
