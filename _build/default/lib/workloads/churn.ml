type event = {
  peer : int;
  update : Bgp.Message.update;
}

let full_table_race ~seed ~count ~next_hops ~asns =
  if Array.length next_hops <> Array.length asns || Array.length next_hops = 0 then
    invalid_arg "Churn.full_table_race: need matching non-empty peer arrays";
  let entries = Rib_gen.generate ~seed ~count in
  let feeds =
    Array.to_list
      (Array.mapi
         (fun peer nh ->
           List.map
             (fun u -> { peer; update = u })
             (Rib_gen.to_updates entries ~speaker_asn:asns.(peer) ~next_hop:nh))
         next_hops)
  in
  List.fold_left Feed.interleave [] feeds

let flap ~seed ~entries ~rounds ~next_hop ~asn ~peer =
  let rng = Sim.Rng.create ~seed in
  let n = Array.length entries in
  let events = ref [] in
  for _ = 1 to rounds do
    let (victim : Rib_gen.entry) = entries.(Sim.Rng.int rng n) in
    events :=
      { peer; update = { Bgp.Message.withdrawn = [victim.prefix]; attrs = None; nlri = [] } }
      :: !events;
    let attrs =
      Bgp.Attributes.make
        ~as_path:[Bgp.Attributes.Seq (asn :: victim.as_path)]
        ?med:victim.med ~next_hop ()
    in
    events :=
      { peer; update = { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [victim.prefix] } }
      :: !events
  done;
  List.rev !events
