let replay engine ~updates ?(batch = 500) ?(interval = Sim.Time.of_ms 1)
    ?on_done ~send () =
  if batch <= 0 then invalid_arg "Feed.replay: batch";
  let rec step remaining () =
    let rec send_batch n remaining =
      if n = 0 then remaining
      else
        match remaining with
        | [] -> []
        | u :: rest ->
          send u;
          send_batch (n - 1) rest
    in
    match send_batch batch remaining with
    | [] -> ( match on_done with Some f -> f () | None -> ())
    | rest -> ignore (Sim.Engine.schedule_after engine interval (step rest))
  in
  ignore (Sim.Engine.schedule_after engine Sim.Time.zero (step updates))

let interleave a b =
  let rec go a b acc =
    match a, b with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' -> go a' b' (y :: x :: acc)
  in
  go a b []
