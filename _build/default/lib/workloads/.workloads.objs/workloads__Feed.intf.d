lib/workloads/feed.mli: Bgp Sim
