lib/workloads/rib_gen.mli: Bgp Format Net
