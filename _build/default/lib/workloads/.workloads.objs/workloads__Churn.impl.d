lib/workloads/churn.ml: Array Bgp Feed List Rib_gen Sim
