lib/workloads/feed.ml: List Sim
