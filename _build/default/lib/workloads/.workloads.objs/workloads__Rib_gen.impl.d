lib/workloads/rib_gen.ml: Array Bgp Fmt Int64 List Net Sim
