lib/workloads/churn.mli: Bgp Net Rib_gen
