(** BGP churn traces — update streams beyond the initial table load,
    used by the controller micro-benchmark and the stress tests. *)

type event = {
  peer : int;  (** which of the trace's peers sends it *)
  update : Bgp.Message.update;
}

val full_table_race : seed:int64 -> count:int -> next_hops:Net.Ipv4.t array ->
  asns:Bgp.Asn.t array -> event list
(** The paper's micro-benchmark workload: every peer announces the same
    [count]-entry table (same prefixes, peer-specific paths), arrivals
    interleaved — "two times 500 K updates from two different peers". *)

val flap : seed:int64 -> entries:Rib_gen.entry array -> rounds:int ->
  next_hop:Net.Ipv4.t -> asn:Bgp.Asn.t -> peer:int -> event list
(** Announce/withdraw churn: each round withdraws a random subset and
    re-announces it, exercising Listing 1's withdraw paths. *)
