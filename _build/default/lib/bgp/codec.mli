(** RFC 4271 binary encoding of BGP messages.

    Supports the attribute set the system uses (ORIGIN, AS_PATH,
    NEXT_HOP, MED, LOCAL_PREF, COMMUNITIES) with classic 2-byte AS
    numbers. Unknown optional attributes are skipped on decode; unknown
    well-known attributes are an error. *)

val encode : Message.t -> string
(** One message, including the 19-byte header. *)

val decode : string -> ((Message.t * int), Net.Wire.error) result
(** Decodes the first message in the buffer; also returns the number of
    bytes consumed, so a TCP-style byte stream can be cut into
    messages. *)

val decode_exact : string -> (Message.t, Net.Wire.error) result
(** Like {!decode} but requires the buffer to hold exactly one
    message. *)

val decode_all : string -> (Message.t list, Net.Wire.error) result
(** Decodes a concatenation of messages. *)

val max_message_size : int
(** 4096, per RFC 4271. [encode] raises [Invalid_argument] when a
    message would exceed it (split large updates before encoding). *)
