(** The BGP decision process (RFC 4271 §9.1.2 tie-breaking).

    The supercharger needs more than the single best route: the
    backup-group of a prefix is the *first two elements* of the fully
    ranked candidate list, so the process is exposed as a total
    preference order. *)

val compare : Route.t -> Route.t -> int
(** [compare a b < 0] iff [a] is preferred over [b]. Steps, in order:
    higher LOCAL_PREF; shorter AS path; lower origin (IGP < EGP <
    INCOMPLETE); lower MED when both routes come from the same
    neighbouring AS (missing MED = 0, per Cisco default); eBGP over
    iBGP; lower IGP cost to the next hop; lower peer router-id; lower
    peer id. The final steps make the order total, so ranking is
    deterministic — the property controller replication (§3 of the
    paper) rests on. *)

val rank : Route.t list -> Route.t list
(** Candidates sorted best-first. *)

val best : Route.t list -> Route.t option
(** The winner, [None] for an empty list. *)
