(** BGP messages (RFC 4271 §4). *)

type open_msg = {
  version : int;  (** always 4 *)
  asn : Asn.t;
  hold_time : int;  (** seconds; 0 disables keepalives *)
  router_id : Net.Ipv4.t;
}

type update = {
  withdrawn : Net.Prefix.t list;
  attrs : Attributes.t option;
      (** [None] when the update only withdraws routes. *)
  nlri : Net.Prefix.t list;
      (** Prefixes announced with [attrs]; requires [attrs <> None] when
          non-empty. *)
}

type notification = {
  code : int;
  subcode : int;
  data : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

val update : ?withdrawn:Net.Prefix.t list -> ?attrs:Attributes.t ->
  ?nlri:Net.Prefix.t list -> unit -> t
(** Checked constructor: rejects non-empty [nlri] without [attrs] and
    fully empty updates. *)

val announce : Attributes.t -> Net.Prefix.t list -> t
val withdraw : Net.Prefix.t list -> t

val cease : t
(** The Cease notification (code 6). *)

val hold_timer_expired : t
(** Notification code 4. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
