(** A multi-session BGP speaker.

    Thin composition layer used by all three BGP-speaking roles in the
    system — the provider routers (R2, R3) originating feeds, the
    supercharged router's control plane, and the supercharger controller
    interposed between them. It owns the sessions, assigns dense peer
    ids, and funnels events to per-speaker callbacks with the peer
    context attached. *)

type t

type peer = {
  id : int;  (** dense, assigned in [add_peer] order from 0 *)
  peer_name : string;
  session : Session.t;
}

val create :
  Sim.Engine.t ->
  name:string ->
  asn:Asn.t ->
  router_id:Net.Ipv4.t ->
  unit ->
  t

val name : t -> string
val asn : t -> Asn.t
val router_id : t -> Net.Ipv4.t

val add_peer :
  t ->
  name:string ->
  channel:Channel.t ->
  side:Channel.side ->
  ?hold_time:int ->
  unit ->
  peer
(** Creates the session on our side of [channel]. Call before
    {!start}. *)

val peers : t -> peer list
(** In id order. *)

val find_peer : t -> int -> peer
(** @raise Not_found for an unknown id. *)

val start : t -> unit
(** Starts every session. *)

val on_update : t -> (peer -> Message.update -> unit) -> unit
val on_peer_established : t -> (peer -> unit) -> unit
val on_peer_down : t -> (peer -> Session.down_reason -> unit) -> unit

val send_update : t -> peer_id:int -> Message.update -> unit
(** @raise Invalid_argument if that session is not established. *)

val established_count : t -> int
