(** Autonomous-system numbers (2-byte range). *)

type t

val of_int : int -> t
(** Requires [0 <= n <= 65535] — the codec speaks classic 2-byte ASNs. *)

val to_int : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
