(** Byte-stream reassembly for BGP sessions.

    A real session reads BGP off a TCP stream, where message boundaries
    do not align with read boundaries. This module buffers arbitrary
    chunks and yields complete messages as they become available —
    the missing piece between {!Codec} and a socket, and what a port of
    {!Session} onto a real transport would sit on. *)

type t

val create : unit -> t

val feed : t -> string -> (Message.t list, Net.Wire.error) result
(** Appends the chunk and decodes every complete message now available
    (possibly none). A malformed message poisons the stream: the error
    is returned now and by every later call, as a real implementation
    would tear the session down. *)

val buffered : t -> int
(** Bytes held waiting for the rest of a message. *)

val is_poisoned : t -> bool
