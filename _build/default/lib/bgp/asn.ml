type t = int

let of_int n =
  if n < 0 || n > 0xFFFF then invalid_arg "Asn.of_int: out of 2-byte range";
  n

let to_int n = n

let compare = Int.compare
let equal = Int.equal
let hash n = n
let pp ppf n = Fmt.pf ppf "AS%d" n
