(** BGP session finite-state machine.

    A simplified RFC 4271 FSM over a {!Channel} (the transport is
    already connection-like, so the TCP-centric Connect/Active states
    collapse into [Idle]). Keepalives are emitted at a third of the
    negotiated hold time; a peer that stays silent past the hold time
    brings the session down — this is BGP's slow failure-detection path,
    which the paper contrasts with BFD. *)

type state =
  | Idle
  | Open_sent
  | Open_confirm
  | Established
  | Closed

val pp_state : Format.formatter -> state -> unit

type down_reason =
  | Hold_timer_expired
  | Notification_received of Message.notification
  | Channel_broken
  | Stopped  (** local administrative stop *)

val pp_down_reason : Format.formatter -> down_reason -> unit

type t

val create :
  Sim.Engine.t ->
  channel:Channel.t ->
  side:Channel.side ->
  asn:Asn.t ->
  router_id:Net.Ipv4.t ->
  ?hold_time:int ->
  ?name:string ->
  unit ->
  t
(** [hold_time] is in seconds (default 90; 0 disables keepalive/hold
    processing entirely). Attaches itself to its side of the channel. *)

val start : t -> unit
(** Sends OPEN and moves to [Open_sent]. Idempotent once started. *)

val stop : t -> unit
(** Sends a Cease notification and closes. *)

val state : t -> state
val name : t -> string

val peer : t -> Message.open_msg option
(** The peer's OPEN, available from [Open_confirm] on. *)

val negotiated_hold_time : t -> int option
(** Seconds; [None] before OPENs are exchanged or when disabled. *)

val on_established : t -> (Message.open_msg -> unit) -> unit
val on_update : t -> (Message.update -> unit) -> unit
val on_down : t -> (down_reason -> unit) -> unit
(** At most one callback each; a later registration replaces the
    earlier one. *)

val send_update : t -> Message.update -> unit
(** @raise Invalid_argument unless the session is [Established]. *)

val updates_sent : t -> int
val updates_received : t -> int
