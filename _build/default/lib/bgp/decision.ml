let med_value (r : Route.t) =
  (* Cisco-style default: a missing MED compares as 0 (best). *)
  match r.attrs.Attributes.med with Some m -> m | None -> 0

let same_neighbor_as (a : Route.t) (b : Route.t) =
  match Attributes.first_as a.attrs, Attributes.first_as b.attrs with
  | Some x, Some y -> Asn.equal x y
  | Some _, None | None, Some _ | None, None -> false

let compare (a : Route.t) (b : Route.t) =
  (* Each step returns <0 when [a] wins; fall through on ties. *)
  let step1 =
    Int.compare
      (Attributes.effective_local_pref b.attrs)
      (Attributes.effective_local_pref a.attrs)
  in
  if step1 <> 0 then step1
  else
    let step2 =
      Int.compare (Attributes.as_path_length a.attrs) (Attributes.as_path_length b.attrs)
    in
    if step2 <> 0 then step2
    else
      let step3 =
        Int.compare
          (Attributes.origin_preference a.attrs.Attributes.origin)
          (Attributes.origin_preference b.attrs.Attributes.origin)
      in
      if step3 <> 0 then step3
      else
        let step4 =
          if same_neighbor_as a b then Int.compare (med_value a) (med_value b) else 0
        in
        if step4 <> 0 then step4
        else
          let step5 = Bool.compare b.ebgp a.ebgp (* eBGP preferred *) in
          if step5 <> 0 then step5
          else
            let step6 = Int.compare a.igp_cost b.igp_cost in
            if step6 <> 0 then step6
            else
              let step7 = Net.Ipv4.compare a.peer_router_id b.peer_router_id in
              if step7 <> 0 then step7
              else Int.compare a.peer_id b.peer_id

let rank routes = List.stable_sort compare routes

let best routes =
  match rank routes with [] -> None | r :: _ -> Some r
