(** BGP path attributes (RFC 4271 §5).

    The supercharged controller's provisioning interface is exactly one
    of these fields: it rewrites {!next_hop} to a virtual next-hop before
    relaying an announcement to the router. *)

type origin = Igp | Egp | Incomplete

val origin_preference : origin -> int
(** Decision-process ranking: IGP (0) < EGP (1) < INCOMPLETE (2);
    lower is preferred. *)

val pp_origin : Format.formatter -> origin -> unit

type as_path_segment =
  | Seq of Asn.t list  (** AS_SEQUENCE: ordered traversal *)
  | Set of Asn.t list  (** AS_SET: unordered aggregate, counts as 1 hop *)

type t = {
  origin : origin;
  as_path : as_path_segment list;
  next_hop : Net.Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : (int * int) list;
}

val make :
  ?origin:origin ->
  ?as_path:as_path_segment list ->
  ?med:int ->
  ?local_pref:int ->
  ?communities:(int * int) list ->
  next_hop:Net.Ipv4.t ->
  unit ->
  t
(** Defaults: origin [Igp], empty AS path, no MED/LOCAL_PREF/communities. *)

val with_next_hop : t -> Net.Ipv4.t -> t
(** The controller's rewrite primitive. *)

val as_path_length : t -> int
(** Decision-process length: each [Seq] AS counts 1, each [Set] counts 1
    in total. *)

val first_as : t -> Asn.t option
(** Leftmost AS of the path (the neighbouring AS), used for
    MED comparability. *)

val prepend_as : Asn.t -> t -> t
(** Adds one AS at the front of the path, as a speaker does when
    propagating over eBGP. *)

val effective_local_pref : t -> int
(** [local_pref] or the conventional default 100. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
