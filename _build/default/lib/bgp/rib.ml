module Table = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

type t = {
  table : Route.t list Table.t; (* ranked, best first *)
}

let create () = { table = Table.create 4096 }

type change = {
  prefix : Net.Prefix.t;
  before : Route.t list;
  after : Route.t list;
}

let ordered t prefix =
  match Table.find_opt t.table prefix with Some l -> l | None -> []

let best t prefix =
  match ordered t prefix with [] -> None | r :: _ -> Some r

let rec insert_sorted route = function
  | [] -> [route]
  | r :: rest as l ->
    if Decision.compare route r <= 0 then route :: l
    else r :: insert_sorted route rest

let store t prefix routes =
  if routes = [] then Table.remove t.table prefix
  else Table.replace t.table prefix routes

let announce t prefix (route : Route.t) =
  let before = ordered t prefix in
  let without = List.filter (fun (r : Route.t) -> r.peer_id <> route.peer_id) before in
  let after = insert_sorted route without in
  store t prefix after;
  { prefix; before; after }

let withdraw t prefix ~peer_id =
  let before = ordered t prefix in
  if List.exists (fun (r : Route.t) -> r.peer_id = peer_id) before then begin
    let after = List.filter (fun (r : Route.t) -> r.peer_id <> peer_id) before in
    store t prefix after;
    Some { prefix; before; after }
  end
  else None

let withdraw_peer t ~peer_id =
  let affected =
    Table.fold
      (fun prefix routes acc ->
        if List.exists (fun (r : Route.t) -> r.peer_id = peer_id) routes then
          prefix :: acc
        else acc)
      t.table []
  in
  List.filter_map (fun prefix -> withdraw t prefix ~peer_id) affected

let apply_update t ~peer_id ~peer_router_id ?(ebgp = true) ?(igp_cost = 0)
    (u : Message.update) =
  let withdrawals =
    List.filter_map (fun prefix -> withdraw t prefix ~peer_id) u.withdrawn
  in
  let announcements =
    match u.attrs with
    | None -> []
    | Some attrs ->
      let route = Route.make ~ebgp ~igp_cost ~peer_id ~peer_router_id attrs in
      List.map (fun prefix -> announce t prefix route) u.nlri
  in
  withdrawals @ announcements

let cardinal t = Table.length t.table

let iter t f = Table.iter f t.table

let fold t ~init ~f =
  Table.fold (fun prefix routes acc -> f acc prefix routes) t.table init
