lib/bgp/message.ml: Asn Attributes Fmt List Net Option String
