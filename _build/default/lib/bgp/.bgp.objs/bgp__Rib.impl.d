lib/bgp/rib.ml: Decision Hashtbl List Message Net Route
