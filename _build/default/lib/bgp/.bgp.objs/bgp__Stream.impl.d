lib/bgp/stream.ml: Char Codec List Net String
