lib/bgp/route.mli: Attributes Format Net
