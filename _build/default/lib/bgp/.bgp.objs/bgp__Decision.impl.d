lib/bgp/decision.ml: Asn Attributes Bool Int List Net Route
