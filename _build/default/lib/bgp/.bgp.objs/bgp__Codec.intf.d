lib/bgp/codec.mli: Message Net
