lib/bgp/attributes.mli: Asn Format Net
