lib/bgp/rib.mli: Message Net Route
