lib/bgp/codec.ml: Asn Attributes Char Int32 Ipv4 List Message Net Option Prefix String Wire
