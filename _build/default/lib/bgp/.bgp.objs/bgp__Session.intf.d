lib/bgp/session.mli: Asn Channel Format Message Net Sim
