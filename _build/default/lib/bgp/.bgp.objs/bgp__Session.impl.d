lib/bgp/session.ml: Asn Channel Fmt Message Net Sim
