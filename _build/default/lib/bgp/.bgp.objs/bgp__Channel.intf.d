lib/bgp/channel.mli: Message Sim
