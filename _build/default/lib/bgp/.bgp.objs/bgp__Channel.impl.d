lib/bgp/channel.ml: Codec Fmt List Message Net Sim Stream String
