lib/bgp/stream.mli: Message Net
