lib/bgp/speaker.ml: Asn Fmt List Message Net Session Sim
