lib/bgp/route.ml: Attributes Fmt Net
