lib/bgp/message.mli: Asn Attributes Format Net
