lib/bgp/speaker.mli: Asn Channel Message Net Session Sim
