lib/bgp/attributes.ml: Asn Fmt Int List Net Option
