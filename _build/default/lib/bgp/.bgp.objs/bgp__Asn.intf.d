lib/bgp/asn.mli: Format
