type peer = {
  id : int;
  peer_name : string;
  session : Session.t;
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  asn : Asn.t;
  router_id : Net.Ipv4.t;
  mutable peer_list : peer list; (* reversed *)
  mutable update_cb : (peer -> Message.update -> unit) option;
  mutable established_cb : (peer -> unit) option;
  mutable down_cb : (peer -> Session.down_reason -> unit) option;
}

let create engine ~name ~asn ~router_id () =
  {
    engine;
    name;
    asn;
    router_id;
    peer_list = [];
    update_cb = None;
    established_cb = None;
    down_cb = None;
  }

let name t = t.name
let asn t = t.asn
let router_id t = t.router_id

let add_peer t ~name ~channel ~side ?hold_time () =
  let id = List.length t.peer_list in
  let session =
    Session.create t.engine ~channel ~side ~asn:t.asn ~router_id:t.router_id
      ?hold_time
      ~name:(Fmt.str "%s->%s" t.name name)
      ()
  in
  let peer = { id; peer_name = name; session } in
  Session.on_update session (fun u ->
      match t.update_cb with Some f -> f peer u | None -> ());
  Session.on_established session (fun _open ->
      match t.established_cb with Some f -> f peer | None -> ());
  Session.on_down session (fun reason ->
      match t.down_cb with Some f -> f peer reason | None -> ());
  t.peer_list <- peer :: t.peer_list;
  peer

let peers t = List.rev t.peer_list

let find_peer t id =
  match List.find_opt (fun p -> p.id = id) t.peer_list with
  | Some p -> p
  | None -> raise Not_found

let start t = List.iter (fun p -> Session.start p.session) (peers t)

let on_update t f = t.update_cb <- Some f
let on_peer_established t f = t.established_cb <- Some f
let on_peer_down t f = t.down_cb <- Some f

let send_update t ~peer_id u = Session.send_update (find_peer t peer_id).session u

let established_count t =
  List.length
    (List.filter (fun p -> Session.state p.session = Session.Established) t.peer_list)
