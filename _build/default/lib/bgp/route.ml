type t = {
  attrs : Attributes.t;
  peer_id : int;
  peer_router_id : Net.Ipv4.t;
  ebgp : bool;
  igp_cost : int;
}

let make ?(ebgp = true) ?(igp_cost = 0) ~peer_id ~peer_router_id attrs =
  { attrs; peer_id; peer_router_id; ebgp; igp_cost }

let next_hop t = t.attrs.Attributes.next_hop

let equal a b =
  a.peer_id = b.peer_id
  && Net.Ipv4.equal a.peer_router_id b.peer_router_id
  && a.ebgp = b.ebgp && a.igp_cost = b.igp_cost
  && Attributes.equal a.attrs b.attrs

let pp ppf t =
  Fmt.pf ppf "@[<h>peer#%d(%a)%s %a@]" t.peer_id Net.Ipv4.pp t.peer_router_id
    (if t.ebgp then "" else " ibgp")
    Attributes.pp t.attrs
