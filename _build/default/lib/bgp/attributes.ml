type origin = Igp | Egp | Incomplete

let origin_preference = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let pp_origin ppf o =
  Fmt.string ppf (match o with Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "INCOMPLETE")

type as_path_segment =
  | Seq of Asn.t list
  | Set of Asn.t list

type t = {
  origin : origin;
  as_path : as_path_segment list;
  next_hop : Net.Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : (int * int) list;
}

let make ?(origin = Igp) ?(as_path = []) ?med ?local_pref ?(communities = [])
    ~next_hop () =
  { origin; as_path; next_hop; med; local_pref; communities }

let with_next_hop t next_hop = { t with next_hop }

let as_path_length t =
  List.fold_left
    (fun acc seg -> match seg with Seq asns -> acc + List.length asns | Set _ -> acc + 1)
    0 t.as_path

let first_as t =
  let rec first = function
    | [] -> None
    | Seq (a :: _) :: _ -> Some a
    | Seq [] :: rest -> first rest
    | Set (a :: _) :: _ -> Some a
    | Set [] :: rest -> first rest
  in
  first t.as_path

let prepend_as asn t =
  let as_path =
    match t.as_path with
    | Seq asns :: rest -> Seq (asn :: asns) :: rest
    | other -> Seq [asn] :: other
  in
  { t with as_path }

let effective_local_pref t =
  match t.local_pref with Some lp -> lp | None -> 100

let segment_compare a b =
  match a, b with
  | Seq x, Seq y | Set x, Set y -> List.compare Asn.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare a b =
  let c = Int.compare (origin_preference a.origin) (origin_preference b.origin) in
  if c <> 0 then c
  else
    let c = List.compare segment_compare a.as_path b.as_path in
    if c <> 0 then c
    else
      let c = Net.Ipv4.compare a.next_hop b.next_hop in
      if c <> 0 then c
      else
        let c = Option.compare Int.compare a.med b.med in
        if c <> 0 then c
        else
          let c = Option.compare Int.compare a.local_pref b.local_pref in
          if c <> 0 then c
          else
            List.compare
              (fun (x1, y1) (x2, y2) ->
                let c = Int.compare x1 x2 in
                if c <> 0 then c else Int.compare y1 y2)
              a.communities b.communities

let equal a b = compare a b = 0

let pp_segment ppf = function
  | Seq asns -> Fmt.(list ~sep:sp Asn.pp) ppf asns
  | Set asns -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Asn.pp) asns

let pp ppf t =
  Fmt.pf ppf "@[origin=%a path=[%a] nh=%a" pp_origin t.origin
    Fmt.(list ~sep:sp pp_segment)
    t.as_path Net.Ipv4.pp t.next_hop;
  (match t.med with Some m -> Fmt.pf ppf " med=%d" m | None -> ());
  (match t.local_pref with Some lp -> Fmt.pf ppf " lp=%d" lp | None -> ());
  (match t.communities with
  | [] -> ()
  | cs ->
    Fmt.pf ppf " comm=%a"
      Fmt.(list ~sep:comma (fun ppf (a, b) -> Fmt.pf ppf "%d:%d" a b))
      cs);
  Fmt.pf ppf "@]"
