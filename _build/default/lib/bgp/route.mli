(** A candidate route as stored in the RIB: path attributes plus the
    bookkeeping the decision process needs about where the route was
    learned. *)

type t = {
  attrs : Attributes.t;
  peer_id : int;  (** dense index of the session the route came from *)
  peer_router_id : Net.Ipv4.t;  (** final decision-process tiebreak *)
  ebgp : bool;  (** learned over eBGP (preferred over iBGP) *)
  igp_cost : int;  (** cost to reach [attrs.next_hop]; 0 for direct peers *)
}

val make :
  ?ebgp:bool ->
  ?igp_cost:int ->
  peer_id:int ->
  peer_router_id:Net.Ipv4.t ->
  Attributes.t ->
  t
(** Defaults: [ebgp = true], [igp_cost = 0]. *)

val next_hop : t -> Net.Ipv4.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
