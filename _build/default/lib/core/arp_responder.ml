type verdict =
  | Reply of Net.Arp.t
  | Flood
  | Ignore

let handle groups (arp : Net.Arp.t) =
  match arp.op with
  | Net.Arp.Reply -> Ignore
  | Net.Arp.Request -> (
    match Backup_group.find_by_vnh groups arp.target_ip with
    | Some binding -> Reply (Net.Arp.reply arp ~sender_mac:binding.Backup_group.vmac)
    | None -> Flood)
