(** The controller-side ARP resolver (the paper extends Floodlight with
    one of these).

    When the supercharged router receives a route whose next hop is a
    VNH, it issues an ARP request for it; the switch punts the request to
    the controller, which answers with the backup-group's VMAC. Requests
    for anything that is not a VNH are left for the real owner to answer
    (the controller re-floods them). *)

type verdict =
  | Reply of Net.Arp.t
      (** answer with this (VMAC-bearing) ARP reply, out the ingress
          port *)
  | Flood  (** not ours — re-flood so the real owner can answer *)
  | Ignore  (** not a request; nothing to do *)

val handle : Backup_group.t -> Net.Arp.t -> verdict
