lib/core/arp_responder.ml: Backup_group Net
