lib/core/algorithm.ml: Backup_group Bgp Fmt Hashtbl List Net
