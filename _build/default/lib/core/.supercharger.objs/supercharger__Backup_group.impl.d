lib/core/backup_group.ml: Fmt Hashtbl List Net Vnh
