lib/core/fib_cache.ml: Fmt Hashtbl Net Openflow Option Provisioner Vnh
