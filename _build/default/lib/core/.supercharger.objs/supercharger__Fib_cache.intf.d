lib/core/fib_cache.mli: Net Openflow Provisioner Vnh
