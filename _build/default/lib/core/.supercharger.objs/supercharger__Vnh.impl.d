lib/core/vnh.ml: Int64 Net Queue
