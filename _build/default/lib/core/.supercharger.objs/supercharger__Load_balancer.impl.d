lib/core/load_balancer.ml: Hashtbl Int32 List Net Openflow Option Provisioner Vnh
