lib/core/controller.mli: Algorithm Backup_group Bgp Net Openflow Provisioner Router Sim
