lib/core/provisioner.ml: Backup_group Fmt Hashtbl List Net Obs Openflow
