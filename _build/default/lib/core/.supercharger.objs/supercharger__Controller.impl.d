lib/core/controller.ml: Algorithm Arp_responder Backup_group Bfd Bgp Fmt Hashtbl Int32 List Net Obs Openflow Provisioner Router Sim Vnh
