lib/core/controller.ml: Algorithm Arp_responder Backup_group Bfd Bgp Fmt Hashtbl Int32 List Net Openflow Provisioner Router Sim Vnh
