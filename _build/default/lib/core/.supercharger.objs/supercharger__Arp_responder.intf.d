lib/core/arp_responder.mli: Backup_group Net
