lib/core/provisioner.mli: Backup_group Net Obs Openflow
