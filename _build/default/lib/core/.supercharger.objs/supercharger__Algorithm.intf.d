lib/core/algorithm.mli: Backup_group Bgp Format Net
