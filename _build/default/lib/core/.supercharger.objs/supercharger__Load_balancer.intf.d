lib/core/load_balancer.mli: Net Openflow Provisioner Vnh
