lib/core/backup_group.mli: Format Net Vnh
