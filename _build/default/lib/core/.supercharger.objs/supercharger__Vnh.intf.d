lib/core/vnh.mli: Net
