lib/router/endhost.ml: Arp_cache Net Sim
