lib/router/peer.ml: Bfd Bgp Fmt Hashtbl Int32 List Net Sim
