lib/router/legacy.mli: Bfd Bgp Fib Net Sim
