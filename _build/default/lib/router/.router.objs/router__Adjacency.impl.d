lib/router/adjacency.ml: Fmt Net
