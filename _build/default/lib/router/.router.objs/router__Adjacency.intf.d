lib/router/adjacency.mli: Format Net
