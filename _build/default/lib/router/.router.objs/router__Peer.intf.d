lib/router/peer.mli: Bgp Net Sim
