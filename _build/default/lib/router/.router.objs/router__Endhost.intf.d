lib/router/endhost.mli: Net Sim
