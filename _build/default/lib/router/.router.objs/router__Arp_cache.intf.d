lib/router/arp_cache.mli: Net Sim
