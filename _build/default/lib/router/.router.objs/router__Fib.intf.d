lib/router/fib.mli: Adjacency Format Net Sim
