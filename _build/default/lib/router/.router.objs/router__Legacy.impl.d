lib/router/legacy.ml: Adjacency Arp_cache Array Bfd Bgp Fib Fmt Hashtbl Int32 List Net Sim
