lib/router/arp_cache.ml: Hashtbl List Net Sim
