lib/router/fib.ml: Adjacency Fmt Net Queue Sim
