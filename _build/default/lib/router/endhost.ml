type t = {
  engine : Sim.Engine.t;
  name : string;
  mac : Net.Mac.t;
  ip : Net.Ipv4.t;
  arp : Arp_cache.t;
  tx : (Net.Ethernet.frame -> unit) option ref;
  mutable udp_cb : (src:Net.Ipv4.t -> Net.Udp.t -> unit) option;
  mutable udp_received : int;
}

let create engine ~name ~mac ~ip () =
  let tx = ref None in
  let transmit frame = match !tx with Some f -> f frame | None -> () in
  let send_request ~interface:_ ~target =
    transmit
      (Net.Ethernet.make ~src:mac ~dst:Net.Mac.broadcast
         (Net.Ethernet.Arp (Net.Arp.request ~sender_mac:mac ~sender_ip:ip ~target_ip:target)))
  in
  let arp = Arp_cache.create engine ~name:(name ^ ".arp") ~send_request () in
  { engine; name; mac; ip; arp; tx; udp_cb = None; udp_received = 0 }

let transmit t frame = match !(t.tx) with Some f -> f frame | None -> ()

let name t = t.name
let mac t = t.mac
let ip t = t.ip

let receive t (frame : Net.Ethernet.frame) =
  let for_me = Net.Mac.equal frame.dst t.mac || Net.Mac.is_broadcast frame.dst in
  if for_me then
    match frame.payload with
    | Net.Ethernet.Arp a -> (
      Arp_cache.learn t.arp a.sender_ip a.sender_mac;
      match a.op with
      | Net.Arp.Request when Net.Ipv4.equal a.target_ip t.ip ->
        let reply = Net.Arp.reply a ~sender_mac:t.mac in
        transmit t
          (Net.Ethernet.make ~src:t.mac ~dst:a.sender_mac (Net.Ethernet.Arp reply))
      | Net.Arp.Request | Net.Arp.Reply -> ())
    | Net.Ethernet.Ipv4 p when Net.Ipv4.equal p.dst t.ip -> (
      match p.payload with
      | Net.Ipv4_packet.Udp u ->
        t.udp_received <- t.udp_received + 1;
        (match t.udp_cb with Some f -> f ~src:p.src u | None -> ())
      | Net.Ipv4_packet.Raw _ -> ())
    | Net.Ethernet.Ipv4 _ -> ()

let connect t link side =
  t.tx := Some (fun frame -> Net.Link.send link side frame);
  Net.Link.attach link side (receive t)

let resolve t dst k = Arp_cache.resolve t.arp ~interface:0 dst k

let send_udp t ~dst ~src_port ~dst_port payload =
  resolve t dst (fun dst_mac ->
      let packet = Net.Ipv4_packet.udp ~src:t.ip ~dst ~src_port ~dst_port payload in
      transmit t
        (Net.Ethernet.make ~src:t.mac ~dst:dst_mac (Net.Ethernet.Ipv4 packet)))

let on_udp t f = t.udp_cb <- Some f

let udp_received t = t.udp_received
