(** L2 next-hop entries — what a flat FIB maps every prefix to.

    In the paper's Fig. 1, each of the 512 k FIB entries carries one of
    these (MAC of the chosen next-hop + output interface); that is
    precisely why failover must rewrite them all. *)

type t = {
  interface : int;  (** output interface index *)
  mac : Net.Mac.t;  (** destination MAC of the L2 next-hop *)
}

val make : interface:int -> mac:Net.Mac.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
