module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type t = {
  engine : Sim.Engine.t;
  name : string;
  asn : Bgp.Asn.t;
  mac : Net.Mac.t;
  ip : Net.Ipv4.t;
  bfd_detect_mult : int option;
  bfd_tx_interval : Sim.Time.t option;
  speaker : Bgp.Speaker.t;
  bfd_responders : Bfd.Session.t Ip_table.t;
  mutable remote_macs : Net.Mac.t Ip_table.t;
  mutable tx : (Net.Ethernet.frame -> unit) option;
  mutable delivery_cb : (Net.Ipv4_packet.t -> unit) option;
  mutable delivered : int;
  mutable next_discriminator : int32;
}

let create engine ~name ~asn ~mac ~ip ?bfd_detect_mult ?bfd_tx_interval () =
  {
    engine;
    name;
    asn;
    mac;
    ip;
    bfd_detect_mult;
    bfd_tx_interval;
    speaker = Bgp.Speaker.create engine ~name ~asn ~router_id:ip ();
    bfd_responders = Ip_table.create 4;
    remote_macs = Ip_table.create 8;
    tx = None;
    delivery_cb = None;
    delivered = 0;
    next_discriminator = 1l;
  }

let name t = t.name
let mac t = t.mac
let ip t = t.ip
let asn t = t.asn
let speaker t = t.speaker

let add_bgp_peer t ~name ~channel ~side ?hold_time () =
  Bgp.Speaker.add_peer t.speaker ~name ~channel ~side ?hold_time ()

let announce_to_all t update =
  List.iter
    (fun (p : Bgp.Speaker.peer) ->
      if Bgp.Session.state p.session = Bgp.Session.Established then
        Bgp.Session.send_update p.session update)
    (Bgp.Speaker.peers t.speaker)

let transmit t frame = match t.tx with Some f -> f frame | None -> ()

(* BFD responder sessions spring into existence on the first control
   packet from a remote, mirroring a daemon configured in listen mode. *)
let bfd_responder t remote_ip =
  match Ip_table.find_opt t.bfd_responders remote_ip with
  | Some session -> session
  | None ->
    let discriminator = t.next_discriminator in
    t.next_discriminator <- Int32.succ t.next_discriminator;
    let send pkt =
      match Ip_table.find_opt t.remote_macs remote_ip with
      | Some dst_mac ->
        let packet =
          Net.Ipv4_packet.udp ~src:t.ip ~dst:remote_ip
            ~src_port:(49152 + Int32.to_int discriminator)
            ~dst_port:Bfd.Packet.udp_port (Bfd.Packet.encode pkt)
        in
        transmit t (Net.Ethernet.make ~src:t.mac ~dst:dst_mac (Net.Ethernet.Ipv4 packet))
      | None -> ()
    in
    let session =
      Bfd.Session.create t.engine
        ~name:(Fmt.str "%s-bfd-%a" t.name Net.Ipv4.pp remote_ip)
        ~local_discriminator:discriminator ?detect_mult:t.bfd_detect_mult
        ?tx_interval:t.bfd_tx_interval ~send ()
    in
    Bfd.Session.enable session;
    Ip_table.replace t.bfd_responders remote_ip session;
    session

let receive t (frame : Net.Ethernet.frame) =
  let for_me = Net.Mac.equal frame.dst t.mac || Net.Mac.is_broadcast frame.dst in
  if for_me then
    match frame.payload with
    | Net.Ethernet.Arp a -> (
      Ip_table.replace t.remote_macs a.sender_ip a.sender_mac;
      match a.op with
      | Net.Arp.Request when Net.Ipv4.equal a.target_ip t.ip ->
        let reply = Net.Arp.reply a ~sender_mac:t.mac in
        transmit t
          (Net.Ethernet.make ~src:t.mac ~dst:a.sender_mac (Net.Ethernet.Arp reply))
      | Net.Arp.Request | Net.Arp.Reply -> ())
    | Net.Ethernet.Ipv4 p when Net.Ipv4.equal p.dst t.ip -> (
      match p.payload with
      | Net.Ipv4_packet.Udp u when u.Net.Udp.dst_port = Bfd.Packet.udp_port -> (
        Ip_table.replace t.remote_macs p.src frame.src;
        match Bfd.Packet.decode u.Net.Udp.payload with
        | Ok pkt -> Bfd.Session.receive (bfd_responder t p.src) pkt
        | Error _ -> ())
      | Net.Ipv4_packet.Udp _ | Net.Ipv4_packet.Raw _ -> ())
    | Net.Ethernet.Ipv4 p ->
      (* Transit traffic: the provider "carries it to the Internet"; in
         the lab it is wired straight to the sink. *)
      t.delivered <- t.delivered + 1;
      (match t.delivery_cb with Some f -> f p | None -> ())

let connect t link side =
  t.tx <- Some (fun frame -> Net.Link.send link side frame);
  Net.Link.attach link side (receive t)

let on_delivery t f = t.delivery_cb <- Some f

let packets_delivered t = t.delivered
