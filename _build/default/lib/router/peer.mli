(** Provider edge router (the paper's R2/R3).

    A deliberately simple node: it answers ARP for its address, responds
    to BFD (auto-creating a responder session per remote, like FreeBFD in
    responder role), hands every received data packet to a delivery
    callback (the paper wires R2/R3 to the sink FPGA), and carries a BGP
    speaker used to originate a routing feed. *)

type t

val create :
  Sim.Engine.t ->
  name:string ->
  asn:Bgp.Asn.t ->
  mac:Net.Mac.t ->
  ip:Net.Ipv4.t ->
  ?bfd_detect_mult:int ->
  ?bfd_tx_interval:Sim.Time.t ->
  unit ->
  t
(** [ip] doubles as the BGP router-id. BFD parameters apply to the
    responder sessions it creates. *)

val name : t -> string
val mac : t -> Net.Mac.t
val ip : t -> Net.Ipv4.t
val asn : t -> Bgp.Asn.t

val speaker : t -> Bgp.Speaker.t

val add_bgp_peer :
  t ->
  name:string ->
  channel:Bgp.Channel.t ->
  side:Bgp.Channel.side ->
  ?hold_time:int ->
  unit ->
  Bgp.Speaker.peer

val announce_to_all : t -> Bgp.Message.update -> unit
(** Sends the update on every established session. *)

val connect : t -> Net.Link.t -> Net.Link.side -> unit

val on_delivery : t -> (Net.Ipv4_packet.t -> unit) -> unit
(** Every non-local IP packet the peer receives goes here — the wire to
    the sink. *)

val receive : t -> Net.Ethernet.frame -> unit

val packets_delivered : t -> int
