(** A minimal IP end host with one interface.

    Speaks ARP (resolves and answers) and sends/receives UDP. Used for
    any machine that needs a data-plane presence without being a router:
    the supercharger controller's BFD attachment to the switch, and the
    hosts in the examples. *)

type t

val create :
  Sim.Engine.t ->
  name:string ->
  mac:Net.Mac.t ->
  ip:Net.Ipv4.t ->
  unit ->
  t

val name : t -> string
val mac : t -> Net.Mac.t
val ip : t -> Net.Ipv4.t

val connect : t -> Net.Link.t -> Net.Link.side -> unit
(** Plugs the host into one side of a link. *)

val resolve : t -> Net.Ipv4.t -> (Net.Mac.t -> unit) -> unit
(** ARP resolution (cached). *)

val send_udp :
  t -> dst:Net.Ipv4.t -> src_port:int -> dst_port:int -> string -> unit
(** Resolves [dst] on the local segment and transmits. *)

val on_udp : t -> (src:Net.Ipv4.t -> Net.Udp.t -> unit) -> unit
(** Callback for UDP datagrams addressed to this host. *)

val receive : t -> Net.Ethernet.frame -> unit
(** Direct data-plane input (used when wiring without a {!Net.Link}). *)

val udp_received : t -> int
