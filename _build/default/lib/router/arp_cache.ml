module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type pending = {
  interface : int;
  mutable waiters : (Net.Mac.t -> unit) list; (* reversed *)
  mutable tries : int;
  mutable retry_task : Sim.Engine.handle option;
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  retry_interval : Sim.Time.t;
  max_retries : int;
  send_request : interface:int -> target:Net.Ipv4.t -> unit;
  cache : Net.Mac.t Ip_table.t;
  pending : pending Ip_table.t;
}

let create engine ?(name = "arp") ?(retry_interval = Sim.Time.of_sec 1.0)
    ?(max_retries = 4) ~send_request () =
  {
    engine;
    name;
    retry_interval;
    max_retries;
    send_request;
    cache = Ip_table.create 64;
    pending = Ip_table.create 16;
  }

let lookup t ip = Ip_table.find_opt t.cache ip

let rec schedule_retry t ip p =
  p.retry_task <-
    Some
      (Sim.Engine.schedule_after t.engine t.retry_interval (fun () ->
           if Ip_table.mem t.pending ip then begin
             if p.tries >= t.max_retries then begin
               Sim.Trace.emitf (Sim.Engine.trace t.engine)
                 (Sim.Engine.now t.engine) ~category:"arp"
                 "%s: giving up on %a after %d tries" t.name Net.Ipv4.pp ip
                 p.tries;
               Ip_table.remove t.pending ip
             end
             else begin
               p.tries <- p.tries + 1;
               t.send_request ~interface:p.interface ~target:ip;
               schedule_retry t ip p
             end
           end))

let resolve t ~interface ip k =
  match lookup t ip with
  | Some mac -> k mac
  | None -> (
    match Ip_table.find_opt t.pending ip with
    | Some p -> p.waiters <- k :: p.waiters
    | None ->
      let p = { interface; waiters = [k]; tries = 1; retry_task = None } in
      Ip_table.replace t.pending ip p;
      t.send_request ~interface ~target:ip;
      schedule_retry t ip p)

let learn t ip mac =
  Ip_table.replace t.cache ip mac;
  match Ip_table.find_opt t.pending ip with
  | None -> ()
  | Some p ->
    Ip_table.remove t.pending ip;
    (match p.retry_task with Some h -> Sim.Engine.cancel h | None -> ());
    List.iter (fun k -> k mac) (List.rev p.waiters)

let flush t = Ip_table.reset t.cache

let pending_count t = Ip_table.length t.pending
