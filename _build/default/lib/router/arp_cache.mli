(** ARP resolution cache with pending-request queueing.

    [resolve] answers synchronously on a hit; on a miss it emits an ARP
    request through the owner-supplied transmit function and queues the
    continuation. Requests are retried on a timer and deduplicated per
    target, so a thousand prefixes pointing at a fresh virtual next-hop
    trigger exactly one ARP exchange — the behaviour the supercharger's
    provisioning relies on. *)

type t

val create :
  Sim.Engine.t ->
  ?name:string ->
  ?retry_interval:Sim.Time.t ->
  ?max_retries:int ->
  send_request:(interface:int -> target:Net.Ipv4.t -> unit) ->
  unit ->
  t
(** Defaults: retry every 1 s, give up after 4 tries (pending callbacks
    are dropped and a trace line is emitted). *)

val resolve : t -> interface:int -> Net.Ipv4.t -> (Net.Mac.t -> unit) -> unit

val learn : t -> Net.Ipv4.t -> Net.Mac.t -> unit
(** Feed a (reply or gratuitously observed) binding; fires pending
    resolutions for that address in FIFO order. A changed binding
    overwrites the cached one. *)

val lookup : t -> Net.Ipv4.t -> Net.Mac.t option

val flush : t -> unit
(** Drops all cached bindings (pending resolutions are kept). *)

val pending_count : t -> int
