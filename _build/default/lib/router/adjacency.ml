type t = {
  interface : int;
  mac : Net.Mac.t;
}

let make ~interface ~mac = { interface; mac }

let equal a b = a.interface = b.interface && Net.Mac.equal a.mac b.mac

let pp ppf t = Fmt.pf ppf "(%a, if%d)" Net.Mac.pp t.mac t.interface
