type t = {
  origin : Net.Ipv4.t;
  seq : int;
  links : (Net.Ipv4.t * int) list;
}

let make ~origin ~seq ~links =
  List.iter
    (fun (_, cost) -> if cost <= 0 then invalid_arg "Lsa.make: non-positive cost")
    links;
  { origin; seq; links }

let newer a ~than =
  Net.Ipv4.equal a.origin than.origin && a.seq > than.seq

let equal a b =
  Net.Ipv4.equal a.origin b.origin && a.seq = b.seq
  && List.equal
       (fun (n1, c1) (n2, c2) -> Net.Ipv4.equal n1 n2 && c1 = c2)
       a.links b.links

let pp ppf t =
  Fmt.pf ppf "lsa %a seq=%d links=[%a]" Net.Ipv4.pp t.origin t.seq
    Fmt.(list ~sep:comma (fun ppf (n, c) -> Fmt.pf ppf "%a:%d" Net.Ipv4.pp n c))
    t.links
