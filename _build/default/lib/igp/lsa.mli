(** Link-state advertisements.

    The paper notes the supercharger's provisioning trick works with
    intra-domain protocols too ("other intra-domain routing protocols
    such as OSPF or IS-IS can also be used"); this library provides the
    link-state substrate — OSPF-style router LSAs, flooding and SPF —
    and feeds the IGP-cost step of the BGP decision process. *)

type t = {
  origin : Net.Ipv4.t;  (** originating router id *)
  seq : int;  (** freshness; higher wins *)
  links : (Net.Ipv4.t * int) list;  (** (neighbor router id, cost) *)
}

val make : origin:Net.Ipv4.t -> seq:int -> links:(Net.Ipv4.t * int) list -> t
(** Costs must be positive. *)

val newer : t -> than:t -> bool
(** Same origin, strictly higher sequence number. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
