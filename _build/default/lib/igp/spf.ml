module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

let distances ~source ~lsas =
  (* Index the freshest LSA per origin. *)
  let db = Ip_table.create 16 in
  List.iter
    (fun (lsa : Lsa.t) ->
      match Ip_table.find_opt db lsa.origin with
      | Some existing when not (Lsa.newer lsa ~than:existing) -> ()
      | _ -> Ip_table.replace db lsa.origin lsa)
    lsas;
  let advertises a b =
    match Ip_table.find_opt db a with
    | Some (lsa : Lsa.t) -> List.exists (fun (n, _) -> Net.Ipv4.equal n b) lsa.links
    | None -> false
  in
  let edges_from a =
    match Ip_table.find_opt db a with
    | Some (lsa : Lsa.t) ->
      (* Two-way connectivity check: use the link only if the neighbor
         advertises it back. *)
      List.filter (fun (n, _) -> advertises n a) lsa.links
    | None -> []
  in
  let dist = Ip_table.create 16 in
  let heap = Sim.Heap.create ~cmp:(fun (da, _) (db, _) -> Int.compare da db) () in
  Sim.Heap.push heap (0, source);
  let rec loop () =
    match Sim.Heap.pop heap with
    | None -> ()
    | Some (d, node) ->
      if not (Ip_table.mem dist node) then begin
        Ip_table.replace dist node d;
        List.iter
          (fun (neighbor, cost) ->
            if not (Ip_table.mem dist neighbor) then
              Sim.Heap.push heap (d + cost, neighbor))
          (edges_from node)
      end;
      loop ()
  in
  loop ();
  List.sort
    (fun (a, _) (b, _) -> Net.Ipv4.compare a b)
    (Ip_table.fold (fun node d acc -> (node, d) :: acc) dist [])

let distance_to ~source ~lsas target =
  List.find_map
    (fun (n, d) -> if Net.Ipv4.equal n target then Some d else None)
    (distances ~source ~lsas)
