module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type t = Lsa.t Ip_table.t

let create () = Ip_table.create 16

type verdict =
  | Installed
  | Duplicate
  | Stale

let install t (lsa : Lsa.t) =
  match Ip_table.find_opt t lsa.origin with
  | None ->
    Ip_table.replace t lsa.origin lsa;
    Installed
  | Some held ->
    if Lsa.newer lsa ~than:held then begin
      Ip_table.replace t lsa.origin lsa;
      Installed
    end
    else if lsa.seq = held.seq then Duplicate
    else Stale

let find t origin = Ip_table.find_opt t origin

let all t = Ip_table.fold (fun _ lsa acc -> lsa :: acc) t []

let cardinal t = Ip_table.length t
