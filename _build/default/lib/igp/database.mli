(** Link-state database: the freshest LSA per origin. *)

type t

val create : unit -> t

type verdict =
  | Installed  (** newer than anything held: store and flood *)
  | Duplicate  (** same sequence already held: ignore *)
  | Stale  (** older than the held copy: ignore (and could re-flood ours) *)

val install : t -> Lsa.t -> verdict

val find : t -> Net.Ipv4.t -> Lsa.t option
val all : t -> Lsa.t list
val cardinal : t -> int
