(** Shortest-path-first computation (Dijkstra over the LSA database).

    Per link-state convention a link contributes to the topology only
    when {e both} endpoints advertise it (the two-way connectivity
    check), so a router that died — or whose LSA has not arrived yet —
    cannot attract traffic through stale adjacencies. *)

val distances : source:Net.Ipv4.t -> lsas:Lsa.t list -> (Net.Ipv4.t * int) list
(** Cost of the shortest path from [source] to every reachable router
    (the source itself included, at 0). Links are asymmetric: the cost
    advertised by the near end is used in each direction. Unreachable
    routers are absent. *)

val distance_to : source:Net.Ipv4.t -> lsas:Lsa.t list -> Net.Ipv4.t -> int option
