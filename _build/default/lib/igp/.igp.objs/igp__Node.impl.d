lib/igp/node.ml: Database List Lsa Net Sim Spf
