lib/igp/lsa.ml: Fmt List Net
