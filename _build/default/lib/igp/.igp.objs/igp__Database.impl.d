lib/igp/database.ml: Hashtbl Lsa Net
