lib/igp/spf.ml: Hashtbl Int List Lsa Net Sim
