lib/igp/database.mli: Lsa Net
