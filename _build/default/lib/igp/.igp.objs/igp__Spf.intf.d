lib/igp/spf.mli: Lsa Net
