lib/igp/lsa.mli: Format Net
