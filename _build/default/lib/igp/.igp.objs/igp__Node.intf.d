lib/igp/node.mli: Database Net Sim
