(** OpenFlow 1.0 binary encoding of the controller-switch messages the
    system uses.

    The simulation moves structured {!Message.t}s, but every message is
    round-trippable through the real OF 1.0 wire format (the on-wire
    protocol of the paper's HP E3800 / Floodlight deployment): the
    40-byte [ofp_match] with its wildcard bitmap, [ofp_flow_mod],
    [ofp_packet_in]/[ofp_packet_out] carrying real Ethernet frames
    (via {!Net.Wire}), and the trivial HELLO/ECHO/BARRIER messages.
    Property tests assert the round-trip. *)

val encode : Message.t -> string
(** Serialises one message, including the 8-byte OF header. Transaction
    ids: echo and barrier messages carry theirs; other messages are
    sent with xid 0. *)

val decode : string -> (Message.t * int, Net.Wire.error) result
(** Decodes the first message in the buffer and the bytes consumed. *)

val decode_exact : string -> (Message.t, Net.Wire.error) result
(** Requires the buffer to hold exactly one message. *)

val version : int
(** 0x01. *)
