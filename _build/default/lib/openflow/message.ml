type t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Features_request
  | Features_reply of { datapath_id : int64; n_ports : int }
  | Flow_mod of Flow_table.flow_mod
  | Packet_in of { in_port : int; frame : Net.Ethernet.frame }
  | Packet_out of { actions : Action.t list; frame : Net.Ethernet.frame }
  | Barrier_request of int
  | Barrier_reply of int

let pp ppf = function
  | Hello -> Fmt.string ppf "HELLO"
  | Echo_request xid -> Fmt.pf ppf "ECHO_REQUEST xid=%d" xid
  | Echo_reply xid -> Fmt.pf ppf "ECHO_REPLY xid=%d" xid
  | Features_request -> Fmt.string ppf "FEATURES_REQUEST"
  | Features_reply { datapath_id; n_ports } ->
    Fmt.pf ppf "FEATURES_REPLY dpid=%Ld ports=%d" datapath_id n_ports
  | Flow_mod fm ->
    let cmd =
      match fm.Flow_table.command with
      | Flow_table.Add -> "ADD"
      | Flow_table.Modify -> "MODIFY"
      | Flow_table.Modify_strict -> "MODIFY_STRICT"
      | Flow_table.Delete -> "DELETE"
      | Flow_table.Delete_strict -> "DELETE_STRICT"
    in
    Fmt.pf ppf "FLOW_MOD %s prio=%d %a -> %a" cmd fm.Flow_table.fm_priority
      Ofmatch.pp fm.Flow_table.fm_match Action.pp_list fm.Flow_table.fm_actions
  | Packet_in { in_port; frame } ->
    Fmt.pf ppf "PACKET_IN port=%d %a" in_port Net.Ethernet.pp frame
  | Packet_out { actions; frame } ->
    Fmt.pf ppf "PACKET_OUT %a %a" Action.pp_list actions Net.Ethernet.pp frame
  | Barrier_request xid -> Fmt.pf ppf "BARRIER_REQUEST xid=%d" xid
  | Barrier_reply xid -> Fmt.pf ppf "BARRIER_REPLY xid=%d" xid
