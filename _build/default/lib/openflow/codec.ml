open Net

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let version = 0x01

(* ofp_type values *)
let t_hello = 0
let t_echo_request = 2
let t_echo_reply = 3
let t_features_request = 5
let t_features_reply = 6
let t_packet_in = 10
let t_packet_out = 13
let t_flow_mod = 14
let t_barrier_request = 18
let t_barrier_reply = 19

(* Special output ports. *)
let p_flood = 0xFFFB
let p_controller = 0xFFFD

(* ofp_flow_wildcards bits *)
let w_in_port = 1 lsl 0
let w_dl_vlan = 1 lsl 1
let w_dl_src = 1 lsl 2
let w_dl_dst = 1 lsl 3
let w_dl_type = 1 lsl 4
let w_nw_proto = 1 lsl 5
let w_tp_src = 1 lsl 6
let w_tp_dst = 1 lsl 7
let w_nw_src_shift = 8
let w_nw_dst_shift = 14
let w_dl_vlan_pcp = 1 lsl 20
let w_nw_tos = 1 lsl 21

let write_mac buf mac = Array.iter (Wire.Buf.u8 buf) (Mac.to_bytes mac)

let read_mac r =
  let* s = Wire.Reader.take r 6 in
  Ok (Mac.of_bytes (Array.init 6 (fun i -> Char.code s.[i])))

(* --- ofp_match (40 bytes) --------------------------------------------- *)

let encode_match buf (m : Ofmatch.t) =
  let wild field bit = match field with Some _ -> 0 | None -> bit in
  let ip_wild field shift =
    let missing_bits =
      match field with
      | Some p -> 32 - Net.Prefix.length p
      | None -> 63 (* "greater than 32 wildcards the whole field" *)
    in
    missing_bits lsl shift
  in
  let wildcards =
    wild m.in_port w_in_port lor w_dl_vlan lor wild m.dl_src w_dl_src
    lor wild m.dl_dst w_dl_dst lor wild m.dl_type w_dl_type
    lor wild m.nw_proto w_nw_proto lor wild m.tp_src w_tp_src
    lor wild m.tp_dst w_tp_dst
    lor ip_wild m.nw_src w_nw_src_shift
    lor ip_wild m.nw_dst w_nw_dst_shift
    lor w_dl_vlan_pcp lor w_nw_tos
  in
  Wire.Buf.u32 buf (Int32.of_int wildcards);
  Wire.Buf.u16 buf (Option.value m.in_port ~default:0);
  write_mac buf (Option.value m.dl_src ~default:Mac.zero);
  write_mac buf (Option.value m.dl_dst ~default:Mac.zero);
  Wire.Buf.u16 buf 0xFFFF (* dl_vlan: OFP_VLAN_NONE *);
  Wire.Buf.u8 buf 0 (* dl_vlan_pcp *);
  Wire.Buf.u8 buf 0 (* pad *);
  Wire.Buf.u16 buf (Option.value m.dl_type ~default:0);
  Wire.Buf.u8 buf 0 (* nw_tos *);
  Wire.Buf.u8 buf (Option.value m.nw_proto ~default:0);
  Wire.Buf.u16 buf 0 (* pad *);
  Wire.Buf.u32 buf
    (Ipv4.to_int32 (match m.nw_src with Some p -> Prefix.network p | None -> Ipv4.any));
  Wire.Buf.u32 buf
    (Ipv4.to_int32 (match m.nw_dst with Some p -> Prefix.network p | None -> Ipv4.any));
  Wire.Buf.u16 buf (Option.value m.tp_src ~default:0);
  Wire.Buf.u16 buf (Option.value m.tp_dst ~default:0)

let decode_match r =
  let* wildcards_raw = Wire.Reader.u32 r in
  let wildcards = Int32.to_int wildcards_raw land 0x3FFFFF in
  let* in_port = Wire.Reader.u16 r in
  let* dl_src = read_mac r in
  let* dl_dst = read_mac r in
  let* _dl_vlan = Wire.Reader.u16 r in
  let* _dl_vlan_pcp = Wire.Reader.u8 r in
  let* _pad = Wire.Reader.u8 r in
  let* dl_type = Wire.Reader.u16 r in
  let* _nw_tos = Wire.Reader.u8 r in
  let* nw_proto = Wire.Reader.u8 r in
  let* _pad2 = Wire.Reader.u16 r in
  let* nw_src = Wire.Reader.u32 r in
  let* nw_dst = Wire.Reader.u32 r in
  let* tp_src = Wire.Reader.u16 r in
  let* tp_dst = Wire.Reader.u16 r in
  let field bit v = if wildcards land bit <> 0 then None else Some v in
  let ip_field shift raw =
    (* 0..32 missing bits map to a prefix (32 -> the semantically
       equivalent /0); anything larger is the fully-wildcarded field our
       encoder writes for an absent match. *)
    let missing = (wildcards lsr shift) land 0x3F in
    if missing > 32 then None
    else Some (Prefix.make (Ipv4.of_int32 raw) (32 - missing))
  in
  Ok
    {
      Ofmatch.in_port = field w_in_port in_port;
      dl_src = field w_dl_src dl_src;
      dl_dst = field w_dl_dst dl_dst;
      dl_type = field w_dl_type dl_type;
      nw_src = ip_field w_nw_src_shift nw_src;
      nw_dst = ip_field w_nw_dst_shift nw_dst;
      nw_proto = field w_nw_proto nw_proto;
      tp_src = field w_tp_src tp_src;
      tp_dst = field w_tp_dst tp_dst;
    }

(* --- actions ------------------------------------------------------------ *)

let encode_action buf = function
  | Action.Output port ->
    Wire.Buf.u16 buf 0;
    Wire.Buf.u16 buf 8;
    Wire.Buf.u16 buf port;
    Wire.Buf.u16 buf 0xFFFF (* max_len *)
  | Action.Flood ->
    Wire.Buf.u16 buf 0;
    Wire.Buf.u16 buf 8;
    Wire.Buf.u16 buf p_flood;
    Wire.Buf.u16 buf 0xFFFF
  | Action.To_controller ->
    Wire.Buf.u16 buf 0;
    Wire.Buf.u16 buf 8;
    Wire.Buf.u16 buf p_controller;
    Wire.Buf.u16 buf 0xFFFF
  | Action.Set_dl_src mac ->
    Wire.Buf.u16 buf 4;
    Wire.Buf.u16 buf 16;
    write_mac buf mac;
    for _ = 1 to 6 do Wire.Buf.u8 buf 0 done
  | Action.Set_dl_dst mac ->
    Wire.Buf.u16 buf 5;
    Wire.Buf.u16 buf 16;
    write_mac buf mac;
    for _ = 1 to 6 do Wire.Buf.u8 buf 0 done
  | Action.Set_nw_src ip ->
    Wire.Buf.u16 buf 6;
    Wire.Buf.u16 buf 8;
    Wire.Buf.u32 buf (Ipv4.to_int32 ip)
  | Action.Set_nw_dst ip ->
    Wire.Buf.u16 buf 7;
    Wire.Buf.u16 buf 8;
    Wire.Buf.u32 buf (Ipv4.to_int32 ip)

let encode_actions actions =
  let buf = Wire.Buf.create () in
  List.iter (encode_action buf) actions;
  Wire.Buf.contents buf

let decode_action r =
  let* ty = Wire.Reader.u16 r in
  let* len = Wire.Reader.u16 r in
  match ty with
  | 0 ->
    if len <> 8 then Error (Wire.Malformed "output action length")
    else
      let* port = Wire.Reader.u16 r in
      let* _max_len = Wire.Reader.u16 r in
      if port = p_flood then Ok Action.Flood
      else if port = p_controller then Ok Action.To_controller
      else Ok (Action.Output port)
  | 4 | 5 ->
    if len <> 16 then Error (Wire.Malformed "set_dl action length")
    else
      let* mac = read_mac r in
      let* _pad = Wire.Reader.take r 6 in
      Ok (if ty = 4 then Action.Set_dl_src mac else Action.Set_dl_dst mac)
  | 6 | 7 ->
    if len <> 8 then Error (Wire.Malformed "set_nw action length")
    else
      let* raw = Wire.Reader.u32 r in
      let ip = Ipv4.of_int32 raw in
      Ok (if ty = 6 then Action.Set_nw_src ip else Action.Set_nw_dst ip)
  | _ -> Error (Wire.Unsupported "action type")

let decode_actions bytes =
  let r = Wire.Reader.of_string bytes in
  let rec loop acc =
    if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
    else
      let* a = decode_action r in
      loop (a :: acc)
  in
  loop []

(* --- message bodies ------------------------------------------------------ *)

let command_to_int = function
  | Flow_table.Add -> 0
  | Flow_table.Modify -> 1
  | Flow_table.Modify_strict -> 2
  | Flow_table.Delete -> 3
  | Flow_table.Delete_strict -> 4

let command_of_int = function
  | 0 -> Ok Flow_table.Add
  | 1 -> Ok Flow_table.Modify
  | 2 -> Ok Flow_table.Modify_strict
  | 3 -> Ok Flow_table.Delete
  | 4 -> Ok Flow_table.Delete_strict
  | _ -> Error (Wire.Malformed "flow_mod command")

let port_desc_size = 48

let encode_body msg =
  let buf = Wire.Buf.create () in
  (match msg with
  | Message.Hello | Message.Echo_request _ | Message.Echo_reply _
  | Message.Features_request | Message.Barrier_request _ | Message.Barrier_reply _ ->
    ()
  | Message.Features_reply { datapath_id; n_ports } ->
    Wire.Buf.u32 buf (Int64.to_int32 (Int64.shift_right_logical datapath_id 32));
    Wire.Buf.u32 buf (Int64.to_int32 datapath_id);
    Wire.Buf.u32 buf 256l (* n_buffers *);
    Wire.Buf.u8 buf 1 (* n_tables *);
    Wire.Buf.u8 buf 0;
    Wire.Buf.u16 buf 0 (* pad *);
    Wire.Buf.u32 buf 0l (* capabilities *);
    Wire.Buf.u32 buf 0xFFl (* supported actions *);
    for port = 0 to n_ports - 1 do
      Wire.Buf.u16 buf port;
      write_mac buf (Mac.of_int64 (Int64.of_int (0x020000000000 + port)));
      let name = Printf.sprintf "port%d" port in
      Wire.Buf.bytes buf name;
      Wire.Buf.bytes buf (String.make (16 - String.length name) '\x00');
      Wire.Buf.u32 buf 0l (* config *);
      Wire.Buf.u32 buf 0l (* state *);
      Wire.Buf.u32 buf 0l;
      Wire.Buf.u32 buf 0l;
      Wire.Buf.u32 buf 0l;
      Wire.Buf.u32 buf 0l
    done
  | Message.Packet_in { in_port; frame } ->
    let data = Wire.encode_frame frame in
    Wire.Buf.u32 buf (-1l) (* buffer_id: unbuffered *);
    Wire.Buf.u16 buf (String.length data);
    Wire.Buf.u16 buf in_port;
    Wire.Buf.u8 buf 0 (* reason: no match *);
    Wire.Buf.u8 buf 0 (* pad *);
    Wire.Buf.bytes buf data
  | Message.Packet_out { actions; frame } ->
    let acts = encode_actions actions in
    Wire.Buf.u32 buf (-1l) (* buffer_id: data attached *);
    Wire.Buf.u16 buf 0xFFFF (* in_port: none *);
    Wire.Buf.u16 buf (String.length acts);
    Wire.Buf.bytes buf acts;
    Wire.Buf.bytes buf (Wire.encode_frame frame)
  | Message.Flow_mod fm ->
    encode_match buf fm.Flow_table.fm_match;
    Wire.Buf.u32 buf (Int64.to_int32 (Int64.shift_right_logical fm.Flow_table.fm_cookie 32));
    Wire.Buf.u32 buf (Int64.to_int32 fm.Flow_table.fm_cookie);
    Wire.Buf.u16 buf (command_to_int fm.Flow_table.command);
    Wire.Buf.u16 buf 0 (* idle_timeout *);
    Wire.Buf.u16 buf 0 (* hard_timeout *);
    Wire.Buf.u16 buf fm.Flow_table.fm_priority;
    Wire.Buf.u32 buf (-1l) (* buffer_id *);
    Wire.Buf.u16 buf 0xFFFF (* out_port: none *);
    Wire.Buf.u16 buf 0 (* flags *);
    Wire.Buf.bytes buf (encode_actions fm.Flow_table.fm_actions));
  Wire.Buf.contents buf

let type_and_xid = function
  | Message.Hello -> (t_hello, 0)
  | Message.Echo_request xid -> (t_echo_request, xid)
  | Message.Echo_reply xid -> (t_echo_reply, xid)
  | Message.Features_request -> (t_features_request, 0)
  | Message.Features_reply _ -> (t_features_reply, 0)
  | Message.Packet_in _ -> (t_packet_in, 0)
  | Message.Packet_out _ -> (t_packet_out, 0)
  | Message.Flow_mod _ -> (t_flow_mod, 0)
  | Message.Barrier_request xid -> (t_barrier_request, xid)
  | Message.Barrier_reply xid -> (t_barrier_reply, xid)

let encode msg =
  let body = encode_body msg in
  let ty, xid = type_and_xid msg in
  let buf = Wire.Buf.create () in
  Wire.Buf.u8 buf version;
  Wire.Buf.u8 buf ty;
  Wire.Buf.u16 buf (8 + String.length body);
  Wire.Buf.u32 buf (Int32.of_int xid);
  Wire.Buf.bytes buf body;
  Wire.Buf.contents buf

let int64_of_halves hi lo =
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)

let decode_features_reply body =
  let r = Wire.Reader.of_string body in
  let* hi = Wire.Reader.u32 r in
  let* lo = Wire.Reader.u32 r in
  let* _n_buffers = Wire.Reader.u32 r in
  let* _n_tables = Wire.Reader.u8 r in
  let* _pad1 = Wire.Reader.u8 r in
  let* _pad2 = Wire.Reader.u16 r in
  let* _capabilities = Wire.Reader.u32 r in
  let* _actions = Wire.Reader.u32 r in
  let remaining = Wire.Reader.remaining r in
  if remaining mod port_desc_size <> 0 then Error (Wire.Malformed "port descriptors")
  else
    Ok
      (Message.Features_reply
         { datapath_id = int64_of_halves hi lo; n_ports = remaining / port_desc_size })

let decode_packet_in body =
  let r = Wire.Reader.of_string body in
  let* _buffer_id = Wire.Reader.u32 r in
  let* total_len = Wire.Reader.u16 r in
  let* in_port = Wire.Reader.u16 r in
  let* _reason = Wire.Reader.u8 r in
  let* _pad = Wire.Reader.u8 r in
  let* data = Wire.Reader.take r total_len in
  let* frame = Wire.decode_frame data in
  Ok (Message.Packet_in { in_port; frame })

let decode_packet_out body =
  let r = Wire.Reader.of_string body in
  let* _buffer_id = Wire.Reader.u32 r in
  let* _in_port = Wire.Reader.u16 r in
  let* actions_len = Wire.Reader.u16 r in
  let* acts = Wire.Reader.take r actions_len in
  let* actions = decode_actions acts in
  let* frame = Wire.decode_frame (Wire.Reader.rest r) in
  Ok (Message.Packet_out { actions; frame })

let decode_flow_mod body =
  let r = Wire.Reader.of_string body in
  let* fm_match = decode_match r in
  let* chi = Wire.Reader.u32 r in
  let* clo = Wire.Reader.u32 r in
  let* command_raw = Wire.Reader.u16 r in
  let* command = command_of_int command_raw in
  let* _idle = Wire.Reader.u16 r in
  let* _hard = Wire.Reader.u16 r in
  let* fm_priority = Wire.Reader.u16 r in
  let* _buffer_id = Wire.Reader.u32 r in
  let* _out_port = Wire.Reader.u16 r in
  let* _flags = Wire.Reader.u16 r in
  let* fm_actions = decode_actions (Wire.Reader.rest r) in
  Ok
    (Message.Flow_mod
       {
         Flow_table.command;
         fm_priority;
         fm_match;
         fm_actions;
         fm_cookie = int64_of_halves chi clo;
       })

let decode s =
  let r = Wire.Reader.of_string s in
  let* v = Wire.Reader.u8 r in
  if v <> version then Error (Wire.Unsupported "openflow version")
  else
    let* ty = Wire.Reader.u8 r in
    let* total = Wire.Reader.u16 r in
    let* xid_raw = Wire.Reader.u32 r in
    let xid = Int32.to_int xid_raw land 0x7FFFFFFF in
    if total < 8 then Error (Wire.Malformed "openflow length")
    else if total > String.length s then Error (Wire.Truncated "openflow body")
    else
      let* body = Wire.Reader.take r (total - 8) in
      let* msg =
        if ty = t_hello then Ok Message.Hello
        else if ty = t_echo_request then Ok (Message.Echo_request xid)
        else if ty = t_echo_reply then Ok (Message.Echo_reply xid)
        else if ty = t_features_request then Ok Message.Features_request
        else if ty = t_features_reply then decode_features_reply body
        else if ty = t_packet_in then decode_packet_in body
        else if ty = t_packet_out then decode_packet_out body
        else if ty = t_flow_mod then decode_flow_mod body
        else if ty = t_barrier_request then Ok (Message.Barrier_request xid)
        else if ty = t_barrier_reply then Ok (Message.Barrier_reply xid)
        else Error (Wire.Unsupported "openflow message type")
      in
      Ok (msg, total)

let decode_exact s =
  let* msg, consumed = decode s in
  if consumed = String.length s then Ok msg else Error (Wire.Malformed "trailing bytes")
