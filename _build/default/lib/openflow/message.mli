(** OpenFlow controller-switch messages (the OF 1.0 subset the system
    uses). *)

type t =
  | Hello
  | Echo_request of int  (** xid *)
  | Echo_reply of int
  | Features_request
  | Features_reply of { datapath_id : int64; n_ports : int }
  | Flow_mod of Flow_table.flow_mod
  | Packet_in of { in_port : int; frame : Net.Ethernet.frame }
      (** table-miss or explicit punt to the controller *)
  | Packet_out of { actions : Action.t list; frame : Net.Ethernet.frame }
      (** controller-originated transmission, e.g. the ARP replies the
          supercharger sends for virtual next-hops *)
  | Barrier_request of int  (** xid *)
  | Barrier_reply of int
      (** sent after every earlier flow-mod has been applied *)

val pp : Format.formatter -> t -> unit
