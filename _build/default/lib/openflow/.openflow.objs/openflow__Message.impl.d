lib/openflow/message.ml: Action Flow_table Fmt Net Ofmatch
