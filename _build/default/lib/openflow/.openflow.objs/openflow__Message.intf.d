lib/openflow/message.mli: Action Flow_table Format Net
