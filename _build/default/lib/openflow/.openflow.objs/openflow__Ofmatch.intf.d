lib/openflow/ofmatch.mli: Format Net
