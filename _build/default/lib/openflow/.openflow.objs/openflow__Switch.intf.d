lib/openflow/switch.mli: Flow_table Message Net Sim
