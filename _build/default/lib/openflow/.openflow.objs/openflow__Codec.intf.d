lib/openflow/codec.mli: Message Net
