lib/openflow/ofmatch.ml: Fmt Int Net Option
