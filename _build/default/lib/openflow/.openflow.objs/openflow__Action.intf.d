lib/openflow/action.mli: Format Net
