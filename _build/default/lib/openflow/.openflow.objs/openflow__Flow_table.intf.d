lib/openflow/flow_table.mli: Action Format Ofmatch
