lib/openflow/action.ml: Fmt List Net
