lib/openflow/flow_table.ml: Action Array Fmt Hashtbl List Ofmatch
