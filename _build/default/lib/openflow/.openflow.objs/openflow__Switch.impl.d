lib/openflow/switch.ml: Action Array Flow_table Fmt Fun List Message Net Ofmatch Option Sim
