lib/openflow/switch.ml: Action Array Flow_table Fmt Fun List Message Net Obs Ofmatch Option Sim
