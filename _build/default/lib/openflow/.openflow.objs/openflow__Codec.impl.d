lib/openflow/codec.ml: Action Array Char Flow_table Int32 Int64 Ipv4 List Mac Message Net Ofmatch Option Prefix Printf String Wire
