type t =
  | Output of int
  | Flood
  | Set_dl_src of Net.Mac.t
  | Set_dl_dst of Net.Mac.t
  | Set_nw_src of Net.Ipv4.t
  | Set_nw_dst of Net.Ipv4.t
  | To_controller

type result = {
  frame : Net.Ethernet.frame;
  ports : int list;
  flood : bool;
  to_controller : bool;
}

let rewrite_ip frame ~f =
  match frame.Net.Ethernet.payload with
  | Net.Ethernet.Ipv4 p -> { frame with Net.Ethernet.payload = Net.Ethernet.Ipv4 (f p) }
  | Net.Ethernet.Arp _ -> frame

let apply actions frame =
  let frame = ref frame in
  let ports = ref [] in
  let flood = ref false in
  let to_controller = ref false in
  List.iter
    (fun action ->
      match action with
      | Output port -> ports := port :: !ports
      | Flood -> flood := true
      | Set_dl_src mac -> frame := { !frame with Net.Ethernet.src = mac }
      | Set_dl_dst mac -> frame := { !frame with Net.Ethernet.dst = mac }
      | Set_nw_src ip ->
        frame := rewrite_ip !frame ~f:(fun p -> { p with Net.Ipv4_packet.src = ip })
      | Set_nw_dst ip ->
        frame := rewrite_ip !frame ~f:(fun p -> { p with Net.Ipv4_packet.dst = ip })
      | To_controller -> to_controller := true)
    actions;
  { frame = !frame; ports = List.rev !ports; flood = !flood; to_controller = !to_controller }

let equal a b =
  match a, b with
  | Output x, Output y -> x = y
  | Flood, Flood -> true
  | Set_dl_src x, Set_dl_src y | Set_dl_dst x, Set_dl_dst y -> Net.Mac.equal x y
  | Set_nw_src x, Set_nw_src y | Set_nw_dst x, Set_nw_dst y -> Net.Ipv4.equal x y
  | To_controller, To_controller -> true
  | ( ( Output _ | Flood | Set_dl_src _ | Set_dl_dst _ | Set_nw_src _
      | Set_nw_dst _ | To_controller ),
      _ ) ->
    false

let pp ppf = function
  | Output p -> Fmt.pf ppf "output:%d" p
  | Flood -> Fmt.string ppf "flood"
  | Set_dl_src m -> Fmt.pf ppf "set_dl_src:%a" Net.Mac.pp m
  | Set_dl_dst m -> Fmt.pf ppf "set_dl_dst:%a" Net.Mac.pp m
  | Set_nw_src i -> Fmt.pf ppf "set_nw_src:%a" Net.Ipv4.pp i
  | Set_nw_dst i -> Fmt.pf ppf "set_nw_dst:%a" Net.Ipv4.pp i
  | To_controller -> Fmt.string ppf "controller"

let pp_list ppf = function
  | [] -> Fmt.string ppf "drop"
  | actions -> Fmt.(list ~sep:comma pp) ppf actions
