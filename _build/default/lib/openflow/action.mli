(** OpenFlow actions.

    The supercharger installs exactly the action list of the paper's
    Listing 2: [[Set_dl_dst mac; Output port]] — rewrite the VMAC tag to
    the live next-hop's real MAC, then forward out its port. *)

type t =
  | Output of int  (** forward out a switch port *)
  | Flood  (** forward out every port except the arrival port (OFPP_FLOOD) *)
  | Set_dl_src of Net.Mac.t
  | Set_dl_dst of Net.Mac.t
  | Set_nw_src of Net.Ipv4.t
  | Set_nw_dst of Net.Ipv4.t
  | To_controller  (** punt to the controller as a packet-in *)

type result = {
  frame : Net.Ethernet.frame;  (** after all header rewrites *)
  ports : int list;  (** explicit [Output]s, in order *)
  flood : bool;
  to_controller : bool;
}

val apply : t list -> Net.Ethernet.frame -> result
(** Executes the list in order, threading header rewrites. An [Output]
    forwards the frame {e as rewritten so far}; for simplicity the model
    applies all rewrites first, which is equivalent for every rule this
    system installs (single rewrite before single output). An empty
    action list drops the packet. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
