lib/experiments/micro.mli: Format Obs
