lib/experiments/ablations.ml: Array Fmt List Obs Sim Stats String Topology
