lib/experiments/ablations.ml: Array Fmt List Sim Stats String Topology
