lib/experiments/topology.ml: Array Bgp Fmt Fun Hashtbl Int64 List Net Obs Openflow Option Router Sim Stats String Supercharger Trafficgen Workloads
