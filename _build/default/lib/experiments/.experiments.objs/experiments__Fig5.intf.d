lib/experiments/fig5.mli: Format Obs Stats Topology
