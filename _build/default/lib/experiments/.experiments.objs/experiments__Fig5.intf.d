lib/experiments/fig5.mli: Format Stats Topology
