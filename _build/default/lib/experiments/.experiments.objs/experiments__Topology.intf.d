lib/experiments/topology.mli: Format Sim
