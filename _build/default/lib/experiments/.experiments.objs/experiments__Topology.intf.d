lib/experiments/topology.mli: Format Obs Sim
