lib/experiments/fig5.ml: Array Buffer Bytes Float Fmt Int64 List Obs Sim Stats String Topology Unix
