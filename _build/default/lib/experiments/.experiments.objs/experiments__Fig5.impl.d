lib/experiments/fig5.ml: Array Buffer Bytes Float Fmt Int64 List Sim Stats String Topology
