lib/experiments/stats.ml: Array Float Fmt Obs
