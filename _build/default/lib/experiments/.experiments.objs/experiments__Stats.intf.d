lib/experiments/stats.mli: Format Obs
