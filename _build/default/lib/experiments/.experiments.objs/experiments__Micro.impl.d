lib/experiments/micro.ml: Array Bgp Fmt List Net Obs Stats Supercharger Unix Workloads
