lib/experiments/micro.ml: Array Bgp Fmt List Net Stats Supercharger Unix Workloads
