lib/experiments/ablations.mli: Format Sim
