lib/experiments/ablations.mli: Format Obs Sim
