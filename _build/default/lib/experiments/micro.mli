(** The §4 controller micro-benchmark.

    "We measured the time our … BGP controller took to process two
    times 500 K updates from two different peers. In the worst-case,
    processing an update took 0.8 s but the 99th percentile was only
    125 ms."

    The benchmark feeds the interleaved double feed straight through the
    controller's processing pipeline (decision process → Listing 1 →
    emission construction), timing each update with a wall-clock. The
    shape to reproduce is a heavy tail (the worst case far above the
    99th percentile) with a bounded p99; the absolute numbers are
    expected to be far below the paper's unoptimised Python. *)

type report = {
  updates : int;
  emissions : int;
  backup_groups : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  total_s : float;
}

val run : ?count:int -> ?seed:int64 -> unit -> report
(** [count] prefixes per peer (default 500_000 — the paper's size;
    tests use smaller). *)

val to_json : report -> Obs.Json.t
(** The report as a JSON object, including derived [updates_per_sec]. *)

val pp_report : Format.formatter -> report -> unit
