(** The hardware convergence lab of the paper's Fig. 4, in simulation.

    R1 (the router under test) connects through the OpenFlow switch to
    its providers R2 (primary, preferred by LOCAL_PREF 200) and R3
    (backup, 100). A traffic source hangs off a second R1 interface; R2
    and R3 deliver transit traffic to the sink. In supercharged mode one
    or more controller replicas interpose on the BGP sessions and attach
    to the switch; in plain mode R1 peers with R2/R3 directly and runs
    BFD to them itself.

    [run] executes the full §4 methodology: establish sessions, load the
    feeds (R2 first, then R3, both peers advertising the same table),
    wait for the control plane and FIB to settle, start traffic towards
    [monitored_flows] random destinations (including the first and last
    prefix, as in the paper), disconnect R2 from the switch, and measure
    each flow's maximum inter-packet gap until full recovery. *)

type mode =
  | Plain
  | Supercharged of { replicas : int }

val pp_mode : Format.formatter -> mode -> unit

type traffic =
  | Event_driven  (** probe on forwarding-state changes (default; exact
                      to ±1 grid slot at any table size) *)
  | Dense  (** simulate every packet; small scenarios only *)

(** Which failure the lab injects once traffic is flowing. *)
type failure =
  | Fail_primary  (** disconnect the preferred provider (the paper's §4) *)
  | Fail_backup
      (** disconnect the least-preferred provider: traffic must be
          unaffected *)
  | Fail_two of Sim.Time.t
      (** disconnect the primary, then — after the given delay — the
          peer now carrying the traffic; needs ≥ 3 peers, and with
          [group_size] ≥ 3 both failovers stay in the fast path *)

val pp_failure : Format.formatter -> failure -> unit

type params = {
  mode : mode;
  n_prefixes : int;
  n_peers : int;  (** providers R2..R(n+1), preference ladder 200, 190, … *)
  group_size : int;  (** backup-group tuple size (supercharged mode) *)
  failure : failure;
  monitored_flows : int;
  seed : int64;
  bfd_detect_mult : int;
  bfd_tx_interval : Sim.Time.t;
  fib_batch_start : Sim.Time.t;
  fib_per_entry : Sim.Time.t;
  flow_mod_latency : Sim.Time.t;
  reroute_latency : Sim.Time.t;
  grid : Sim.Time.t;
  traffic : traffic;
  feed_batch : int;
  feed_interval : Sim.Time.t;
  trace : bool;  (** keep the event trace (memory-heavy on big runs) *)
  pcap : string option;
      (** write a nanosecond pcap of R1's uplink to this file *)
  bgp_wire : bool;
      (** run every BGP session through the RFC 4271 binary codec with
          TCP-like 512-byte fragmentation (slower; integration tests use
          it to prove wire-level fidelity) *)
}

val default_params : ?mode:mode -> n_prefixes:int -> unit -> params
(** The paper's setup and calibration: 2 peers, groups of 2,
    [Fail_primary]; BFD 3 × 40 ms; FIB batch start 280 ms and
    281 µs/entry (Nexus 7k); flow-mod 2 ms (HP E3800); reroute 25 ms
    (Floodlight REST push); 70 µs grid; 100 monitored flows; seed 42. *)

type result = {
  r_params : params;
  t_fail : Sim.Time.t;  (** when R2 was disconnected *)
  convergence : Sim.Time.t option array;
      (** per monitored flow; [None] = never recovered *)
  outages : Sim.Time.t list array;
      (** every outage gap per flow, in order (two entries per flow
          under [Fail_two]) *)
  flow_mods_at_failover : int;  (** rules rewritten by Listing 2 *)
  backup_groups : int;  (** groups allocated (supercharged mode) *)
  updates_processed : int;
      (** BGP updates run through the controllers' decision process
          (0 in plain mode) *)
  fib_writes : int;  (** FIB entries applied over the whole run *)
  events : int;  (** simulation events processed *)
  probes : int;  (** measurement packets injected *)
  replica_digests : string list;
      (** canonical rendering of each controller replica's
          (backup-groups, rule selections); equal strings mean the
          replicas computed identical state (§3) *)
  trace_entries : Sim.Trace.entry list;
      (** the run's event trace; empty unless [params.trace] *)
  metrics : Obs.Metrics.t;
      (** the run's metrics registry (counters, gauges, histograms from
          every instrumented component — switch, BFD, controller,
          monitor) *)
}

val convergence_seconds : result -> float array
(** Recovered flows' convergence times in seconds.
    @raise Failure if any flow never recovered. *)

val run : params -> result

val pp_result : Format.formatter -> result -> unit
