type mode =
  | Plain
  | Supercharged of { replicas : int }

let pp_mode ppf = function
  | Plain -> Fmt.string ppf "non-supercharged"
  | Supercharged { replicas = 1 } -> Fmt.string ppf "supercharged"
  | Supercharged { replicas } -> Fmt.pf ppf "supercharged(x%d)" replicas

type traffic =
  | Event_driven
  | Dense

type failure =
  | Fail_primary
  | Fail_backup
  | Fail_two of Sim.Time.t

let pp_failure ppf = function
  | Fail_primary -> Fmt.string ppf "fail-primary"
  | Fail_backup -> Fmt.string ppf "fail-backup"
  | Fail_two d -> Fmt.pf ppf "fail-two(+%a)" Sim.Time.pp d

type params = {
  mode : mode;
  n_prefixes : int;
  n_peers : int;
  group_size : int;
  failure : failure;
  monitored_flows : int;
  seed : int64;
  bfd_detect_mult : int;
  bfd_tx_interval : Sim.Time.t;
  fib_batch_start : Sim.Time.t;
  fib_per_entry : Sim.Time.t;
  flow_mod_latency : Sim.Time.t;
  reroute_latency : Sim.Time.t;
  grid : Sim.Time.t;
  traffic : traffic;
  feed_batch : int;
  feed_interval : Sim.Time.t;
  trace : bool;
  pcap : string option;
  bgp_wire : bool;
}

let default_params ?(mode = Plain) ~n_prefixes () =
  {
    mode;
    n_prefixes;
    n_peers = 2;
    group_size = 2;
    failure = Fail_primary;
    monitored_flows = 100;
    seed = 42L;
    bfd_detect_mult = 3;
    bfd_tx_interval = Sim.Time.of_ms 40;
    fib_batch_start = Sim.Time.of_ms 280;
    fib_per_entry = Sim.Time.of_us 281;
    flow_mod_latency = Sim.Time.of_ms 2;
    reroute_latency = Sim.Time.of_ms 25;
    grid = Trafficgen.Flow.grid_default;
    traffic = Event_driven;
    feed_batch = 500;
    feed_interval = Sim.Time.of_ms 1;
    trace = false;
    pcap = None;
    bgp_wire = false;
  }

type result = {
  r_params : params;
  t_fail : Sim.Time.t;
  convergence : Sim.Time.t option array;
  outages : Sim.Time.t list array;
      (* every straddling gap per flow; > 1 entry under [Fail_two] *)
  flow_mods_at_failover : int;
  backup_groups : int;
  updates_processed : int;
  fib_writes : int;
  events : int;
  probes : int;
  replica_digests : string list;
  trace_entries : Sim.Trace.entry list;
  metrics : Obs.Metrics.t;
}

let convergence_seconds r =
  Array.map
    (function
      | Some t -> Sim.Time.to_sec t
      | None -> failwith "Topology.convergence_seconds: unrecovered flow")
    r.convergence

let pp_result ppf r =
  let recovered =
    Array.to_list r.convergence |> List.filter_map Fun.id |> List.map Sim.Time.to_sec
  in
  Fmt.pf ppf "@[<v>%a %d prefixes: %d/%d flows recovered" pp_mode r.r_params.mode
    r.r_params.n_prefixes (List.length recovered)
    (Array.length r.convergence);
  if recovered <> [] then begin
    let s = Stats.summarize (Array.of_list recovered) in
    Fmt.pf ppf "; convergence %a" Stats.pp_summary s
  end;
  Fmt.pf ppf "; %d flow-mods at failover, %d groups, %d fib writes@]"
    r.flow_mods_at_failover r.backup_groups r.fib_writes

(* --- address plan ------------------------------------------------------ *)

let mac_r1_data = Net.Mac.of_string_exn "00:aa:00:00:00:01"
let mac_r1_src = Net.Mac.of_string_exn "00:aa:00:00:00:02"
let mac_source = Net.Mac.of_string_exn "00:dd:00:00:00:01"

let mac_peer i = Net.Mac.of_int64 (Int64.add 0x00BB_0000_0000L (Int64.of_int (2 + i)))

let mac_controller i =
  Net.Mac.of_int64 (Int64.add 0x00CC_0000_0000L (Int64.of_int (i + 1)))

let ip_r1 = Net.Ipv4.of_octets 10 0 0 1
let ip_peer i = Net.Ipv4.of_octets 10 0 0 (2 + i)
let ip_controller i = Net.Ipv4.of_octets 10 0 0 (100 + i)
let ip_r1_src = Net.Ipv4.of_octets 192 168 0 1
let ip_source = Net.Ipv4.of_octets 192 168 0 100

let asn_r1 = Bgp.Asn.of_int 65001
let asn_peer i = Bgp.Asn.of_int (65002 + i)
let asn_controller = Bgp.Asn.of_int 65001 (* speaks for R1's AS *)

(* The import preference ladder: peer 0 is "provider #1 ($)". *)
let local_pref_of_peer i = 200 - (10 * i)

let port_r1 = 0
let port_peer i = 1 + i
let port_controller ~n_peers i = 1 + n_peers + i

(* --- helpers ------------------------------------------------------------ *)

let run_until engine ~timeout ~step pred =
  let deadline = Sim.Time.add (Sim.Engine.now engine) timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Time.(Sim.Engine.now engine >= deadline) then pred ()
    else begin
      let horizon = Sim.Time.min deadline (Sim.Time.add (Sim.Engine.now engine) step) in
      Sim.Engine.run ~until:horizon engine;
      loop ()
    end
  in
  loop ()

let l2_rule mac port =
  Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
    (Openflow.Ofmatch.dl_dst mac)
    [Openflow.Action.Output port]

let arp_flood_rule =
  Openflow.Flow_table.flow_mod ~priority:50 Openflow.Flow_table.Add
    (Openflow.Ofmatch.make ~dl_type:0x0806 ())
    [Openflow.Action.Flood]

(* Picks the monitored destinations: [n] distinct prefixes at random,
   always including the first and the last advertised prefix (§4), with
   a random host offset inside each. *)
let pick_flows rng (entries : Workloads.Rib_gen.entry array) n =
  let count = Array.length entries in
  let n = min n count in
  let indices = Array.init count Fun.id in
  Sim.Rng.shuffle rng indices;
  let chosen = Array.sub indices 0 n in
  if n >= 1 then chosen.(0) <- 0;
  if n >= 2 then chosen.(1) <- count - 1;
  (* Re-deduplicate in case the shuffle already placed 0 or count-1. *)
  let seen = Hashtbl.create (2 * n) in
  let next_fresh = ref 0 in
  Array.iteri
    (fun slot idx ->
      let idx = ref idx in
      while Hashtbl.mem seen !idx do
        while Hashtbl.mem seen !next_fresh do incr next_fresh done;
        idx := !next_fresh
      done;
      Hashtbl.replace seen !idx ();
      chosen.(slot) <- !idx)
    chosen;
  Array.mapi
    (fun flow_index entry_index ->
      let prefix = entries.(entry_index).Workloads.Rib_gen.prefix in
      let span = min (Net.Prefix.size prefix) 256 in
      let offset = if span <= 1 then 0 else Sim.Rng.int rng span in
      ({ Trafficgen.Flow.index = flow_index; dst = Net.Prefix.nth prefix offset }, prefix))
    chosen

(* --- the lab ------------------------------------------------------------ *)

let run params =
  if params.n_peers < 2 || params.n_peers > 8 then
    invalid_arg "Topology.run: n_peers must be in 2..8";
  (match params.failure with
  | Fail_two _ when params.n_peers < 3 ->
    invalid_arg "Topology.run: Fail_two needs at least 3 peers"
  | Fail_two _ | Fail_primary | Fail_backup -> ());
  let engine = Sim.Engine.create ~seed:params.seed () in
  Sim.Trace.set_enabled (Sim.Engine.trace engine) params.trace;
  let bgp_channel ?name () =
    if params.bgp_wire then
      Bgp.Channel.create engine ?name ~use_codec:true ~fragment:512 ()
    else Bgp.Channel.create engine ?name ()
  in
  let rng = Sim.Rng.create ~seed:(Int64.add params.seed 1L) in
  let entries = Workloads.Rib_gen.generate ~seed:params.seed ~count:params.n_prefixes in

  (* Devices. *)
  let n_peers = params.n_peers in
  let n_controllers =
    match params.mode with Plain -> 0 | Supercharged { replicas } -> replicas
  in
  let switch =
    Openflow.Switch.create engine ~name:"e3800"
      ~flow_mod_latency:params.flow_mod_latency
      ~n_ports:(1 + n_peers + max 1 n_controllers)
      ()
  in
  let r1 =
    Router.Legacy.create engine ~name:"r1" ~asn:asn_r1 ~router_id:ip_r1
      ~interfaces:
        [
          {
            Router.Legacy.if_mac = mac_r1_data;
            if_ip = ip_r1;
            if_connected = Net.Prefix.make (Net.Ipv4.of_octets 10 0 0 0) 8;
          };
          {
            Router.Legacy.if_mac = mac_r1_src;
            if_ip = ip_r1_src;
            if_connected = Net.Prefix.make (Net.Ipv4.of_octets 192 168 0 0) 24;
          };
        ]
      ~fib_batch_start_latency:params.fib_batch_start
      ~fib_per_entry_latency:params.fib_per_entry ()
  in
  let peers =
    Array.init n_peers (fun i ->
        Router.Peer.create engine
          ~name:(Fmt.str "r%d" (2 + i))
          ~asn:(asn_peer i) ~mac:(mac_peer i) ~ip:(ip_peer i)
          ~bfd_detect_mult:params.bfd_detect_mult
          ~bfd_tx_interval:params.bfd_tx_interval ())
  in

  (* Physical wiring: R1 and the peers on switch ports, the traffic
     source on R1's second interface. *)
  let link_r1 = Net.Link.create engine ~name:"r1-sw" () in
  Router.Legacy.connect_interface r1 0 link_r1 Net.Link.A;
  Openflow.Switch.attach_link switch ~port:port_r1 link_r1 Net.Link.B;
  let peer_links =
    Array.mapi
      (fun i peer ->
        let link = Net.Link.create engine ~name:(Fmt.str "r%d-sw" (2 + i)) () in
        Router.Peer.connect peer link Net.Link.A;
        Openflow.Switch.attach_link switch ~port:(port_peer i) link Net.Link.B;
        link)
      peers
  in
  let link_src = Net.Link.create engine ~name:"src-r1" () in
  Router.Legacy.connect_interface r1 1 link_src Net.Link.B;

  (* Optional capture: a physical-layer tap on R1's uplink, written as a
     Wireshark-readable nanosecond pcap. *)
  let pcap_writer =
    Option.map
      (fun path ->
        let w = Net.Pcap.create_file path in
        Net.Pcap.tap_link w link_r1;
        w)
      params.pcap
  in

  (* Factory switch configuration: plain L2 unicast rules plus ARP
     flooding (the supercharger's punt rule overrides the latter at
     higher priority once a controller starts). *)
  let table = Openflow.Switch.table switch in
  List.iter
    (Openflow.Flow_table.apply table)
    ([l2_rule mac_r1_data port_r1; arp_flood_rule]
    @ List.init n_peers (fun i -> l2_rule (mac_peer i) (port_peer i))
    @ List.init n_controllers (fun i ->
          l2_rule (mac_controller i) (port_controller ~n_peers i)));

  (* Control plane wiring per mode. *)
  let controllers = ref [] in
  (match params.mode with
  | Plain ->
    Array.iteri
      (fun i peer ->
        let ch = bgp_channel ~name:(Fmt.str "r1-r%d" (2 + i)) () in
        let r1_peer =
          Router.Legacy.add_bgp_peer r1
            ~name:(Router.Peer.name peer)
            ~channel:ch ~side:Bgp.Channel.A
            ~import_local_pref:(local_pref_of_peer i) ()
        in
        ignore (Router.Peer.add_bgp_peer peer ~name:"r1" ~channel:ch ~side:Bgp.Channel.B ());
        ignore
          (Router.Legacy.enable_bfd r1 ~peer:r1_peer ~remote_ip:(ip_peer i)
             ~interface:0 ~detect_mult:params.bfd_detect_mult
             ~tx_interval:params.bfd_tx_interval ()))
      peers;
    Bgp.Speaker.start (Router.Legacy.speaker r1);
    Array.iter (fun p -> Bgp.Speaker.start (Router.Peer.speaker p)) peers
  | Supercharged { replicas } ->
    for c_idx = 0 to replicas - 1 do
      let c =
        Supercharger.Controller.create engine
          ~name:(Fmt.str "controller%d" (c_idx + 1))
          ~asn:asn_controller
          ~router_id:(ip_controller c_idx)
          ~group_size:params.group_size ~reroute_latency:params.reroute_latency
          ~bfd_detect_mult:params.bfd_detect_mult
          ~bfd_tx_interval:params.bfd_tx_interval ()
      in
      Supercharger.Controller.connect_switch c switch;
      let endhost =
        Router.Endhost.create engine
          ~name:(Fmt.str "c%d-nic" (c_idx + 1))
          ~mac:(mac_controller c_idx) ~ip:(ip_controller c_idx) ()
      in
      let link_c = Net.Link.create engine ~name:(Fmt.str "c%d-sw" (c_idx + 1)) () in
      Router.Endhost.connect endhost link_c Net.Link.A;
      Openflow.Switch.attach_link switch ~port:(port_controller ~n_peers c_idx) link_c
        Net.Link.B;
      Supercharger.Controller.attach_dataplane c endhost;
      Array.iteri
        (fun i peer ->
          let ch = bgp_channel ~name:(Fmt.str "c%d-r%d" (c_idx + 1) (2 + i)) () in
          ignore
            (Supercharger.Controller.add_upstream_peer c
               ~name:(Router.Peer.name peer)
               ~ip:(ip_peer i) ~mac:(mac_peer i) ~switch_port:(port_peer i)
               ~channel:ch ~side:Bgp.Channel.A
               ~import_local_pref:(local_pref_of_peer i) ());
          ignore
            (Router.Peer.add_bgp_peer peer
               ~name:(Fmt.str "c%d" (c_idx + 1))
               ~channel:ch ~side:Bgp.Channel.B ()))
        peers;
      let ch_r1 = bgp_channel ~name:(Fmt.str "c%d-r1" (c_idx + 1)) () in
      ignore
        (Supercharger.Controller.add_router c ~name:"r1" ~channel:ch_r1
           ~side:Bgp.Channel.A ());
      ignore
        (Router.Legacy.add_bgp_peer r1
           ~name:(Fmt.str "c%d" (c_idx + 1))
           ~channel:ch_r1 ~side:Bgp.Channel.B ());
      controllers := c :: !controllers
    done;
    controllers := List.rev !controllers;
    List.iter Supercharger.Controller.start !controllers;
    Bgp.Speaker.start (Router.Legacy.speaker r1);
    Array.iter (fun p -> Bgp.Speaker.start (Router.Peer.speaker p)) peers);

  (* Let sessions establish. *)
  let sessions_up () =
    let expected_r1 =
      match params.mode with Plain -> n_peers | Supercharged { replicas } -> replicas
    in
    Bgp.Speaker.established_count (Router.Legacy.speaker r1) = expected_r1
  in
  if
    not
      (run_until engine ~timeout:(Sim.Time.of_sec 10.0) ~step:(Sim.Time.of_ms 100)
         sessions_up)
  then failwith "Topology.run: BGP sessions failed to establish";

  (* Load the feeds sequentially, most-preferred peer first, every peer
     advertising the same table (the paper loads R2 and R3 with the same
     RIS feed). *)
  let feeds_done = ref false in
  let rec replay_peer i =
    if i >= n_peers then feeds_done := true
    else
      let updates =
        Workloads.Rib_gen.to_updates entries ~speaker_asn:(asn_peer i)
          ~next_hop:(ip_peer i)
      in
      Workloads.Feed.replay engine ~updates ~batch:params.feed_batch
        ~interval:params.feed_interval
        ~on_done:(fun () -> replay_peer (i + 1))
        ~send:(fun u -> Router.Peer.announce_to_all peers.(i) u)
        ()
  in
  replay_peer 0;

  (* Wait for the control plane and the FIB update engine to settle. *)
  let fib = Router.Legacy.fib r1 in
  let settled () =
    !feeds_done
    && Router.Fib.pending fib = 0
    && (not (Router.Fib.is_busy fib))
    && Router.Fib.size fib = params.n_prefixes
    && Openflow.Switch.pending_flow_mods switch = 0
  in
  let load_timeout =
    (* Feed transfer + up to two full serialized FIB passes + slack. *)
    Sim.Time.add
      (Sim.Time.mul params.fib_per_entry (max 1 (2 * params.n_prefixes)))
      (Sim.Time.of_sec 30.0)
  in
  if not (run_until engine ~timeout:load_timeout ~step:(Sim.Time.of_sec 1.0) settled)
  then
    failwith
      (Fmt.str "Topology.run: initial load did not settle (fib=%d/%d pending=%d)"
         (Router.Fib.size fib) params.n_prefixes (Router.Fib.pending fib));

  (* Traffic: source on R1's second interface, sink behind the peers. *)
  let flows_with_prefixes = pick_flows rng entries params.monitored_flows in
  let flows = Array.map fst flows_with_prefixes in
  let sink = Trafficgen.Sink.create engine ~flows in
  Array.iter
    (fun peer ->
      Router.Peer.on_delivery peer (fun p -> Trafficgen.Sink.deliver_packet sink p))
    peers;
  let send_probe (flow : Trafficgen.Flow.t) =
    let packet =
      Net.Ipv4_packet.udp ~src:ip_source ~dst:flow.Trafficgen.Flow.dst ~src_port:5001
        ~dst_port:(10000 + flow.Trafficgen.Flow.index)
        (String.make Trafficgen.Flow.payload_size_default 'x')
    in
    Net.Link.send link_src Net.Link.A
      (Net.Ethernet.make ~src:mac_source ~dst:mac_r1_src (Net.Ethernet.Ipv4 packet))
  in
  let monitor =
    Trafficgen.Monitor.create engine ~grid:params.grid ~sink ~send:send_probe ~flows ()
  in
  let source =
    Trafficgen.Source.create engine ~grid:params.grid ~flows
      ~send:(fun flow -> Trafficgen.Monitor.inject monitor flow.Trafficgen.Flow.index)
      ()
  in

  (* Event hooks for the event-driven monitor: exact prefix -> flow map
     keyed on the advertised prefixes (O(1) per FIB write). *)
  (match params.traffic with
  | Event_driven ->
    let by_prefix = Hashtbl.create (Array.length flows * 2) in
    Array.iter
      (fun (flow, prefix) -> Hashtbl.replace by_prefix (Net.Prefix.to_string prefix) flow)
      flows_with_prefixes;
    Router.Fib.on_applied fib (fun op ->
        let prefix =
          match op with Router.Fib.Set (p, _) -> p | Router.Fib.Remove p -> p
        in
        match Hashtbl.find_opt by_prefix (Net.Prefix.to_string prefix) with
        | Some (flow : Trafficgen.Flow.t) ->
          Trafficgen.Monitor.probe_flow monitor flow.Trafficgen.Flow.index
        | None -> ());
    Openflow.Switch.on_flow_mod_applied switch (fun _fm ->
        Trafficgen.Monitor.probe_all monitor)
  | Dense -> ());

  (* Baseline: confirm every flow is reachable before the failure. *)
  (match params.traffic with
  | Event_driven -> Trafficgen.Monitor.probe_all monitor
  | Dense -> Trafficgen.Source.start source);
  let baseline_start = Sim.Engine.now engine in
  if
    not
      (run_until engine ~timeout:(Sim.Time.of_sec 5.0) ~step:(Sim.Time.of_ms 10)
         (fun () -> Trafficgen.Monitor.all_alive_since monitor baseline_start))
  then failwith "Topology.run: flows not reachable before failure";

  (* Clean slate for gap statistics, then inject the failure(s). *)
  Trafficgen.Sink.reset_gaps sink;
  let t_fail = Sim.Time.add (Sim.Engine.now engine) (Sim.Time.of_ms 50) in
  Trafficgen.Monitor.arm_failure monitor ~at:t_fail;
  let failure_instants =
    match params.failure with
    | Fail_primary -> [(0, t_fail)]
    | Fail_backup -> [(n_peers - 1, t_fail)]
    | Fail_two delay -> [(0, t_fail); (1, Sim.Time.add t_fail delay)]
  in
  List.iter
    (fun (peer_idx, at) ->
      (match params.traffic with
      | Event_driven ->
        Trafficgen.Monitor.window monitor
          ~from_:(Sim.Time.sub at (Sim.Time.of_ms 2))
          ~until:(Sim.Time.add at (Sim.Time.of_ms 2))
      | Dense -> ());
      ignore
        (Sim.Engine.schedule_at engine at (fun () ->
             Net.Link.set_up peer_links.(peer_idx) false)))
    failure_instants;
  let last_failure =
    List.fold_left (fun acc (_, at) -> Sim.Time.max acc at) t_fail failure_instants
  in

  (* Run until every flow has recovered from the last failure. *)
  let recovery_timeout =
    Sim.Time.add
      (Sim.Time.mul params.fib_per_entry (max 1 (3 * params.n_prefixes)))
      (Sim.Time.add (Sim.Time.sub last_failure t_fail) (Sim.Time.of_sec 30.0))
  in
  let recovered () = Trafficgen.Monitor.all_alive_since monitor last_failure in
  ignore (run_until engine ~timeout:recovery_timeout ~step:(Sim.Time.of_sec 1.0) recovered);
  (match params.traffic with
  | Dense -> Trafficgen.Source.stop source
  | Event_driven ->
    (* Final sweep so stragglers get one more chance to prove recovery. *)
    Trafficgen.Monitor.probe_all monitor;
    Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.of_ms 50)) engine);

  let convergence =
    Array.map
      (fun (flow : Trafficgen.Flow.t) ->
        Trafficgen.Monitor.convergence monitor ~failed_at:t_fail
          flow.Trafficgen.Flow.index)
      flows
  in
  let outages =
    Array.map
      (fun (flow : Trafficgen.Flow.t) ->
        Trafficgen.Monitor.outages monitor flow.Trafficgen.Flow.index)
      flows
  in
  let flow_mods_at_failover, backup_groups =
    match !controllers with
    | [] -> (0, 0)
    | c :: _ ->
      ( Supercharger.Provisioner.flow_mods_sent (Supercharger.Controller.provisioner c),
        Supercharger.Backup_group.count (Supercharger.Controller.groups c) )
  in
  let replica_digests =
    List.map
      (fun c ->
        let groups = Supercharger.Controller.groups c in
        let prov = Supercharger.Controller.provisioner c in
        String.concat ";"
          (List.map
             (fun (b : Supercharger.Backup_group.binding) ->
               Fmt.str "%a->%a"
                 Supercharger.Backup_group.pp_binding b
                 Fmt.(option Net.Ipv4.pp)
                 (Supercharger.Provisioner.selected prov b))
             (Supercharger.Backup_group.all groups)))
      !controllers
  in
  Option.iter Net.Pcap.close pcap_writer;
  {
    r_params = params;
    t_fail;
    convergence;
    outages;
    flow_mods_at_failover;
    backup_groups;
    updates_processed =
      List.fold_left
        (fun acc c -> acc + Supercharger.Controller.updates_processed c)
        0 !controllers;
    fib_writes = Router.Fib.applied_count fib;
    events = Sim.Engine.events_processed engine;
    probes = Trafficgen.Monitor.probes_sent monitor;
    replica_digests;
    trace_entries =
      (if params.trace then Sim.Trace.entries (Sim.Engine.trace engine) else []);
    metrics = Sim.Engine.metrics engine;
  }
