type point = {
  label : string;
  value_ms : float;
  median_s : float;
  max_s : float;
}

let point_of_result label value_ms (result : Topology.result) =
  let samples = Topology.convergence_seconds result in
  let s = Stats.summarize samples in
  { label; value_ms; median_s = s.Stats.median; max_s = s.Stats.max }

let bfd_sweep ?(tx_intervals_ms = [10; 20; 50; 100; 200]) ?(n_prefixes = 10_000)
    ?(seed = 42L) () =
  List.map
    (fun tx ->
      let params =
        {
          (Topology.default_params
             ~mode:(Topology.Supercharged { replicas = 1 })
             ~n_prefixes ())
          with
          Topology.bfd_tx_interval = Sim.Time.of_ms tx;
          seed;
        }
      in
      point_of_result (Fmt.str "bfd tx=%dms" tx) (float_of_int tx) (Topology.run params))
    tx_intervals_ms

let flow_mod_sweep ?(latencies_ms = [0.1; 1.0; 5.0; 10.0; 20.0]) ?(n_prefixes = 10_000)
    ?(seed = 42L) () =
  List.map
    (fun ms ->
      let params =
        {
          (Topology.default_params
             ~mode:(Topology.Supercharged { replicas = 1 })
             ~n_prefixes ())
          with
          Topology.flow_mod_latency = Sim.Time.of_sec (ms /. 1000.0);
          seed;
        }
      in
      point_of_result (Fmt.str "flow_mod=%.1fms" ms) ms (Topology.run params))
    latencies_ms

type double_failure_report = {
  first_outage_s : float;
  second_outage_pairs_s : float;
  second_outage_triples_s : float;
}

let double_failure ?(n_prefixes = 2_000) ?(delay = Sim.Time.of_ms 200) ?(seed = 42L) () =
  let run group_size =
    let params =
      {
        (Topology.default_params
           ~mode:(Topology.Supercharged { replicas = 1 })
           ~n_prefixes ())
        with
        Topology.n_peers = 3;
        group_size;
        failure = Topology.Fail_two delay;
        seed;
      }
    in
    Topology.run params
  in
  let worst_nth result pos =
    Array.fold_left
      (fun acc gaps ->
        match List.nth_opt gaps pos with
        | Some g -> max acc (Sim.Time.to_sec g)
        | None -> acc)
      0.0 result.Topology.outages
  in
  let pairs = run 2 and triples = run 3 in
  {
    first_outage_s = max (worst_nth pairs 0) (worst_nth triples 0);
    second_outage_pairs_s = worst_nth pairs 1;
    second_outage_triples_s = worst_nth triples 1;
  }

let pp_double_failure ppf r =
  Fmt.pf ppf
    "@[<v>double failure (primary, then the serving backup 200ms later):@,     first outage (both sizes): %.3fs@,     second outage, groups of 2: %.3fs (waits for the router's slow path)@,     second outage, groups of 3: %.3fs (one more Listing 2 rewrite)@]"
    r.first_outage_s r.second_outage_pairs_s r.second_outage_triples_s

type replica_report = {
  identical_groups : bool;
  identical_rules : bool;
  convergence_max_s : float;
}

let replicas ?(n_prefixes = 5_000) ?(seed = 42L) () =
  let params =
    {
      (Topology.default_params ~mode:(Topology.Supercharged { replicas = 2 }) ~n_prefixes ())
      with
      Topology.seed;
    }
  in
  let result = Topology.run params in
  let identical =
    match result.Topology.replica_digests with
    | [a; b] -> String.equal a b
    | _ -> false
  in
  let samples = Topology.convergence_seconds result in
  {
    identical_groups = identical;
    identical_rules = identical;
    convergence_max_s = (Stats.summarize samples).Stats.max;
  }

let point_to_json p =
  Obs.Json.Obj
    [
      ("label", Obs.Json.String p.label);
      ("value_ms", Obs.Json.Float p.value_ms);
      ("median_s", Obs.Json.Float p.median_s);
      ("max_s", Obs.Json.Float p.max_s);
    ]

let points_to_json points = Obs.Json.List (List.map point_to_json points)

let double_failure_to_json r =
  Obs.Json.Obj
    [
      ("first_outage_s", Obs.Json.Float r.first_outage_s);
      ("second_outage_pairs_s", Obs.Json.Float r.second_outage_pairs_s);
      ("second_outage_triples_s", Obs.Json.Float r.second_outage_triples_s);
    ]

let replica_report_to_json r =
  Obs.Json.Obj
    [
      ("identical_groups", Obs.Json.Bool r.identical_groups);
      ("identical_rules", Obs.Json.Bool r.identical_rules);
      ("convergence_max_s", Obs.Json.Float r.convergence_max_s);
    ]

let pp_points ~header ppf points =
  Fmt.pf ppf "%s@." header;
  Fmt.pf ppf "%-18s %12s %12s@." "point" "median(s)" "max(s)";
  List.iter
    (fun p -> Fmt.pf ppf "%-18s %12.4f %12.4f@." p.label p.median_s p.max_s)
    points

let pp_replica_report ppf r =
  Fmt.pf ppf
    "replicas: identical groups=%b identical rules=%b convergence max=%.3fs"
    r.identical_groups r.identical_rules r.convergence_max_s
