(** Figure 5 — convergence time vs. number of prefixes, supercharged and
    non-supercharged, 3 repetitions × 100 monitored flows per point.

    The paper's series: 1 k, 5 k, 10 k, 50 k, 100 k, 200 k, 300 k,
    400 k, 500 k prefixes; each box plot shows median / IQR / 5th & 95th
    percentiles, with the maximum printed above. *)

type row = {
  n_prefixes : int;
  mode : Topology.mode;
  summary : Stats.summary;  (** over repetitions × flows, in seconds *)
  unrecovered : int;
  flow_mods : int;  (** switch flow-mods issued, summed over repetitions *)
  updates_processed : int;
      (** BGP updates run through the controllers, summed over
          repetitions (0 in plain mode) *)
  wall_s : float;  (** wall-clock spent simulating this point *)
  updates_per_sec : float;
      (** [updates_processed /. wall_s] — simulator control-plane
          throughput *)
  failover : Obs.Histogram.t;
      (** [controller.failover_seconds] merged across repetitions
          (empty in plain mode) *)
}

val paper_sizes : int list
(** The x-axis of the paper's Fig. 5. *)

val paper_max_seconds : (int * float) list
(** The non-supercharged maxima printed above Fig. 5's boxes: 0.9 s at
    1 k … 140.9 s at 500 k — the reference the reproduction is compared
    against in EXPERIMENTS.md. *)

val run :
  ?sizes:int list ->
  ?repetitions:int ->
  ?monitored_flows:int ->
  ?seed:int64 ->
  ?progress:(string -> unit) ->
  unit ->
  row list
(** Runs the full sweep (both modes per size). Defaults: the paper's
    sizes, 3 repetitions, 100 flows. *)

val to_json : row list -> Obs.Json.t
(** The sweep as a JSON object: [paper_max_seconds] reference values
    plus one object per (size, mode) with the convergence percentiles,
    flow-mod and update counts, updates/sec, and the failover-latency
    histogram snapshot. *)

val pp_table : Format.formatter -> row list -> unit
(** Prints the figure as a table, one row per (size, mode), with the
    paper's reference maxima and the improvement factor per size. *)

val to_csv : row list -> string
(** One line per (size, mode) with the box-plot statistics —
    [prefixes,mode,n,min,p5,q1,median,q3,p95,max,mean,unrecovered] —
    ready for external plotting. *)

val pp_ascii_figure : Format.formatter -> row list -> unit
(** Renders the box plots on a log-scale time axis, like the paper's
    Fig. 5: whiskers at the 5th/95th percentiles, a box over the
    inter-quartile range, the median marked inside. *)
