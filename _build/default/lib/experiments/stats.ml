let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

type summary = {
  n : int;
  min : float;
  p5 : float;
  q1 : float;
  median : float;
  q3 : float;
  p95 : float;
  max : float;
  mean : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sum = Array.fold_left ( +. ) 0.0 xs in
  {
    n;
    min = percentile xs 0.0;
    p5 = percentile xs 5.0;
    q1 = percentile xs 25.0;
    median = percentile xs 50.0;
    q3 = percentile xs 75.0;
    p95 = percentile xs 95.0;
    max = percentile xs 100.0;
    mean = sum /. float_of_int n;
  }

let summary_to_json s =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int s.n);
      ("min", Obs.Json.Float s.min);
      ("p5", Obs.Json.Float s.p5);
      ("q1", Obs.Json.Float s.q1);
      ("p50", Obs.Json.Float s.median);
      ("q3", Obs.Json.Float s.q3);
      ("p95", Obs.Json.Float s.p95);
      ("max", Obs.Json.Float s.max);
      ("mean", Obs.Json.Float s.mean);
    ]

let pp_summary ppf s =
  Fmt.pf ppf
    "n=%d min=%.3fs p5=%.3fs q1=%.3fs med=%.3fs q3=%.3fs p95=%.3fs max=%.3fs mean=%.3fs"
    s.n s.min s.p5 s.q1 s.median s.q3 s.p95 s.max s.mean
