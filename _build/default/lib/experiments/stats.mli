(** Distribution summaries for the evaluation tables — the quantities
    Fig. 5's box plots display: median, inter-quartile range, 5th/95th
    percentiles, and the maximum printed above each box. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation between
    order statistics (the array need not be sorted; it is not
    modified). @raise Invalid_argument on an empty array. *)

type summary = {
  n : int;
  min : float;
  p5 : float;
  q1 : float;
  median : float;
  q3 : float;
  p95 : float;
  max : float;
  mean : float;
}

val summarize : float array -> summary

val summary_to_json : summary -> Obs.Json.t
(** The summary as a JSON object; the median is keyed ["p50"] for
    consistency with the histogram snapshots. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering in seconds with millisecond precision. *)
