type state = Admin_down | Down | Init | Up

let pp_state ppf s =
  Fmt.string ppf
    (match s with Admin_down -> "AdminDown" | Down -> "Down" | Init -> "Init" | Up -> "Up")

let state_to_int = function Admin_down -> 0 | Down -> 1 | Init -> 2 | Up -> 3

let state_of_int = function
  | 0 -> Some Admin_down
  | 1 -> Some Down
  | 2 -> Some Init
  | 3 -> Some Up
  | _ -> None

type diagnostic =
  | No_diagnostic
  | Control_detection_time_expired
  | Neighbor_signaled_down
  | Administratively_down

let pp_diagnostic ppf d =
  Fmt.string ppf
    (match d with
    | No_diagnostic -> "none"
    | Control_detection_time_expired -> "detection time expired"
    | Neighbor_signaled_down -> "neighbor signaled down"
    | Administratively_down -> "administratively down")

let diag_to_int = function
  | No_diagnostic -> 0
  | Control_detection_time_expired -> 1
  | Neighbor_signaled_down -> 3
  | Administratively_down -> 7

let diag_of_int = function
  | 0 -> Some No_diagnostic
  | 1 -> Some Control_detection_time_expired
  | 3 -> Some Neighbor_signaled_down
  | 7 -> Some Administratively_down
  | _ -> None

type t = {
  state : state;
  diag : diagnostic;
  detect_mult : int;
  my_discriminator : int32;
  your_discriminator : int32;
  desired_min_tx_us : int;
  required_min_rx_us : int;
}

let udp_port = 3784

let encode t =
  let buf = Net.Wire.Buf.create () in
  (* vers(3)=1 | diag(5) *)
  Net.Wire.Buf.u8 buf ((1 lsl 5) lor diag_to_int t.diag);
  (* sta(2) | P F C A D M(6)=0 *)
  Net.Wire.Buf.u8 buf (state_to_int t.state lsl 6);
  Net.Wire.Buf.u8 buf t.detect_mult;
  Net.Wire.Buf.u8 buf 24 (* length *);
  Net.Wire.Buf.u32 buf t.my_discriminator;
  Net.Wire.Buf.u32 buf t.your_discriminator;
  Net.Wire.Buf.u32 buf (Int32.of_int t.desired_min_tx_us);
  Net.Wire.Buf.u32 buf (Int32.of_int t.required_min_rx_us);
  Net.Wire.Buf.u32 buf 0l (* required min echo rx *);
  Net.Wire.Buf.contents buf

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode s =
  let r = Net.Wire.Reader.of_string s in
  let* vers_diag = Net.Wire.Reader.u8 r in
  if vers_diag lsr 5 <> 1 then Error (Net.Wire.Malformed "bfd version")
  else
    let* diag =
      match diag_of_int (vers_diag land 0x1F) with
      | Some d -> Ok d
      | None -> Error (Net.Wire.Unsupported "bfd diagnostic")
    in
    let* sta_flags = Net.Wire.Reader.u8 r in
    let* state =
      match state_of_int (sta_flags lsr 6) with
      | Some s -> Ok s
      | None -> Error (Net.Wire.Malformed "bfd state")
    in
    let* detect_mult = Net.Wire.Reader.u8 r in
    if detect_mult = 0 then Error (Net.Wire.Malformed "bfd detect mult")
    else
      let* length = Net.Wire.Reader.u8 r in
      if length <> 24 || String.length s < 24 then
        Error (Net.Wire.Malformed "bfd length")
      else
        let* my_discriminator = Net.Wire.Reader.u32 r in
        let* your_discriminator = Net.Wire.Reader.u32 r in
        let* tx = Net.Wire.Reader.u32 r in
        let* rx = Net.Wire.Reader.u32 r in
        let* _echo = Net.Wire.Reader.u32 r in
        if Int32.equal my_discriminator 0l then
          Error (Net.Wire.Malformed "bfd my discriminator")
        else
          Ok
            {
              state;
              diag;
              detect_mult;
              my_discriminator;
              your_discriminator;
              desired_min_tx_us = Int32.to_int tx;
              required_min_rx_us = Int32.to_int rx;
            }

let equal a b = a = b

let pp ppf t =
  Fmt.pf ppf "bfd %a diag=%a mult=%d my=%ld your=%ld tx=%dus rx=%dus" pp_state
    t.state pp_diagnostic t.diag t.detect_mult t.my_discriminator
    t.your_discriminator t.desired_min_tx_us t.required_min_rx_us
