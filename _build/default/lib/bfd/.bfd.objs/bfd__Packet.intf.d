lib/bfd/packet.mli: Format Net
