lib/bfd/packet.ml: Fmt Int32 Net String
