lib/bfd/session.mli: Packet Sim
