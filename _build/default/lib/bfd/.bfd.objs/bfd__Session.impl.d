lib/bfd/session.ml: Int64 Obs Option Packet Sim Stdlib
