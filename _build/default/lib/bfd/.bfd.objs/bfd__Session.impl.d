lib/bfd/session.ml: Int64 Option Packet Sim Stdlib
