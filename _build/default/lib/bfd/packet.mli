(** BFD control packets (RFC 5880 §4.1).

    The mandatory section only — authentication is out of scope. The
    codec produces the real 24-byte wire layout so packets can ride UDP
    port 3784 through the simulated data plane. *)

type state = Admin_down | Down | Init | Up

val pp_state : Format.formatter -> state -> unit
val state_to_int : state -> int

type diagnostic =
  | No_diagnostic
  | Control_detection_time_expired
  | Neighbor_signaled_down
  | Administratively_down

val pp_diagnostic : Format.formatter -> diagnostic -> unit

type t = {
  state : state;
  diag : diagnostic;
  detect_mult : int;
  my_discriminator : int32;
  your_discriminator : int32;  (** 0 until learned *)
  desired_min_tx_us : int;  (** microseconds, as on the wire *)
  required_min_rx_us : int;
}

val encode : t -> string
(** 24-byte control packet. *)

val decode : string -> (t, Net.Wire.error) result

val udp_port : int
(** 3784, single-hop BFD. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
