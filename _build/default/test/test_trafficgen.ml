(* Tests for the traffic generator/measurement substrate. *)

let ip = Net.Ipv4.of_string_exn

let flows_of addrs =
  Array.of_list
    (List.mapi (fun index a -> { Trafficgen.Flow.index; dst = ip a }) addrs)

let sink_tests =
  [
    Alcotest.test_case "CAM matches expected destinations only" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let sink = Trafficgen.Sink.create e ~flows:(flows_of ["1.0.0.1"; "2.0.0.1"]) in
        Trafficgen.Sink.deliver sink (ip "1.0.0.1");
        Trafficgen.Sink.deliver sink (ip "9.9.9.9");
        Alcotest.(check int) "flow 0" 1 (Trafficgen.Sink.arrivals sink 0);
        Alcotest.(check int) "flow 1" 0 (Trafficgen.Sink.arrivals sink 1);
        Alcotest.(check int) "stray" 1 (Trafficgen.Sink.strays sink);
        Alcotest.(check int) "total" 2 (Trafficgen.Sink.total sink));
    Alcotest.test_case "max gap tracks the largest inter-arrival" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let sink = Trafficgen.Sink.create e ~flows:(flows_of ["1.0.0.1"]) in
        let deliver_at ms =
          ignore
            (Sim.Engine.schedule_at e (Sim.Time.of_ms ms) (fun () ->
                 Trafficgen.Sink.deliver sink (ip "1.0.0.1")))
        in
        List.iter deliver_at [0; 10; 15; 100; 102];
        Sim.Engine.run e;
        Alcotest.(check int64) "85ms" (Sim.Time.to_ns (Sim.Time.of_ms 85))
          (Sim.Time.to_ns (Trafficgen.Sink.max_gap sink 0));
        Alcotest.(check (option int64)) "last at 102" (Some (Sim.Time.to_ns (Sim.Time.of_ms 102)))
          (Option.map Sim.Time.to_ns (Trafficgen.Sink.last_arrival sink 0)));
    Alcotest.test_case "reset_gaps clears statistics but not counters" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let sink = Trafficgen.Sink.create e ~flows:(flows_of ["1.0.0.1"]) in
        Trafficgen.Sink.deliver sink (ip "1.0.0.1");
        ignore (Sim.Engine.schedule_at e (Sim.Time.of_ms 50) (fun () ->
            Trafficgen.Sink.deliver sink (ip "1.0.0.1")));
        Sim.Engine.run e;
        Trafficgen.Sink.reset_gaps sink;
        Alcotest.(check int64) "gap zero" 0L (Sim.Time.to_ns (Trafficgen.Sink.max_gap sink 0));
        Alcotest.(check int) "count kept" 2 (Trafficgen.Sink.arrivals sink 0));
  ]

let source_tests =
  [
    Alcotest.test_case "streams every flow on the grid" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let flows = flows_of ["1.0.0.1"; "2.0.0.1"] in
        let sent = ref [] in
        let source =
          Trafficgen.Source.create e ~grid:(Sim.Time.of_ms 1) ~flows
            ~send:(fun f -> sent := (f.Trafficgen.Flow.index, Sim.Time.to_ms (Sim.Engine.now e)) :: !sent)
            ()
        in
        Trafficgen.Source.start source;
        Sim.Engine.run ~until:(Sim.Time.of_ms 3) e;
        Trafficgen.Source.stop source;
        Alcotest.(check int) "6 packets" 6 (List.length !sent);
        Alcotest.(check int) "counter" 6 (Trafficgen.Source.packets_sent source);
        Sim.Engine.run ~until:(Sim.Time.of_ms 10) e;
        Alcotest.(check int) "stopped" 6 (List.length !sent));
    Alcotest.test_case "start is idempotent" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let source =
          Trafficgen.Source.create e ~grid:(Sim.Time.of_ms 1) ~flows:(flows_of ["1.0.0.1"])
            ~send:(fun _ -> ()) ()
        in
        Trafficgen.Source.start source;
        Trafficgen.Source.start source;
        Sim.Engine.run ~until:(Sim.Time.of_ms 2) e;
        Alcotest.(check int) "no double stream" 2 (Trafficgen.Source.packets_sent source));
  ]

(* A loopback harness: probes are "delivered" to the sink after a fixed
   path delay unless the path is down. *)
let make_loopback ?(delay = Sim.Time.of_us 30) () =
  let e = Sim.Engine.create () in
  let flows = flows_of ["1.0.0.1"; "2.0.0.1"] in
  let sink = Trafficgen.Sink.create e ~flows in
  let path_up = ref true in
  let send (f : Trafficgen.Flow.t) =
    let up_at_send = !path_up in
    ignore
      (Sim.Engine.schedule_after e delay (fun () ->
           if up_at_send && !path_up then Trafficgen.Sink.deliver sink f.dst))
  in
  let monitor =
    Trafficgen.Monitor.create e ~grid:(Sim.Time.of_us 70) ~sink ~send ~flows ()
  in
  (e, sink, monitor, path_up)

let monitor_tests =
  [
    Alcotest.test_case "probe_flow sends at the next grid point" `Quick (fun () ->
        let e, sink, monitor, _ = make_loopback () in
        ignore sink;
        Sim.Engine.run ~until:(Sim.Time.of_us 100) e;
        Trafficgen.Monitor.probe_flow monitor 0;
        Sim.Engine.run e;
        Alcotest.(check int) "one probe" 1 (Trafficgen.Monitor.probes_sent monitor);
        match Trafficgen.Sink.last_arrival sink 0 with
        | Some t ->
          Alcotest.(check int64) "grid-aligned + delay"
            (Sim.Time.to_ns (Sim.Time.of_us 170))
            (Sim.Time.to_ns t)
        | None -> Alcotest.fail "no delivery");
    Alcotest.test_case "probes within one slot are deduplicated" `Quick (fun () ->
        let _, _, monitor, _ = make_loopback () in
        Trafficgen.Monitor.probe_flow monitor 0;
        Trafficgen.Monitor.probe_flow monitor 0;
        Trafficgen.Monitor.probe_flow monitor 0;
        Alcotest.(check int) "scheduled once" 0 (Trafficgen.Monitor.probes_sent monitor));
    Alcotest.test_case "probe_prefix selects matching flows" `Quick (fun () ->
        let e, sink, monitor, _ = make_loopback () in
        Trafficgen.Monitor.probe_prefix monitor (Net.Prefix.v "2.0.0.0/8");
        Sim.Engine.run e;
        Alcotest.(check int) "flow 1 only" 0 (Trafficgen.Sink.arrivals sink 0);
        Alcotest.(check int) "flow 1 got it" 1 (Trafficgen.Sink.arrivals sink 1));
    Alcotest.test_case "window sends one probe per flow per slot" `Quick (fun () ->
        let e, _, monitor, _ = make_loopback () in
        Trafficgen.Monitor.window monitor ~from_:Sim.Time.zero ~until:(Sim.Time.of_us 280);
        Sim.Engine.run e;
        (* Slots 0,70,140,210,280 = 5 slots x 2 flows. *)
        Alcotest.(check int) "10 probes" 10 (Trafficgen.Monitor.probes_sent monitor));
    Alcotest.test_case "straddling gap is the outage, later gaps ignored" `Quick
      (fun () ->
        let e, _, monitor, path_up = make_loopback () in
        (* Healthy deliveries up to 1ms, failure at 1ms, recovery probe at
           50ms, another sparse probe at 300ms. *)
        Trafficgen.Monitor.window monitor ~from_:Sim.Time.zero ~until:(Sim.Time.of_ms 1);
        let t_fail = Sim.Time.of_ms 1 in
        Trafficgen.Monitor.arm_failure monitor ~at:t_fail;
        ignore (Sim.Engine.schedule_at e t_fail (fun () -> path_up := false));
        ignore (Sim.Engine.schedule_at e (Sim.Time.of_ms 49) (fun () -> path_up := true));
        ignore
          (Sim.Engine.schedule_at e (Sim.Time.of_ms 50) (fun () ->
               Trafficgen.Monitor.probe_all monitor));
        ignore
          (Sim.Engine.schedule_at e (Sim.Time.of_ms 300) (fun () ->
               Trafficgen.Monitor.probe_all monitor));
        Sim.Engine.run e;
        (match Trafficgen.Monitor.verdict monitor 0 with
        | Trafficgen.Monitor.Recovered gap ->
          let ms = Sim.Time.to_ms gap in
          Alcotest.(check bool) (Fmt.str "gap ~49ms (%.3f)" ms) true
            (ms > 48.0 && ms < 51.0)
        | _ -> Alcotest.fail "expected recovery");
        Alcotest.(check bool) "alive since failure" true
          (Trafficgen.Monitor.all_alive_since monitor t_fail));
    Alcotest.test_case "unaffected flow reports Unaffected" `Quick (fun () ->
        let e, _, monitor, _ = make_loopback () in
        Trafficgen.Monitor.window monitor ~from_:Sim.Time.zero ~until:(Sim.Time.of_ms 2);
        Trafficgen.Monitor.arm_failure monitor ~at:(Sim.Time.of_ms 1);
        Sim.Engine.run e;
        Alcotest.(check bool) "unaffected" true
          (Trafficgen.Monitor.verdict monitor 0 = Trafficgen.Monitor.Unaffected));
    Alcotest.test_case "black-holed flow reports Black_holed" `Quick (fun () ->
        let e, _, monitor, path_up = make_loopback () in
        Trafficgen.Monitor.window monitor ~from_:Sim.Time.zero ~until:(Sim.Time.of_ms 1);
        let t_fail = Sim.Time.of_ms 1 in
        Trafficgen.Monitor.arm_failure monitor ~at:t_fail;
        ignore (Sim.Engine.schedule_at e t_fail (fun () -> path_up := false));
        ignore
          (Sim.Engine.schedule_at e (Sim.Time.of_ms 50) (fun () ->
               Trafficgen.Monitor.probe_all monitor));
        Sim.Engine.run e;
        Alcotest.(check bool) "black-holed" true
          (Trafficgen.Monitor.verdict monitor 0 = Trafficgen.Monitor.Black_holed);
        Alcotest.(check bool) "not alive" false
          (Trafficgen.Monitor.all_alive_since monitor t_fail);
        Alcotest.(check (option int64)) "convergence none" None
          (Option.map Sim.Time.to_ns
             (Trafficgen.Monitor.convergence monitor ~failed_at:t_fail 0)));
  ]

let suite =
  [
    ("trafficgen.sink", sink_tests);
    ("trafficgen.source", source_tests);
    ("trafficgen.monitor", monitor_tests);
  ]
