(* Tests for the BFD substrate: control-packet codec and the
   asynchronous-mode state machine. *)

let sample_packet =
  {
    Bfd.Packet.state = Bfd.Packet.Up;
    diag = Bfd.Packet.No_diagnostic;
    detect_mult = 3;
    my_discriminator = 7l;
    your_discriminator = 9l;
    desired_min_tx_us = 40_000;
    required_min_rx_us = 40_000;
  }

let packet_tests =
  [
    Alcotest.test_case "codec round-trip" `Quick (fun () ->
        match Bfd.Packet.decode (Bfd.Packet.encode sample_packet) with
        | Ok p -> Alcotest.(check bool) "equal" true (Bfd.Packet.equal p sample_packet)
        | Error e -> Alcotest.failf "decode: %a" Net.Wire.pp_error e);
    Alcotest.test_case "codec round-trips every state and diag" `Quick (fun () ->
        List.iter
          (fun state ->
            List.iter
              (fun diag ->
                let p = { sample_packet with Bfd.Packet.state; diag } in
                match Bfd.Packet.decode (Bfd.Packet.encode p) with
                | Ok p' ->
                  Alcotest.(check bool) "equal" true (Bfd.Packet.equal p p')
                | Error e -> Alcotest.failf "decode: %a" Net.Wire.pp_error e)
              [
                Bfd.Packet.No_diagnostic;
                Bfd.Packet.Control_detection_time_expired;
                Bfd.Packet.Neighbor_signaled_down;
                Bfd.Packet.Administratively_down;
              ])
          [Bfd.Packet.Admin_down; Bfd.Packet.Down; Bfd.Packet.Init; Bfd.Packet.Up]);
    Alcotest.test_case "encoding is 24 bytes" `Quick (fun () ->
        Alcotest.(check int) "length" 24 (String.length (Bfd.Packet.encode sample_packet)));
    Alcotest.test_case "zero discriminator rejected" `Quick (fun () ->
        let raw =
          Bfd.Packet.encode { sample_packet with Bfd.Packet.my_discriminator = 1l }
        in
        let corrupted = Bytes.of_string raw in
        Bytes.set corrupted 4 '\x00';
        Bytes.set corrupted 5 '\x00';
        Bytes.set corrupted 6 '\x00';
        Bytes.set corrupted 7 '\x00';
        match Bfd.Packet.decode (Bytes.to_string corrupted) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted zero discriminator");
    Alcotest.test_case "truncated packet rejected" `Quick (fun () ->
        let raw = Bfd.Packet.encode sample_packet in
        match Bfd.Packet.decode (String.sub raw 0 10) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncation");
  ]

(* Wires two sessions back to back through the engine with a small
   one-way delay, optionally allowing the pipe to be cut. *)
let make_pair ?(tx_interval = Sim.Time.of_ms 40) ?(detect_mult = 3) () =
  let e = Sim.Engine.create () in
  let cut = ref false in
  let b_ref = ref None in
  let a_ref = ref None in
  let pipe target pkt =
    if not !cut then
      ignore
        (Sim.Engine.schedule_after e (Sim.Time.of_us 50) (fun () ->
             match !target with
             | Some session -> Bfd.Session.receive session pkt
             | None -> ()))
  in
  let a =
    Bfd.Session.create e ~name:"a" ~local_discriminator:1l ~detect_mult ~tx_interval
      ~send:(pipe b_ref) ()
  in
  let b =
    Bfd.Session.create e ~name:"b" ~local_discriminator:2l ~detect_mult ~tx_interval
      ~send:(pipe a_ref) ()
  in
  a_ref := Some a;
  b_ref := Some b;
  (e, a, b, cut)

let session_tests =
  [
    Alcotest.test_case "three-way handshake reaches Up" `Quick (fun () ->
        let e, a, b, _ = make_pair () in
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check bool) "a up" true (Bfd.Session.state a = Bfd.Packet.Up);
        Alcotest.(check bool) "b up" true (Bfd.Session.state b = Bfd.Packet.Up);
        Alcotest.(check bool) "traffic flowed" true (Bfd.Session.packets_received a > 0));
    Alcotest.test_case "silence is detected within mult x interval" `Quick (fun () ->
        let e, a, b, cut = make_pair () in
        let down_at = ref None in
        Bfd.Session.on_state_change a (fun state _ ->
            if state = Bfd.Packet.Down && !down_at = None then
              down_at := Some (Sim.Engine.now e));
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        let cut_time = Sim.Engine.now e in
        cut := true;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        match !down_at with
        | Some t ->
          let elapsed = Sim.Time.to_ms (Sim.Time.sub t cut_time) in
          (* Detection no earlier than (mult-1) x interval after the last
             received packet and no later than mult x interval plus one
             interval of phase. *)
          Alcotest.(check bool)
            (Fmt.str "detection in bounds (%.1fms)" elapsed)
            true
            (elapsed >= 80.0 && elapsed <= 165.0)
        | None -> Alcotest.fail "never detected");
    Alcotest.test_case "detection diag is Control_detection_time_expired" `Quick
      (fun () ->
        let e, a, b, cut = make_pair () in
        let diag = ref Bfd.Packet.No_diagnostic in
        Bfd.Session.on_state_change a (fun state d ->
            if state = Bfd.Packet.Down then diag := d);
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        cut := true;
        Sim.Engine.run ~until:(Sim.Time.of_sec 2.0) e;
        Alcotest.(check bool) "diag" true
          (!diag = Bfd.Packet.Control_detection_time_expired));
    Alcotest.test_case "admin down tells the peer" `Quick (fun () ->
        let e, a, b, _ = make_pair () in
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Bfd.Session.disable a;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.2) e;
        Alcotest.(check bool) "a admin down" true
          (Bfd.Session.state a = Bfd.Packet.Admin_down);
        Alcotest.(check bool) "b saw it" true (Bfd.Session.state b = Bfd.Packet.Down));
    Alcotest.test_case "faster interval detects faster" `Quick (fun () ->
        let run_with interval =
          let e, a, b, cut = make_pair ~tx_interval:interval () in
          let down_at = ref None in
          Bfd.Session.on_state_change a (fun state _ ->
              if state = Bfd.Packet.Down && !down_at = None then
                down_at := Some (Sim.Engine.now e));
          Bfd.Session.enable a;
          Bfd.Session.enable b;
          Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
          let cut_time = Sim.Engine.now e in
          cut := true;
          Sim.Engine.run ~until:(Sim.Time.of_sec 3.0) e;
          match !down_at with
          | Some t -> Sim.Time.to_ms (Sim.Time.sub t cut_time)
          | None -> Alcotest.fail "never detected"
        in
        let fast = run_with (Sim.Time.of_ms 10) in
        let slow = run_with (Sim.Time.of_ms 100) in
        Alcotest.(check bool)
          (Fmt.str "fast %.1fms < slow %.1fms" fast slow)
          true (fast < slow));
    Alcotest.test_case "detection time reflects remote parameters" `Quick (fun () ->
        let e, a, b, _ = make_pair ~tx_interval:(Sim.Time.of_ms 40) ~detect_mult:3 () in
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) e;
        Alcotest.(check int64) "3 x 40ms" (Sim.Time.to_ns (Sim.Time.of_ms 120))
          (Sim.Time.to_ns (Bfd.Session.detection_time a)));
    Alcotest.test_case "disabled session ignores input and stops sending" `Quick
      (fun () ->
        let e, a, b, _ = make_pair () in
        Bfd.Session.enable a;
        Bfd.Session.enable b;
        Sim.Engine.run ~until:(Sim.Time.of_sec 0.5) e;
        Bfd.Session.disable a;
        let sent_before = Bfd.Session.packets_sent a in
        Sim.Engine.run ~until:(Sim.Time.of_sec 1.5) e;
        Alcotest.(check int) "no more tx" sent_before (Bfd.Session.packets_sent a));
  ]

let suite = [("bfd.packet", packet_tests); ("bfd.session", session_tests)]
