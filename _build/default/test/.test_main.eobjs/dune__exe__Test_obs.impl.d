test/test_obs.ml: Alcotest Float Fmt Fun Gen List Obs QCheck QCheck_alcotest Stdlib
