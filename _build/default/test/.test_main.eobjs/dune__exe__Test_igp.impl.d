test/test_igp.ml: Alcotest Array Bgp Fmt Hashtbl Igp List Net Option QCheck QCheck_alcotest Sim
