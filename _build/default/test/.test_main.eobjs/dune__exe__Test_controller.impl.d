test/test_controller.ml: Alcotest Array Bgp Fmt Int64 List Net Openflow Option Router Sim Supercharger Workloads
