test/test_controller.ml: Alcotest Array Bgp Fmt Int64 List Net Obs Openflow Option Router Sim Supercharger Workloads
