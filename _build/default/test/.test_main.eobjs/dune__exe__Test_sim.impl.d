test/test_sim.ml: Alcotest Array Fmt Format Fun Int Int64 List Obs QCheck QCheck_alcotest Sim String
