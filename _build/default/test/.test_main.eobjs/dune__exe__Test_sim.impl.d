test/test_sim.ml: Alcotest Array Fun Int Int64 List QCheck QCheck_alcotest Sim
