test/test_experiments.ml: Alcotest Array Experiments Filename Float Fmt Gen List Net Option QCheck QCheck_alcotest Sim String Sys
