test/test_router.ml: Alcotest Bfd Bgp Fmt List Net Option Router Sim
