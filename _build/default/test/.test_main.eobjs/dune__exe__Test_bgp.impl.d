test/test_bgp.ml: Alcotest Asn Attributes Bgp Bytes Channel Codec Decision Fmt Int32 List Message Net Option QCheck QCheck_alcotest Rib Route Session Sim Speaker Stream String
