test/test_trafficgen.ml: Alcotest Array Fmt List Net Option Sim Trafficgen
