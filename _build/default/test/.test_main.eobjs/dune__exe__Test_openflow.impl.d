test/test_openflow.ml: Action Alcotest Array Bytes Codec Flow_table Fmt List Message Net Ofmatch Openflow Option QCheck QCheck_alcotest Sim String Switch
