test/test_workloads.ml: Alcotest Array Bgp Float Fmt Hashtbl List Net Option Sim Workloads
