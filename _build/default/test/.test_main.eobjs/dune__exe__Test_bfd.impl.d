test/test_bfd.ml: Alcotest Bfd Bytes Fmt List Net Sim String
