test/test_net.ml: Alcotest Arp Bytes Char Ethernet Filename Int32 Int64 Ipv4 Ipv4_packet Link List Lpm Mac Net Option Pcap Prefix QCheck QCheck_alcotest Sim String Sys Udp Wire
