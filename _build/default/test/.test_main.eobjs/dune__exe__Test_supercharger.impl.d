test/test_supercharger.ml: Alcotest Array Bgp Fmt List Net Openflow Option QCheck QCheck_alcotest Supercharger Workloads
