(* Tests for the synthetic workload generators. *)

let rib_gen_tests =
  [
    Alcotest.test_case "prefixes are unique" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:20_000 in
        let tbl = Hashtbl.create 40_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let key = Net.Prefix.to_string e.prefix in
            if Hashtbl.mem tbl key then Alcotest.failf "duplicate %s" key;
            Hashtbl.replace tbl key ())
          entries;
        Alcotest.(check int) "count" 20_000 (Array.length entries));
    Alcotest.test_case "deterministic in the seed" `Quick (fun () ->
        let a = Workloads.Rib_gen.generate ~seed:7L ~count:1_000 in
        let b = Workloads.Rib_gen.generate ~seed:7L ~count:1_000 in
        let c = Workloads.Rib_gen.generate ~seed:8L ~count:1_000 in
        Alcotest.(check bool) "same" true (a = b);
        Alcotest.(check bool) "different" false (a = c));
    Alcotest.test_case "length mix is /24-heavy and bounded" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:20_000 in
        let count24 = ref 0 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            let len = Net.Prefix.length e.prefix in
            Alcotest.(check bool) "within 16..24" true (len >= 16 && len <= 24);
            if len = 24 then incr count24)
          entries;
        let share = float_of_int !count24 /. 20_000.0 in
        Alcotest.(check bool) (Fmt.str "about half are /24 (%.2f)" share) true
          (share > 0.50 && share < 0.60));
    Alcotest.test_case "paths are non-empty and well-formed" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:1_000 in
        Array.iter
          (fun (e : Workloads.Rib_gen.entry) ->
            Alcotest.(check bool) "path" true
              (List.length e.as_path >= 1 && List.length e.as_path <= 5))
          entries);
    Alcotest.test_case "to_updates prepends the speaker and sets the NH" `Quick
      (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:10 in
        let updates =
          Workloads.Rib_gen.to_updates entries ~speaker_asn:(Bgp.Asn.of_int 65002)
            ~next_hop:(Net.Ipv4.of_octets 10 0 0 2)
        in
        Alcotest.(check int) "one per entry" 10 (List.length updates);
        List.iteri
          (fun i (u : Bgp.Message.update) ->
            match u.attrs with
            | Some attrs ->
              Alcotest.(check (option int)) "first as" (Some 65002)
                (Option.map Bgp.Asn.to_int (Bgp.Attributes.first_as attrs));
              Alcotest.(check string) "nh" "10.0.0.2"
                (Net.Ipv4.to_string attrs.Bgp.Attributes.next_hop);
              Alcotest.(check int) "path grew by one"
                (List.length entries.(i).Workloads.Rib_gen.as_path + 1)
                (Bgp.Attributes.as_path_length attrs)
            | None -> Alcotest.fail "no attrs")
          updates);
    Alcotest.test_case "count limit enforced" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Workloads.Rib_gen.generate ~seed:1L ~count:700_000);
             false
           with Invalid_argument _ -> true));
  ]

let feed_tests =
  [
    Alcotest.test_case "replay paces batches on the interval" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let updates =
          List.init 25 (fun i ->
              { Bgp.Message.withdrawn = [Net.Prefix.make (Net.Ipv4.of_octets 1 0 i 0) 24];
                attrs = None; nlri = [] })
        in
        let arrivals = ref [] in
        let done_at = ref None in
        Workloads.Feed.replay e ~updates ~batch:10 ~interval:(Sim.Time.of_ms 5)
          ~on_done:(fun () -> done_at := Some (Sim.Time.to_ms (Sim.Engine.now e)))
          ~send:(fun _ -> arrivals := Sim.Time.to_ms (Sim.Engine.now e) :: !arrivals)
          ();
        Sim.Engine.run e;
        Alcotest.(check int) "all sent" 25 (List.length !arrivals);
        let batches =
          List.sort_uniq Float.compare !arrivals
        in
        Alcotest.(check (list (float 0.001))) "batch times" [0.0; 5.0; 10.0] batches;
        Alcotest.(check (option (float 0.001))) "done with last batch" (Some 10.0) !done_at);
    Alcotest.test_case "replay handles an exact batch multiple" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let updates =
          List.init 20 (fun i ->
              { Bgp.Message.withdrawn = [Net.Prefix.make (Net.Ipv4.of_octets 1 0 i 0) 24];
                attrs = None; nlri = [] })
        in
        let sent = ref 0 and finished = ref false in
        Workloads.Feed.replay e ~updates ~batch:10 ~interval:(Sim.Time.of_ms 1)
          ~on_done:(fun () -> finished := true)
          ~send:(fun _ -> incr sent)
          ();
        Sim.Engine.run e;
        Alcotest.(check int) "all" 20 !sent;
        Alcotest.(check bool) "done fired once" true !finished);
    Alcotest.test_case "replay of an empty feed fires on_done" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let finished = ref false in
        Workloads.Feed.replay e ~updates:[] ~send:(fun _ -> ())
          ~on_done:(fun () -> finished := true)
          ();
        Sim.Engine.run e;
        Alcotest.(check bool) "fired" true !finished);
    Alcotest.test_case "interleave alternates and keeps tails" `Quick (fun () ->
        Alcotest.(check (list int)) "even" [1; 10; 2; 20]
          (Workloads.Feed.interleave [1; 2] [10; 20]);
        Alcotest.(check (list int)) "uneven" [1; 10; 2; 20; 30; 40]
          (Workloads.Feed.interleave [1; 2] [10; 20; 30; 40]));
  ]

let churn_tests =
  [
    Alcotest.test_case "full_table_race has every peer's full feed" `Quick (fun () ->
        let events =
          Workloads.Churn.full_table_race ~seed:1L ~count:100
            ~next_hops:[| Net.Ipv4.of_octets 10 0 0 2; Net.Ipv4.of_octets 10 0 0 3 |]
            ~asns:[| Bgp.Asn.of_int 65002; Bgp.Asn.of_int 65003 |]
        in
        Alcotest.(check int) "2 x 100" 200 (List.length events);
        let per_peer p =
          List.length (List.filter (fun (e : Workloads.Churn.event) -> e.peer = p) events)
        in
        Alcotest.(check int) "peer 0" 100 (per_peer 0);
        Alcotest.(check int) "peer 1" 100 (per_peer 1));
    Alcotest.test_case "flap alternates withdraw and re-announce" `Quick (fun () ->
        let entries = Workloads.Rib_gen.generate ~seed:1L ~count:50 in
        let events =
          Workloads.Churn.flap ~seed:2L ~entries ~rounds:10
            ~next_hop:(Net.Ipv4.of_octets 10 0 0 2) ~asn:(Bgp.Asn.of_int 65002) ~peer:0
        in
        Alcotest.(check int) "two per round" 20 (List.length events);
        List.iteri
          (fun i (e : Workloads.Churn.event) ->
            let is_withdraw = e.update.Bgp.Message.withdrawn <> [] in
            Alcotest.(check bool) "alternates" (i mod 2 = 0) is_withdraw)
          events);
  ]

let suite =
  [
    ("workloads.rib_gen", rib_gen_tests);
    ("workloads.feed", feed_tests);
    ("workloads.churn", churn_tests);
  ]
