examples/quickstart.ml: Array Experiments Fmt
