examples/igp_costs.mli:
