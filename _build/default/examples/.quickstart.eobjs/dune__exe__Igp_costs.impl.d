examples/igp_costs.ml: Bgp Fmt Igp List Net Option Sim
