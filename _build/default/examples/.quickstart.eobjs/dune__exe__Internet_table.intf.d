examples/internet_table.mli:
