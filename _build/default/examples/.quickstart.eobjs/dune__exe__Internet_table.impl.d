examples/internet_table.ml: Array Experiments Fmt Sys Unix
