examples/fib_cache.ml: Array Fmt List Net Openflow Option Sim Supercharger Workloads
