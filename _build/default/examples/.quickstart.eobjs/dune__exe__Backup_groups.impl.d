examples/backup_groups.ml: Array Bgp Fmt List Net Sim Supercharger Workloads
