examples/dual_controller.mli:
