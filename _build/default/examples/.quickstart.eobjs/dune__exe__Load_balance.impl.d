examples/load_balance.ml: Array Fmt Net Sim Supercharger
