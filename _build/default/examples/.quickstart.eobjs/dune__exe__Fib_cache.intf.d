examples/fib_cache.mli:
