examples/quickstart.mli:
