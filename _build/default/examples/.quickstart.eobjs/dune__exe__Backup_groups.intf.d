examples/backup_groups.mli:
