examples/dual_controller.ml: Bgp Fmt List Net Openflow Router Sim String Supercharger Workloads
