(* FIB-size supercharging (§1 of the paper): "the size of the router
   forwarding tables can be increased using a SDN switch as a cache
   (similarly to ViAggre). In this case, the router table would contain
   aggregated entries that would get resolved in the switch table."

   This example loads Internet-shaped tables of increasing size through
   the cache, shows how few entries the router actually has to hold
   (the /8 covers), and verifies against the switch's own flow table
   that longest-prefix matching still resolves every destination to the
   same next hop a full FIB would pick.

   Run with: dune exec examples/fib_cache.exe *)

let ip = Net.Ipv4.of_string_exn

let peer octet port =
  {
    Supercharger.Provisioner.pi_ip = ip (Fmt.str "10.0.0.%d" octet);
    pi_mac = Net.Mac.of_string_exn (Fmt.str "00:bb:00:00:00:0%d" octet);
    pi_port = port;
  }

let () =
  Fmt.pr "Router FIB compression through the switch (aggregates at /8):@.@.";
  Fmt.pr "%-10s %14s %14s %12s@." "prefixes" "router entries" "switch rules"
    "compression";
  List.iter
    (fun count ->
      let table = Openflow.Flow_table.create () in
      let cache =
        Supercharger.Fib_cache.create
          ~allocator:(Supercharger.Vnh.create ())
          ~send:(function
            | Openflow.Message.Flow_mod fm -> Openflow.Flow_table.apply table fm
            | _ -> ())
          ()
      in
      Supercharger.Fib_cache.declare_peer cache (peer 2 2);
      Supercharger.Fib_cache.declare_peer cache (peer 3 3);
      (* Feed an Internet-shaped table, peers alternating, and mirror it
         into a reference full FIB. *)
      let reference = Net.Lpm.create () in
      let entries = Workloads.Rib_gen.generate ~seed:9L ~count in
      Array.iteri
        (fun i (e : Workloads.Rib_gen.entry) ->
          let nh = if i mod 3 = 0 then ip "10.0.0.3" else ip "10.0.0.2" in
          Net.Lpm.insert reference e.prefix nh;
          ignore (Supercharger.Fib_cache.route cache e.prefix (Some nh)))
        entries;
      (* Every destination must resolve like the reference FIB; a
         handful also go through the switch's actual flow table. *)
      let rng = Sim.Rng.create ~seed:77L in
      for i = 1 to 2_000 do
        let e = entries.(Sim.Rng.int rng count) in
        let dst = Net.Prefix.nth e.prefix (Sim.Rng.int rng (min 16 (Net.Prefix.size e.prefix))) in
        let expected = Option.map snd (Net.Lpm.lookup reference dst) in
        let got = Supercharger.Fib_cache.resolve cache dst in
        if not (Option.equal Net.Ipv4.equal expected got) then
          Fmt.failwith "cache resolution diverged for %a" Net.Ipv4.pp dst;
        if i <= 25 then begin
          let frame =
            Net.Ethernet.make
              ~src:(Net.Mac.of_string_exn "00:aa:00:00:00:01")
              ~dst:(Supercharger.Fib_cache.vmac cache)
              (Net.Ethernet.Ipv4
                 (Net.Ipv4_packet.udp ~src:(ip "192.168.0.100") ~dst ~src_port:1
                    ~dst_port:2 "x"))
          in
          let port =
            match
              Openflow.Flow_table.lookup table
                { Openflow.Ofmatch.arrival_port = 0; frame }
            with
            | Some entry ->
              List.find_map
                (function Openflow.Action.Output p -> Some p | _ -> None)
                entry.Openflow.Flow_table.actions
            | None -> None
          in
          let expected_port =
            Option.map
              (fun nh -> if Net.Ipv4.equal nh (ip "10.0.0.2") then 2 else 3)
              expected
          in
          if port <> expected_port then
            Fmt.failwith "switch table diverged for %a" Net.Ipv4.pp dst
        end
      done;
      Fmt.pr "%-10d %14d %14d %11.0fx@." count
        (Supercharger.Fib_cache.aggregates cache)
        (Supercharger.Fib_cache.specifics cache)
        (Supercharger.Fib_cache.compression_factor cache))
    [1_000; 10_000; 50_000; 200_000];
  Fmt.pr "@.(2000 random destinations per row verified against a full FIB)@."
