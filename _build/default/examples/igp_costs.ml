(* Intra-domain substrate (§2 of the paper: "other intra-domain routing
   protocols such as OSPF or IS-IS can also be used").

   A small link-state network computes shortest paths by flooding + SPF;
   the IGP distance to each BGP next hop feeds step 6 of the decision
   process, so the backup-group order — and therefore which peer the
   supercharger protects with which — follows IGP reachability. When a
   core link fails, the IGP reconverges and the same prefix's backup
   group flips.

   Topology:            r1 ----1---- r2      (r2 and r4 are the BGP
                         \            |       next hops; all BGP
                          \--5-- r3 --1-- r4  attributes are equal)

   Run with: dune exec examples/igp_costs.exe *)

let ip = Net.Ipv4.of_string_exn

let () =
  let engine = Sim.Engine.create () in
  let node i = Igp.Node.create engine ~router_id:(ip (Fmt.str "10.0.0.%d" i)) () in
  let r1 = node 1 and r2 = node 2 and r3 = node 3 and r4 = node 4 in
  Igp.Node.connect ~a:r1 ~b:r2 ~cost:1;
  Igp.Node.connect ~a:r1 ~b:r3 ~cost:5;
  Igp.Node.connect ~a:r2 ~b:r4 ~cost:1;
  Igp.Node.connect ~a:r3 ~b:r4 ~cost:1;
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;

  let decide () =
    (* Two BGP routes for the same prefix with identical attributes,
       learned from next hops r2 and r4; only the IGP cost differs. *)
    let route peer_id nh =
      Bgp.Route.make ~peer_id ~peer_router_id:nh
        ~igp_cost:(Option.value (Igp.Node.distance_to r1 nh) ~default:max_int)
        (Bgp.Attributes.make
           ~as_path:[Bgp.Attributes.Seq [Bgp.Asn.of_int 65002]]
           ~next_hop:nh ())
    in
    let ranked = Bgp.Decision.rank [route 0 (ip "10.0.0.2"); route 1 (ip "10.0.0.4")] in
    List.map
      (fun (r : Bgp.Route.t) ->
        Fmt.str "%a (igp cost %d)" Net.Ipv4.pp (Bgp.Route.next_hop r) r.igp_cost)
      ranked
  in
  let show label =
    Fmt.pr "%s@." label;
    Fmt.pr "  r1's IGP distances: %a@."
      Fmt.(list ~sep:comma (fun ppf (n, d) -> Fmt.pf ppf "%a=%d" Net.Ipv4.pp n d))
      (Igp.Node.distances r1);
    match decide () with
    | [primary; backup] ->
      Fmt.pr "  decision ranking:   primary %s, backup %s@.@." primary backup
    | _ -> assert false
  in
  show "Initial topology (r2 one hop away, r4 two hops):";

  Fmt.pr "Cutting the r1-r2 link; the IGP refloods and reconverges...@.@.";
  Igp.Node.disconnect ~a:r1 ~b:r2;
  Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.of_sec 2.0)) engine;
  show "After the failure (everything now behind the cost-5 link):";
  Fmt.pr
    "A supercharged controller plugged into this IGP would re-key the@.\
     backup-group (primary, backup) exactly as the ranking above flips.@."
