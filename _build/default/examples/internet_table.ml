(* The paper's motivating scenario (Fig. 1 / Fig. 2): an edge router
   holding a full Internet table from two providers, preferring the
   cheaper one. When the preferred provider dies, a flat-FIB router
   rewrites every entry one by one; the supercharged router rewrites a
   single switch rule.

   This example loads a synthetic full-table feed (size configurable,
   default 100k — pass e.g. 512000 for the paper's scale) and reports
   the convergence distribution in both modes, plus data-plane detail:
   how many FIB writes each mode needed and how many switch rules the
   supercharger touched.

   Run with: dune exec examples/internet_table.exe [-- N_PREFIXES] *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000
  in
  Fmt.pr "Loading a %d-prefix Internet table from two providers...@.@." n;
  let run mode =
    let t0 = Unix.gettimeofday () in
    let result = Experiments.Topology.run (Experiments.Topology.default_params ~mode ~n_prefixes:n ()) in
    let wall = Unix.gettimeofday () -. t0 in
    let samples = Experiments.Topology.convergence_seconds result in
    let s = Experiments.Stats.summarize samples in
    Fmt.pr "%a:@." Experiments.Topology.pp_mode mode;
    Fmt.pr "  convergence  median %.3fs  p95 %.3fs  max %.3fs@."
      s.Experiments.Stats.median s.Experiments.Stats.p95 s.Experiments.Stats.max;
    Fmt.pr "  FIB writes over the run: %d@." result.Experiments.Topology.fib_writes;
    (match mode with
    | Experiments.Topology.Supercharged _ ->
      Fmt.pr "  backup-groups: %d, switch rules touched: %d@."
        result.Experiments.Topology.backup_groups
        result.Experiments.Topology.flow_mods_at_failover
    | Experiments.Topology.Plain -> ());
    Fmt.pr "  (simulated %d events in %.1fs wall clock)@.@."
      result.Experiments.Topology.events wall;
    s.Experiments.Stats.max
  in
  let plain_max = run Experiments.Topology.Plain in
  let super_max = run (Experiments.Topology.Supercharged { replicas = 1 }) in
  Fmt.pr "Improvement factor at %d prefixes: %.0fx@." n (plain_max /. super_max);
  Fmt.pr "(paper, 512k prefixes on a Nexus 7k: ~2.5min -> ~150ms, 900x)@."
