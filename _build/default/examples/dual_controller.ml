(* Reliability (§3 of the paper): two supercharger replicas, no shared
   state. Both receive the same BGP sessions and compute identical
   VNH/VMAC assignments and switch rules. This example wires the lab by
   hand using the public API, then:

     1. loads a table and shows both replicas computed identical state;
     2. kills controller 1 (all its sessions drop) — the router keeps
        forwarding without a single FIB change, because controller 2's
        identical announcements are already the next-best routes;
     3. fails the primary provider — the surviving replica performs the
        Listing 2 reroute alone, within the usual ~150 ms budget.

   Run with: dune exec examples/dual_controller.exe *)

let ip = Net.Ipv4.of_string_exn
let mac = Net.Mac.of_string_exn
let sec = Sim.Time.of_sec

let () =
  let engine = Sim.Engine.create ~seed:7L () in
  let run_for s = Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now engine) (sec s)) engine in

  (* Devices: R1, providers R2/R3, the switch, two controllers. *)
  let switch = Openflow.Switch.create engine ~name:"switch" ~n_ports:5 () in
  let r1 =
    Router.Legacy.create engine ~name:"r1" ~asn:(Bgp.Asn.of_int 65001)
      ~router_id:(ip "10.0.0.1")
      ~interfaces:
        [
          {
            Router.Legacy.if_mac = mac "00:aa:00:00:00:01";
            if_ip = ip "10.0.0.1";
            if_connected = Net.Prefix.v "10.0.0.0/8";
          };
        ]
      ()
  in
  let provider name octet =
    Router.Peer.create engine ~name ~asn:(Bgp.Asn.of_int (65000 + octet))
      ~mac:(mac (Fmt.str "00:bb:00:00:00:0%d" octet))
      ~ip:(ip (Fmt.str "10.0.0.%d" octet))
      ()
  in
  let r2 = provider "r2" 2 and r3 = provider "r3" 3 in

  (* Physical wiring. *)
  let plug device_connect port name =
    let link = Net.Link.create engine ~name () in
    device_connect link Net.Link.A;
    Openflow.Switch.attach_link switch ~port link Net.Link.B;
    link
  in
  ignore (plug (Router.Legacy.connect_interface r1 0) 0 "r1-sw");
  let link_r2 = plug (Router.Peer.connect r2) 1 "r2-sw" in
  ignore (plug (Router.Peer.connect r3) 2 "r3-sw");

  (* Plain L2 rules so unicast frames find their ports. *)
  List.iter
    (fun (m, port) ->
      Openflow.Flow_table.apply (Openflow.Switch.table switch)
        (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
           (Openflow.Ofmatch.dl_dst (mac m))
           [Openflow.Action.Output port]))
    [
      ("00:aa:00:00:00:01", 0); ("00:bb:00:00:00:02", 1); ("00:bb:00:00:00:03", 2);
      ("00:cc:00:00:00:01", 3); ("00:cc:00:00:00:02", 4);
    ];

  (* Two controller replicas, each with its own switch attachment, BFD
     NIC and BGP sessions. *)
  let r1_channels = ref [] in
  let make_controller i =
    let c =
      Supercharger.Controller.create engine
        ~name:(Fmt.str "controller%d" i)
        ~asn:(Bgp.Asn.of_int 65001)
        ~router_id:(ip (Fmt.str "10.0.0.%d" (9 + i)))
        ()
    in
    Supercharger.Controller.connect_switch c switch;
    let nic =
      Router.Endhost.create engine ~name:(Fmt.str "c%d-nic" i)
        ~mac:(mac (Fmt.str "00:cc:00:00:00:0%d" i))
        ~ip:(ip (Fmt.str "10.0.0.%d" (9 + i)))
        ()
    in
    ignore (plug (Router.Endhost.connect nic) (2 + i) (Fmt.str "c%d-sw" i));
    Supercharger.Controller.attach_dataplane c nic;
    let upstream peer_node lp port =
      let ch = Bgp.Channel.create engine () in
      ignore
        (Supercharger.Controller.add_upstream_peer c ~name:(Router.Peer.name peer_node)
           ~ip:(Router.Peer.ip peer_node) ~mac:(Router.Peer.mac peer_node)
           ~switch_port:port ~channel:ch ~side:Bgp.Channel.A ~import_local_pref:lp ());
      ignore
        (Router.Peer.add_bgp_peer peer_node ~name:(Fmt.str "c%d" i) ~channel:ch
           ~side:Bgp.Channel.B ())
    in
    upstream r2 200 1;
    upstream r3 100 2;
    let ch_r1 = Bgp.Channel.create engine () in
    ignore (Supercharger.Controller.add_router c ~name:"r1" ~channel:ch_r1 ~side:Bgp.Channel.A ());
    ignore
      (Router.Legacy.add_bgp_peer r1 ~name:(Fmt.str "c%d" i) ~channel:ch_r1
         ~side:Bgp.Channel.B ());
    r1_channels := (i, ch_r1) :: !r1_channels;
    c
  in
  let c1 = make_controller 1 in
  let c2 = make_controller 2 in
  List.iter Supercharger.Controller.start [c1; c2];
  Bgp.Speaker.start (Router.Legacy.speaker r1);
  Bgp.Speaker.start (Router.Peer.speaker r2);
  Bgp.Speaker.start (Router.Peer.speaker r3);
  run_for 1.0;

  (* Load a small table from both providers. *)
  let entries = Workloads.Rib_gen.generate ~seed:7L ~count:500 in
  List.iter
    (fun (peer_node, asn, nh) ->
      List.iter
        (Router.Peer.announce_to_all peer_node)
        (Workloads.Rib_gen.to_updates entries ~speaker_asn:asn ~next_hop:nh))
    [
      (r2, Bgp.Asn.of_int 65002, ip "10.0.0.2");
      (r3, Bgp.Asn.of_int 65003, ip "10.0.0.3");
    ];
  run_for 5.0;

  let digest c =
    let groups = Supercharger.Controller.groups c in
    String.concat ";"
      (List.map
         (Fmt.str "%a" Supercharger.Backup_group.pp_binding)
         (Supercharger.Backup_group.all groups))
  in
  Fmt.pr "Replica state after the table load:@.";
  Fmt.pr "  controller1 groups: %s@." (digest c1);
  Fmt.pr "  controller2 groups: %s@." (digest c2);
  Fmt.pr "  identical: %b@.@." (String.equal (digest c1) (digest c2));
  Fmt.pr "  R1 FIB: %d entries after %d writes@.@."
    (Router.Fib.size (Router.Legacy.fib r1))
    (Router.Fib.applied_count (Router.Legacy.fib r1));

  (* Kill controller 1: all of its BGP sessions drop at once. *)
  let fib_writes_before = Router.Fib.applied_count (Router.Legacy.fib r1) in
  (match List.assoc_opt 1 !r1_channels with
  | Some ch -> Bgp.Channel.break ch
  | None -> ());
  run_for 5.0;
  Fmt.pr "Controller 1 killed.@.";
  Fmt.pr "  R1 FIB writes caused by the failover: %d (identical routes from@."
    (Router.Fib.applied_count (Router.Legacy.fib r1) - fib_writes_before);
  Fmt.pr "  controller 2 were already next-best, so the data plane is untouched)@.@.";

  (* Now fail the primary provider; the surviving replica reroutes. *)
  let reroute_done = ref None in
  Supercharger.Controller.on_failover c2 (fun ~failed ~flow_mods ->
      reroute_done := Some (failed, flow_mods, Sim.Engine.now engine));
  let t_fail = Sim.Engine.now engine in
  Net.Link.set_up link_r2 false;
  run_for 5.0;
  (match !reroute_done with
  | Some (failed, flow_mods, at) ->
    Fmt.pr "Primary provider %a failed at t=%a:@." Net.Ipv4.pp failed Sim.Time.pp t_fail;
    Fmt.pr "  surviving replica rewrote %d rule(s) %a after the failure@." flow_mods
      Sim.Time.pp (Sim.Time.sub at t_fail)
  | None -> Fmt.pr "(!) no failover detected@.");
  Fmt.pr "  switch applied %d flow-mod(s) in total@."
    (Openflow.Switch.flow_mods_applied switch)
