(* Quickstart: supercharge a router and watch it converge in ~0.1 s
   where the plain router needs seconds.

   Runs the paper's Fig. 4 lab twice at a small table size — once with
   the router alone, once supercharged — and prints the measured
   per-flow convergence distribution after the primary provider fails.

   Run with: dune exec examples/quickstart.exe *)

let run mode =
  let params = Experiments.Topology.default_params ~mode ~n_prefixes:2_000 () in
  let params = { params with Experiments.Topology.monitored_flows = 25 } in
  Experiments.Topology.run params

let () =
  Fmt.pr "Supercharged router quickstart: 2000 prefixes, fail the primary peer@.@.";
  let plain = run Experiments.Topology.Plain in
  Fmt.pr "  %a@." Experiments.Topology.pp_result plain;
  let super = run (Experiments.Topology.Supercharged { replicas = 1 }) in
  Fmt.pr "  %a@.@." Experiments.Topology.pp_result super;
  let max_of r =
    Array.fold_left max 0.0 (Experiments.Topology.convergence_seconds r)
  in
  Fmt.pr "Worst-case convergence: %.3fs plain vs %.3fs supercharged (%.0fx)@."
    (max_of plain) (max_of super)
    (max_of plain /. max_of super)
