(* Load-balancing supercharging (§1 of the paper): routers spread
   equal-cost traffic with a stateless hash over header bits; skewed
   traffic (here: destinations sharing their low byte, a typical
   alignment artefact) collapses onto few next hops. The supercharged
   switch overrides the decision per flow, least-loaded first.

   Run with: dune exec examples/load_balance.exe *)

let ip = Net.Ipv4.of_string_exn

let peer octet port =
  {
    Supercharger.Provisioner.pi_ip = ip (Fmt.str "10.0.0.%d" octet);
    pi_mac = Net.Mac.of_string_exn (Fmt.str "00:bb:00:00:00:0%d" octet);
    pi_port = port;
  }

let () =
  let n_targets = 4 in
  let n_flows = 10_000 in
  let rng = Sim.Rng.create ~seed:3L in
  (* Skewed workload: destinations are servers at aligned addresses
     (low byte in a handful of values), like real hosting racks. *)
  let flows =
    Array.init n_flows (fun i ->
        let low = [|1; 16; 17; 32|].(Sim.Rng.int rng 4) in
        {
          Supercharger.Load_balancer.fk_src = ip "192.168.0.100";
          fk_dst = Net.Ipv4.of_octets 1 (Sim.Rng.int rng 200) (Sim.Rng.int rng 250) low;
          fk_src_port = 1024 + (i mod 50_000);
          fk_dst_port = 443;
        })
  in

  (* The router's stateless hash. *)
  let hash_loads = Array.make n_targets 0 in
  Array.iter
    (fun key ->
      let b = Supercharger.Load_balancer.static_hash ~n_targets key in
      hash_loads.(b) <- hash_loads.(b) + 1)
    flows;

  (* The supercharged switch. *)
  let lb =
    Supercharger.Load_balancer.create
      ~allocator:(Supercharger.Vnh.create ())
      ~send:(fun _ -> ())
      ()
  in
  for t = 0 to n_targets - 1 do
    Supercharger.Load_balancer.add_target lb (peer (2 + t) (2 + t))
  done;
  Array.iter (fun key -> ignore (Supercharger.Load_balancer.assign lb key)) flows;

  Fmt.pr "%d flows over %d equal-cost next hops (skewed destinations):@.@."
    n_flows n_targets;
  Fmt.pr "%-10s %20s %20s@." "next hop" "router hash" "supercharged";
  for t = 0 to n_targets - 1 do
    Fmt.pr "%-10d %20d %20d@." (t + 1) hash_loads.(t)
      (Supercharger.Load_balancer.load lb (ip (Fmt.str "10.0.0.%d" (2 + t))))
  done;
  let mean = float_of_int n_flows /. float_of_int n_targets in
  let hash_imbalance = float_of_int (Array.fold_left max 0 hash_loads) /. mean in
  Fmt.pr "@.imbalance (max/mean): router hash %.2f, supercharged %.2f@."
    hash_imbalance
    (Supercharger.Load_balancer.imbalance lb);
  Fmt.pr "switch rules installed: %d (one per flow + %d defaults)@."
    (Supercharger.Load_balancer.rules_sent lb)
    n_targets
