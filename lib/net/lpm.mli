(** Longest-prefix-match table.

    A mutable binary trie from IPv4 prefixes to values. Inserting or
    removing is O(prefix length); lookup is O(32) node hops and
    allocates a tuple per hit. The forwarding hot paths now run on
    {!Flat_fib} (a stride-compressed multibit table); this trie remains
    the simple, obviously-correct reference — the qcheck oracle the flat
    structure is checked against — and the bookkeeping structure inside
    {!Flat_fib} itself. *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Prefix.t -> 'a -> unit
(** Binds the prefix, replacing any previous binding. *)

val remove : 'a t -> Prefix.t -> unit
(** Removes the exact prefix; no-op if absent. *)

val find_exact : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup (not longest-match). *)

val lookup : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** Longest-prefix match for an address. *)

val best_in_range : 'a t -> Ipv4.t -> lo:int -> hi:int -> (int * 'a) option
(** Longest-prefix match restricted to prefixes whose length lies in
    [\[lo, hi\]]; returns the winning length with the value. Used by
    {!Flat_fib} to recompute expanded slots after a removal. *)

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val is_empty : 'a t -> bool

val iter : 'a t -> (Prefix.t -> 'a -> unit) -> unit
(** Visits bindings in trie (lexicographic bit-string) order. *)

val fold : 'a t -> init:'b -> f:('b -> Prefix.t -> 'a -> 'b) -> 'b

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in trie order. *)

val clear : 'a t -> unit
