type t = { network : Ipv4.t; length : int }

let mask_of_length len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  let network = Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 addr) (mask_of_length len)) in
  { network; length = len }

let of_string s =
  let fail () = Error (Printf.sprintf "invalid prefix %S" s) in
  match String.index_opt s '/' with
  | None -> fail ()
  | Some i ->
    let addr_part = String.sub s 0 i in
    let len_part = String.sub s (i + 1) (String.length s - i - 1) in
    (match Ipv4.of_string addr_part, int_of_string_opt len_part with
    | Ok addr, Some len when len >= 0 && len <= 32 -> Ok (make addr len)
    | _ -> fail ())

let v s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.length

let network t = t.network
let length t = t.length

let mem addr t =
  let m = mask_of_length t.length in
  Int32.equal (Int32.logand (Ipv4.to_int32 addr) m) (Ipv4.to_int32 t.network)

let subset inner outer =
  inner.length >= outer.length && mem inner.network outer

let first t = t.network

let last t =
  let host_mask = Int32.lognot (mask_of_length t.length) in
  Ipv4.of_int32 (Int32.logor (Ipv4.to_int32 t.network) host_mask)

let size t =
  if t.length = 0 then max_int else 1 lsl (32 - t.length)

let nth t i =
  if i < 0 || (t.length > 0 && i >= size t) then invalid_arg "Prefix.nth";
  Ipv4.add t.network i

let default_route = make Ipv4.any 0

let compare a b =
  let c = Ipv4.compare a.network b.network in
  if c <> 0 then c else Int.compare a.length b.length

let equal a b = compare a b = 0

(* Mix the address bits down into the low bits: Hashtbl masks the hash
   with (bucket count - 1), and real routing tables are /24-heavy, so a
   plain [addr * 33 + len] leaves the masked bits nearly constant and
   degenerates the table into a handful of very long chains. *)
let hash t =
  let h = (Ipv4.hash t.network * 0x9E3779B1) lxor (t.length * 0x85EBCA6B) in
  (h lxor (h lsr 16)) land max_int

let pp ppf t = Format.pp_print_string ppf (to_string t)
