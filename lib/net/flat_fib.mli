(** Flat longest-prefix-match table for the forwarding hot path.

    A stride-compressed (16/8/8) multibit table in the DIR-24-8 spirit:
    a lookup is at most three array indexings, against up to 32
    dependent pointer loads for the {!Lpm} trie. Prefixes are expanded
    into every slot they cover at insert time, so {!lookup_value}
    performs no masking, allocates nothing, and returns the ['a option]
    stored when the binding was made.

    The trade: inserts and removals pay the expansion (up to 65536 slot
    writes for a /0; removals re-derive vacated slots from an internal
    {!Lpm} trie), and each table holds ~1.1 MiB of root arrays. That is
    the right trade for a FIB — read-dominated by orders of magnitude —
    and why the update path keeps the trie as its authoritative record
    rather than trying to make expansion reversible arithmetically. *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Prefix.t -> 'a -> unit
(** Binds the prefix, replacing any previous binding. Cost is
    proportional to the expanded slot range within one level (at most
    65536 for a /0, at most 256 otherwise). *)

val remove : 'a t -> Prefix.t -> unit
(** Removes the exact prefix; no-op if absent. Vacated slots fall back
    to the next-longest covering prefix. *)

val find_exact : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup (not longest-match). *)

val lookup_value : 'a t -> Ipv4.t -> 'a option
(** Longest-prefix match, zero-allocation fast path: returns the stored
    option itself — no closure, no tuple, no prefix reconstruction. *)

val lookup : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** Longest-prefix match returning the winning prefix, reconstructed
    from the slot's stored length. Interface-compatible with
    {!Lpm.lookup}; not for the per-packet path. *)

val lookup_batch : 'a t -> Ipv4.t array -> 'a option array -> unit
(** [lookup_batch t addrs out] writes [lookup_value t addrs.(i)] into
    [out.(i)] for every input — the zero-alloc batch primitive under
    batched forwarding. @raise Invalid_argument if [out] is shorter
    than [addrs]. *)

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val is_empty : 'a t -> bool

val iter : 'a t -> (Prefix.t -> 'a -> unit) -> unit
(** Visits bindings in trie (lexicographic bit-string) order. *)

val fold : 'a t -> init:'b -> f:('b -> Prefix.t -> 'a -> 'b) -> 'b

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in trie order. *)

val nodes : 'a t -> int
(** Live interior (level-1/level-2) nodes — exposed so tests can assert
    that removal churn recycles rather than leaks. *)

val clear : 'a t -> unit
