(* Stride-compressed (16/8/8) multibit LPM table.

   The per-bit trie in Lpm resolves a lookup with up to 32 dependent
   pointer loads and allocates a tuple per hit. Here a lookup is at
   most three array indexings: a 65536-slot root covering bits 0-15,
   then optional 256-slot nodes for bits 16-23 and 24-31, DIR-24-8
   style. Prefixes are expanded into every slot their range covers at
   insert time, so the lookup itself does no masking or prefix math.

   Each level stores only prefixes in its exclusive length band — root
   /0-/16, level-1 /17-/24, level-2 /25-/32 — and within a slot the
   longest covering prefix wins (shorter ones are shadowed at insert
   time). That makes "deepest set slot wins" exactly longest-prefix
   match, with shallower levels as fallback.

   Value slots are ['a option] with the [Some] allocated once per
   insert and shared across the expanded range, so [lookup_value]
   returns a stored immutable and allocates nothing. A parallel
   [Bytes] of per-slot prefix lengths (0xff = empty) drives the
   overwrite rule on insert and tells a removal which slots it owns; a
   plain [Lpm] trie keeps the authoritative binding set for
   [find_exact]/[iter]/removal-replacement queries off the hot path.

   Interior nodes live in a pool indexed by int (0 = the never-read
   sentinel, standing for "no child"), with a free list so removal
   churn recycles rather than leaks. *)

type 'a node = {
  values : 'a option array; (* 256 slots *)
  plens : Bytes.t;          (* per-slot owning prefix length; 0xff = empty *)
  children : int array;     (* pool indices; 0 = none *)
  mutable occupied : int;   (* set slots + live children; 0 = freeable *)
}

type 'a t = {
  trie : 'a Lpm.t; (* authoritative bindings; replacement queries *)
  root_values : 'a option array; (* 65536 *)
  root_plens : Bytes.t;
  root_children : int array;
  mutable pool : 'a node array;
  mutable pool_len : int;
  mutable free : int list;
}

let root_slots = 65536
let empty_plen = 0xff

let sentinel () =
  { values = [||]; plens = Bytes.empty; children = [||]; occupied = 0 }

let create () =
  {
    trie = Lpm.create ();
    root_values = Array.make root_slots None;
    root_plens = Bytes.make root_slots '\xff';
    root_children = Array.make root_slots 0;
    pool = [| sentinel () |];
    pool_len = 1;
    free = [];
  }

let new_node () =
  {
    values = Array.make 256 None;
    plens = Bytes.make 256 '\xff';
    children = Array.make 256 0;
    occupied = 0;
  }

(* A recycled node was emptied slot by slot before it was freed, so it
   comes back clean; only pool growth allocates. *)
let alloc_node t =
  match t.free with
  | i :: rest ->
    t.free <- rest;
    i
  | [] ->
    if t.pool_len = Array.length t.pool then begin
      let grown = Array.make (2 * Array.length t.pool) t.pool.(0) in
      Array.blit t.pool 0 grown 0 t.pool_len;
      t.pool <- grown
    end;
    let i = t.pool_len in
    t.pool.(i) <- new_node ();
    t.pool_len <- t.pool_len + 1;
    i

let u32 addr = Int32.to_int (Ipv4.to_int32 addr) land 0xFFFFFFFF

(* Write [sv] into every slot of [base, base+count) not owned by a
   longer prefix. An equal stored length can only be this same prefix
   re-bound, so overwrite on <=. *)
let set_root_range t ~base ~count ~len sv =
  for i = base to base + count - 1 do
    let cur = Bytes.get_uint8 t.root_plens i in
    if cur = empty_plen || cur <= len then begin
      t.root_values.(i) <- sv;
      Bytes.set_uint8 t.root_plens i len
    end
  done

let set_node_range n ~base ~count ~len sv =
  for i = base to base + count - 1 do
    let cur = Bytes.get_uint8 n.plens i in
    if cur = empty_plen || cur <= len then begin
      if cur = empty_plen then n.occupied <- n.occupied + 1;
      n.values.(i) <- sv;
      Bytes.set_uint8 n.plens i len
    end
  done

let ensure_root_child t ri =
  match t.root_children.(ri) with
  | 0 ->
    let i = alloc_node t in
    t.root_children.(ri) <- i;
    t.pool.(i)
  | c -> t.pool.(c)

let ensure_child t n i1 =
  match n.children.(i1) with
  | 0 ->
    let i = alloc_node t in
    n.children.(i1) <- i;
    n.occupied <- n.occupied + 1;
    t.pool.(i)
  | c -> t.pool.(c)

let insert t prefix v =
  Lpm.insert t.trie prefix v;
  let len = Prefix.length prefix in
  let net = u32 (Prefix.network prefix) in
  let sv = Some v in
  if len <= 16 then
    set_root_range t ~base:(net lsr 16) ~count:(1 lsl (16 - len)) ~len sv
  else begin
    let n1 = ensure_root_child t (net lsr 16) in
    if len <= 24 then
      set_node_range n1
        ~base:((net lsr 8) land 0xff)
        ~count:(1 lsl (24 - len))
        ~len sv
    else begin
      let n2 = ensure_child t n1 ((net lsr 8) land 0xff) in
      set_node_range n2 ~base:(net land 0xff) ~count:(1 lsl (32 - len)) ~len sv
    end
  end

(* Removal: vacate every slot the prefix owned (stored length = its
   length — two equal-length prefixes never overlap, so ownership is
   unambiguous), then refill each from the next-best prefix in the
   level's length band. The trie answers that query after the binding
   is gone, so the replacement is exact. *)
let refill_root t i =
  let addr = Ipv4.of_int32 (Int32.of_int (i lsl 16)) in
  match Lpm.best_in_range t.trie addr ~lo:0 ~hi:16 with
  | Some (plen, v) ->
    t.root_values.(i) <- Some v;
    Bytes.set_uint8 t.root_plens i plen
  | None ->
    t.root_values.(i) <- None;
    Bytes.set_uint8 t.root_plens i empty_plen

let refill_node t n ~slot_addr ~lo ~hi i =
  let addr = Ipv4.of_int32 (Int32.of_int slot_addr) in
  match Lpm.best_in_range t.trie addr ~lo ~hi with
  | Some (plen, v) ->
    n.values.(i) <- Some v;
    Bytes.set_uint8 n.plens i plen
  | None ->
    n.values.(i) <- None;
    Bytes.set_uint8 n.plens i empty_plen;
    n.occupied <- n.occupied - 1

let free_node t idx = t.free <- idx :: t.free

let remove t prefix =
  if Option.is_some (Lpm.find_exact t.trie prefix) then begin
    Lpm.remove t.trie prefix;
    let len = Prefix.length prefix in
    let net = u32 (Prefix.network prefix) in
    if len <= 16 then begin
      let base = net lsr 16 in
      for i = base to base + (1 lsl (16 - len)) - 1 do
        if Bytes.get_uint8 t.root_plens i = len then refill_root t i
      done
    end
    else begin
      let ri = net lsr 16 in
      match t.root_children.(ri) with
      | 0 -> () (* insert created the node; unreachable for a live binding *)
      | c1 ->
        let n1 = t.pool.(c1) in
        (if len <= 24 then begin
           let base = (net lsr 8) land 0xff in
           for i = base to base + (1 lsl (24 - len)) - 1 do
             if Bytes.get_uint8 n1.plens i = len then
               refill_node t n1
                 ~slot_addr:((ri lsl 16) lor (i lsl 8))
                 ~lo:17 ~hi:24 i
           done
         end
         else begin
           let i1 = (net lsr 8) land 0xff in
           match n1.children.(i1) with
           | 0 -> ()
           | c2 ->
             let n2 = t.pool.(c2) in
             let base = net land 0xff in
             for i = base to base + (1 lsl (32 - len)) - 1 do
               if Bytes.get_uint8 n2.plens i = len then
                 refill_node t n2
                   ~slot_addr:((ri lsl 16) lor (i1 lsl 8) lor i)
                   ~lo:25 ~hi:32 i
             done;
             if n2.occupied = 0 then begin
               n1.children.(i1) <- 0;
               n1.occupied <- n1.occupied - 1;
               free_node t c2
             end
         end);
        if n1.occupied = 0 then begin
          t.root_children.(ri) <- 0;
          free_node t c1
        end
    end
  end

(* The hot path: at most three dependent array reads, deepest set slot
   wins, and the returned ['a option] is the one stored at insert time
   — no allocation, no closure, no prefix reconstruction. Indices are
   masked to their level's width, so unsafe_get cannot escape. *)
let[@lint.zero_alloc] lookup_value t addr =
  let a = u32 addr in
  let i0 = a lsr 16 in
  let c1 = Array.unsafe_get t.root_children i0 in
  if c1 = 0 then Array.unsafe_get t.root_values i0
  else begin
    let n1 = Array.unsafe_get t.pool c1 in
    let i1 = (a lsr 8) land 0xff in
    let c2 = Array.unsafe_get n1.children i1 in
    if c2 = 0 then
      match Array.unsafe_get n1.values i1 with
      | None -> Array.unsafe_get t.root_values i0
      | some -> some
    else begin
      let n2 = Array.unsafe_get t.pool c2 in
      let i2 = a land 0xff in
      match Array.unsafe_get n2.values i2 with
      | None -> (
        match Array.unsafe_get n1.values i1 with
        | None -> Array.unsafe_get t.root_values i0
        | some -> some)
      | some -> some
    end
  end

(* Compatibility lookup reconstructing the winning prefix from the
   stored per-slot length — convenient for tests and callers that need
   the match, not for the per-packet path. *)
let lookup t addr =
  let a = u32 addr in
  let i0 = a lsr 16 in
  let best_plen = ref empty_plen in
  let best_v = ref None in
  let take plens values i =
    let l = Bytes.get_uint8 plens i in
    if l <> empty_plen then begin
      best_plen := l;
      best_v := values.(i)
    end
  in
  take t.root_plens t.root_values i0;
  (match t.root_children.(i0) with
  | 0 -> ()
  | c1 ->
    let n1 = t.pool.(c1) in
    let i1 = (a lsr 8) land 0xff in
    take n1.plens n1.values i1;
    (match n1.children.(i1) with
    | 0 -> ()
    | c2 ->
      let n2 = t.pool.(c2) in
      take n2.plens n2.values (a land 0xff)));
  match !best_v with
  | None -> None
  | Some v -> Some (Prefix.make addr !best_plen, v)

let[@lint.zero_alloc] lookup_batch t addrs out =
  let n = Array.length addrs in
  if Array.length out < n then
    invalid_arg "Flat_fib.lookup_batch: output array shorter than input";
  for k = 0 to n - 1 do
    Array.unsafe_set out k (lookup_value t (Array.unsafe_get addrs k))
  done

let find_exact t prefix = Lpm.find_exact t.trie prefix
let iter t f = Lpm.iter t.trie f
let fold t ~init ~f = Lpm.fold t.trie ~init ~f
let to_list t = Lpm.to_list t.trie
let cardinal t = Lpm.cardinal t.trie
let is_empty t = Lpm.is_empty t.trie
let nodes t = t.pool_len - 1 - List.length t.free

let clear t =
  Lpm.clear t.trie;
  Array.fill t.root_values 0 root_slots None;
  Bytes.fill t.root_plens 0 root_slots '\xff';
  Array.fill t.root_children 0 root_slots 0;
  t.pool <- [| t.pool.(0) |];
  t.pool_len <- 1;
  t.free <- []
