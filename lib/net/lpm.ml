type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option; (* next bit = 0 *)
  mutable one : 'a node option;  (* next bit = 1 *)
}

type 'a t = {
  mutable root : 'a node;
  mutable cardinal : int;
}

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); cardinal = 0 }

let child node bit = if bit then node.one else node.zero

let set_child node bit c =
  if bit then node.one <- c else node.zero <- c

let insert t prefix v =
  let addr = Prefix.network prefix in
  let len = Prefix.length prefix in
  let rec walk node depth =
    if depth = len then begin
      if Option.is_none node.value then t.cardinal <- t.cardinal + 1;
      node.value <- Some v
    end
    else begin
      let bit = Ipv4.bit addr depth in
      let next =
        match child node bit with
        | Some c -> c
        | None ->
          let c = new_node () in
          set_child node bit (Some c);
          c
      in
      walk next (depth + 1)
    end
  in
  walk t.root 0

(* Removal prunes now-empty branches on the way back up so long runs of
   insert/remove (BGP churn) do not leak nodes. *)
let remove t prefix =
  let addr = Prefix.network prefix in
  let len = Prefix.length prefix in
  let rec walk node depth =
    (* Returns [true] when [node] became empty and can be detached. *)
    if depth = len then begin
      if Option.is_some node.value then begin
        t.cardinal <- t.cardinal - 1;
        node.value <- None
      end;
      Option.is_none node.value && Option.is_none node.zero
      && Option.is_none node.one
    end
    else begin
      let bit = Ipv4.bit addr depth in
      match child node bit with
      | None -> false
      | Some c ->
        let prune = walk c (depth + 1) in
        if prune then set_child node bit None;
        Option.is_none node.value && Option.is_none node.zero
        && Option.is_none node.one
    end
  in
  ignore (walk t.root 0)

let find_exact t prefix =
  let addr = Prefix.network prefix in
  let len = Prefix.length prefix in
  let rec walk node depth =
    if depth = len then node.value
    else
      match child node (Ipv4.bit addr depth) with
      | None -> None
      | Some c -> walk c (depth + 1)
  in
  walk t.root 0

let lookup t addr =
  let rec walk node depth best =
    let best =
      match node.value with
      | Some v -> Some (Prefix.make addr depth, v)
      | None -> best
    in
    if depth = 32 then best
    else
      match child node (Ipv4.bit addr depth) with
      | None -> best
      | Some c -> walk c (depth + 1) best
  in
  walk t.root 0 None

(* Constrained longest-match: the replacement query the flat FIB needs
   when a removal vacates expanded slots. Only prefixes whose length
   falls in [lo, hi] are candidates, and the winner's length comes back
   alongside the value so the caller can re-stamp the slot. *)
let best_in_range t addr ~lo ~hi =
  let rec walk node depth best =
    let best =
      if depth >= lo then
        match node.value with Some v -> Some (depth, v) | None -> best
      else best
    in
    if depth = hi then best
    else
      match child node (Ipv4.bit addr depth) with
      | None -> best
      | Some c -> walk c (depth + 1) best
  in
  walk t.root 0 None

let iter t f =
  (* Reconstructs each prefix from the path; [bits] accumulates the path
     as an int32 built most-significant-bit first. *)
  let rec walk node depth bits =
    (match node.value with
    | Some v -> f (Prefix.make (Ipv4.of_int32 bits) depth) v
    | None -> ());
    (match node.zero with
    | Some c -> walk c (depth + 1) bits
    | None -> ());
    match node.one with
    | Some c ->
      let bit = Int32.shift_left 1l (31 - depth) in
      walk c (depth + 1) (Int32.logor bits bit)
    | None -> ()
  in
  walk t.root 0 0l

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun p v -> acc := f !acc p v);
  !acc

let to_list t =
  List.rev (fold t ~init:[] ~f:(fun acc p v -> (p, v) :: acc))

let cardinal t = t.cardinal
let is_empty t = t.cardinal = 0

let clear t =
  t.root <- new_node ();
  t.cardinal <- 0
