type t = {
  engine : Sim.Engine.t;
  grid : Sim.Time.t;
  sink : Sink.t;
  send : Flow.t -> unit;
  flows : Flow.t array;
  scheduled_until : Sim.Time.t array;
      (* per flow: latest grid slot with a probe already scheduled *)
  last_arrival : Sim.Time.t option array;
  gaps : Sim.Time.t list array; (* straddling gaps, reversed *)
  first_send_since_delivery : Sim.Time.t option array;
  mutable failure_at : Sim.Time.t option;
  mutable probes : int;
  m_loss_gap : Obs.Histogram.t; (* per-flow outage gaps, seconds *)
}

let create engine ?(grid = Flow.grid_default) ~sink ~send ~flows () =
  let t =
    {
      engine;
      grid;
      sink;
      send;
      flows;
      scheduled_until = Array.make (Array.length flows) (Sim.Time.of_ns (-1L));
      last_arrival = Array.make (Array.length flows) None;
      gaps = Array.make (Array.length flows) [];
      first_send_since_delivery = Array.make (Array.length flows) None;
      failure_at = None;
      probes = 0;
      m_loss_gap =
        Obs.Metrics.histogram (Sim.Engine.metrics engine) "monitor.loss_gap_seconds";
    }
  in
  Sink.on_delivery sink (fun flow ->
      let index = flow.Flow.index in
      let now = Sim.Engine.now t.engine in
      (match t.failure_at, t.last_arrival.(index) with
      | Some at, Some prev when Sim.Time.(now > at) ->
        let gap = Sim.Time.sub now prev in
        (* A large inter-arrival gap is only an outage if some probe was
           sent well inside it and evidently lost; otherwise it is just
           the idle time between event-driven probes on a healthy
           path. The margin covers the closing probe's own path delay. *)
        let lost_probe_inside =
          match t.first_send_since_delivery.(index) with
          | Some sent ->
            Sim.Time.(sent <= Sim.Time.sub now (Sim.Time.mul t.grid 2))
          | None -> false
        in
        if Sim.Time.(gap > Sim.Time.mul t.grid 2) && lost_probe_inside then begin
          t.gaps.(index) <- gap :: t.gaps.(index);
          Obs.Histogram.observe t.m_loss_gap (Sim.Time.to_sec gap)
        end
      | _ -> ());
      t.first_send_since_delivery.(index) <- None;
      t.last_arrival.(index) <- Some now);
  t

let arm_failure t ~at = t.failure_at <- Some at

type verdict =
  | Recovered of Sim.Time.t
  | Unaffected
  | Black_holed

let verdict t index =
  match t.failure_at with
  | None -> invalid_arg "Monitor.verdict: arm_failure first"
  | Some at -> (
    match List.rev t.gaps.(index) with
    | gap :: _ -> Recovered gap
    | [] -> (
      match t.last_arrival.(index) with
      | Some last when Sim.Time.(last > at) -> Unaffected
      | Some _ | None -> Black_holed))

let outages t index = List.rev t.gaps.(index)

let send_now t index =
  t.probes <- t.probes + 1;
  if Option.is_none t.first_send_since_delivery.(index) then
    t.first_send_since_delivery.(index) <- Some (Sim.Engine.now t.engine);
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"probe" "send flow#%d" index;
  t.send t.flows.(index)

let inject t index = send_now t index

let probe_flow t index =
  let slot =
    Sim.Time.next_multiple ~grid:t.grid
      (Sim.Time.add (Sim.Engine.now t.engine) (Sim.Time.of_ns 1L))
  in
  if Sim.Time.(t.scheduled_until.(index) < slot) then begin
    t.scheduled_until.(index) <- slot;
    ignore (Sim.Engine.schedule_at t.engine slot (fun () -> send_now t index))
  end

let probe_prefix t prefix =
  Array.iteri
    (fun index flow ->
      if Net.Prefix.mem flow.Flow.dst prefix then probe_flow t index)
    t.flows

let probe_all t = Array.iteri (fun index _ -> probe_flow t index) t.flows

let window t ~from_ ~until =
  let start = Sim.Time.next_multiple ~grid:t.grid from_ in
  let rec slots slot =
    if Sim.Time.(slot <= until) then begin
      ignore
        (Sim.Engine.schedule_at t.engine slot (fun () ->
             Array.iteri (fun index _ -> send_now t index) t.flows));
      slots (Sim.Time.add slot t.grid)
    end
  in
  slots start;
  Array.iteri (fun index _ -> t.scheduled_until.(index) <- until) t.flows

let all_alive_since t instant =
  let alive index =
    match Sink.last_arrival t.sink index with
    | Some last -> Sim.Time.(last > instant)
    | None -> false
  in
  let n = Array.length t.flows in
  let rec check index = index >= n || (alive index && check (index + 1)) in
  check 0

let convergence t ~failed_at:_ index =
  match verdict t index with
  | Recovered gap -> Some gap
  | Unaffected -> Some t.grid
  | Black_holed -> None

let probes_sent t = t.probes
