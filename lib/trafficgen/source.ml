type t = {
  engine : Sim.Engine.t;
  grid : Sim.Time.t;
  flows : Flow.t array;
  send : Flow.t -> unit;
  mutable task : Sim.Engine.handle option;
  mutable sent : int;
}

let create engine ?(grid = Flow.grid_default) ~flows ~send () =
  { engine; grid; flows; send; task = None; sent = 0 }

let start t =
  if Option.is_none t.task then begin
    let first =
      Sim.Time.next_multiple ~grid:t.grid
        (Sim.Time.add (Sim.Engine.now t.engine) (Sim.Time.of_ns 1L))
    in
    t.task <-
      Some
        (Sim.Engine.every t.engine ~start:first ~interval:t.grid (fun () ->
             Array.iter
               (fun flow ->
                 t.sent <- t.sent + 1;
                 t.send flow)
               t.flows))
  end

let stop t =
  match t.task with
  | Some h ->
    Sim.Engine.cancel h;
    t.task <- None
  | None -> ()

let packets_sent t = t.sent
