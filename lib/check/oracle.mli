(** The flat-FIB oracle: a deliberately naive model of a legacy
    single-device BGP router.

    It consumes the same event stream as the supercharged pipeline but
    skips everything the paper adds — no virtual next hops, no VMACs, no
    switch, no backup-groups, no asynchronous convergence. Per prefix it
    stores every candidate route and answers lookups with the best path
    straight from the BGP decision process over the currently-alive
    peers, resolved to the peer's physical MAC and egress port.

    Because the model converges instantaneously by construction, its
    answers define ground truth at every quiescent point of the real
    pipeline: wherever the oracle forwards a prefix, the router-FIB →
    switch-pipeline composition must forward it too (differential
    forwarding equivalence).

    A peer failure {e masks} its routes rather than deleting them —
    equivalent to the real system's withdraw-then-re-announce protocol
    at quiescence, because the checker's interpreter re-announces the
    peer's ground-truth routes after recovery. *)

type hop = {
  nh : Net.Ipv4.t;  (** physical next hop (the peer's address) *)
  mac : Net.Mac.t;  (** its MAC — what the last rewrite must leave *)
  port : int;  (** its switch egress port *)
}

val pp_hop : Format.formatter -> hop -> unit

type t

val create : unit -> t

val declare_peer : t -> id:int -> ip:Net.Ipv4.t -> mac:Net.Mac.t -> port:int -> unit
(** Registers a peer's data-plane coordinates. [id] must match the
    speaker-side peer id (dense, in add order) so the decision-process
    tie-break ranks identically on both sides. *)

val announce : t -> peer:int -> Net.Prefix.t -> Bgp.Attributes.t -> unit
(** The peer's current route for the prefix (replaces any previous
    one). @raise Invalid_argument for an undeclared peer. *)

val withdraw : t -> peer:int -> Net.Prefix.t -> unit
(** Removes the peer's route; no-op if it held none. *)

val peer_down : t -> int -> unit
val peer_up : t -> int -> unit
val alive : t -> int -> bool

val best : t -> Net.Prefix.t -> Bgp.Route.t option
(** Best route among alive peers' candidates ({!Bgp.Decision.best}). *)

val candidates : t -> Net.Prefix.t -> Bgp.Route.t list
(** Every candidate from currently-alive peers, unranked — the
    decision-process input the differential checker re-ranks naively to
    compare against the incremental RIB's stored order. *)

val peer_routes : t -> peer:int -> (Net.Prefix.t * Bgp.Attributes.t) list
(** The peer's stored routes (masked or not), in ascending prefix
    order — what a recovered session re-announces.
    @raise Invalid_argument for an undeclared peer. *)

val iter_stored : t -> (Net.Prefix.t -> Bgp.Route.t list -> unit) -> unit
(** Visits every prefix with at least one {e stored} candidate, masked
    peers included (unspecified order). The million-prefix sweep uses
    this instead of the allocating, sorting {!prefixes}. *)

val covered : t -> int
(** Number of covered prefixes, without building {!prefixes}'s sorted
    list — O(stored prefixes). *)

val lookup : t -> Net.Prefix.t -> hop option
(** Where the legacy router would forward the prefix right now; [None]
    when no alive peer routes it. *)

val prefixes : t -> Net.Prefix.t list
(** Covered prefixes — those with at least one alive candidate — in
    ascending order. *)

val cardinal : t -> int
(** [List.length (prefixes t)]. *)
