(** The multi-node forwarding-equivalence oracle.

    From the fabric's {e ground truth} alone — which links and externs
    are really up and what each extern announced — this module predicts
    where every router should forward each prefix at quiescence.
    Reachability comes from its own Floyd-Warshall over the up-link
    graph (independent of the routers' incremental Dijkstra); route
    preference reuses {!Bgp.Decision.compare}, the shared definition the
    distributed machinery must agree with.

    The prediction is deliberately per-router-kind. A plain router sees
    remote egresses only through the reflector's single best route (a
    genuine blind spot, mirrored here, not corrected); a supercharged
    router gets the controller's full ranking of every origin's
    best-external. *)

type view = {
  spec : Topo.Spec.t;
  link_up : int -> bool;
  extern_alive : int -> bool;
  announced : int -> (Net.Prefix.t * Bgp.Attributes.t) list;
}

val of_fabric : Topo.Fabric.t -> view

val inf : int
(** The unreachable distance. *)

val distances : view -> int array array
(** All-pairs shortest paths over up links ([{!inf}] = unreachable). *)

val connected : int array array -> bool

val local_best : view -> router:int -> Net.Prefix.t -> (int * Bgp.Attributes.t) option
(** The best-external advert router [router] owes the reflector. *)

val adverts : view -> Net.Prefix.t -> (int * int * Bgp.Attributes.t) list
(** The reflector's per-origin advert store: [(origin, extern, attrs)]. *)

val rr_best : view -> Net.Prefix.t -> (int * int * Bgp.Attributes.t) option

val expected_choice : view -> int array array -> router:int -> Net.Prefix.t -> int option
(** The extern the router should forward the prefix toward at
    quiescence, [None] when it should hold no usable route. Takes the
    matrix from {!distances}. *)
