module C = Supercharger.Controller
module BG = Supercharger.Backup_group
module Prov = Supercharger.Provisioner
module Algo = Supercharger.Algorithm

type subject = {
  controller : C.t;
  switch : Openflow.Switch.t;
  oracle : Oracle.t;
  probe_port : int;
  probe_mac : Net.Mac.t;
  probe_src : Net.Ipv4.t;
  rule_priority : int;
}

(* The switch entries that are backup-group (VMAC) rules: installed by
   the provisioner at its own priority, matching on dl_dst alone. *)
let vmac_rules s =
  List.filter_map
    (fun (e : Openflow.Flow_table.entry) ->
      if e.priority <> s.rule_priority then None
      else
        match e.ofmatch.Openflow.Ofmatch.dl_dst with
        | Some mac -> Some (mac, e)
        | None -> None)
    (Openflow.Flow_table.entries (Openflow.Switch.table s.switch))

(* --- invariants that hold at every instant ----------------------------- *)

(* Refcount consistency: the number of announced prefixes referencing
   each binding equals the binding's refcount, every referenced binding
   is registered, and the live-group gauge agrees. *)
let check_refcounts s =
  let violations = ref [] in
  let groups = C.groups s.controller in
  let algo = C.algorithm s.controller in
  let registered = BG.all groups in
  let count_of = Hashtbl.create 16 in
  Algo.iter_announced algo (fun prefix _attrs ->
      match Algo.group_of algo prefix with
      | None -> ()
      | Some b ->
        if not (List.memq b registered) then
          violations :=
            Fmt.str "prefix %a references unregistered group %a" Net.Prefix.pp prefix
              BG.pp_binding b
            :: !violations;
        let k = b.BG.vmac in
        Hashtbl.replace count_of k
          (1 + Option.value ~default:0 (Hashtbl.find_opt count_of k)));
  List.iter
    (fun (b : BG.binding) ->
      let counted = Option.value ~default:0 (Hashtbl.find_opt count_of b.vmac) in
      if counted <> BG.refs b then
        violations :=
          Fmt.str "group %a refcount %d but %d announced prefixes reference it"
            BG.pp_binding b (BG.refs b) counted
          :: !violations)
    registered;
  let live = List.length (List.filter (fun b -> BG.refs b > 0) registered) in
  if live <> BG.live_count groups then
    violations :=
      Fmt.str "live_count %d but %d registered groups have refs > 0"
        (BG.live_count groups) live
      :: !violations;
  !violations

(* Every VMAC rule in the table belongs to a registered group, or to a
   retired VMAC whose strict delete is still queued. *)
let check_rules_registered s =
  let groups = C.groups s.controller in
  let prov = C.provisioner s.controller in
  let retired = Prov.retired_vmacs prov in
  List.filter_map
    (fun (mac, _entry) ->
      match BG.find_by_vmac groups mac with
      | Some _ -> None
      | None ->
        if List.exists (Net.Mac.equal mac) retired then None
        else Some (Fmt.str "rule for unregistered, non-retired VMAC %a" Net.Mac.pp mac))
    (vmac_rules s)

(* Forward declaration dance: [transient] folds in the settled-rules
   check whenever the controller reports quiescence, so a rule left
   pointing at a dead peer (the Listing 2 mutation) is caught at the
   first post-failover instant, before the linger GC can erase the
   evidence. While barriers are pending the table legitimately lags the
   controller's intent and the check stays off. *)
let rules_synced s =
  C.quiescent s.controller && Openflow.Switch.idle s.switch

(* Rule correctness at rest: every registered group (referenced or still
   lingering) has exactly its rule, pointing at the first alive member —
   or dropping when no member is alive — and nothing else matches a
   VMAC: in particular every retired VMAC's delete has landed. *)
let check_rules_settled s =
  let violations = ref [] in
  let groups = C.groups s.controller in
  let prov = C.provisioner s.controller in
  let rules = vmac_rules s in
  List.iter
    (fun (b : BG.binding) ->
      match List.find_opt (fun (mac, _) -> Net.Mac.equal mac b.vmac) rules with
      | None ->
        violations :=
          Fmt.str "registered group %a has no switch rule" BG.pp_binding b
          :: !violations
      | Some (_, e) -> (
        match List.find_opt (Prov.is_alive prov) b.next_hops with
        | None ->
          if e.Openflow.Flow_table.actions <> [] then
            violations :=
              Fmt.str "group %a: all members dead but rule is not a drop rule"
                BG.pp_binding b
              :: !violations
        | Some alive -> (
          match Prov.peer prov alive, e.Openflow.Flow_table.actions with
          | Some info, [Openflow.Action.Set_dl_dst m; Openflow.Action.Output p]
            when Net.Mac.equal m info.Prov.pi_mac && p = info.Prov.pi_port ->
            ()
          | _, actions ->
            violations :=
              Fmt.str
                "group %a: rule does not point at first alive member %a (%d actions)"
                BG.pp_binding b Net.Ipv4.pp alive (List.length actions)
              :: !violations)))
    (BG.all groups);
  List.iter
    (fun (mac, _) ->
      if Option.is_none (BG.find_by_vmac groups mac) then
        violations :=
          Fmt.str "stale VMAC rule %a survives quiescence" Net.Mac.pp mac
          :: !violations)
    rules;
  !violations

let transient s =
  check_refcounts s @ check_rules_registered s
  @ (if rules_synced s then check_rules_settled s else [])

(* Differential forwarding equivalence against the flat-FIB oracle. *)
let check_forwarding s =
  let violations = ref [] in
  let algo = C.algorithm s.controller in
  let groups = C.groups s.controller in
  let prov = C.provisioner s.controller in
  let covered = Oracle.prefixes s.oracle in
  (* Oracle -> pipeline: every covered prefix forwards identically. *)
  List.iter
    (fun prefix ->
      match Oracle.lookup s.oracle prefix with
      | None -> ()
      | Some hop -> (
        match Algo.last_announced algo prefix with
        | None ->
          violations :=
            Fmt.str "prefix %a lost: oracle forwards to %a, nothing announced"
              Net.Prefix.pp prefix Oracle.pp_hop hop
            :: !violations
        | Some attrs -> (
          let nh = attrs.Bgp.Attributes.next_hop in
          (* ARP semantics: a VNH resolves to its group's VMAC, a real
             next hop to the declared peer's MAC. *)
          let dst_mac =
            match BG.find_by_vnh groups nh with
            | Some b -> Some b.BG.vmac
            | None -> (
              match Prov.peer prov nh with
              | Some info -> Some info.Prov.pi_mac
              | None -> None)
          in
          match dst_mac with
          | None ->
            violations :=
              Fmt.str "prefix %a announced with unresolvable next hop %a"
                Net.Prefix.pp prefix Net.Ipv4.pp nh
              :: !violations
          | Some dst ->
            let frame =
              Net.Ethernet.make ~src:s.probe_mac ~dst
                (Net.Ethernet.Ipv4
                   (Net.Ipv4_packet.make ~src:s.probe_src ~dst:(Net.Prefix.first prefix)
                      (Net.Ipv4_packet.Raw { protocol = 6; body = "" })))
            in
            let fail fmt =
              Fmt.kstr
                (fun msg ->
                  violations :=
                    Fmt.str "prefix %a (oracle: %a): %s" Net.Prefix.pp prefix
                      Oracle.pp_hop hop msg
                    :: !violations)
                fmt
            in
            (match Openflow.Switch.resolve s.switch ~port:s.probe_port frame with
            | Openflow.Switch.Forward (f', [ port ]) ->
              if not (Net.Mac.equal f'.Net.Ethernet.dst hop.Oracle.mac) then
                fail "pipeline rewrites to %a" Net.Mac.pp f'.Net.Ethernet.dst
              else if port <> hop.Oracle.port then
                fail "pipeline egresses port %d" port
            | Openflow.Switch.Forward (_, ports) ->
              fail "pipeline duplicates to %d ports" (List.length ports)
            | Openflow.Switch.Punt -> fail "pipeline punts to the controller"
            | Openflow.Switch.Miss -> fail "no rule matches (blackhole by miss)"
            | Openflow.Switch.Blackhole -> fail "drop rule blackholes the prefix"))))
    covered;
  (* Pipeline -> oracle: nothing announced beyond the oracle's coverage. *)
  Algo.iter_announced algo (fun prefix _ ->
      if Option.is_none (Oracle.lookup s.oracle prefix) then
        violations :=
          Fmt.str "prefix %a announced but the oracle has no alive route"
            Net.Prefix.pp prefix
          :: !violations);
  !violations

let at_quiescence s =
  check_refcounts s @ check_rules_registered s @ check_rules_settled s
  @ check_forwarding s
