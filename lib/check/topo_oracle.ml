(* An independent model of where every router of a fabric should be
   forwarding each prefix once the network is quiescent. Reachability
   is recomputed here with Floyd-Warshall over the ground-truth link
   state — deliberately not the incremental Dijkstra the routers run —
   while route preference reuses [Bgp.Decision.compare]: the comparator
   is a shared definition, the *distributed machinery* (flooding,
   reflection, validation, group re-pointing) is what this oracle keeps
   honest. *)

let inf = max_int / 4

type view = {
  spec : Topo.Spec.t;
  link_up : int -> bool;
  extern_alive : int -> bool;
  announced : int -> (Net.Prefix.t * Bgp.Attributes.t) list;
}

let of_fabric fabric =
  {
    spec = Topo.Fabric.spec fabric;
    link_up = (fun l -> Topo.Fabric.link_up fabric l);
    extern_alive = (fun k -> Topo.Fabric.extern_alive fabric k);
    announced = (fun k -> Topo.Fabric.announced fabric k);
  }

(* All-pairs shortest paths over the links that are really up. *)
let distances view =
  let n = Topo.Spec.n_routers view.spec in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  Array.iteri
    (fun l { Topo.Spec.ends = a, b; cost; srlg = _ } ->
      if view.link_up l && cost < d.(a).(b) then begin
        d.(a).(b) <- cost;
        d.(b).(a) <- cost
      end)
    view.spec.Topo.Spec.links;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let connected dist =
  Array.for_all (fun row -> Array.for_all (fun d -> d < inf) row) dist

let attrs_for view ~extern prefix =
  List.find_map
    (fun (p, attrs) -> if Net.Prefix.equal p prefix then Some attrs else None)
    (view.announced extern)

(* The best route router [h] holds from its *local* external peers —
   what it owes the reflector. Mirrors the RIB's order: these all tie
   down to peer-router-id (the extern address), so higher LOCAL_PREF
   then lower extern index. *)
let local_best view ~router prefix =
  let best = ref None in
  Array.iteri
    (fun k { Topo.Spec.at; pref; _ } ->
      if at = router && view.extern_alive k then
        match attrs_for view ~extern:k prefix with
        | None -> ()
        | Some attrs -> (
          match !best with
          | Some (_, best_pref, _) when best_pref >= pref -> ()
          | Some _ | None -> best := Some (k, pref, attrs)))
    view.spec.Topo.Spec.externs;
  Option.map (fun (k, _, attrs) -> (k, attrs)) !best

(* The per-origin advert store the reflector holds at quiescence. *)
let adverts view prefix =
  List.filter_map
    (fun h ->
      Option.map (fun (e, attrs) -> (h, e, attrs)) (local_best view ~router:h prefix))
    (List.init (Topo.Spec.n_routers view.spec) (fun i -> i))

let ibgp_route ~igp_cost ~origin attrs =
  Bgp.Route.make ~ebgp:false ~igp_cost ~peer_id:origin
    ~peer_router_id:(Topo.Spec.router_ip origin) attrs

(* What the reflector reflects: best of the advert store, all costs
   seen as zero from the controller's seat. *)
let rr_best view prefix =
  adverts view prefix
  |> List.map (fun (h, e, attrs) -> ((h, e, attrs), ibgp_route ~igp_cost:0 ~origin:h attrs))
  |> List.stable_sort (fun (_, a) (_, b) -> Bgp.Decision.compare a b)
  |> function
  | [] -> None
  | (adv, _) :: _ -> Some adv

(* A plain router ranks its local eBGP routes against the single
   reflected route and forwards to the first whose egress router its
   IGP can reach — next-hop validation. The reflected route is its only
   window on remote egresses: that blind spot is real, and mirrored. *)
let expected_plain view dist ~router prefix =
  let locals =
    List.filter_map
      (fun (k, at) ->
        if at = router && view.extern_alive k then
          Option.map
            (fun attrs ->
              ( (k, router),
                Bgp.Route.make ~ebgp:true ~peer_id:k
                  ~peer_router_id:(Topo.Spec.extern_ip k) attrs ))
            (attrs_for view ~extern:k prefix)
        else None)
      (Array.to_list
         (Array.mapi (fun k e -> (k, e.Topo.Spec.at)) view.spec.Topo.Spec.externs))
  in
  let reflected =
    match rr_best view prefix with
    | Some (h, e, attrs) when h <> router ->
      let igp_cost = if dist.(router).(h) < inf then dist.(router).(h) else inf in
      [ ((e, h), ibgp_route ~igp_cost ~origin:h attrs) ]
    | Some _ | None -> []
  in
  locals @ reflected
  |> List.stable_sort (fun (_, a) (_, b) -> Bgp.Decision.compare a b)
  |> List.find_map (fun ((e, host), _) ->
         if host = router || dist.(router).(host) < inf then Some e else None)

(* A supercharged router's table is derived by the controller from the
   full advert store: every origin's best-external, filtered by extern
   liveness and reachability from this ingress, ranked by attributes
   then this ingress's own IGP distance. *)
let expected_supercharged view dist ~router prefix =
  adverts view prefix
  |> List.filter_map (fun (h, e, attrs) ->
         if view.extern_alive e && (h = router || dist.(router).(h) < inf) then
           Some (e, ibgp_route ~igp_cost:dist.(router).(h) ~origin:h attrs)
         else None)
  |> List.stable_sort (fun (_, a) (_, b) -> Bgp.Decision.compare a b)
  |> function
  | [] -> None
  | (e, _) :: _ -> Some e

let expected_choice view dist ~router prefix =
  if Topo.Spec.supercharged view.spec router then
    expected_supercharged view dist ~router prefix
  else expected_plain view dist ~router prefix
