(** Multi-node differential checking: seeded fault schedules against a
    full {!Topo.Fabric}, verified against the {!Topo_oracle} at
    quiescence.

    A schedule is a deterministic recipe over a fixed ring-with-chords
    topology (externs at the best-preference edge, the antipode, and a
    quarter-way router; a seed-drawn subset of routers supercharged).
    Its events are the multi-node fault vocabulary: single extern and
    link failures and recoveries, correlated srlg cuts (both conduit
    links at router 0 at once), and controller partitions that black
    out a router's iBGP {e and} management link for a window.

    After the schedule runs, the fabric is driven to detected
    quiescence and three invariant families are evaluated: every
    router's forwarding choice equals the oracle's ground-truth
    prediction; every (ingress, prefix) walk ends where the oracle
    says it must (no loops, no blackholes when delivery is possible);
    and — when the up-link graph is connected — every router's
    link-state database equals the controller's. *)

type event =
  | Extern_fail of int
  | Extern_recover of int
  | Link_down of int
  | Link_up of int
  | Srlg_fail of int
  | Srlg_recover of int
  | Partition of { routers : int list; span_ms : int }

type step = {
  ev : event;
  dwell_ms : int;  (** simulated time to let pass after the event *)
}

type t = {
  seed : int64;
  routers : int;
  supercharged : int list;
  n_prefixes : int;
  steps : step list;
}

val generate :
  seed:int64 -> ?routers:int -> ?n_prefixes:int -> ?length:int -> unit -> t
(** Draws a schedule from the seed (defaults: 8 routers, 6 prefixes, 14
    events). Router 0 — host of the best egress — is always
    supercharged so the fast-failover path is always in play. Requires
    [routers >= 6] (the chord mesh needs it). *)

val spec_of : t -> Topo.Spec.t
val length : t -> int
val prefix_of : int -> Net.Prefix.t

val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit

val execute : t -> string list
(** Runs one schedule; returns the invariant violations, [[]] on a
    clean pass. Deterministic: the same schedule always returns the
    same result. *)

type failure = {
  schedule : t;
  shrunk : t;
  violations : string list;
}

val pp_failure : Format.formatter -> failure -> unit

val shrink : fails:(t -> bool) -> t -> t
(** Greedy drop-one minimisation to a fixpoint (any sublist of a
    schedule is a valid schedule). Returns [t] unchanged if [fails t]
    is false. *)

val run_matrix :
  ?routers:int ->
  ?n_prefixes:int ->
  ?events:int ->
  ?progress:(int -> unit) ->
  seeds:int64 list ->
  unit ->
  failure option
(** Generates and executes one schedule per seed, stopping at the
    first failure with its shrunken counterexample. [None] means every
    schedule passed. *)
