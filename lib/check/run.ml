module C = Supercharger.Controller
module Prov = Supercharger.Provisioner

let ip = Net.Ipv4.of_string_exn

type failure = {
  schedule : Schedule.t;
  shrunk : Schedule.t;
  violations : string list;
}

let pp_failure ppf f =
  Fmt.pf ppf "invariant violations:@.";
  List.iter (fun v -> Fmt.pf ppf "  - %s@." v) f.violations;
  Fmt.pf ppf "original %a" Schedule.pp f.schedule;
  Fmt.pf ppf "shrunken counterexample (%d events) %a" (Schedule.length f.shrunk)
    Schedule.pp f.shrunk;
  Fmt.pf ppf
    "reproduce: sc_lab check --seed %Ld --peers %d --prefixes %d --events %d@."
    f.shrunk.Schedule.seed f.shrunk.Schedule.n_peers f.shrunk.Schedule.n_prefixes
    (Schedule.length f.schedule)

(* Upstream BGP channels take duplicates only: BGP has no
   retransmission, so losing or reordering an announcement would change
   the test input, not stress the system (see [Schedule]). *)
let dup_profile = Sim.Faults.profile ~duplicate:0.3 "dup"

(* --- the rig ----------------------------------------------------------- *)

type rig = {
  engine : Sim.Engine.t;
  switch : Openflow.Switch.t;
  controller : C.t;
  peers : Router.Peer.t array;
  peer_links : Net.Link.t array;
  link_up : bool array;
  channel_faults : Sim.Faults.t array;
  router_faults : Sim.Faults.t;
  of_faults : Sim.Faults.t;
  router_rx : int ref;
  oracle : Oracle.t;
  subject : Invariants.subject;
}

(* Same topology as the fault-scenario rig: [n_peers] upstream providers
   on ports 1..n, the controller NIC on port [1+n], a dummy downstream
   router answering the BGP handshake. No import LOCAL_PREF policy —
   ranking must come from the announced attributes alone, so the oracle
   (which sees the same attributes) ranks identically. The linger is
   short so schedules exercise group GC and VNH/VMAC recycling within
   their dwell times. *)
let make_rig (sched : Schedule.t) =
  let seed = sched.Schedule.seed in
  let n_peers = sched.Schedule.n_peers in
  let engine = Sim.Engine.create ~seed () in
  let injector name salt profile =
    Sim.Faults.create engine ~name ~seed:(Int64.add seed (Int64.of_int salt)) profile
  in
  let switch = Openflow.Switch.create engine ~n_ports:(2 + n_peers) () in
  let controller =
    C.create engine ~name:"c1" ~asn:(Bgp.Asn.of_int 65001)
      ~router_id:(ip "10.0.0.100") ~group_linger:(Sim.Time.of_ms 400)
      ~bfd_debounce:(Sim.Time.of_ms 100) ~ack_timeout:(Sim.Time.of_ms 100)
      ~probe_interval:(Sim.Time.of_ms 100) ()
  in
  let of_faults = injector "of" 7777 Sim.Faults.none in
  C.connect_switch ~use_codec:true ~faults:of_faults controller switch;
  let nic_mac = Net.Mac.of_string_exn "00:cc:00:00:00:01" in
  let nic =
    Router.Endhost.create engine ~name:"c1-nic" ~mac:nic_mac ~ip:(ip "10.0.0.100") ()
  in
  let link_c = Net.Link.create engine () in
  Router.Endhost.connect nic link_c Net.Link.A;
  Openflow.Switch.attach_link switch ~port:(1 + n_peers) link_c Net.Link.B;
  Openflow.Flow_table.apply (Openflow.Switch.table switch)
    (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
       (Openflow.Ofmatch.dl_dst nic_mac)
       [ Openflow.Action.Output (1 + n_peers) ]);
  C.attach_dataplane controller nic;
  let oracle = Oracle.create () in
  let peers =
    Array.init n_peers (fun i ->
        Router.Peer.create engine
          ~name:(Fmt.str "r%d" (2 + i))
          ~asn:(Bgp.Asn.of_int (65002 + i))
          ~mac:(Net.Mac.of_int64 (Int64.of_int (0xBB_0000_0000 + 2 + i)))
          ~ip:(ip (Fmt.str "10.0.0.%d" (2 + i)))
          ())
  in
  let channel_faults = Array.make (max n_peers 1) (injector "ch-unused" 0 Sim.Faults.none) in
  let peer_links =
    Array.mapi
      (fun i peer ->
        let link = Net.Link.create engine () in
        Router.Peer.connect peer link Net.Link.A;
        Openflow.Switch.attach_link switch ~port:(1 + i) link Net.Link.B;
        Openflow.Flow_table.apply (Openflow.Switch.table switch)
          (Openflow.Flow_table.flow_mod ~priority:10 Openflow.Flow_table.Add
             (Openflow.Ofmatch.dl_dst (Router.Peer.mac peer))
             [ Openflow.Action.Output (1 + i) ]);
        let ch = Bgp.Channel.create engine () in
        let inj = injector (Fmt.str "ch%d" i) (1000 * (i + 1)) Sim.Faults.none in
        Bgp.Channel.set_faults ch inj;
        channel_faults.(i) <- inj;
        (* Speaker peer ids are dense in add order, so upstream [i] gets
           id [i] — the id the oracle ranks tie-breaks with. *)
        ignore
          (C.add_upstream_peer controller ~name:(Router.Peer.name peer)
             ~ip:(Router.Peer.ip peer) ~mac:(Router.Peer.mac peer)
             ~switch_port:(1 + i) ~channel:ch ~side:Bgp.Channel.A ());
        ignore
          (Router.Peer.add_bgp_peer peer ~name:"c1" ~channel:ch ~side:Bgp.Channel.B ());
        Oracle.declare_peer oracle ~id:i ~ip:(Router.Peer.ip peer)
          ~mac:(Router.Peer.mac peer) ~port:(1 + i);
        link)
      peers
  in
  let router_rx = ref 0 in
  let ch_r1 = Bgp.Channel.create engine () in
  let router_faults = injector "router-ch" 8888 Sim.Faults.none in
  Bgp.Channel.set_faults ch_r1 router_faults;
  ignore (C.add_router controller ~name:"r1" ~channel:ch_r1 ~side:Bgp.Channel.A ());
  Bgp.Channel.attach ch_r1 Bgp.Channel.B (fun msg ->
      match msg with
      | Bgp.Message.Open _ ->
        Bgp.Channel.send ch_r1 Bgp.Channel.B
          (Bgp.Message.Open
             {
               version = 4;
               asn = Bgp.Asn.of_int 65001;
               hold_time = 90;
               router_id = ip "10.0.0.1";
             });
        Bgp.Channel.send ch_r1 Bgp.Channel.B Bgp.Message.Keepalive
      | Bgp.Message.Update _ -> incr router_rx
      | Bgp.Message.Keepalive | Bgp.Message.Notification _ -> ());
  C.start controller;
  Array.iter (fun p -> Bgp.Speaker.start (Router.Peer.speaker p)) peers;
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.0) engine;
  let subject =
    {
      Invariants.controller;
      switch;
      oracle;
      probe_port = 1 + n_peers;
      probe_mac = nic_mac;
      probe_src = ip "10.0.0.100";
      rule_priority = 100;
    }
  in
  {
    engine;
    switch;
    controller;
    peers;
    peer_links;
    link_up = Array.make n_peers true;
    channel_faults;
    router_faults;
    of_faults;
    router_rx;
    oracle;
    subject;
  }

let run_ms rig ms =
  Sim.Engine.run
    ~until:(Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_ms ms))
    rig.engine

(* --- quiescence detection ---------------------------------------------- *)

let bfd_agree rig =
  let ok = ref true in
  Array.iteri
    (fun i peer ->
      match C.bfd_session rig.controller (Router.Peer.ip peer) with
      | Some s ->
        if Bfd.Session.state s = Bfd.Packet.Up <> rig.link_up.(i) then ok := false
      | None -> ok := false)
    rig.peers;
  !ok

let snapshot rig =
  ( Prov.flow_mods_sent (C.provisioner rig.controller),
    Openflow.Switch.flow_mods_applied rig.switch,
    Supercharger.Algorithm.announced_count (C.algorithm rig.controller),
    C.failovers_handled rig.controller,
    !(rig.router_rx) )

let quiet rig =
  C.quiescent rig.controller && Openflow.Switch.idle rig.switch && bfd_agree rig

(* Advance the simulation in 25 ms slices until the rig is quiet and its
   activity snapshot held still for two consecutive slices. The slice is
   much longer than any message latency (200 µs) or rule-install path,
   and shorter than the periodic noise floor (BFD tx 40 ms never touches
   the snapshot). [false] = no quiescence within the 60 s budget. *)
let settle rig =
  let deadline = Sim.Time.add (Sim.Engine.now rig.engine) (Sim.Time.of_sec 60.0) in
  let rec loop stable last =
    if Sim.Time.( >= ) (Sim.Engine.now rig.engine) deadline then false
    else begin
      run_ms rig 25;
      let snap = snapshot rig in
      if quiet rig && last = Some snap then stable + 1 >= 2 || loop (stable + 1) last
      else loop 0 (Some snap)
    end
  in
  loop 0 None

(* --- the event interpreter --------------------------------------------- *)

(* Both the rig and the oracle consume the same concrete stream derived
   from the event's dense indices. *)
let prefix_of i = Net.Prefix.v (Fmt.str "40.%d.%d.0/24" (i / 256) (i mod 256))

let attrs_of rig ~peer ~pref ~prepend =
  let p = rig.peers.(peer) in
  Bgp.Attributes.make ~local_pref:pref
    ~as_path:
      [ Bgp.Attributes.Seq (List.init (1 + prepend) (fun _ -> Router.Peer.asn p)) ]
    ~next_hop:(Router.Peer.ip p) ()

type ground_truth = Bgp.Attributes.t option array array (* peer -> prefix -> attrs *)

let send_route rig ~peer prefix attrs =
  Router.Peer.announce_to_all rig.peers.(peer)
    { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }

let interpret rig (gt : ground_truth) ev =
  let now = Sim.Engine.now rig.engine in
  let window span_ms profile inj =
    Sim.Faults.during inj
      ~from:(Sim.Time.add now (Sim.Time.of_ms 1))
      ~until:(Sim.Time.add now (Sim.Time.of_ms (1 + span_ms)))
      profile
  in
  match (ev : Schedule.event) with
  | Announce { peer; prefix; pref; prepend } ->
    let attrs = attrs_of rig ~peer ~pref ~prepend in
    gt.(peer).(prefix) <- Some attrs;
    Oracle.announce rig.oracle ~peer (prefix_of prefix) attrs;
    send_route rig ~peer (prefix_of prefix) attrs
  | Withdraw { peer; prefix } ->
    gt.(peer).(prefix) <- None;
    Oracle.withdraw rig.oracle ~peer (prefix_of prefix);
    Router.Peer.announce_to_all rig.peers.(peer)
      { Bgp.Message.withdrawn = [ prefix_of prefix ]; attrs = None; nlri = [] }
  | Peer_down p ->
    if rig.link_up.(p) then begin
      rig.link_up.(p) <- false;
      Oracle.peer_down rig.oracle p;
      Net.Link.set_up rig.peer_links.(p) false
    end
  | Peer_up p ->
    if not rig.link_up.(p) then begin
      rig.link_up.(p) <- true;
      Oracle.peer_up rig.oracle p;
      Net.Link.set_up rig.peer_links.(p) true
      (* Deliberately no re-announcement: the BGP session never reset,
         so a real peer stays silent. The controller must restore the
         routes from its own Adj-RIB-In (soft reconfiguration) — the
         checker exists to notice when it does not. *)
    end
  | Bfd_flap p ->
    if rig.link_up.(p) then begin
      match C.bfd_session rig.controller (Router.Peer.ip rig.peers.(p)) with
      | Some session -> Bfd.Session.inject_state session Bfd.Packet.Down
      | None -> ()
    end
  | Of_blackout { span_ms } -> window span_ms Sim.Faults.blackout rig.of_faults
  | Router_faults { profile; span_ms } ->
    let p =
      match Sim.Faults.of_name profile with
      | Some p -> p
      | None -> invalid_arg (Fmt.str "Run: unknown fault profile %s" profile)
    in
    window span_ms p rig.router_faults
  | Channel_dup { peer; span_ms } ->
    window span_ms dup_profile rig.channel_faults.(peer)

(* --- execution --------------------------------------------------------- *)

let checkpoint_every = 8

let[@lint.domain_entry
     "checker schedule runner: ROADMAP item 4 fans the schedule matrix out \
      one schedule per domain; everything below this frame must be \
      domain-confined or guarded"] execute ?(mutate = false) (sched : Schedule.t)
    =
  let rig = make_rig sched in
  if mutate then Prov.mutate_skip_rewrite (C.provisioner rig.controller) true;
  let gt = Array.make_matrix sched.n_peers sched.n_prefixes None in
  let violations = ref [] in
  let record tag = function
    | [] -> ()
    | vs -> if !violations = [] then violations := List.map (fun v -> tag ^ ": " ^ v) vs
  in
  let checkpoint tag =
    if settle rig then record tag (Invariants.at_quiescence rig.subject)
    else
      record tag
        [ Fmt.str "no quiescence within 60s (flow_mods=%d announced=%d degraded=%b)"
            (Prov.flow_mods_sent (C.provisioner rig.controller))
            (Supercharger.Algorithm.announced_count (C.algorithm rig.controller))
            (C.degraded rig.controller) ]
  in
  List.iteri
    (fun i step ->
      if !violations = [] then begin
        interpret rig gt step.Schedule.ev;
        run_ms rig step.Schedule.dwell_ms;
        record
          (Fmt.str "after event %d (%a)" (i + 1) Schedule.pp_event step.Schedule.ev)
          (Invariants.transient rig.subject);
        if !violations = [] && (i + 1) mod checkpoint_every = 0 then
          checkpoint (Fmt.str "checkpoint at event %d" (i + 1))
      end)
    sched.steps;
  if !violations = [] then checkpoint "final checkpoint";
  !violations

let run_matrix ?(n_peers = 3) ?(n_prefixes = 12) ?(events = 30) ?(chaos = true)
    ?(mutate = false) ?progress ~seed ~schedules () =
  let rec go i =
    if i >= schedules then None
    else begin
      (match progress with Some f -> f i | None -> ());
      let sched =
        Schedule.generate
          ~seed:(Int64.add seed (Int64.of_int i))
          ~n_peers ~n_prefixes ~length:events ~chaos ()
      in
      match execute ~mutate sched with
      | [] -> go (i + 1)
      | first_violations ->
        let shrunk =
          Schedule.shrink ~fails:(fun s -> execute ~mutate s <> []) sched
        in
        let violations =
          match execute ~mutate shrunk with
          | [] -> first_violations (* unreachable: shrink preserves failure *)
          | vs -> vs
        in
        Some { schedule = sched; shrunk; violations }
    end
  in
  go 0
