(* Internet-scale differential harness: the sharded, incrementally
   re-ranked Bgp.Rib against the naive flat Oracle, both driven by the
   same workload-generated feeds. Where Run proves the full pipeline
   forwards like the oracle on small topologies, this module proves the
   *control-plane data structure* ranks like the naive decision process
   at 10^5..10^6 prefixes — the precondition for trusting every RIB
   optimisation the scale work adds. *)

type event =
  | Storm of { peer : int; share_pct : int }
  | Readvertise of { peer : int }
  | Churn of { sub_seed : int64; events : int }
  | Peer_down of int
  | Peer_up of int

type t = {
  seed : int64;
  n_peers : int;
  steps : event list;
}

let length t = List.length t.steps

let pp_event ppf = function
  | Storm { peer; share_pct } -> Fmt.pf ppf "storm peer=%d share=%d%%" peer share_pct
  | Readvertise { peer } -> Fmt.pf ppf "readvertise peer=%d" peer
  | Churn { sub_seed; events } -> Fmt.pf ppf "churn sub-seed=%Ld events=%d" sub_seed events
  | Peer_down p -> Fmt.pf ppf "peer-down %d" p
  | Peer_up p -> Fmt.pf ppf "peer-up %d" p

let pp ppf t =
  Fmt.pf ppf "ribscale schedule seed=%Ld peers=%d events=%d@." t.seed t.n_peers
    (length t);
  List.iteri (fun i ev -> Fmt.pf ppf "  %2d. %a@." (i + 1) pp_event ev) t.steps

(* --- generator --------------------------------------------------------- *)

let generate ~seed ?(n_peers = 12) ?(length = 10) () =
  if n_peers < 1 then invalid_arg "Ribscale.generate: n_peers";
  if length < 1 then invalid_arg "Ribscale.generate: length";
  let rng = Sim.Rng.create ~seed in
  (* Track cut peers so Peer_up tends to target peers that are actually
     down; the interpreter is total either way. *)
  let down = Array.make n_peers false in
  let any_down () =
    let d = ref [] in
    Array.iteri (fun i b -> if b then d := i :: !d) down;
    !d
  in
  let storm () =
    Storm { peer = Sim.Rng.int rng n_peers; share_pct = 10 + Sim.Rng.int rng 91 }
  in
  let steps =
    List.init length (fun _ ->
        let roll = Sim.Rng.int rng 100 in
        if roll < 30 then
          Churn
            {
              (* The sub-seed travels inside the event, so removing
                 neighbouring steps during shrinking never shifts a
                 surviving churn burst's draws. *)
              sub_seed = Int64.of_int (Sim.Rng.int rng 0x3FFF_FFFF);
              events = 64 + Sim.Rng.int rng 192;
            }
        else if roll < 50 then storm ()
        else if roll < 65 then Readvertise { peer = Sim.Rng.int rng n_peers }
        else if roll < 85 then begin
          let p = Sim.Rng.int rng n_peers in
          if down.(p) then begin
            down.(p) <- false;
            Peer_up p
          end
          else begin
            down.(p) <- true;
            Peer_down p
          end
        end
        else
          match any_down () with
          | [] -> Readvertise { peer = Sim.Rng.int rng n_peers }
          | d ->
            let p = List.nth d (Sim.Rng.int rng (List.length d)) in
            down.(p) <- false;
            Peer_up p)
  in
  (* Every drawn schedule must contain a withdrawal storm — they are the
     workload this harness exists for. *)
  let has_storm =
    List.exists (function Storm _ -> true | _ -> false) steps
  in
  let steps = if has_storm then steps else steps @ [storm ()] in
  { seed; n_peers; steps }

(* --- interpreter ------------------------------------------------------- *)

type state = {
  entries : Workloads.Rib_gen.entry array;
  n_peers : int;
  rib : Bgp.Rib.t;
  oracle : Oracle.t;
  down : bool array;
  mutate : bool;
  mutable withdraws : int;  (* total withdrawals processed, for [mutate] *)
}

let peer_ip i = Net.Ipv4.of_octets 10 9 (i / 200) (1 + (i mod 200))
let peer_asn i = Bgp.Asn.of_int (64000 + (i mod 1500))

(* Peer-specific attributes for an entry: the peer prepends itself
   [1 + peer mod 3] times, so the same entry ranks differently across
   peers and the decision process has real work to do. The stored
   [as_path] tail is shared, not copied — at 10^6 entries × 100 views
   the copies would dominate the heap. *)
let attrs_of ~peer (e : Workloads.Rib_gen.entry) =
  let asn = peer_asn peer in
  let prepends = List.init (1 + (peer mod 3)) (fun _ -> asn) in
  Bgp.Attributes.make
    ~as_path:[Bgp.Attributes.Seq (prepends @ e.as_path)]
    ?med:e.med ~next_hop:(peer_ip peer) ()

let announce_both st ~peer (e : Workloads.Rib_gen.entry) =
  let attrs = attrs_of ~peer e in
  Oracle.announce st.oracle ~peer e.prefix attrs;
  (* Constructed exactly as the oracle constructs its side, so identical
     re-announcements hit the RIB's [Unchanged] suppression. *)
  let route = Bgp.Route.make ~peer_id:peer ~peer_router_id:(peer_ip peer) attrs in
  ignore (Bgp.Rib.announce st.rib e.prefix route)

let withdraw_both st ~peer (e : Workloads.Rib_gen.entry) =
  Oracle.withdraw st.oracle ~peer e.prefix;
  let skip_rib = st.mutate && st.withdraws mod 7 = 0 in
  st.withdraws <- st.withdraws + 1;
  (* [mutate] plants a stale-route bug on the optimised side only: every
     7th withdrawal never reaches the RIB. The checker must catch it. *)
  if not skip_rib then ignore (Bgp.Rib.withdraw st.rib e.prefix ~peer_id:peer)

(* Walk the peer's exported view in table order; [f] also gets the
   entry's rank within the view (used for storm slicing). *)
let iter_view st ~peer f =
  let share = Workloads.Rib_gen.view_share ~peers:st.n_peers peer in
  let rank = ref 0 in
  Array.iteri
    (fun i e ->
      if Workloads.Rib_gen.in_view ~peer ~share_pct:share i then begin
        f !rank e;
        incr rank
      end)
    st.entries

let apply st = function
  | Storm { peer; share_pct } ->
    (* A session-reset-shaped flush: a deterministic [share_pct] slice
       of the peer's view withdrawn in table order. Down peers are
       silent. *)
    if not st.down.(peer) then
      iter_view st ~peer (fun rank e ->
          if rank mod 100 < share_pct then withdraw_both st ~peer e)
  | Readvertise { peer } ->
    if not st.down.(peer) then iter_view st ~peer (fun _ e -> announce_both st ~peer e)
  | Churn { sub_seed; events } ->
    (* The update-train shape of Workloads.Churn: per-peer bursts with
       table locality, ~20 % withdrawals — applied to both sides at
       once. Draws are unconditional so the stream is independent of
       which peers happen to be down. *)
    let rng = Sim.Rng.create ~seed:sub_seed in
    let n = Array.length st.entries in
    let emitted = ref 0 in
    while !emitted < events do
      let peer = Sim.Rng.int rng st.n_peers in
      let base = Sim.Rng.int rng n in
      let burst = min (events - !emitted) (1 + Sim.Rng.int rng 32) in
      for j = 0 to burst - 1 do
        let e = st.entries.((base + j) mod n) in
        let withdrawal = Sim.Rng.int rng 100 < 20 in
        if not st.down.(peer) then
          if withdrawal then withdraw_both st ~peer e else announce_both st ~peer e
      done;
      emitted := !emitted + burst
    done
  | Peer_down peer ->
    st.down.(peer) <- true;
    (* The oracle masks; the RIB deletes through its per-peer index. *)
    Oracle.peer_down st.oracle peer;
    ignore (Bgp.Rib.withdraw_peer st.rib ~peer_id:peer)
  | Peer_up peer ->
    st.down.(peer) <- false;
    Oracle.peer_up st.oracle peer;
    (* The recovered session re-announces its ground truth — the
       oracle's stored (just unmasked) routes, churn included. *)
    List.iter
      (fun (prefix, attrs) ->
        let route =
          Bgp.Route.make ~peer_id:peer ~peer_router_id:(peer_ip peer) attrs
        in
        ignore (Bgp.Rib.announce st.rib prefix route))
      (Oracle.peer_routes st.oracle ~peer)

(* Full ranked equivalence: Decision.compare is a total order, so given
   equal candidate sets the ranked list is unique — the optimised RIB's
   stored order must equal a from-scratch naive ranking of the oracle's
   alive candidates, prefix by prefix, plus exact coverage agreement. *)
let equivalent st =
  let violations = ref [] and divergent = ref 0 in
  let add fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let rib_card = Bgp.Rib.cardinal st.rib in
  let oracle_card = Oracle.covered st.oracle in
  if rib_card <> oracle_card then
    add "coverage: rib stores %d prefixes, oracle covers %d" rib_card oracle_card;
  Oracle.iter_stored st.oracle (fun prefix _ ->
      let naive = Bgp.Decision.rank (Oracle.candidates st.oracle prefix) in
      let fast = Bgp.Rib.ordered st.rib prefix in
      if not (List.equal Bgp.Route.equal fast naive) then begin
        incr divergent;
        if !divergent <= 3 then
          add "ranking diverges at %a: rib peers [%a], oracle peers [%a]"
            Net.Prefix.pp prefix
            Fmt.(list ~sep:semi int)
            (List.map (fun (r : Bgp.Route.t) -> r.peer_id) fast)
            Fmt.(list ~sep:semi int)
            (List.map (fun (r : Bgp.Route.t) -> r.peer_id) naive)
      end);
  if !divergent > 3 then add "... and %d more divergent prefixes" (!divergent - 3);
  List.rev !violations

let[@lint.domain_entry
     "ribscale schedule runner: candidate for one-schedule-per-domain fan-out; \
      each run builds its own RIB, oracle and rng from the schedule seed"] execute
    ?(mutate = false) ~entries (t : t) =
  if Array.length entries = 0 then invalid_arg "Ribscale.execute: entries";
  let st =
    {
      entries;
      n_peers = t.n_peers;
      rib = Bgp.Rib.create ();
      oracle = Oracle.create ();
      down = Array.make t.n_peers false;
      mutate;
      withdraws = 0;
    }
  in
  for i = 0 to t.n_peers - 1 do
    Oracle.declare_peer st.oracle ~id:i ~ip:(peer_ip i)
      ~mac:(Net.Mac.of_int64 (Int64.of_int (0xCC_0000_0000 + 1 + i)))
      ~port:(1 + i)
  done;
  (* Phase 0: every peer loads its full skewed view before the first
     scheduled event — the checker always starts from a converged
     multi-peer table, as a route collector would see it. *)
  for peer = 0 to t.n_peers - 1 do
    iter_view st ~peer (fun _ e -> announce_both st ~peer e)
  done;
  match equivalent st with
  | _ :: _ as vs -> List.map (fun v -> "after load: " ^ v) vs
  | [] ->
    (* Interpret until the first divergence: later steps of an already
       divergent run prove nothing and would only slow shrinking. *)
    let rec run i = function
      | [] -> []
      | ev :: rest -> (
        apply st ev;
        match equivalent st with
        | [] -> run (i + 1) rest
        | vs ->
          List.map (fun v -> Fmt.str "after step %d (%a): %s" i pp_event ev v) vs)
    in
    run 1 t.steps

(* --- shrinking --------------------------------------------------------- *)

let without steps i size = List.filteri (fun j _ -> j < i || j >= i + size) steps

(* Greedy ddmin over the event list, same discipline as
   Schedule.shrink: halving chunk sizes, then single-step sweeps until
   a full pass removes nothing. *)
let shrink ~fails t =
  if not (fails t) then t
  else begin
    let current = ref t in
    let size = ref (max 1 (length t / 2)) in
    let continue_ = ref true in
    while !continue_ do
      let removed_any = ref false in
      let i = ref 0 in
      while !i < length !current do
        let cand = { !current with steps = without (!current).steps !i !size } in
        if length cand < length !current && fails cand then begin
          current := cand;
          removed_any := true
        end
        else i := !i + !size
      done;
      if !size > 1 then size := !size / 2
      else if not !removed_any then continue_ := false
    done;
    !current
  end

(* --- matrix driver ----------------------------------------------------- *)

type failure = {
  schedule : t;
  shrunk : t;
  violations : string list;
}

let pp_failure ppf f =
  Fmt.pf ppf "ribscale equivalence FAILED (schedule seed=%Ld, %d events)@."
    f.schedule.seed (length f.schedule);
  List.iter (fun v -> Fmt.pf ppf "  violation: %s@." v) f.violations;
  Fmt.pf ppf "shrunk to %d events:@.%a" (length f.shrunk) pp f.shrunk;
  Fmt.pf ppf "reproduce: seed=%Ld n_peers=%d@." f.shrunk.seed f.shrunk.n_peers

let run_matrix ?(n_peers = 12) ?(length = 10) ?(entries = 20_000) ?(mutate = false)
    ?progress ~seed ~schedules () =
  if schedules < 1 then invalid_arg "Ribscale.run_matrix: schedules";
  (* One table for the whole matrix: generation at internet shape is
     pure in the seed, so sharing it changes nothing but wall-clock. *)
  let entries = Workloads.Rib_gen.generate_internet ~seed ~count:entries in
  let rec go i =
    if i >= schedules then None
    else begin
      (match progress with Some f -> f i | None -> ());
      let schedule =
        generate ~seed:(Int64.add seed (Int64.of_int i)) ~n_peers ~length ()
      in
      match execute ~mutate ~entries schedule with
      | [] -> go (i + 1)
      | _ :: _ ->
        let fails t =
          match execute ~mutate ~entries t with [] -> false | _ :: _ -> true
        in
        let shrunk = shrink ~fails schedule in
        let violations = execute ~mutate ~entries shrunk in
        Some { schedule; shrunk; violations }
    end
  in
  go 0
