type hop = {
  nh : Net.Ipv4.t;
  mac : Net.Mac.t;
  port : int;
}

let pp_hop ppf h = Fmt.pf ppf "%a (%a, port %d)" Net.Ipv4.pp h.nh Net.Mac.pp h.mac h.port

type peer = {
  p_ip : Net.Ipv4.t;
  p_mac : Net.Mac.t;
  p_port : int;
  mutable p_alive : bool;
}

module Prefix_table = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

type t = {
  peers : (int, peer) Hashtbl.t;
  routes : Bgp.Route.t list Prefix_table.t;  (* unranked candidates *)
}

let create () = { peers = Hashtbl.create 8; routes = Prefix_table.create 256 }

let declare_peer t ~id ~ip ~mac ~port =
  Hashtbl.replace t.peers id { p_ip = ip; p_mac = mac; p_port = port; p_alive = true }

let peer_exn t id =
  match Hashtbl.find_opt t.peers id with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "Oracle: peer %d not declared" id)

let announce t ~peer prefix attrs =
  let p = peer_exn t peer in
  let route = Bgp.Route.make ~peer_id:peer ~peer_router_id:p.p_ip attrs in
  let others =
    match Prefix_table.find_opt t.routes prefix with
    | Some rs -> List.filter (fun (r : Bgp.Route.t) -> r.peer_id <> peer) rs
    | None -> []
  in
  Prefix_table.replace t.routes prefix (route :: others)

let withdraw t ~peer prefix =
  ignore (peer_exn t peer);
  match Prefix_table.find_opt t.routes prefix with
  | None -> ()
  | Some rs -> (
    match List.filter (fun (r : Bgp.Route.t) -> r.peer_id <> peer) rs with
    | [] -> Prefix_table.remove t.routes prefix
    | rest -> Prefix_table.replace t.routes prefix rest)

let peer_down t id = (peer_exn t id).p_alive <- false
let peer_up t id = (peer_exn t id).p_alive <- true
let alive t id = (peer_exn t id).p_alive

let alive_candidates t prefix =
  match Prefix_table.find_opt t.routes prefix with
  | None -> []
  | Some rs ->
    List.filter
      (fun (r : Bgp.Route.t) ->
        match Hashtbl.find_opt t.peers r.peer_id with
        | Some p -> p.p_alive
        | None -> false)
      rs

let candidates = alive_candidates

let best t prefix = Bgp.Decision.best (alive_candidates t prefix)

let peer_routes t ~peer =
  ignore (peer_exn t peer);
  Prefix_table.fold
    (fun prefix rs acc ->
      match List.find_opt (fun (r : Bgp.Route.t) -> r.peer_id = peer) rs with
      | Some r -> (prefix, r.Bgp.Route.attrs) :: acc
      | None -> acc)
    t.routes []
  |> List.sort (fun (p, _) (q, _) -> Net.Prefix.compare p q)

let iter_stored t f = Prefix_table.iter f t.routes

let covered t =
  Prefix_table.fold
    (fun prefix _ acc -> if alive_candidates t prefix <> [] then acc + 1 else acc)
    t.routes 0

let lookup t prefix =
  match best t prefix with
  | None -> None
  | Some r ->
    let p = peer_exn t r.Bgp.Route.peer_id in
    Some { nh = p.p_ip; mac = p.p_mac; port = p.p_port }

let prefixes t =
  Prefix_table.fold
    (fun prefix _ acc -> if alive_candidates t prefix <> [] then prefix :: acc else acc)
    t.routes []
  |> List.sort Net.Prefix.compare

let cardinal t = List.length (prefixes t)
