type event =
  | Extern_fail of int
  | Extern_recover of int
  | Link_down of int
  | Link_up of int
  | Srlg_fail of int
  | Srlg_recover of int
  | Partition of { routers : int list; span_ms : int }

type step = {
  ev : event;
  dwell_ms : int;
}

type t = {
  seed : int64;
  routers : int;
  supercharged : int list;
  n_prefixes : int;
  steps : step list;
}

let length t = List.length t.steps

let pp_event ppf = function
  | Extern_fail k -> Fmt.pf ppf "extern-fail %d" k
  | Extern_recover k -> Fmt.pf ppf "extern-recover %d" k
  | Link_down l -> Fmt.pf ppf "link-down %d" l
  | Link_up l -> Fmt.pf ppf "link-up %d" l
  | Srlg_fail g -> Fmt.pf ppf "srlg-fail %d" g
  | Srlg_recover g -> Fmt.pf ppf "srlg-recover %d" g
  | Partition { routers; span_ms } ->
    Fmt.pf ppf "partition [%a] %dms" Fmt.(list ~sep:comma int) routers span_ms

let pp ppf t =
  Fmt.pf ppf "topo-schedule seed=%Ld routers=%d supercharged=[%a] prefixes=%d events=%d@."
    t.seed t.routers
    Fmt.(list ~sep:comma int)
    t.supercharged t.n_prefixes (length t);
  List.iteri
    (fun i s -> Fmt.pf ppf "  %2d. %a (dwell %dms)@." (i + 1) pp_event s.ev s.dwell_ms)
    t.steps

(* The ring-with-chords topology every schedule runs on: externs at
   router 0 (best LOCAL_PREF), the antipode, and a quarter-way router,
   so remote-failure machinery is always in play. *)
let spec_of t =
  let n = t.routers in
  Topo.Spec.ring ~routers:n
    ~externs:[ (0, 200); (n / 2, 150); (n / 4, 100) ]
    ~supercharged:t.supercharged ()

let generate ~seed ?(routers = 8) ?(n_prefixes = 6) ?(length = 14) () =
  if routers < 6 then invalid_arg "Topo_run.generate: need >= 6 routers";
  let rng = Sim.Rng.create ~seed in
  (* Supercharge a seed-drawn subset that always includes the best
     egress's host, so the fast-failover path is always exercised. *)
  let supercharged =
    List.filter (fun i -> i = 0 || Sim.Rng.bool rng) (List.init routers (fun i -> i))
  in
  let probe = { seed; routers; supercharged; n_prefixes; steps = [] } in
  let spec = spec_of probe in
  let n_links = Array.length spec.Topo.Spec.links in
  let n_externs = Topo.Spec.n_externs spec in
  (* Track what the generator has cut so recoveries tend to target
     things that are actually down; the interpreter is total either
     way (all fault calls are idempotent). *)
  let ext_down = Array.make n_externs false in
  let link_down = Array.make n_links false in
  let pick_down flags recover fail =
    let down = ref [] in
    Array.iteri (fun i b -> if b then down := i :: !down) flags;
    match !down with
    | [] ->
      let i = Sim.Rng.int rng (Array.length flags) in
      flags.(i) <- true;
      fail i
    | l ->
      let i = List.nth l (Sim.Rng.int rng (List.length l)) in
      if Sim.Rng.bool rng then begin
        flags.(i) <- false;
        recover i
      end
      else begin
        let j = Sim.Rng.int rng (Array.length flags) in
        flags.(j) <- true;
        fail j
      end
  in
  let steps =
    List.init length (fun _ ->
        let roll = Sim.Rng.int rng 100 in
        let ev =
          if roll < 35 then
            pick_down ext_down (fun k -> Extern_recover k) (fun k -> Extern_fail k)
          else if roll < 65 then
            pick_down link_down (fun l -> Link_up l) (fun l -> Link_down l)
          else if roll < 80 then
            if Sim.Rng.bool rng then begin
              (* Correlated failure: both conduit links at router 0. *)
              List.iter
                (fun l -> link_down.(l) <- true)
                (Topo.Spec.srlg_members spec 0);
              Srlg_fail 0
            end
            else begin
              List.iter
                (fun l -> link_down.(l) <- false)
                (Topo.Spec.srlg_members spec 0);
              Srlg_recover 0
            end
          else begin
            let a = Sim.Rng.int rng routers in
            let extra =
              if Sim.Rng.bool rng then [ Sim.Rng.int rng routers ] else []
            in
            Partition
              {
                routers = List.sort_uniq Int.compare (a :: extra);
                span_ms = 40 + Sim.Rng.int rng 120;
              }
          end
        in
        { ev; dwell_ms = 15 + Sim.Rng.int rng 90 })
  in
  { probe with steps }

(* --- execution ------------------------------------------------------------ *)

let prefix_of i = Net.Prefix.make (Net.Ipv4.of_octets 203 0 i 0) 24

let apply fabric step =
  let engine = Topo.Fabric.engine fabric in
  let now = Sim.Engine.now engine in
  let horizon = ref now in
  (match step.ev with
  | Extern_fail k -> Topo.Fabric.fail_extern fabric ~extern:k
  | Extern_recover k -> Topo.Fabric.recover_extern fabric ~extern:k
  | Link_down l -> Topo.Fabric.fail_link fabric ~link:l
  | Link_up l -> Topo.Fabric.recover_link fabric ~link:l
  | Srlg_fail g -> Topo.Fabric.fail_srlg fabric ~srlg:g
  | Srlg_recover g -> Topo.Fabric.recover_srlg fabric ~srlg:g
  | Partition { routers; span_ms } ->
    let until = Sim.Time.add now (Sim.Time.of_ms span_ms) in
    Topo.Fabric.partition fabric ~routers ~from:now ~until;
    horizon := until);
  Sim.Engine.run ~until:(Sim.Time.add now (Sim.Time.of_ms step.dwell_ms)) engine;
  !horizon

(* Invariants at quiescence, all phrased against the oracle's
   ground-truth prediction. *)
let check fabric t =
  let violations = ref [] in
  let fail fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let view = Topo_oracle.of_fabric fabric in
  let dist = Topo_oracle.distances view in
  let n = t.routers in
  let prefixes = List.init t.n_prefixes prefix_of in
  List.iter
    (fun prefix ->
      for r = 0 to n - 1 do
        let expected = Topo_oracle.expected_choice view dist ~router:r prefix in
        let actual = Topo.Router.choice (Topo.Fabric.router fabric r) prefix in
        let same =
          match (expected, actual) with
          | None, None -> true
          | Some a, Some b -> a = b
          | None, Some _ | Some _, None -> false
        in
        if not same then
          fail "router %d, %a: forwards to %a, oracle says %a" r Net.Prefix.pp prefix
            Fmt.(option ~none:(any "nothing") int)
            actual
            Fmt.(option ~none:(any "nothing") int)
            expected;
        match (expected, Topo.Fabric.outcome fabric ~ingress:r prefix) with
        | Some _, Topo.Fabric.Delivered e
          when Topo.Fabric.extern_alive fabric e
               && List.exists
                    (fun (p, _) -> Net.Prefix.equal p prefix)
                    (Topo.Fabric.announced fabric e) -> ()
        | Some _, outcome ->
          fail "ingress %d, %a: expected delivery, walk ends in %a" r Net.Prefix.pp
            prefix Topo.Fabric.pp_outcome outcome
        | None, (Topo.Fabric.Unrouted | Topo.Fabric.Blackhole) -> ()
        | None, outcome ->
          fail "ingress %d, %a: oracle says unroutable, walk ends in %a" r
            Net.Prefix.pp prefix Topo.Fabric.pp_outcome outcome
      done)
    prefixes;
  (* Database equality needs a connected fabric: flooding cannot cross
     a cut, so partitioned components legitimately hold stale views of
     each other. The controller hears every router out of band. *)
  if Topo_oracle.connected dist then begin
    let lsdb = Topo.Control.lsdb (Topo.Fabric.control fabric) in
    for r = 0 to n - 1 do
      if
        not
          (Igp.Database.equal
             (Igp.Node.database (Topo.Router.igp (Topo.Fabric.router fabric r)))
             lsdb)
      then fail "router %d: link-state database differs from the controller's" r
    done
  end;
  List.rev !violations

let[@lint.domain_entry
     "multi-node checker runner: one fabric per schedule, built fresh from \
      the seed, so whole runs can move onto worker domains"] execute t =
  let engine = Sim.Engine.create ~seed:t.seed () in
  let spec = spec_of t in
  let fabric = Topo.Fabric.build engine spec in
  Topo.Fabric.start fabric;
  let prefixes = List.init t.n_prefixes prefix_of in
  for k = 0 to Topo.Spec.n_externs spec - 1 do
    Topo.Fabric.announce_extern fabric ~extern:k prefixes
  done;
  if not (Topo.Fabric.settle fabric ()) then
    [ "no initial quiescence: the fabric never settled after bring-up" ]
  else begin
    let horizon =
      List.fold_left
        (fun acc step -> Sim.Time.max acc (apply fabric step))
        Sim.Time.zero t.steps
    in
    (* Outlast any partition window still open, plus its heal resync. *)
    Topo.Fabric.run_until fabric (Sim.Time.add horizon (Sim.Time.of_ms 2));
    if not (Topo.Fabric.settle fabric ~budget:(Sim.Time.of_sec 120.) ()) then
      [ "no quiescence: the fabric never settled after the schedule" ]
    else check fabric t
  end

(* --- shrinking ------------------------------------------------------------ *)

(* Greedy drop-one to a fixpoint: any sublist of a schedule is a valid
   schedule (every fault call is idempotent and total). *)
let shrink ~fails t =
  if not (fails t) then t
  else begin
    let current = ref t in
    let progress = ref true in
    while !progress do
      progress := false;
      let steps = Array.of_list !current.steps in
      let n = Array.length steps in
      let i = ref 0 in
      while !i < n && not !progress do
        let candidate_steps =
          List.filteri (fun j _ -> j <> !i) (Array.to_list steps)
        in
        let candidate = { !current with steps = candidate_steps } in
        if fails candidate then begin
          current := candidate;
          progress := true
        end;
        incr i
      done
    done;
    !current
  end

type failure = {
  schedule : t;
  shrunk : t;
  violations : string list;
}

let pp_failure ppf f =
  Fmt.pf ppf "failing schedule:@.%a@.shrunk to:@.%a@.violations:@." pp f.schedule pp
    f.shrunk;
  List.iter (fun v -> Fmt.pf ppf "  - %s@." v) f.violations

let run_matrix ?routers ?n_prefixes ?events ?progress ~seeds () =
  let rec loop i = function
    | [] -> None
    | seed :: rest ->
      (match progress with Some f -> f i | None -> ());
      let schedule = generate ~seed ?routers ?n_prefixes ?length:events () in
      let violations = execute schedule in
      if violations = [] then loop (i + 1) rest
      else
        let shrunk = shrink ~fails:(fun s -> execute s <> []) schedule in
        Some { schedule; shrunk; violations = execute shrunk }
  in
  loop 0 seeds
