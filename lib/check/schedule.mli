(** Seeded random event schedules and minimal-counterexample shrinking.

    A schedule is a fully deterministic recipe: the seed fixes the event
    list here {e and} the simulation's RNG and every fault injector's
    draw in {!Run.execute}, so a printed failing schedule replays
    bit-for-bit from its seed alone.

    Events reference peers and prefixes by dense index; {!Run} maps them
    to concrete addresses. The interpreter is {e total} — bringing up a
    peer that is already up, withdrawing a prefix the peer never
    announced, or flapping a dead peer are well-defined no-ops — which
    is what makes naive chunk-removal shrinking sound: any sublist of a
    valid schedule is a valid schedule.

    Fault placement is principled, not uniform. Faults must perturb the
    {e system}, never the {e input}, or a divergence from the oracle
    would be the schedule's fault rather than a bug:
    - the OpenFlow control path gets windowed {e blackouts} (total loss,
      which the retry/degradation ladder must detect and repair) — never
      partial loss or delay, which a real ordered TCP channel cannot
      produce;
    - upstream BGP channels get {e duplicates} only (idempotent at the
      RIB; BGP has no retransmission, so a dropped or reordered
      announcement would change the scenario itself);
    - the controller→router channel takes the full named [lossy]/[chaos]
      profiles, because the invariants read the controller's announced
      state directly;
    - BFD chaos is expressed as explicit {!event.Bfd_flap} events. *)

type event =
  | Announce of { peer : int; prefix : int; pref : int; prepend : int }
      (** peer announces prefix with LOCAL_PREF [pref] and [prepend]
          extra copies of its own AS on the path *)
  | Withdraw of { peer : int; prefix : int }
  | Peer_down of int  (** data-plane link cut (BFD detects it) *)
  | Peer_up of int
      (** link restored; the peer stays silent (its BGP session never
          reset), so the controller must restore the routes from its
          own Adj-RIB-In *)
  | Bfd_flap of int  (** spurious BFD Down injected into the session *)
  | Of_blackout of { span_ms : int }
      (** total OpenFlow control-path loss for the window *)
  | Router_faults of { profile : string; span_ms : int }
      (** named {!Sim.Faults} profile ([lossy]/[chaos]) on the
          controller→router channel for the window *)
  | Channel_dup of { peer : int; span_ms : int }
      (** duplicate-only faults on the peer's BGP channel *)

type step = {
  ev : event;
  dwell_ms : int;  (** simulated time to let pass after the event *)
}

type t = {
  seed : int64;
  n_peers : int;
  n_prefixes : int;
  steps : step list;
}

val generate :
  seed:int64 ->
  ?n_peers:int ->
  ?n_prefixes:int ->
  ?length:int ->
  ?chaos:bool ->
  unit ->
  t
(** Draws a schedule from the seed. Defaults: 3 peers, 12 prefixes, 30
    events, [chaos] true (fault-window events included). The same seed
    and parameters always produce the same schedule. *)

val length : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the seed, dimensions and numbered event list — everything
    needed to reproduce a failure by hand. *)

val pp_event : Format.formatter -> event -> unit

val shrink : fails:(t -> bool) -> t -> t
(** Greedy delta-debugging: repeatedly removes chunks of events (halving
    the chunk size down to single events) as long as [fails] still holds
    on the remainder, to a fixpoint where no single event can be
    dropped. Returns [t] unchanged if [fails t] is false. [fails] is
    re-executed on every candidate, so it must be deterministic. *)
