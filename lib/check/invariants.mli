(** Convergence invariants of the supercharged pipeline, checked
    differentially against the flat-FIB {!Oracle}.

    Two strengths:
    - {!transient} holds at {e every} instant, including mid-convergence
      (the checker evaluates it after each schedule event): backup-group
      refcount bookkeeping is consistent, and every VMAC rule in the
      switch belongs to a registered group or to a retired VMAC whose
      delete is still in flight. Whenever the controller additionally
      reports {!Supercharger.Controller.quiescent} and the switch is
      idle — i.e. the flow table cannot be lagging the controller's
      intent — the bounded-window rule check joins in: every registered
      group's rule must point at its first alive member. This is what
      catches a skipped Listing 2 rewrite {e before} the linger GC
      erases the stale group.
    - {!at_quiescence} additionally demands full forwarding equivalence
      and is evaluated only once the system has settled (see
      {!Run.settle}): every oracle-covered prefix is announced, its
      announced next hop resolves through ARP semantics (VNH → VMAC, or
      a declared peer's MAC) and then through the {e real} switch
      pipeline ({!Openflow.Switch.resolve}) to exactly the oracle's
      physical MAC and egress port; no blackholes, no punts, no
      multi-port duplication; no prefix announced beyond the oracle's
      coverage; every registered group's rule exists, points at its
      first alive member (or drops when none is), and no rule exists for
      unregistered or retired VMACs.

    All checks are side-effect-free; violations are returned as
    human-readable strings (empty list = all invariants hold). *)

type subject = {
  controller : Supercharger.Controller.t;
  switch : Openflow.Switch.t;
  oracle : Oracle.t;
  probe_port : int;  (** switch port the probe frames arrive on *)
  probe_mac : Net.Mac.t;  (** their source MAC (the router's) *)
  probe_src : Net.Ipv4.t;  (** their source IP *)
  rule_priority : int;  (** the provisioner's VMAC-rule priority *)
}

val transient : subject -> string list
(** Invariants that must hold at every instant. *)

val at_quiescence : subject -> string list
(** The full set, including differential forwarding equivalence.
    Only meaningful once the system is quiescent. *)
