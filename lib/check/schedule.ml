type event =
  | Announce of { peer : int; prefix : int; pref : int; prepend : int }
  | Withdraw of { peer : int; prefix : int }
  | Peer_down of int
  | Peer_up of int
  | Bfd_flap of int
  | Of_blackout of { span_ms : int }
  | Router_faults of { profile : string; span_ms : int }
  | Channel_dup of { peer : int; span_ms : int }

type step = {
  ev : event;
  dwell_ms : int;
}

type t = {
  seed : int64;
  n_peers : int;
  n_prefixes : int;
  steps : step list;
}

let length t = List.length t.steps

let pp_event ppf = function
  | Announce { peer; prefix; pref; prepend } ->
    Fmt.pf ppf "announce peer=%d prefix=%d pref=%d prepend=%d" peer prefix pref prepend
  | Withdraw { peer; prefix } -> Fmt.pf ppf "withdraw peer=%d prefix=%d" peer prefix
  | Peer_down p -> Fmt.pf ppf "peer-down %d" p
  | Peer_up p -> Fmt.pf ppf "peer-up %d" p
  | Bfd_flap p -> Fmt.pf ppf "bfd-flap %d" p
  | Of_blackout { span_ms } -> Fmt.pf ppf "of-blackout %dms" span_ms
  | Router_faults { profile; span_ms } ->
    Fmt.pf ppf "router-faults %s %dms" profile span_ms
  | Channel_dup { peer; span_ms } -> Fmt.pf ppf "channel-dup peer=%d %dms" peer span_ms

let pp ppf t =
  Fmt.pf ppf "schedule seed=%Ld peers=%d prefixes=%d events=%d@." t.seed t.n_peers
    t.n_prefixes (length t);
  List.iteri
    (fun i s -> Fmt.pf ppf "  %2d. %a (dwell %dms)@." (i + 1) pp_event s.ev s.dwell_ms)
    t.steps

let prefs = [| 100; 150; 200 |]
[@@lint.domain_local
  "constant local-pref palette, written nowhere; array literal only for cheap \
   indexed draws"]

let generate ~seed ?(n_peers = 3) ?(n_prefixes = 12) ?(length = 30) ?(chaos = true)
    () =
  if n_peers < 1 then invalid_arg "Schedule.generate: n_peers";
  if n_prefixes < 1 then invalid_arg "Schedule.generate: n_prefixes";
  let rng = Sim.Rng.create ~seed in
  (* The generator tracks which peers it has cut so Peer_up events tend
     to target peers that are actually down — the interpreter is total
     either way, this only makes drawn schedules denser in interesting
     transitions. *)
  let down = Array.make n_peers false in
  let any_down () =
    let d = ref [] in
    Array.iteri (fun i b -> if b then d := i :: !d) down;
    !d
  in
  let announce () =
    Announce
      {
        peer = Sim.Rng.int rng n_peers;
        prefix = Sim.Rng.int rng n_prefixes;
        pref = Sim.Rng.pick rng prefs;
        prepend = Sim.Rng.int rng 3;
      }
  in
  let steps =
    List.init length (fun _ ->
        let roll = Sim.Rng.int rng 100 in
        let ev =
          if roll < 42 then announce ()
          else if roll < 56 then
            Withdraw
              { peer = Sim.Rng.int rng n_peers; prefix = Sim.Rng.int rng n_prefixes }
          else if roll < 66 then begin
            let p = Sim.Rng.int rng n_peers in
            if down.(p) then begin
              down.(p) <- false;
              Peer_up p
            end
            else begin
              down.(p) <- true;
              Peer_down p
            end
          end
          else if roll < 74 then (
            match any_down () with
            | [] -> Bfd_flap (Sim.Rng.int rng n_peers)
            | d ->
              let p = List.nth d (Sim.Rng.int rng (List.length d)) in
              down.(p) <- false;
              Peer_up p)
          else if roll < 82 then Bfd_flap (Sim.Rng.int rng n_peers)
          else if chaos && roll < 88 then
            Of_blackout { span_ms = 150 + Sim.Rng.int rng 600 }
          else if chaos && roll < 95 then
            Router_faults
              {
                profile = (if Sim.Rng.bool rng then "lossy" else "chaos");
                span_ms = 200 + Sim.Rng.int rng 800;
              }
          else if chaos then
            Channel_dup
              { peer = Sim.Rng.int rng n_peers; span_ms = 200 + Sim.Rng.int rng 600 }
          else announce ()
        in
        { ev; dwell_ms = Sim.Rng.int rng 150 })
  in
  { seed; n_peers; n_prefixes; steps }

(* Remove [size] steps starting at index [i]. *)
let without steps i size =
  List.filteri (fun j _ -> j < i || j >= i + size) steps

(* Greedy ddmin: sweep chunk removals at halving granularity; at size 1,
   keep sweeping until a full pass removes nothing. Every candidate is
   re-executed through [fails], so monotonic shrinking terminates. *)
let shrink ~fails t =
  if not (fails t) then t
  else begin
    let current = ref t in
    let size = ref (max 1 (length t / 2)) in
    let continue_ = ref true in
    while !continue_ do
      let removed_any = ref false in
      let i = ref 0 in
      while !i < length !current do
        let cand = { !current with steps = without (!current).steps !i !size } in
        if length cand < length !current && fails cand then begin
          current := cand;
          removed_any := true
          (* same index now holds the next chunk *)
        end
        else i := !i + !size
      done;
      if !size > 1 then size := !size / 2
      else if not !removed_any then continue_ := false
    done;
    !current
  end
