(** The differential-checker driver: executes {!Schedule}s against a
    full supercharged rig and the flat-FIB {!Oracle} side by side.

    {!execute} builds a fresh deterministic rig from the schedule's seed
    — switch, controller, BFD, upstream peers, a recording downstream
    router, and a fault injector on every message path — interprets each
    event against both the real pipeline and the oracle, evaluates
    {!Invariants.transient} after every event, and
    {!Invariants.at_quiescence} at periodic checkpoints and at the end,
    after driving the simulation to a quiescent point.

    Quiescence is {e detected}, never slept for: the controller's
    {!Supercharger.Controller.quiescent} predicate, conjoined with
    {!Openflow.Switch.idle}, per-peer agreement between BFD state and
    the actual link state, and stability of an activity snapshot
    (flow-mods sent/applied, announcements, failovers, degradations,
    router-bound updates) over consecutive 25 ms slices. Periodic BFD
    and keepalive traffic never stops, so engine-queue emptiness can
    never serve as the criterion. *)

type failure = {
  schedule : Schedule.t;  (** the schedule that first failed *)
  shrunk : Schedule.t;  (** its ddmin-minimal counterexample *)
  violations : string list;  (** violations of the shrunken schedule *)
}

val pp_failure : Format.formatter -> failure -> unit
(** Prints the violations, the shrunken schedule and the reproduction
    recipe (seed + dimensions). *)

val execute : ?mutate:bool -> Schedule.t -> string list
(** Runs one schedule; returns the invariant violations, [[]] on a clean
    pass. [mutate] arms {!Supercharger.Provisioner.mutate_skip_rewrite},
    the deliberate Listing 2 bug the checker must catch. Deterministic:
    the same schedule and flag always return the same result. *)

val run_matrix :
  ?n_peers:int ->
  ?n_prefixes:int ->
  ?events:int ->
  ?chaos:bool ->
  ?mutate:bool ->
  ?progress:(int -> unit) ->
  seed:int64 ->
  schedules:int ->
  unit ->
  failure option
(** Generates and executes [schedules] schedules from consecutive seeds
    [seed], [seed+1], … — defaults as in {!Schedule.generate} — and
    stops at the first failure, returning it with its shrunken
    counterexample. [None] means every schedule passed. [progress] is
    called with each 0-based index before its run. *)
