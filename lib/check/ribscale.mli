(** Internet-scale RIB differential checker.

    Where {!Run} proves the whole supercharged pipeline forwards like
    the flat-FIB {!Oracle} on small topologies, this harness proves the
    {e control-plane data structure} — the sharded, incrementally
    re-ranked {!Bgp.Rib} — ranks exactly like the naive decision
    process at 10^5..10^6 prefixes. Both sides consume the same
    workload-generated feeds: skewed per-peer views of one
    {!Workloads.Rib_gen.generate_internet} table, route-collector-shaped
    withdrawal storms and churn trains, session losses and recoveries.

    After the initial load and after {e every} scheduled event, the
    checker demands full ranked equivalence: for each prefix the oracle
    stores, the RIB's incrementally maintained candidate order must
    equal a from-scratch {!Bgp.Decision.rank} of the oracle's alive
    candidates ({!Bgp.Decision.compare} is a total order, so the ranked
    list is unique), and covered-prefix counts must agree exactly.
    Every RIB optimisation — sharding, splice-only re-ranking, indexed
    peer withdrawal — lands gated behind this harness. *)

type event =
  | Storm of { peer : int; share_pct : int }
      (** Session-reset flush: the peer withdraws a deterministic
          [share_pct]-percent slice of its view in table order. *)
  | Readvertise of { peer : int }
      (** Full-view re-announcement — identical routes must vanish into
          the RIB's [Unchanged] suppression. *)
  | Churn of { sub_seed : int64; events : int }
      (** A route-collector update train (bursty, ~20 % withdrawals).
          The sub-seed travels in the event, so shrinking neighbours
          never shifts its draws. *)
  | Peer_down of int
      (** Oracle masks; RIB deletes via {!Bgp.Rib.withdraw_peer}. *)
  | Peer_up of int
      (** Oracle unmasks; the RIB side re-announces the peer's ground
          truth from {!Oracle.peer_routes}. *)

type t = {
  seed : int64;
  n_peers : int;
  steps : event list;
}

val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val generate : seed:int64 -> ?n_peers:int -> ?length:int -> unit -> t
(** Deterministic schedule of [length] events (default 10) over
    [n_peers] peers (default 12). Every generated schedule contains at
    least one [Storm] — one is appended when the draw produced none. *)

val execute : ?mutate:bool -> entries:Workloads.Rib_gen.entry array -> t -> string list
(** Preloads every peer's skewed view of [entries] into both sides,
    then interprets the schedule, checking full ranked equivalence
    after the load and after every event; stops at the first divergence.
    [[]] is a clean pass. Deterministic: same entries, schedule and flag
    always return the same result. The interpreter is total — events
    aimed at down or already-up peers are silently absorbed, exactly as
    a silent or already-recovered session would be.

    [mutate] plants a deliberate stale-route bug on the optimised side
    only (every 7th withdrawal never reaches the RIB) — the harness's
    own canary, as {!Run.execute}'s [mutate] is for the pipeline. *)

val shrink : fails:(t -> bool) -> t -> t
(** Greedy ddmin chunk removal over the steps, same discipline as
    {!Schedule.shrink}; returns a schedule that still satisfies
    [fails], or [t] itself if it does not fail. *)

type failure = {
  schedule : t;  (** the schedule that first failed *)
  shrunk : t;  (** its ddmin-minimal counterexample *)
  violations : string list;  (** violations of the shrunken schedule *)
}

val pp_failure : Format.formatter -> failure -> unit

val run_matrix :
  ?n_peers:int ->
  ?length:int ->
  ?entries:int ->
  ?mutate:bool ->
  ?progress:(int -> unit) ->
  seed:int64 ->
  schedules:int ->
  unit ->
  failure option
(** Generates one internet-shape table of [entries] prefixes (default
    20 000) from [seed], then generates and executes [schedules]
    schedules from consecutive seeds [seed], [seed+1], …, stopping at
    the first failure with its shrunken counterexample. [None] means
    the incremental RIB matched the naive model on every schedule.
    [progress] is called with each 0-based index before its run. *)
