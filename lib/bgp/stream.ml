type t = {
  mutable pending : string;
  mutable poison : Net.Wire.error option;
}

let create () = { pending = ""; poison = None }

let header_size = 19

(* The total-length field sits at bytes 16-17 of the header. *)
let message_length s =
  (Char.code s.[16] lsl 8) lor Char.code s.[17]

let feed t chunk =
  match t.poison with
  | Some err -> Error err
  | None ->
    t.pending <- t.pending ^ chunk;
    let rec drain acc =
      if String.length t.pending < header_size then Ok (List.rev acc)
      else begin
        let total = message_length t.pending in
        if total < header_size || total > Codec.max_message_size then begin
          let err = Net.Wire.Malformed "message length" in
          t.poison <- Some err;
          Error err
        end
        else if String.length t.pending < total then Ok (List.rev acc)
        else
          match Codec.decode t.pending with
          | Ok (msg, consumed) ->
            t.pending <-
              String.sub t.pending consumed (String.length t.pending - consumed);
            drain (msg :: acc)
          | Error err ->
            t.poison <- Some err;
            Error err
      end
    in
    drain []

let buffered t = String.length t.pending

let is_poisoned t = Option.is_some t.poison
