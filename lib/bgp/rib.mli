(** Routing information base.

    Stores, per prefix, every candidate learned from every peer, kept
    ranked by {!Decision.compare} (best first). This is the
    "routing_table" of the paper's Listing 1: the first two elements of
    the ranked list form the prefix's backup-group. Each peer contributes
    at most one route per prefix; a re-announcement implicitly replaces
    the previous one.

    Storage is sharded by mask length — 33 tables, one per /0../32 —
    so an update hashes and (on resize) rehashes only among prefixes of
    its own length, and per-length occupancy ({!length_histogram}) is
    readable in O(1) per shard. At full-Internet scale this keeps the
    dominant /24 band's resizes from churning the thin aggregate bands
    and shortens every probe chain to same-length prefixes.

    A per-peer prefix index is maintained incrementally on every
    announce/withdraw, so a whole-session loss ({!withdraw_peer}) costs
    work proportional to the number of prefixes the peer actually
    routed — never a scan of the full table. The decision process is
    incremental by construction: an update re-ranks only the touched
    prefix's candidate splice, and {!candidate_visits} counts the
    list nodes those splices inspect so tests and benches can pin the
    bound. *)

type t

val create : unit -> t

type change = {
  prefix : Net.Prefix.t;
  before : Route.t list;  (** ranked candidates before the event *)
  after : Route.t list;  (** ranked candidates after the event *)
}

val announce : t -> Net.Prefix.t -> Route.t -> change option
(** Inserts/replaces the route from [route.peer_id] for the prefix.
    [None] when the peer re-announces a route identical to its stored
    one: the table is untouched and no change record is allocated, so
    phantom churn never reaches Listing 1 or the trace/metrics layer. *)

val withdraw : t -> Net.Prefix.t -> peer_id:int -> change option
(** Removes the peer's route; [None] if it held none. *)

val withdraw_peer : t -> peer_id:int -> change list
(** Removes every route of a peer (session loss). Only prefixes whose
    candidate list actually changed are reported, in ascending prefix
    order. Cost is proportional to the peer's own prefix count, not to
    the table size.

    A peer the table has never heard from — or one already fully
    withdrawn — is a no-op returning [[]]. Callers rely on this: a BFD
    flap can race the slow path into issuing a second withdrawal for
    the same session, and the duplicate must not raise or fabricate
    change records. *)

val peer_prefix_count : t -> peer_id:int -> int
(** Number of prefixes the peer currently has a candidate for. *)

val peer_prefixes : t -> peer_id:int -> Net.Prefix.t list
(** The indexed prefix set of a peer (unspecified order). *)

val apply_update : t -> peer_id:int -> peer_router_id:Net.Ipv4.t ->
  ?ebgp:bool -> ?igp_cost:int -> Message.update -> change list
(** Applies a BGP UPDATE from a peer: withdrawals first, then
    announcements. Returns one change per affected prefix. *)

val ordered : t -> Net.Prefix.t -> Route.t list
(** Ranked candidates, best first; [] when the prefix is unknown. *)

val best : t -> Net.Prefix.t -> Route.t option

val cardinal : t -> int
(** Number of prefixes with at least one candidate. *)

val length_histogram : t -> int array
(** 33 cells: prefixes currently stored per mask length — the shard
    occupancy, in the same shape as the workload generators'
    prefix-length distributions. *)

val candidate_visits : t -> int
(** Monotonic count of candidate-list nodes inspected by the
    announce/withdraw splice walks since {!create}. A peer-down must
    grow this by O(candidates over the failed peer's own prefixes) —
    the regression tests assert it never approaches table size. *)

val iter : t -> (Net.Prefix.t -> Route.t list -> unit) -> unit
(** Visits every prefix with its ranked candidates (unspecified
    order). *)

val fold : t -> init:'b -> f:('b -> Net.Prefix.t -> Route.t list -> 'b) -> 'b
