module Table = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

module Peer_table = Hashtbl.Make (Int)

type t = {
  shards : Route.t list Table.t array;
      (* one ranked-candidate table per mask length (index 0..32): every
         update touches exactly the shard of its own length, so a shard
         only ever hashes and resizes over same-length prefixes, the
         dominant /24 band never drags the thin aggregate bands through
         its resizes, and per-length occupancy is readable in O(1). *)
  by_peer : unit Table.t Peer_table.t;
      (* peer_id -> set of prefixes the peer currently has a candidate
         for. Maintained incrementally so a session loss touches only
         the peer's own prefixes, never the whole table. *)
  mutable visits : int;
      (* monotonic count of candidate-list nodes inspected by the
         splice/withdraw walks — the work measure the peer-down
         regression test and the ribscale bench pin. *)
}

let create () =
  {
    shards = Array.init 33 (fun _ -> Table.create 64);
    by_peer = Peer_table.create 16;
    visits = 0;
  }

type change = {
  prefix : Net.Prefix.t;
  before : Route.t list;
  after : Route.t list;
}

let shard t prefix = t.shards.(Net.Prefix.length prefix)

let ordered t prefix =
  match Table.find_opt (shard t prefix) prefix with Some l -> l | None -> []

let best t prefix =
  match ordered t prefix with [] -> None | r :: _ -> Some r

(* --- per-peer prefix index -------------------------------------------- *)

let index_add t ~peer_id prefix =
  let set =
    match Peer_table.find_opt t.by_peer peer_id with
    | Some set -> set
    | None ->
      let set = Table.create 64 in
      Peer_table.replace t.by_peer peer_id set;
      set
  in
  Table.replace set prefix ()

let index_remove t ~peer_id prefix =
  match Peer_table.find_opt t.by_peer peer_id with
  | None -> ()
  | Some set ->
    Table.remove set prefix;
    if Table.length set = 0 then Peer_table.remove t.by_peer peer_id

let peer_prefix_count t ~peer_id =
  match Peer_table.find_opt t.by_peer peer_id with
  | Some set -> Table.length set
  | None -> 0

let peer_prefixes t ~peer_id =
  match Peer_table.find_opt t.by_peer peer_id with
  | None -> []
  | Some set -> Table.fold (fun prefix () acc -> prefix :: acc) set []

(* --- candidate list maintenance --------------------------------------- *)

(* Every node inspected by the walks below bumps [t.visits]; the
   counters are how the tests prove the incremental decision process
   re-ranks only the touched prefix's splice, never a full re-scan. *)

let rec insert_sorted t route = function
  | [] -> [route]
  | r :: rest as l ->
    t.visits <- t.visits + 1;
    if Decision.compare route r <= 0 then route :: l
    else r :: insert_sorted t route rest

let rec drop_peer t ~peer_id = function
  | [] -> []
  | (r : Route.t) :: rest ->
    t.visits <- t.visits + 1;
    if r.peer_id = peer_id then rest else r :: drop_peer t ~peer_id rest

exception Unchanged

(* One walk replacing the old List.filter + insert_sorted pair: drop the
   peer's previous candidate and splice the new route in at its rank.
   Raises [Unchanged] (before allocating any of the result) when the
   peer re-announces a route identical to its stored one. *)
let rec splice t (route : Route.t) = function
  | [] -> [route]
  | (r : Route.t) :: rest as l ->
    t.visits <- t.visits + 1;
    if r.peer_id = route.peer_id then
      if Route.equal r route then raise_notrace Unchanged
      else insert_sorted t route rest
    else if Decision.compare route r <= 0 then
      route :: drop_peer t ~peer_id:route.peer_id l
    else r :: splice t route rest

let store t prefix routes =
  match routes with
  | [] -> Table.remove (shard t prefix) prefix
  | _ -> Table.replace (shard t prefix) prefix routes

let announce t prefix (route : Route.t) =
  let before = ordered t prefix in
  match splice t route before with
  | after ->
    store t prefix after;
    index_add t ~peer_id:route.peer_id prefix;
    Some { prefix; before; after }
  | exception Unchanged -> None

let withdraw t prefix ~peer_id =
  let before = ordered t prefix in
  if
    List.exists
      (fun (r : Route.t) ->
        t.visits <- t.visits + 1;
        r.peer_id = peer_id)
      before
  then begin
    let after = drop_peer t ~peer_id before in
    store t prefix after;
    index_remove t ~peer_id prefix;
    Some { prefix; before; after }
  end
  else None

let withdraw_peer t ~peer_id =
  (* The index names exactly the affected prefixes, so a peer holding k
     routes costs O(k log k) (the sort makes the change order
     deterministic) no matter how large the table is. *)
  let affected = List.sort Net.Prefix.compare (peer_prefixes t ~peer_id) in
  List.filter_map (fun prefix -> withdraw t prefix ~peer_id) affected

let apply_update t ~peer_id ~peer_router_id ?(ebgp = true) ?(igp_cost = 0)
    (u : Message.update) =
  let withdrawals =
    List.filter_map (fun prefix -> withdraw t prefix ~peer_id) u.withdrawn
  in
  let announcements =
    match u.attrs with
    | None -> []
    | Some attrs ->
      let route = Route.make ~ebgp ~igp_cost ~peer_id ~peer_router_id attrs in
      List.filter_map (fun prefix -> announce t prefix route) u.nlri
  in
  withdrawals @ announcements

let cardinal t = Array.fold_left (fun acc s -> acc + Table.length s) 0 t.shards

let length_histogram t = Array.map Table.length t.shards

let candidate_visits t = t.visits

let iter t f =
  (* Shards ascending by mask length; order within a shard unspecified. *)
  Array.iter (fun s -> Table.iter f s) t.shards

let fold t ~init ~f =
  Array.fold_left
    (fun acc s -> Table.fold (fun prefix routes acc -> f acc prefix routes) s acc)
    init t.shards
