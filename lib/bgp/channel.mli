(** Reliable, ordered control channel between two BGP speakers.

    Stands in for the TCP connection of a real session: structured
    messages are delivered after a configurable one-way delay, in order,
    until the channel is broken. With [use_codec:true] every message is
    round-tripped through the RFC 4271 binary codec in transit, so the
    wire format is exercised end-to-end (the integration tests run this
    way). *)

type side = A | B

val flip : side -> side

type t

val create :
  Sim.Engine.t ->
  ?name:string ->
  ?delay:Sim.Time.t ->
  ?use_codec:bool ->
  ?fragment:int ->
  unit ->
  t
(** Defaults: [delay] 200 µs (same-rack RTT/2), [use_codec] false.
    [fragment] (requires [use_codec]) delivers the encoded bytes in
    TCP-segment-like chunks of at most that many bytes, reassembled on
    the receiving side with {!Stream} — message boundaries no longer
    align with deliveries, exactly as on a real socket. *)

val name : t -> string

val attach : t -> side -> (Message.t -> unit) -> unit
(** Receive callback for the speaker plugged into [side]. *)

val set_faults : t -> Sim.Faults.t -> unit
(** Routes every subsequent {!send} through the fault injector: a
    [Drop] verdict silently discards the message, extra delays are
    added to the channel's own latency (delayed messages are overtaken
    by later ones — reordering), and duplicate copies are delivered
    separately. On a fragmented channel the verdict applies to the
    whole message and only drop/delay are honoured (the byte stream
    stands in for TCP, which hides segment-level duplication and never
    reorders); a FIFO floor keeps delayed streams ordered. *)

val on_break : t -> side -> (unit -> unit) -> unit
(** Called (once) on each side when the channel breaks. *)

val send : t -> side -> Message.t -> unit
(** Sends towards the other side. No-op on a broken channel.
    @raise Invalid_argument if [use_codec] is set and the message fails
    to round-trip (a codec bug — surfaced loudly). *)

val break : t -> unit
(** Tears the channel down: in-flight messages are lost and both break
    callbacks fire after the propagation delay. Idempotent. *)

val is_broken : t -> bool

val messages_delivered : t -> int
