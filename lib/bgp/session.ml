type state =
  | Idle
  | Open_sent
  | Open_confirm
  | Established
  | Closed

let pp_state ppf s =
  Fmt.string ppf
    (match s with
    | Idle -> "Idle"
    | Open_sent -> "OpenSent"
    | Open_confirm -> "OpenConfirm"
    | Established -> "Established"
    | Closed -> "Closed")

type down_reason =
  | Hold_timer_expired
  | Notification_received of Message.notification
  | Channel_broken
  | Stopped

let pp_down_reason ppf = function
  | Hold_timer_expired -> Fmt.string ppf "hold timer expired"
  | Notification_received n -> Fmt.pf ppf "notification %d/%d received" n.code n.subcode
  | Channel_broken -> Fmt.string ppf "channel broken"
  | Stopped -> Fmt.string ppf "stopped"

type t = {
  engine : Sim.Engine.t;
  channel : Channel.t;
  side : Channel.side;
  asn : Asn.t;
  router_id : Net.Ipv4.t;
  hold_time : int;
  name : string;
  mutable state : state;
  mutable peer : Message.open_msg option;
  mutable negotiated_hold : int option;
  mutable last_heard : Sim.Time.t;
  mutable keepalive_task : Sim.Engine.handle option;
  mutable hold_task : Sim.Engine.handle option;
  mutable established_cb : (Message.open_msg -> unit) option;
  mutable update_cb : (Message.update -> unit) option;
  mutable down_cb : (down_reason -> unit) option;
  mutable updates_sent : int;
  mutable updates_received : int;
}

let trace t fmt =
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"bgp" fmt

let cancel_timers t =
  (match t.keepalive_task with Some h -> Sim.Engine.cancel h | None -> ());
  (match t.hold_task with Some h -> Sim.Engine.cancel h | None -> ());
  t.keepalive_task <- None;
  t.hold_task <- None

let close t reason =
  if t.state <> Closed then begin
    trace t "%s: down (%a)" t.name pp_down_reason reason;
    t.state <- Closed;
    cancel_timers t;
    match t.down_cb with Some f -> f reason | None -> ()
  end

(* The hold timer is implemented as a self-rescheduling deadline check:
   rather than cancelling and re-arming on every received message, the
   check compares [last_heard + hold] with the clock and re-arms itself
   for the remaining interval. *)
let rec arm_hold_timer t =
  match t.negotiated_hold with
  | None | Some 0 -> ()
  | Some hold ->
    let deadline = Sim.Time.add t.last_heard (Sim.Time.of_sec (float_of_int hold)) in
    let delay = Sim.Time.sub deadline (Sim.Engine.now t.engine) in
    let delay = if Sim.Time.is_negative delay then Sim.Time.zero else delay in
    t.hold_task <-
      Some
        (Sim.Engine.schedule_after t.engine delay (fun () ->
             if t.state = Established || t.state = Open_confirm then begin
               let deadline =
                 Sim.Time.add t.last_heard (Sim.Time.of_sec (float_of_int hold))
               in
               if Sim.Time.(Sim.Engine.now t.engine >= deadline) then begin
                 Channel.send t.channel t.side Message.hold_timer_expired;
                 close t Hold_timer_expired
               end
               else arm_hold_timer t
             end))

let start_keepalives t =
  match t.negotiated_hold with
  | None | Some 0 -> ()
  | Some hold ->
    let interval = Sim.Time.of_sec (float_of_int hold /. 3.0) in
    t.keepalive_task <-
      Some
        (Sim.Engine.every t.engine ~interval (fun () ->
             if t.state = Established || t.state = Open_confirm then
               Channel.send t.channel t.side Message.Keepalive))

let negotiate_hold t (peer_open : Message.open_msg) =
  let hold = min t.hold_time peer_open.hold_time in
  t.negotiated_hold <- Some hold

let become_established t peer_open =
  t.state <- Established;
  trace t "%s: established with %a" t.name Asn.pp peer_open.Message.asn;
  match t.established_cb with Some f -> f peer_open | None -> ()

let handle_message t msg =
  if t.state <> Closed then begin
    t.last_heard <- Sim.Engine.now t.engine;
    match t.state, msg with
    | (Idle | Open_sent), Message.Open peer_open ->
      t.peer <- Some peer_open;
      negotiate_hold t peer_open;
      (* An OPEN arriving in Idle means the peer started first; answer
         with our own OPEN before confirming. *)
      if t.state = Idle then
        Channel.send t.channel t.side
          (Message.Open
             {
               version = 4;
               asn = t.asn;
               hold_time = t.hold_time;
               router_id = t.router_id;
             });
      Channel.send t.channel t.side Message.Keepalive;
      t.state <- Open_confirm;
      start_keepalives t;
      arm_hold_timer t
    | Open_confirm, Message.Keepalive ->
      (match t.peer with
      | Some peer_open -> become_established t peer_open
      | None -> close t (Notification_received { code = 5; subcode = 0; data = "" }))
    | Established, Message.Keepalive -> ()
    | Established, Message.Update u ->
      t.updates_received <- t.updates_received + 1;
      (match t.update_cb with Some f -> f u | None -> ())
    | _, Message.Notification n -> close t (Notification_received n)
    | Open_confirm, Message.Update _ ->
      (* FSM error: update before establishment. *)
      Channel.send t.channel t.side
        (Message.Notification { code = 5; subcode = 0; data = "" });
      close t (Notification_received { code = 5; subcode = 0; data = "" })
    | (Idle | Open_sent), (Message.Keepalive | Message.Update _) -> ()
    | (Established | Open_confirm), Message.Open _ -> ()
    | Closed, _ -> ()
  end

let create engine ~channel ~side ~asn ~router_id ?(hold_time = 90)
    ?(name = "session") () =
  let t =
    {
      engine;
      channel;
      side;
      asn;
      router_id;
      hold_time;
      name;
      state = Idle;
      peer = None;
      negotiated_hold = None;
      last_heard = Sim.Engine.now engine;
      keepalive_task = None;
      hold_task = None;
      established_cb = None;
      update_cb = None;
      down_cb = None;
      updates_sent = 0;
      updates_received = 0;
    }
  in
  Channel.attach channel side (handle_message t);
  Channel.on_break channel side (fun () -> close t Channel_broken);
  t

let[@lint.domain_entry
     "per-peer session driver: ROADMAP item 4 runs each peer's session on its \
      own domain; the session must only touch its own channel and state"] start
    t =
  if t.state = Idle then begin
    Channel.send t.channel t.side
      (Message.Open
         { version = 4; asn = t.asn; hold_time = t.hold_time; router_id = t.router_id });
    t.state <- Open_sent
  end

let stop t =
  if t.state <> Closed then begin
    Channel.send t.channel t.side Message.cease;
    close t Stopped
  end

let state t = t.state
let name t = t.name
let peer t = t.peer
let negotiated_hold_time t = t.negotiated_hold

let on_established t f = t.established_cb <- Some f
let on_update t f = t.update_cb <- Some f
let on_down t f = t.down_cb <- Some f

let send_update t u =
  if t.state <> Established then
    invalid_arg (Fmt.str "Session %s: send_update while %a" t.name pp_state t.state);
  t.updates_sent <- t.updates_sent + 1;
  Channel.send t.channel t.side (Message.Update u)

let updates_sent t = t.updates_sent
let updates_received t = t.updates_received
