type side = A | B

let flip = function A -> B | B -> A

type t = {
  engine : Sim.Engine.t;
  name : string;
  delay : Sim.Time.t;
  use_codec : bool;
  fragment : int option;
  reassembly_a : Stream.t;
  reassembly_b : Stream.t;
  mutable recv_a : (Message.t -> unit) option;
  mutable recv_b : (Message.t -> unit) option;
  mutable break_a : (unit -> unit) option;
  mutable break_b : (unit -> unit) option;
  mutable broken : bool;
  mutable epoch : int;
  mutable delivered : int;
  mutable faults : Sim.Faults.t option;
  (* FIFO floor per receiving side for the fragmented path: a byte
     stream must not reorder, so fault delays only stretch it. *)
  mutable fifo_floor_a : Sim.Time.t;
  mutable fifo_floor_b : Sim.Time.t;
}

let create engine ?(name = "chan") ?(delay = Sim.Time.of_us 200)
    ?(use_codec = false) ?fragment () =
  (match fragment with
  | Some n when n <= 0 -> invalid_arg "Channel.create: fragment must be positive"
  | Some _ when not use_codec ->
    invalid_arg "Channel.create: fragment requires use_codec"
  | Some _ | None -> ());
  {
    engine;
    name;
    delay;
    use_codec;
    fragment;
    reassembly_a = Stream.create ();
    reassembly_b = Stream.create ();
    recv_a = None;
    recv_b = None;
    break_a = None;
    break_b = None;
    broken = false;
    epoch = 0;
    delivered = 0;
    faults = None;
    fifo_floor_a = Sim.Time.zero;
    fifo_floor_b = Sim.Time.zero;
  }

let name t = t.name

let set_faults t faults = t.faults <- Some faults

let plan_faults t =
  match t.faults with
  | None -> Sim.Faults.Deliver [Sim.Time.zero]
  | Some f -> Sim.Faults.plan f

let attach t side f =
  match side with A -> t.recv_a <- Some f | B -> t.recv_b <- Some f

let on_break t side f =
  match side with A -> t.break_a <- Some f | B -> t.break_b <- Some f

let receiver t side = match side with A -> t.recv_a | B -> t.recv_b

let through_codec t msg =
  if not t.use_codec then msg
  else
    match Codec.decode_exact (Codec.encode msg) with
    | Ok decoded -> decoded
    | Error err ->
      invalid_arg
        (Fmt.str "Channel %s: message failed codec round-trip: %a" t.name
           Net.Wire.pp_error err)

let reassembler t side = match side with A -> t.reassembly_a | B -> t.reassembly_b

(* With [fragment] set, the encoded message is cut into TCP-segment-like
   chunks delivered separately and reassembled by the receiving side's
   {!Stream} — message boundaries no longer align with deliveries, as on
   a real socket. Faults act on the whole message (the stream stands in
   for TCP, which already hides segment loss and duplication): a Drop
   verdict discards every chunk, and an extra delay stretches the stream
   without reordering it — the FIFO floor keeps later messages from
   overtaking earlier delayed ones mid-stream. *)
let send_fragmented t from msg size =
  match plan_faults t with
  | Sim.Faults.Drop -> ()
  | Sim.Faults.Deliver (extra :: _) ->
    let wire = Codec.encode msg in
    let epoch_at_send = t.epoch in
    let to_side = flip from in
    let at =
      let earliest =
        Sim.Time.add (Sim.Engine.now t.engine) (Sim.Time.add t.delay extra)
      in
      match to_side with
      | A ->
        let at = Sim.Time.max earliest t.fifo_floor_a in
        t.fifo_floor_a <- at;
        at
      | B ->
        let at = Sim.Time.max earliest t.fifo_floor_b in
        t.fifo_floor_b <- at;
        at
    in
    let rec cut offset =
      if offset < String.length wire then begin
        let len = min size (String.length wire - offset) in
        let chunk = String.sub wire offset len in
        let deliver () =
          if (not t.broken) && t.epoch = epoch_at_send then
            match Stream.feed (reassembler t to_side) chunk with
            | Ok msgs ->
              List.iter
                (fun m ->
                  match receiver t to_side with
                  | Some f ->
                    t.delivered <- t.delivered + 1;
                    f m
                  | None -> ())
                msgs
            | Error err ->
              invalid_arg
                (Fmt.str "Channel %s: stream reassembly failed: %a" t.name
                   Net.Wire.pp_error err)
        in
        ignore (Sim.Engine.schedule_at t.engine at deliver);
        cut (offset + len)
      end
    in
    cut 0
  | Sim.Faults.Deliver [] -> ()

let send t from msg =
  if not t.broken then
    match t.fragment with
    | Some size -> send_fragmented t from msg size
    | None -> (
      let msg = through_codec t msg in
      let epoch_at_send = t.epoch in
      let deliver () =
        if (not t.broken) && t.epoch = epoch_at_send then
          match receiver t (flip from) with
          | Some f ->
            t.delivered <- t.delivered + 1;
            f msg
          | None -> ()
      in
      match plan_faults t with
      | Sim.Faults.Drop -> ()
      | Sim.Faults.Deliver extras ->
        List.iter
          (fun extra ->
            ignore
              (Sim.Engine.schedule_after t.engine (Sim.Time.add t.delay extra)
                 deliver))
          extras)

let break t =
  if not t.broken then begin
    t.broken <- true;
    t.epoch <- t.epoch + 1;
    Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
      ~category:"channel" "%s: broken" t.name;
    let fire cb = match cb with Some f -> ignore (Sim.Engine.schedule_after t.engine t.delay f) | None -> () in
    fire t.break_a;
    fire t.break_b
  end

let is_broken t = t.broken

let messages_delivered t = t.delivered
