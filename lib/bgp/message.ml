type open_msg = {
  version : int;
  asn : Asn.t;
  hold_time : int;
  router_id : Net.Ipv4.t;
}

type update = {
  withdrawn : Net.Prefix.t list;
  attrs : Attributes.t option;
  nlri : Net.Prefix.t list;
}

type notification = {
  code : int;
  subcode : int;
  data : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

let update ?(withdrawn = []) ?attrs ?(nlri = []) () =
  (match attrs, nlri with
  | None, _ :: _ -> invalid_arg "Message.update: NLRI without attributes"
  | _ -> ());
  (match withdrawn, nlri with
  | [], [] -> invalid_arg "Message.update: empty update"
  | _ -> ());
  Update { withdrawn; attrs; nlri }

let announce attrs nlri = update ~attrs ~nlri ()
let withdraw withdrawn = update ~withdrawn ()

let cease = Notification { code = 6; subcode = 0; data = "" }
let hold_timer_expired = Notification { code = 4; subcode = 0; data = "" }

let equal a b =
  match a, b with
  | Open x, Open y ->
    x.version = y.version && Asn.equal x.asn y.asn && x.hold_time = y.hold_time
    && Net.Ipv4.equal x.router_id y.router_id
  | Update x, Update y ->
    List.equal Net.Prefix.equal x.withdrawn y.withdrawn
    && Option.equal Attributes.equal x.attrs y.attrs
    && List.equal Net.Prefix.equal x.nlri y.nlri
  | Keepalive, Keepalive -> true
  | Notification x, Notification y ->
    x.code = y.code && x.subcode = y.subcode && String.equal x.data y.data
  | (Open _ | Update _ | Keepalive | Notification _), _ -> false

let pp ppf = function
  | Open o ->
    Fmt.pf ppf "OPEN v%d %a hold=%ds id=%a" o.version Asn.pp o.asn o.hold_time
      Net.Ipv4.pp o.router_id
  | Update u ->
    Fmt.pf ppf "UPDATE withdraw=[%a]"
      Fmt.(list ~sep:comma Net.Prefix.pp)
      u.withdrawn;
    (match u.attrs with
    | Some attrs ->
      Fmt.pf ppf " announce=[%a] %a"
        Fmt.(list ~sep:comma Net.Prefix.pp)
        u.nlri Attributes.pp attrs
    | None -> ())
  | Keepalive -> Fmt.string ppf "KEEPALIVE"
  | Notification n -> Fmt.pf ppf "NOTIFICATION %d/%d" n.code n.subcode
