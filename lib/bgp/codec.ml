open Net

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let max_message_size = 4096
let header_size = 19

let msg_type = function
  | Message.Open _ -> 1
  | Message.Update _ -> 2
  | Message.Notification _ -> 3
  | Message.Keepalive -> 4

(* --- prefixes ---------------------------------------------------------- *)

let encode_prefix buf p =
  let len = Prefix.length p in
  let nbytes = (len + 7) / 8 in
  Wire.Buf.u8 buf len;
  let addr = Ipv4.to_int32 (Prefix.network p) in
  for i = 0 to nbytes - 1 do
    Wire.Buf.u8 buf
      (Int32.to_int (Int32.logand (Int32.shift_right_logical addr (24 - (8 * i))) 0xFFl))
  done

let decode_prefix r =
  let* len = Wire.Reader.u8 r in
  if len > 32 then Error (Wire.Malformed "prefix length")
  else begin
    let nbytes = (len + 7) / 8 in
    let* raw = Wire.Reader.take r nbytes in
    let addr = ref 0l in
    String.iteri
      (fun i c ->
        addr := Int32.logor !addr (Int32.shift_left (Int32.of_int (Char.code c)) (24 - (8 * i))))
      raw;
    Ok (Prefix.make (Ipv4.of_int32 !addr) len)
  end

let rec decode_prefixes r limit acc =
  if Wire.Reader.pos r >= limit then
    if Wire.Reader.pos r = limit then Ok (List.rev acc)
    else Error (Wire.Malformed "prefix block overrun")
  else
    let* p = decode_prefix r in
    decode_prefixes r limit (p :: acc)

(* --- path attributes --------------------------------------------------- *)

let flag_optional = 0x80
let flag_transitive = 0x40
let flag_extended = 0x10

let encode_attribute buf ~flags ~code ~value =
  let len = String.length value in
  let flags = if len > 255 then flags lor flag_extended else flags in
  Wire.Buf.u8 buf flags;
  Wire.Buf.u8 buf code;
  if len > 255 then Wire.Buf.u16 buf len else Wire.Buf.u8 buf len;
  Wire.Buf.bytes buf value

let encode_attributes (a : Attributes.t) =
  let buf = Wire.Buf.create () in
  let value_of f =
    let b = Wire.Buf.create () in
    f b;
    Wire.Buf.contents b
  in
  encode_attribute buf ~flags:flag_transitive ~code:1
    ~value:(value_of (fun b -> Wire.Buf.u8 b (Attributes.origin_preference a.origin)));
  let as_path_value =
    value_of (fun b ->
        List.iter
          (fun seg ->
            let seg_type, asns =
              match seg with
              | Attributes.Set asns -> 1, asns
              | Attributes.Seq asns -> 2, asns
            in
            Wire.Buf.u8 b seg_type;
            Wire.Buf.u8 b (List.length asns);
            List.iter (fun asn -> Wire.Buf.u16 b (Asn.to_int asn)) asns)
          a.as_path)
  in
  encode_attribute buf ~flags:flag_transitive ~code:2 ~value:as_path_value;
  encode_attribute buf ~flags:flag_transitive ~code:3
    ~value:(value_of (fun b -> Wire.Buf.u32 b (Ipv4.to_int32 a.next_hop)));
  (match a.med with
  | Some med ->
    encode_attribute buf ~flags:flag_optional ~code:4
      ~value:(value_of (fun b -> Wire.Buf.u32 b (Int32.of_int med)))
  | None -> ());
  (match a.local_pref with
  | Some lp ->
    encode_attribute buf ~flags:flag_transitive ~code:5
      ~value:(value_of (fun b -> Wire.Buf.u32 b (Int32.of_int lp)))
  | None -> ());
  (match a.communities with
  | [] -> ()
  | communities ->
    encode_attribute buf ~flags:(flag_optional lor flag_transitive) ~code:8
      ~value:
        (value_of (fun b ->
             List.iter
               (fun (hi, lo) ->
                 Wire.Buf.u16 b hi;
                 Wire.Buf.u16 b lo)
               communities)));
  Wire.Buf.contents buf

type partial_attrs = {
  mutable origin : Attributes.origin option;
  mutable as_path : Attributes.as_path_segment list option;
  mutable next_hop : Ipv4.t option;
  mutable med : int option;
  mutable local_pref : int option;
  mutable communities : (int * int) list;
}

let decode_as_path value =
  let r = Wire.Reader.of_string value in
  let rec segments acc =
    if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
    else
      let* seg_type = Wire.Reader.u8 r in
      let* count = Wire.Reader.u8 r in
      let rec asns n acc =
        if n = 0 then Ok (List.rev acc)
        else
          let* v = Wire.Reader.u16 r in
          asns (n - 1) (Asn.of_int v :: acc)
      in
      let* asns = asns count [] in
      let* seg =
        match seg_type with
        | 1 -> Ok (Attributes.Set asns)
        | 2 -> Ok (Attributes.Seq asns)
        | _ -> Error (Wire.Malformed "AS_PATH segment type")
      in
      segments (seg :: acc)
  in
  segments []

let decode_communities value =
  let r = Wire.Reader.of_string value in
  if String.length value mod 4 <> 0 then Error (Wire.Malformed "COMMUNITIES length")
  else begin
    let rec loop acc =
      if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
      else
        let* hi = Wire.Reader.u16 r in
        let* lo = Wire.Reader.u16 r in
        loop ((hi, lo) :: acc)
    in
    loop []
  end

let u32_value value name =
  if String.length value <> 4 then Error (Wire.Malformed name)
  else
    let* v = Wire.Reader.u32 (Wire.Reader.of_string value) in
    Ok (Int32.to_int (Int32.logand v 0x7FFFFFFFl))

let decode_attributes r limit =
  let acc =
    {
      origin = None;
      as_path = None;
      next_hop = None;
      med = None;
      local_pref = None;
      communities = [];
    }
  in
  let rec loop () =
    if Wire.Reader.pos r >= limit then
      if Wire.Reader.pos r = limit then Ok ()
      else Error (Wire.Malformed "attribute block overrun")
    else
      let* flags = Wire.Reader.u8 r in
      let* code = Wire.Reader.u8 r in
      let* len =
        if flags land flag_extended <> 0 then Wire.Reader.u16 r else Wire.Reader.u8 r
      in
      let* value = Wire.Reader.take r len in
      let* () =
        match code with
        | 1 ->
          let* origin =
            match value with
            | "\x00" -> Ok Attributes.Igp
            | "\x01" -> Ok Attributes.Egp
            | "\x02" -> Ok Attributes.Incomplete
            | _ -> Error (Wire.Malformed "ORIGIN")
          in
          acc.origin <- Some origin;
          Ok ()
        | 2 ->
          let* path = decode_as_path value in
          acc.as_path <- Some path;
          Ok ()
        | 3 ->
          if String.length value <> 4 then Error (Wire.Malformed "NEXT_HOP")
          else begin
            let* v = Wire.Reader.u32 (Wire.Reader.of_string value) in
            acc.next_hop <- Some (Ipv4.of_int32 v);
            Ok ()
          end
        | 4 ->
          let* med = u32_value value "MED" in
          acc.med <- Some med;
          Ok ()
        | 5 ->
          let* lp = u32_value value "LOCAL_PREF" in
          acc.local_pref <- Some lp;
          Ok ()
        | 8 ->
          let* communities = decode_communities value in
          acc.communities <- communities;
          Ok ()
        | _ ->
          if flags land flag_optional <> 0 then Ok () (* skip unknown optional *)
          else Error (Wire.Unsupported "well-known attribute")
      in
      loop ()
  in
  let* () = loop () in
  Ok acc

(* --- messages ----------------------------------------------------------- *)

let encode_body = function
  | Message.Open o ->
    let buf = Wire.Buf.create () in
    Wire.Buf.u8 buf o.version;
    Wire.Buf.u16 buf (Asn.to_int o.asn);
    Wire.Buf.u16 buf o.hold_time;
    Wire.Buf.u32 buf (Ipv4.to_int32 o.router_id);
    Wire.Buf.u8 buf 0 (* no optional parameters *);
    Wire.Buf.contents buf
  | Message.Update u ->
    let buf = Wire.Buf.create () in
    let withdrawn_buf = Wire.Buf.create () in
    List.iter (encode_prefix withdrawn_buf) u.withdrawn;
    let withdrawn = Wire.Buf.contents withdrawn_buf in
    Wire.Buf.u16 buf (String.length withdrawn);
    Wire.Buf.bytes buf withdrawn;
    let attrs =
      match u.attrs with Some a -> encode_attributes a | None -> ""
    in
    Wire.Buf.u16 buf (String.length attrs);
    Wire.Buf.bytes buf attrs;
    List.iter (encode_prefix buf) u.nlri;
    Wire.Buf.contents buf
  | Message.Keepalive -> ""
  | Message.Notification n ->
    let buf = Wire.Buf.create () in
    Wire.Buf.u8 buf n.code;
    Wire.Buf.u8 buf n.subcode;
    Wire.Buf.bytes buf n.data;
    Wire.Buf.contents buf

let encode msg =
  let body = encode_body msg in
  let total = header_size + String.length body in
  if total > max_message_size then
    invalid_arg "Bgp.Codec.encode: message exceeds 4096 bytes";
  let buf = Wire.Buf.create () in
  for _ = 1 to 16 do
    Wire.Buf.u8 buf 0xFF
  done;
  Wire.Buf.u16 buf total;
  Wire.Buf.u8 buf (msg_type msg);
  Wire.Buf.bytes buf body;
  Wire.Buf.contents buf

let decode_open body =
  let r = Wire.Reader.of_string body in
  let* version = Wire.Reader.u8 r in
  let* asn = Wire.Reader.u16 r in
  let* hold_time = Wire.Reader.u16 r in
  let* router_id_raw = Wire.Reader.u32 r in
  let* opt_len = Wire.Reader.u8 r in
  let* _opts = Wire.Reader.take r opt_len in
  Ok
    (Message.Open
       {
         version;
         asn = Asn.of_int asn;
         hold_time;
         router_id = Ipv4.of_int32 router_id_raw;
       })

let decode_update body =
  let r = Wire.Reader.of_string body in
  let* withdrawn_len = Wire.Reader.u16 r in
  let* withdrawn = decode_prefixes r (Wire.Reader.pos r + withdrawn_len) [] in
  let* attrs_len = Wire.Reader.u16 r in
  let attrs_end = Wire.Reader.pos r + attrs_len in
  if attrs_end > String.length body then Error (Wire.Truncated "path attributes")
  else
    let* partial = decode_attributes r attrs_end in
    let* nlri = decode_prefixes r (String.length body) [] in
    let* attrs =
      match nlri, partial.next_hop with
      | [], _ when attrs_len = 0 -> Ok None
      | _ :: _, None -> Error (Wire.Malformed "UPDATE with NLRI but no NEXT_HOP")
      | _, Some next_hop ->
        let origin = Option.value partial.origin ~default:Attributes.Incomplete in
        let as_path = Option.value partial.as_path ~default:[] in
        Ok
          (Some
             (Attributes.make ~origin ~as_path ?med:partial.med
                ?local_pref:partial.local_pref ~communities:partial.communities
                ~next_hop ()))
      | [], None ->
        (* Attributes present but incomplete and no NLRI: treat as
           withdraw-only, matching lenient real-world parsers. *)
        Ok None
    in
    match withdrawn, nlri, attrs with
    | [], [], None ->
      (* End-of-RIB style empty update; represent as a pure withdraw of
         nothing is invalid in our model, so reject. *)
      Error (Wire.Malformed "empty UPDATE")
    | _ -> Ok (Message.Update { withdrawn; attrs; nlri })

let decode_notification body =
  let r = Wire.Reader.of_string body in
  let* code = Wire.Reader.u8 r in
  let* subcode = Wire.Reader.u8 r in
  let data = Wire.Reader.rest r in
  Ok (Message.Notification { code; subcode; data })

let decode s =
  let r = Wire.Reader.of_string s in
  let* marker = Wire.Reader.take r 16 in
  if String.exists (fun c -> c <> '\xFF') marker then
    Error (Wire.Malformed "header marker")
  else
    let* total = Wire.Reader.u16 r in
    if total < header_size || total > max_message_size then
      Error (Wire.Malformed "message length")
    else if total > String.length s then Error (Wire.Truncated "message body")
    else
      let* ty = Wire.Reader.u8 r in
      let* body = Wire.Reader.take r (total - header_size) in
      let* msg =
        match ty with
        | 1 -> decode_open body
        | 2 -> decode_update body
        | 3 -> decode_notification body
        | 4 -> if body = "" then Ok Message.Keepalive else Error (Wire.Malformed "KEEPALIVE body")
        | _ -> Error (Wire.Unsupported "message type")
      in
      Ok (msg, total)

let decode_exact s =
  let* msg, consumed = decode s in
  if consumed = String.length s then Ok msg
  else Error (Wire.Malformed "trailing bytes")

let decode_all s =
  let rec loop offset acc =
    if offset = String.length s then Ok (List.rev acc)
    else
      let* msg, consumed = decode (String.sub s offset (String.length s - offset)) in
      loop (offset + consumed) (msg :: acc)
  in
  loop 0 []
