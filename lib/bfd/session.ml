type t = {
  engine : Sim.Engine.t;
  name : string;
  rng : Sim.Rng.t;
  local_discriminator : int32;
  detect_mult : int;
  tx_interval : Sim.Time.t;
  rx_interval : Sim.Time.t;
  send : Packet.t -> unit;
  mutable state : Packet.state;
  mutable diag : Packet.diagnostic;
  mutable remote_discriminator : int32;
  mutable remote_detect_mult : int;
  mutable remote_min_tx_us : int;
  mutable last_received : Sim.Time.t option;
  mutable tx_task : Sim.Engine.handle option;
  mutable detect_task : Sim.Engine.handle option;
  mutable state_cb : (Packet.state -> Packet.diagnostic -> unit) option;
  mutable sent : int;
  mutable received : int;
  m_detection : Obs.Histogram.t;
    (* seconds from last received control packet to declaring Down *)
}

let trace t fmt =
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"bfd" fmt

let create engine ?(name = "bfd") ~local_discriminator ?(detect_mult = 3)
    ?(tx_interval = Sim.Time.of_ms 40) ?rx_interval ~send () =
  if detect_mult <= 0 then invalid_arg "Bfd.Session.create: detect_mult";
  let rx_interval = match rx_interval with Some i -> i | None -> tx_interval in
  {
    engine;
    name;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    local_discriminator;
    detect_mult;
    tx_interval;
    rx_interval;
    send;
    state = Packet.Down;
    diag = Packet.No_diagnostic;
    remote_discriminator = 0l;
    remote_detect_mult = detect_mult;
    remote_min_tx_us = 0;
    last_received = None;
    tx_task = None;
    detect_task = None;
    state_cb = None;
    sent = 0;
    received = 0;
    m_detection =
      Obs.Metrics.histogram (Sim.Engine.metrics engine) "bfd.detection_seconds";
  }

let detection_time t =
  (* RFC 5880 §6.8.4: remote detect-mult times the agreed interval, the
     larger of our required rx and the remote's desired tx. *)
  let negotiated_us =
    Stdlib.max
      (Int64.to_int (Int64.div (Sim.Time.to_ns t.rx_interval) 1000L))
      t.remote_min_tx_us
  in
  Sim.Time.mul (Sim.Time.of_us negotiated_us) t.remote_detect_mult

let set_state t state diag =
  if state <> t.state then begin
    trace t "%s: %a -> %a (%a)" t.name Packet.pp_state t.state Packet.pp_state
      state Packet.pp_diagnostic diag;
    t.state <- state;
    t.diag <- diag;
    match t.state_cb with Some f -> f state diag | None -> ()
  end

let control_packet t =
  {
    Packet.state = t.state;
    diag = t.diag;
    detect_mult = t.detect_mult;
    my_discriminator = t.local_discriminator;
    your_discriminator = t.remote_discriminator;
    desired_min_tx_us = Int64.to_int (Int64.div (Sim.Time.to_ns t.tx_interval) 1000L);
    required_min_rx_us = Int64.to_int (Int64.div (Sim.Time.to_ns t.rx_interval) 1000L);
  }

let transmit t () =
  if t.state <> Packet.Admin_down then begin
    t.sent <- t.sent + 1;
    t.send (control_packet t)
  end

(* RFC 5880 S6.8.7: transmissions are jittered to 75-100%% of the
   interval so that sessions sharing a box do not synchronise. The
   jitter also de-correlates the detection delay from the failure
   instant, giving the convergence measurements their natural spread. *)
let jittered_interval t =
  let base = Int64.to_float (Sim.Time.to_ns t.tx_interval) in
  Sim.Time.of_ns (Int64.of_float (base *. (0.75 +. Sim.Rng.float t.rng 0.25)))

let rec schedule_tx t =
  t.tx_task <-
    Some
      (Sim.Engine.schedule_after t.engine (jittered_interval t) (fun () ->
           if Option.is_some t.tx_task then begin
             transmit t ();
             schedule_tx t
           end))

(* Detection uses a self-rescheduling deadline check, like the BGP hold
   timer: the check fires at the earliest possible expiry and re-arms for
   the remainder if packets arrived in the meantime. *)
let rec arm_detection t =
  (match t.detect_task with Some h -> Sim.Engine.cancel h | None -> ());
  match t.last_received with
  | None -> ()
  | Some last ->
    let deadline = Sim.Time.add last (detection_time t) in
    let delay = Sim.Time.sub deadline (Sim.Engine.now t.engine) in
    let delay = if Sim.Time.is_negative delay then Sim.Time.zero else delay in
    t.detect_task <-
      Some
        (Sim.Engine.schedule_after t.engine delay (fun () ->
             match t.state, t.last_received with
             | (Packet.Up | Packet.Init), Some last ->
               let deadline = Sim.Time.add last (detection_time t) in
               if Sim.Time.(Sim.Engine.now t.engine >= deadline) then begin
                 Obs.Histogram.observe t.m_detection
                   (Sim.Time.to_sec (Sim.Time.sub (Sim.Engine.now t.engine) last));
                 set_state t Packet.Down Packet.Control_detection_time_expired
               end
               else arm_detection t
             | _ -> ()))

let enable t =
  if t.state = Packet.Admin_down then set_state t Packet.Down Packet.No_diagnostic;
  if Option.is_none t.tx_task then begin
    transmit t ();
    schedule_tx t
  end

let disable t =
  set_state t Packet.Admin_down Packet.Administratively_down;
  transmit t ();
  (match t.tx_task with Some h -> Sim.Engine.cancel h | None -> ());
  (match t.detect_task with Some h -> Sim.Engine.cancel h | None -> ());
  t.tx_task <- None;
  t.detect_task <- None

let receive t (pkt : Packet.t) =
  if t.state <> Packet.Admin_down then begin
    t.received <- t.received + 1;
    t.remote_discriminator <- pkt.my_discriminator;
    t.remote_detect_mult <- pkt.detect_mult;
    t.remote_min_tx_us <- pkt.desired_min_tx_us;
    t.last_received <- Some (Sim.Engine.now t.engine);
    (* RFC 5880 §6.8.6 state update. *)
    (match pkt.state with
    | Packet.Admin_down ->
      if t.state <> Packet.Down then
        set_state t Packet.Down Packet.Neighbor_signaled_down
    | Packet.Down -> (
      match t.state with
      | Packet.Down -> set_state t Packet.Init Packet.No_diagnostic
      | Packet.Up -> set_state t Packet.Down Packet.Neighbor_signaled_down
      | Packet.Init | Packet.Admin_down -> ())
    | Packet.Init -> (
      match t.state with
      | Packet.Down | Packet.Init -> set_state t Packet.Up Packet.No_diagnostic
      | Packet.Up | Packet.Admin_down -> ())
    | Packet.Up -> (
      match t.state with
      | Packet.Init -> set_state t Packet.Up Packet.No_diagnostic
      | Packet.Down ->
        (* Peer thinks the session is up but we are down: wait for it to
           notice our Down packets; do not jump straight to Up. *)
        ()
      | Packet.Up | Packet.Admin_down -> ()));
    arm_detection t
  end

(* Fault injection: force the state machine into [state] as if the
   detection logic had fired (or a rogue packet had been accepted). The
   session keeps running — peers still exchanging control packets will
   drag the FSM back through the normal RFC 5880 handshake, which is
   exactly how a spurious flap behaves. *)
let inject_state t state =
  if t.state <> Packet.Admin_down && state <> t.state then begin
    trace t "%s: fault-injected transition to %a" t.name Packet.pp_state state;
    (match state with
    | Packet.Down -> set_state t Packet.Down Packet.Control_detection_time_expired
    | s -> set_state t s Packet.No_diagnostic);
    (* An injected Up on a silent peer must still be knocked down by the
       detection timer, so re-arm it against the last real packet. *)
    arm_detection t
  end

let state t = t.state
let name t = t.name
let on_state_change t f = t.state_cb <- Some f
let packets_sent t = t.sent
let packets_received t = t.received
