(** BFD session (RFC 5880, asynchronous mode).

    Failure detection is what bounds the supercharged router's
    convergence time: with transmit interval [tx] and detection
    multiplier [m], a dead peer is declared down at most [m × tx] after
    its last control packet. The session is transport-agnostic — the
    owner supplies a [send] function and feeds received packets in via
    {!receive}, so the same code runs over the simulated data plane (UDP
    port 3784) or point-to-point. *)

type t

val create :
  Sim.Engine.t ->
  ?name:string ->
  local_discriminator:int32 ->
  ?detect_mult:int ->
  ?tx_interval:Sim.Time.t ->
  ?rx_interval:Sim.Time.t ->
  send:(Packet.t -> unit) ->
  unit ->
  t
(** Defaults per the paper's calibration: [detect_mult] 3,
    [tx_interval] 40 ms, [rx_interval] = [tx_interval]. The session
    starts in [Down] and begins transmitting when {!enable}d. *)

val enable : t -> unit
val disable : t -> unit
(** Moves to [Admin_down] and announces it to the peer. *)

val receive : t -> Packet.t -> unit
(** Feed a control packet from the peer into the state machine. *)

val state : t -> Packet.state
val name : t -> string

val detection_time : t -> Sim.Time.t
(** Current detection time: remote detect-mult × the negotiated receive
    interval (the configured bound before negotiation completes). *)

val inject_state : t -> Packet.state -> unit
(** Fault-injection hook: forces the FSM into the given state (firing
    {!on_state_change}) as if detection had fired or a rogue packet had
    been accepted. No-op in [Admin_down] or when already in that state.
    A live peer drags the session back through the normal handshake, so
    injecting [Down] on a healthy session produces a realistic spurious
    flap; an injected [Up] on a silent peer is re-knocked [Down] by the
    detection timer. *)

val on_state_change : t -> (Packet.state -> Packet.diagnostic -> unit) -> unit
(** Single callback; fires on every transition, in particular
    [Up -> Down] with [Control_detection_time_expired] when the peer
    goes silent. *)

val packets_sent : t -> int
val packets_received : t -> int
