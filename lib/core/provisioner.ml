type peer_info = {
  pi_ip : Net.Ipv4.t;
  pi_mac : Net.Mac.t;
  pi_port : int;
}

module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

module Mac_table = Hashtbl.Make (struct
  type t = Net.Mac.t

  let equal = Net.Mac.equal
  let hash = Net.Mac.hash
end)

type t = {
  rule_priority : int;
  send : Openflow.Message.t -> unit;
  peers : peer_info Ip_table.t;
  dead : unit Ip_table.t;
  selected_by_vmac : Net.Ipv4.t Mac_table.t;
  retired : unit Mac_table.t;
      (* vmacs whose uninstall has been issued but that no later install
         has reclaimed — resync re-deletes these in case the delete was
         lost on an unresponsive control channel *)
  mutable flow_mods : int;
  mutable mutate_skip_rewrite : bool;
  m_flow_mods : Obs.Metrics.counter;
}

let create ?(rule_priority = 100) ?(metrics = Obs.Metrics.default) ~send () =
  {
    rule_priority;
    send;
    peers = Ip_table.create 16;
    dead = Ip_table.create 4;
    selected_by_vmac = Mac_table.create 64;
    retired = Mac_table.create 16;
    flow_mods = 0;
    mutate_skip_rewrite = false;
    m_flow_mods = Obs.Metrics.counter metrics "provisioner.flow_mods";
  }

let declare_peer t info = Ip_table.replace t.peers info.pi_ip info

let peer t ip = Ip_table.find_opt t.peers ip

let is_alive t ip = Ip_table.mem t.peers ip && not (Ip_table.mem t.dead ip)

let first_alive t next_hops = List.find_opt (is_alive t) next_hops

let send_group_rule t (binding : Backup_group.binding) target =
  let actions =
    match target with
    | Some info ->
      [Openflow.Action.Set_dl_dst info.pi_mac; Openflow.Action.Output info.pi_port]
    | None -> [] (* no member alive: drop *)
  in
  let fm =
    Openflow.Flow_table.flow_mod ~priority:t.rule_priority Openflow.Flow_table.Add
      (Openflow.Ofmatch.dl_dst binding.Backup_group.vmac)
      actions
  in
  t.flow_mods <- t.flow_mods + 1;
  Obs.Metrics.incr t.m_flow_mods;
  t.send (Openflow.Message.Flow_mod fm)

let install_group t (binding : Backup_group.binding) =
  List.iter
    (fun ip ->
      if not (Ip_table.mem t.peers ip) then
        invalid_arg
          (Fmt.str "Provisioner.install_group: peer %a not declared" Net.Ipv4.pp ip))
    binding.next_hops;
  (* A recycled vmac that gets re-installed is no longer retired; the
     Add overwrites whatever rule the (possibly lost) delete targeted. *)
  Mac_table.remove t.retired binding.vmac;
  match first_alive t binding.next_hops with
  | Some ip -> (
    match peer t ip with
    | Some info ->
      Mac_table.replace t.selected_by_vmac binding.vmac ip;
      send_group_rule t binding (Some info)
    | None ->
      invalid_arg
        (Fmt.str "Provisioner.install_group: peer %a not declared" Net.Ipv4.pp ip))
  | None ->
    Mac_table.remove t.selected_by_vmac binding.vmac;
    send_group_rule t binding None

let send_vmac_delete t vmac =
  let fm =
    Openflow.Flow_table.flow_mod ~priority:t.rule_priority
      Openflow.Flow_table.Delete_strict
      (Openflow.Ofmatch.dl_dst vmac)
      []
  in
  t.flow_mods <- t.flow_mods + 1;
  Obs.Metrics.incr t.m_flow_mods;
  t.send (Openflow.Message.Flow_mod fm)

let uninstall_group t (binding : Backup_group.binding) =
  Mac_table.remove t.selected_by_vmac binding.vmac;
  Mac_table.replace t.retired binding.vmac ();
  send_vmac_delete t binding.Backup_group.vmac

let retired_vmacs t = Mac_table.fold (fun mac () acc -> mac :: acc) t.retired []

let selected t (binding : Backup_group.binding) =
  Mac_table.find_opt t.selected_by_vmac binding.vmac

let fail_peer t failed_ip groups =
  Ip_table.replace t.dead failed_ip ();
  let before = t.flow_mods in
  let skipped_one = ref false in
  List.iter
    (fun (binding : Backup_group.binding) ->
      let points_at_failed =
        match selected t binding with
        | Some ip -> Net.Ipv4.equal ip failed_ip
        | None -> false
      in
      if points_at_failed then
        if t.mutate_skip_rewrite && not !skipped_one then skipped_one := true
        else install_group t binding)
    groups;
  t.flow_mods - before

let reinstall_groups t groups =
  let before = t.flow_mods in
  List.iter (fun binding -> install_group t binding) groups;
  t.flow_mods - before

let resync t groups =
  let before = t.flow_mods in
  (* Deletes first: a retired vmac may since have been recycled into one
     of [groups], and its re-install must win over the re-delete. *)
  let retired = Mac_table.fold (fun mac () acc -> mac :: acc) t.retired [] in
  List.iter (fun vmac -> send_vmac_delete t vmac) retired;
  List.iter (fun binding -> install_group t binding) groups;
  t.flow_mods - before

let revive_peer t ip = Ip_table.remove t.dead ip

let mutate_skip_rewrite t on = t.mutate_skip_rewrite <- on

let flow_mods_sent t = t.flow_mods
