(** Backup-group registry — the paper's [bck_groups] map.

    A backup-group is the ordered tuple of the first [group_size] next
    hops of a prefix's ranked candidate list; the paper works with size
    2, "(primary NH, backup NH)", and notes the algorithm generalises to
    any size — this registry implements the generalisation. Each
    distinct tuple is assigned a (VNH, VMAC) pair on first sight.

    With [n] peers and groups of size 2 there are at most n·(n−1)
    groups (§2: 90 for ten neighbours). *)

type binding = {
  next_hops : Net.Ipv4.t list;
      (** ordered, length ≥ 2; head = primary *)
  vnh : Net.Ipv4.t;
  vmac : Net.Mac.t;
  mutable refs : int;
      (** prefixes currently announced with this group's VNH; maintained
          via {!acquire}/{!release} *)
}

val pp_binding : Format.formatter -> binding -> unit

type t

val create : ?group_size:int -> Vnh.t -> t
(** [group_size] defaults to 2 and must be ≥ 2. *)

val group_size : t -> int

val key_of_next_hops : t -> Net.Ipv4.t list -> Net.Ipv4.t list
(** Truncates a ranked next-hop list to the group size. *)

val find_or_create : t -> Net.Ipv4.t list -> binding
(** Looks up the (truncated) tuple, allocating a fresh (VNH, VMAC) on
    first sight — in which case the [on_create] observer fires (the
    controller uses it to provision the switch rule before any traffic
    can carry the new tag). Requires ≥ 2 next hops. *)

val find : t -> Net.Ipv4.t list -> binding option

val find_by_vnh : t -> Net.Ipv4.t -> binding option
(** The ARP responder's lookup. *)

val find_by_vmac : t -> Net.Mac.t -> binding option

val with_primary : t -> Net.Ipv4.t -> binding list
(** Groups whose primary next hop is the given peer — the iteration
    space of the paper's Listing 2. *)

val with_member : t -> Net.Ipv4.t -> binding list
(** Groups containing the peer anywhere in the tuple. *)

val all : t -> binding list

val count : t -> int
(** Registered groups, including idle (refcount-zero) ones awaiting
    {!destroy}. *)

val acquire : t -> binding -> unit
(** Takes a reference: a prefix is now announced with this group's
    VNH. *)

val release : t -> binding -> unit
(** Drops a reference. At refcount zero the group becomes {e idle}: it
    stays registered (its rule keeps forwarding in-flight traffic and
    [find_or_create] can resurrect it) and the [on_idle] observer fires
    so the owner can schedule {!destroy}.
    @raise Invalid_argument on refcount underflow. *)

val refs : binding -> int

val live_count : t -> int
(** Groups with refcount > 0. *)

val destroy : t -> binding -> bool
(** Unregisters an idle group and returns its (VNH, VMAC) pair to the
    allocator for reuse. [false] (and no effect) when the group has been
    re-acquired since going idle, or was already destroyed. The caller
    is responsible for removing the group's switch rule. *)

val on_create : t -> (binding -> unit) -> unit

val on_idle : t -> (binding -> unit) -> unit
(** Observer for groups reaching refcount zero; the controller uses it
    to garbage-collect the group and its switch rule after a linger
    period. *)

val theoretical_max : n_peers:int -> group_size:int -> int
(** Upper bound on the number of groups: ordered tuples of distinct
    peers of any length from 2 to [group_size] —
    Σⱼ n!/(n−j)!, which is the paper's n!/(n−2)! (90 at n = 10) for
    the paper's k = 2. *)
