(** Load-balancing supercharging (§1 of the paper):

    "poor load-balancing decisions made by routers due to sub-optimal
    stateless hash-functions can be overwritten dynamically as the
    traffic traverses the neighboring SDN switch".

    The router is provisioned (through the usual VNH/VMAC trick) to tag
    all balanced traffic with one VMAC; the switch then spreads flows
    across the equal-cost peers with exact per-flow rules assigned
    least-loaded-first, instead of the router's fixed hash. The hardware
    hash the paper criticises ([RFC 2992]-style modulo on header bits)
    is available as {!static_hash} so experiments can quantify the
    imbalance it causes on skewed traffic. *)

type t

val create :
  ?rule_priority:int ->
  allocator:Vnh.t ->
  send:(Openflow.Message.t -> unit) ->
  unit ->
  t
(** One (VNH, VMAC) pair is drawn as the balanced-traffic tag.
    [rule_priority] defaults to 300 (above the backup-group rules). *)

val vnh : t -> Net.Ipv4.t
val vmac : t -> Net.Mac.t

val add_target : t -> Provisioner.peer_info -> unit
(** Registers an equal-cost next hop; also (re)installs the default
    rule sending unmatched tagged traffic to the first target. *)

type flow_key = {
  fk_src : Net.Ipv4.t;
  fk_dst : Net.Ipv4.t;
  fk_src_port : int;
  fk_dst_port : int;
}

val flow_key_of_packet : Net.Ipv4_packet.t -> flow_key option
(** [None] for non-UDP packets. *)

val assign : t -> flow_key -> Net.Ipv4.t
(** Pins the flow to the least-loaded target (installing its exact
    5-tuple rule) and returns the chosen next hop; idempotent per
    key. *)

val assignment : t -> flow_key -> Net.Ipv4.t option

val remove_target : t -> Net.Ipv4.t -> unit
(** Peer loss: deregisters the target, re-points the default rule at the
    first surviving target and rebalances every flow pinned to the lost
    peer least-loaded-first (each flow's rule is overwritten in place).
    With no surviving target all balanced rules are deleted instead.
    Unknown targets are a no-op. *)

val load : t -> Net.Ipv4.t -> int
(** Flows currently pinned to the target. *)

val imbalance : t -> float
(** max load / mean load over the targets; 1.0 is a perfect spread. *)

val static_hash : n_targets:int -> flow_key -> int
(** The router's stateless hash the paper calls sub-optimal: a modulo
    over low destination bits (flows sharing low bits pile onto one
    next hop). *)

val rules_sent : t -> int
