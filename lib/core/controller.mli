(** The supercharger controller (the paper's ExaBGP + Floodlight + BFD
    composition, §3).

    It interposes itself between a legacy router and its BGP peers:

    - BGP updates from upstream peers are run through the decision
      process into a {!Bgp.Rib}, then through the Listing 1
      {!Algorithm}; the resulting announcements (with virtual next hops)
      are relayed to the supercharged router(s);
    - new backup-groups trigger switch-rule installation {e before} the
      rewritten announcement is relayed, so the data plane is ready when
      the router starts tagging;
    - ARP requests punted by the switch are answered by the
      {!Arp_responder} (VNH → VMAC);
    - per-peer BFD sessions run over the controller's own data-plane
      attachment; a detected failure triggers the Listing 2 fail-over
      after a configurable [reroute_latency] (computation + REST push),
      followed by the slow-path re-announcements that let the router
      converge in the background;
    - when BFD sees the peer again, the groups preferring it are
      re-pointed back (the inverse of Listing 2); its routes return
      through BGP re-announcement, as after any session
      re-establishment.

    Two controllers fed the same sessions compute identical VNH/VMAC
    assignments and rules (everything here is deterministic in the input
    order), which is the paper's state-free replication argument.

    The controller does not trust the switch blindly. Every failover's
    flow-mods are bracketed by a tracked barrier; a missing reply
    re-issues the rewrites idempotently with exponential backoff
    ([ack_timeout] × 2^attempt), and after [ack_max_retries] silent
    attempts the controller {e degrades}: the algorithm switches to
    passthrough (real next hops, the router's own O(#prefixes) FIB
    convergence) while periodic barrier probes test the switch. The
    first answered probe re-installs every live group rule and
    re-announces the VNHs — supercharged mode again. BFD Down events
    re-point rules immediately but the RIB withdrawal (slow path) is
    debounced by [bfd_debounce], so a spurious flap costs two rule
    re-points and zero BGP churn. *)

type t

type mode = Supercharged | Degraded

val pp_mode : Format.formatter -> mode -> unit

val create :
  Sim.Engine.t ->
  name:string ->
  asn:Bgp.Asn.t ->
  router_id:Net.Ipv4.t ->
  ?group_size:int ->
  ?reroute_latency:Sim.Time.t ->
  ?group_linger:Sim.Time.t ->
  ?ack_timeout:Sim.Time.t ->
  ?ack_max_retries:int ->
  ?bfd_debounce:Sim.Time.t ->
  ?probe_interval:Sim.Time.t ->
  ?bfd_detect_mult:int ->
  ?bfd_tx_interval:Sim.Time.t ->
  ?vnh_pool:Net.Prefix.t ->
  ?vmac_base:Net.Mac.t ->
  unit ->
  t
(** Defaults: [group_size] 2; [reroute_latency] 25 ms; [group_linger]
    5 s (how long an unreferenced backup-group keeps its rule before
    being garbage-collected and its VNH/VMAC recycled); [ack_timeout]
    100 ms (base barrier-reply timeout, doubled per attempt);
    [ack_max_retries] 3 (attempts before degrading); [bfd_debounce]
    100 ms (flap window before the slow-path RIB withdrawal fires);
    [probe_interval] 250 ms (barrier probes while degraded); BFD
    3 × 40 ms; allocator defaults of {!Vnh.create}.

    The controller registers its metrics in the engine's registry:
    counters [controller.updates_processed], [controller.updates_sent]
    (UPDATE messages on the wire towards routers),
    [controller.emissions], [controller.ack_timeouts],
    [controller.rule_retries], [controller.degradations],
    [controller.recoveries] and [controller.bfd_flaps_suppressed];
    gauge [controller.groups_live]; histogram
    [controller.failover_seconds] (BFD-down to last failover flow-mod
    applied, measured with an OpenFlow barrier).

    @raise Invalid_argument if [ack_max_retries < 1]. *)

val name : t -> string

val updates_of_emissions : Algorithm.emission list -> Bgp.Message.update list
(** Packs a stream of emissions into the fewest UPDATE messages a real
    speaker would put on the wire: consecutive announcements sharing an
    attribute block become one update with many NLRI; consecutive
    withdrawals become one update's [withdrawn] list. Exposed for
    tests. *)

val connect_switch :
  ?use_codec:bool -> ?faults:Sim.Faults.t -> t -> Openflow.Switch.t -> unit
(** Must be called before {!start}. With [use_codec:true] every message
    in both directions is round-tripped through the OpenFlow 1.0 binary
    codec in transit, exercising the real wire format (the integration
    tests run this way); a codec bug surfaces as [Invalid_argument].
    [faults] interposes an injector on the control path in both
    directions: dropped flow-mods and barrier replies feed the retry
    ladder; duplicates and delays exercise its idempotence. *)

val attach_dataplane : t -> Router.Endhost.t -> unit
(** The controller machine's NIC (wire its link to a switch port
    separately). Required for BFD-based failure detection. *)

val add_upstream_peer :
  t ->
  name:string ->
  ip:Net.Ipv4.t ->
  mac:Net.Mac.t ->
  switch_port:int ->
  channel:Bgp.Channel.t ->
  side:Bgp.Channel.side ->
  ?import_local_pref:int ->
  ?hold_time:int ->
  unit ->
  Bgp.Speaker.peer
(** A provider peer: BGP session over [channel], data-plane coordinates
    for rule installation, optional import policy setting LOCAL_PREF on
    everything learned from it (how "prefer provider #1" is expressed,
    like the paper's R1 configuration). *)

val add_router :
  t ->
  name:string ->
  channel:Bgp.Channel.t ->
  side:Bgp.Channel.side ->
  ?hold_time:int ->
  unit ->
  Bgp.Speaker.peer
(** A supercharged router downstream. Emissions are buffered until its
    session establishes. *)

val start : t -> unit
(** Starts BGP sessions, installs the ARP punt rule, and enables BFD to
    every upstream peer. *)

val rib : t -> Bgp.Rib.t
val groups : t -> Backup_group.t
val algorithm : t -> Algorithm.t
val provisioner : t -> Provisioner.t

val mode : t -> mode

val degraded : t -> bool
(** [true] while the controller has fallen back to the legacy path. *)

val quiescent : t -> bool
(** [true] when the controller has no convergence work in flight: it is
    supercharged (not degraded), every tracked barrier has been
    answered, no debounced slow-path withdrawal is pending, and no
    scheduled reroute/repair callback is waiting to run. This is the
    public replacement for tests that used to sleep on tick counts; the
    checker conjoins it with {!Openflow.Switch.idle} and per-peer BFD
    state agreement to define a system-wide quiescent point (periodic
    BFD/keepalive traffic never stops, so engine-queue emptiness is not
    an option). *)

val bfd_session : t -> Net.Ipv4.t -> Bfd.Session.t option
(** The BFD session towards an upstream peer, if {!start} created one.
    Exposed so fault harnesses can inject spurious state transitions. *)

val set_igp_cost_fn : t -> (Net.Ipv4.t -> int) -> unit
(** Plugs an IGP cost oracle (e.g. [Igp.Node.distance_to]) into the
    decision process: routes are stored with the IGP distance to their
    next hop, so step 6 of the tie-break — and hence the backup-group
    order — follows intra-domain reachability, the paper's "other
    intra-domain routing protocols can also be used" remark. Without it
    every next hop costs 0 (all peers directly connected, as in the
    paper's lab). *)

val attach_igp : t -> Igp.Node.t -> unit
(** Binds a live IGP node as the cost oracle {e and} subscribes to its
    changes: each SPF recomputation replays every upstream's Adj-RIB-In
    with fresh costs, so hot-potato re-ranking happens without a session
    reset (identical re-announcements are absorbed by the RIB). Next
    hops the IGP cannot reach rank below every reachable one. Takes over
    the node's [on_change] slot and the controller's cost function. *)

val on_failover : t -> (failed:Net.Ipv4.t -> flow_mods:int -> unit) -> unit
(** Fires when the Listing 2 procedure completes (rules handed to the
    switch; they still take the switch's per-rule latency to land). *)

val failovers_handled : t -> int
val updates_processed : t -> int
