module Prefix_table = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type t = {
  aggregate_len : int;
  priority_base : int;
  send : Openflow.Message.t -> unit;
  vnh : Net.Ipv4.t;
  vmac : Net.Mac.t;
  peers : Provisioner.peer_info Ip_table.t;
  specifics : Net.Ipv4.t Net.Flat_fib.t; (* prefix -> next hop, mirrors the rules *)
  aggregate_refs : int Prefix_table.t; (* cover -> #specifics under it *)
  mutable rules : int;
}

let create ?(aggregate_len = 8) ?(priority_base = 1000) ~allocator ~send () =
  if aggregate_len < 0 || aggregate_len > 24 then
    invalid_arg "Fib_cache.create: aggregate_len out of range";
  let vnh, vmac = Vnh.fresh allocator in
  {
    aggregate_len;
    priority_base;
    send;
    vnh;
    vmac;
    peers = Ip_table.create 8;
    specifics = Net.Flat_fib.create ();
    aggregate_refs = Prefix_table.create 64;
    rules = 0;
  }

let vnh t = t.vnh
let vmac t = t.vmac

let declare_peer t info = Ip_table.replace t.peers info.Provisioner.pi_ip info

(* The cover an address/prefix aggregates into: the prefix truncated to
   the aggregation length (prefixes already shorter than the cut are
   their own aggregate). *)
let cover t prefix =
  if Net.Prefix.length prefix <= t.aggregate_len then prefix
  else Net.Prefix.make (Net.Prefix.network prefix) t.aggregate_len

let rule_match t prefix =
  Openflow.Ofmatch.make ~dl_dst:t.vmac ~dl_type:0x0800 ~nw_dst:prefix ()

let rule_priority t prefix = t.priority_base + Net.Prefix.length prefix

type emission =
  | Announce_aggregate of Net.Prefix.t
  | Withdraw_aggregate of Net.Prefix.t

let bump_aggregate t agg delta =
  let current = Option.value (Prefix_table.find_opt t.aggregate_refs agg) ~default:0 in
  let updated = current + delta in
  if updated < 0 then invalid_arg "Fib_cache: aggregate refcount underflow";
  if updated = 0 then Prefix_table.remove t.aggregate_refs agg
  else Prefix_table.replace t.aggregate_refs agg updated;
  if current = 0 && updated > 0 then [Announce_aggregate agg]
  else if current > 0 && updated = 0 then [Withdraw_aggregate agg]
  else []

let route t prefix target =
  match target with
  | Some nh -> (
    match Ip_table.find_opt t.peers nh with
    | None ->
      invalid_arg (Fmt.str "Fib_cache.route: peer %a not declared" Net.Ipv4.pp nh)
    | Some info ->
      let previous = Net.Flat_fib.find_exact t.specifics prefix in
      let unchanged =
        match previous with Some old -> Net.Ipv4.equal old nh | None -> false
      in
      if unchanged then [] (* re-advertising the same hop needs no flow-mod *)
      else begin
        let had = Option.is_some previous in
        Net.Flat_fib.insert t.specifics prefix nh;
        t.rules <- t.rules + 1;
        (* A re-route must modify the installed rule in place: a second
           Add at the identical (priority, match) would leave the switch
           free to keep serving the stale action. *)
        let command =
          if had then Openflow.Flow_table.Modify_strict
          else Openflow.Flow_table.Add
        in
        t.send
          (Openflow.Message.Flow_mod
             (Openflow.Flow_table.flow_mod ~priority:(rule_priority t prefix)
                command (rule_match t prefix)
                [
                  Openflow.Action.Set_dl_dst info.Provisioner.pi_mac;
                  Openflow.Action.Output info.Provisioner.pi_port;
                ]));
        if had then [] else bump_aggregate t (cover t prefix) 1
      end)
  | None ->
    if Option.is_none (Net.Flat_fib.find_exact t.specifics prefix) then []
    else begin
      Net.Flat_fib.remove t.specifics prefix;
      t.rules <- t.rules + 1;
      t.send
        (Openflow.Message.Flow_mod
           (Openflow.Flow_table.flow_mod ~priority:(rule_priority t prefix)
              Openflow.Flow_table.Delete_strict (rule_match t prefix) []));
      bump_aggregate t (cover t prefix) (-1)
    end

let resolve t addr = Net.Flat_fib.lookup_value t.specifics addr

let[@lint.zero_alloc] resolve_batch t addrs out =
  Net.Flat_fib.lookup_batch t.specifics addrs out

let specifics t = Net.Flat_fib.cardinal t.specifics
let aggregates t = Prefix_table.length t.aggregate_refs

let compression_factor t =
  let aggs = aggregates t in
  if aggs = 0 then 0.0 else float_of_int (specifics t) /. float_of_int aggs

let rules_sent t = t.rules
