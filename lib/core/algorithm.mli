(** The online backup-group computation — the paper's Listing 1.

    For every RIB change the algorithm decides what (if anything) to
    announce to the supercharged router:

    - no candidates left → withdraw;
    - a single candidate → announce it unmodified (no backup exists, so
      no virtual next hop is needed);
    - two or more candidates → announce the best route with its NEXT_HOP
      rewritten to the VNH of the backup-group formed by the first
      [group_size] next hops, allocating the group on first sight.

    Deviation from the paper's pseudocode, documented in DESIGN.md: the
    pseudocode skips the NH rewrite when the backup-group is unchanged
    but other attributes changed, which would leak a real next hop to
    the router; this implementation always rewrites when a backup
    exists. Emissions are also deduplicated against the last announced
    state per prefix, so identical re-announcements are suppressed. *)

type emission =
  | Announce of Net.Prefix.t * Bgp.Attributes.t
  | Withdraw of Net.Prefix.t

val pp_emission : Format.formatter -> emission -> unit

type t

val create : Backup_group.t -> t

val process_change : t -> Bgp.Rib.change -> emission option
(** Feed one RIB change (from [Bgp.Rib.apply_update] or
    [Bgp.Rib.withdraw_peer]); returns the update to relay to the
    supercharged router, if any. *)

val process_changes : t -> Bgp.Rib.change list -> emission list

val process_peer_down : t -> Bgp.Rib.t -> peer_id:int -> emission list
(** Withdraws every route of the peer from [rib] (via the RIB's
    per-peer index, so the cost is bounded by the peer's own prefix
    count) and runs each resulting change through {!process_change}. *)

val passthrough : t -> bool

val set_passthrough : t -> Bgp.Rib.t -> bool -> emission list
(** Degradation ladder switch. With passthrough [true] the algorithm
    stops rewriting next hops: every prefix is announced with its best
    route's {e real} next hop, so the downstream router falls back to
    its own O(#prefixes) FIB convergence — the legacy path used while
    the switch is unresponsive. Group bookkeeping continues so nothing
    must be rebuilt on recovery. Toggling returns the re-announcements
    (derived from [rib], one per prefix whose attributes change, in
    prefix order) to relay downstream; toggling to the current mode
    returns []. *)

val last_announced : t -> Net.Prefix.t -> Bgp.Attributes.t option
(** What the router currently believes about a prefix (for tests and
    invariant checks). *)

val iter_announced : t -> (Net.Prefix.t -> Bgp.Attributes.t -> unit) -> unit
(** Visits every prefix currently announced to the router with the
    attributes last sent for it (unspecified order). Introspection for
    the differential checker. *)

val group_of : t -> Net.Prefix.t -> Backup_group.binding option
(** The backup-group binding the prefix's current announcement
    references, if any — [Some] even in passthrough mode, where the
    bookkeeping continues while real next hops are announced. *)

val announced_count : t -> int
(** Prefixes currently announced to the router. *)

val emissions_total : t -> int
(** Total emissions produced since creation. *)
