(** Switch-rule provisioning — installation of backup-group rules and
    the paper's Listing 2 data-plane convergence procedure.

    One rule per backup-group:
    [match(dl_dst = VMAC) → set_dl_dst(selected NH's MAC), output(its
    port)]. The selected next hop is the first {e alive} member of the
    group's tuple; on a peer failure, every group whose selected member
    was the failed peer is re-pointed with a single flow-mod — a
    constant-size update independent of table size. *)

type peer_info = {
  pi_ip : Net.Ipv4.t;
  pi_mac : Net.Mac.t;
  pi_port : int;  (** switch port the peer hangs off *)
}

type t

val create :
  ?rule_priority:int ->
  ?metrics:Obs.Metrics.t ->
  send:(Openflow.Message.t -> unit) ->
  unit ->
  t
(** [send] is the switch control channel (from
    [Openflow.Switch.connect_controller]). [rule_priority] defaults to
    100; [metrics] (default the process-wide registry) receives the
    "provisioner.flow_mods" counter. *)

val declare_peer : t -> peer_info -> unit
(** Registers a peer's data-plane coordinates. Must precede installing
    any group that contains it. *)

val peer : t -> Net.Ipv4.t -> peer_info option
val is_alive : t -> Net.Ipv4.t -> bool

val install_group : t -> Backup_group.binding -> unit
(** Installs (or refreshes) the group's rule, pointing at its first
    alive member. Groups whose declared members are all dead install a
    drop rule.
    @raise Invalid_argument if a member was never {!declare_peer}ed (a
    wiring bug, surfaced loudly). *)

val uninstall_group : t -> Backup_group.binding -> unit
(** Removes the group's rule (strict delete on its VMAC match) — the
    tear-down half of the group lifecycle, issued when a destroyed
    group's rule is garbage-collected. *)

val selected : t -> Backup_group.binding -> Net.Ipv4.t option
(** The member the group's rule currently points at. *)

val fail_peer : t -> Net.Ipv4.t -> Backup_group.binding list -> int
(** Listing 2. Marks the peer dead and re-points every supplied group
    whose selected member was that peer. Returns the number of flow-mods
    issued. *)

val reinstall_groups : t -> Backup_group.binding list -> int
(** Idempotent re-issue: re-sends every supplied group's rule, pointing
    at its first currently-alive member (the rule an earlier — possibly
    lost — flow-mod should have installed). Returns the number of
    flow-mods issued. The controller's retry and blackout-recovery
    paths are built on this. *)

val resync : t -> Backup_group.binding list -> int
(** Full-state reconciliation after a control-channel outage: re-issues
    the strict delete for every {!retired_vmacs} entry (an uninstall the
    outage may have eaten would otherwise leave a stale VMAC rule behind
    forever), then reinstalls every supplied group. Deletes are sent
    before installs so a recycled VMAC's fresh rule survives the sweep.
    Returns the number of flow-mods issued. *)

val retired_vmacs : t -> Net.Mac.t list
(** VMACs whose uninstall has been issued and that no later install has
    reclaimed — rules for these must not exist in a synced switch. *)

val revive_peer : t -> Net.Ipv4.t -> unit
(** Marks a peer alive again (groups are not automatically re-pointed;
    the control plane re-announces and reconverges instead, matching the
    paper's recovery story). *)

val mutate_skip_rewrite : t -> bool -> unit
(** Test-only fault switch for the checker's mutation smoke test: while
    on, {!fail_peer} silently skips re-pointing the {e first} group whose
    selected member failed — exactly the Listing 2 bug the differential
    oracle must catch. Never enable outside tests. *)

val flow_mods_sent : t -> int
