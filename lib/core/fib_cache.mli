(** FIB-size supercharging (§1 of the paper):

    "the size of the router forwarding tables can be increased using a
    SDN switch as a cache (similarly to [ViAggre]). In this case, the
    router table would contain aggregated entries that would get
    resolved in the switch table."

    One (VNH, VMAC) pair acts as the indirection tag. The router is
    announced only coarse {e aggregates} (default /8 covers) whose next
    hop is the indirection VNH, so its flat FIB needs a handful of
    entries; the switch holds the full specific table as rules

    [match(dl_dst = VMAC, nw_dst = prefix) → set_dl_dst(peer), output]

    with priority increasing in prefix length — longest-prefix matching
    evaluated in the switch TCAM. The compression factor is
    #specifics / #aggregates (hundreds at Internet shape). *)

type t

val create :
  ?aggregate_len:int ->
  ?priority_base:int ->
  allocator:Vnh.t ->
  send:(Openflow.Message.t -> unit) ->
  unit ->
  t
(** [aggregate_len] (default 8) is the mask length aggregates are cut
    at; [priority_base] (default 1000) anchors the per-length rule
    priorities, so they sit above the convergence rules. One (VNH, VMAC)
    pair is drawn from [allocator] as the indirection tag. *)

val vnh : t -> Net.Ipv4.t
(** Announce aggregates towards the router with this next hop (its ARP
    resolves to {!vmac} through the usual responder path). *)

val vmac : t -> Net.Mac.t

val declare_peer : t -> Provisioner.peer_info -> unit

type emission =
  | Announce_aggregate of Net.Prefix.t
  | Withdraw_aggregate of Net.Prefix.t

val route : t -> Net.Prefix.t -> Net.Ipv4.t option -> emission list
(** [route t prefix (Some nh)] binds the specific prefix to the peer:
    a fresh binding installs its switch rule with [Add], a re-route to
    a different peer updates the installed rule with [Modify_strict],
    and a re-route to the same peer is a no-op (no flow-mod, no
    [rules_sent] tick). [None] removes the binding. Returns the
    aggregate announcements/withdrawals the change implies for the
    router ([Announce_aggregate] when a cover gains its first specific,
    [Withdraw_aggregate] when it loses its last).
    @raise Invalid_argument for an undeclared peer. *)

val resolve : t -> Net.Ipv4.t -> Net.Ipv4.t option
(** The peer a destination currently resolves to (longest match over
    the specifics) — what the switch rules implement. Zero-alloc flat
    lookup, so also safe on per-packet paths. *)

val resolve_batch : t -> Net.Ipv4.t array -> Net.Ipv4.t option array -> unit
(** [resolve_batch t addrs out] resolves a burst in one pass, writing
    [resolve t addrs.(i)] into [out.(i)].
    @raise Invalid_argument if [out] is shorter than [addrs]. *)

val specifics : t -> int
(** Specific prefixes held in the switch. *)

val aggregates : t -> int
(** Aggregate entries the router holds. *)

val compression_factor : t -> float
(** [specifics / aggregates]. *)

val rules_sent : t -> int
(** Flow-mods actually emitted (adds, in-place modifies, deletes).
    Idempotent re-routes are not counted — the figure matches the
    number of messages the switch really had to process. *)
