module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

module Prefix_tbl = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

type upstream = {
  up_peer : Bgp.Speaker.peer;
  up_ip : Net.Ipv4.t;
  up_import_local_pref : int option;
}

type downstream = {
  down_peer : Bgp.Speaker.peer;
  mutable down_pending : Bgp.Message.update list; (* reversed, until established *)
}

type mode = Supercharged | Degraded

let pp_mode ppf = function
  | Supercharged -> Fmt.string ppf "supercharged"
  | Degraded -> Fmt.string ppf "degraded"

(* A barrier whose reply the controller is still waiting for. Failover
   barriers carry the failed peer (so a timeout can re-issue that
   failover's rewrites) and the BFD-down instant (for the latency
   histogram); degraded-mode probes carry neither. *)
type pending_ack = {
  pa_xid : int;
  pa_failed : Net.Ipv4.t option;
  pa_down_at : Sim.Time.t option;
  pa_attempt : int;
  mutable pa_timer : Sim.Engine.handle option;
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  reroute_latency : Sim.Time.t;
  group_linger : Sim.Time.t;
  ack_timeout : Sim.Time.t;
  ack_max_retries : int;
  bfd_debounce : Sim.Time.t;
  probe_interval : Sim.Time.t;
  bfd_detect_mult : int;
  bfd_tx_interval : Sim.Time.t;
  speaker : Bgp.Speaker.t;
  rib : Bgp.Rib.t;
  groups : Backup_group.t;
  algorithm : Algorithm.t;
  mutable provisioner : Provisioner.t option;
  mutable to_switch : (Openflow.Message.t -> unit) option;
  mutable upstreams : upstream list; (* reversed *)
  mutable downstreams : downstream list; (* reversed *)
  mutable dataplane : Router.Endhost.t option;
  bfd_sessions : Bfd.Session.t Ip_table.t;
  mutable failed : Net.Ipv4.t list;
  adj_rib_in : Bgp.Attributes.t Prefix_tbl.t Ip_table.t;
      (* soft-reconfiguration inbound: each peer's current advertisements
         (post-import-policy), maintained on every update whether the
         peer is up or BFD-failed. The BGP session survives a data-plane
         failure, so the peer never re-sends after one; this shadow is
         the only way the slow path's RIB withdrawal can be undone on
         recovery. *)
  mutable igp_cost_fn : (Net.Ipv4.t -> int) option;
  mutable failover_cb : (failed:Net.Ipv4.t -> flow_mods:int -> unit) option;
  mutable failovers : int;
  mutable updates_processed : int;
  mutable started : bool;
  mutable next_xid : int;
  mutable mode : mode;
  mutable pending_acks : pending_ack list;
  mutable slow_path_waits : (Net.Ipv4.t * Sim.Engine.handle) list;
      (* debounced per-peer RIB withdrawals; cancelled by a flap's Up *)
  mutable inflight_transitions : int;
      (* reroute/repair callbacks scheduled but not yet run *)
  mutable probe_task : Sim.Engine.handle option;
  m_updates : Obs.Metrics.counter;
  m_updates_sent : Obs.Metrics.counter;
  m_emissions : Obs.Metrics.counter;
  m_groups_live : Obs.Metrics.gauge;
  m_failover : Obs.Histogram.t;
  m_ack_timeouts : Obs.Metrics.counter;
  m_rule_retries : Obs.Metrics.counter;
  m_degradations : Obs.Metrics.counter;
  m_recoveries : Obs.Metrics.counter;
  m_flaps_suppressed : Obs.Metrics.counter;
}

let trace t fmt =
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"controller" fmt

let create engine ~name ~asn ~router_id ?(group_size = 2)
    ?(reroute_latency = Sim.Time.of_ms 25) ?(group_linger = Sim.Time.of_sec 5.0)
    ?(ack_timeout = Sim.Time.of_ms 100) ?(ack_max_retries = 3)
    ?(bfd_debounce = Sim.Time.of_ms 100) ?(probe_interval = Sim.Time.of_ms 250)
    ?(bfd_detect_mult = 3) ?(bfd_tx_interval = Sim.Time.of_ms 40) ?vnh_pool
    ?vmac_base () =
  if ack_max_retries < 1 then invalid_arg "Controller.create: ack_max_retries";
  let allocator = Vnh.create ?pool:vnh_pool ?vmac_base () in
  let groups = Backup_group.create ~group_size allocator in
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    name;
    reroute_latency;
    group_linger;
    ack_timeout;
    ack_max_retries;
    bfd_debounce;
    probe_interval;
    bfd_detect_mult;
    bfd_tx_interval;
    speaker = Bgp.Speaker.create engine ~name ~asn ~router_id ();
    rib = Bgp.Rib.create ();
    groups;
    algorithm = Algorithm.create groups;
    provisioner = None;
    to_switch = None;
    upstreams = [];
    downstreams = [];
    dataplane = None;
    bfd_sessions = Ip_table.create 8;
    failed = [];
    adj_rib_in = Ip_table.create 4;
    igp_cost_fn = None;
    failover_cb = None;
    failovers = 0;
    updates_processed = 0;
    started = false;
    next_xid = 1;
    mode = Supercharged;
    pending_acks = [];
    slow_path_waits = [];
    inflight_transitions = 0;
    probe_task = None;
    m_updates = Obs.Metrics.counter metrics "controller.updates_processed";
    m_updates_sent = Obs.Metrics.counter metrics "controller.updates_sent";
    m_emissions = Obs.Metrics.counter metrics "controller.emissions";
    m_groups_live = Obs.Metrics.gauge metrics "controller.groups_live";
    m_failover = Obs.Metrics.histogram metrics "controller.failover_seconds";
    m_ack_timeouts = Obs.Metrics.counter metrics "controller.ack_timeouts";
    m_rule_retries = Obs.Metrics.counter metrics "controller.rule_retries";
    m_degradations = Obs.Metrics.counter metrics "controller.degradations";
    m_recoveries = Obs.Metrics.counter metrics "controller.recoveries";
    m_flaps_suppressed = Obs.Metrics.counter metrics "controller.bfd_flaps_suppressed";
  }

let name t = t.name

let provisioner_exn t =
  match t.provisioner with
  | Some p -> p
  | None -> invalid_arg (t.name ^ ": switch not connected")

(* --- relaying emissions to the supercharged router(s) ----------------- *)

(* Consecutive emissions of the same kind are packed into a single
   UPDATE, like a real speaker would: announcements sharing attributes
   become one attribute block with many NLRI, and runs of withdrawals
   become one message's [withdrawn] list. *)
type emission_run =
  | No_run
  | Announce_run of Bgp.Attributes.t * Net.Prefix.t list (* NLRI reversed *)
  | Withdraw_run of Net.Prefix.t list (* reversed *)

let updates_of_emissions emissions =
  let flush run acc =
    match run with
    | No_run -> acc
    | Announce_run (attrs, nlri) ->
      Bgp.Message.{ withdrawn = []; attrs = Some attrs; nlri = List.rev nlri } :: acc
    | Withdraw_run ps ->
      Bgp.Message.{ withdrawn = List.rev ps; attrs = None; nlri = [] } :: acc
  in
  let rec walk acc run emissions =
    match emissions, run with
    | [], run -> List.rev (flush run acc)
    | Algorithm.Withdraw p :: rest, Withdraw_run ps ->
      walk acc (Withdraw_run (p :: ps)) rest
    | Algorithm.Withdraw p :: rest, run -> walk (flush run acc) (Withdraw_run [p]) rest
    | Algorithm.Announce (p, attrs) :: rest, Announce_run (cur_attrs, nlri)
      when Bgp.Attributes.equal attrs cur_attrs ->
      walk acc (Announce_run (cur_attrs, p :: nlri)) rest
    | Algorithm.Announce (p, attrs) :: rest, run ->
      walk (flush run acc) (Announce_run (attrs, [p])) rest
  in
  walk [] No_run emissions

let send_to_downstream (d : downstream) update =
  if Bgp.Session.state d.down_peer.session = Bgp.Session.Established then
    Bgp.Session.send_update d.down_peer.session update
  else d.down_pending <- update :: d.down_pending

let relay_emissions t emissions =
  Obs.Metrics.incr t.m_emissions ~by:(List.length emissions);
  Obs.Metrics.set t.m_groups_live (float_of_int (Backup_group.live_count t.groups));
  match updates_of_emissions emissions with
  | [] -> ()
  | updates ->
    let n_updates = List.length updates in
    List.iter
      (fun d ->
        Obs.Metrics.incr t.m_updates_sent ~by:n_updates;
        List.iter (fun u -> send_to_downstream d u) updates)
      (List.rev t.downstreams)

(* --- upstream update processing (decision process + Listing 1) -------- *)

let import_policy (up : upstream) (u : Bgp.Message.update) =
  match up.up_import_local_pref, u.attrs with
  | Some lp, Some attrs ->
    { u with Bgp.Message.attrs = Some { attrs with Bgp.Attributes.local_pref = Some lp } }
  | _ -> u

let peer_router_id (peer : Bgp.Speaker.peer) =
  match Bgp.Session.peer peer.session with
  | Some o -> o.Bgp.Message.router_id
  | None -> Net.Ipv4.any

(* --- failure handling (Listing 2 + retry ladder + slow path) ----------- *)

(* Bracket the failover's flow-mods with a barrier: the switch answers
   it only after every queued rule change has been applied, so the
   barrier reply timestamps the instant the data plane actually
   converged. The controller is no longer optimistic about that reply:
   each barrier is tracked, and a missing reply re-issues the rewrites
   idempotently with exponential backoff until, after [ack_max_retries]
   attempts, the controller degrades to the legacy path. *)
let rec send_tracked_barrier t ?failed ?down_at ~attempt () =
  match t.to_switch with
  | None -> ()
  | Some send ->
    let xid = t.next_xid in
    t.next_xid <- t.next_xid + 1;
    let pa =
      { pa_xid = xid; pa_failed = failed; pa_down_at = down_at;
        pa_attempt = attempt; pa_timer = None }
    in
    t.pending_acks <- pa :: t.pending_acks;
    let timeout = Sim.Time.mul t.ack_timeout (1 lsl min (attempt - 1) 16) in
    pa.pa_timer <-
      Some (Sim.Engine.schedule_after t.engine timeout (fun () ->
                handle_ack_timeout t pa));
    send (Openflow.Message.Barrier_request xid)

and handle_ack_timeout t pa =
  if List.memq pa t.pending_acks then begin
    t.pending_acks <- List.filter (fun p -> p != pa) t.pending_acks;
    Obs.Metrics.incr t.m_ack_timeouts;
    trace t "%s: barrier %d unanswered (attempt %d/%d)" t.name pa.pa_xid
      pa.pa_attempt t.ack_max_retries;
    if pa.pa_attempt < t.ack_max_retries then begin
      (* Re-issue the rewrites this barrier brackets. Every path is
         idempotent, so a retry that crosses an already-applied flow-mod
         is harmless. For a failover barrier the bracketed writes are
         the failed peer's group re-points; for an install/uninstall
         barrier (announcement-created rules, GC deletes) nothing
         identifies the individual writes, so the retry resyncs the
         whole table — otherwise a barrier retry that outlives the
         blackout is answered while the swallowed flow-mods stay lost
         for good. *)
      Obs.Metrics.incr t.m_rule_retries;
      (match pa.pa_failed with
      | Some ip ->
        ignore
          (Provisioner.reinstall_groups (provisioner_exn t)
             (Backup_group.with_member t.groups ip))
      | None ->
        ignore (Provisioner.resync (provisioner_exn t) (Backup_group.all t.groups)));
      send_tracked_barrier t ?failed:pa.pa_failed ?down_at:pa.pa_down_at
        ~attempt:(pa.pa_attempt + 1) ()
    end
    else enter_degraded t
  end

(* The switch has stopped answering: fall back to the legacy path. The
   algorithm re-announces every prefix with its best route's real next
   hop, so the downstream router converges through its own O(#prefixes)
   FIB — slower, but correct without any switch rule. Probes keep
   testing the switch; the first answered barrier triggers recovery. *)
and enter_degraded t =
  if t.mode = Supercharged then begin
    t.mode <- Degraded;
    Obs.Metrics.incr t.m_degradations;
    trace t "%s: switch unresponsive; degrading to the legacy path" t.name;
    relay_emissions t (Algorithm.set_passthrough t.algorithm t.rib true);
    if Option.is_none t.probe_task then
      t.probe_task <-
        Some
          (Sim.Engine.every t.engine ~interval:t.probe_interval (fun () ->
               send_tracked_barrier t ~attempt:t.ack_max_retries ()))
  end

and recover t =
  if t.mode = Degraded then begin
    t.mode <- Supercharged;
    Obs.Metrics.incr t.m_recoveries;
    (match t.probe_task with Some h -> Sim.Engine.cancel h | None -> ());
    t.probe_task <- None;
    (* Everything still pending belongs to the blackout epoch; a stale
       probe timing out after recovery must not re-degrade. *)
    List.iter
      (fun pa -> match pa.pa_timer with Some h -> Sim.Engine.cancel h | None -> ())
      t.pending_acks;
    t.pending_acks <- [];
    (* Rules first, announcements second: the router must never tag
       with a VMAC whose rule was eaten by the blackout. The resync
       covers every registered group — not only the referenced ones,
       since a linger-period rule must survive — and re-deletes retired
       VMACs whose uninstall the blackout may have swallowed. *)
    let reinstalled =
      Provisioner.resync (provisioner_exn t) (Backup_group.all t.groups)
    in
    relay_emissions t (Algorithm.set_passthrough t.algorithm t.rib false);
    trace t "%s: switch answering again; re-installed %d rules, supercharged mode"
      t.name reinstalled;
    (* Bracket the re-installation itself: if the switch goes dark again
       the ladder restarts from a fresh barrier. *)
    send_tracked_barrier t ~attempt:1 ()
  end

and handle_barrier_reply t xid =
  match List.find_opt (fun pa -> pa.pa_xid = xid) t.pending_acks with
  | None -> () (* stale or duplicated reply *)
  | Some pa ->
    t.pending_acks <- List.filter (fun p -> p != pa) t.pending_acks;
    (match pa.pa_timer with Some h -> Sim.Engine.cancel h | None -> ());
    (match pa.pa_down_at with
    | Some down_at ->
      let latency = Sim.Time.sub (Sim.Engine.now t.engine) down_at in
      Obs.Histogram.observe t.m_failover (Sim.Time.to_sec latency);
      trace t "%s: failover data plane converged %.3f ms after detection" t.name
        (Sim.Time.to_ms latency)
    | None -> ());
    if t.mode = Degraded then recover t

(* --- upstream update processing (decision process + Listing 1) -------- *)

let flow_mods_now t =
  match t.provisioner with Some p -> Provisioner.flow_mods_sent p | None -> 0

(* Every batch of switch writes is bracketed by a tracked barrier: if the
   switch (or the control channel) eats a flow-mod, the missing reply
   climbs the retry ladder, degrades the controller and the recovery
   resync repairs the table. Without this, a rule installed by a plain
   announcement — no failover, hence no failover barrier — could vanish
   silently. *)
let with_install_barrier t f =
  let before = flow_mods_now t in
  let r = f () in
  if flow_mods_now t > before then send_tracked_barrier t ~attempt:1 ();
  r

let adj_rib_of t ip =
  match Ip_table.find_opt t.adj_rib_in ip with
  | Some tbl -> tbl
  | None ->
    let tbl = Prefix_tbl.create 16 in
    Ip_table.replace t.adj_rib_in ip tbl;
    tbl

let record_adj_rib_in t (up : upstream) (u : Bgp.Message.update) =
  let adj = adj_rib_of t up.up_ip in
  List.iter (fun p -> Prefix_tbl.remove adj p) u.Bgp.Message.withdrawn;
  match u.Bgp.Message.attrs with
  | Some attrs ->
    List.iter (fun p -> Prefix_tbl.replace adj p attrs) u.Bgp.Message.nlri
  | None -> ()

let igp_cost_of t (attrs : Bgp.Attributes.t) =
  match t.igp_cost_fn with
  | Some cost_of -> cost_of attrs.Bgp.Attributes.next_hop
  | None -> 0

let handle_upstream_update t (up : upstream) update =
  t.updates_processed <- t.updates_processed + 1;
  Obs.Metrics.incr t.m_updates;
  let update = import_policy up update in
  record_adj_rib_in t up update;
  if List.exists (Net.Ipv4.equal up.up_ip) t.failed then
    (* BFD declared the peer down but its BGP session still delivered an
       update (the session does not reset on a data-plane failure).
       Applying it would route via a dead next hop; the Adj-RIB-In just
       recorded it and the recovery resync will apply it. *)
    ()
  else begin
    let igp_cost =
      match update.Bgp.Message.attrs with
      | Some attrs -> igp_cost_of t attrs
      | None -> 0
    in
    let changes =
      Bgp.Rib.apply_update t.rib ~peer_id:up.up_peer.id
        ~peer_router_id:(peer_router_id up.up_peer) ~igp_cost update
    in
    with_install_barrier t (fun () ->
        relay_emissions t (Algorithm.process_changes t.algorithm changes))
  end

(* Bring the RIB back in line with the peer's Adj-RIB-In after BFD saw
   the peer again. The slow path withdrew the peer's routes (or a
   debounced withdrawal was cancelled in time — then this is a no-op:
   [Rib.announce] ignores identical re-announcements), and the session
   never reset, so nothing else would ever re-send them. Equivalent to a
   route-refresh against the stored inbound state. *)
let resync_peer_routes t (up : upstream) =
  let adj = adj_rib_of t up.up_ip in
  let peer_id = up.up_peer.id in
  let stale =
    List.filter
      (fun p -> not (Prefix_tbl.mem adj p))
      (Bgp.Rib.peer_prefixes t.rib ~peer_id)
  in
  let withdrawals =
    List.filter_map (fun p -> Bgp.Rib.withdraw t.rib p ~peer_id) stale
  in
  let announcements =
    Prefix_tbl.fold
      (fun prefix attrs acc ->
        Bgp.Rib.apply_update t.rib ~peer_id
          ~peer_router_id:(peer_router_id up.up_peer)
          ~igp_cost:(igp_cost_of t attrs)
          { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }
        @ acc)
      adj []
  in
  match withdrawals @ announcements with
  | [] -> ()
  | changes ->
    with_install_barrier t (fun () ->
        relay_emissions t (Algorithm.process_changes t.algorithm changes))

(* Wire a live IGP node into the decision process. Costs come from the
   node's memoized SPF table (one Dijkstra per database change, however
   many routes are ranked), and every IGP topology change re-ranks the
   stored routes — hot-potato routing — by replaying each upstream's
   Adj-RIB-In against the new costs: [resync_peer_routes] re-announces
   with fresh [igp_cost] and [Rib.announce] turns no-op re-announcements
   into zero churn, so only genuinely re-ranked prefixes move. *)
let attach_igp t node =
  t.igp_cost_fn <-
    Some
      (fun nh ->
        match Igp.Node.distance_to node nh with
        | Some d -> d
        (* An IGP-unreachable next hop ranks below every reachable one
           (half of max_int so the comparison cannot overflow). *)
        | None -> max_int / 2);
  Igp.Node.on_change node (fun _distances ->
      List.iter (fun up -> resync_peer_routes t up) t.upstreams)

(* The slow path is debounced: it only withdraws the peer's routes once
   the failure has persisted for [bfd_debounce]. A spurious BFD flap
   (Down immediately followed by Up) therefore costs two cheap rule
   re-points and zero RIB/BGP churn. *)
let run_slow_path t failed_ip =
  t.slow_path_waits <-
    List.filter (fun (ip, _) -> not (Net.Ipv4.equal ip failed_ip)) t.slow_path_waits;
  if List.exists (Net.Ipv4.equal failed_ip) t.failed then
    match
      List.find_opt (fun up -> Net.Ipv4.equal up.up_ip failed_ip) t.upstreams
    with
    | Some up ->
      with_install_barrier t (fun () ->
          relay_emissions t
            (Algorithm.process_peer_down t.algorithm t.rib ~peer_id:up.up_peer.id))
    | None -> ()
  else begin
    (* Recovered before the debounce fired without a cancellable wait:
       the flap is absorbed with the RIB untouched. *)
    Obs.Metrics.incr t.m_flaps_suppressed;
    trace t "%s: flap of %a absorbed; slow path skipped" t.name Net.Ipv4.pp
      failed_ip
  end

let handle_peer_failure t failed_ip =
  if not (List.exists (Net.Ipv4.equal failed_ip) t.failed) then begin
    t.failed <- failed_ip :: t.failed;
    let down_at = Sim.Engine.now t.engine in
    trace t "%s: peer %a failed; scheduling reroute" t.name Net.Ipv4.pp failed_ip;
    t.inflight_transitions <- t.inflight_transitions + 1;
    ignore
      (Sim.Engine.schedule_after t.engine t.reroute_latency (fun () ->
           t.inflight_transitions <- t.inflight_transitions - 1;
           (* Data-plane convergence first (Listing 2)... *)
           let flow_mods =
             Provisioner.fail_peer (provisioner_exn t) failed_ip
               (Backup_group.with_member t.groups failed_ip)
           in
           t.failovers <- t.failovers + 1;
           send_tracked_barrier t ~failed:failed_ip ~down_at ~attempt:1 ();
           trace t "%s: rerouted %d backup-groups away from %a" t.name flow_mods
             Net.Ipv4.pp failed_ip;
           (match t.failover_cb with
           | Some f -> f ~failed:failed_ip ~flow_mods
           | None -> ());
           (* ...then the slow path, debounced against flaps: withdraw
              the peer's routes so the router reconverges in the
              background. *)
           let wait =
             Sim.Engine.schedule_after t.engine t.bfd_debounce (fun () ->
                 run_slow_path t failed_ip)
           in
           t.slow_path_waits <- (failed_ip, wait) :: t.slow_path_waits))
  end

let handle_peer_recovery t revived_ip =
  if List.exists (Net.Ipv4.equal revived_ip) t.failed then begin
    t.failed <- List.filter (fun ip -> not (Net.Ipv4.equal ip revived_ip)) t.failed;
    (match
       List.find_opt (fun (ip, _) -> Net.Ipv4.equal ip revived_ip) t.slow_path_waits
     with
    | Some (_, wait) ->
      Sim.Engine.cancel wait;
      t.slow_path_waits <-
        List.filter
          (fun (ip, _) -> not (Net.Ipv4.equal ip revived_ip))
          t.slow_path_waits;
      Obs.Metrics.incr t.m_flaps_suppressed;
      trace t "%s: flap of %a suppressed within debounce" t.name Net.Ipv4.pp
        revived_ip
    | None -> ());
    trace t "%s: peer %a recovered; scheduling repair" t.name Net.Ipv4.pp revived_ip;
    t.inflight_transitions <- t.inflight_transitions + 1;
    ignore
      (Sim.Engine.schedule_after t.engine t.reroute_latency (fun () ->
           t.inflight_transitions <- t.inflight_transitions - 1;
           let p = provisioner_exn t in
           Provisioner.revive_peer p revived_ip;
           (* Re-point every group whose preferred member is alive again
              (the inverse of Listing 2)... *)
           with_install_barrier t (fun () ->
               List.iter
                 (fun binding ->
                   let preferred =
                     List.find_opt (Provisioner.is_alive p)
                       binding.Backup_group.next_hops
                   in
                   match preferred, Provisioner.selected p binding with
                   | Some want, Some got when not (Net.Ipv4.equal want got) ->
                     Provisioner.install_group p binding
                   | Some _, None -> Provisioner.install_group p binding
                   | _ -> ())
                 (Backup_group.with_member t.groups revived_ip));
           (* ...then restore the peer's routes from its Adj-RIB-In —
              rules first, announcements second. Covers both the routes
              the slow path withdrew and any update the session
              delivered while BFD had the peer down. *)
           match
             List.find_opt (fun up -> Net.Ipv4.equal up.up_ip revived_ip) t.upstreams
           with
           | Some up -> resync_peer_routes t up
           | None -> ()))
  end

(* --- switch interaction ------------------------------------------------ *)

let handle_packet_in t send_to_switch ~in_port (frame : Net.Ethernet.frame) =
  match frame.payload with
  | Net.Ethernet.Arp arp -> (
    match Arp_responder.handle t.groups arp with
    | Arp_responder.Reply reply ->
      let out =
        Net.Ethernet.make ~src:reply.Net.Arp.sender_mac ~dst:reply.Net.Arp.target_mac
          (Net.Ethernet.Arp reply)
      in
      send_to_switch
        (Openflow.Message.Packet_out
           { actions = [Openflow.Action.Output in_port]; frame = out })
    | Arp_responder.Flood ->
      send_to_switch
        (Openflow.Message.Packet_out { actions = [Openflow.Action.Flood]; frame })
    | Arp_responder.Ignore -> ())
  | Net.Ethernet.Ipv4 _ -> (
    (* Reactive fallback: a VMAC-tagged packet that raced ahead of its
       rule installation is forwarded by the controller itself. *)
    match Backup_group.find_by_vmac t.groups frame.dst with
    | Some binding -> (
      let p = provisioner_exn t in
      match Provisioner.selected p binding with
      | Some ip -> (
        match Provisioner.peer p ip with
        | Some info ->
          send_to_switch
            (Openflow.Message.Packet_out
               {
                 actions =
                   [
                     Openflow.Action.Set_dl_dst info.Provisioner.pi_mac;
                     Openflow.Action.Output info.Provisioner.pi_port;
                   ];
                 frame;
               })
        | None -> ())
      | None -> ())
    | None -> ())

let through_of_codec t msg =
  match Openflow.Codec.decode_exact (Openflow.Codec.encode msg) with
  | Ok decoded -> decoded
  | Error err ->
    invalid_arg
      (Fmt.str "%s: OpenFlow message failed codec round-trip: %a" t.name
         Net.Wire.pp_error err)

let connect_switch ?(use_codec = false) ?faults t switch =
  (* An injector on the OpenFlow control path sees both directions:
     flow-mods and barriers towards the switch, packet-ins and barrier
     replies back. Dropped flow-mods are what the retry ladder exists
     for; extra copies and delays exercise its idempotence. *)
  let with_faults f =
    match faults with
    | None -> f
    | Some injector ->
      fun msg ->
        (match Sim.Faults.plan injector with
        | Sim.Faults.Drop -> ()
        | Sim.Faults.Deliver extras ->
          List.iter
            (fun extra ->
              if Sim.Time.equal extra Sim.Time.zero then f msg
              else
                ignore
                  (Sim.Engine.schedule_after t.engine extra (fun () -> f msg)))
            extras)
  in
  let send_ref = ref (fun _ -> ()) in
  let from_switch msg =
    let msg = if use_codec then through_of_codec t msg else msg in
    match msg with
    | Openflow.Message.Packet_in { in_port; frame } ->
      handle_packet_in t !send_ref ~in_port frame
    | Openflow.Message.Barrier_reply xid -> handle_barrier_reply t xid
    | Openflow.Message.Hello | Openflow.Message.Echo_request _
    | Openflow.Message.Echo_reply _ | Openflow.Message.Features_request
    | Openflow.Message.Features_reply _ | Openflow.Message.Flow_mod _
    | Openflow.Message.Packet_out _ | Openflow.Message.Barrier_request _ ->
      ()
  in
  let raw_send =
    Openflow.Switch.connect_controller switch (with_faults from_switch)
  in
  let send =
    with_faults (fun msg ->
        raw_send (if use_codec then through_of_codec t msg else msg))
  in
  send_ref := send;
  t.to_switch <- Some send;
  let provisioner = Provisioner.create ~metrics:(Sim.Engine.metrics t.engine) ~send () in
  t.provisioner <- Some provisioner;
  (* Rules must exist before the router can tag traffic with a fresh
     VMAC: installation is triggered directly by group creation. *)
  Backup_group.on_create t.groups (fun binding ->
      Provisioner.install_group provisioner binding);
  (* Groups nobody references any more are garbage-collected after a
     linger period. The linger matters: the router keeps tagging with
     the old VMAC until its own FIB catches up with the slow-path
     re-announcements, so the rule must outlive the reference by a
     grace interval rather than vanish immediately. A group re-acquired
     while idle survives ([destroy] refuses). *)
  Backup_group.on_idle t.groups (fun binding ->
      ignore
        (Sim.Engine.schedule_after t.engine t.group_linger (fun () ->
             if Backup_group.destroy t.groups binding then begin
               Provisioner.uninstall_group provisioner binding;
               (* Track the delete like any other write: a blackout that
                  eats it would otherwise leave the stale VMAC rule
                  installed forever (resync re-deletes retired VMACs). *)
               send_tracked_barrier t ~attempt:1 ();
               Obs.Metrics.set t.m_groups_live
                 (float_of_int (Backup_group.live_count t.groups));
               trace t "%s: collected idle group %a" t.name Backup_group.pp_binding
                 binding
             end)))

let attach_dataplane t endhost =
  t.dataplane <- Some endhost;
  Router.Endhost.on_udp endhost (fun ~src (u : Net.Udp.t) ->
      if u.dst_port = Bfd.Packet.udp_port then
        match Ip_table.find_opt t.bfd_sessions src with
        | Some session -> (
          match Bfd.Packet.decode u.payload with
          | Ok pkt -> Bfd.Session.receive session pkt
          | Error _ -> ())
        | None -> ())

let add_upstream_peer t ~name ~ip ~mac ~switch_port ~channel ~side
    ?import_local_pref ?hold_time () =
  let peer = Bgp.Speaker.add_peer t.speaker ~name ~channel ~side ?hold_time () in
  let up = { up_peer = peer; up_ip = ip; up_import_local_pref = import_local_pref } in
  t.upstreams <- up :: t.upstreams;
  (match t.provisioner with
  | Some p ->
    Provisioner.declare_peer p { Provisioner.pi_ip = ip; pi_mac = mac; pi_port = switch_port }
  | None -> invalid_arg (t.name ^ ": connect_switch before add_upstream_peer"));
  peer

let add_router t ~name ~channel ~side ?hold_time () =
  let peer = Bgp.Speaker.add_peer t.speaker ~name ~channel ~side ?hold_time () in
  let d = { down_peer = peer; down_pending = [] } in
  t.downstreams <- d :: t.downstreams;
  peer

let setup_callbacks t =
  Bgp.Speaker.on_update t.speaker (fun peer update ->
      match List.find_opt (fun up -> up.up_peer.id = peer.id) t.upstreams with
      | Some up -> handle_upstream_update t up update
      | None -> () (* updates from routers are not expected *));
  Bgp.Speaker.on_peer_down t.speaker (fun peer _reason ->
      match List.find_opt (fun up -> up.up_peer.id = peer.id) t.upstreams with
      | Some up -> handle_peer_failure t up.up_ip
      | None -> ());
  Bgp.Speaker.on_peer_established t.speaker (fun peer ->
      match List.find_opt (fun d -> d.down_peer.id = peer.id) t.downstreams with
      | Some d ->
        let pending = List.rev d.down_pending in
        d.down_pending <- [];
        List.iter (fun u -> Bgp.Session.send_update d.down_peer.session u) pending
      | None -> ())

let enable_bfd t =
  match t.dataplane with
  | None -> ()
  | Some endhost ->
    List.iter
      (fun up ->
        if not (Ip_table.mem t.bfd_sessions up.up_ip) then begin
          let discriminator = Int32.of_int (Ip_table.length t.bfd_sessions + 1) in
          let send pkt =
            Router.Endhost.send_udp endhost ~dst:up.up_ip
              ~src_port:(49152 + Int32.to_int discriminator)
              ~dst_port:Bfd.Packet.udp_port (Bfd.Packet.encode pkt)
          in
          let session =
            Bfd.Session.create t.engine
              ~name:(Fmt.str "%s-bfd-%a" t.name Net.Ipv4.pp up.up_ip)
              ~local_discriminator:discriminator ~detect_mult:t.bfd_detect_mult
              ~tx_interval:t.bfd_tx_interval ~send ()
          in
          Ip_table.replace t.bfd_sessions up.up_ip session;
          let ip = up.up_ip in
          Bfd.Session.on_state_change session (fun state _diag ->
              match state with
              | Bfd.Packet.Down ->
                if Bfd.Session.packets_received session > 0 then
                  handle_peer_failure t ip
              | Bfd.Packet.Up -> handle_peer_recovery t ip
              | Bfd.Packet.Init | Bfd.Packet.Admin_down -> ());
          Bfd.Session.enable session
        end)
      t.upstreams

let arp_punt_rule =
  Openflow.Flow_table.flow_mod ~priority:200 Openflow.Flow_table.Add
    (Openflow.Ofmatch.make ~dl_type:0x0806 ~nw_proto:1 ())
    [Openflow.Action.To_controller]

let start t =
  if not t.started then begin
    t.started <- true;
    setup_callbacks t;
    (match t.to_switch with
    | Some send ->
      (* The ARP punt rule makes every ARP request visible to the
         responder; replies keep flowing through the plain L2 rules. *)
      send (Openflow.Message.Flow_mod arp_punt_rule)
    | None -> invalid_arg (t.name ^ ": connect_switch before start"));
    Bgp.Speaker.start t.speaker;
    enable_bfd t
  end

let rib t = t.rib
let groups t = t.groups
let algorithm t = t.algorithm
let provisioner t = provisioner_exn t
let mode t = t.mode
let degraded t = t.mode = Degraded
let bfd_session t ip = Ip_table.find_opt t.bfd_sessions ip

let quiescent t =
  t.mode = Supercharged
  && t.pending_acks = []
  && t.slow_path_waits = []
  && t.inflight_transitions = 0

let set_igp_cost_fn t f = t.igp_cost_fn <- Some f

let on_failover t f = t.failover_cb <- Some f
let failovers_handled t = t.failovers
let updates_processed t = t.updates_processed
