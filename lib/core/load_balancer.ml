module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type flow_key = {
  fk_src : Net.Ipv4.t;
  fk_dst : Net.Ipv4.t;
  fk_src_port : int;
  fk_dst_port : int;
}

type t = {
  rule_priority : int;
  send : Openflow.Message.t -> unit;
  vnh : Net.Ipv4.t;
  vmac : Net.Mac.t;
  mutable targets : Provisioner.peer_info list; (* registration order *)
  loads : int Ip_table.t;
  assignments : (flow_key, Net.Ipv4.t) Hashtbl.t;
  mutable rules : int;
}

let create ?(rule_priority = 300) ~allocator ~send () =
  let vnh, vmac = Vnh.fresh allocator in
  {
    rule_priority;
    send;
    vnh;
    vmac;
    targets = [];
    loads = Ip_table.create 8;
    assignments = Hashtbl.create 256;
    rules = 0;
  }

let vnh t = t.vnh
let vmac t = t.vmac

let send_rule t fm =
  t.rules <- t.rules + 1;
  t.send (Openflow.Message.Flow_mod fm)

let add_target t info =
  t.targets <- t.targets @ [info];
  Ip_table.replace t.loads info.Provisioner.pi_ip 0;
  (* Default rule: tagged traffic without a pinned flow goes to the
     first target (priority just below the per-flow rules). *)
  match t.targets with
  | first :: _ ->
    send_rule t
      (Openflow.Flow_table.flow_mod ~priority:(t.rule_priority - 1)
         Openflow.Flow_table.Add
         (Openflow.Ofmatch.dl_dst t.vmac)
         [
           Openflow.Action.Set_dl_dst first.Provisioner.pi_mac;
           Openflow.Action.Output first.Provisioner.pi_port;
         ])
  | [] -> ()

let flow_key_of_packet (p : Net.Ipv4_packet.t) =
  match p.payload with
  | Net.Ipv4_packet.Udp u ->
    Some
      {
        fk_src = p.src;
        fk_dst = p.dst;
        fk_src_port = u.Net.Udp.src_port;
        fk_dst_port = u.Net.Udp.dst_port;
      }
  | Net.Ipv4_packet.Raw _ -> None

let load t ip = Option.value (Ip_table.find_opt t.loads ip) ~default:0

let least_loaded t =
  match t.targets with
  | [] -> invalid_arg "Load_balancer.assign: no targets"
  | first :: rest ->
    List.fold_left
      (fun best candidate ->
        if load t candidate.Provisioner.pi_ip < load t best.Provisioner.pi_ip then
          candidate
        else best)
      first rest

let assignment t key = Hashtbl.find_opt t.assignments key

let flow_match t key =
  Openflow.Ofmatch.make ~dl_dst:t.vmac
    ~nw_src:(Net.Prefix.make key.fk_src 32)
    ~nw_dst:(Net.Prefix.make key.fk_dst 32)
    ~nw_proto:17 ~tp_src:key.fk_src_port ~tp_dst:key.fk_dst_port ()

let pin t key (target : Provisioner.peer_info) =
  let ip = target.Provisioner.pi_ip in
  Hashtbl.replace t.assignments key ip;
  Ip_table.replace t.loads ip (load t ip + 1);
  send_rule t
    (Openflow.Flow_table.flow_mod ~priority:t.rule_priority Openflow.Flow_table.Add
       (flow_match t key)
       [
         Openflow.Action.Set_dl_dst target.Provisioner.pi_mac;
         Openflow.Action.Output target.Provisioner.pi_port;
       ]);
  ip

let assign t key =
  match assignment t key with
  | Some ip -> ip
  | None -> pin t key (least_loaded t)

let remove_target t ip =
  if List.exists (fun p -> Net.Ipv4.equal p.Provisioner.pi_ip ip) t.targets then begin
    t.targets <-
      List.filter (fun p -> not (Net.Ipv4.equal p.Provisioner.pi_ip ip)) t.targets;
    Ip_table.remove t.loads ip;
    let orphaned =
      Hashtbl.fold
        (fun key tgt acc -> if Net.Ipv4.equal tgt ip then key :: acc else acc)
        t.assignments []
    in
    (* Deterministic reassignment order regardless of hash iteration. *)
    let compare_flow_key a b =
      let c = Net.Ipv4.compare a.fk_src b.fk_src in
      if c <> 0 then c
      else
        let c = Net.Ipv4.compare a.fk_dst b.fk_dst in
        if c <> 0 then c
        else
          let c = Int.compare a.fk_src_port b.fk_src_port in
          if c <> 0 then c else Int.compare a.fk_dst_port b.fk_dst_port
    in
    let orphaned = List.sort compare_flow_key orphaned in
    match t.targets with
    | [] ->
      (* Nothing left to balance over: drop every pinned rule and the
         default rule rather than keep forwarding into a dead port. *)
      List.iter
        (fun key ->
          Hashtbl.remove t.assignments key;
          send_rule t
            (Openflow.Flow_table.flow_mod ~priority:t.rule_priority
               Openflow.Flow_table.Delete_strict (flow_match t key) []))
        orphaned;
      send_rule t
        (Openflow.Flow_table.flow_mod ~priority:(t.rule_priority - 1)
           Openflow.Flow_table.Delete_strict
           (Openflow.Ofmatch.dl_dst t.vmac)
           [])
    | first :: _ ->
      (* Re-point the default rule away from the lost peer, then rebalance
         each orphaned flow least-loaded-first (the Add overwrites the
         flow's old rule in place — same match, same priority). *)
      send_rule t
        (Openflow.Flow_table.flow_mod ~priority:(t.rule_priority - 1)
           Openflow.Flow_table.Add
           (Openflow.Ofmatch.dl_dst t.vmac)
           [
             Openflow.Action.Set_dl_dst first.Provisioner.pi_mac;
             Openflow.Action.Output first.Provisioner.pi_port;
           ]);
      List.iter (fun key -> ignore (pin t key (least_loaded t))) orphaned
  end

let imbalance t =
  let loads = List.map (fun p -> load t p.Provisioner.pi_ip) t.targets in
  match loads with
  | [] -> 0.0
  | _ ->
    let total = List.fold_left ( + ) 0 loads in
    if total = 0 then 1.0
    else
      let mean = float_of_int total /. float_of_int (List.length loads) in
      float_of_int (List.fold_left max 0 loads) /. mean

(* RFC 2992-style modulo hashing over a few header bits — deliberately
   the weak spot the paper points at: skewed traffic (e.g. destinations
   sharing alignment) collapses onto few buckets. *)
let static_hash ~n_targets key =
  if n_targets <= 0 then invalid_arg "Load_balancer.static_hash";
  let low = Int32.to_int (Net.Ipv4.to_int32 key.fk_dst) land 0xFF in
  low mod n_targets

let rules_sent t = t.rules
