type binding = {
  next_hops : Net.Ipv4.t list;
  vnh : Net.Ipv4.t;
  vmac : Net.Mac.t;
  mutable refs : int; (* prefixes currently announced with this VNH *)
}

let pp_binding ppf b =
  Fmt.pf ppf "[%a] -> (%a, %a)"
    Fmt.(list ~sep:(any ",") Net.Ipv4.pp)
    b.next_hops Net.Ipv4.pp b.vnh Net.Mac.pp b.vmac

module Key = struct
  type t = Net.Ipv4.t list

  let equal = List.equal Net.Ipv4.equal

  (* Explicit structural hash: polymorphic Hashtbl.hash must not touch
     abstract net types (determinism discipline, sc_lint). *)
  let hash key =
    List.fold_left (fun h ip -> (h * 31) + Net.Ipv4.hash ip) 17 key land max_int
end

module Key_table = Hashtbl.Make (Key)

module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

module Mac_table = Hashtbl.Make (struct
  type t = Net.Mac.t

  let equal = Net.Mac.equal
  let hash = Net.Mac.hash
end)

type t = {
  allocator : Vnh.t;
  group_size : int;
  by_key : binding Key_table.t;
  by_vnh : binding Ip_table.t;
  by_vmac : binding Mac_table.t;
  mutable order : binding list; (* reversed creation order *)
  mutable live : int; (* bindings with refs > 0 *)
  mutable create_cb : (binding -> unit) option;
  mutable idle_cb : (binding -> unit) option;
}

let create ?(group_size = 2) allocator =
  if group_size < 2 then invalid_arg "Backup_group.create: group_size < 2";
  {
    allocator;
    group_size;
    by_key = Key_table.create 64;
    by_vnh = Ip_table.create 64;
    by_vmac = Mac_table.create 64;
    order = [];
    live = 0;
    create_cb = None;
    idle_cb = None;
  }

let group_size t = t.group_size

let key_of_next_hops t nhs = List.filteri (fun i _ -> i < t.group_size) nhs

let find t nhs = Key_table.find_opt t.by_key (key_of_next_hops t nhs)

let find_or_create t nhs =
  let key = key_of_next_hops t nhs in
  if List.length key < 2 then
    invalid_arg "Backup_group.find_or_create: need at least two next hops";
  match Key_table.find_opt t.by_key key with
  | Some binding -> binding
  | None ->
    let vnh, vmac = Vnh.fresh t.allocator in
    let binding = { next_hops = key; vnh; vmac; refs = 0 } in
    Key_table.replace t.by_key key binding;
    Ip_table.replace t.by_vnh vnh binding;
    Mac_table.replace t.by_vmac vmac binding;
    t.order <- binding :: t.order;
    (match t.create_cb with Some f -> f binding | None -> ());
    binding

let find_by_vnh t vnh = Ip_table.find_opt t.by_vnh vnh
let find_by_vmac t vmac = Mac_table.find_opt t.by_vmac vmac

let all t = List.rev t.order

let with_primary t peer =
  List.filter
    (fun b -> match b.next_hops with nh :: _ -> Net.Ipv4.equal nh peer | [] -> false)
    (all t)

let with_member t peer =
  List.filter (fun b -> List.exists (Net.Ipv4.equal peer) b.next_hops) (all t)

let count t = Key_table.length t.by_key

let acquire t binding =
  if binding.refs = 0 then t.live <- t.live + 1;
  binding.refs <- binding.refs + 1

let release t binding =
  if binding.refs <= 0 then invalid_arg "Backup_group.release: refcount underflow";
  binding.refs <- binding.refs - 1;
  if binding.refs = 0 then begin
    t.live <- t.live - 1;
    match t.idle_cb with Some f -> f binding | None -> ()
  end

let refs binding = binding.refs
let live_count t = t.live

let registered t binding =
  match Key_table.find_opt t.by_key binding.next_hops with
  | Some current -> current == binding
  | None -> false

let destroy t binding =
  if binding.refs = 0 && registered t binding then begin
    Key_table.remove t.by_key binding.next_hops;
    Ip_table.remove t.by_vnh binding.vnh;
    Mac_table.remove t.by_vmac binding.vmac;
    t.order <- List.filter (fun b -> b != binding) t.order;
    Vnh.release t.allocator (binding.vnh, binding.vmac);
    true
  end
  else false

let on_create t f = t.create_cb <- Some f
let on_idle t f = t.idle_cb <- Some f

let theoretical_max ~n_peers ~group_size =
  let rec falling n k = if k = 0 then 1 else n * falling (n - 1) (k - 1) in
  (* Tuples shorter than [group_size] occur when a prefix has fewer
     candidates, so every ordered j-tuple with 2 <= j <= group_size is a
     possible group. *)
  let rec total j acc =
    if j > group_size || j > n_peers then acc
    else total (j + 1) (acc + falling n_peers j)
  in
  total 2 0
