type t = {
  pool : Net.Prefix.t;
  vmac_base : Net.Mac.t;
  mutable next : int; (* next never-used host index to hand out *)
  free : (Net.Ipv4.t * Net.Mac.t) Queue.t; (* released pairs, FIFO *)
}

let default_pool = Net.Prefix.make (Net.Ipv4.of_octets 10 199 0 0) 16

let create ?(pool = default_pool) ?(vmac_base = Net.Mac.of_int64 0x00FF_0000_0000L) () =
  if Net.Prefix.length pool > 24 then invalid_arg "Vnh.create: pool smaller than /24";
  { pool; vmac_base; next = 1; free = Queue.create () }

let capacity t = Net.Prefix.size t.pool - 2 (* skip network and broadcast *)

let fresh t =
  (* Recycled pairs go first, oldest first: FIFO maximises the time
     before a retired VMAC can reappear under a different group, which
     protects in-flight packets still tagged with the old meaning. *)
  match Queue.take_opt t.free with
  | Some pair -> pair
  | None ->
    if t.next > capacity t then failwith "Vnh.fresh: pool exhausted";
    let vnh = Net.Prefix.nth t.pool t.next in
    let vmac =
      Net.Mac.of_int64 (Int64.add (Net.Mac.to_int64 t.vmac_base) (Int64.of_int t.next))
    in
    t.next <- t.next + 1;
    (vnh, vmac)

let release t pair = Queue.add pair t.free

let allocated t = t.next - 1 - Queue.length t.free

let in_pool t ip = Net.Prefix.mem ip t.pool

let is_virtual_mac t mac =
  (* Range check against the high-water mark: a MAC stays recognisable
     as virtual even while its pair sits on the free list, so packets
     tagged just before a release are still classified correctly. *)
  let base = Net.Mac.to_int64 t.vmac_base in
  let m = Net.Mac.to_int64 mac in
  Int64.compare m base > 0
  && Int64.compare m (Int64.add base (Int64.of_int (t.next - 1))) <= 0

let pool t = t.pool
