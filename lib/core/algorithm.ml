type emission =
  | Announce of Net.Prefix.t * Bgp.Attributes.t
  | Withdraw of Net.Prefix.t

let pp_emission ppf = function
  | Announce (p, attrs) -> Fmt.pf ppf "announce %a %a" Net.Prefix.pp p Bgp.Attributes.pp attrs
  | Withdraw p -> Fmt.pf ppf "withdraw %a" Net.Prefix.pp p

module Prefix_table = Hashtbl.Make (struct
  type t = Net.Prefix.t

  let equal = Net.Prefix.equal
  let hash = Net.Prefix.hash
end)

type t = {
  groups : Backup_group.t;
  last_sent : Bgp.Attributes.t Prefix_table.t;
  group_of : Backup_group.binding Prefix_table.t;
      (* the group each announced prefix currently references *)
  mutable emissions : int;
  mutable passthrough : bool;
      (* degraded mode: announce real next hops, no VNH rewrite *)
}

let create groups =
  {
    groups;
    last_sent = Prefix_table.create 4096;
    group_of = Prefix_table.create 4096;
    emissions = 0;
    passthrough = false;
  }

(* First [k] distinct next hops of the ranked candidates, stopping the
   walk as soon as [k] are collected: the backup-group key is the
   [group_size]-truncated tuple, so candidates past the k-th distinct
   next hop can never influence the announcement. This bounds the
   per-change scan at O(candidates × group_size) — with 100+ peers
   contributing candidates for a hot prefix, the old full dedup was
   quadratic in the candidate count. *)
let distinct_next_hops ~k routes =
  let rec dedup found seen = function
    | [] -> List.rev seen
    | _ when found >= k -> List.rev seen
    | r :: rest ->
      let nh = Bgp.Route.next_hop r in
      if List.exists (Net.Ipv4.equal nh) seen then dedup found seen rest
      else dedup (found + 1) (nh :: seen) rest
  in
  dedup 0 [] routes

(* What should be announced, and which backup-group (if any) the
   announcement references. *)
let desired t (after : Bgp.Route.t list) =
  match after with
  | [] -> (None, None)
  | best :: _ -> (
    match distinct_next_hops ~k:(Backup_group.group_size t.groups) after with
    | [] | [_] -> (Some best.attrs, None)
    | nhs ->
      let binding = Backup_group.find_or_create t.groups nhs in
      (* Passthrough (degraded) mode announces the best route's real
         next hop — the legacy O(#prefixes) FIB path — but keeps the
         group bookkeeping alive so recovery can re-announce every VNH
         without rebuilding state. *)
      if t.passthrough then (Some best.attrs, Some binding)
      else
        ( Some (Bgp.Attributes.with_next_hop best.attrs binding.Backup_group.vnh),
          Some binding ))

(* Move the prefix's reference to [binding]: acquire-before-release so a
   swap within the same group never dips the refcount to zero. *)
let update_group_ref t prefix binding =
  let old = Prefix_table.find_opt t.group_of prefix in
  match binding with
  | Some b -> (
    match old with
    | Some o when o == b -> ()
    | _ ->
      Backup_group.acquire t.groups b;
      (match old with Some o -> Backup_group.release t.groups o | None -> ());
      Prefix_table.replace t.group_of prefix b)
  | None -> (
    match old with
    | Some o ->
      Backup_group.release t.groups o;
      Prefix_table.remove t.group_of prefix
    | None -> ())

let process_change t (change : Bgp.Rib.change) =
  let prefix = change.prefix in
  let attrs, binding = desired t change.after in
  update_group_ref t prefix binding;
  match attrs with
  | None ->
    if Prefix_table.mem t.last_sent prefix then begin
      Prefix_table.remove t.last_sent prefix;
      t.emissions <- t.emissions + 1;
      Some (Withdraw prefix)
    end
    else None
  | Some attrs ->
    let unchanged =
      match Prefix_table.find_opt t.last_sent prefix with
      | Some previous -> Bgp.Attributes.equal previous attrs
      | None -> false
    in
    if unchanged then None
    else begin
      Prefix_table.replace t.last_sent prefix attrs;
      t.emissions <- t.emissions + 1;
      Some (Announce (prefix, attrs))
    end

let process_changes t changes = List.filter_map (process_change t) changes

let process_peer_down t rib ~peer_id =
  (* Listing 1's batch over a session loss: [withdraw_peer] walks the
     RIB's per-peer index, so the whole pass costs O(#prefixes routed
     via the peer), not O(table). *)
  process_changes t (Bgp.Rib.withdraw_peer rib ~peer_id)

let passthrough t = t.passthrough

let set_passthrough t rib on =
  if t.passthrough = on then []
  else begin
    t.passthrough <- on;
    (* Re-derive the announcement for every currently announced prefix
       from the RIB; only prefixes whose attributes actually change
       (VNH <-> real NH) emit, and the sort keeps the emission order —
       and so the packed UPDATE stream — deterministic. *)
    let prefixes =
      List.sort Net.Prefix.compare
        (Prefix_table.fold (fun p _ acc -> p :: acc) t.last_sent [])
    in
    List.filter_map
      (fun prefix ->
        let routes = Bgp.Rib.ordered rib prefix in
        process_change t { Bgp.Rib.prefix; before = routes; after = routes })
      prefixes
  end

let last_announced t prefix = Prefix_table.find_opt t.last_sent prefix

let iter_announced t f = Prefix_table.iter f t.last_sent

let group_of t prefix = Prefix_table.find_opt t.group_of prefix

let announced_count t = Prefix_table.length t.last_sent

let emissions_total t = t.emissions
