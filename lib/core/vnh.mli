(** Virtual next-hop (VNH) and virtual MAC (VMAC) allocation.

    Each distinct backup-group is provisioned with one (VNH, VMAC) pair:
    the VNH is what the controller writes into the BGP NEXT_HOP towards
    the router, and the VMAC is what the controller's ARP responder
    resolves it to. Allocation is deterministic — strictly sequential,
    with released pairs recycled in FIFO order — so replicated
    controllers fed the same update stream allocate identical pairs. *)

type t

val create : ?pool:Net.Prefix.t -> ?vmac_base:Net.Mac.t -> unit -> t
(** Defaults: VNHs drawn from [10.199.0.0/16] (host part starting at 1),
    VMACs from [00:ff:00:00:00:01] upward. The pool prefix must be at
    least a /24. *)

val fresh : t -> Net.Ipv4.t * Net.Mac.t
(** The paper's [get_new_vnh_vmac()]. Recycles the oldest released pair
    when one exists, otherwise hands out the next sequential pair.
    @raise Failure when the pool is exhausted. *)

val release : t -> Net.Ipv4.t * Net.Mac.t -> unit
(** Returns a pair to the allocator for later reuse. The caller (the
    backup-group registry) guarantees the pair came from [fresh] and is
    no longer referenced. *)

val allocated : t -> int
(** Pairs currently outstanding (handed out and not released). *)

val in_pool : t -> Net.Ipv4.t -> bool
(** Whether an address could be a VNH of this allocator (it lies in the
    pool), independently of whether it has been handed out yet. *)

val is_virtual_mac : t -> Net.Mac.t -> bool
(** Whether the MAC was allocated by this allocator. *)

val pool : t -> Net.Prefix.t
