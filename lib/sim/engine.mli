(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock. Events scheduled
    for the same instant run in scheduling (FIFO) order, which makes every
    simulation deterministic given its seed — the property the paper's
    controller-replication argument (§3) depends on, and which the
    [Supercharger.Replica] tests exercise. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int64 -> ?trace:Trace.t -> ?metrics:Obs.Metrics.t -> unit -> t
(** [create ()] is a fresh engine at time {!Time.zero}. [seed] (default
    [1L]) seeds the engine's root {!Rng}; [trace] (default a fresh enabled
    trace) receives component events; [metrics] (default a fresh registry)
    collects the run's counters, gauges and histograms. *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The engine's root generator. Components should [Rng.split] it at
    set-up time rather than drawing from it during the run. *)

val trace : t -> Trace.t

val metrics : t -> Obs.Metrics.t
(** The run's metrics registry. Components attached to this engine
    register their counters and histograms here, so every run's numbers
    are isolated from every other run's. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t instant f] runs [f] when the clock reaches [instant].
    Scheduling in the past (or at the current instant) runs [f] at the
    current time, after all previously scheduled current-time events. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] is
    [schedule_at t (Time.add (now t) delay) f]. [delay] must not be
    negative. *)

val cancel : handle -> unit
(** Cancelling an already-run or already-cancelled event is a no-op. *)

val every : t -> ?start:Time.t -> interval:Time.t -> (unit -> unit) -> handle
(** [every t ~interval f] runs [f] at [start] (default [now + interval])
    and then each [interval] until the returned handle is cancelled. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Processes events in time order until the queue is empty, the clock
    would pass [until], or [max_events] have run. Events scheduled exactly
    at [until] are processed. *)

val step : t -> bool
(** Processes a single event. [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued (non-cancelled) events. *)

val events_processed : t -> int
(** Total events run since creation; a cheap progress/cost metric. *)
