(** Deterministic fault injection for simulated transports.

    A fault injector sits on a message path (a {!Bgp.Channel}, the
    OpenFlow control channel, …) and decides, per message, whether to
    deliver it, drop it, delay it, or deliver extra copies. Decisions
    are drawn from the injector's own seeded {!Rng} stream, so a
    scenario is replayable bit-for-bit: the same seed and the same
    traffic produce the same fault schedule. Extra delays reorder
    messages naturally — a delayed message is overtaken by later,
    undelayed ones.

    Every decision is counted both in cheap per-injector counters and
    in the engine's {!Obs.Metrics} registry under
    [faults.<name>.{decisions,dropped,delayed,duplicated}], so two runs
    of the same seeded scenario can be compared counter-for-counter. *)

type profile = {
  label : string;  (** for traces and scenario logs *)
  drop : float;  (** probability a message is dropped, [0, 1] *)
  duplicate : float;  (** probability a second copy is delivered *)
  delay_prob : float;  (** probability a copy gets an extra delay *)
  delay_min : Time.t;  (** extra-delay lower bound (inclusive) *)
  delay_max : Time.t;  (** extra-delay upper bound *)
}

val profile :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_prob:float ->
  ?delay_min:Time.t ->
  ?delay_max:Time.t ->
  string ->
  profile
(** [profile name] is a fault-free profile with the given fields
    overridden. Delay bounds default to 0 and 5 ms.
    @raise Invalid_argument on probabilities outside [0, 1] or
    [delay_min > delay_max]. *)

val none : profile
(** Faultless passthrough — the baseline every scenario is compared
    against. *)

val lossy : profile
(** 10 % drop, 20 % of survivors delayed up to 5 ms — the acceptance
    scenario's message-loss regime. *)

val chaos : profile
(** 20 % drop, 10 % duplicates, half of everything delayed up to
    20 ms. *)

val blackout : profile
(** Drops everything — a switch (or peer) that has stopped answering. *)

val partition : profile
(** Drops everything, like {!blackout}, but labelled as a {e controller
    partition}: a temporary window after which the control channel heals
    and resync machinery is expected to repair any divergence. *)

val of_name : string -> profile option
(** Looks up one of the named profiles above ("none", "lossy", "chaos",
    "blackout", "partition") — how a scenario spec references them. *)

type t

val create : Engine.t -> ?name:string -> seed:int64 -> profile -> t
(** A fresh injector with its own splitmix stream. [name] (default
    "faults") scopes the metric names, so several injectors in one run
    stay distinguishable. *)

val set_profile : t -> profile -> unit
(** Swap the active profile; takes effect on the next {!plan}. *)

val active : t -> profile

val during : t -> from:Time.t -> until:Time.t -> profile -> unit
(** Schedules [profile] to be active on the window [[from, until)] — how
    a scenario expresses "the control channel blacks out from 2 s to
    4 s". Windows are counted: overlapping windows each take effect when
    they open, and the {!set_profile} base is restored only when the
    {e last} open window closes (restoring "the profile active at
    [from]" would freeze an overlapping window's profile in place
    forever — a bug the differential checker found). *)

type verdict =
  | Drop
  | Deliver of Time.t list
      (** extra delay per copy to deliver; head is the original copy,
          any further elements are duplicates *)

val plan : t -> verdict
(** Draws one decision for one message. The transport applies it:
    [Drop] means silently discard; [Deliver extras] means schedule one
    delivery per element, each with that much delay added to the
    transport's own latency. *)

val decisions : t -> int
val dropped : t -> int
val delayed : t -> int
val duplicated : t -> int
