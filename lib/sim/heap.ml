(* Array-backed binary min-heap. Each element carries the sequence number
   of its push so that equal-priority elements pop in FIFO order.

   Slots beyond [size] are reset to [Empty] as elements leave: a popped
   cell must not linger in the vacated slot, or the heap would pin the
   event (and everything its closure captures) until the slot happens to
   be overwritten. The array also shrinks once occupancy drops below a
   quarter, so a burst of events does not hold peak capacity forever. *)

type 'a slot = Empty | Cell of { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable cells : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let min_capacity = 16

let create ~cmp () = { cmp; cells = [||]; size = 0; next_seq = 0 }

let slot_lt h a b =
  match a, b with
  | Cell a, Cell b ->
    let c = h.cmp a.value b.value in
    if c <> 0 then c < 0 else a.seq < b.seq
  | Empty, _ | _, Empty -> assert false (* slots below [size] are never Empty *)

let grow h =
  let cap = Array.length h.cells in
  if h.size >= cap then begin
    let new_cap = if cap = 0 then min_capacity else cap * 2 in
    let fresh = Array.make new_cap Empty in
    Array.blit h.cells 0 fresh 0 h.size;
    h.cells <- fresh
  end

(* Halve the array when it is less than a quarter full, keeping the live
   prefix. Never drops below [min_capacity] to avoid thrash. *)
let maybe_shrink h =
  let cap = Array.length h.cells in
  if cap > min_capacity && h.size < cap / 4 then begin
    let new_cap = max min_capacity (cap / 2) in
    let fresh = Array.make new_cap Empty in
    Array.blit h.cells 0 fresh 0 h.size;
    h.cells <- fresh
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt h h.cells.(i) h.cells.(parent) then begin
      let tmp = h.cells.(i) in
      h.cells.(i) <- h.cells.(parent);
      h.cells.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && slot_lt h h.cells.(left) h.cells.(!smallest) then
    smallest := left;
  if right < h.size && slot_lt h h.cells.(right) h.cells.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.cells.(i) in
    h.cells.(i) <- h.cells.(!smallest);
    h.cells.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h value =
  grow h;
  h.cells.(h.size) <- Cell { value; seq = h.next_seq };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    match h.cells.(0) with
    | Empty -> assert false
    | Cell top ->
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.cells.(0) <- h.cells.(h.size);
        h.cells.(h.size) <- Empty;
        sift_down h 0
      end
      else h.cells.(0) <- Empty;
      maybe_shrink h;
      Some top.value
  end

let peek h =
  if h.size = 0 then None
  else match h.cells.(0) with Cell c -> Some c.value | Empty -> assert false

let size h = h.size
let is_empty h = h.size = 0
let capacity h = Array.length h.cells

let clear h =
  h.size <- 0;
  h.cells <- [||]

let to_list h =
  let rec collect i acc =
    if i < 0 then acc
    else
      match h.cells.(i) with
      | Cell c -> collect (i - 1) (c.value :: acc)
      | Empty -> assert false
  in
  collect (h.size - 1) []
