type profile = {
  label : string;
  drop : float;
  duplicate : float;
  delay_prob : float;
  delay_min : Time.t;
  delay_max : Time.t;
}

let check_probability what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Fmt.str "Faults.profile: %s = %g outside [0, 1]" what p)

let profile ?(drop = 0.0) ?(duplicate = 0.0) ?(delay_prob = 0.0)
    ?(delay_min = Time.zero) ?(delay_max = Time.of_ms 5) label =
  check_probability "drop" drop;
  check_probability "duplicate" duplicate;
  check_probability "delay_prob" delay_prob;
  if Time.(delay_max < delay_min) then
    invalid_arg "Faults.profile: delay_min > delay_max";
  { label; drop; duplicate; delay_prob; delay_min; delay_max }

let none = profile "none"
let lossy = profile ~drop:0.10 ~delay_prob:0.20 ~delay_max:(Time.of_ms 5) "lossy"

let chaos =
  profile ~drop:0.20 ~duplicate:0.10 ~delay_prob:0.50 ~delay_max:(Time.of_ms 20)
    "chaos"

let blackout = profile ~drop:1.0 "blackout"

(* Same drop-everything behavior as [blackout], but a distinct label so
   traces and scenario logs can tell a partitioned controller apart from
   a dead switch: a partition is expected to heal, and the recovery
   machinery (periodic resync) is what the scenario is exercising. *)
let partition = profile ~drop:1.0 "partition"

let of_name = function
  | "none" -> Some none
  | "lossy" -> Some lossy
  | "chaos" -> Some chaos
  | "blackout" -> Some blackout
  | "partition" -> Some partition
  | _ -> None

type t = {
  engine : Engine.t;
  name : string;
  rng : Rng.t;
  mutable active : profile;
  mutable base : profile;  (* restored when the last [during] window closes *)
  mutable windows_open : int;
  mutable decisions : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
  m_decisions : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  m_delayed : Obs.Metrics.counter;
  m_duplicated : Obs.Metrics.counter;
}

let create engine ?(name = "faults") ~seed active =
  let scope = Obs.Metrics.Scope.v (Engine.metrics engine) ("faults." ^ name) in
  {
    engine;
    name;
    rng = Rng.create ~seed;
    active;
    base = active;
    windows_open = 0;
    decisions = 0;
    dropped = 0;
    delayed = 0;
    duplicated = 0;
    m_decisions = Obs.Metrics.Scope.counter scope "decisions";
    m_dropped = Obs.Metrics.Scope.counter scope "dropped";
    m_delayed = Obs.Metrics.Scope.counter scope "delayed";
    m_duplicated = Obs.Metrics.Scope.counter scope "duplicated";
  }

let trace t fmt =
  Trace.emitf (Engine.trace t.engine) (Engine.now t.engine) ~category:"faults" fmt

let apply_profile t p =
  if p.label <> t.active.label then
    trace t "%s: profile %s -> %s" t.name t.active.label p.label;
  t.active <- p

let set_profile t p =
  t.base <- p;
  if t.windows_open = 0 then apply_profile t p

let active t = t.active

(* Windows are counted, not stacked: overlapping windows each apply
   their profile on open, and the base profile returns only when the
   last one closes. Saving "the profile active at [from]" instead would
   freeze an overlapping window's profile in place forever. *)
let during t ~from ~until p =
  if Time.(until < from) then invalid_arg "Faults.during: until < from";
  ignore
    (Engine.schedule_at t.engine from (fun () ->
         t.windows_open <- t.windows_open + 1;
         apply_profile t p));
  ignore
    (Engine.schedule_at t.engine until (fun () ->
         t.windows_open <- t.windows_open - 1;
         if t.windows_open = 0 then apply_profile t t.base))

type verdict =
  | Drop
  | Deliver of Time.t list

let hit t p = p > 0.0 && Rng.float t.rng 1.0 < p

(* Uniform extra delay in [delay_min, delay_max]. *)
let draw_delay t =
  let p = t.active in
  let span = Int64.to_float (Time.to_ns (Time.sub p.delay_max p.delay_min)) in
  let extra = if span <= 0.0 then 0.0 else Rng.float t.rng span in
  Time.add p.delay_min (Time.of_ns (Int64.of_float extra))

let copy_delay t =
  if hit t t.active.delay_prob then begin
    t.delayed <- t.delayed + 1;
    Obs.Metrics.incr t.m_delayed;
    draw_delay t
  end
  else Time.zero

let plan t =
  t.decisions <- t.decisions + 1;
  Obs.Metrics.incr t.m_decisions;
  if hit t t.active.drop then begin
    t.dropped <- t.dropped + 1;
    Obs.Metrics.incr t.m_dropped;
    Drop
  end
  else begin
    let first = copy_delay t in
    if hit t t.active.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Obs.Metrics.incr t.m_duplicated;
      Deliver [first; copy_delay t]
    end
    else Deliver [first]
  end

let decisions t = t.decisions
let dropped t = t.dropped
let delayed t = t.delayed
let duplicated t = t.duplicated
