(** Mutable binary min-heap.

    The event queue of the simulation engine. Elements are ordered by a
    comparison function supplied at creation; ties are broken by insertion
    order (FIFO), which the engine relies on for deterministic scheduling
    of simultaneous events. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp]. Among elements
    that compare equal, the one pushed first pops first. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum, or [None] if empty. *)

val peek : 'a t -> 'a option

val size : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array length. Popping below a quarter of capacity
    shrinks the array; vacated slots never retain popped elements. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot in heap-internal (not sorted) order; for tests and debugging. *)
