type entry = {
  prefix : Net.Prefix.t;
  as_path : Bgp.Asn.t list;
  med : int option;
}

(* Cumulative prefix-length distribution, loosely matching the public
   IPv4 table (CIDR report): mostly /24s, a thin tail of shorter
   prefixes. The tail is capped at /16 so that 600 k sequentially
   allocated entries fit inside the 32-bit space with room to spare. *)
let length_table =
  [|
    (24, 0.55); (23, 0.65); (22, 0.77); (21, 0.84); (20, 0.90);
    (19, 0.95); (18, 0.97); (17, 0.98); (16, 1.00);
  |]
[@@lint.domain_local
  "constant cumulative-distribution table, written nowhere; array literal only\
  \ for cheap indexed scans"]

(* Denser mix for data-plane scale benchmarks: the long tail goes down
   to /28 and stops at /18, averaging ~620 addresses per entry, so the
   sequential allocator fits two million entries where the RIB-shaped
   mix above exhausts the space around 600 k. *)
let dense_length_table =
  [|
    (24, 0.50); (25, 0.62); (26, 0.72); (27, 0.78); (28, 0.82);
    (23, 0.88); (22, 0.93); (21, 0.96); (20, 0.98); (19, 0.99); (18, 1.00);
  |]
[@@lint.domain_local
  "constant cumulative-distribution table, written nowhere; array literal only\
  \ for cheap indexed scans"]

(* The full-Internet mix, cumulative, matching the published IPv4 table
   shape (CIDR report / route-collector snapshots, ~1M prefixes):
   ~59.5 % /24, a /22-/23 deaggregation band, and a thin aggregate tail
   reaching /8. Leaves (>= /17, ~98 % of mass) are carved sequentially;
   aggregates (<= /16) are emitted as *covering* prefixes over the leaf
   region without consuming address space, reproducing the
   aggregate+more-specific pairs of the real table. *)
let internet_length_table =
  [|
    (24, 0.595); (23, 0.700); (22, 0.825); (21, 0.880); (20, 0.925);
    (19, 0.953); (18, 0.970); (17, 0.981); (16, 0.9945); (15, 0.9965);
    (14, 0.9980); (13, 0.9990); (12, 0.9995); (11, 0.9997); (10, 0.9998);
    (9, 0.9999); (8, 1.00);
  |]
[@@lint.domain_local
  "constant cumulative-distribution table, written nowhere; array literal only\
  \ for cheap indexed scans"]

(* AS-path hop-count mix (path length without prepending), cumulative.
   Route-collector feeds put the mode at 4 hops and the mean near 4.4;
   the tail past 7 hops is thin. *)
let as_path_length_table =
  [|
    (1, 0.005); (2, 0.085); (3, 0.305); (4, 0.615); (5, 0.815);
    (6, 0.915); (7, 0.965); (8, 0.985); (9, 0.995); (10, 1.00);
  |]
[@@lint.domain_local
  "constant cumulative-distribution table, written nowhere; array literal only\
  \ for cheap indexed scans"]

let sample_length table rng =
  let x = Sim.Rng.float rng 1.0 in
  let rec pick i =
    if i >= Array.length table - 1 then fst table.(i)
    else if x < snd table.(i) then fst table.(i)
    else pick (i + 1)
  in
  pick 0

let sample_as_path rng =
  let len = 1 + Sim.Rng.int rng 5 in
  List.init len (fun _ -> Bgp.Asn.of_int (3000 + Sim.Rng.int rng 60000))

let sample_internet_as_path rng =
  let len = sample_length as_path_length_table rng in
  List.init len (fun _ -> Bgp.Asn.of_int (3000 + Sim.Rng.int rng 60000))

let generate_with ~table ~seed ~count =
  let rng = Sim.Rng.create ~seed in
  let cursor = ref (Int64.of_int (Net.Ipv4.diff (Net.Ipv4.of_octets 1 0 0 0) Net.Ipv4.any)) in
  Array.init count (fun _ ->
      let len = sample_length table rng in
      let size = Int64.of_int (1 lsl (32 - len)) in
      (* Align the cursor up to the prefix's natural boundary. *)
      let aligned =
        let rem = Int64.rem !cursor size in
        if Int64.equal rem 0L then !cursor else Int64.add !cursor (Int64.sub size rem)
      in
      cursor := Int64.add aligned size;
      if Int64.compare !cursor 0xFFFF_0000L > 0 then
        failwith "Rib_gen.generate: address space exhausted";
      let prefix = Net.Prefix.make (Net.Ipv4.of_int32 (Int64.to_int32 aligned)) len in
      let med = if Sim.Rng.int rng 10 = 0 then Some (Sim.Rng.int rng 100) else None in
      { prefix; as_path = sample_as_path rng; med })

let generate ~seed ~count =
  if count < 0 || count > 600_000 then invalid_arg "Rib_gen.generate: count";
  generate_with ~table:length_table ~seed ~count

let generate_dense ~seed ~count =
  if count < 0 || count > 2_000_000 then
    invalid_arg "Rib_gen.generate_dense: count";
  generate_with ~table:dense_length_table ~seed ~count

(* Full-Internet tables. Two allocation regimes share one cursor:
   leaves (>= /17) are carved sequentially exactly like [generate_with];
   aggregates (<= /16) take the cursor's aligned enclosing block of the
   sampled length *without advancing it*, so they cover the leaves being
   carved there — or, when that block was already emitted, probe forward
   block by block to the next free one (still covering future leaves).
   Uniqueness: leaves never collide (disjoint spans), aggregates are
   deduplicated per (length, network), and a leaf never equals an
   aggregate (different mask lengths). *)
let generate_internet ~seed ~count =
  if count < 0 || count > 1_200_000 then
    invalid_arg "Rib_gen.generate_internet: count";
  let rng = Sim.Rng.create ~seed in
  let cursor = ref (Int64.of_int (Net.Ipv4.diff (Net.Ipv4.of_octets 1 0 0 0) Net.Ipv4.any)) in
  let aggregates = Hashtbl.create 4096 in
  Array.init count (fun _ ->
      let len = sample_length internet_length_table rng in
      let size = Int64.of_int (1 lsl (32 - len)) in
      let network =
        if len >= 17 then begin
          let rem = Int64.rem !cursor size in
          let aligned =
            if Int64.equal rem 0L then !cursor else Int64.add !cursor (Int64.sub size rem)
          in
          cursor := Int64.add aligned size;
          aligned
        end
        else begin
          (* Aligned block containing (or following) the leaf cursor. *)
          let block = ref (Int64.mul (Int64.div !cursor size) size) in
          while Hashtbl.mem aggregates (len, !block) do
            block := Int64.add !block size
          done;
          Hashtbl.replace aggregates (len, !block) ();
          !block
        end
      in
      if Int64.compare !cursor 0xE000_0000L > 0 then
        failwith "Rib_gen.generate_internet: address space exhausted";
      let prefix = Net.Prefix.make (Net.Ipv4.of_int32 (Int64.to_int32 network)) len in
      let med = if Sim.Rng.int rng 10 = 0 then Some (Sim.Rng.int rng 100) else None in
      { prefix; as_path = sample_internet_as_path rng; med })

(* --- skewed peer views ------------------------------------------------- *)

(* Table overlap across peers is heavily skewed in practice: one or two
   transit feeds carry (nearly) the full table, the rest export customer
   cones orders of magnitude smaller. Peer 0 is the full feed; peer i
   covers ~100/(i+1)^2 percent with a 1 % floor, so a 100-peer set
   carries ~2.5 full-table equivalents in total. *)
let view_share ~peers peer =
  if peer < 0 || peer >= peers then invalid_arg "Rib_gen.view_share: peer";
  if peer = 0 then 100
  else max 1 (100 / ((peer + 1) * (peer + 1)))

(* Deterministic membership without RNG state: a fixed integer mix of
   (peer, index), so any slice of any peer's view can be reproduced
   independently of evaluation order. *)
let in_view ~peer ~share_pct index =
  share_pct >= 100
  || begin
    let h = (index * 0x9E3779B1) lxor ((peer + 1) * 0x85EBCA77) in
    let h = (h lxor (h lsr 13)) * 0xC2B2AE35 in
    ((h lsr 7) land 0xFFFFFF) mod 100 < share_pct
  end

let to_updates entries ~speaker_asn ~next_hop =
  Array.fold_right
    (fun e acc ->
      let attrs =
        Bgp.Attributes.make
          ~as_path:[Bgp.Attributes.Seq (speaker_asn :: e.as_path)]
          ?med:e.med ~next_hop ()
      in
      { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [e.prefix] } :: acc)
    entries []

let pp_entry ppf e =
  Fmt.pf ppf "%a path=[%a]%a" Net.Prefix.pp e.prefix
    Fmt.(list ~sep:sp Bgp.Asn.pp)
    e.as_path
    Fmt.(option (fun ppf m -> Fmt.pf ppf " med=%d" m))
    e.med
