type entry = {
  prefix : Net.Prefix.t;
  as_path : Bgp.Asn.t list;
  med : int option;
}

(* Cumulative prefix-length distribution, loosely matching the public
   IPv4 table (CIDR report): mostly /24s, a thin tail of shorter
   prefixes. The tail is capped at /16 so that 600 k sequentially
   allocated entries fit inside the 32-bit space with room to spare. *)
let length_table =
  [|
    (24, 0.55); (23, 0.65); (22, 0.77); (21, 0.84); (20, 0.90);
    (19, 0.95); (18, 0.97); (17, 0.98); (16, 1.00);
  |]

(* Denser mix for data-plane scale benchmarks: the long tail goes down
   to /28 and stops at /18, averaging ~620 addresses per entry, so the
   sequential allocator fits two million entries where the RIB-shaped
   mix above exhausts the space around 600 k. *)
let dense_length_table =
  [|
    (24, 0.50); (25, 0.62); (26, 0.72); (27, 0.78); (28, 0.82);
    (23, 0.88); (22, 0.93); (21, 0.96); (20, 0.98); (19, 0.99); (18, 1.00);
  |]

let sample_length table rng =
  let x = Sim.Rng.float rng 1.0 in
  let rec pick i =
    if i >= Array.length table - 1 then fst table.(i)
    else if x < snd table.(i) then fst table.(i)
    else pick (i + 1)
  in
  pick 0

let sample_as_path rng =
  let len = 1 + Sim.Rng.int rng 5 in
  List.init len (fun _ -> Bgp.Asn.of_int (3000 + Sim.Rng.int rng 60000))

let generate_with ~table ~seed ~count =
  let rng = Sim.Rng.create ~seed in
  let cursor = ref (Int64.of_int (Net.Ipv4.diff (Net.Ipv4.of_octets 1 0 0 0) Net.Ipv4.any)) in
  Array.init count (fun _ ->
      let len = sample_length table rng in
      let size = Int64.of_int (1 lsl (32 - len)) in
      (* Align the cursor up to the prefix's natural boundary. *)
      let aligned =
        let rem = Int64.rem !cursor size in
        if Int64.equal rem 0L then !cursor else Int64.add !cursor (Int64.sub size rem)
      in
      cursor := Int64.add aligned size;
      if Int64.compare !cursor 0xFFFF_0000L > 0 then
        failwith "Rib_gen.generate: address space exhausted";
      let prefix = Net.Prefix.make (Net.Ipv4.of_int32 (Int64.to_int32 aligned)) len in
      let med = if Sim.Rng.int rng 10 = 0 then Some (Sim.Rng.int rng 100) else None in
      { prefix; as_path = sample_as_path rng; med })

let generate ~seed ~count =
  if count < 0 || count > 600_000 then invalid_arg "Rib_gen.generate: count";
  generate_with ~table:length_table ~seed ~count

let generate_dense ~seed ~count =
  if count < 0 || count > 2_000_000 then
    invalid_arg "Rib_gen.generate_dense: count";
  generate_with ~table:dense_length_table ~seed ~count

let to_updates entries ~speaker_asn ~next_hop =
  Array.fold_right
    (fun e acc ->
      let attrs =
        Bgp.Attributes.make
          ~as_path:[Bgp.Attributes.Seq (speaker_asn :: e.as_path)]
          ?med:e.med ~next_hop ()
      in
      { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [e.prefix] } :: acc)
    entries []

let pp_entry ppf e =
  Fmt.pf ppf "%a path=[%a]%a" Net.Prefix.pp e.prefix
    Fmt.(list ~sep:sp Bgp.Asn.pp)
    e.as_path
    Fmt.(option (fun ppf m -> Fmt.pf ppf " med=%d" m))
    e.med
