(** Synthetic Internet routing table generator — the stand-in for the
    RIPE RIS feed the paper loads into R2 and R3.

    Tables are deterministic in the seed: prefixes are allocated
    sequentially from 1.0.0.0 upward (guaranteeing uniqueness up to the
    ~512 k the paper uses) with a prefix-length mix approximating the
    real IPv4 table (≈55 % /24s), and AS paths of realistic length.
    What the experiments actually depend on is table {e size} and the
    sharing of next hops across prefixes; both are preserved. *)

type entry = {
  prefix : Net.Prefix.t;
  as_path : Bgp.Asn.t list;  (** origin path, without the announcing peer *)
  med : int option;
}

val generate : seed:int64 -> count:int -> entry array
(** [count] unique entries. @raise Invalid_argument beyond 600 k entries
    (the sequential allocator would wrap the 32-bit address space). *)

val generate_dense : seed:int64 -> count:int -> entry array
(** Like {!generate}, but with a denser prefix-length mix (tail down to
    /28, nothing shorter than /18) so the sequential allocator fits up
    to 2 M unique entries — the scale the data-plane benchmarks drive
    lookup structures to, beyond what the RIB-shaped mix can reach.
    @raise Invalid_argument beyond 2 M entries. *)

val generate_internet : seed:int64 -> count:int -> entry array
(** The full-Internet shape: prefix lengths follow the published IPv4
    table mix (~59.5 % /24, a /22–/23 deaggregation band, an aggregate
    tail to /8) and AS-path hop counts follow the route-collector
    distribution (mode 4, mean ≈ 4.4). Aggregates (/8–/16) are emitted
    as {e covering} prefixes over the sequentially carved more-specific
    leaves, reproducing the aggregate + more-specific pairs of the real
    table. All prefixes are unique; deterministic in the seed.
    @raise Invalid_argument beyond 1.2 M entries. *)

val view_share : peers:int -> int -> int
(** Skewed table-overlap model for a [peers]-strong neighbor set:
    percentage of the table peer [i] exports. Peer 0 is a full transit
    feed (100); peer [i] covers [max 1 (100/(i+1)²)] — a 100-peer set
    carries ≈ 2.5 full-table equivalents in total. *)

val in_view : peer:int -> share_pct:int -> int -> bool
(** Whether entry [index] belongs to the peer's exported view under a
    [share_pct]-percent share. A pure deterministic mix of
    [(peer, index)] — no RNG state — so any slice of any view is
    reproducible independently of evaluation order. *)

val to_updates :
  entry array ->
  speaker_asn:Bgp.Asn.t ->
  next_hop:Net.Ipv4.t ->
  Bgp.Message.update list
(** One UPDATE per entry, as a peer would originate them: the speaker's
    ASN prepended to the stored path, NEXT_HOP set to the speaker. *)

val pp_entry : Format.formatter -> entry -> unit
