(** Synthetic Internet routing table generator — the stand-in for the
    RIPE RIS feed the paper loads into R2 and R3.

    Tables are deterministic in the seed: prefixes are allocated
    sequentially from 1.0.0.0 upward (guaranteeing uniqueness up to the
    ~512 k the paper uses) with a prefix-length mix approximating the
    real IPv4 table (≈55 % /24s), and AS paths of realistic length.
    What the experiments actually depend on is table {e size} and the
    sharing of next hops across prefixes; both are preserved. *)

type entry = {
  prefix : Net.Prefix.t;
  as_path : Bgp.Asn.t list;  (** origin path, without the announcing peer *)
  med : int option;
}

val generate : seed:int64 -> count:int -> entry array
(** [count] unique entries. @raise Invalid_argument beyond 600 k entries
    (the sequential allocator would wrap the 32-bit address space). *)

val generate_dense : seed:int64 -> count:int -> entry array
(** Like {!generate}, but with a denser prefix-length mix (tail down to
    /28, nothing shorter than /18) so the sequential allocator fits up
    to 2 M unique entries — the scale the data-plane benchmarks drive
    lookup structures to, beyond what the RIB-shaped mix can reach.
    @raise Invalid_argument beyond 2 M entries. *)

val to_updates :
  entry array ->
  speaker_asn:Bgp.Asn.t ->
  next_hop:Net.Ipv4.t ->
  Bgp.Message.update list
(** One UPDATE per entry, as a peer would originate them: the speaker's
    ASN prepended to the stored path, NEXT_HOP set to the speaker. *)

val pp_entry : Format.formatter -> entry -> unit
