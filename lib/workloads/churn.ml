type event = {
  peer : int;
  update : Bgp.Message.update;
}

let full_table_race ~seed ~count ~next_hops ~asns =
  if Array.length next_hops <> Array.length asns || Array.length next_hops = 0 then
    invalid_arg "Churn.full_table_race: need matching non-empty peer arrays";
  let entries = Rib_gen.generate ~seed ~count in
  let feeds =
    Array.to_list
      (Array.mapi
         (fun peer nh ->
           List.map
             (fun u -> { peer; update = u })
             (Rib_gen.to_updates entries ~speaker_asn:asns.(peer) ~next_hop:nh))
         next_hops)
  in
  List.fold_left Feed.interleave [] feeds

let route_attrs ~asn ~next_hop (e : Rib_gen.entry) =
  Bgp.Attributes.make
    ~as_path:[Bgp.Attributes.Seq (asn :: e.as_path)]
    ?med:e.med ~next_hop ()

let announce_event ~peer ~asn ~next_hop (e : Rib_gen.entry) =
  { peer;
    update =
      { Bgp.Message.withdrawn = []; attrs = Some (route_attrs ~asn ~next_hop e);
        nlri = [e.prefix] } }

let withdraw_event ~peer (e : Rib_gen.entry) =
  { peer; update = { Bgp.Message.withdrawn = [e.prefix]; attrs = None; nlri = [] } }

(* A session-reset-shaped withdrawal storm, as a route collector records
   one: the peer flushes a seeded [share_pct] slice of its table in
   table order (a long run of pure withdrawals), then — once the session
   is back — re-announces the same slice, again in table order. *)
let storm ~seed ~entries ~share_pct ~next_hop ~asn ~peer =
  if share_pct < 1 || share_pct > 100 then invalid_arg "Churn.storm: share_pct";
  let rng = Sim.Rng.create ~seed in
  let victims =
    Array.to_list entries
    |> List.filter (fun (_ : Rib_gen.entry) -> Sim.Rng.int rng 100 < share_pct)
  in
  List.map (fun e -> withdraw_event ~peer e) victims
  @ List.map (fun e -> announce_event ~peer ~asn ~next_hop e) victims

(* A route-collector-shaped update train: updates arrive in per-peer
   bursts with locality — a burst picks one peer and a region of the
   table, then emits a run of announcements/withdrawals over nearby
   entries. Roughly 80 % of updates are re-announcements (path churn),
   20 % withdrawals, matching observed feed composition. *)
let update_train ~seed ~entries ~next_hops ~asns ~events =
  if Array.length next_hops <> Array.length asns || Array.length next_hops = 0 then
    invalid_arg "Churn.update_train: need matching non-empty peer arrays";
  if Array.length entries = 0 then invalid_arg "Churn.update_train: entries";
  let rng = Sim.Rng.create ~seed in
  let n = Array.length entries and n_peers = Array.length next_hops in
  let out = ref [] and emitted = ref 0 in
  while !emitted < events do
    let peer = Sim.Rng.int rng n_peers in
    let base = Sim.Rng.int rng n in
    let burst = min (events - !emitted) (1 + Sim.Rng.int rng 32) in
    for j = 0 to burst - 1 do
      let e = entries.((base + j) mod n) in
      let ev =
        if Sim.Rng.int rng 100 < 20 then withdraw_event ~peer e
        else announce_event ~peer ~asn:asns.(peer) ~next_hop:next_hops.(peer) e
      in
      out := ev :: !out
    done;
    emitted := !emitted + burst
  done;
  List.rev !out

let flap ~seed ~entries ~rounds ~next_hop ~asn ~peer =
  let rng = Sim.Rng.create ~seed in
  let n = Array.length entries in
  let events = ref [] in
  for _ = 1 to rounds do
    let (victim : Rib_gen.entry) = entries.(Sim.Rng.int rng n) in
    events :=
      { peer; update = { Bgp.Message.withdrawn = [victim.prefix]; attrs = None; nlri = [] } }
      :: !events;
    let attrs =
      Bgp.Attributes.make
        ~as_path:[Bgp.Attributes.Seq (asn :: victim.as_path)]
        ?med:victim.med ~next_hop ()
    in
    events :=
      { peer; update = { Bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [victim.prefix] } }
      :: !events
  done;
  List.rev !events
