(** BGP churn traces — update streams beyond the initial table load,
    used by the controller micro-benchmark and the stress tests. *)

type event = {
  peer : int;  (** which of the trace's peers sends it *)
  update : Bgp.Message.update;
}

val route_attrs :
  asn:Bgp.Asn.t -> next_hop:Net.Ipv4.t -> Rib_gen.entry -> Bgp.Attributes.t
(** The attributes a peer with [asn] at [next_hop] announces for an
    entry: itself prepended to the stored path, the entry's MED carried
    through. The path tail shares the entry's list — callers building
    10^6-route views must not copy it. *)

val full_table_race : seed:int64 -> count:int -> next_hops:Net.Ipv4.t array ->
  asns:Bgp.Asn.t array -> event list
(** The paper's micro-benchmark workload: every peer announces the same
    [count]-entry table (same prefixes, peer-specific paths), arrivals
    interleaved — "two times 500 K updates from two different peers". *)

val flap : seed:int64 -> entries:Rib_gen.entry array -> rounds:int ->
  next_hop:Net.Ipv4.t -> asn:Bgp.Asn.t -> peer:int -> event list
(** Announce/withdraw churn: each round withdraws a random subset and
    re-announces it, exercising Listing 1's withdraw paths. *)

val storm : seed:int64 -> entries:Rib_gen.entry array -> share_pct:int ->
  next_hop:Net.Ipv4.t -> asn:Bgp.Asn.t -> peer:int -> event list
(** A session-reset-shaped withdrawal storm: the peer withdraws a seeded
    [share_pct]-percent slice of [entries] in table order (one long run
    of pure withdrawals, as route collectors record them), then
    re-announces the same slice in table order. Bit-identically
    replayable from the seed. @raise Invalid_argument unless
    [1 <= share_pct <= 100]. *)

val update_train : seed:int64 -> entries:Rib_gen.entry array ->
  next_hops:Net.Ipv4.t array -> asns:Bgp.Asn.t array -> events:int -> event list
(** A route-collector-shaped steady-state train of [events] updates:
    per-peer bursts (1–32 updates) with table locality, ~80 %
    re-announcements / 20 % withdrawals. Deterministic in the seed. *)
