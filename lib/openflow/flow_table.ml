type entry = {
  priority : int;
  ofmatch : Ofmatch.t;
  actions : Action.t list;
  cookie : int64;
  mutable packets : int;
}

type command =
  | Add
  | Modify
  | Modify_strict
  | Delete
  | Delete_strict

type flow_mod = {
  command : command;
  fm_priority : int;
  fm_match : Ofmatch.t;
  fm_actions : Action.t list;
  fm_cookie : int64;
}

let flow_mod ?(cookie = 0L) ?(priority = 100) command ofmatch actions =
  { command; fm_priority = priority; fm_match = ofmatch; fm_actions = actions; fm_cookie = cookie }

(* Entries live in per-priority buckets (insertion-ordered growable
   arrays with tombstones) so that installing the hundreds of thousands
   of rules a FIB-cache deployment needs stays O(1) per flow-mod; a hash
   index over (priority, match) serves the strict commands. Lookup scans
   priorities in descending order, entries within a priority in install
   order — the OpenFlow tie-break. *)

type slot = {
  entry : entry;
  some_entry : entry option;
      (* the shared-Some-cell idiom (see Net.Flat_fib): the [Some] is
         allocated once at install time, so hot-path lookups return this
         stored cell instead of wrapping [entry] per packet *)
  mutable live : bool;
}

type bucket = {
  mutable slots : slot array;
  mutable len : int;
  mutable dead : int;
}

module Strict_key = struct
  type t = int * Ofmatch.t

  let equal (pa, ma) (pb, mb) = pa = pb && Ofmatch.equal ma mb
  let hash (p, m) = ((p * 31) + Ofmatch.hash m) land max_int
end

module Strict_index = Hashtbl.Make (Strict_key)

type t = {
  buckets : (int, bucket) Hashtbl.t;
  mutable priorities : int list; (* descending, live priorities *)
  index : slot Strict_index.t;
  mutable size : int;
  mutable lookups : int;
}

let create () =
  {
    buckets = Hashtbl.create 16;
    priorities = [];
    index = Strict_index.create 64;
    size = 0;
    lookups = 0;
  }

let rec insert_priority p = function
  | [] -> [p]
  | q :: rest as l -> if p > q then p :: l else if p = q then l else q :: insert_priority p rest

let bucket_for t priority =
  match Hashtbl.find_opt t.buckets priority with
  | Some b -> b
  | None ->
    let b = { slots = [||]; len = 0; dead = 0 } in
    Hashtbl.replace t.buckets priority b;
    t.priorities <- insert_priority priority t.priorities;
    b

let bucket_push b slot =
  if b.len >= Array.length b.slots then begin
    let grown = Array.make (max 8 (2 * Array.length b.slots)) slot in
    Array.blit b.slots 0 grown 0 b.len;
    b.slots <- grown
  end;
  b.slots.(b.len) <- slot;
  b.len <- b.len + 1

let compact b =
  if b.dead > b.len / 2 then begin
    let live = Array.of_list (List.filter (fun s -> s.live) (Array.to_list (Array.sub b.slots 0 b.len))) in
    b.slots <- live;
    b.len <- Array.length live;
    b.dead <- 0
  end

let kill t b slot =
  if slot.live then begin
    slot.live <- false;
    b.dead <- b.dead + 1;
    t.size <- t.size - 1;
    Strict_index.remove t.index (slot.entry.priority, slot.entry.ofmatch);
    compact b
  end

let iter_buckets t f =
  List.iter
    (fun priority ->
      match Hashtbl.find_opt t.buckets priority with
      | Some b ->
        for i = 0 to b.len - 1 do
          let slot = b.slots.(i) in
          if slot.live then f b slot
        done
      | None -> ())
    t.priorities

let add t fm =
  let key = (fm.fm_priority, fm.fm_match) in
  (match Strict_index.find_opt t.index key with
  | Some old ->
    (match Hashtbl.find_opt t.buckets fm.fm_priority with
    | Some b -> kill t b old
    | None -> ())
  | None -> ());
  let entry =
    {
      priority = fm.fm_priority;
      ofmatch = fm.fm_match;
      actions = fm.fm_actions;
      cookie = fm.fm_cookie;
      packets = 0;
    }
  in
  let slot = { entry; some_entry = Some entry; live = true } in
  bucket_push (bucket_for t fm.fm_priority) slot;
  Strict_index.replace t.index key slot;
  t.size <- t.size + 1

let rec apply t fm =
  match fm.command with
  | Add -> add t fm
  | Modify | Modify_strict ->
    let matched = ref false in
    let update slot =
      matched := true;
      (* Entries are immutable apart from counters; replace in place by
         re-adding under the entry's own priority. *)
      add t
        {
          fm with
          command = Add;
          fm_priority = slot.entry.priority;
          fm_match = slot.entry.ofmatch;
        }
    in
    (match fm.command with
    | Modify_strict -> (
      match Strict_index.find_opt t.index (fm.fm_priority, fm.fm_match) with
      | Some slot -> update slot
      | None -> ())
    | Modify | Add | Delete | Delete_strict ->
      (* OF 1.0 non-strict semantics: the command applies to every entry
         the given match subsumes. *)
      let hits = ref [] in
      iter_buckets t (fun _ slot ->
          if Ofmatch.subsumes fm.fm_match slot.entry.ofmatch then hits := slot :: !hits);
      List.iter update !hits);
    if not !matched then apply t { fm with command = Add }
  | Delete ->
    if Ofmatch.is_any fm.fm_match then begin
      Hashtbl.reset t.buckets;
      t.priorities <- [];
      Strict_index.reset t.index;
      t.size <- 0
    end
    else begin
      let hits = ref [] in
      iter_buckets t (fun b slot ->
          if Ofmatch.subsumes fm.fm_match slot.entry.ofmatch then hits := (b, slot) :: !hits);
      List.iter (fun (b, slot) -> kill t b slot) !hits
    end
  | Delete_strict -> (
    match Strict_index.find_opt t.index (fm.fm_priority, fm.fm_match) with
    | Some slot -> (
      match Hashtbl.find_opt t.buckets fm.fm_priority with
      | Some b -> kill t b slot
      | None -> ())
    | None -> ())

exception Found of entry

let peek t ctx =
  match
    iter_buckets t (fun _ slot ->
        if Ofmatch.matches slot.entry.ofmatch ctx then raise_notrace (Found slot.entry))
  with
  | () -> None
  | exception Found e -> Some e

let lookup t ctx =
  t.lookups <- t.lookups + 1;
  match peek t ctx with
  | None -> None
  | Some e ->
    e.packets <- e.packets + 1;
    Some e

(* Batched lookup: resolving the priority list and its hashtable
   probes once per burst instead of once per packet. The snapshot is an
   array of live buckets in descending-priority order (the one
   amortized per-burst allocation); each packet then scans plain
   arrays. *)
type snapshot = bucket array

let snapshot t =
  Array.of_list
    (List.filter_map (fun p -> Hashtbl.find_opt t.buckets p) t.priorities)

(* Top-level recursion rather than a nested [go] closure: the scan runs
   once per packet and must not capture. Bounds: [bi] is checked
   against the snapshot length and [si] against the bucket's live
   length before every unsafe read. *)
let[@lint.zero_alloc] rec scan_from snapshot ctx bi si =
  if bi >= Array.length snapshot then None
  else begin
    let b = Array.unsafe_get snapshot bi in
    if si >= b.len then scan_from snapshot ctx (bi + 1) 0
    else begin
      let slot = Array.unsafe_get b.slots si in
      if slot.live && Ofmatch.matches slot.entry.ofmatch ctx then
        slot.some_entry
      else scan_from snapshot ctx bi (si + 1)
    end
  end

let[@lint.zero_alloc] snapshot_peek snapshot ctx = scan_from snapshot ctx 0 0

let[@lint.zero_alloc] peek_batch t ctxs out =
  if Array.length out < Array.length ctxs then
    invalid_arg "Flow_table.peek_batch: output array shorter than input";
  let snapshot = snapshot t in
  for i = 0 to Array.length ctxs - 1 do
    Array.unsafe_set out i (scan_from snapshot (Array.unsafe_get ctxs i) 0 0)
  done

let[@lint.zero_alloc] lookup_batch t ctxs out =
  if Array.length out < Array.length ctxs then
    invalid_arg "Flow_table.lookup_batch: output array shorter than input";
  t.lookups <- t.lookups + Array.length ctxs;
  let snapshot = snapshot t in
  for i = 0 to Array.length ctxs - 1 do
    match scan_from snapshot (Array.unsafe_get ctxs i) 0 0 with
    | None -> Array.unsafe_set out i None
    | Some e as hit ->
      e.packets <- e.packets + 1;
      Array.unsafe_set out i hit
  done

let entries t =
  let acc = ref [] in
  iter_buckets t (fun _ slot -> acc := slot.entry :: !acc);
  List.rev !acc

let size t = t.size
let lookups t = t.lookups

let clear t =
  Hashtbl.reset t.buckets;
  t.priorities <- [];
  Strict_index.reset t.index;
  t.size <- 0

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "prio=%-5d %a -> %a (pkts=%d)@." e.priority Ofmatch.pp e.ofmatch
        Action.pp_list e.actions e.packets)
    (entries t)
