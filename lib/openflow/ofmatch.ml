type t = {
  in_port : int option;
  dl_src : Net.Mac.t option;
  dl_dst : Net.Mac.t option;
  dl_type : int option;
  nw_src : Net.Prefix.t option;
  nw_dst : Net.Prefix.t option;
  nw_proto : int option;
  tp_src : int option;
  tp_dst : int option;
}

let any =
  {
    in_port = None;
    dl_src = None;
    dl_dst = None;
    dl_type = None;
    nw_src = None;
    nw_dst = None;
    nw_proto = None;
    tp_src = None;
    tp_dst = None;
  }

let dl_dst mac = { any with dl_dst = Some mac }

let make ?in_port ?dl_src ?dl_dst ?dl_type ?nw_src ?nw_dst ?nw_proto ?tp_src
    ?tp_dst () =
  { in_port; dl_src; dl_dst; dl_type; nw_src; nw_dst; nw_proto; tp_src; tp_dst }

type context = {
  mutable arrival_port : int;
  mutable frame : Net.Ethernet.frame;
}

(* For ARP frames, OpenFlow 1.0 overlays the network fields: nw_src/nw_dst
   are the ARP sender/target addresses and nw_proto is the opcode. *)
let ip_fields (frame : Net.Ethernet.frame) =
  match frame.payload with
  | Net.Ethernet.Ipv4 p ->
    let proto = Net.Ipv4_packet.protocol_number p in
    let tp =
      match p.payload with
      | Net.Ipv4_packet.Udp u -> Some (u.Net.Udp.src_port, u.Net.Udp.dst_port)
      | Net.Ipv4_packet.Raw _ -> None
    in
    Some (p.src, p.dst, proto, tp)
  | Net.Ethernet.Arp a ->
    let opcode = match a.op with Net.Arp.Request -> 1 | Net.Arp.Reply -> 2 in
    Some (a.sender_ip, a.target_ip, opcode, None)

let field_ok check = function None -> true | Some expected -> check expected

let matches t ctx =
  let frame = ctx.frame in
  field_ok (fun p -> p = ctx.arrival_port) t.in_port
  && field_ok (fun m -> Net.Mac.equal m frame.src) t.dl_src
  && field_ok (fun m -> Net.Mac.equal m frame.dst) t.dl_dst
  && field_ok (fun ty -> ty = Net.Ethernet.ethertype frame) t.dl_type
  &&
  match ip_fields frame with
  | None ->
    Option.is_none t.nw_src && Option.is_none t.nw_dst
    && Option.is_none t.nw_proto && Option.is_none t.tp_src
    && Option.is_none t.tp_dst
  | Some (src, dst, proto, tp) ->
    field_ok (fun p -> Net.Prefix.mem src p) t.nw_src
    && field_ok (fun p -> Net.Prefix.mem dst p) t.nw_dst
    && field_ok (fun pr -> pr = proto) t.nw_proto
    && field_ok
         (fun port -> match tp with Some (s, _) -> s = port | None -> false)
         t.tp_src
    && field_ok
         (fun port -> match tp with Some (_, d) -> d = port | None -> false)
         t.tp_dst

let equal a b =
  Option.equal Int.equal a.in_port b.in_port
  && Option.equal Net.Mac.equal a.dl_src b.dl_src
  && Option.equal Net.Mac.equal a.dl_dst b.dl_dst
  && Option.equal Int.equal a.dl_type b.dl_type
  && Option.equal Net.Prefix.equal a.nw_src b.nw_src
  && Option.equal Net.Prefix.equal a.nw_dst b.nw_dst
  && Option.equal Int.equal a.nw_proto b.nw_proto
  && Option.equal Int.equal a.tp_src b.tp_src
  && Option.equal Int.equal a.tp_dst b.tp_dst

(* Explicit structural hash mirroring [equal]; polymorphic Hashtbl.hash
   must not touch abstract net types (determinism discipline, sc_lint). *)
let hash t =
  let opt f = function Some v -> f v + 1 | None -> 0 in
  List.fold_left
    (fun h n -> (h * 31) + n)
    17
    [
      opt Fun.id t.in_port; opt Net.Mac.hash t.dl_src;
      opt Net.Mac.hash t.dl_dst; opt Fun.id t.dl_type;
      opt Net.Prefix.hash t.nw_src; opt Net.Prefix.hash t.nw_dst;
      opt Fun.id t.nw_proto; opt Fun.id t.tp_src; opt Fun.id t.tp_dst;
    ]
  land max_int

let subsumes a b =
  let field eq fa fb =
    match fa, fb with
    | None, _ -> true
    | Some _, None -> false
    | Some va, Some vb -> eq va vb
  in
  let prefix_covers pa pb = Net.Prefix.subset pb pa in
  field Int.equal a.in_port b.in_port
  && field Net.Mac.equal a.dl_src b.dl_src
  && field Net.Mac.equal a.dl_dst b.dl_dst
  && field Int.equal a.dl_type b.dl_type
  && field prefix_covers a.nw_src b.nw_src
  && field prefix_covers a.nw_dst b.nw_dst
  && field Int.equal a.nw_proto b.nw_proto
  && field Int.equal a.tp_src b.tp_src
  && field Int.equal a.tp_dst b.tp_dst

let is_any t = equal t any

let pp ppf t =
  let field name pp_v ppf = function
    | Some v -> Fmt.pf ppf "%s=%a " name pp_v v
    | None -> ()
  in
  if is_any t then Fmt.string ppf "*"
  else begin
    field "in_port" Fmt.int ppf t.in_port;
    field "dl_src" Net.Mac.pp ppf t.dl_src;
    field "dl_dst" Net.Mac.pp ppf t.dl_dst;
    field "dl_type" (fun ppf -> Fmt.pf ppf "0x%04x") ppf t.dl_type;
    field "nw_src" Net.Prefix.pp ppf t.nw_src;
    field "nw_dst" Net.Prefix.pp ppf t.nw_dst;
    field "nw_proto" Fmt.int ppf t.nw_proto;
    field "tp_src" Fmt.int ppf t.tp_src;
    field "tp_dst" Fmt.int ppf t.tp_dst
  end
