(** OpenFlow switch model (the HP E3800 of the paper's testbed).

    Data plane: frames arriving on a port are matched against the flow
    table and forwarded after a small pipeline latency. Misses are punted
    to the controller as packet-ins (or dropped when no controller is
    connected).

    Control plane: flow-mods are applied by a {e serialized} table-update
    engine with a per-rule installation latency — the quantity that makes
    supercharged convergence O(#peers): rewriting k backup-group rules
    costs k × latency. Barrier requests are answered once every earlier
    flow-mod has been applied, exactly like OFPT_BARRIER. *)

type t

val create :
  Sim.Engine.t ->
  ?name:string ->
  ?datapath_id:int64 ->
  ?flow_mod_latency:Sim.Time.t ->
  ?forward_latency:Sim.Time.t ->
  n_ports:int ->
  unit ->
  t
(** Defaults: [flow_mod_latency] 2 ms (hardware TCAM update),
    [forward_latency] 4 µs (store-and-forward + pipeline). *)

val name : t -> string
val table : t -> Flow_table.t

val set_port_tx : t -> port:int -> (Net.Ethernet.frame -> unit) -> unit
(** Where frames output on [port] go. *)

val receive : t -> port:int -> Net.Ethernet.frame -> unit
(** Data-plane input. *)

val receive_batch : t -> port:int -> Net.Ethernet.frame array -> unit
(** Data-plane input for a burst arriving back to back on one port:
    one flow-table traversal setup and one scheduled pipeline event for
    the whole batch. Per-frame semantics (matching, counters,
    packet-ins, output order and timing) are identical to calling
    {!receive} on each frame in sequence. *)

val attach_link : t -> port:int -> Net.Link.t -> Net.Link.side -> unit
(** Wires [port] to one side of a link, in both directions. *)

val connect_controller : t -> (Message.t -> unit) -> Message.t -> unit
(** [connect_controller t to_controller] registers a control channel:
    the switch sends packet-ins through [to_controller] (replies to
    requests go only to the requesting controller), and the returned
    function is how that controller sends messages to the switch.
    Several controllers may connect (OpenFlow "equal" role) — the §3
    reliability design runs two supercharger replicas against the same
    switch. Control messages propagate instantaneously; latency is
    modelled on rule application. *)

val on_flow_mod_applied : t -> (Flow_table.flow_mod -> unit) -> unit
(** Observer fired after each flow-mod lands in the table (after its
    installation latency) — what an experiment keys its re-probes on. *)

val flow_mods_applied : t -> int
val packets_forwarded : t -> int
val packets_dropped : t -> int
val packet_ins_sent : t -> int

val pending_flow_mods : t -> int
(** Depth of the serialized table-update queue. *)

val idle : t -> bool
(** [true] when the table-update engine is drained: no queued control
    operation and none in flight. One conjunct of the system-wide
    quiescence predicate (see {!Supercharger.Controller.quiescent}). *)

type resolution =
  | Forward of Net.Ethernet.frame * int list
      (** rewritten frame and the egress ports it leaves on *)
  | Punt  (** matched a rule whose action set punts to the controller *)
  | Miss  (** no matching rule (would become a packet-in / drop) *)
  | Blackhole  (** matched a rule with an empty action set *)

val resolve : t -> port:int -> Net.Ethernet.frame -> resolution
(** Side-effect-free single-packet resolution: runs the frame through
    the flow table and action pipeline exactly as {!receive} would, but
    touches no counters, schedules nothing and transmits nothing. This
    is the probe the differential checker aims at the data plane. *)

val resolve_batch :
  t -> port:int -> Net.Ethernet.frame array -> resolution array -> unit
(** [resolve_batch t ~port frames out] is pointwise {!resolve} over the
    burst, writing [out.(i)] for [frames.(i)] and sharing one
    table-traversal setup and one scratch match context. Equally
    side-effect-free. The output array is caller-owned — allocate once,
    reuse across bursts; the per-frame loop allocates nothing beyond
    the resolutions themselves (enforced by [hot-path-alloc]). Raises
    [Invalid_argument] if [out] is shorter than [frames]. *)
