(** OpenFlow 1.0-style match structure.

    Every field is optional; [None] wildcards it. The supercharger only
    ever matches on [dl_dst] (the backup-group VMAC), but the table
    implements the full structure so the switch is a general OpenFlow
    model. *)

type t = {
  in_port : int option;
  dl_src : Net.Mac.t option;
  dl_dst : Net.Mac.t option;
  dl_type : int option;  (** ethertype *)
  nw_src : Net.Prefix.t option;
      (** for ARP frames this is the sender address (OF 1.0 overlay) *)
  nw_dst : Net.Prefix.t option;
      (** for ARP frames this is the target address *)
  nw_proto : int option;
      (** IP protocol number; for ARP frames, the opcode (1 = request,
          2 = reply), per the OF 1.0 overlay *)
  tp_src : int option;
  tp_dst : int option;
}

val any : t
(** All fields wildcarded: the table-miss match. *)

val dl_dst : Net.Mac.t -> t
(** Match solely on destination MAC — the paper's rule shape. *)

val make :
  ?in_port:int ->
  ?dl_src:Net.Mac.t ->
  ?dl_dst:Net.Mac.t ->
  ?dl_type:int ->
  ?nw_src:Net.Prefix.t ->
  ?nw_dst:Net.Prefix.t ->
  ?nw_proto:int ->
  ?tp_src:int ->
  ?tp_dst:int ->
  unit ->
  t

(** What a packet looks like to the matching pipeline. Fields are
    mutable so batch paths ({!Switch.resolve_batch}) can reuse one
    scratch context across a burst instead of allocating one record per
    frame; a context is never retained past the lookup that reads it. *)
type context = {
  mutable arrival_port : int;
  mutable frame : Net.Ethernet.frame;
}

val matches : t -> context -> bool

val equal : t -> t -> bool
(** Structural equality — what OFPFC_ADD/STRICT commands compare. *)

val hash : t -> int
(** Explicit structural hash consistent with [equal]; deterministic
    (no polymorphic [Hashtbl.hash] on abstract net types). *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every packet matched by [b] is matched by [a] —
    field-wise: [a] wildcards the field, or both pin it compatibly
    (prefix fields: [a]'s prefix covers [b]'s). This is the OF 1.0
    semantics of the {e non-strict} Modify/Delete commands. *)

val is_any : t -> bool

val pp : Format.formatter -> t -> unit
