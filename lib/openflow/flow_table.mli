(** Priority flow table with OpenFlow 1.0 flow-mod semantics. *)

type entry = {
  priority : int;
  ofmatch : Ofmatch.t;
  actions : Action.t list;
  cookie : int64;
  mutable packets : int;  (** match counter *)
}

type command =
  | Add
      (** insert; replaces an entry with identical match and priority *)
  | Modify
      (** update actions of all entries the given match {e subsumes}
          (OF 1.0 non-strict semantics) *)
  | Modify_strict  (** exact match and priority *)
  | Delete
      (** remove all entries the given match subsumes; [Ofmatch.any]
          deletes everything *)
  | Delete_strict

type flow_mod = {
  command : command;
  fm_priority : int;
  fm_match : Ofmatch.t;
  fm_actions : Action.t list;
  fm_cookie : int64;
}

val flow_mod :
  ?cookie:int64 -> ?priority:int -> command -> Ofmatch.t -> Action.t list ->
  flow_mod
(** Default [priority] 100, [cookie] 0. *)

type t

val create : unit -> t

val apply : t -> flow_mod -> unit
(** Executes the flow-mod against the table (no latency — timing lives
    in {!Switch}). [Modify]/[Modify_strict] on a non-existent flow
    behaves like [Add], per OF 1.0. *)

val lookup : t -> Ofmatch.context -> entry option
(** Highest-priority matching entry; among equal priorities, the one
    installed earliest. Increments the entry's packet counter. *)

val peek : t -> Ofmatch.context -> entry option
(** Same selection as {!lookup} but touches no counters — the probe the
    differential checker uses to resolve a hypothetical packet without
    perturbing switch statistics. *)

val lookup_batch : t -> Ofmatch.context array -> entry option array -> unit
(** [lookup_batch t ctxs out] is pointwise {!lookup} over the burst,
    writing [out.(i)] for [ctxs.(i)]: the priority-bucket walk is set
    up once for the whole batch (the only allocation) and the
    table-level counter bumped once by the batch size. Per-entry packet
    counters advance exactly as under sequential {!lookup}. The output
    array is caller-owned — allocate once, reuse across bursts. The
    returned [Some] cells are shared with the table (allocated at
    install time), so the per-packet loop allocates nothing; enforced
    by [hot-path-alloc]. Raises [Invalid_argument] if [out] is shorter
    than [ctxs]. *)

val peek_batch : t -> Ofmatch.context array -> entry option array -> unit
(** Counter-free variant of {!lookup_batch}; pointwise {!peek}. *)

type snapshot
(** The per-burst scan state: the live priority buckets resolved once.
    A snapshot is coherent until the next flow-mod; batch callers build
    one per burst ({!Switch.resolve_batch} does). *)

val snapshot : t -> snapshot
(** The one amortized per-burst allocation behind the batch lookups. *)

val snapshot_peek : snapshot -> Ofmatch.context -> entry option
(** One counter-free lookup against a prepared snapshot; allocation-free
    (the [Some] is the stored install-time cell). *)

val entries : t -> entry list
(** Priority-descending (lookup) order. *)

val size : t -> int

val lookups : t -> int
(** Total [lookup] calls since creation (hits and misses). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
