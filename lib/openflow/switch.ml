type control_op =
  | Op_flow_mod of Flow_table.flow_mod
  | Op_barrier of int * (Message.t -> unit)
      (* barrier replies go only to the controller that asked *)

type t = {
  engine : Sim.Engine.t;
  name : string;
  datapath_id : int64;
  flow_mod_latency : Sim.Time.t;
  forward_latency : Sim.Time.t;
  table : Flow_table.t;
  port_tx : (Net.Ethernet.frame -> unit) option array;
  mutable controllers : (Message.t -> unit) list; (* reversed registration order *)
  mutable control_queue : control_op list;  (* reversed *)
  mutable updating : bool;
  mutable flow_mods_applied : int;
  mutable flow_applied_cb : (Flow_table.flow_mod -> unit) option;
  mutable forwarded : int;
  mutable dropped : int;
  mutable packet_ins : int;
  (* metric handles, registered against the engine's registry *)
  m_flow_mods : Obs.Metrics.counter;
  m_packet_ins : Obs.Metrics.counter;
  m_rules : Obs.Metrics.gauge;
}

let trace t fmt =
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"openflow" fmt

let create engine ?(name = "switch") ?(datapath_id = 1L)
    ?(flow_mod_latency = Sim.Time.of_ms 2) ?(forward_latency = Sim.Time.of_us 4)
    ~n_ports () =
  if n_ports <= 0 then invalid_arg "Switch.create: n_ports";
  let scope = Obs.Metrics.Scope.v (Sim.Engine.metrics engine) ("switch." ^ name) in
  {
    engine;
    name;
    datapath_id;
    flow_mod_latency;
    forward_latency;
    table = Flow_table.create ();
    port_tx = Array.make n_ports None;
    controllers = [];
    control_queue = [];
    updating = false;
    flow_mods_applied = 0;
    flow_applied_cb = None;
    forwarded = 0;
    dropped = 0;
    packet_ins = 0;
    m_flow_mods = Obs.Metrics.Scope.counter scope "flow_mods_applied";
    m_packet_ins = Obs.Metrics.Scope.counter scope "packet_ins";
    m_rules = Obs.Metrics.Scope.gauge scope "rules";
  }

let name t = t.name
let table t = t.table

let check_port t port =
  if port < 0 || port >= Array.length t.port_tx then
    invalid_arg (Fmt.str "Switch %s: port %d out of range" t.name port)

let set_port_tx t ~port f =
  check_port t port;
  t.port_tx.(port) <- Some f

let output t port frame =
  check_port t port;
  match t.port_tx.(port) with
  | Some tx ->
    t.forwarded <- t.forwarded + 1;
    tx frame
  | None -> t.dropped <- t.dropped + 1

let send_to_controllers t msg =
  List.iter (fun f -> f msg) (List.rev t.controllers)

(* The match-and-action step shared by the single-packet and batched
   receive paths. Control-plane side effects (packet-ins, drop/punt
   accounting) happen immediately; the returned [(port, frame)] list is
   what must leave the switch after [forward_latency]. *)
let process_frame t ~port frame entry_opt =
  match entry_opt with
  | None ->
    if t.controllers = [] then t.dropped <- t.dropped + 1
    else begin
      t.packet_ins <- t.packet_ins + 1;
      Obs.Metrics.incr t.m_packet_ins;
      send_to_controllers t (Message.Packet_in { in_port = port; frame })
    end;
    []
  | Some entry ->
    let { Action.frame = rewritten; ports; flood; to_controller = punt } =
      Action.apply entry.Flow_table.actions frame
    in
    if punt then begin
      t.packet_ins <- t.packet_ins + 1;
      Obs.Metrics.incr t.m_packet_ins;
      send_to_controllers t (Message.Packet_in { in_port = port; frame = rewritten })
    end;
    let flood_ports =
      if flood then
        List.filter
          (fun p -> p <> port && Option.is_some t.port_tx.(p))
          (List.init (Array.length t.port_tx) Fun.id)
      else []
    in
    let all_ports = ports @ flood_ports in
    if all_ports = [] && not punt then begin
      t.dropped <- t.dropped + 1;
      []
    end
    else List.map (fun out_port -> (out_port, rewritten)) all_ports

let receive t ~port frame =
  check_port t port;
  let ctx = { Ofmatch.arrival_port = port; frame } in
  match process_frame t ~port frame (Flow_table.lookup t.table ctx) with
  | [] -> ()
  | outs ->
    ignore
      (Sim.Engine.schedule_after t.engine t.forward_latency (fun () ->
           List.iter (fun (out_port, f) -> output t out_port f) outs))

(* Batched data-plane input: one flow-table traversal setup
   (Flow_table.lookup_batch) and one scheduled pipeline event for the
   whole burst, instead of per-packet hashtable walks and per-packet
   events. Outputs leave in arrival order at the same instant the
   single-packet path would have emitted them. *)
let receive_batch t ~port frames =
  check_port t port;
  if Array.length frames > 0 then begin
    let ctxs =
      Array.map (fun frame -> { Ofmatch.arrival_port = port; frame }) frames
    in
    let entries = Array.make (Array.length frames) None in
    Flow_table.lookup_batch t.table ctxs entries;
    let outs = ref [] in
    Array.iteri
      (fun i entry_opt ->
        match process_frame t ~port frames.(i) entry_opt with
        | [] -> ()
        | o -> outs := List.rev_append o !outs)
      entries;
    match List.rev !outs with
    | [] -> ()
    | outs ->
      ignore
        (Sim.Engine.schedule_after t.engine t.forward_latency (fun () ->
             List.iter (fun (out_port, f) -> output t out_port f) outs))
  end

type resolution =
  | Forward of Net.Ethernet.frame * int list
  | Punt
  | Miss
  | Blackhole

let resolution_of t ~port frame entry_opt =
  match entry_opt with
  | None -> Miss
  | Some entry ->
    let { Action.frame = rewritten; ports; flood; to_controller = punt } =
      Action.apply entry.Flow_table.actions frame
    in
    if punt then Punt
    else
      let flood_ports =
        if flood then
          List.filter
            (fun p -> p <> port && Option.is_some t.port_tx.(p))
            (List.init (Array.length t.port_tx) Fun.id)
        else []
      in
      (match ports @ flood_ports with
      | [] -> Blackhole
      | out -> Forward (rewritten, out))

let resolve t ~port frame =
  check_port t port;
  let ctx = { Ofmatch.arrival_port = port; frame } in
  resolution_of t ~port frame (Flow_table.peek t.table ctx)

(* Counter-free burst resolution for the checker/bench: one snapshot
   and one scratch context per burst, then a per-frame loop that
   allocates nothing itself. [resolution_of] is the documented trust
   boundary — a [Forward] resolution inherently carries a fresh frame
   and port list, and only matching packets pay for it. *)
let[@lint.zero_alloc] resolve_batch t ~port frames out =
  check_port t port;
  if Array.length out < Array.length frames then
    invalid_arg "Switch.resolve_batch: output array shorter than input";
  if Array.length frames > 0 then begin
    let snapshot = Flow_table.snapshot t.table in
    let ctx =
      ({ Ofmatch.arrival_port = port; frame = Array.unsafe_get frames 0 }
      [@lint.allow "hot-path-alloc"])
      (* one scratch context per burst, mutated per frame below *)
    in
    for i = 0 to Array.length frames - 1 do
      let frame = Array.unsafe_get frames i in
      ctx.Ofmatch.frame <- frame;
      Array.unsafe_set out i
        (resolution_of t ~port frame (Flow_table.snapshot_peek snapshot ctx))
    done
  end

let attach_link t ~port link side =
  set_port_tx t ~port (fun frame -> Net.Link.send link side frame);
  Net.Link.attach link side (fun frame -> receive t ~port frame)

(* Control operations drain one at a time: each flow-mod occupies the
   update engine for [flow_mod_latency]; barriers are instantaneous but
   ordered. *)
let rec drain_control_queue t =
  match List.rev t.control_queue with
  | [] -> t.updating <- false
  | op :: rest ->
    t.control_queue <- List.rev rest;
    t.updating <- true;
    (match op with
    | Op_flow_mod fm ->
      ignore
        (Sim.Engine.schedule_after t.engine t.flow_mod_latency (fun () ->
             Flow_table.apply t.table fm;
             t.flow_mods_applied <- t.flow_mods_applied + 1;
             Obs.Metrics.incr t.m_flow_mods;
             Obs.Metrics.set t.m_rules (float_of_int (Flow_table.size t.table));
             trace t "%s: applied %a" t.name Message.pp (Message.Flow_mod fm);
             (match t.flow_applied_cb with Some f -> f fm | None -> ());
             drain_control_queue t))
    | Op_barrier (xid, reply_to) ->
      reply_to (Message.Barrier_reply xid);
      drain_control_queue t)

let enqueue_control t op =
  t.control_queue <- op :: t.control_queue;
  if not t.updating then drain_control_queue t

let handle_controller_message t reply_to msg =
  match msg with
  | Message.Hello -> reply_to Message.Hello
  | Message.Echo_request xid -> reply_to (Message.Echo_reply xid)
  | Message.Features_request ->
    reply_to
      (Message.Features_reply
         { datapath_id = t.datapath_id; n_ports = Array.length t.port_tx })
  | Message.Flow_mod fm -> enqueue_control t (Op_flow_mod fm)
  | Message.Barrier_request xid -> enqueue_control t (Op_barrier (xid, reply_to))
  | Message.Packet_out { actions; frame } ->
    let { Action.frame = rewritten; ports; flood; to_controller = _ } =
      Action.apply actions frame
    in
    let flood_ports =
      if flood then
        List.filter
          (fun p -> Option.is_some t.port_tx.(p))
          (List.init (Array.length t.port_tx) Fun.id)
      else []
    in
    List.iter (fun port -> output t port rewritten) (ports @ flood_ports)
  | Message.Echo_reply _ | Message.Features_reply _ | Message.Packet_in _
  | Message.Barrier_reply _ ->
    () (* switch-to-controller messages: ignore if echoed back *)

let connect_controller t to_controller =
  t.controllers <- to_controller :: t.controllers;
  fun msg -> handle_controller_message t to_controller msg

let on_flow_mod_applied t f = t.flow_applied_cb <- Some f

let flow_mods_applied t = t.flow_mods_applied
let packets_forwarded t = t.forwarded
let packets_dropped t = t.dropped
let packet_ins_sent t = t.packet_ins
let pending_flow_mods t =
  List.length
    (List.filter (function Op_flow_mod _ -> true | Op_barrier _ -> false) t.control_queue)

let idle t = (not t.updating) && t.control_queue = []
