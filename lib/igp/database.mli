(** Link-state database: the freshest LSA per origin. *)

type t

val create : unit -> t

type verdict =
  | Installed
      (** newer than anything held — or same sequence with {e different}
          links, a topology change that must not be dropped: store and
          flood *)
  | Duplicate  (** identical copy already held: ignore *)
  | Stale  (** older than the held copy: ignore (and could re-flood ours) *)

val install : t -> Lsa.t -> verdict

val find : t -> Net.Ipv4.t -> Lsa.t option
val all : t -> Lsa.t list

val snapshot : t -> Lsa.t list
(** Every held LSA, sorted by origin — a canonical form for comparing
    databases across nodes. *)

val equal : t -> t -> bool
(** Same canonical {!snapshot} (origin sets and LSA contents agree). *)

val cardinal : t -> int
