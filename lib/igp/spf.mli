(** Shortest-path-first computation (Dijkstra over the LSA database).

    Per link-state convention a link contributes to the topology only
    when {e both} endpoints advertise it (the two-way connectivity
    check), so a router that died — or whose LSA has not arrived yet —
    cannot attract traffic through stale adjacencies.

    One {!compute} produces a reusable {!table} answering every
    per-target query in O(1); a controller ranking backup egresses for
    every (source, target) pair must not pay a Dijkstra per query. *)

type table
(** The result of one SPF run from a fixed source over a fixed LSA set. *)

val compute : source:Net.Ipv4.t -> lsas:Lsa.t list -> table
(** Runs Dijkstra once. Links are asymmetric: the cost advertised by the
    near end is used in each direction. *)

val source : table -> Net.Ipv4.t

val serial : table -> int
(** Ordinal (from 1, process-wide) of the SPF run that produced this
    table. Two tables with the same serial are the same run; a cache
    that hands back a table with an unchanged serial provably did not
    recompute. *)

val distance : table -> Net.Ipv4.t -> int option
(** Cost of the shortest path to the target ([Some 0] for the source
    itself); [None] when unreachable. *)

val first_hop : table -> Net.Ipv4.t -> Net.Ipv4.t option
(** The neighbor the shortest path to the target leaves through. [None]
    for the source itself and for unreachable targets. Ties are broken
    deterministically by settlement order. *)

val reachable : table -> Net.Ipv4.t -> bool

val to_alist : table -> (Net.Ipv4.t * int) list
(** Every reachable router with its distance, sorted by router id. *)

val computations : unit -> int
(** Process-wide count of {!compute} runs, for regression tests pinning
    the one-SPF-per-database-change contract. *)

val distances : source:Net.Ipv4.t -> lsas:Lsa.t list -> (Net.Ipv4.t * int) list
(** [to_alist (compute ~source ~lsas)] — convenience for one-shot use. *)

val distance_to : source:Net.Ipv4.t -> lsas:Lsa.t list -> Net.Ipv4.t -> int option
(** One-shot variant of {!distance}; runs a full SPF per call. Callers
    with more than one query should hold a {!table}. *)
