module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type entry = {
  dist : int;
  first_hop : Net.Ipv4.t option;  (* None only for the source itself *)
}

type table = {
  source : Net.Ipv4.t;
  entries : entry Ip_table.t;
  serial : int;  (* ordinal of the run that produced this table, from 1 *)
}

(* Process-wide count of Dijkstra runs. The regression tests use it to
   pin down the "one SPF per database change" contract: querying a
   node's distances must not re-run the algorithm. Atomic so per-router
   SPF recomputation can move onto separate domains (ROADMAP item 4)
   without the counter racing; everything else SPF produces lives in
   the per-run [table]. *)
let computed = Atomic.make 0
let computations () = Atomic.get computed

let compute ~source ~lsas =
  let serial = 1 + Atomic.fetch_and_add computed 1 in
  (* Index the freshest LSA per origin. *)
  let db = Ip_table.create 16 in
  List.iter
    (fun (lsa : Lsa.t) ->
      match Ip_table.find_opt db lsa.origin with
      | Some existing when not (Lsa.newer lsa ~than:existing) -> ()
      | _ -> Ip_table.replace db lsa.origin lsa)
    lsas;
  let advertises a b =
    match Ip_table.find_opt db a with
    | Some (lsa : Lsa.t) -> List.exists (fun (n, _) -> Net.Ipv4.equal n b) lsa.links
    | None -> false
  in
  let edges_from a =
    match Ip_table.find_opt db a with
    | Some (lsa : Lsa.t) ->
      (* Two-way connectivity check: use the link only if the neighbor
         advertises it back. *)
      List.filter (fun (n, _) -> advertises n a) lsa.links
    | None -> []
  in
  let entries = Ip_table.create 16 in
  let heap =
    Sim.Heap.create ~cmp:(fun (da, _, _) (db, _, _) -> Int.compare da db) ()
  in
  Sim.Heap.push heap (0, source, None);
  let rec loop () =
    match Sim.Heap.pop heap with
    | None -> ()
    | Some (d, node, first_hop) ->
      if not (Ip_table.mem entries node) then begin
        Ip_table.replace entries node { dist = d; first_hop };
        List.iter
          (fun (neighbor, cost) ->
            if not (Ip_table.mem entries neighbor) then
              (* The first hop of a path through [node] is [node] itself
                 when we are expanding the source, else it is inherited. *)
              let hop =
                match first_hop with
                | None -> Some neighbor
                | Some _ -> first_hop
              in
              Sim.Heap.push heap (d + cost, neighbor, hop))
          (edges_from node)
      end;
      loop ()
  in
  loop ();
  { source; entries; serial }

let source t = t.source
let serial t = t.serial
let distance t target = Option.map (fun e -> e.dist) (Ip_table.find_opt t.entries target)

let first_hop t target =
  match Ip_table.find_opt t.entries target with
  | Some e -> e.first_hop
  | None -> None

let reachable t target = Ip_table.mem t.entries target

let to_alist t =
  List.sort
    (fun (a, _) (b, _) -> Net.Ipv4.compare a b)
    (Ip_table.fold (fun node e acc -> (node, e.dist) :: acc) t.entries [])

let distances ~source ~lsas = to_alist (compute ~source ~lsas)
let distance_to ~source ~lsas target = distance (compute ~source ~lsas) target
