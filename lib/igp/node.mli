(** A link-state router instance: originates its own LSA, floods
    received ones, and recomputes shortest paths on every database
    change.

    Adjacencies are wired with {!connect}; taking one down with
    {!disconnect} makes both ends re-originate and flood, after which
    every node's view converges (the tests assert equal databases and
    correct distances). Routes feed {!distance_to}, which is what a BGP
    speaker plugs into its decision process as the IGP cost of a next
    hop. *)

type t

val create : Sim.Engine.t -> router_id:Net.Ipv4.t -> ?flood_delay:Sim.Time.t -> unit -> t
(** [flood_delay] (default 1 ms) is the per-hop propagation + processing
    delay of flooding. The node installs its own (empty) LSA
    immediately. *)

val router_id : t -> Net.Ipv4.t

val connect : a:t -> b:t -> cost:int -> unit
(** Creates the bidirectional adjacency (same cost both ways; use two
    calls with different costs for asymmetry via {!set_cost}), makes
    both ends re-originate and flood. *)

val set_cost : a:t -> b:t -> cost:int -> unit
(** Changes the cost [a] advertises towards [b] only. *)

val disconnect : a:t -> b:t -> unit
(** Tears the adjacency down on both ends (flooding between them still
    uses remaining links). *)

val database : t -> Database.t

val receive : t -> from:Net.Ipv4.t -> Lsa.t -> unit
(** Handles an LSA flooded in by neighbor [from]: installs it if it is
    news — including a same-sequence LSA whose links differ from the
    held copy — and floods it onward to every other neighbor. This is
    the entry point flooding itself uses; exposed so tests and fault
    injectors can present arbitrary LSAs to a node. *)

val spf : t -> Spf.table
(** The node's current shortest-path table, memoized per database
    change: repeated queries between changes run zero extra SPFs. *)

val distances : t -> (Net.Ipv4.t * int) list
val distance_to : t -> Net.Ipv4.t -> int option

val next_hop_to : t -> Net.Ipv4.t -> Net.Ipv4.t option
(** The neighbor the shortest path to the target leaves through. *)

val on_change : t -> ((Net.Ipv4.t * int) list -> unit) -> unit
(** Fires after each SPF recomputation triggered by a database change. *)

val lsas_flooded : t -> int
