module Ip_table = Hashtbl.Make (struct
  type t = Net.Ipv4.t

  let equal = Net.Ipv4.equal
  let hash = Net.Ipv4.hash
end)

type t = Lsa.t Ip_table.t

let create () = Ip_table.create 16

type verdict =
  | Installed
  | Duplicate
  | Stale

let install t (lsa : Lsa.t) =
  match Ip_table.find_opt t lsa.origin with
  | None ->
    Ip_table.replace t lsa.origin lsa;
    Installed
  | Some held ->
    if Lsa.newer lsa ~than:held then begin
      Ip_table.replace t lsa.origin lsa;
      Installed
    end
    else if lsa.seq = held.seq then
      if Lsa.equal lsa held then Duplicate
      else begin
        (* Same sequence number but different links: a topology change
           the origin failed to version (or a divergent copy). Dropping
           it as a duplicate would silently lose the change and stop it
           from flooding, so install it and let the caller flood. *)
        Ip_table.replace t lsa.origin lsa;
        Installed
      end
    else Stale

let find t origin = Ip_table.find_opt t origin

let all t = Ip_table.fold (fun _ lsa acc -> lsa :: acc) t []

let snapshot t =
  List.sort
    (fun (a : Lsa.t) (b : Lsa.t) -> Net.Ipv4.compare a.origin b.origin)
    (all t)

let equal a b =
  List.length (snapshot a) = List.length (snapshot b)
  && List.for_all2 Lsa.equal (snapshot a) (snapshot b)

let cardinal t = Ip_table.length t
