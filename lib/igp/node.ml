type t = {
  engine : Sim.Engine.t;
  router_id : Net.Ipv4.t;
  flood_delay : Sim.Time.t;
  db : Database.t;
  mutable neighbors : neighbor list;
  mutable seq : int;
  mutable change_cb : ((Net.Ipv4.t * int) list -> unit) option;
  mutable flooded : int;
  mutable spf_cache : Spf.table option;
      (* memoized SPF, invalidated on every database change; queries
         between changes must not re-run Dijkstra *)
}

and neighbor = {
  peer : t;
  mutable cost : int;
}

let spf t =
  match t.spf_cache with
  | Some table -> table
  | None ->
    let table = Spf.compute ~source:t.router_id ~lsas:(Database.all t.db) in
    t.spf_cache <- Some table;
    table

let spf_and_notify t =
  match t.change_cb with
  | Some f -> f (Spf.to_alist (spf t))
  | None -> ()

(* Receiving a flooded LSA: install if newer, then flood onwards to every
   neighbor except the one it came from. *)
let rec receive t ~from (lsa : Lsa.t) =
  match Database.install t.db lsa with
  | Database.Installed ->
    t.spf_cache <- None;
    flood t ~except:(Some from) lsa;
    spf_and_notify t
  | Database.Duplicate | Database.Stale -> ()

and flood t ~except lsa =
  List.iter
    (fun n ->
      let skip =
        match except with
        | Some origin -> Net.Ipv4.equal n.peer.router_id origin
        | None -> false
      in
      if not skip then begin
        t.flooded <- t.flooded + 1;
        let target = n.peer in
        let from = t.router_id in
        ignore
          (Sim.Engine.schedule_after t.engine t.flood_delay (fun () ->
               receive target ~from lsa))
      end)
    t.neighbors

let originate t =
  t.seq <- t.seq + 1;
  let lsa =
    Lsa.make ~origin:t.router_id ~seq:t.seq
      ~links:(List.map (fun n -> (n.peer.router_id, n.cost)) t.neighbors)
  in
  ignore (Database.install t.db lsa);
  t.spf_cache <- None;
  flood t ~except:None lsa;
  spf_and_notify t;
  Sim.Trace.emitf (Sim.Engine.trace t.engine) (Sim.Engine.now t.engine)
    ~category:"igp" "%a originates %a" Net.Ipv4.pp t.router_id Lsa.pp lsa

let create engine ~router_id ?(flood_delay = Sim.Time.of_ms 1) () =
  let t =
    {
      engine;
      router_id;
      flood_delay;
      db = Database.create ();
      neighbors = [];
      seq = 0;
      change_cb = None;
      flooded = 0;
      spf_cache = None;
    }
  in
  originate t;
  t

let router_id t = t.router_id

let find_neighbor t peer_id =
  List.find_opt (fun n -> Net.Ipv4.equal n.peer.router_id peer_id) t.neighbors

let connect ~a ~b ~cost =
  if cost <= 0 then invalid_arg "Igp.Node.connect: cost must be positive";
  (match find_neighbor a b.router_id with
  | Some n -> n.cost <- cost
  | None -> a.neighbors <- { peer = b; cost } :: a.neighbors);
  (match find_neighbor b a.router_id with
  | Some n -> n.cost <- cost
  | None -> b.neighbors <- { peer = a; cost } :: b.neighbors);
  (* Each end learns the other's current database (adjacency bring-up
     exchanges the LSDB, like an OSPF database description exchange),
     then re-originates. *)
  List.iter (fun lsa -> ignore (Database.install a.db lsa)) (Database.all b.db);
  List.iter (fun lsa -> ignore (Database.install b.db lsa)) (Database.all a.db);
  originate a;
  originate b

let set_cost ~a ~b ~cost =
  if cost <= 0 then invalid_arg "Igp.Node.set_cost: cost must be positive";
  match find_neighbor a b.router_id with
  | Some n ->
    n.cost <- cost;
    originate a
  | None -> invalid_arg "Igp.Node.set_cost: not adjacent"

let disconnect ~a ~b =
  a.neighbors <-
    List.filter (fun n -> not (Net.Ipv4.equal n.peer.router_id b.router_id)) a.neighbors;
  b.neighbors <-
    List.filter (fun n -> not (Net.Ipv4.equal n.peer.router_id a.router_id)) b.neighbors;
  originate a;
  originate b

let database t = t.db
let distances t = Spf.to_alist (spf t)
let distance_to t target = Spf.distance (spf t) target
let next_hop_to t target = Spf.first_hop (spf t) target

let on_change t f = t.change_cb <- Some f

let lsas_flooded t = t.flooded
